module vpp

go 1.22
