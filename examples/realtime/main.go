// A real-time kernel with locked objects (paper §3, §4.2).
//
// The real-time kernel is launched locked: its kernel object, address
// space, control-state mappings and task thread are pinned in the Cache
// Kernel, so reclamation driven by another kernel's churn can never
// write them back. A periodic control task then meets its activation
// deadlines with and without heavy background pressure.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"math"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/rtk"
	"vpp/internal/srm"
)

func run(pressure bool) rtk.TaskStats {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{MappingSlots: 64, PMapBuckets: 64})
	if err != nil {
		log.Fatal(err)
	}
	var stats rtk.TaskStats
	stop := false
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		if pressure {
			s.Launch(e, "churn", srm.LaunchOpts{Groups: 8, MainPrio: 20, MaxPrio: 22},
				func(ak *aklib.AppKernel, me *hw.Exec) {
					va := uint32(0x5000_0000)
					for i := 0; !stop; i++ {
						pfn, ok := ak.Frames.Alloc()
						if !ok {
							break
						}
						ak.CK.LoadMapping(me, ak.SpaceID, ck.MappingSpec{
							VA: va + uint32(i%512)*hw.PageSize, PFN: pfn, Writable: true,
						})
						ak.Frames.Free(pfn)
						me.Charge(2000)
					}
				})
		}
		s.Launch(e, "rt", srm.LaunchOpts{Groups: 2, MainPrio: 30, Locked: true},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				rt, err := rtk.New(me, ak, 2)
				if err != nil {
					log.Fatal(err)
				}
				stats, err = rt.RunTask(me, rtk.TaskConfig{
					Name: "control", PeriodUS: 2000, BudgetCycles: 5000,
					Activations: 25, Priority: 45,
				})
				if err != nil {
					log.Fatal(err)
				}
				stop = true
			})
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Eng.MaxSteps = 1_000_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		log.Fatal(err)
	}
	return stats
}

func main() {
	fmt.Println("periodic control task: 2 ms period, 25 activations, priority 45, locked objects")
	quiet := run(false)
	loaded := run(true)
	fmt.Printf("\n%-22s %10s %10s %8s\n", "", "mean (µs)", "max (µs)", "missed")
	fmt.Printf("%-22s %10.1f %10.1f %8d\n", "idle machine", quiet.MeanLatencyUS(), quiet.MaxLatencyUS, quiet.MissedPeriods)
	fmt.Printf("%-22s %10.1f %10.1f %8d\n", "mapping-churn pressure", loaded.MeanLatencyUS(), loaded.MaxLatencyUS, loaded.MissedPeriods)
	fmt.Println("\nlocked objects keep the task's descriptors out of reach of")
	fmt.Println("reclamation, so activation latency stays bounded under pressure")
}
