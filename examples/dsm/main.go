// Distributed shared memory across two MPMs — the "explicit
// coordination between kernels ... provided by higher-level software"
// of paper §3.
//
// Two application kernels on separate MPMs (each with its own Cache
// Kernel) share a region of pages. Misses and write upgrades arrive as
// forwarded faults; an IVY-style single-writer protocol migrates pages
// over the fiber channel. The Cache Kernel contributes only its
// caching-model primitives: fault forwarding, mapping load/unload, and
// signals.
//
//	go run ./examples/dsm
package main

import (
	"fmt"
	"log"
	"math"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/dsm"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/srm"
)

func main() {
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	m := hw.NewMachine(cfg)
	pa, pb := dev.ConnectFiber(m.MPMs[0], m.MPMs[1], "dsm")

	const base = 0x6000_0000
	const rounds = 5
	var nodes [2]*dsm.Node
	ready := [2]bool{}
	phase := 0

	mk := func(idx int, mpm *hw.MPM, port *dev.FiberPort, body func(n *dsm.Node, e *hw.Exec)) {
		k, err := ck.New(mpm, ck.Config{})
		if err != nil {
			log.Fatal(err)
		}
		_, err = srm.Start(k, mpm, func(s *srm.SRM, e *hw.Exec) {
			_, err := s.Launch(e, "dsmk", srm.LaunchOpts{Groups: 4, MainPrio: 26},
				func(ak *aklib.AppKernel, me *hw.Exec) {
					n, err := dsm.Attach(me, ak, port, idx, base, 2)
					if err != nil {
						log.Fatal(err)
					}
					nodes[idx] = n
					ready[idx] = true
					for !ready[0] || !ready[1] {
						me.Charge(2000)
					}
					body(n, me)
				})
			if err != nil {
				log.Fatal(err)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	mk(0, m.MPMs[0], pa, func(n *dsm.Node, e *hw.Exec) {
		for i := 0; i < rounds; i++ {
			for phase != 2*i {
				e.Charge(2000)
			}
			v := e.Load32(base)
			e.Store32(base, v+1)
			fmt.Printf("node 0: counter %d -> %d (page %s here)\n", v, v+1, n.PageState(0))
			phase++
		}
	})
	mk(1, m.MPMs[1], pb, func(n *dsm.Node, e *hw.Exec) {
		for i := 0; i < rounds; i++ {
			for phase != 2*i+1 {
				e.Charge(2000)
			}
			v := e.Load32(base)
			e.Store32(base, v+10)
			fmt.Printf("node 1: counter %d -> %d (page %s here)\n", v, v+10, n.PageState(0))
			phase++
		}
	})

	m.Eng.MaxSteps = 500_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal counter: expected %d\n", rounds*11)
	fmt.Printf("node 0: %d fetches, %d upgrades, %d invalidations, %d serves\n",
		nodes[0].Fetches, nodes[0].Upgrades, nodes[0].Invalidations, nodes[0].Serves)
	fmt.Printf("node 1: %d fetches, %d upgrades, %d invalidations, %d serves\n",
		nodes[1].Fetches, nodes[1].Upgrades, nodes[1].Invalidations, nodes[1].Serves)
}
