// Quickstart: the smallest complete Cache Kernel program.
//
// It builds a simulated ParaDiGM machine, boots a Cache Kernel with a
// system resource manager as the first application kernel, and then —
// from the SRM's initial thread — exercises the core of the caching
// model: loading an address space, demand-loading page mappings through
// the fault path, loading a second thread, and explicitly unloading the
// space to watch the dependents come back through the writeback channel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
)

func main() {
	// A machine with the paper's geometry: one MPM, four 25 MHz CPUs,
	// 2 MB local RAM, 8 MB second-level cache.
	machine := hw.NewMachine(hw.DefaultConfig())

	// The Cache Kernel installs itself as the MPM's supervisor.
	kernel, err := ck.New(machine.MPMs[0], ck.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Boot: the SRM is the first application kernel; main runs as its
	// initial thread once the machine starts.
	_, err = srm.Start(kernel, machine.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		k := s.CK

		// 1. Touching unmapped memory faults into the Cache Kernel,
		//    which forwards to the owning kernel's handler; the default
		//    aklib handler demand-loads pages from the SRM's frames.
		s.Mem.Map(e, "heap", 0x1000_0000, 16, aklib.SegFlags{Writable: true}, nil)
		e.Store32(0x1000_0000, 42)
		fmt.Printf("demand-paged store: read back %d (faults so far: %d)\n",
			e.Load32(0x1000_0000), k.Stats.Faults)

		// 2. Load a fresh address space and map a page into it
		//    explicitly — the application kernel controls the physical
		//    frame, so it controls placement and replacement policy.
		sid, err := k.LoadSpace(e, false)
		if err != nil {
			log.Fatal(err)
		}
		pfn, _ := s.Frames.Alloc()
		if err := k.LoadMapping(e, sid, ck.MappingSpec{
			VA: 0x2000_0000, PFN: pfn, Writable: true, Cachable: true,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded space %v with one explicit mapping\n", sid)

		// 3. A second thread in that space, communicating by signal.
		done := false
		th := s.NewThread("worker", sid, 25, func(we *hw.Exec) {
			v, _ := k.WaitSignal(we)
			we.Store32(0x2000_0000, v)
			done = true
		})
		if err := th.Load(e, false); err != nil {
			log.Fatal(err)
		}
		if err := th.Signal(e, 1234); err != nil {
			log.Fatal(err)
		}
		for !done {
			e.Charge(2000)
		}
		fmt.Printf("worker stored the signalled value: %d\n",
			machine.Phys.Read32(pfn<<hw.PageShift))

		// 4. Unload the space: its thread and mapping are written back
		//    first (Figure 6's dependency order), then the descriptor.
		s.OnMappingWB = func(st ck.MappingState) {
			fmt.Printf("writeback: mapping va=%#x modified=%v\n", st.VA, st.Modified)
		}
		s.OnThreadWB = func(id ck.ObjID, _ ck.ThreadState) {
			fmt.Printf("writeback: thread %v\n", id)
		}
		if err := k.UnloadSpace(e, sid); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("space unloaded; identifiers change on every reload\n")
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := machine.Run(math.MaxUint64); err != nil {
		log.Fatal(err)
	}
}
