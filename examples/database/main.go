// A database kernel with application-controlled paging: the motivating
// example of the paper's introduction.
//
// The kernel owns a pool of physical frames and the Cache Kernel
// mappings over them, so it can replace pages with query knowledge: a
// sequential scan's pages are dropped eagerly instead of flooding out
// the point-query hot set, which a fixed LRU policy (what a
// conventional OS gives every application) cannot do.
//
//	go run ./examples/database
package main

import (
	"fmt"
	"log"

	"vpp/internal/exp"
)

func main() {
	fmt.Println("workload: 4 rounds of (64 hot-set point queries + 1 full table scan)")
	fmt.Println("table: 64 pages; buffer pool: 16 frames; hot set: 8 pages")
	fmt.Println()
	res, err := exp.MeasureDB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Println("\nthe fixed policy rereads the hot set after every scan; the")
	fmt.Println("application-controlled pool keeps it resident — the control the")
	fmt.Println("caching model gives every application kernel")
}
