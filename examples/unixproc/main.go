// UNIX timesharing on the Cache Kernel: the paper's running example.
//
// A UNIX emulator application kernel provides processes with stable
// pids, demand paging to a RAM disk, sleeping by thread unload/reload,
// swapping of idle processes, and a scheduler thread that degrades
// compute-bound processes — all built from Cache Kernel load/unload
// operations, with no kernel modification.
//
//	go run ./examples/unixproc
package main

import (
	"fmt"
	"log"
	"math"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
	"vpp/internal/unixemu"
)

func main() {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var u *unixemu.Unix
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "unix", srm.LaunchOpts{Groups: 16, MainPrio: 31, MaxPrio: 34},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				cfg := unixemu.DefaultConfig()
				cfg.SwapAfter = 2
				u = unixemu.New(ak, cfg)
				if err := u.StartScheduler(me); err != nil {
					log.Fatal(err)
				}

				// A tiny shell script in three programs: init spawns a
				// writer and a reader connected through the RAM-disk file
				// system, plus an idler that sleeps long enough to be
				// swapped out.
				u.RegisterProgram("writer", func(env *unixemu.ProcEnv) {
					fd, _ := env.Open("/tmp/pipe", true)
					env.WriteString(1, fmt.Sprintf("writer: pid %d\n", env.Getpid()))
					va := env.HeapBase()
					env.Sbrk(hw.PageSize)
					msg := "data flowing through the RAM disk"
					for i := 0; i < len(msg); i++ {
						env.Exec().Store8(va+uint32(i), msg[i])
					}
					env.Write(fd, va, uint32(len(msg)))
					env.Close(fd)
				})
				u.RegisterProgram("reader", func(env *unixemu.ProcEnv) {
					fd, errn := env.Open("/tmp/pipe", false)
					if fd < 0 {
						env.WriteString(1, fmt.Sprintf("reader: open failed (%d)\n", errn))
						env.Exit(1)
					}
					va := env.HeapBase()
					env.Sbrk(hw.PageSize)
					n, _ := env.Read(fd, va, 128)
					out := make([]byte, n)
					for i := 0; i < n; i++ {
						out[i] = env.Exec().Load8(va + uint32(i))
					}
					env.WriteString(1, "reader: got \""+string(out)+"\"\n")
				})
				u.RegisterProgram("idler", func(env *unixemu.ProcEnv) {
					env.Store32(env.HeapBase(), 7)
					env.Sleep(150) // long enough to be swapped out
					if env.Load32(env.HeapBase()) == 7 {
						env.WriteString(1, "idler: heap intact after swap\n")
					}
				})
				u.RegisterProgram("init", func(env *unixemu.ProcEnv) {
					env.Spawn("idler")
					wpid, _ := env.Spawn("writer")
					_ = wpid
					env.Wait() // writer or idler
					env.Spawn("reader")
					env.Wait()
					env.Wait()
					env.WriteString(1, "init: done\n")
				})
				p, err := u.Spawn(me, "init", nil)
				if err != nil {
					log.Fatal(err)
				}
				for q := u.Proc(p.PID()); q != nil && !q.Exited(); q = u.Proc(p.PID()) {
					me.Charge(hw.CyclesFromMicros(2000))
				}
				u.StopScheduler()
			})
		if err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Eng.MaxSteps = 2_000_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		log.Fatal(err)
	}

	fmt.Print(string(u.Console))
	fmt.Printf("\nemulator: %d syscalls, %d wakeups, %d swap-outs, %d swap-ins\n",
		u.Syscalls, u.Wakeups, u.SwapsOut, u.SwapsIn)
	fmt.Printf("cache kernel: %d thread loads / %d unloads (sleep = unload, wakeup = reload)\n",
		k.Stats.ThreadLoads, k.Stats.ThreadUnloads)
}
