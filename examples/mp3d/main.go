// MP3D on the simulation kernel: application-controlled memory in
// action (paper §3 and §5.2).
//
// The wind-tunnel simulation runs directly on the Cache Kernel with its
// particle region eagerly mapped (no random page faults), one worker
// thread per processor, and signal-based time-step barriers. Run twice —
// with particles grouped by cell and scattered — it reproduces the
// paper's page-locality degradation.
//
//	go run ./examples/mp3d
package main

import (
	"fmt"
	"log"

	"vpp/internal/exp"
	"vpp/internal/simk"
)

func main() {
	cfg := simk.MP3DConfig{
		CellsX: 64, CellsY: 16, ParticlesPerCell: 16,
		Workers: 4, Steps: 4, Seed: 3, ComputePerParticle: 24,
	}
	fmt.Printf("wind tunnel: %dx%d cells, %d particles, %d workers, %d steps\n",
		cfg.CellsX, cfg.CellsY, cfg.CellsX*cfg.CellsY*cfg.ParticlesPerCell,
		cfg.Workers, cfg.Steps)

	res, err := exp.MeasureMP3D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Printf("\ncell crossings handled: %d (locality mode recopied %d particles\n",
		res.Locality.Moves, res.Locality.Recopies)
	fmt.Println("to keep each cell's particles on adjacent pages — the paper's fix)")
}
