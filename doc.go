// Package vpp is a reproduction of "A Caching Model of Operating System
// Kernel Functionality" (Cheriton and Duda, OSDI 1994): the V++ Cache
// Kernel, its application kernels and the ParaDiGM machine they ran on,
// rebuilt in Go over a deterministic virtual-time simulator.
//
// The library lives under internal/ (see DESIGN.md for the map):
//
//   - internal/sim        deterministic coroutine/virtual-time engine
//   - internal/hw         the simulated ParaDiGM multiprocessor
//   - internal/pagetable  68040-style three-level page tables
//   - internal/ck         the Cache Kernel (the paper's contribution)
//   - internal/aklib      application-kernel class libraries
//   - internal/srm        the system resource manager
//   - internal/unixemu    UNIX emulator application kernel
//   - internal/simk       simulation kernel + mini-MP3D
//   - internal/dbk        database kernel
//   - internal/rtk        real-time kernel
//   - internal/monolith   monolithic-kernel baseline
//   - internal/netboot    PROM monitor network boot (UDP/IP/ARP/RARP/TFTP)
//   - internal/exp        the evaluation harness behind cmd/ckbench
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; EXPERIMENTS.md records paper-vs-measured.
package vpp
