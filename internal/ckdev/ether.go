// Package ckdev implements the Cache Kernel's device interfaces in the
// memory-based messaging model (paper §2.2): "the Ethernet device in our
// implementation is provided as memory-mapped transmission and reception
// memory regions. The client thread sends a signal to the Ethernet
// driver in the Cache Kernel to transmit a packet with the signal
// address indicating the packet buffer to transmit. On reception, a
// signal is generated to the receiving thread with the signal address
// indicating the buffer holding the new packet."
//
// Because the Ethernet chip has a conventional DMA interface, the driver
// is the one device that needs real code (the paper's point); the fiber
// channel fits the model directly and needs almost none (see
// internal/hw/dev).
package ckdev

import (
	"encoding/binary"
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
)

// Ring geometry: each region is a run of page-sized packet buffers. The
// first word of a buffer is the frame length; the frame follows.
const (
	TxSlots = 4
	RxSlots = 4
	slotCap = hw.PageSize - 8
)

// Ethernet is the driver instance for one NIC, owned by the kernel that
// opened it.
type Ethernet struct {
	NIC *dev.NIC
	AK  *aklib.AppKernel

	// Region physical frames: TX buffers, one TX doorbell page, RX
	// buffers, one RX doorbell page.
	txFrames, rxFrames []uint32
	txBell, rxBell     uint32

	// Driver-side virtual window (in the owning kernel's space).
	drvBase uint32

	driver *aklib.Thread
	client ck.ObjID // thread signalled on reception
	rxNext int
	stop   bool

	// Stats.
	TxPackets, RxPackets, RxOverruns uint64
}

// Layout of the client window returned by Open.
type ClientWindow struct {
	TxBase uint32 // TxSlots packet buffers
	TxBell uint32 // write slot number here to transmit
	RxBase uint32 // RxSlots packet buffers
	RxBell uint32 // driver writes slot numbers here (signals the client)
}

// Open creates the driver: it allocates the regions from the owning
// kernel's frames, maps the driver-side window, starts the driver
// thread, and maps the client-side window into clientSID with the
// doorbell pages in message mode — the client transmits by writing a
// packet and ringing its TX doorbell, and receives address-valued
// signals on its RX doorbell.
func Open(e *hw.Exec, ak *aklib.AppKernel, nic *dev.NIC, clientSID ck.ObjID,
	clientThread ck.ObjID, win ClientWindow, drvBase uint32) (*Ethernet, error) {

	d := &Ethernet{NIC: nic, AK: ak, drvBase: drvBase, client: clientThread}
	alloc := func(n int) ([]uint32, error) {
		out := make([]uint32, n)
		for i := range out {
			pfn, ok := ak.Frames.Alloc()
			if !ok {
				return nil, fmt.Errorf("ckdev: out of frames")
			}
			out[i] = pfn
		}
		return out, nil
	}
	var err error
	if d.txFrames, err = alloc(TxSlots); err != nil {
		return nil, err
	}
	if d.rxFrames, err = alloc(RxSlots); err != nil {
		return nil, err
	}
	bells, err := alloc(2)
	if err != nil {
		return nil, err
	}
	d.txBell, d.rxBell = bells[0], bells[1]

	// Driver thread: receives TX doorbell signals and NIC interrupts.
	d.driver = ak.NewThread("etherd", ak.SpaceID, 37, d.run)
	if err := d.driver.Load(e, false); err != nil {
		return nil, err
	}
	nic.OnRx = func() {
		if d.driver.Loaded {
			ak.CK.RaiseDeviceSignal(d.driver.TID, rxIRQMark)
		}
	}

	k := ak.CK
	mapRun := func(sid ck.ObjID, base uint32, frames []uint32, writable bool) error {
		for i, pfn := range frames {
			if err := k.LoadMapping(e, sid, ck.MappingSpec{
				VA: base + uint32(i)*hw.PageSize, PFN: pfn,
				Writable: writable, Cachable: true,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	// Driver window: everything writable.
	if err := mapRun(ak.SpaceID, d.drvTxBase(), d.txFrames, true); err != nil {
		return nil, err
	}
	if err := mapRun(ak.SpaceID, d.drvRxBase(), d.rxFrames, true); err != nil {
		return nil, err
	}
	// Driver's view of the TX doorbell carries the driver signal thread;
	// its view of the RX doorbell is the writable signalling side.
	if err := k.LoadMapping(e, ak.SpaceID, ck.MappingSpec{
		VA: d.drvTxBell(), PFN: d.txBell, Message: true, SignalThread: d.driver.TID,
	}); err != nil {
		return nil, err
	}
	if err := k.LoadMapping(e, ak.SpaceID, ck.MappingSpec{
		VA: d.drvRxBell(), PFN: d.rxBell, Writable: true, Message: true,
	}); err != nil {
		return nil, err
	}
	// Client window.
	if err := mapRun(clientSID, win.TxBase, d.txFrames, true); err != nil {
		return nil, err
	}
	if err := mapRun(clientSID, win.RxBase, d.rxFrames, false); err != nil {
		return nil, err
	}
	if err := k.LoadMapping(e, clientSID, ck.MappingSpec{
		VA: win.TxBell, PFN: d.txBell, Writable: true, Message: true,
	}); err != nil {
		return nil, err
	}
	if err := k.LoadMapping(e, clientSID, ck.MappingSpec{
		VA: win.RxBell, PFN: d.rxBell, Message: true, SignalThread: clientThread,
	}); err != nil {
		return nil, err
	}
	return d, nil
}

// rxIRQMark distinguishes NIC interrupts from doorbell signals: doorbell
// signal values are virtual addresses in the driver window, which is
// below this marker.
const rxIRQMark = 0xffff_fff0

func (d *Ethernet) drvTxBase() uint32 { return d.drvBase }
func (d *Ethernet) drvRxBase() uint32 { return d.drvBase + TxSlots*hw.PageSize }
func (d *Ethernet) drvTxBell() uint32 {
	return d.drvBase + (TxSlots+RxSlots)*hw.PageSize
}
func (d *Ethernet) drvRxBell() uint32 {
	return d.drvBase + (TxSlots+RxSlots+1)*hw.PageSize
}

// Stop halts the driver thread.
func (d *Ethernet) Stop(e *hw.Exec) {
	d.stop = true
	if d.driver.Loaded {
		_ = d.AK.CK.PostSignal(e, d.driver.TID, rxIRQMark)
	}
}

// run is the driver loop: each signal is either a TX doorbell (an
// address in the driver's TX bell page, identifying the slot) or an RX
// interrupt from the DMA engine.
func (d *Ethernet) run(e *hw.Exec) {
	k := d.AK.CK
	for !d.stop {
		sig, err := k.WaitSignal(e)
		if err != nil {
			return
		}
		if sig >= rxIRQMark {
			d.drainNIC(e)
			continue
		}
		if sig >= d.drvTxBell() && sig < d.drvTxBell()+hw.PageSize {
			slot := int(sig-d.drvTxBell()) / 4 % TxSlots
			d.transmit(e, slot)
		}
	}
}

// transmit DMAs the packet in a TX slot onto the wire.
func (d *Ethernet) transmit(e *hw.Exec, slot int) {
	va := d.drvTxBase() + uint32(slot)*hw.PageSize
	n := e.Load32(va)
	if n == 0 || n > slotCap {
		return
	}
	frame := make([]byte, n)
	pa := d.txFrames[slot] << hw.PageShift
	phys := e.MPM.Machine.Phys
	for i := uint32(0); i < n; i++ {
		frame[i] = phys.Read8(pa + 8 + i)
	}
	e.Charge(uint64(n/4) * hw.CostDeviceDMAWord)
	if err := d.NIC.Transmit(e, frame); err == nil {
		d.TxPackets++
	}
}

// drainNIC copies received frames into RX slots and rings the client's
// doorbell for each.
func (d *Ethernet) drainNIC(e *hw.Exec) {
	phys := e.MPM.Machine.Phys
	for {
		frame, ok := d.NIC.Recv(e)
		if !ok {
			return
		}
		if len(frame) > slotCap {
			d.RxOverruns++
			continue
		}
		slot := d.rxNext
		d.rxNext = (d.rxNext + 1) % RxSlots
		pa := d.rxFrames[slot] << hw.PageShift
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
		phys.WriteBytes(pa, lenBuf[:])
		phys.WriteBytes(pa+8, frame)
		e.Charge(uint64(len(frame)/4) * hw.CostDeviceDMAWord)
		d.RxPackets++
		// Ring the client's RX doorbell: the message write generates an
		// address-valued signal naming the slot.
		e.Store32(d.drvRxBell()+uint32(slot)*4, uint32(len(frame)))
	}
}

// Client helpers (a tiny user-space library over the windows).

// Send writes a frame into TX slot and rings the doorbell. Runs in the
// client thread.
func Send(e *hw.Exec, win ClientWindow, slot int, frame []byte) error {
	if len(frame) > slotCap {
		return fmt.Errorf("ckdev: frame too large")
	}
	base := win.TxBase + uint32(slot)*hw.PageSize
	for i := 0; i+4 <= len(frame); i += 4 {
		e.Store32(base+8+uint32(i), binary.LittleEndian.Uint32(frame[i:]))
	}
	for i := len(frame) &^ 3; i < len(frame); i++ {
		e.Store8(base+8+uint32(i), frame[i])
	}
	e.Store32(base, uint32(len(frame)))
	e.Store32(win.TxBell+uint32(slot)*4, 1) // the signalling write
	return nil
}

// Recv blocks the client thread for the next received frame.
func Recv(e *hw.Exec, k *ck.Kernel, win ClientWindow) ([]byte, error) {
	for {
		sig, err := k.WaitSignal(e)
		if err != nil {
			return nil, err
		}
		if sig < win.RxBell || sig >= win.RxBell+RxSlots*4 {
			continue
		}
		slot := (sig - win.RxBell) / 4
		base := win.RxBase + slot*hw.PageSize
		n := e.Load32(base)
		if n > slotCap {
			return nil, fmt.Errorf("ckdev: corrupt rx slot")
		}
		out := make([]byte, n)
		for i := uint32(0); i+4 <= n; i += 4 {
			binary.LittleEndian.PutUint32(out[i:], e.Load32(base+8+i))
		}
		for i := n &^ 3; i < n; i++ {
			out[i] = e.Load8(base + 8 + i)
		}
		k.SignalReturn(e)
		return out, nil
	}
}
