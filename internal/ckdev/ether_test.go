package ckdev

import (
	"bytes"
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/srm"
)

// etherNode is one application kernel with a client thread talking to
// its Ethernet driver through the memory-mapped windows.
func startEtherPair(t *testing.T, body0, body1 func(e *hw.Exec, k *ck.Kernel, win ClientWindow)) (*Ethernet, *Ethernet) {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	m := hw.NewMachine(cfg)
	wire := dev.NewWire()
	nic0 := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{0xaa, 0, 0, 0, 0, 1})
	nic1 := dev.AttachNIC(m.MPMs[1], wire, dev.MAC{0xaa, 0, 0, 0, 0, 2})

	var drv [2]*Ethernet
	mk := func(idx int, mpm *hw.MPM, nic *dev.NIC, body func(*hw.Exec, *ck.Kernel, ClientWindow)) {
		k, err := ck.New(mpm, ck.Config{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = srm.Start(k, mpm, func(s *srm.SRM, e *hw.Exec) {
			_, err := s.Launch(e, "net", srm.LaunchOpts{Groups: 4, MainPrio: 26},
				func(ak *aklib.AppKernel, me *hw.Exec) {
					win := ClientWindow{
						TxBase: 0x7000_0000,
						TxBell: 0x7000_0000 + TxSlots*hw.PageSize,
						RxBase: 0x7100_0000,
						RxBell: 0x7100_0000 + RxSlots*hw.PageSize,
					}
					// The client is this main thread; its own space is
					// the kernel space.
					tid := ak.CK.CurrentThread(me)
					d, err := Open(me, ak, nic, ak.SpaceID, tid, win, 0x7800_0000)
					if err != nil {
						t.Errorf("open %d: %v", idx, err)
						return
					}
					drv[idx] = d
					body(me, ak.CK, win)
				})
			if err != nil {
				t.Errorf("launch %d: %v", idx, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk(0, m.MPMs[0], nic0, body0)
	mk(1, m.MPMs[1], nic1, body1)
	m.Eng.MaxSteps = 300_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	return drv[0], drv[1]
}

func TestMemoryMappedEthernetRoundTrip(t *testing.T) {
	mkFrame := func(dst dev.MAC, payload string) []byte {
		f := make([]byte, 14+len(payload))
		copy(f[0:6], dst[:])
		copy(f[14:], payload)
		return f
	}
	var got string
	var echoed string
	d0, d1 := startEtherPair(t,
		func(e *hw.Exec, k *ck.Kernel, win ClientWindow) {
			// Node 0 sends, then waits for the echo.
			if err := Send(e, win, 0, mkFrame(dev.MAC{0xaa, 0, 0, 0, 0, 2}, "ping over mapped rings")); err != nil {
				t.Error(err)
				return
			}
			frame, err := Recv(e, k, win)
			if err != nil {
				t.Error(err)
				return
			}
			echoed = string(frame[14:])
		},
		func(e *hw.Exec, k *ck.Kernel, win ClientWindow) {
			frame, err := Recv(e, k, win)
			if err != nil {
				t.Error(err)
				return
			}
			got = string(frame[14:])
			reply := append([]byte(nil), frame...)
			copy(reply[0:6], []byte{0xaa, 0, 0, 0, 0, 1})
			copy(reply[14:], []byte("echo: "))
			reply = append(reply[:14], append([]byte("echo: "), frame[14:]...)...)
			if err := Send(e, win, 1, reply); err != nil {
				t.Error(err)
			}
		})
	if !bytes.Contains([]byte(got), []byte("ping over mapped rings")) {
		t.Fatalf("receiver got %q", got)
	}
	if !bytes.Contains([]byte(echoed), []byte("ping over mapped rings")) {
		t.Fatalf("echo was %q", echoed)
	}
	if d0.TxPackets != 1 || d1.TxPackets != 1 {
		t.Fatalf("tx packets %d/%d", d0.TxPackets, d1.TxPackets)
	}
	if d0.RxPackets != 1 || d1.RxPackets != 1 {
		t.Fatalf("rx packets %d/%d", d0.RxPackets, d1.RxPackets)
	}
}

func TestDriverSignalsFlowThroughCacheKernel(t *testing.T) {
	d0, _ := startEtherPair(t,
		func(e *hw.Exec, k *ck.Kernel, win ClientWindow) {
			before := k.Stats.SignalsGenerated
			_ = Send(e, win, 0, append(make([]byte, 14), 'x'))
			if k.Stats.SignalsGenerated == before {
				t.Error("TX doorbell generated no signal")
			}
		},
		func(e *hw.Exec, k *ck.Kernel, win ClientWindow) {
			if _, err := Recv(e, k, win); err != nil {
				t.Error(err)
			}
		})
	if d0.TxPackets != 1 {
		t.Fatalf("tx = %d", d0.TxPackets)
	}
}
