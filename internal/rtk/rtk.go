// Package rtk is a real-time embedded application kernel (paper Section
// 3): it locks its threads, address space and mappings into the Cache
// Kernel so reclamation can never write them back, giving bounded
// activation latency regardless of cache pressure from other kernels —
// "with a real-time configuration in which objects are locked in the
// Cache Kernel, the overhead would be essentially zero" (Section 5.2).
package rtk

import (
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
)

// TaskConfig describes one periodic task.
type TaskConfig struct {
	Name string
	// PeriodUS is the activation period in microseconds.
	PeriodUS uint64
	// BudgetCycles is the per-activation work charge.
	BudgetCycles uint64
	// Activations is the number of periods to run.
	Activations int
	// Priority is the task's (high, real-time) priority.
	Priority int
}

// TaskStats reports observed activation behaviour.
type TaskStats struct {
	Activations   int
	MaxLatencyUS  float64
	SumLatencyUS  float64
	MissedPeriods int // activations later than one full period
}

// MeanLatencyUS is the average activation latency.
func (s TaskStats) MeanLatencyUS() float64 {
	if s.Activations == 0 {
		return 0
	}
	return s.SumLatencyUS / float64(s.Activations)
}

// RT is one real-time kernel instance.
type RT struct {
	AK *aklib.AppKernel

	// State is a locked control region (sensor/actuator state the tasks
	// touch every period).
	state *aklib.Segment
	base  uint32
}

// New sets up the real-time kernel: a locked control-state region in
// its own (pre-mapped, locked) pages.
func New(e *hw.Exec, ak *aklib.AppKernel, statePages uint32) (*RT, error) {
	rt := &RT{AK: ak, base: 0x4000_0000}
	var err error
	rt.state, err = ak.Mem.Map(e, "rt-state", rt.base, statePages,
		aklib.SegFlags{Writable: true, Eager: true, Locked: true}, nil)
	if err != nil {
		return nil, err
	}
	return rt, nil
}

// RunTask runs one periodic task to completion and returns its stats.
// The task thread is loaded locked so the Cache Kernel can never
// reclaim its descriptor. Call from the kernel's main thread; it blocks
// until the task finishes.
func (rt *RT) RunTask(e *hw.Exec, cfg TaskConfig) (TaskStats, error) {
	if cfg.Activations <= 0 || cfg.PeriodUS == 0 {
		return TaskStats{}, fmt.Errorf("rtk: bad task config")
	}
	k := rt.AK.CK
	var stats TaskStats
	done := false

	period := cfg.PeriodUS * hw.CyclesPerMicrosecond
	task := rt.AK.NewThread(cfg.Name, rt.AK.SpaceID, cfg.Priority, func(te *hw.Exec) {
		tid := k.CurrentThread(te)
		next := te.Now() + period
		for n := 0; n < cfg.Activations; n++ {
			if err := k.SetAlarm(te, tid, next, uint32(n)); err != nil {
				return
			}
			if _, err := k.WaitSignal(te); err != nil {
				return
			}
			lat := hw.MicrosFromCycles(te.Now() - next)
			stats.Activations++
			stats.SumLatencyUS += lat
			if lat > stats.MaxLatencyUS {
				stats.MaxLatencyUS = lat
			}
			if te.Now() > next+period {
				stats.MissedPeriods++
			}
			// Control work: read sensors, compute, write actuators.
			te.Load32(rt.base)
			te.Charge(cfg.BudgetCycles)
			te.Store32(rt.base+4, uint32(n))
			next += period
		}
		done = true
	})
	if err := task.Load(e, true); err != nil {
		return stats, err
	}
	for !done {
		e.Charge(hw.CyclesFromMicros(200))
	}
	if err := task.Unload(e); err != nil && err != ck.ErrInvalidID {
		// The task may have been written back only if locking failed —
		// which is itself a bug the caller should see.
		return stats, err
	}
	return stats, nil
}
