package rtk

import (
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
)

// runRT boots a machine with a real-time kernel and (optionally) a
// background kernel that churns mappings and burns CPU to create cache
// pressure.
func runRT(t *testing.T, withPressure bool, ckCfg ck.Config) (TaskStats, *ck.Kernel, uint64) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	var stats TaskStats
	var rtWritebacks uint64
	var runErr error
	stop := false
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		if withPressure {
			_, err := s.Launch(e, "churn", srm.LaunchOpts{Groups: 8, MainPrio: 20, MaxPrio: 22},
				func(ak *aklib.AppKernel, me *hw.Exec) {
					// Load mappings well past the (small) descriptor pool
					// so reclamation runs constantly.
					va := uint32(0x5000_0000)
					for i := 0; !stop; i++ {
						pfn, ok := ak.Frames.Alloc()
						if !ok {
							break
						}
						_ = ak.CK.LoadMapping(me, ak.SpaceID, ck.MappingSpec{
							VA: va + uint32(i%512)*hw.PageSize, PFN: pfn, Writable: true,
						})
						ak.Frames.Free(pfn)
						me.Charge(2000)
					}
				})
			if err != nil {
				t.Errorf("launch churn: %v", err)
			}
		}
		lrt, err := s.Launch(e, "rt", srm.LaunchOpts{Groups: 2, MainPrio: 30, Locked: true},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				ak.OnMappingWB = func(ck.MappingState) { rtWritebacks++ }
				ak.OnThreadWB = func(ck.ObjID, ck.ThreadState) { rtWritebacks++ }
				rt, err := New(me, ak, 2)
				if err != nil {
					runErr = err
					return
				}
				stats, runErr = rt.RunTask(me, TaskConfig{
					Name: "control", PeriodUS: 2000, BudgetCycles: 5000,
					Activations: 20, Priority: 45,
				})
				stop = true
			})
		if err != nil {
			t.Errorf("launch rt: %v", err)
			return
		}
		_ = lrt
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 400_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return stats, k, rtWritebacks
}

func TestPeriodicTaskMeetsDeadlines(t *testing.T) {
	stats, _, _ := runRT(t, false, ck.Config{})
	if stats.Activations != 20 {
		t.Fatalf("activations = %d", stats.Activations)
	}
	if stats.MissedPeriods != 0 {
		t.Fatalf("missed periods = %d", stats.MissedPeriods)
	}
	if stats.MaxLatencyUS > 200 {
		t.Fatalf("max latency = %.1f µs", stats.MaxLatencyUS)
	}
}

func TestLockedObjectsSurvivePressure(t *testing.T) {
	// A small mapping pool guarantees the churn kernel forces constant
	// reclamation; the locked real-time objects must never be victims.
	cfg := ck.Config{MappingSlots: 64, PMapBuckets: 64}
	stats, k, rtWB := runRT(t, true, cfg)
	if stats.Activations != 20 {
		t.Fatalf("activations = %d", stats.Activations)
	}
	if rtWB != 0 {
		t.Fatalf("real-time kernel suffered %d writebacks under pressure", rtWB)
	}
	if k.Stats.MappingWritebacks == 0 {
		t.Fatal("churn kernel generated no reclamation (test not exercising pressure)")
	}
	if stats.MissedPeriods != 0 {
		t.Fatalf("missed periods under pressure = %d", stats.MissedPeriods)
	}
	t.Logf("under pressure: mean latency %.1f µs, max %.1f µs, churn writebacks %d",
		stats.MeanLatencyUS(), stats.MaxLatencyUS, k.Stats.MappingWritebacks)
}

func TestLatencyComparableUnderPressure(t *testing.T) {
	quiet, _, _ := runRT(t, false, ck.Config{MappingSlots: 64, PMapBuckets: 64})
	loaded, _, _ := runRT(t, true, ck.Config{MappingSlots: 64, PMapBuckets: 64})
	t.Logf("quiet max %.1f µs, loaded max %.1f µs", quiet.MaxLatencyUS, loaded.MaxLatencyUS)
	// Locked objects and priority keep latency bounded: within a small
	// constant factor plus slack for interrupt-window effects.
	if loaded.MaxLatencyUS > quiet.MaxLatencyUS*4+100 {
		t.Fatalf("latency blew up under pressure: %.1f vs %.1f µs",
			loaded.MaxLatencyUS, quiet.MaxLatencyUS)
	}
}
