// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package and reports Diagnostics through a Pass.
//
// The repository vendors no third-party modules, so the real
// go/analysis framework (and its unitchecker and analysistest halves)
// is not available; cmd/ckvet provides the driver side — including the
// `go vet -vettool` unit-checker protocol — on top of this package. The
// API mirrors go/analysis closely enough that the analyzers in
// internal/lint could be ported to the real framework by swapping
// imports if x/tools is ever vendored.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ckvet:allow suppression comments.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an Analyzer and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is an _test.go
// file. Analyzers skip test files: tests run host-side.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// allowDirective is one parsed //ckvet:allow comment.
type allowDirective struct {
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// AllowRecord is one //ckvet:allow directive as seen by the audit mode:
// where it is, what it suppresses, why, and whether any diagnostic
// actually matched it during the run. Stale (unused) allows are the
// audit's reason to fail: they suppress nothing and rot into cover for
// future regressions.
type AllowRecord struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	Used     bool
}

const allowPrefix = "//ckvet:allow"

// parseAllows extracts //ckvet:allow directives from a file. Malformed
// directives (no analyzer name, or no reason) are reported as
// diagnostics of the pseudo-analyzer "ckvet" so they cannot silently
// fail to suppress.
func parseAllows(fset *token.FileSet, f *ast.File) (byLine map[int][]*allowDirective, malformed []Diagnostic) {
	byLine = make(map[int][]*allowDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			fields := strings.Fields(rest)
			line := fset.Position(c.Pos()).Line
			if len(fields) == 0 {
				malformed = append(malformed, Diagnostic{
					Pos: c.Pos(), Analyzer: "ckvet",
					Message: "malformed //ckvet:allow: missing analyzer name",
				})
				continue
			}
			if len(fields) == 1 {
				malformed = append(malformed, Diagnostic{
					Pos: c.Pos(), Analyzer: "ckvet",
					Message: fmt.Sprintf("//ckvet:allow %s: missing reason (write //ckvet:allow %s <why this is safe>)", fields[0], fields[0]),
				})
				continue
			}
			byLine[line] = append(byLine[line], &allowDirective{
				line:     line,
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				pos:      c.Pos(),
			})
		}
	}
	return byLine, malformed
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving diagnostics: findings carrying a //ckvet:allow directive
// for that analyzer on the same line or the line above are suppressed.
// Malformed directives are themselves diagnostics.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersAudit(analyzers, fset, files, pkg, info)
	return diags, err
}

// RunAnalyzersAudit is RunAnalyzers plus the allow ledger: it also
// returns every //ckvet:allow directive seen in the package, marked
// Used when at least one diagnostic matched it. Drivers implementing an
// audit mode (ckvet -allows) fail on records with Used == false.
func RunAnalyzersAudit(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, []AllowRecord, error) {
	var out []Diagnostic

	// Suppression index over every file of the package.
	allows := make(map[string]map[int][]*allowDirective)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		byLine, malformed := parseAllows(fset, f)
		allows[name] = byLine
		out = append(out, malformed...)
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range pass.diags {
			p := fset.Position(d.Pos)
			if allowed(allows[p.Filename], p.Line, a.Name) {
				continue
			}
			out = append(out, d)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})

	var records []AllowRecord
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		for _, ds := range allows[name] {
			for _, d := range ds {
				records = append(records, AllowRecord{
					Pos:      fset.Position(d.pos),
					Analyzer: d.analyzer,
					Reason:   d.reason,
					Used:     d.used,
				})
			}
		}
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Pos.Filename != records[j].Pos.Filename {
			return records[i].Pos.Filename < records[j].Pos.Filename
		}
		return records[i].Pos.Line < records[j].Pos.Line
	})
	return out, records, nil
}

// allowed reports whether a directive for analyzer covers line (same
// line or the line immediately above, matching //nolint convention),
// marking any matching directive used for the audit ledger.
func allowed(byLine map[int][]*allowDirective, line int, analyzer string) bool {
	ok := false
	for _, l := range [2]int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.analyzer == analyzer {
				d.used = true
				ok = true
			}
		}
	}
	return ok
}
