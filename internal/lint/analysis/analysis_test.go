package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"vpp/internal/lint/analysis"
)

// flagBad reports every package-level var named bad*.
var flagBad = &analysis.Analyzer{
	Name: "flagbad",
	Doc:  "flag package-level vars named bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "bad") {
							pass.Reportf(name.Pos(), "var %s is bad", name.Name)
						}
					}
				}
			}
		}
		return nil
	},
}

func check(t *testing.T, src string) ([]analysis.Diagnostic, []analysis.AllowRecord) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, allows, err := analysis.RunAnalyzersAudit([]*analysis.Analyzer{flagBad}, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	return diags, allows
}

func TestAllowSuppressesAndIsUsed(t *testing.T) {
	diags, allows := check(t, `package p

//ckvet:allow flagbad shared by design
var badOne = 1

var badTwo = 2
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "badTwo") {
		t.Fatalf("want exactly the badTwo diagnostic, got %v", diags)
	}
	if len(allows) != 1 || !allows[0].Used {
		t.Fatalf("want one used allow record, got %+v", allows)
	}
	if allows[0].Analyzer != "flagbad" || allows[0].Reason != "shared by design" {
		t.Fatalf("allow record mismatch: %+v", allows[0])
	}
}

func TestStaleAllowIsRecordedUnused(t *testing.T) {
	_, allows := check(t, `package p

//ckvet:allow flagbad nothing here triggers it
var fine = 1
`)
	if len(allows) != 1 || allows[0].Used {
		t.Fatalf("want one stale (unused) allow record, got %+v", allows)
	}
}

func TestMalformedAllowIsDiagnosed(t *testing.T) {
	diags, _ := check(t, `package p

//ckvet:allow flagbad
var badOne = 1
`)
	var sawMalformed, sawBad bool
	for _, d := range diags {
		if d.Analyzer == "ckvet" && strings.Contains(d.Message, "missing reason") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "badOne") {
			sawBad = true
		}
	}
	if !sawMalformed || !sawBad {
		t.Fatalf("want malformed-allow diagnostic and unsuppressed finding, got %v", diags)
	}
}
