package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vpp/internal/lint/analysis"
)

// Detmap flags sources of host-side nondeterminism inside the
// deterministic packages: iteration over maps (unless the loop body is
// provably iteration-order independent), unstable sort.Slice calls,
// wall-clock reads, the global math/rand generator, go statements, and
// multi-way selects. Any of these can change which coroutine runs at
// which virtual time between two hosts or two runs, silently breaking
// the bit-determinism the golden schedule traces pin.
var Detmap = &analysis.Analyzer{
	Name: "detmap",
	Doc: "reject map iteration, unstable sorts, wall clocks, global rand, " +
		"goroutines and multi-way selects in deterministic packages",
	Run: runDetmap,
}

// timeFuncs are the package-level time functions that read or depend on
// the host wall clock or host timers.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runDetmap(pass *analysis.Pass) error {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			detmapFunc(pass, fd.Body)
		}
	}
	return nil
}

// detmapFunc checks one function body. Function literals recurse so
// that each range-over-map is judged against its own enclosing
// function (the scope within which a collected slice must be sorted).
func detmapFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			detmapFunc(pass, n.Body)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in deterministic package: goroutine scheduling is host-nondeterministic; use sim coroutines or annotate //ckvet:allow detmap <reason>")
		case *ast.SelectStmt:
			nonDefault := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonDefault++
				}
			}
			if nonDefault >= 2 {
				pass.Reportf(n.Pos(), "multi-way select in deterministic package: case choice among ready channels is randomized; restructure or annotate //ckvet:allow detmap <reason>")
			}
		case *ast.CallExpr:
			detmapCall(pass, n)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !mapRangeExempt(pass, n, body) {
					pass.Reportf(n.Pos(), "range over %s iterates in nondeterministic order; collect and sort the keys first (see sortedThreads in internal/ck/kernelobj.go) or annotate //ckvet:allow detmap <reason>", tv.Type)
				}
				if crossInboxType(tv.Type) {
					pass.Reportf(n.Pos(), "range over a cross-shard message buffer: inbox effects must be applied in the barrier's merged rank order (consume through ranked subRec indices), not buffer order; annotate //ckvet:allow detmap <reason> if the order is provably ranked")
				}
			}
		}
		return true
	})
}

// crossInboxType reports whether t is a slice (or array) of the
// engine's cross-shard messages (sim.crossMsg). Those buffers hold
// effects bound for other shards in append order, which is a per-shard
// accident of slice scheduling; anything applying them must follow the
// barrier's merged global rank, so a direct range is flagged.
func crossInboxType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return namedDeclaredIn(u.Elem(), "vpp/internal/sim", "crossMsg")
	case *types.Array:
		return namedDeclaredIn(u.Elem(), "vpp/internal/sim", "crossMsg")
	}
	return false
}

// detmapCall flags wall-clock, global-rand and unstable-sort calls.
func detmapCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if timeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the host clock; simulated code must use virtual time (Exec.Now / Engine.Now) or annotate //ckvet:allow detmap <reason>", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(), "global math/rand (%s.%s) is shared process-wide state; use a private sim.NewRand stream", fn.Pkg().Path(), fn.Name())
	case "sort":
		if fn.Name() == "Slice" {
			pass.Reportf(call.Pos(), "sort.Slice is unstable: elements whose comparator is not total order nondeterministically; use sort.SliceStable or compare a unique key")
		}
	}
}

// mapRangeExempt reports whether a range-over-map is provably
// iteration-order independent. Two shapes qualify:
//
//   - a pure accumulation body: every statement is a commutative
//     update (counter increment, integer +=/|=/&=/^=, insertion into
//     another map keyed by the range key, delete keyed by the range
//     key, or continue);
//
//   - the collect-then-sort idiom: every statement appends to slices,
//     and each such slice is passed to a sort call somewhere in the
//     same enclosing function.
//
// Anything else — including genuinely order-independent reductions the
// analysis cannot prove, like taking a minimum — needs an explicit
// //ckvet:allow detmap annotation.
func mapRangeExempt(pass *analysis.Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	key, _ := rs.Key.(*ast.Ident)
	for _, stmt := range rs.Body.List {
		if commutativeStmt(pass, stmt, key) {
			continue
		}
		if target := appendTarget(pass, stmt); target != nil && sortedLater(pass, enclosing, target) {
			continue
		}
		return false
	}
	return true
}

// commutativeStmt reports whether stmt's effect is independent of the
// order it runs in relative to the other iterations.
func commutativeStmt(pass *analysis.Pass, stmt ast.Stmt, key *ast.Ident) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		// delete(m, key): removals keyed by distinct range keys commute.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		return key != nil && isIdent(call.Args[1], key)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative only over exact arithmetic: integers, not floats.
			tv, ok := pass.TypesInfo.Types[s.Lhs[0]]
			if !ok {
				return false
			}
			b, ok := tv.Type.Underlying().(*types.Basic)
			return ok && b.Info()&types.IsInteger != 0
		case token.ASSIGN:
			// m2[key] = v: distinct range keys write distinct entries.
			ix, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok {
				return false
			}
			tv, ok := pass.TypesInfo.Types[ix.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return false
			}
			return key != nil && isIdent(ix.Index, key)
		}
	}
	return false
}

// appendTarget returns the object of s if stmt has the exact shape
// `s = append(s, ...)`, else nil.
func appendTarget(pass *analysis.Pass, stmt ast.Stmt) types.Object {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[first] != pass.TypesInfo.Uses[lhs] {
		return nil
	}
	return pass.TypesInfo.Uses[lhs]
}

// sortedLater reports whether the enclosing function contains a sort
// call whose first argument is target.
func sortedLater(pass *analysis.Pass, enclosing *ast.BlockStmt, target types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || len(call.Args) == 0 {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if ok && pass.TypesInfo.Uses[arg] == target {
			found = true
		}
		return !found
	})
	return found
}

func isIdent(e ast.Expr, want *ast.Ident) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == want.Name
}
