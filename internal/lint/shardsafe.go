package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vpp/internal/lint/analysis"
)

// Shardsafe enforces the sharded engine's ownership discipline: every
// clock, coroutine, event, execution context and descriptor cache is
// owned by exactly one engine shard (internal/sim Cluster), and the
// only sanctioned way to affect another shard is a cross-shard message
// (Engine.ScheduleCrossAt), delivered at an epoch barrier. The checks
// are a static over-approximation of that rule:
//
//   - package-level variables must not hold shard-owned state: a
//     process-wide root has no owning shard, so any shard can reach it;
//
//   - shard-owned packages must not use raw host synchronization
//     (sync, sync/atomic, channels): host-side synchronization hides
//     cross-shard communication from the epoch/outbox machinery
//     (internal/sim itself implements that machinery and is exempt);
//
//   - scheduling primitives must not be invoked on an engine reached
//     through the machine topology (x.Machine.MPMs[i].Shard,
//     Cluster.Engine(i)): such an engine may belong to another shard,
//     whose heap is not the caller's to mutate — ScheduleCrossAt is the
//     sanctioned path;
//
//   - a closure shipped cross-shard must not touch engine-heap objects
//     (engines, coroutines, clocks) other than its destination: it runs
//     on the destination shard, where those objects are foreign;
//
//   - fault hooks and chaos plans must be co-sharded with their charge
//     target: a hook installed on one kernel that draws from another
//     anchor's shard, or a crash event scheduled on one object's shard
//     that touches a different object, charges the wrong timeline.
//
// The analysis is type-level and intentionally conservative in the
// other direction too: engines laundered through plain local variables
// are assumed co-sharded (no data-flow tracking). The cksan runtime
// sanitizer (-tags cksan) catches what this over-approximation admits.
var Shardsafe = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "reject shard-owned state escaping to package level, raw host " +
		"synchronization, and cross-shard mutation that bypasses the epoch outbox",
	Run: runShardsafe,
}

// shardOwnedRoots are the named types that anchor shard ownership:
// everything reachable from them hangs off exactly one engine shard.
// sim.Cluster and hw.Machine deliberately are not here — they span
// shards by construction.
var shardOwnedRoots = [][2]string{
	{"vpp/internal/sim", "Engine"},
	{"vpp/internal/sim", "Coro"},
	{"vpp/internal/sim", "Clock"},
	{"vpp/internal/sim", "Ctx"},
	{"vpp/internal/hw", "MPM"},
	{"vpp/internal/hw", "CPU"},
	{"vpp/internal/hw", "Exec"},
	{"vpp/internal/ck", "Kernel"},
}

// schedulingMethods are the Engine mutations that touch the receiver
// shard's heap; calling one on a foreign shard's engine is the race the
// epoch outbox exists to prevent.
var schedulingMethods = map[string]bool{
	"ScheduleAt": true, "ScheduleAfter": true, "UnparkOn": true, "NewCoro": true,
}

// engineReadMethods are Engine/Coro/Clock methods safe to call from any
// shard between or within epochs: pure reads of monotone or immutable
// state.
var engineReadMethods = map[string]bool{
	"Now": true, "Name": true, "Shard": true, "Steps": true, "Decisions": true,
	"SchedTime": true, "Live": true, "Done": true, "Runnable": true, "Clock": true,
}

// hookFields are the fault-injection hook slots (internal/chaos); the
// engine an installed hook draws on must be its anchor's own shard.
var hookFields = map[string]bool{
	"SignalFault": true, "WritebackFault": true, "WalkFault": true, "TxFault": true,
}

func runShardsafe(pass *analysis.Pass) error {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	// internal/sim implements the ownership machinery itself: its raw
	// channels and host synchronization are the engine, not an escape.
	rawSync := pass.Pkg.Path() != "vpp/internal/sim"
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		if rawSync {
			shardsafeImports(pass, f)
		}
		shardsafeGlobals(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if rawSync {
					pass.Reportf(n.Pos(), "raw channel send in shard-owned code: cross-shard effects must ride the epoch outbox (Engine.ScheduleCrossAt) or annotate //ckvet:allow shardsafe <reason>")
				}
			case *ast.UnaryExpr:
				if rawSync && n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "raw channel receive in shard-owned code: cross-shard effects must ride the epoch outbox (Engine.ScheduleCrossAt) or annotate //ckvet:allow shardsafe <reason>")
				}
			case *ast.CallExpr:
				if rawSync {
					shardsafeChanCall(pass, n)
				}
				shardsafeCall(pass, n)
			case *ast.AssignStmt:
				shardsafeAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// shardsafeImports flags raw host-synchronization imports. The import
// line is flagged once (rather than every use) so a single annotated
// reason documents the package's policy for its intentionally shared
// structures.
func shardsafeImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "sync" || path == "sync/atomic" {
			pass.Reportf(imp.Pos(), "import of %s in shard-owned code: host synchronization hides cross-shard communication from the epoch machinery; use ScheduleCrossAt, or annotate //ckvet:allow shardsafe <reason> for intentionally shared state", path)
		}
	}
}

// shardsafeGlobals flags package-level variables whose type can reach
// shard-owned state.
func shardsafeGlobals(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				if owned, what := shardOwnedReach(obj.Type()); owned {
					pass.Reportf(name.Pos(), "package-level variable %s can reach shard-owned %s: shard state must hang off its own MPM/engine, not a process-wide root; annotate //ckvet:allow shardsafe <reason> if read-only after construction", name.Name, what)
				}
			}
		}
	}
}

// shardOwnedReach reports whether t can reach a shard-owned root type
// through fields, pointers, slices, arrays, maps or channels (function
// and interface types are opaque), and names the root it found.
func shardOwnedReach(t types.Type) (bool, string) {
	return ownedReach(t, make(map[types.Type]bool))
}

func ownedReach(t types.Type, seen map[types.Type]bool) (bool, string) {
	if seen[t] {
		return false, ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		for _, r := range shardOwnedRoots {
			if namedDeclaredIn(u, r[0], r[1]) {
				return true, r[0][len("vpp/internal/"):] + "." + r[1]
			}
		}
		return ownedReach(u.Underlying(), seen)
	case *types.Pointer:
		return ownedReach(u.Elem(), seen)
	case *types.Slice:
		return ownedReach(u.Elem(), seen)
	case *types.Array:
		return ownedReach(u.Elem(), seen)
	case *types.Chan:
		return ownedReach(u.Elem(), seen)
	case *types.Map:
		if ok, what := ownedReach(u.Key(), seen); ok {
			return true, what
		}
		return ownedReach(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if ok, what := ownedReach(u.Field(i).Type(), seen); ok {
				return true, what
			}
		}
	}
	return false, ""
}

// shardsafeChanCall flags make(chan) and close(ch).
func shardsafeChanCall(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	isChan := false
	if _, c := tv.Type.Underlying().(*types.Chan); c {
		isChan = true
	}
	switch id.Name {
	case "make":
		// make's first argument is the type expression itself.
		if isChan {
			pass.Reportf(call.Pos(), "raw channel creation in shard-owned code: cross-shard effects must ride the epoch outbox (Engine.ScheduleCrossAt) or annotate //ckvet:allow shardsafe <reason>")
		}
	case "close":
		if isChan {
			pass.Reportf(call.Pos(), "raw channel close in shard-owned code: cross-shard effects must ride the epoch outbox (Engine.ScheduleCrossAt) or annotate //ckvet:allow shardsafe <reason>")
		}
	}
}

// shardsafeCall checks scheduling calls: foreign-topology receivers,
// cross-shard closure escapes, and crash-plan co-location.
func shardsafeCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	recvIsEngine := typeIs(pass, sel.X, "vpp/internal/sim", "Engine")
	recvIsCPU := typeIs(pass, sel.X, "vpp/internal/hw", "CPU")

	// (a) Scheduling on an engine (or dispatching on a CPU) reached
	// through the machine topology: the reached shard may not be ours.
	if (recvIsEngine && schedulingMethods[name]) || (recvIsCPU && name == "Dispatch") {
		if via := topologyCrossing(pass, sel.X); via != "" {
			pass.Reportf(call.Pos(), "%s on an engine reached through the machine topology (%s): another MPM's shard is not the caller's to mutate; deliver through Engine.ScheduleCrossAt (epoch outbox) or annotate //ckvet:allow shardsafe <reason>", name, via)
		}
	}

	// (b) A closure shipped cross-shard runs on the destination; any
	// engine-heap object it touches other than the destination itself is
	// foreign there.
	if recvIsEngine && name == "ScheduleCrossAt" && len(call.Args) == 3 {
		if fl, ok := call.Args[2].(*ast.FuncLit); ok {
			shardsafeCrossClosure(pass, call.Args[0], fl)
		}
	}

	// (d) A fault event scheduled on one object's shard must not touch a
	// different kernel or execution: the two are only co-sharded by
	// accident of the shard map.
	if recvIsEngine && name == "ScheduleAt" && len(call.Args) == 2 {
		if fl, ok := call.Args[1].(*ast.FuncLit); ok {
			shardsafeCrashPlan(pass, sel.X, fl)
		}
	}
}

// typeIs reports whether the expression's static type is the named type
// (or a pointer to it).
func typeIs(pass *analysis.Pass, e ast.Expr, pkgPath, name string) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && namedDeclaredIn(tv.Type, pkgPath, name)
}

// topologyCrossing reports how (if at all) the expression reaches its
// value through the machine topology: a .Machine back-pointer, an index
// into a []*hw.MPM slice, or Cluster.Engine(i). An engine obtained that
// way may belong to any shard.
func topologyCrossing(pass *analysis.Pass, e ast.Expr) string {
	via := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if via != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Machine" && typeIs(pass, n, "vpp/internal/hw", "Machine") {
				via = "a .Machine back-pointer"
				return false
			}
		case *ast.IndexExpr:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if sl, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && namedDeclaredIn(sl.Elem(), "vpp/internal/hw", "MPM") {
					via = "an index into Machine.MPMs"
					return false
				}
			}
		case *ast.CallExpr:
			if s, ok := n.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Engine" && typeIs(pass, s.X, "vpp/internal/sim", "Cluster") {
				via = "Cluster.Engine"
				return false
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return via
}

// shardsafeCrossClosure flags method calls inside a cross-shard closure
// whose receiver is an engine-heap object (Engine, Coro, Clock) other
// than the message's destination.
func shardsafeCrossClosure(pass *analysis.Pass, dst ast.Expr, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if engineReadMethods[sel.Sel.Name] {
			return true
		}
		heap := ""
		switch {
		case typeIs(pass, sel.X, "vpp/internal/sim", "Engine"):
			heap = "engine"
		case typeIs(pass, sel.X, "vpp/internal/sim", "Coro"):
			heap = "coroutine"
		case typeIs(pass, sel.X, "vpp/internal/sim", "Clock"):
			heap = "clock"
		default:
			return true
		}
		if exprEqual(pass, sel.X, dst) {
			return true // the destination's own heap: the closure runs there
		}
		pass.Reportf(call.Pos(), "cross-shard closure calls %s on a captured %s: the closure runs on the destination shard, where that %s is foreign engine-heap state; restructure the message or annotate //ckvet:allow shardsafe <reason>", sel.Sel.Name, heap, heap)
		return true
	})
}

// shardsafeCrashPlan checks a fault event scheduled on an anchored
// shard (<anchor>.MPM.Shard.ScheduleAt): the closure must not mutate a
// kernel or execution rooted at a different object than the anchor.
func shardsafeCrashPlan(pass *analysis.Pass, recv ast.Expr, fl *ast.FuncLit) {
	anchor := shardAnchor(pass, recv)
	if anchor == nil {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || engineReadMethods[sel.Sel.Name] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj == anchor {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if !namedDeclaredIn(obj.Type(), "vpp/internal/ck", "Kernel") && !namedDeclaredIn(obj.Type(), "vpp/internal/hw", "Exec") {
			return true
		}
		pass.Reportf(call.Pos(), "fault scheduled on %s's shard calls %s.%s: %s may live on another shard; schedule on the touched object's own shard (or co-locate them with a ShardMap) or annotate //ckvet:allow shardsafe <reason>", anchor.Name(), id.Name, sel.Sel.Name, id.Name)
		return true
	})
}

// shardAnchor resolves the owning object of a receiver written
// <anchor>.MPM.Shard or <anchor>.Shard, where the anchor is a kernel,
// execution context, MPM or device.
func shardAnchor(pass *analysis.Pass, recv ast.Expr) types.Object {
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Shard" {
		return nil
	}
	base := sel.X
	if inner, ok := base.(*ast.SelectorExpr); ok && inner.Sel.Name == "MPM" {
		base = inner.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// shardsafeAssign checks hook installations: an assignment to a fault
// hook field must not hand the hook another anchor's shard stream.
func shardsafeAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.SelectorExpr)
	if !ok || !hookFields[lhs.Sel.Name] {
		return
	}
	lroot := rootIdent(pass, lhs.X)
	if lroot == nil {
		return
	}
	// Scan the hook expression for engines anchored at a different
	// object than the hook's owner.
	ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || !typeIs(pass, sel, "vpp/internal/sim", "Engine") {
			return true
		}
		aroot := shardAnchor(pass, sel)
		if aroot == nil || aroot == lroot {
			return true
		}
		pass.Reportf(sel.Pos(), "hook %s.%s draws on %s's shard: a fault hook must charge and draw on the shard of the object it is installed on; anchor it at %s or annotate //ckvet:allow shardsafe <reason>", lroot.Name(), lhs.Sel.Name, aroot.Name(), lroot.Name())
		return false
	})
}

// rootIdent walks selector/index/star chains to the base identifier's
// object, or nil when the base is not a plain identifier.
func rootIdent(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// exprEqual reports structural equality of two ident/selector/index
// chains (the shapes receivers take); anything else compares unequal.
func exprEqual(pass *analysis.Pass, a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ox, oy := pass.TypesInfo.Uses[x], pass.TypesInfo.Uses[y]
		return ox != nil && ox == oy
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && exprEqual(pass, x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(pass, x.X, y.X) && exprEqual(pass, x.Index, y.Index)
	case *ast.ParenExpr:
		return exprEqual(pass, x.X, b)
	}
	if y, ok := b.(*ast.ParenExpr); ok {
		return exprEqual(pass, a, y.X)
	}
	return false
}
