package lint_test

import (
	"testing"

	"vpp/internal/lint"
	"vpp/internal/lint/analysistest"
)

func TestChargepath(t *testing.T) {
	analysistest.Run(t, "testdata/chargepath", lint.Chargepath, "vpp/internal/ck")
}
