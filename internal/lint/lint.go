// Package lint holds the ckvet analyzers: static checks that enforce
// the two invariants the reproduction's results rest on and that the
// compiler cannot see.
//
//   - Virtual-time results must be bit-deterministic. The golden
//     schedule-trace hashes in internal/exp catch violations after the
//     fact on two workloads; detmap rejects the nondeterminism sources
//     themselves (map iteration order, unstable sorts, wall-clock
//     reads, global math/rand, goroutines, multi-way selects) in every
//     deterministic package, at analysis time.
//
//   - Every simulated action must charge cycles through the
//     internal/hw cost model, so the Table 2 numbers emerge from real
//     work. chargepath rejects exported hw/ck operations that are
//     handed an execution context and mutate simulated state without
//     charging on every non-crashing path, and cost constants that are
//     never charged at all.
//
//   - invariantcall rejects silently discarded error returns from
//     Cache Kernel object-cache operations: identifier faults are
//     ordinary events in the caching model and must be handled (or
//     discarded explicitly with `_ =`).
//
//   - Every piece of simulated state is owned by exactly one engine
//     shard, and cross-shard effects must ride the epoch outbox.
//     shardsafe rejects shard-owned state escaping to package level,
//     raw host synchronization in shard-owned code, scheduling on
//     engines reached through the machine topology, engine-heap
//     captures in cross-shard closures, and fault hooks or crash plans
//     anchored on the wrong shard. The cksan runtime sanitizer
//     (-tags cksan) covers what this over-approximation admits.
//
//   - The engine's per-epoch buffers are pooled and recycled, each with
//     one reset point that drains it. poolpath rejects appends to those
//     pooled fields outside their annotated sanctioned growth points:
//     stale growth survives the barrier reset and reintroduces
//     steady-state allocation on the zero-allocation hot path.
//
// Findings are suppressed line-by-line with
//
//	//ckvet:allow <analyzer> <reason>
//
// on the flagged line or the line above; a missing reason is itself a
// diagnostic. Run the suite with cmd/ckvet (standalone or as a
// `go vet -vettool`).
package lint

import (
	"go/types"
	"strings"

	"vpp/internal/lint/analysis"
)

// All is the ckvet analyzer suite.
var All = []*analysis.Analyzer{Detmap, Chargepath, Invariantcall, Shardsafe, Poolpath}

// DeterministicPrefixes lists import-path prefixes whose packages run
// under the simulation's virtual clock and therefore must be
// bit-deterministic. Host-side entry points (cmd/..., examples/...)
// are deliberately outside it.
var DeterministicPrefixes = []string{"vpp/internal/"}

// DeterministicExclude lists packages under the prefixes that are
// host-side anyway: the lint tooling itself.
var DeterministicExclude = []string{"vpp/internal/lint"}

// ChargedPackages lists the packages whose exported operations must
// charge the cost model: the hardware layer and the Cache Kernel.
var ChargedPackages = map[string]bool{
	"vpp/internal/hw": true,
	"vpp/internal/ck": true,
}

// InvariantPackages lists the packages whose error-returning methods
// are kernel-object cache operations for invariantcall.
var InvariantPackages = map[string]bool{
	"vpp/internal/ck": true,
}

// deterministicPkg reports whether the import path is in detmap scope.
func deterministicPkg(path string) bool {
	for _, ex := range DeterministicExclude {
		if path == ex || strings.HasPrefix(path, ex+"/") {
			return false
		}
	}
	for _, p := range DeterministicPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// namedDeclaredIn reports whether t (after unwrapping pointers) is a
// named type whose defining package has the given import path.
func namedDeclaredIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isExecType reports whether t is hw.Exec or *hw.Exec.
func isExecType(t types.Type) bool {
	return namedDeclaredIn(t, "vpp/internal/hw", "Exec")
}

// isCtxType reports whether t is sim.Ctx or *sim.Ctx.
func isCtxType(t types.Type) bool {
	return namedDeclaredIn(t, "vpp/internal/sim", "Ctx")
}
