package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vpp/internal/lint/analysis"
)

// Chargepath enforces the cost-model invariant in the charged packages
// (internal/hw and internal/ck): an exported operation that is handed
// an execution context (an *hw.Exec receiver or parameter) and mutates
// simulated state — descriptors, queues, MMU and TLB structures,
// statistics — must charge virtual time on every non-crashing path,
// by reaching Exec.Charge, Exec.ChargeNoIntr, Exec.Instr (or the
// sim.Ctx.Advance primitive beneath them), directly or through another
// function in the same package. It also flags unexported cost-model
// constants (cost*/Cost*) that are never referenced: a cost that is
// never charged means some simulated work is free and the Table 2
// numbers no longer emerge from real work.
//
// The path analysis is structural: a function passes if a charging
// call dominates every fall-off-the-end or return exit; branches must
// all charge for the branch point to count, loops are assumed to run
// zero times, and paths ending in panic are crash paths that need no
// charge. Operations whose cost is deliberately charged elsewhere
// (e.g. dispatch bookkeeping charged by the scheduler) carry a
// //ckvet:allow chargepath annotation naming where the cycles come
// from.
var Chargepath = &analysis.Analyzer{
	Name: "chargepath",
	Doc: "exported hw/ck operations given an *hw.Exec that mutate simulated " +
		"state must charge the cost model on every path; cost constants must be charged",
	Run: runChargepath,
}

// chargePrimitives are the method names that advance virtual time,
// checked against their receiver type.
var chargePrimitives = map[string]func(types.Type) bool{
	"Charge":       isExecType,
	"ChargeNoIntr": isExecType,
	"Instr":        isExecType,
	"Advance":      isCtxType,
}

// knownCharging lists exported hw.Exec methods that chargepath has
// verified charge on every path when analyzing package hw; ck calls
// them without seeing their bodies (analysis is per-package, like the
// vet unit checker).
var knownCharging = map[string]bool{
	"Load32": true, "Store32": true, "Load8": true, "Store8": true,
	"Touch": true, "Translate": true, "Trap": true, "SetSpace": true,
	"PhysRead32": true, "PhysWrite32": true,
}

type chargeFuncInfo struct {
	decl    *ast.FuncDecl
	charges bool
	callees []*types.Func
}

func runChargepath(pass *analysis.Pass) error {
	if !ChargedPackages[pass.Pkg.Path()] {
		return nil
	}

	// Pass 1: collect every function with a body, whether it contains
	// a direct charging call, and its same-package callees.
	funcs := map[*types.Func]*chargeFuncInfo{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &chargeFuncInfo{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if directChargingCall(pass, call) {
					fi.charges = true
					return true
				}
				if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
			funcs[obj] = fi
		}
	}

	// Pass 2: propagate "charges" through same-package calls to a
	// fixed point.
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.charges {
				continue
			}
			for _, callee := range fi.callees {
				if cfi := funcs[callee]; cfi != nil && cfi.charges {
					fi.charges = true
					changed = true
					break
				}
			}
		}
	}

	chargingCall := func(call *ast.CallExpr) bool {
		if directChargingCall(pass, call) {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return false
		}
		if fi := funcs[callee]; fi != nil && fi.charges {
			return true
		}
		// Cross-package: exported hw.Exec operations verified when
		// analyzing hw itself.
		if callee.Pkg() != nil && callee.Pkg().Path() == "vpp/internal/hw" &&
			knownCharging[callee.Name()] {
			sig, ok := callee.Type().(*types.Signature)
			return ok && sig.Recv() != nil && isExecType(sig.Recv().Type())
		}
		return false
	}

	// Pass 3: every exported function handed an Exec that mutates
	// simulated state must charge on every path.
	for obj, fi := range funcs {
		if !obj.Exported() || !hasExecAccess(obj) {
			continue
		}
		mutPos, mutWhat := firstMutation(pass, fi.decl)
		if mutPos == token.NoPos {
			continue
		}
		if !blockMustCharge(fi.decl.Body.List, chargingCall) {
			pass.Reportf(fi.decl.Name.Pos(),
				"%s mutates simulated state (%s) but does not charge the cost model on every path; add Exec.Charge/ChargeNoIntr/Instr or annotate //ckvet:allow chargepath <where the cycles are charged>",
				obj.Name(), mutWhat)
		}
	}

	reportUnchargedCosts(pass)
	return nil
}

// hasExecAccess reports whether fn receives an execution context: an
// Exec receiver or an Exec parameter. Functions without one cannot
// charge by construction; their contract is "the caller charges".
func hasExecAccess(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && isExecType(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isExecType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// directChargingCall reports whether call is a charging primitive.
func directChargingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recvCheck, ok := chargePrimitives[sel.Sel.Name]
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && recvCheck(tv.Type)
}

// calleeFunc resolves the static callee of a call, or nil for builtins,
// function values and interface methods.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// firstMutation finds a statement in fd's body (function literals
// excluded: a closure mutates when called, not when built) that writes
// simulated state through a reference: assignment or ++/-- through a
// selector or index rooted at the receiver, a parameter, a
// package-level variable or a local pointer; delete() on such a map;
// or append assigned to such a field. Returns its position and a
// description.
func firstMutation(pass *analysis.Pass, fd *ast.FuncDecl) (token.Pos, string) {
	var pos token.Pos
	var what string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if d := mutationDesc(pass, lhs); d != "" {
					pos, what = n.Pos(), d
					return false
				}
			}
		case *ast.IncDecStmt:
			if d := mutationDesc(pass, n.X); d != "" {
				pos, what = n.Pos(), d
				return false
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if d := mutationDesc(pass, call.Args[0]); d != "" {
						pos, what = n.Pos(), "delete from "+d
						return false
					}
				}
			}
		}
		return true
	})
	return pos, what
}

// mutationDesc reports whether writing through expr mutates state
// shared beyond the function: the expression must be a selector/index
// path and its root must not be a plain local value. Writes through
// local pointers count — `ko := k.alloc(); ko.owner = x` mutates the
// descriptor cache.
func mutationDesc(pass *analysis.Pass, expr ast.Expr) string {
	path := expr
	var root *ast.Ident
loop:
	for {
		switch e := path.(type) {
		case *ast.ParenExpr:
			path = e.X
		case *ast.StarExpr:
			path = e.X
		case *ast.SelectorExpr:
			path = e.X
		case *ast.IndexExpr:
			path = e.X
		case *ast.Ident:
			root = e
			break loop
		default:
			return ""
		}
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	if v.Parent() == pass.Pkg.Scope() {
		return "package variable " + exprString(expr)
	}
	if path == expr {
		// Bare identifier: rebinding a local (even a pointer) mutates
		// nothing shared.
		return ""
	}
	if isPointerLike(pass, root) {
		// Selector/index path through a pointer or map: the receiver,
		// a pointer parameter, or a local pointer into state.
		return exprString(expr)
	}
	// Path rooted at a local value (struct copy, scratch slice):
	// writes stay local.
	return ""
}

// isPointerLike reports whether the identifier's type is a pointer or
// map — a reference into state rather than a local value. Slices are
// deliberately excluded: local slice scratch is common and writing
// aliased descriptor slices still goes through a selector root.
func isPointerLike(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Map:
		return true
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	}
	return "state"
}

// blockMustCharge walks statements in order: true as soon as a
// statement charges on all its paths; false if a return exit is
// reached first or the block falls off the end uncharged.
func blockMustCharge(stmts []ast.Stmt, charging func(*ast.CallExpr) bool) bool {
	for _, s := range stmts {
		if stmtMustCharge(s, charging) {
			return true
		}
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return false
		case *ast.ExprStmt:
			if isPanic(s.X) {
				// Crash path: no further simulated execution, so the
				// remaining (nonexistent) paths vacuously charge.
				return true
			}
		case *ast.BranchStmt:
			_ = s
			return false
		}
	}
	return false
}

// stmtMustCharge reports whether every path through s charges.
func stmtMustCharge(s ast.Stmt, charging func(*ast.CallExpr) bool) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		return exprCharges(s.X, charging)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if exprCharges(r, charging) {
				return true
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if exprCharges(r, charging) {
				return true
			}
		}
		return false
	case *ast.DeferStmt:
		// A deferred charging call runs on every exit.
		return exprCharges(s.Call, charging)
	case *ast.IfStmt:
		if stmtMustCharge(s.Init, charging) || exprCharges(s.Cond, charging) {
			return true
		}
		if !blockMustCharge(s.Body.List, charging) {
			return false
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			return blockMustCharge(e.List, charging)
		case *ast.IfStmt:
			return stmtMustCharge(e, charging)
		default:
			return false // no else: the fall-through path is uncharged
		}
	case *ast.BlockStmt:
		return blockMustCharge(s.List, charging)
	case *ast.SwitchStmt:
		return switchMustCharge(s.Body, s.Init, charging)
	case *ast.TypeSwitchStmt:
		return switchMustCharge(s.Body, s.Init, charging)
	case *ast.ForStmt:
		if stmtMustCharge(s.Init, charging) {
			return true
		}
		if s.Cond == nil {
			// No condition: the body runs at least once.
			return blockMustCharge(s.Body.List, charging)
		}
		return exprCharges(s.Cond, charging)
	case *ast.RangeStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.GoStmt:
		return false // may execute zero times / elsewhere
	}
	return false
}

func switchMustCharge(body *ast.BlockStmt, init ast.Stmt, charging func(*ast.CallExpr) bool) bool {
	if stmtMustCharge(init, charging) {
		return true
	}
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			return false
		}
		if cc.List == nil {
			hasDefault = true
		}
		if !blockMustCharge(cc.Body, charging) {
			return false
		}
	}
	return hasDefault
}

// exprCharges reports whether evaluating e always performs a charging
// call (a charging call appearing anywhere in the expression tree,
// short-circuit right operands excluded).
func exprCharges(e ast.Expr, charging func(*ast.CallExpr) bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			// && / || right operands are conditional.
			if n.Op == token.LAND || n.Op == token.LOR {
				if exprCharges(n.X, charging) {
					found = true
				}
				return false
			}
		case *ast.CallExpr:
			if charging(n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// reportUnchargedCosts flags unexported cost constants with no
// references in the package's non-test code. Exported Cost* constants
// are skipped: their uses may be in other packages, invisible to
// per-package analysis.
func reportUnchargedCosts(pass *analysis.Pass) {
	costs := map[types.Object]*ast.Ident{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "cost") {
						continue
					}
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						costs[obj] = name
					}
				}
			}
		}
	}
	if len(costs) == 0 {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				delete(costs, obj)
			}
			return true
		})
	}
	for obj, id := range costs {
		pass.Reportf(id.Pos(), "cost constant %s is never charged: either charge it where the simulated work happens or delete it from the cost model", obj.Name())
	}
}
