package analysistest_test

import (
	"fmt"
	"go/ast"
	"testing"

	"vpp/internal/lint/analysis"
	"vpp/internal/lint/analysistest"
)

// toyvet flags package-level vars named bad*: enough surface to prove
// want matching, //ckvet:allow suppression, and that the harness holds
// no shared mutable state across concurrent runs (the race job runs
// these parallel subtests under -race).
var toyvet = &analysis.Analyzer{
	Name: "toyvet",
	Doc:  "flag package-level vars named bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if len(name.Name) >= 3 && name.Name[:3] == "bad" {
							pass.Reportf(name.Pos(), "package-level var %s is bad", name.Name)
						}
					}
				}
			}
		}
		return nil
	},
}

func TestHarness(t *testing.T) {
	for i := 0; i < 4; i++ {
		t.Run(fmt.Sprintf("run%d", i), func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, "testdata/harness", toyvet, "toy")
		})
	}
}
