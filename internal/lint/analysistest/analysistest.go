// Package analysistest runs a ckvet analyzer over a fixture source tree
// and checks its diagnostics against // want "regexp" comments, in the
// style of golang.org/x/tools/go/analysis/analysistest but implemented
// on the standard library only.
//
// A fixture tree looks like
//
//	testdata/<name>/src/<import/path>/*.go
//
// and every import inside it — including stubs of standard packages
// like "time" — is resolved from the same tree by type-checking the
// stub source. Because the files live under a testdata directory the
// go tool never builds them; only this harness does.
//
// A want comment names the diagnostics expected on its own line:
//
//	for k := range m { // want `range over map\[int\]int`
//
// Several quoted regexps on one line mean several diagnostics on that
// line. Diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"vpp/internal/lint/analysis"
)

// wantRE matches one quoted expectation inside a want comment. Both
// `...` and "..." quoting are accepted so fixtures can write regexps
// containing either quote character.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run type-checks the package at import path pkgPath inside the fixture
// tree rooted at dir (which contains a src/ directory), runs the
// analyzer over it, and compares diagnostics against want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &treeImporter{
		root: filepath.Join(dir, "src"),
		fset: fset,
		pkgs: make(map[string]*types.Package),
	}
	files, pkg, info, err := imp.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, fset, files, diags)
}

// expectation is one parsed want regexp and whether a diagnostic
// matched it.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkWants compares diagnostics against the want comments in files.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	// key: "file:line" → expectations on that line.
	wants := make(map[string][]*expectation)
	var keys []string
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range wantRE.FindAllString(text[i+len("// want "):], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
					keys = append(keys, key)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic (%s): %s", key, d.Analyzer, d.Message)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
		delete(wants, key)
	}
}

// treeImporter loads packages from a fixture source tree, type-checking
// stub source for every import path it is asked for.
type treeImporter struct {
	root string
	fset *token.FileSet
	pkgs map[string]*types.Package
}

// Import implements types.Importer.
func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ti.pkgs[path]; ok {
		return pkg, nil
	}
	_, pkg, _, err := ti.load(path)
	return pkg, err
}

// load parses and type-checks the fixture package at the given import
// path, returning its syntax, package and type info.
func (ti *treeImporter) load(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		// Fall back to the real package for stdlib deps the fixture
		// does not stub (fixtures should stub what the analyzer under
		// test inspects, but may lean on the host for the rest).
		if pkg, impErr := importer.Default().Import(path); impErr == nil {
			ti.pkgs[path] = pkg
			return nil, pkg, nil, nil
		}
		return nil, nil, nil, fmt.Errorf("fixture package %s: %w", path, err)
	}
	var files []*ast.File
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ti.fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("fixture package %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ti}
	pkg, err := conf.Check(path, ti.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	ti.pkgs[path] = pkg
	return files, pkg, info, nil
}
