// Package toy is the fixture for the harness self-test: the toyvet
// analyzer flags every package-level var whose name starts with "bad".
package toy

var badOne = 1 // want `package-level var badOne is bad`

//ckvet:allow toyvet fixture demonstrates suppression
var badTwo = 2

var badThree = 3 // want `package-level var badThree is bad`

var good = 4
