package lint_test

import (
	"testing"

	"vpp/internal/lint"
	"vpp/internal/lint/analysistest"
)

func TestInvariantcall(t *testing.T) {
	analysistest.Run(t, "testdata/invariantcall", lint.Invariantcall, "vpp/internal/invfix")
}
