// Package sim is the poolpath fixture: the pooled per-epoch buffers
// (acts, subs, outbox, evFree, ran) may only grow at appends annotated
// as sanctioned growth points.
package sim

type event struct{ at uint64 }

type actRec struct{ at uint64 }

type Engine struct {
	acts   []actRec
	subs   []int
	outbox []int
	evFree []*event
	coros  []int
}

type Cluster struct {
	ran     []int
	engines []*Engine
}

// logAct is the sanctioned growth point; the annotation suppresses the
// finding and documents the reset point.
func (e *Engine) logAct(a actRec) {
	//ckvet:allow poolpath sanctioned growth point of the action log; reset by resetLogs at the epoch barrier
	e.acts = append(e.acts, a)
}

func (e *Engine) leakAct(a actRec) {
	e.acts = append(e.acts, a) // want `append to pooled Engine\.acts`
}

func (e *Engine) leakSub(s int) {
	e.subs = append(e.subs, s) // want `append to pooled Engine\.subs`
}

func (e *Engine) leakOutbox(o int) {
	e.outbox = append(e.outbox, o) // want `append to pooled Engine\.outbox`
}

func (e *Engine) leakFree(ev *event) {
	e.evFree = append(e.evFree, ev) // want `append to pooled Engine\.evFree`
}

// aliasLeak assigns the append result elsewhere; the pooled backing
// array still grows and is still aliased.
func (e *Engine) aliasLeak() []int {
	return append(e.subs, 1) // want `append to pooled Engine\.subs`
}

// addCoro grows a long-lived structure, not a per-epoch pool.
func (e *Engine) addCoro(c int) {
	e.coros = append(e.coros, c)
}

func (c *Cluster) leakRan(i int) {
	c.ran = append(c.ran, i) // want `append to pooled Cluster\.ran`
}

func (c *Cluster) addEngine(e *Engine) {
	c.engines = append(c.engines, e)
}

func use() {
	e := &Engine{}
	e.logAct(actRec{})
	e.leakAct(actRec{})
	e.leakSub(1)
	e.leakOutbox(1)
	e.leakFree(&event{})
	_ = e.aliasLeak()
	e.addCoro(1)
	c := &Cluster{}
	c.leakRan(0)
	c.addEngine(e)
}
