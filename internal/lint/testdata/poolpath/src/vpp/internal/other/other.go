// Package other checks poolpath's scope: a package outside
// vpp/internal/sim may append to its own fields of the same names.
package other

type buffers struct {
	acts []int
	ran  []int
}

func grow(b *buffers) {
	b.acts = append(b.acts, 1)
	b.ran = append(b.ran, 2)
}

func use() { grow(&buffers{}) }
