// Package shardfix is the shardsafe fixture: each function pairs a
// violation with the sanctioned shape (and, where useful, an allowed
// variant), mirroring the real ownership rules of the sharded engine.
package shardfix

import (
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/sim"
)

// ---------------------------------------------------------------------
// Package-level escapes: shard-owned state must hang off its shard.

var hotShard *sim.Engine // want `package-level variable hotShard can reach shard-owned sim\.Engine`

var execsByName map[string]*hw.Exec // want `package-level variable execsByName can reach shard-owned hw\.Exec`

type registry struct {
	kernels []*ck.Kernel
}

var globalRegistry registry // want `package-level variable globalRegistry can reach shard-owned ck\.Kernel`

//ckvet:allow shardsafe fixture read-only topology table built before Run
var allowedTable []*hw.MPM

var names []string // value state with no shard owner: not flagged

// ---------------------------------------------------------------------
// Foreign-topology scheduling: an engine reached through the machine
// topology may be any shard's.

func crossScheduleFlagged(e *hw.Exec) {
	e.MPM.Machine.MPMs[1].Shard.ScheduleAt(10, func() {}) // want `ScheduleAt on an engine reached through the machine topology \(an index into Machine\.MPMs\)`
}

func crossUnparkFlagged(m *hw.Machine, co *sim.Coro, clk *sim.Clock) {
	m.MPMs[0].Shard.UnparkOn(co, clk) // want `UnparkOn on an engine reached through the machine topology \(an index into Machine\.MPMs\)`
}

func clusterEngineFlagged(m *hw.Machine) {
	m.Cluster.Engine(1).ScheduleAfter(5, func() {}) // want `ScheduleAfter on an engine reached through the machine topology \(Cluster\.Engine\)`
}

func crossDispatchFlagged(e *hw.Exec, other *hw.Exec) {
	e.MPM.Machine.MPMs[0].CPUs[0].Dispatch(other) // want `Dispatch on an engine reached through the machine topology \(an index into Machine\.MPMs\)`
}

func ownShardClean(e *hw.Exec) {
	e.MPM.Shard.ScheduleAt(10, func() {}) // own anchor's shard: fine
}

func crossScheduleAllowed(e *hw.Exec) {
	//ckvet:allow shardsafe fixture delivery provably lands on a co-located shard
	e.MPM.Machine.MPMs[1].Shard.ScheduleAt(10, func() {})
}

func crossViaOutboxClean(e *hw.Exec, peer *hw.MPM) {
	// The sanctioned path: the destination engine is only named as a
	// ScheduleCrossAt destination, never mutated directly.
	e.MPM.Shard.ScheduleCrossAt(peer.Shard, 100, func() {})
}

// ---------------------------------------------------------------------
// Cross-shard closures run on the destination shard: engine-heap
// objects captured from the source are foreign there.

func crossClosureFlagged(src *sim.Engine, dst *sim.Engine, co *sim.Coro, clk *sim.Clock) {
	src.ScheduleCrossAt(dst, 100, func() {
		src.ScheduleAt(200, func() {}) // want `cross-shard closure calls ScheduleAt on a captured engine`
		clk.AdvanceTo(300)             // want `cross-shard closure calls AdvanceTo on a captured clock`
	})
}

func crossClosureDstClean(src *sim.Engine, dst *sim.Engine, co *sim.Coro, clk *sim.Clock) {
	src.ScheduleCrossAt(dst, 100, func() {
		dst.UnparkOn(co, clk) // the destination's own heap: the closure runs there
	})
}

// ---------------------------------------------------------------------
// Fault hooks must draw on the shard of the object they are installed
// on.

func mkSignalHook(eng *sim.Engine) func(to uint64, value uint32) bool {
	return func(to uint64, value uint32) bool { return false }
}

func hookMismatchFlagged(k *ck.Kernel, other *ck.Kernel) {
	k.SignalFault = mkSignalHook(other.MPM.Shard) // want `hook k\.SignalFault draws on other's shard`
}

func hookMatchedClean(k *ck.Kernel) {
	k.SignalFault = mkSignalHook(k.MPM.Shard)
}

func hookMismatchAllowed(k *ck.Kernel, other *ck.Kernel) {
	//ckvet:allow shardsafe fixture kernels are pinned to one shard by the test's ShardMap
	k.SignalFault = mkSignalHook(other.MPM.Shard)
}

// ---------------------------------------------------------------------
// Crash plans: a fault scheduled on one object's shard must not touch a
// different kernel or execution.

func crashPlanFlagged(victim *ck.Kernel, other *ck.Kernel) {
	victim.MPM.Shard.ScheduleAt(500, func() {
		other.Crash() // want `fault scheduled on victim's shard calls other\.Crash`
	})
}

func crashPlanClean(victim *ck.Kernel) {
	victim.MPM.Shard.ScheduleAt(500, func() {
		victim.Crash()
	})
}

func crashPlanReadClean(victim *ck.Kernel, other *ck.Kernel) {
	victim.MPM.Shard.ScheduleAt(500, func() {
		_ = other.Now() // pure read of monotone state: not flagged
	})
}
