// Package ck stubs the Cache Kernel for the shardsafe fixture.
package ck

import "vpp/internal/hw"

type Kernel struct {
	MPM            *hw.MPM
	SignalFault    func(to uint64, value uint32) bool
	WritebackFault func(kind string, id uint64) bool
}

func (k *Kernel) Crash()      {}
func (k *Kernel) Now() uint64 { return 0 }
