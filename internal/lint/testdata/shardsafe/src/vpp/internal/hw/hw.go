// Package hw stubs the hardware layer for the shardsafe fixture.
package hw

import "vpp/internal/sim"

type Machine struct {
	MPMs    []*MPM
	Cluster *sim.Cluster
}

type MPM struct {
	ID        int
	Machine   *Machine
	Shard     *sim.Engine
	CPUs      []*CPU
	WalkFault func(e *Exec, va uint32) bool
}

type CPU struct {
	MPM   *MPM
	Clock *sim.Clock
}

func (c *CPU) Dispatch(e *Exec) {}

type Exec struct {
	Name string
	MPM  *MPM
}

func (e *Exec) Now() uint64 { return 0 }
func (e *Exec) Kill()       {}
