// Package sim stubs the engine API for the shardsafe fixture: the
// analyzer identifies these types by import path and name.
package sim

type Engine struct{}

func (e *Engine) ScheduleAt(t uint64, fn func())                   {}
func (e *Engine) ScheduleAfter(d uint64, fn func())                {}
func (e *Engine) ScheduleCrossAt(dst *Engine, t uint64, fn func()) {}
func (e *Engine) UnparkOn(co *Coro, c *Clock)                      {}
func (e *Engine) NewCoro(name string, fn func(*Ctx)) *Coro         { return &Coro{} }
func (e *Engine) Now() uint64                                      { return 0 }
func (e *Engine) Shard() int                                       { return 0 }

type Coro struct{}

func (co *Coro) Name() string { return "" }

type Clock struct{}

func (c *Clock) Now() uint64     { return 0 }
func (c *Clock) AdvanceTo(t uint64) {}

type Ctx struct{}

type Cluster struct{}

func (c *Cluster) Engine(i int) *Engine { return nil }
