package rawsync

import (
	//ckvet:allow shardsafe fixture stats counters are process-wide atomics read after Run
	"sync/atomic"
)

type stats struct {
	hits uint64
}

func record(s *stats) {
	atomic.AddUint64(&s.hits, 1)
}
