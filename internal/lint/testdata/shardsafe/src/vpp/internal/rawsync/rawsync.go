// Package rawsync is the shardsafe fixture for the raw host
// synchronization checks: sync/atomic imports and channel operations in
// shard-owned code hide cross-shard communication from the epoch
// machinery.
package rawsync

import (
	"sync"        // want `import of sync in shard-owned code`
	"sync/atomic" // want `import of sync/atomic in shard-owned code`
)

type counters struct {
	mu sync.Mutex
	n  uint64
}

func bump(c *counters) {
	atomic.AddUint64(&c.n, 1)
}

func channels() {
	ch := make(chan int, 4) // want `raw channel creation in shard-owned code`
	ch <- 1                 // want `raw channel send in shard-owned code`
	<-ch                    // want `raw channel receive in shard-owned code`
	close(ch)               // want `raw channel close in shard-owned code`
}
