// Package rand stubs math/rand for the detmap fixture: any package-level
// function here uses the shared global generator.
package rand

// Intn draws from the process-global generator (flagged by detmap).
func Intn(n int) int { return 0 }
