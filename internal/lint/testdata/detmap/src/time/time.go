// Package time stubs the parts of the standard library the detmap
// fixture exercises. The analyzer matches callees by package path and
// name, so only the shapes matter.
package time

// Time stands in for the standard Time.
type Time struct{}

// Duration stands in for the standard Duration.
type Duration int64

// Now reads the host clock (flagged by detmap).
func Now() Time { return Time{} }

// Since reads the host clock (flagged by detmap).
func Since(t Time) Duration { return 0 }

// Sub is a pure method on Time (not flagged).
func (t Time) Sub(u Time) Duration { return 0 }
