// Package sim is the detmap fixture for the cross-shard inbox check:
// ranging over a buffer of crossMsg values applies cross-shard effects
// in append order, which is a per-shard accident; the barrier must
// consume them in merged rank order instead.
package sim

type crossMsg struct {
	at uint64
	fn func()
}

// drainFlagged applies inbox messages in buffer order.
func drainFlagged(inbox []crossMsg) {
	for _, m := range inbox { // want `range over a cross-shard message buffer`
		m.fn()
	}
}

// drainAllowed documents why its iteration order is safe.
func drainAllowed(inbox []crossMsg) {
	//ckvet:allow detmap fixture buffer was ranked before the loop
	for _, m := range inbox {
		m.fn()
	}
}

// drainRanked consumes through explicit ranked indices: not flagged.
func drainRanked(inbox []crossMsg, ranked []int) {
	for _, i := range ranked {
		inbox[i].fn()
	}
}
