// Package detfix is the detmap fixture: each flagged line carries a
// want comment; exempt shapes and suppressed lines carry none.
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

// rangeFlagged has a conditional body the analysis cannot prove
// order-independent.
func rangeFlagged(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `range over map\[int\]int iterates in nondeterministic order`
		if v > 0 {
			sum += v
		}
	}
	return sum
}

// rangeAccum is a pure commutative accumulation: exempt.
func rangeAccum(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// rangeInsert writes a second map keyed by the range key: exempt.
func rangeInsert(m map[string]int) map[string]int {
	out := make(map[string]int)
	for k := range m {
		out[k] = 1
	}
	return out
}

// rangeSorted is the collect-then-sort idiom: exempt.
func rangeSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rangeAllowed is a genuine order-independent reduction the analysis
// cannot prove; the annotation suppresses it.
func rangeAllowed(m map[int]int) int {
	best := -1
	//ckvet:allow detmap min-reduction over the keys is order independent
	for k := range m {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

// clock reads the host wall clock.
func clock() time.Time {
	return time.Now() // want `time\.Now reads the host clock`
}

// elapsed reads the host wall clock through time.Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the host clock`
}

// clockAllowed is host-side instrumentation by design.
func clockAllowed() time.Time {
	return time.Now() //ckvet:allow detmap host-side measurement in fixture
}

// sub calls a method on a time value: methods are never flagged.
func sub(a, b time.Time) time.Duration { return a.Sub(b) }

// roll uses the process-global generator.
func roll() int {
	return rand.Intn(6) // want `global math/rand`
}

// unstable uses the unstable sort.
func unstable(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is unstable`
}

// stable uses the stable sort: not flagged.
func stable(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// spawn starts a goroutine.
func spawn(f func()) {
	go f() // want `go statement in deterministic package`
}

// spawnAllowed documents why its goroutine is safe.
func spawnAllowed(f func()) {
	//ckvet:allow detmap fixture goroutine hands off synchronously
	go f()
}

// pick chooses among ready channels nondeterministically.
func pick(a, b chan int) int {
	select { // want `multi-way select in deterministic package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// poll is a single-channel non-blocking receive: not flagged.
func poll(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
