// Package sort stubs the standard library for the detmap fixture.
package sort

// Strings sorts a slice of strings.
func Strings(x []string) {}

// Slice is the unstable sort (flagged by detmap).
func Slice(x any, less func(i, j int) bool) {}

// SliceStable is the stable sort (not flagged).
func SliceStable(x any, less func(i, j int) bool) {}
