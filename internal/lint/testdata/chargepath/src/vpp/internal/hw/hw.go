// Package hw stubs the execution engine for the chargepath fixture.
// The analyzer recognizes Exec and its charging methods by package path
// and name, so only the shapes matter.
package hw

// Exec stands in for the execution context carrying the cycle meter.
type Exec struct {
	Mode int
}

// Charge is a charging primitive.
func (e *Exec) Charge(c uint64) {}

// ChargeNoIntr is a charging primitive.
func (e *Exec) ChargeNoIntr(c uint64) {}

// Instr is a charging primitive.
func (e *Exec) Instr(n int) {}

// Store32 is a known charging memory access.
func (e *Exec) Store32(va, v uint32) {}

// Load32 is a known charging memory access.
func (e *Exec) Load32(va uint32) uint32 { return 0 }
