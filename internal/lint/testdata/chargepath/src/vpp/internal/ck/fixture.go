// Package ck is the chargepath fixture: exported functions handed an
// execution context that mutate simulated state must charge the cost
// model on every path.
package ck

import "vpp/internal/hw"

// Table is simulated state reached through a pointer receiver.
type Table struct {
	count int
}

// BadOp mutates state without charging.
func (t *Table) BadOp(e *hw.Exec) { // want `BadOp mutates simulated state`
	t.count++
}

// GoodOp charges before mutating.
func (t *Table) GoodOp(e *hw.Exec) {
	e.ChargeNoIntr(1)
	t.count++
}

// BranchBad charges on only one of two paths.
func (t *Table) BranchBad(e *hw.Exec, cond bool) { // want `BranchBad mutates simulated state`
	if cond {
		e.Charge(1)
	}
	t.count++
}

// BranchGood charges on both paths.
func (t *Table) BranchGood(e *hw.Exec, cond bool) {
	if cond {
		e.Charge(1)
	} else {
		e.ChargeNoIntr(1)
	}
	t.count++
}

// ViaHelper charges transitively through an in-package helper.
func (t *Table) ViaHelper(e *hw.Exec) {
	chargeHelper(e)
	t.count++
}

func chargeHelper(e *hw.Exec) { e.Instr(1) }

// ViaKnown charges through a known charging Exec method.
func (t *Table) ViaKnown(e *hw.Exec) {
	e.Store32(0, 1)
	t.count++
}

// LocalOnly mutates only locals: nothing simulated changes.
func LocalOnly(e *hw.Exec) int {
	n := 0
	n++
	return n
}

// NoExec has no execution context and is out of scope.
func (t *Table) NoExec() {
	t.count++
}

// Allowed documents where the cycles are charged instead.
//
//ckvet:allow chargepath the fixture caller charges around this call
func (t *Table) Allowed(e *hw.Exec) {
	t.count++
}

const costUsed = 2

const costDead = 3 // want `cost constant costDead is never charged`

// UseCost keeps costUsed charged.
func UseCost(e *hw.Exec) {
	e.Charge(costUsed)
}
