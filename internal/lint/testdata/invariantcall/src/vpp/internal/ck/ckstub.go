// Package ck stubs kernel-object cache operations for the
// invariantcall fixture: methods on types declared here that return an
// error are cache operations whose fault path must not be dropped.
package ck

// Cache stands in for a kernel-object descriptor cache.
type Cache struct {
	n int
}

// Load is a cache operation with a fault return.
func (c *Cache) Load() error { return nil }

// Evict is a cache operation with a fault return.
func (c *Cache) Evict() error { return nil }

// Len has no fault return.
func (c *Cache) Len() int { return c.n }

// NewCache is a free function, not a cache operation.
func NewCache() (*Cache, error) { return &Cache{}, nil }
