// Package invfix is the invariantcall fixture: discarded error returns
// from kernel-object cache operations must be made explicit.
package invfix

import "vpp/internal/ck"

// Use exercises every discard shape.
func Use(c *ck.Cache) int {
	c.Load() // want `result of Load .* is discarded`
	_ = c.Evict()
	if err := c.Load(); err != nil {
		return 0
	}
	c.Len()
	//ckvet:allow invariantcall best-effort cleanup in this fixture
	c.Evict()
	ck.NewCache()
	return c.Len()
}
