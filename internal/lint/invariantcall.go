package lint

import (
	"go/ast"
	"go/types"

	"vpp/internal/lint/analysis"
)

// Invariantcall flags kernel-object cache operations whose fault/error
// return is silently discarded. In the caching model, identifier
// failures are ordinary events — the Cache Kernel answers a load with
// ErrInvalidID or ErrAllLocked and expects the application kernel to
// reload and retry (paper §2) — so a dropped error return is almost
// always a missing fault path, not dead code. Deliberate discards must
// be written `_ = k.Op(...)` (or `_, _ = ...`), which this analyzer
// accepts as an explicit decision.
var Invariantcall = &analysis.Analyzer{
	Name: "invariantcall",
	Doc: "error returns of Cache Kernel object-cache operations must be " +
		"handled or explicitly discarded with _ =",
	Run: runInvariantcall,
}

func runInvariantcall(pass *analysis.Pass) error {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !isInvariantOp(fn) {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s (including its fault/error) is discarded; identifier failures are ordinary events in the caching model — handle the error or discard it explicitly with _ =", fn.Name())
			return true
		})
	}
	return nil
}

// isInvariantOp reports whether fn is a method on a type declared in
// one of the kernel-object packages.
func isInvariantOp(fn *types.Func) bool {
	if fn.Pkg() == nil || !InvariantPackages[fn.Pkg().Path()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// returnsError reports whether any result of fn is of type error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
