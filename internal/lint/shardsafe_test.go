package lint_test

import (
	"testing"

	"vpp/internal/lint"
	"vpp/internal/lint/analysistest"
)

func TestShardsafe(t *testing.T) {
	analysistest.Run(t, "testdata/shardsafe", lint.Shardsafe, "vpp/internal/shardfix")
	analysistest.Run(t, "testdata/shardsafe", lint.Shardsafe, "vpp/internal/rawsync")
}
