package lint

import (
	"go/ast"
	"go/types"

	"vpp/internal/lint/analysis"
)

// Poolpath enforces the pooled-buffer discipline of the engine's
// zero-allocation hot path. The per-epoch structures — action and
// registration logs, cross-shard outboxes, the event-node free list,
// the barrier's participant scratch — are recycled across epochs: each
// has exactly one reset point (resetLogs at the epoch barrier, the
// epoch loop's scratch truncation, the free-list drain in newEvent)
// that returns it to length zero with its capacity retained. Growing
// one of these slices anywhere else breaks the bargain twice over:
//
//   - bytes appended outside the epoch machinery are never consumed by
//     a barrier, so they survive the reset as stale state that the next
//     epoch replays into the schedule (the cksan epoch-begin assertion
//     is the runtime form of this check);
//
//   - an unaccounted growth point reintroduces steady-state allocation
//     on the path the pools exist to keep allocation-free, invisibly
//     regressing the allocs/op budget CI enforces.
//
// Every sanctioned growth point therefore carries a
// //ckvet:allow poolpath annotation naming the reset point that drains
// it; poolpath flags any other append to a pooled field. The check is
// scoped to vpp/internal/sim — the only package that can name these
// unexported fields.
var Poolpath = &analysis.Analyzer{
	Name: "poolpath",
	Doc: "reject appends to the engine's pooled per-epoch buffers outside " +
		"their annotated reset-point growth sites",
	Run: runPoolpath,
}

// pooledFields names the recycled per-epoch slices by owning type.
// Engine.coros and the event heaps are deliberately absent: they are
// long-lived structures, not per-epoch pools.
var pooledFields = map[string]map[string]bool{
	"Engine":  {"acts": true, "subs": true, "outbox": true, "evFree": true},
	"Cluster": {"ran": true},
}

func runPoolpath(pass *analysis.Pass) error {
	if pass.Pkg.Path() != "vpp/internal/sim" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || len(call.Args) == 0 {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			// The first append argument is what grows; assigning the
			// result elsewhere still aliases the pooled backing array.
			sel, ok := call.Args[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			owner, field := pooledFieldOf(pass, sel)
			if owner == "" {
				return true
			}
			pass.Reportf(call.Pos(), "append to pooled %s.%s outside a sanctioned growth point: per-epoch buffers are recycled and stale growth survives the barrier reset; route the work through the epoch machinery or annotate //ckvet:allow poolpath <reset point that drains this>", owner, field)
			return true
		})
	}
	return nil
}

// pooledFieldOf resolves sel to a pooled-field access, returning the
// owning type and field name, or empty strings for anything else. The
// field sets are disjoint, so map iteration order cannot matter.
func pooledFieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) (owner, field string) {
	for o, fields := range pooledFields {
		if fields[sel.Sel.Name] && typeIs(pass, sel.X, "vpp/internal/sim", o) {
			return o, sel.Sel.Name
		}
	}
	return "", ""
}
