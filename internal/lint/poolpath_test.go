package lint_test

import (
	"testing"

	"vpp/internal/lint"
	"vpp/internal/lint/analysistest"
)

func TestPoolpath(t *testing.T) {
	analysistest.Run(t, "testdata/poolpath", lint.Poolpath, "vpp/internal/sim")
	analysistest.Run(t, "testdata/poolpath", lint.Poolpath, "vpp/internal/other")
}
