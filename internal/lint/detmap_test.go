package lint_test

import (
	"testing"

	"vpp/internal/lint"
	"vpp/internal/lint/analysistest"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata/detmap", lint.Detmap, "vpp/internal/detfix")
	analysistest.Run(t, "testdata/detmap", lint.Detmap, "vpp/internal/sim")
}
