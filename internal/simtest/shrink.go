package simtest

import "vpp/internal/chaos"

// Shrink greedily reduces a failing scenario to a smaller one that
// still fails, bounded by maxRuns re-executions. The reduction passes,
// in order: delta-debugging over the op stream (drop halves, then
// quarters, and so on), dropping faults one at a time, and switching
// application-kernel mixes off. Every candidate is re-run from scratch
// under the virtual clock, so the whole reduction is deterministic.
//
// It returns the smallest failing scenario found and its result; if no
// reduction applies the input scenario is re-run and returned as is.
//
// Candidate probes run with the early-stop option: the machine runs in
// virtual-time chunks and stops as soon as an oracle has recorded a
// failure, so a candidate that fails early costs a fraction of its
// horizon. Failures land at deterministic virtual times, so an
// early-stopped probe fails if and only if the full run fails; the
// result finally returned is always from a full re-run of the winning
// scenario.
func Shrink(sc Scenario, maxRuns int) (Scenario, *Result) {
	runs := 0
	tryRun := func(c Scenario) *Result {
		if runs >= maxRuns {
			return nil
		}
		runs++
		r := runWithOpts(c, nil, 1, runOpts{earlyStop: true})
		if r.Failed() {
			return r
		}
		return nil
	}

	best := sc
	bestRes := Run(best, nil)
	if !bestRes.Failed() {
		return best, bestRes
	}

	// Pass 1: ddmin-lite over the op stream. Try removing chunks of
	// halving size until no chunk of any size can go.
	for chunk := (len(best.Ops) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(best.Ops); {
			c := best
			c.Ops = make([]Op, 0, len(best.Ops)-chunk)
			c.Ops = append(c.Ops, best.Ops[:start]...)
			c.Ops = append(c.Ops, best.Ops[start+chunk:]...)
			if r := tryRun(c); r != nil {
				best, bestRes = c, r
				removed = true
				// Same start now addresses the next ops; don't advance.
			} else {
				start += chunk
			}
			if runs >= maxRuns {
				break
			}
		}
		if runs >= maxRuns {
			break
		}
		if !removed && chunk == 1 {
			break
		}
		if chunk > 1 {
			chunk = (chunk + 1) / 2
		} else if !removed {
			break
		}
	}

	// Pass 2: drop faults one at a time. Removing the last CrashKernel
	// fault also clears the crash-family flag so the oracles' crash
	// accounting matches the plan.
	for i := 0; i < len(best.Faults) && runs < maxRuns; {
		c := best
		c.Faults = make([]chaos.Fault, 0, len(best.Faults)-1)
		c.Faults = append(c.Faults, best.Faults[:i]...)
		c.Faults = append(c.Faults, best.Faults[i+1:]...)
		if c.Crash && !hasCrashFault(c.Faults) {
			c.Crash = false
			c.CrashAtUS = 0
		}
		if r := tryRun(c); r != nil {
			best, bestRes = c, r
		} else {
			i++
		}
	}

	// Pass 3: switch mixes off one at a time.
	muts := []func(*Scenario){
		func(c *Scenario) { c.Mix.Unix = false },
		func(c *Scenario) { c.Mix.RTK = false },
		func(c *Scenario) { c.Mix.DSM = false },
		func(c *Scenario) { c.Mix.Netboot = false },
	}
	for _, mut := range muts {
		if runs >= maxRuns {
			break
		}
		c := best
		mut(&c)
		if scenarioEqual(c, best) {
			continue
		}
		if r := tryRun(c); r != nil {
			best, bestRes = c, r
		}
	}

	// Probes may have stopped early; the reported reduction is a full run.
	if len(best.Ops) != len(sc.Ops) || len(best.Faults) != len(sc.Faults) || !scenarioEqual(best, sc) {
		bestRes = Run(best, nil)
	}
	return best, bestRes
}

func hasCrashFault(fs []chaos.Fault) bool {
	for _, f := range fs {
		if f.Kind == chaos.CrashKernel {
			return true
		}
	}
	return false
}

// scenarioEqual compares the scalar shape (slices excluded: the mix
// mutations never touch them).
func scenarioEqual(a, b Scenario) bool {
	return a.Seed == b.Seed && a.MPMs == b.MPMs && a.CPUsPerMPM == b.CPUsPerMPM &&
		a.ThreadSlots == b.ThreadSlots && a.MappingSlots == b.MappingSlots &&
		a.HorizonUS == b.HorizonUS && a.Mix == b.Mix && a.Crash == b.Crash &&
		a.CrashAtUS == b.CrashAtUS && a.FaultSeed == b.FaultSeed
}
