package simtest

import "vpp/internal/chaos"

// ShrinkStats reports what the prefix-determinism machinery saved
// during one reduction.
type ShrinkStats struct {
	// ProbesRun counts candidates actually re-executed; ProbesSkipped
	// counts candidates accepted without any run because their earliest
	// possible divergence from the current best provably postdates the
	// recorded failure.
	ProbesRun     int
	ProbesSkipped int
	// ChecksSkipped counts per-op kernel-invariant re-checks skipped in
	// executed probes below their judge-from point.
	ChecksSkipped int
	// PrefixCyclesSaved totals the virtual-time prefixes not re-run (one
	// whole prefix per skipped probe) or re-run but not re-judged (one
	// per executed probe with a positive judge-from point).
	PrefixCyclesSaved uint64
}

// Shrink greedily reduces a failing scenario to a smaller one that
// still fails, bounded by maxRuns re-executions. See ShrinkWithStats.
func Shrink(sc Scenario, maxRuns int) (Scenario, *Result) {
	min, res, _ := ShrinkWithStats(sc, maxRuns)
	return min, res
}

// ShrinkWithStats is Shrink plus its savings accounting. The reduction
// passes, in order: delta-debugging over the op stream (drop halves,
// then quarters, and so on), dropping faults one at a time, and
// switching application-kernel mixes off. Every candidate that must be
// re-executed is re-run from scratch under the virtual clock, so the
// whole reduction is deterministic.
//
// The replay snapshot tier's checkpoint for a mid-trace cut is the
// deterministic rebuild recipe — re-run the shared prefix, then
// diverge (see internal/snap). The shrinker exploits the same
// determinism without re-running: every recorded run knows when each
// op started and when the first oracle failure landed, so a candidate
// whose edits only touch ops (or fault windows) that begin after the
// recorded failure must replay the failing prefix byte-for-byte and is
// accepted with no run at all. Candidates that do have to run resume
// judgement from their divergence point: the per-op invariant
// re-checks over the provably-shared prefix are skipped, since that
// prefix already passed them on the run it is shared with.
//
// Candidate probes that execute run with the early-stop option: the
// machine runs in virtual-time chunks and stops as soon as an oracle
// has recorded a failure. Failures land at deterministic virtual
// times, so an early-stopped probe fails if and only if the full run
// fails; the result finally returned is always from a full re-run of
// the winning scenario.
func ShrinkWithStats(sc Scenario, maxRuns int) (Scenario, *Result, ShrinkStats) {
	var stats ShrinkStats
	runs := 0

	best := sc
	bestRes := runWithOpts(best, nil, 1, runOpts{record: true})
	if !bestRes.Failed() {
		return best, bestRes, stats
	}

	// Instrumentation for the current best. starts[i] is when op i began
	// (MaxUint64 = not before the run ended); firstFail is when the first
	// oracle fired; both are only trustworthy strictly below validUpTo
	// (an early-stopped probe records nothing past its stop time).
	starts := bestRes.OpStarts
	firstFail := bestRes.FirstFailAt
	validUpTo := bestRes.FinalClock
	if starts == nil {
		validUpTo = 0 // degenerate setup-failure run: no instrumentation
	}

	tryRun := func(c Scenario, judgeFrom uint64) *Result {
		if runs >= maxRuns {
			return nil
		}
		runs++
		stats.ProbesRun++
		if judgeFrom > 0 {
			stats.PrefixCyclesSaved += judgeFrom
		}
		r := runWithOpts(c, nil, 1, runOpts{earlyStop: true, record: true, judgeFrom: judgeFrom})
		stats.ChecksSkipped += r.JudgeSkipped
		if r.Failed() {
			return r
		}
		return nil
	}
	accept := func(c Scenario, r *Result) {
		best, bestRes = c, r
		starts = r.OpStarts
		firstFail = r.FirstFailAt
		validUpTo = r.FinalClock
		if starts == nil {
			validUpTo = 0
		}
	}

	// Pass 1: ddmin-lite over the op stream. Removing ops [start,
	// start+chunk) diverges no earlier than the first start time of any
	// removed or index-shifted op (op addresses derive from the global
	// op index), unless the removal changes which nodes carry swap ops —
	// the one construction-time read of the op stream.
	swapMask := func(s Scenario) uint64 {
		var m uint64
		for _, op := range s.Ops {
			if op.Kind == OpSwap {
				m |= 1 << uint(op.MPM&63)
			}
		}
		return m
	}
	opsDivergence := func(start int) uint64 {
		if starts == nil {
			return 0
		}
		d := validUpTo
		for j := start; j < len(starts); j++ {
			if starts[j] < d {
				d = starts[j]
			}
		}
		return d
	}
	for chunk := (len(best.Ops) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(best.Ops); {
			c := best
			c.Ops = make([]Op, 0, len(best.Ops)-chunk)
			c.Ops = append(c.Ops, best.Ops[:start]...)
			c.Ops = append(c.Ops, best.Ops[start+chunk:]...)
			div := uint64(0)
			if swapMask(c) == swapMask(best) {
				div = opsDivergence(start)
			}
			if firstFail < div {
				// The candidate replays the failing prefix verbatim:
				// accept without running. The surviving shifted ops keep
				// best's recorded start times, all of which are >= div, so
				// clamping validUpTo keeps every later divergence bound
				// honest without re-instrumenting.
				stats.ProbesSkipped++
				stats.PrefixCyclesSaved += firstFail
				best = c
				ns := make([]uint64, 0, len(c.Ops))
				ns = append(ns, starts[:start]...)
				ns = append(ns, starts[start+chunk:]...)
				starts = ns
				if div < validUpTo {
					validUpTo = div
				}
				removed = true
				// Same start now addresses the next ops; don't advance.
			} else if r := tryRun(c, div); r != nil {
				accept(c, r)
				removed = true
			} else {
				start += chunk
			}
			if runs >= maxRuns {
				break
			}
		}
		if runs >= maxRuns {
			break
		}
		if !removed && chunk == 1 {
			break
		}
		if chunk > 1 {
			chunk = (chunk + 1) / 2
		} else if !removed {
			break
		}
	}

	// Pass 2: drop faults one at a time. Removing the last CrashKernel
	// fault also clears the crash-family flag so the oracles' crash
	// accounting matches the plan. A pure window/probability fault
	// cannot act — or draw from the per-shard fault stream — before its
	// window opens, so its removal diverges no earlier than At; crash
	// and kill faults are scheduled as engine events at construction
	// (sequence-number shifts reach the whole run), and removals that
	// change which hook families arm alter construction, so both pin
	// the divergence to 0.
	armFamilies := func(fs []chaos.Fault) (m uint8) {
		for _, f := range fs {
			switch f.Kind {
			case chaos.WalkError:
				m |= 1
			case chaos.DropSignal, chaos.DupSignal:
				m |= 2
			case chaos.CorruptWriteback:
				m |= 4
			case chaos.DropFrame, chaos.DupFrame, chaos.DelayFrame:
				m |= 8
			}
		}
		return
	}
	for i := 0; i < len(best.Faults) && runs < maxRuns; {
		f := best.Faults[i]
		c := best
		c.Faults = make([]chaos.Fault, 0, len(best.Faults)-1)
		c.Faults = append(c.Faults, best.Faults[:i]...)
		c.Faults = append(c.Faults, best.Faults[i+1:]...)
		if c.Crash && !hasCrashFault(c.Faults) {
			c.Crash = false
			c.CrashAtUS = 0
		}
		div := uint64(0)
		if f.Kind != chaos.CrashKernel && f.Kind != chaos.KillRunning &&
			armFamilies(c.Faults) == armFamilies(best.Faults) {
			div = f.At
			if validUpTo < div {
				div = validUpTo
			}
		}
		if firstFail < div {
			stats.ProbesSkipped++
			stats.PrefixCyclesSaved += firstFail
			best = c
			if div < validUpTo {
				validUpTo = div
			}
		} else if r := tryRun(c, div); r != nil {
			accept(c, r)
		} else {
			i++
		}
	}

	// Pass 3: switch mixes off one at a time. Mixes launch at
	// construction, so there is no shared prefix to exploit.
	muts := []func(*Scenario){
		func(c *Scenario) { c.Mix.Unix = false },
		func(c *Scenario) { c.Mix.RTK = false },
		func(c *Scenario) { c.Mix.DSM = false },
		func(c *Scenario) { c.Mix.Netboot = false },
	}
	for _, mut := range muts {
		if runs >= maxRuns {
			break
		}
		c := best
		mut(&c)
		if scenarioEqual(c, best) {
			continue
		}
		if r := tryRun(c, 0); r != nil {
			accept(c, r)
		}
	}

	// Probes may have stopped early or been accepted without running;
	// the reported reduction is always a full run.
	if len(best.Ops) != len(sc.Ops) || len(best.Faults) != len(sc.Faults) || !scenarioEqual(best, sc) {
		bestRes = Run(best, nil)
		if !bestRes.Failed() {
			// Defensive: prefix determinism says this cannot happen — but
			// never return a "reduction" that passes. Fall back to the
			// original, which the initial run proved failing.
			best = sc
			bestRes = Run(best, nil)
		}
	}
	return best, bestRes, stats
}

func hasCrashFault(fs []chaos.Fault) bool {
	for _, f := range fs {
		if f.Kind == chaos.CrashKernel {
			return true
		}
	}
	return false
}

// scenarioEqual compares the scalar shape (slices excluded: the mix
// mutations never touch them).
func scenarioEqual(a, b Scenario) bool {
	return a.Seed == b.Seed && a.MPMs == b.MPMs && a.CPUsPerMPM == b.CPUsPerMPM &&
		a.ThreadSlots == b.ThreadSlots && a.MappingSlots == b.MappingSlots &&
		a.HorizonUS == b.HorizonUS && a.Mix == b.Mix && a.Crash == b.Crash &&
		a.CrashAtUS == b.CrashAtUS && a.FaultSeed == b.FaultSeed
}
