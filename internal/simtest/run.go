package simtest

import (
	"bytes"
	"fmt"
	"math"
	//ckvet:allow shardsafe harness mu guards failures/trunc recorded from checks on any shard; see the harness comment on cross-node state
	"sync"

	"vpp/internal/aklib"
	"vpp/internal/chaos"
	"vpp/internal/ck"
	"vpp/internal/dsm"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/netboot"
	"vpp/internal/rtk"
	"vpp/internal/sim"
	"vpp/internal/srm"
	"vpp/internal/unixemu"
)

// Harness signal values, well away from every library's own.
const (
	sigTick  uint32 = 0x7C1 // ticker wakeup for tickWait blockers
	sigPing  uint32 = 0x7C2 // pulse service increment
	sigNap   uint32 = 0x7C3 // pulse service self-unload request
	sigStop  uint32 = 0x7C4 // service shutdown
	sigAlarm uint32 = 0x7C5 // alarm listener payload
	sigGo    uint32 = 0x7C6 // echo client release
)

const (
	maxFailures    = 64
	rtkActivations = 12
	dsmBase        = uint32(0x6000_0000)
	dsmRounds      = 12
)

// FNV-1a, matching the determinism goldens' schedule fingerprint.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvAdd(h uint64, name string, at uint64) uint64 {
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(at >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// harness owns one scenario run: the machine, the per-node state and
// the oracle ledger. Everything below runs under the virtual-time
// engine; on a sharded machine nodes on different shards run
// concurrently inside an epoch, so the one piece of state every node
// writes — the failure list — takes a mutex. All other cross-node
// harness state is either written by one node and read after Run
// (opDone, net*), or shared only between the two DSM nodes, which
// shardPlan co-locates on one shard.
type harness struct {
	sc      Scenario
	horizon uint64
	m       *hw.Machine
	inj     *chaos.Injector
	nodes   []*node

	// fault-plan families present, for drop/dup-aware conservation
	drop, dup, corrupt bool

	// opDone counts completions per op (conservation: exactly once).
	opDone []int

	mu       sync.Mutex // guards failures/trunc
	failures []Failure
	trunc    bool

	// Shrink instrumentation (runOpts.record/judgeFrom; serial runs
	// only, so the unguarded fields never race).
	record       bool
	judgeFrom    uint64
	opStartAt    []uint64 // per op; MaxUint64 = never started
	firstFailAt  uint64
	failSeen     bool
	judgeSkipped int

	// lastByName tracks each coroutine's previous dispatch time for the
	// monotonicity oracle. Clocks are per-coroutine (a fresh coroutine
	// starts at cycle 0, behind everyone), so virtual time is monotone
	// per execution context, not across the global dispatch interleaving.
	lastByName map[string]uint64
	monoBad    bool
	hash       uint64
	dispatches uint64

	fiber    [2]*dev.FiberPort
	dsmReady [2]bool // per-node: sharer attached
	dsmAt    [2]bool // per-node: ping-pong target reached

	netImage []byte
	netGot   []byte
	netErr   error
	netDone  bool
}

func (h *harness) failf(oracle, format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.failures) >= maxFailures {
		h.trunc = true
		return
	}
	if h.record && !h.failSeen {
		h.failSeen = true
		h.firstFailAt = h.m.Now()
	}
	h.failures = append(h.failures, Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

// node is the per-MPM state: its Cache Kernel instance, SRM, driver
// kernel and harness services.
type node struct {
	h   *harness
	idx int
	mpm *hw.MPM
	k   *ck.Kernel
	s   *srm.SRM

	aks []*aklib.AppKernel // every application kernel on this node, for coherence

	ak         *aklib.AppKernel // the driver kernel's library
	usid       ck.ObjID         // the driver's op space
	pager      *pager
	traps      uint64
	spawned    []*aklib.Thread // fire-and-forget op threads (they exit)
	ledger     []int           // op indices completed asynchronously
	evictRaces int             // mapflip unloads that lost to concurrent eviction

	waiters    []ck.ObjID // threads blocked in tickWait, re-woken by the ticker
	driverDone bool
	bodyErr    error

	// pulse service
	pulse       *aklib.Thread
	pulseStop   bool
	pulseDone   bool
	pulseCount  int
	pulseNaps   int
	napsDone    int
	napArmed    bool
	pingsPosted int

	// alarm listener
	listener     *aklib.Thread
	listenerStop bool
	listenerDone bool
	alarmsSet    int
	alarmsFired  int
	lastAlarmAt  uint64

	// swap service
	scratch      *srm.Launched
	scratchStop  bool
	scratchDone  bool
	scratchBeats int
	swapper      *aklib.Thread
	swapReq      int
	swapAck      int
	swapStop     bool
	swapDone     bool

	// mixes
	u        *unixemu.Unix
	initPID  int
	unixDone bool
	rtkDone  bool
	rtkStats rtk.TaskStats
	rtkErr   error
	dsmNode  *dsm.Node
	dsmDone  bool
	dsmErr   error

	reports []*srm.RecoveryReport
}

func (n *node) hasUnix() bool { return n.h.sc.Mix.Unix && n.idx == 0 }
func (n *node) hasRTK() bool  { return n.h.sc.Mix.RTK && n.idx == n.h.sc.MPMs-1 }
func (n *node) hasDSM() bool  { return n.h.sc.Mix.DSM && n.h.sc.MPMs >= 2 && n.idx < 2 }

func (n *node) hasSwapOps() bool {
	for _, op := range n.h.sc.Ops {
		if op.Kind == OpSwap && op.MPM == n.idx {
			return true
		}
	}
	return false
}

// hasMixActors reports whether library threads on this node keep making
// Cache Kernel calls while the driver is otherwise done — which rules
// out the mid-run coherence check (a thread parked inside a descriptor
// operation is legitimately between cache and master copy).
func (n *node) hasMixActors() bool { return n.hasUnix() || n.hasRTK() || n.hasDSM() }

// Run executes one scenario and evaluates every oracle. The optional
// trace callback observes the full dispatch schedule (for the
// determinism golden).
func Run(sc Scenario, trace func(name string, at uint64)) *Result {
	return runWith(sc, trace, 1)
}

// RunSharded runs the scenario on a sharded machine: MPMs are spread
// over up to shards engine shards (subject to shardPlan's co-location
// constraints) and the result must be byte-identical to Run's — that
// equivalence is cksim's oracle for the parallel engine.
func RunSharded(sc Scenario, trace func(name string, at uint64), shards int) *Result {
	return runWith(sc, trace, shards)
}

// RunCut runs the scenario pausing once at virtual time cut for the
// pause hook (the replay fork tier's snapshot instant) before running
// to completion. cut == 0 with a nil pause is RunSharded.
func RunCut(sc Scenario, trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) *Result {
	return runWithOpts(sc, trace, shards, runOpts{cut: cut, pause: pause})
}

// shardPlan assigns each MPM a shard. Interconnect traffic (fiber,
// Ethernet) is shard-safe by construction, but two couplings live
// outside the simulated machine and force co-location:
//
//   - the DSM nodes 0 and 1 share harness-level ping-pong state
//     (dsmReady/dsmAt), so they must share one timeline;
//   - a probabilistic fault plan (0 < Prob < 1) of a per-kernel or
//     per-MPM kind draws from per-shard RNG streams in per-shard hook
//     order, so splitting its targets would change which events get
//     faulted versus the serial run. Co-locating every MPM keeps the
//     single serial draw order. Frame-fault kinds are exempt: the
//     harness only arms NICs, and both NICs live on MPM 0.
//
// The returned map is nil when one shard (or fewer MPMs) makes the
// question moot.
func shardPlan(sc *Scenario, shards int) []int {
	if shards <= 1 || sc.MPMs <= 1 {
		return nil
	}
	for _, f := range sc.Faults {
		if f.Prob > 0 && f.Prob < 1 {
			switch f.Kind {
			case chaos.DropSignal, chaos.DupSignal, chaos.CorruptWriteback, chaos.WalkError:
				return make([]int, sc.MPMs) // all MPMs on shard 0
			}
		}
	}
	group := make([]int, sc.MPMs)
	for i := range group {
		group[i] = i
	}
	if sc.Mix.DSM && sc.MPMs >= 2 {
		group[1] = group[0]
	}
	// Fold the distinct groups onto the available shards, in MPM order.
	plan := make([]int, sc.MPMs)
	seen := make(map[int]int)
	next := 0
	for i, g := range group {
		id, ok := seen[g]
		if !ok {
			id = next % shards
			seen[g] = id
			next++
		}
		plan[i] = id
	}
	return plan
}

// runOpts are the harness's execution-mode knobs: the replay-tier cut
// (pause once at a virtual time, then continue) and the shrink prober's
// early stop (run in bounded chunks, stop once an oracle has fired).
type runOpts struct {
	cut       uint64
	pause     func(m *hw.Machine)
	earlyStop bool

	// record instruments the run with per-op start times and the
	// first-failure time (Result.OpStarts/FirstFailAt). Serial runs
	// only: recording reads the machine clock from oracle context.
	record bool
	// judgeFrom skips the per-op invariant re-checks for ops starting
	// strictly before it. Only sound when the caller has proven the run
	// identical, up to that virtual time, to a run that already passed
	// judgement there (the shrink prober's prefix-determinism argument).
	judgeFrom uint64
}

func runWith(sc Scenario, trace func(name string, at uint64), shards int) *Result {
	return runWithOpts(sc, trace, shards, runOpts{})
}

// runMachine drives the built machine to its horizon under the options:
// pausing once at the cut, and — for shrink probes — running in
// virtual-time chunks that stop as soon as a failure is on the ledger
// (failures are recorded at deterministic virtual times, so a full run
// of the same scenario records the same failure; stopping early cannot
// turn a failing scenario into a passing one).
func (h *harness) runMachine(opts runOpts) error {
	if opts.pause != nil {
		if err := h.m.Run(opts.cut); err != nil {
			return err
		}
		opts.pause(h.m)
	}
	if opts.earlyStop {
		chunk := h.horizon/8 + 1
		// Past the ticker retirement point nothing periodic remains; the
		// final unbounded Run below drains whatever is left.
		limit := h.horizon + hw.CyclesFromMicros(100_000)
		for next := h.m.Now() + chunk; next < limit; next += chunk {
			h.mu.Lock()
			failed := len(h.failures) > 0
			h.mu.Unlock()
			if failed {
				return nil
			}
			if err := h.m.Run(next); err != nil {
				return err
			}
		}
	}
	return h.m.Run(math.MaxUint64)
}

func runWithOpts(sc Scenario, trace func(name string, at uint64), shards int, opts runOpts) *Result {
	if sc.Orch != nil {
		return runOrch(sc, trace, shards, opts)
	}
	res := &Result{Scenario: sc}
	h := &harness{sc: sc, horizon: hw.CyclesFromMicros(float64(sc.HorizonUS))}
	h.record = opts.record
	h.judgeFrom = opts.judgeFrom
	if opts.record {
		h.opStartAt = make([]uint64, len(sc.Ops))
		for i := range h.opStartAt {
			h.opStartAt[i] = math.MaxUint64
		}
	}
	for _, f := range sc.Faults {
		switch f.Kind {
		case chaos.DropSignal:
			h.drop = true
		case chaos.DupSignal:
			h.dup = true
		case chaos.CorruptWriteback:
			h.corrupt = true
		}
	}

	cfg := hw.DefaultConfig()
	cfg.MPMs = sc.MPMs
	cfg.CPUsPerMPM = sc.CPUsPerMPM
	cfg.Shards = shards
	cfg.ShardMap = shardPlan(&sc, shards)
	h.m = hw.NewMachine(cfg)
	h.installTrace(trace)

	var kernels []*ck.Kernel
	for i := 0; i < sc.MPMs; i++ {
		k, err := ck.New(h.m.MPMs[i], ck.Config{
			ThreadSlots:  sc.ThreadSlots,
			MappingSlots: sc.MappingSlots,
		})
		if err != nil {
			h.failf("op", "ck.New mpm %d: %v", i, err)
			res.Failures = h.failures
			return res
		}
		kernels = append(kernels, k)
		h.nodes = append(h.nodes, &node{h: h, idx: i, mpm: h.m.MPMs[i], k: k})
	}
	h.opDone = make([]int, len(sc.Ops))

	h.inj = chaos.New(chaos.Plan{Seed: sc.FaultSeed, Faults: sc.Faults})
	h.inj.Arm(h.m, kernels...)

	if sc.Mix.DSM && sc.MPMs >= 2 {
		h.fiber[0], h.fiber[1] = dev.ConnectFiber(h.m.MPMs[0], h.m.MPMs[1], "dsm")
	}
	if sc.Mix.Netboot {
		h.setupNetboot()
	}

	for _, n := range h.nodes {
		n := n
		s, err := srm.Start(n.k, n.mpm, func(s *srm.SRM, e *hw.Exec) { n.srmMain(s, e) })
		if err != nil {
			h.failf("op", "srm.Start mpm %d: %v", n.idx, err)
			res.Failures = h.failures
			return res
		}
		n.s = s
	}

	h.m.SetMaxSteps(2_000_000_000)
	runErr := h.runMachine(opts)
	h.finish(runErr)

	res.Failures = h.failures
	res.FailuresTruncated = h.trunc
	res.FinalClock = h.m.Now()
	res.Steps = h.m.Steps()
	res.Dispatches = h.dispatches
	res.Hash = h.hash
	res.FaultStats = h.inj.Stats
	if h.record {
		res.OpStarts = h.opStartAt
		res.FirstFailAt = math.MaxUint64
		if h.failSeen {
			res.FirstFailAt = h.firstFailAt
		}
	}
	res.JudgeSkipped = h.judgeSkipped
	return res
}

// installTrace wires the dispatch-schedule observer: the monotonicity
// oracle, the FNV-1a schedule hash, and the caller's trace callback.
// Shared by the op-stream and orchestration families.
func (h *harness) installTrace(trace func(name string, at uint64)) {
	h.lastByName = make(map[string]uint64)
	h.hash = fnvOffset
	h.m.SetTraceDispatch(func(name string, at uint64) {
		h.dispatches++
		if last, ok := h.lastByName[name]; ok && at < last && !h.monoBad {
			h.monoBad = true
			h.failf("monotonicity", "dispatch %q at %d after %d: its virtual clock ran backwards", name, at, last)
		}
		h.lastByName[name] = at
		h.hash = fnvAdd(h.hash, name, at)
		if trace != nil {
			trace(name, at)
		}
	})
}

// RunSeed generates and runs one seed.
func RunSeed(seed uint64) *Result { return Run(Generate(seed), nil) }

// SeedWorkload adapts one seed to the exp determinism-golden harness:
// it returns the final clock and step count, and an error carrying the
// fingerprint if any oracle fired.
func SeedWorkload(seed uint64) func(trace func(name string, at uint64), shards int) (uint64, uint64, error) {
	return func(trace func(name string, at uint64), shards int) (uint64, uint64, error) {
		r := RunSharded(Generate(seed), trace, shards)
		if r.Failed() {
			return r.FinalClock, r.Steps, fmt.Errorf("cksim seed %d failed:\n%s", seed, r.Fingerprint())
		}
		return r.FinalClock, r.Steps, nil
	}
}

// SeedWorkloadCut adapts one seed to the replay fork tier
// (snap.CutFunc): like SeedWorkload but pausing at the cut.
func SeedWorkloadCut(seed uint64) func(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (uint64, uint64, error) {
	return func(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (uint64, uint64, error) {
		r := RunCut(Generate(seed), trace, shards, cut, pause)
		if r.Failed() {
			return r.FinalClock, r.Steps, fmt.Errorf("cksim seed %d failed:\n%s", seed, r.Fingerprint())
		}
		return r.FinalClock, r.Steps, nil
	}
}

// setupNetboot wires two NICs on node 0 and schedules a TFTP image
// fetch; the image content derives from the scenario seed.
func (h *harness) setupNetboot() {
	wire := dev.NewWire()
	nicA := dev.AttachNIC(h.m.MPMs[0], wire, dev.MAC{2, 0, 0, 0, 0, 1})
	nicB := dev.AttachNIC(h.m.MPMs[0], wire, dev.MAC{2, 0, 0, 0, 0, 2})
	sa := netboot.NewStack("bootc", nicA, netboot.IP{10, 0, 0, 1})
	sb := netboot.NewStack("boots", nicB, netboot.IP{10, 0, 0, 2})
	sa.Start(h.m.MPMs[0])
	sb.Start(h.m.MPMs[0])
	for _, f := range h.sc.Faults {
		if f.Kind == chaos.DropFrame || f.Kind == chaos.DupFrame || f.Kind == chaos.DelayFrame {
			h.inj.ArmNIC(nicA)
			h.inj.ArmNIC(nicB)
			break
		}
	}
	h.netImage = make([]byte, 3000)
	r := sim.NewRand(h.sc.Seed ^ 0x696d616765) // decorrelate from the scenario stream
	for i := range h.netImage {
		h.netImage[i] = byte(r.Uint64())
	}
	srv := netboot.NewTFTPServer(sb, map[string][]byte{"vmunix": h.netImage})
	h.m.MPMs[0].NewDeviceExec("simtest/tftpd", func(e *hw.Exec) { _ = srv.Serve(e) })
	h.m.MPMs[0].NewDeviceExec("simtest/bootclient", func(e *hw.Exec) {
		e.Charge(2000)
		h.netGot, h.netErr = netboot.TFTPGet(e, sa, netboot.IP{10, 0, 0, 2}, "vmunix", 2001)
		h.netDone = true
		srv.Stop()
		sa.Stop()
		sb.Stop()
	})
}

// srmMain is each node's SRM boot body: launch the services and mixes,
// then return so a crash finds nothing of the SRM to strand.
func (n *node) srmMain(s *srm.SRM, e *hw.Exec) {
	n.s = s
	n.aks = append(n.aks, s.AppKernel)
	if n.hasSwapOps() {
		n.launchScratch(e)
		n.startSwapper(e)
	}
	if n.hasUnix() {
		n.launchUnix(e)
	}
	if n.hasRTK() {
		n.launchRTK(e)
	}
	if n.hasDSM() {
		n.launchDSM(e)
	}
	n.launchDriver(e)
	n.startTicker()
	if n.h.sc.Crash {
		s.Guard(srm.GuardConfig{
			Interval: hw.CyclesFromMicros(250),
			Until:    n.h.horizon,
			OnRecovered: func(r *srm.RecoveryReport) {
				n.reports = append(n.reports, r)
			},
		})
	}
}

// quiet reports whether everything the ticker serves on this node has
// finished.
func (n *node) quiet() bool {
	if !n.driverDone || len(n.waiters) > 0 {
		return false
	}
	if n.hasUnix() && !n.unixDone {
		return false
	}
	if n.hasRTK() && !n.rtkDone {
		return false
	}
	if n.hasDSM() && !n.dsmDone {
		return false
	}
	if n.idx == 0 && n.h.sc.Mix.Netboot && !n.h.netDone {
		return false
	}
	return true
}

// startTicker runs a device execution that periodically re-wakes every
// tickWait blocker. Device executions consume no simulated CPU, so the
// ticker cannot starve anyone; re-posting every period also makes the
// waits immune to dropped signals (the fault windows are bounded).
func (n *node) startTicker() {
	limit := n.h.horizon + hw.CyclesFromMicros(50_000)
	n.mpm.NewDeviceExec(fmt.Sprintf("simtest/ticker%d", n.idx), func(e *hw.Exec) {
		for e.Now() < limit {
			if n.quiet() {
				return
			}
			e.Charge(hw.CyclesFromMicros(150))
			for _, tid := range n.waiters {
				n.k.RaiseDeviceSignal(tid, sigTick)
			}
		}
	})
}

// tickWait blocks the calling Cache Kernel thread until cond holds or
// the deadline passes, waking on ticker signals. WaitSignal drains the
// queue before blocking, so a signal posted between the cond check and
// the block is never missed.
func (n *node) tickWait(e *hw.Exec, deadline uint64, cond func() bool) bool {
	for {
		if cond() {
			return true
		}
		if e.Now() >= deadline {
			return false
		}
		tid := n.k.CurrentThread(e)
		if tid == 0 {
			e.Charge(hw.CyclesFromMicros(100))
			continue
		}
		n.waiters = append(n.waiters, tid)
		_, err := n.k.WaitSignal(e)
		n.unwait(tid)
		if err != nil {
			return cond()
		}
		n.k.SignalReturn(e)
	}
}

func (n *node) unwait(tid ck.ObjID) {
	for i, w := range n.waiters {
		if w == tid {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			return
		}
	}
}

// signalUntil posts value to the (possibly reloading) thread named by
// tid until cond holds. Conditions are level-based, so re-posts after a
// dropped or slow delivery are harmless.
func (n *node) signalUntil(e *hw.Exec, tid func() ck.ObjID, value uint32, cond func() bool) bool {
	for {
		if cond() {
			return true
		}
		if e.Now() >= n.h.horizon {
			return false
		}
		if t := tid(); t != 0 {
			if err := n.k.PostSignal(e, t, value); err != nil {
				if err != ck.ErrInvalidID {
					n.opFail("post signal %#x to %v: %v", value, t, err)
					return cond()
				}
			} else if value == sigPing {
				n.pingsPosted++
			}
		}
		n.tickWait(e, minU64(e.Now()+hw.CyclesFromMicros(400), n.h.horizon), cond)
	}
}

// opFail records an op failure; after a scripted crash the op state
// died with the instance, so residual failures are expected and
// suppressed.
func (n *node) opFail(format string, args ...any) {
	if n.h.sc.Crash && n.k.Epoch > 0 {
		return
	}
	n.h.failf("op", fmt.Sprintf("mpm %d: ", n.idx)+format, args...)
}

// pager demand-loads the driver op space: a registry of exact mapping
// specs (echo pages) plus page windows backed by frames allocated on
// first fault. Evicted mappings fault back in through here, exercising
// the eviction/writeback/reload cycle the oracles check.
type pwindow struct {
	base  uint32
	pages uint32
}

type pager struct {
	n       *node
	ak      *aklib.AppKernel
	specs   map[uint32]ck.MappingSpec
	frames  map[uint32]uint32
	windows []pwindow
	demand  int
}

func (p *pager) addWindow(base, pages uint32) {
	p.windows = append(p.windows, pwindow{base: base, pages: pages})
}

func (p *pager) fault(e *hw.Exec, thread, space ck.ObjID, va uint32, write bool, kind hw.Fault) (bool, bool) {
	if space != p.n.usid {
		return false, false
	}
	pva := va &^ uint32(hw.PageSize-1)
	if spec, ok := p.specs[pva]; ok {
		return true, p.n.k.LoadMappingAndResume(e, space, spec) == nil
	}
	for _, w := range p.windows {
		if pva >= w.base && pva < w.base+w.pages*hw.PageSize {
			pfn, ok := p.frames[pva]
			if !ok {
				if pfn, ok = p.ak.Frames.Alloc(); !ok {
					return true, false
				}
				p.frames[pva] = pfn
			}
			p.demand++
			return true, p.n.k.LoadMappingAndResume(e, space, ck.MappingSpec{
				VA: pva, PFN: pfn, Writable: true, Cachable: true,
			}) == nil
		}
	}
	return false, false
}

// launchDriver boots the per-node driver kernel that executes this
// node's slice of the op stream. Locked: the driver is the harness's
// agent and must not be evicted out from under its own ops.
func (n *node) launchDriver(e *hw.Exec) {
	l, err := n.s.Launch(e, "drv", srm.LaunchOpts{Groups: 8, MainPrio: 36, MaxPrio: 40, Locked: true},
		func(ak *aklib.AppKernel, me *hw.Exec) {
			// A crash can kill this thread; the revived context reruns
			// the closure, so setup happens only on the first pass.
			if n.pager == nil {
				n.ak = ak
				n.pager = &pager{n: n, ak: ak, specs: map[uint32]ck.MappingSpec{}, frames: map[uint32]uint32{}}
				ak.OnFault = n.pager.fault
				ak.OnTrap = func(te *hw.Exec, thread ck.ObjID, no uint32, args []uint32) (uint32, uint32) {
					n.traps++
					return 0, 0
				}
				usid, lerr := n.k.LoadSpace(me, true)
				if lerr != nil {
					n.bodyErr = fmt.Errorf("load op space: %w", lerr)
					return
				}
				n.usid = usid
				n.runOps(ak, me)
			}
			n.driverDone = true
		})
	if err != nil {
		n.bodyErr = err
		return
	}
	n.aks = append(n.aks, l.AK)
}

// runOps executes this node's ops sequentially, checking kernel
// invariants after each; then drains asynchronous completions, runs the
// mid-run coherence oracle when the node is harness-only, and shuts the
// services down.
func (n *node) runOps(ak *aklib.AppKernel, me *hw.Exec) {
	sc := &n.h.sc
	for i := range sc.Ops {
		if sc.Ops[i].MPM != n.idx {
			continue
		}
		if sc.Crash && n.k.Epoch > 0 {
			break
		}
		if n.h.record {
			n.h.opStartAt[i] = me.Now()
		}
		n.runOp(ak, me, i, sc.Ops[i])
		if me.Now() < n.h.judgeFrom {
			// This prefix already passed judgement on the run the shrink
			// prober proved it identical to; the check is host-side pure
			// inspection, so skipping it cannot perturb the schedule.
			n.h.judgeSkipped++
		} else if err := n.k.CheckInvariants(); err != nil {
			n.h.failf("invariants", "mpm %d after op %d (%v): %v", n.idx, i, sc.Ops[i].Kind, err)
		}
	}
	n.tickWait(me, n.h.horizon, func() bool {
		if sc.Crash && n.k.Epoch > 0 {
			return true
		}
		for _, i := range n.ledger {
			if n.h.opDone[i] == 0 {
				return false
			}
		}
		return true
	})
	if sc.Crash && n.k.Epoch > 0 {
		return
	}
	// Let op threads unwind fully (they exit right after bumping their
	// ledger entry) so the coherence snapshot sees only parked services.
	n.tickWait(me, n.h.horizon, func() bool {
		for _, th := range n.spawned {
			if th.Exec != nil && !th.Exec.Finished() {
				return false
			}
		}
		return true
	})
	if !n.hasMixActors() {
		n.h.checkCoherence(n, "mid-run")
		if err := n.k.CheckInvariants(); err != nil {
			n.h.failf("invariants", "mpm %d mid-run: %v", n.idx, err)
		}
	}
	n.shutdownServices(me)
}

func (n *node) runOp(ak *aklib.AppKernel, me *hw.Exec, i int, op Op) {
	switch op.Kind {
	case OpPause:
		me.Charge(hw.CyclesFromMicros(float64(op.DelayUS)))
		n.h.opDone[i]++
	case OpWorker, OpStorm:
		n.opWorker(ak, me, i, op)
	case OpMapFlip:
		n.opMapFlip(ak, me, i, op)
	case OpEcho:
		n.opEcho(ak, me, i, op)
	case OpPulse:
		n.opPulse(ak, me, i, op)
	case OpSwap:
		n.opSwap(me, i, op)
	case OpAlarm:
		n.opAlarm(ak, me, i, op)
	default:
		n.opFail("op %d: unknown kind %v", i, op.Kind)
	}
}

// opWorker spawns a thread that demand-faults its window (stores so the
// mappings come back dirty and write back on eviction) and exits via a
// trap to its kernel.
func (n *node) opWorker(ak *aklib.AppKernel, me *hw.Exec, i int, op Op) {
	base := uint32(0x7000_0000) | uint32(i)<<20
	n.pager.addWindow(base, uint32(op.Pages))
	pages, laps := op.Pages, op.Laps
	w := ak.NewThread(fmt.Sprintf("w%d", i), n.usid, op.Prio, func(we *hw.Exec) {
		for lap := 0; lap < laps; lap++ {
			for p := 0; p < pages; p++ {
				we.Store32(base+uint32(p)*hw.PageSize, uint32(lap*pages+p))
			}
			we.Charge(hw.CyclesFromMicros(100))
		}
		we.Trap(0x77, uint32(i))
		n.h.opDone[i]++
	})
	if err := w.Load(me, false); err != nil {
		n.opFail("op %d: load worker: %v", i, err)
		return
	}
	n.spawned = append(n.spawned, w)
	n.ledger = append(n.ledger, i)
}

// opMapFlip loads then immediately unloads mappings, checking the
// unloaded state round-trips. A concurrent eviction can win the race;
// that is counted, not failed.
func (n *node) opMapFlip(ak *aklib.AppKernel, me *hw.Exec, i int, op Op) {
	base := uint32(0x7800_0000) | uint32(i)<<16
	for p := 0; p < op.Pages; p++ {
		va := base + uint32(p)*hw.PageSize
		pfn, ok := ak.Frames.Alloc()
		if !ok {
			n.opFail("op %d: out of frames", i)
			break
		}
		if err := n.k.LoadMapping(me, n.usid, ck.MappingSpec{VA: va, PFN: pfn, Writable: true, Cachable: true}); err != nil {
			n.opFail("op %d: load mapping %#x: %v", i, va, err)
			ak.Frames.Free(pfn)
			continue
		}
		st, err := n.k.UnloadMapping(me, n.usid, va)
		if err != nil {
			n.evictRaces++
		} else if st.VA != va || st.PFN != pfn {
			n.h.failf("coherence", "mpm %d op %d: mapping state round-trip: got va %#x pfn %d, want va %#x pfn %d",
				n.idx, i, st.VA, st.PFN, va, pfn)
		}
		ak.Frames.Free(pfn)
	}
	n.h.opDone[i]++
}

// opEcho runs IPC rounds between a client and server thread over two
// message-page channels (the paper's memory-based messaging, same
// layout as the boot-echo experiment): each direction is one frame
// mapped twice, a read-only message mapping carrying the signal record
// naming the receiver and a writable message alias the sender stores
// through. A store delivers the stored value as a signal.
func (n *node) opEcho(ak *aklib.AppKernel, me *hw.Exec, i int, op Op) {
	base := uint32(0x5000_0000) | uint32(i)<<18
	recvVA, sendVA := base, base+0x10000
	replyVA, replySendVA := base+0x20000, base+0x30000
	pfnA, okA := ak.Frames.Alloc()
	pfnB, okB := ak.Frames.Alloc()
	if !okA || !okB {
		n.opFail("op %d: out of frames", i)
		return
	}
	rounds := op.Rounds
	srv := ak.NewThread(fmt.Sprintf("echo%ds", i), n.usid, 31, func(se *hw.Exec) {
		for r := 1; r <= rounds; r++ {
			v, err := n.k.WaitSignal(se)
			if err != nil {
				return
			}
			if v == recvVA { // address-valued signal: the written page
				se.Instr(10)
				se.Store32(replySendVA, se.Load32(recvVA)+1000)
			}
			n.k.SignalReturn(se)
		}
	})
	if err := srv.Load(me, false); err != nil {
		n.opFail("op %d: load echo server: %v", i, err)
		return
	}
	n.spawned = append(n.spawned, srv)
	cli := ak.NewThread(fmt.Sprintf("echo%dc", i), n.usid, 30, func(ce *hw.Exec) {
		// Hold for the go signal: the channel mappings load after this
		// thread (its identifier is in the reply signal record).
		for {
			v, err := n.k.WaitSignal(ce)
			if err != nil {
				return
			}
			n.k.SignalReturn(ce)
			if v == sigGo {
				break
			}
		}
		for r := 1; r <= rounds; r++ {
			ce.Store32(sendVA, uint32(r))
			for {
				v, err := n.k.WaitSignal(ce)
				if err != nil {
					return
				}
				ce.Instr(4)
				n.k.SignalReturn(ce)
				if v == replyVA && ce.Load32(replyVA) == uint32(r)+1000 {
					break
				}
			}
		}
		n.h.opDone[i]++
	})
	if err := cli.Load(me, false); err != nil {
		n.opFail("op %d: load echo client: %v", i, err)
		return
	}
	n.spawned = append(n.spawned, cli)
	specs := []ck.MappingSpec{
		{VA: recvVA, PFN: pfnA, Message: true, Locked: true, SignalThread: srv.TID},
		{VA: sendVA, PFN: pfnA, Writable: true, Message: true, Locked: true},
		{VA: replyVA, PFN: pfnB, Message: true, Locked: true, SignalThread: cli.TID},
		{VA: replySendVA, PFN: pfnB, Writable: true, Message: true, Locked: true},
	}
	for _, spec := range specs {
		if err := n.k.LoadMapping(me, n.usid, spec); err != nil {
			n.opFail("op %d: load echo mapping %#x: %v", i, spec.VA, err)
			return
		}
	}
	if err := n.k.PostSignal(me, cli.TID, sigGo); err != nil {
		n.opFail("op %d: echo go signal: %v", i, err)
		return
	}
	n.ledger = append(n.ledger, i)
}

// startPulse lazily creates the pulse service thread: a signal loop
// that can also self-unload its descriptor (the unixemu sleep idiom)
// for the driver to reload.
func (n *node) startPulse(ak *aklib.AppKernel, me *hw.Exec) {
	p := ak.NewThread("pulse", n.usid, 33, func(pe *hw.Exec) {
		for {
			v, err := n.k.WaitSignal(pe)
			if err != nil {
				return
			}
			n.k.SignalReturn(pe)
			switch v {
			case sigPing:
				n.pulseCount++
			case sigNap:
				if !n.napArmed {
					break
				}
				n.napArmed = false
				n.pulse.MarkUnloaded()
				tid := n.k.CurrentThread(pe)
				if _, err := n.k.UnloadThread(pe, tid); err != nil {
					n.opFail("pulse self-unload: %v", err)
					break
				}
				// Parked here; the driver's reload resumes us.
				n.pulseNaps++
			case sigStop:
				if n.pulseStop {
					n.pulseDone = true
					return
				}
			}
		}
	})
	if err := p.Load(me, false); err != nil {
		n.opFail("load pulse service: %v", err)
		return
	}
	n.pulse = p
}

func (n *node) pulseTID() ck.ObjID {
	if n.pulse != nil && n.pulse.Loaded {
		return n.pulse.TID
	}
	return 0
}

// opPulse pings the pulse service; with a delay it first forces a
// descriptor nap: the service unloads itself, the driver waits, reloads
// the record and confirms the thread resumed exactly where it parked.
func (n *node) opPulse(ak *aklib.AppKernel, me *hw.Exec, i int, op Op) {
	if n.pulse == nil {
		n.startPulse(ak, me)
		if n.pulse == nil {
			return
		}
	}
	if op.DelayUS > 0 {
		before := n.pulseNaps
		n.napArmed = true
		if !n.signalUntil(me, n.pulseTID, sigNap, func() bool { return !n.pulse.Loaded }) {
			n.opFail("op %d: pulse nap not taken", i)
		} else {
			me.Charge(hw.CyclesFromMicros(float64(op.DelayUS)))
			if err := n.pulse.Load(me, false); err != nil {
				n.opFail("op %d: pulse reload: %v", i, err)
				return
			}
			if !n.tickWait(me, n.h.horizon, func() bool { return n.pulseNaps > before }) {
				n.h.failf("conservation", "mpm %d op %d: pulse thread did not resume after reload", n.idx, i)
				return
			}
			n.napsDone++
		}
	}
	for j := 0; j < op.Rounds; j++ {
		before := n.pulseCount
		if !n.signalUntil(me, n.pulseTID, sigPing, func() bool { return n.pulseCount > before }) {
			n.opFail("op %d: ping %d never observed", i, j)
			return
		}
	}
	n.h.opDone[i]++
}

// opSwap asks the swapper (an SRM-authority service) for whole-kernel
// swap/unswap cycles of the scratch kernel.
func (n *node) opSwap(me *hw.Exec, i int, op Op) {
	if n.swapper == nil || n.scratch == nil {
		n.opFail("op %d: swap service unavailable", i)
		return
	}
	n.swapReq += op.Rounds
	if !n.tickWait(me, n.h.horizon, func() bool { return n.swapAck >= n.swapReq }) {
		n.opFail("op %d: %d swap cycle(s) still pending", i, n.swapReq-n.swapAck)
		return
	}
	n.h.opDone[i]++
}

// startListener lazily creates the alarm listener thread.
func (n *node) startListener(ak *aklib.AppKernel, me *hw.Exec) {
	l := ak.NewThread("alarms", n.usid, 32, func(le *hw.Exec) {
		for {
			v, err := n.k.WaitSignal(le)
			if err != nil {
				return
			}
			n.k.SignalReturn(le)
			switch v {
			case sigAlarm:
				n.alarmsFired++
			case sigStop:
				if n.listenerStop {
					n.listenerDone = true
					return
				}
			}
		}
	})
	if err := l.Load(me, false); err != nil {
		n.opFail("load alarm listener: %v", err)
		return
	}
	n.listener = l
}

// opAlarm sets absolute-virtual-time alarms on the listener.
func (n *node) opAlarm(ak *aklib.AppKernel, me *hw.Exec, i int, op Op) {
	if n.listener == nil {
		n.startListener(ak, me)
		if n.listener == nil {
			return
		}
	}
	for j := 0; j < op.Rounds; j++ {
		at := me.Now() + hw.CyclesFromMicros(float64(op.DelayUS*(j+1)))
		if at >= n.h.horizon {
			break
		}
		if err := n.k.SetAlarm(me, n.listener.TID, at, sigAlarm); err != nil {
			n.opFail("op %d: set alarm: %v", i, err)
			continue
		}
		n.alarmsSet++
		if at > n.lastAlarmAt {
			n.lastAlarmAt = at
		}
	}
	n.h.opDone[i]++
}

// shutdownServices retires the node's long-lived service threads in
// order, verifying each acknowledges.
func (n *node) shutdownServices(me *hw.Exec) {
	if n.listener != nil {
		if n.lastAlarmAt > 0 {
			// Let outstanding alarms land (bounded; under DropSignal some
			// never will, which the conservation accounting allows).
			n.tickWait(me, minU64(n.lastAlarmAt+hw.CyclesFromMicros(3000), n.h.horizon),
				func() bool { return n.alarmsFired >= n.alarmsSet })
		}
		n.listenerStop = true
		if !n.signalUntil(me, func() ck.ObjID {
			if n.listener.Loaded {
				return n.listener.TID
			}
			return 0
		}, sigStop, func() bool { return n.listenerDone }) {
			n.h.failf("conservation", "mpm %d: alarm listener did not stop", n.idx)
		}
	}
	if n.pulse != nil {
		n.pulseStop = true
		if !n.signalUntil(me, n.pulseTID, sigStop, func() bool { return n.pulseDone }) {
			n.h.failf("conservation", "mpm %d: pulse service did not stop", n.idx)
		}
	}
	if n.swapper != nil {
		n.swapStop = true
		if !n.tickWait(me, n.h.horizon, func() bool { return n.swapDone }) {
			n.h.failf("conservation", "mpm %d: swapper did not stop", n.idx)
		}
	}
	if n.scratch != nil {
		n.scratchStop = true
		if !n.tickWait(me, n.h.horizon, func() bool { return n.scratchDone }) {
			n.h.failf("conservation", "mpm %d: scratch kernel did not stop", n.idx)
		}
	}
}

// launchScratch boots the kernel the swapper swaps in and out: its main
// idles at the lowest priority so it is always safely interruptible.
func (n *node) launchScratch(e *hw.Exec) {
	l, err := n.s.Launch(e, "scratch", srm.LaunchOpts{Groups: 2, MainPrio: 5},
		func(ak *aklib.AppKernel, me *hw.Exec) {
			for !n.scratchStop && me.Now() < n.h.horizon {
				me.Charge(hw.CyclesFromMicros(500))
				n.scratchBeats++
			}
			n.scratchDone = true
		})
	if err != nil {
		n.bodyErr = fmt.Errorf("launch scratch: %w", err)
		return
	}
	n.scratch = l
	n.aks = append(n.aks, l.AK)
}

// startSwapper runs an SRM-space thread (swap authority) that performs
// one scratch swap/unswap cycle per pending request, sleeping on a
// self-alarm between polls.
func (n *node) startSwapper(e *hw.Exec) {
	sw := n.s.NewThread("swapper", n.s.SpaceID, 44, func(se *hw.Exec) {
		for !n.swapStop && se.Now() < n.h.horizon {
			tid := n.k.CurrentThread(se)
			if err := n.k.SetAlarm(se, tid, se.Now()+hw.CyclesFromMicros(300), sigTick); err != nil {
				break
			}
			if _, err := n.k.WaitSignal(se); err != nil {
				break
			}
			n.k.SignalReturn(se)
			for n.swapReq > n.swapAck {
				if err := n.s.Swap(se, "scratch"); err != nil {
					n.opFail("swap scratch: %v", err)
					n.swapAck = n.swapReq
					break
				}
				se.Charge(hw.CyclesFromMicros(200))
				if err := n.s.Unswap(se, "scratch"); err != nil {
					n.opFail("unswap scratch: %v", err)
					n.swapAck = n.swapReq
					break
				}
				n.swapAck++
			}
		}
		n.swapDone = true
	})
	if err := sw.Load(e, false); err != nil {
		n.bodyErr = fmt.Errorf("load swapper: %w", err)
		return
	}
	n.swapper = sw
}

// launchUnix boots the UNIX emulator with the recovery experiment's
// process tree (a quick hello, a sleeper, a compute loop, an init that
// reaps them) on node 0.
func (n *node) launchUnix(e *hw.Exec) {
	crunchLaps, crunchUS := uint32(30), 300.0
	if n.h.sc.Crash {
		// Long enough that the scripted crash lands mid-compute.
		crunchLaps, crunchUS = 80, 500.0
	}
	l, err := n.s.Launch(e, "unix", srm.LaunchOpts{Groups: 16, MainPrio: 31, MaxPrio: 34},
		func(ak *aklib.AppKernel, me *hw.Exec) {
			// Crash-revival reruns this closure; set up only once.
			if n.u == nil {
				n.u = unixemu.New(ak, unixemu.DefaultConfig())
				if err := n.u.StartScheduler(me); err != nil {
					n.bodyErr = err
					return
				}
				n.u.RegisterProgram("hello", func(env *unixemu.ProcEnv) {
					env.WriteString(1, fmt.Sprintf("hello from pid %d\n", env.Getpid()))
				})
				n.u.RegisterProgram("napper", func(env *unixemu.ProcEnv) {
					env.Sleep(40)
					env.WriteString(1, fmt.Sprintf("napper pid %d rested\n", env.Getpid()))
				})
				n.u.RegisterProgram("crunch", func(env *unixemu.ProcEnv) {
					env.Sbrk(4 * hw.PageSize)
					for lap := uint32(0); lap < crunchLaps; lap++ {
						env.Store32(env.HeapBase()+lap%4*hw.PageSize, lap)
						env.Exec().Charge(hw.CyclesFromMicros(crunchUS))
					}
					env.WriteString(1, fmt.Sprintf("crunch pid %d done\n", env.Getpid()))
				})
				n.u.RegisterProgram("init", func(env *unixemu.ProcEnv) {
					env.Spawn("hello")
					env.Spawn("napper")
					env.Spawn("crunch")
					for i := 0; i < 3; i++ {
						env.Wait()
					}
					env.WriteString(1, "init: all children reaped\n")
				})
				p, perr := n.u.Spawn(me, "init", nil)
				if perr != nil {
					n.bodyErr = perr
					return
				}
				n.initPID = p.PID()
			}
			for q := n.u.Proc(n.initPID); q != nil && !q.Exited() && me.Now() < n.h.horizon; q = n.u.Proc(n.initPID) {
				me.Charge(hw.CyclesFromMicros(2000))
			}
			n.u.StopScheduler()
			q := n.u.Proc(n.initPID)
			n.unixDone = q == nil || q.Exited()
		})
	if err != nil {
		n.bodyErr = err
		return
	}
	n.aks = append(n.aks, l.AK)
}

// launchRTK boots a locked real-time kernel running one periodic task;
// the caller's spin waits at a sub-worker priority so it never starves
// the op stream.
func (n *node) launchRTK(e *hw.Exec) {
	l, err := n.s.Launch(e, "rt", srm.LaunchOpts{Groups: 2, MainPrio: 12, Locked: true},
		func(ak *aklib.AppKernel, me *hw.Exec) {
			rt, rerr := rtk.New(me, ak, 2)
			if rerr != nil {
				n.rtkErr = rerr
				n.rtkDone = true
				return
			}
			n.rtkStats, n.rtkErr = rt.RunTask(me, rtk.TaskConfig{
				Name: "control", PeriodUS: 500, BudgetCycles: 4000,
				Activations: rtkActivations, Priority: 45,
			})
			n.rtkDone = true
		})
	if err != nil {
		n.bodyErr = err
		return
	}
	n.aks = append(n.aks, l.AK)
}

// launchDSM attaches one distributed-shared-memory node and ping-pongs
// a counter with its peer across the fiber until a shared target.
func (n *node) launchDSM(e *hw.Exec) {
	port := n.h.fiber[n.idx]
	idx := n.idx
	l, err := n.s.Launch(e, "dsmk", srm.LaunchOpts{Groups: 4, MainPrio: 11},
		func(ak *aklib.AppKernel, me *hw.Exec) {
			nd, derr := dsm.Attach(me, ak, port, idx, dsmBase, 2)
			if derr != nil {
				n.dsmErr = derr
				n.dsmDone = true
				return
			}
			n.dsmNode = nd
			// Barrier: both sharers attached before the first fetch.
			n.h.dsmReadySet(idx)
			if !n.tickWait(me, n.h.horizon, func() bool { return n.h.dsmReadyBoth() }) {
				n.dsmErr = fmt.Errorf("dsm peer never attached")
				n.dsmDone = true
				return
			}
			ok := false
			for me.Now() < n.h.horizon {
				v := me.Load32(dsmBase)
				if v >= dsmRounds {
					ok = true
					break
				}
				if int(v%2) != idx {
					me.Charge(3000)
					continue
				}
				me.Store32(dsmBase, v+1)
			}
			n.h.dsmAt[idx] = ok
			// Keep serving the peer until it also reaches the target.
			n.tickWait(me, n.h.horizon, func() bool { return n.h.dsmAt[0] && n.h.dsmAt[1] })
			nd.Stop(me)
			if !ok {
				n.dsmErr = fmt.Errorf("ping-pong stalled at %d of %d", me.Load32(dsmBase), dsmRounds)
			}
			n.dsmDone = true
		})
	if err != nil {
		n.bodyErr = err
		return
	}
	n.aks = append(n.aks, l.AK)
}

func (h *harness) dsmReadySet(idx int) { h.dsmReady[idx] = true }
func (h *harness) dsmReadyBoth() bool  { return h.dsmReady[0] && h.dsmReady[1] }

// finish runs the end-of-run oracles over the quiesced machine.
func (h *harness) finish(runErr error) {
	if runErr != nil {
		h.failf("liveness", "engine halted: %v", runErr)
	}
	for _, n := range h.nodes {
		n.checkConservation()
		h.checkCoherence(n, "final")
		if err := n.k.CheckInvariants(); err != nil {
			h.failf("invariants", "mpm %d final: %v", n.idx, err)
		}
	}
}

// checkConservation verifies nothing was lost or duplicated: every op
// completed exactly once, every service acknowledged shutdown, alarm
// and ping deliveries match posts (modulo armed drop/dup faults), and
// the mixes ran to completion.
func (n *node) checkConservation() {
	h, sc := n.h, &n.h.sc
	if n.bodyErr != nil {
		h.failf("op", "mpm %d setup: %v", n.idx, n.bodyErr)
	}
	if sc.Crash {
		if len(n.reports) != 1 {
			h.failf("conservation", "mpm %d: %d recoveries, want exactly 1", n.idx, len(n.reports))
		} else if n.reports[0].Err != nil {
			h.failf("conservation", "mpm %d: recovery failed: %v", n.idx, n.reports[0].Err)
		}
		if n.k.Epoch != 1 {
			h.failf("conservation", "mpm %d: epoch %d after one scripted crash", n.idx, n.k.Epoch)
		}
		if h.inj.Stats.Crashes != 1 {
			h.failf("conservation", "mpm %d: injector crashed %d times, want 1", n.idx, h.inj.Stats.Crashes)
		}
		for i := range sc.Ops {
			if sc.Ops[i].MPM == n.idx && h.opDone[i] > 1 {
				h.failf("conservation", "op %d (%v) completed %d times", i, sc.Ops[i].Kind, h.opDone[i])
			}
		}
		if !n.driverDone {
			h.failf("conservation", "mpm %d: driver did not complete after recovery", n.idx)
		}
		if n.hasUnix() && !n.unixDone {
			h.failf("conservation", "mpm %d: unix workload did not complete after recovery", n.idx)
		}
		return
	}
	if !n.driverDone {
		h.failf("conservation", "mpm %d: driver did not finish its op stream", n.idx)
	}
	for i := range sc.Ops {
		if sc.Ops[i].MPM != n.idx {
			continue
		}
		if h.opDone[i] != 1 {
			h.failf("conservation", "op %d (%v) completed %d times, want exactly 1", i, sc.Ops[i].Kind, h.opDone[i])
		}
	}
	if n.hasUnix() {
		if !n.unixDone {
			h.failf("conservation", "mpm %d: unix init did not exit", n.idx)
		}
		if n.u != nil && n.u.Restarts != 0 {
			h.failf("conservation", "mpm %d: %d unix processes restarted without a crash", n.idx, n.u.Restarts)
		}
	}
	if n.hasRTK() {
		if !n.rtkDone {
			h.failf("conservation", "mpm %d: rt task did not finish", n.idx)
		}
		if n.rtkErr != nil {
			h.failf("op", "mpm %d: rt task: %v", n.idx, n.rtkErr)
		} else if n.rtkDone && n.rtkStats.Activations != rtkActivations {
			h.failf("conservation", "mpm %d: rt task ran %d activations, want %d", n.idx, n.rtkStats.Activations, rtkActivations)
		}
	}
	if n.hasDSM() {
		if !n.dsmDone {
			h.failf("conservation", "mpm %d: dsm sharer did not finish", n.idx)
		}
		if n.dsmErr != nil {
			h.failf("op", "mpm %d: dsm: %v", n.idx, n.dsmErr)
		}
	}
	if n.idx == 0 && sc.Mix.Netboot {
		if !h.netDone {
			h.failf("conservation", "netboot fetch did not complete")
		} else if h.netErr != nil {
			h.failf("op", "netboot fetch: %v", h.netErr)
		} else if !bytes.Equal(h.netGot, h.netImage) {
			h.failf("conservation", "netboot image mismatch: fetched %d bytes, want %d", len(h.netGot), len(h.netImage))
		}
	}
	if n.swapper != nil {
		if !n.swapDone {
			h.failf("conservation", "mpm %d: swapper did not finish", n.idx)
		}
		if n.swapAck != n.swapReq {
			h.failf("conservation", "mpm %d: %d of %d swap cycles acknowledged", n.idx, n.swapAck, n.swapReq)
		}
	}
	if n.scratch != nil && !n.scratchDone {
		h.failf("conservation", "mpm %d: scratch kernel did not finish", n.idx)
	}
	if n.listener != nil && n.listenerDone {
		if !h.drop && n.alarmsFired < n.alarmsSet {
			h.failf("conservation", "mpm %d: alarms lost: %d fired of %d set with no drop fault armed", n.idx, n.alarmsFired, n.alarmsSet)
		}
		if !h.dup && n.alarmsFired > n.alarmsSet {
			h.failf("conservation", "mpm %d: alarms duplicated: %d fired of %d set with no dup fault armed", n.idx, n.alarmsFired, n.alarmsSet)
		}
	}
	if n.pulse != nil && n.pulseDone {
		if n.pulseNaps != n.napsDone {
			h.failf("conservation", "mpm %d: pulse napped %d times, driver drove %d", n.idx, n.pulseNaps, n.napsDone)
		}
		if !h.drop && n.pulseCount < n.pingsPosted {
			h.failf("conservation", "mpm %d: pings lost: %d observed of %d posted with no drop fault armed", n.idx, n.pulseCount, n.pingsPosted)
		}
		if !h.dup && n.pulseCount > n.pingsPosted {
			h.failf("conservation", "mpm %d: pings duplicated: %d observed of %d posted with no dup fault armed", n.idx, n.pulseCount, n.pingsPosted)
		}
	}
}

// checkCoherence is the cache-coherence oracle: at a quiescent point,
// every loaded thread descriptor must be resolvable to exactly one
// application-kernel master record (direction 1), and every master
// record claiming to be loaded must still validate (direction 2 —
// skipped when writeback corruption is armed, since a corrupted
// writeback legitimately strands the master copy). Threads whose
// execution finished are exempt: the Cache Kernel reclaims an exited
// thread without writeback, so its master record goes stale by design.
func (h *harness) checkCoherence(n *node, when string) {
	snap := n.k.Snapshot()
	seen := map[string]int{}
	for _, ts := range snap.Threads {
		seen[ts.ExecName]++
		found := false
		for _, ak := range n.aks {
			if th := ak.ThreadByID(ts.ID); th != nil {
				found = true
				break
			}
		}
		if !found {
			h.failf("coherence", "mpm %d %s: loaded thread %v (%q, %s) has no application-kernel master record",
				n.idx, when, ts.ID, ts.ExecName, ts.State)
		}
	}
	for _, ts := range snap.Threads {
		if seen[ts.ExecName] > 1 {
			h.failf("coherence", "mpm %d %s: execution %q appears on %d loaded thread descriptors",
				n.idx, when, ts.ExecName, seen[ts.ExecName])
			seen[ts.ExecName] = 1 // report once
		}
	}
	if h.corrupt {
		return
	}
	for _, ak := range n.aks {
		for _, th := range ak.LoadedThreads() {
			if !th.Loaded || (th.Exec != nil && th.Exec.Finished()) {
				continue
			}
			if !n.k.Loaded(th.TID) {
				h.failf("coherence", "mpm %d %s: master record %q claims loaded tid %v but the descriptor is gone",
					n.idx, when, th.Name, th.TID)
			}
		}
	}
}
