package simtest

import (
	"fmt"
	"testing"
)

// TestForkFamily runs a band of fork-family seeds serially and at four
// shards. Every oracle is armed inside RunForkScenario (fork-vs-fresh
// byte equality, COW isolation, snapshot determinism across shard
// counts); the test additionally pins that the continuation schedule
// hash is shard-count-invariant and that the fingerprint reproduces.
func TestForkFamily(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := GenerateFork(seed)
			serial := RunForkScenario(sc, 1)
			if serial.Failed() {
				t.Fatalf("serial run failed:\n%s", serial.Fingerprint())
			}
			if serial.Forks != sc.Conts {
				t.Fatalf("explored %d continuations, want %d", serial.Forks, sc.Conts)
			}
			sharded := RunForkScenario(sc, 4)
			if sharded.Failed() {
				t.Fatalf("four-shard run failed:\n%s", sharded.Fingerprint())
			}
			if serial.Fingerprint() != sharded.Fingerprint() {
				t.Fatalf("fork results depend on shard count:\nserial:\n%s\nsharded:\n%s",
					serial.Fingerprint(), sharded.Fingerprint())
			}
			if again := RunForkScenario(sc, 1); again.Fingerprint() != serial.Fingerprint() {
				t.Fatalf("fork fingerprint not reproducible:\n first:\n%s\nsecond:\n%s",
					serial.Fingerprint(), again.Fingerprint())
			}
		})
	}
}

// TestForkCheck sends op-stream seeds through the replay fork tier and
// requires the forked mode to change no verdict, serially and at four
// shards.
func TestForkCheck(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			for _, shards := range []int{1, 4} {
				if err := ForkCheck(seed, shards); err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
			}
		})
	}
}
