//go:build cksimlong

package simtest

import "testing"

// TestSeedSweep runs the first two hundred generated scenarios — the
// same sweep `cmd/cksim -seeds 200` performs — as a long-form test
// behind the cksimlong build tag (the nightly job runs 500 via the CLI;
// this keeps a reproducible slice of it in `go test` form):
//
//	go test -tags cksimlong ./internal/simtest/
func TestSeedSweep(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		r := RunSeed(seed)
		if r.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, r.Fingerprint())
		}
	}
}
