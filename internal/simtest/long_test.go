//go:build cksimlong

package simtest

import "testing"

// TestSeedSweep runs the first two hundred generated scenarios — the
// same sweep `cmd/cksim -seeds 200` performs — as a long-form test
// behind the cksimlong build tag (the nightly job runs 500 via the CLI;
// this keeps a reproducible slice of it in `go test` form):
//
//	go test -tags cksimlong ./internal/simtest/
func TestSeedSweep(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		r := RunSeed(seed)
		if r.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, r.Fingerprint())
		}
	}
}

// TestOrchSeedSweep is the orchestration family's long-form sweep, with
// shard-determinism checked on every fourth seed (each orch run is tens
// of megacycles; the full pairwise sweep belongs to the nightly CLI).
func TestOrchSeedSweep(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		sc := GenerateOrch(seed)
		r := Run(sc, nil)
		if r.Failed() {
			t.Errorf("orch seed %d failed:\n%s", seed, r.Fingerprint())
			continue
		}
		if seed%4 == 0 {
			sharded := RunSharded(sc, nil, 4)
			if r.Fingerprint() != sharded.Fingerprint() {
				t.Errorf("orch seed %d: sharded diverged\n--- serial ---\n%s--- shards=4 ---\n%s",
					seed, r.Fingerprint(), sharded.Fingerprint())
			}
		}
	}
}
