package simtest

import "testing"

// orchFixedSeeds spans the orchestration family's chaos variants: clean
// rolling upgrades, a module crash while the upgrade drains it, running
// threads killed mid-migration (including the control plane and the
// migration source), and background page-table walk errors. Every seed
// must pass every oracle: the op-stream family's plus ckctl.Verify and
// runOrch's convergence/blackout/upgrade properties.
var orchFixedSeeds = []uint64{1, 2, 3, 4, 5, 7, 9, 10, 11, 12}

func TestOrchFixedSeeds(t *testing.T) {
	seeds := orchFixedSeeds
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		sc := GenerateOrch(seed)
		r := Run(sc, nil)
		if r.Failed() {
			t.Errorf("orch seed %d failed:\n%s", seed, r.Fingerprint())
			continue
		}
		o := r.Orch
		if o == nil {
			t.Fatalf("orch seed %d: no orch stats", seed)
		}
		// Every variant's upgrade converges; the bounded queue-head wait
		// in driveUpgrade means even an upgrade scheduled into the launch
		// wave migrates most of the fleet rather than skipping it.
		if o.Migrated == 0 || o.Makespan == 0 {
			t.Errorf("orch seed %d: upgrade did no work: mig=%d makespan=%d",
				seed, o.Migrated, o.Makespan)
		}
	}
}

// TestOrchShardedMatchesSerial extends the parallel engine's oracle to
// the orchestration family: live cross-MPM migrations, controller/agent
// messaging and the chaos plans must all reproduce the serial
// fingerprint byte for byte at shards=4. This family is the one that
// exercises runtime ScheduleCrossAt from service-thread context, which
// the op-stream scenarios never do.
func TestOrchShardedMatchesSerial(t *testing.T) {
	seeds := orchFixedSeeds
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		sc := GenerateOrch(seed)
		serial := Run(sc, nil)
		sharded := RunSharded(sc, nil, 4)
		if serial.Fingerprint() != sharded.Fingerprint() {
			t.Fatalf("orch seed %d: sharded fingerprint diverged from serial\n--- serial ---\n%s--- shards=4 ---\n%s",
				seed, serial.Fingerprint(), sharded.Fingerprint())
		}
	}
}

// TestOrchDeterminism asserts bit-reproducibility of the orchestration
// family within one process: same seed, same fingerprint.
func TestOrchDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 4, 12} {
		a := Run(GenerateOrch(seed), nil)
		b := Run(GenerateOrch(seed), nil)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("orch seed %d diverged:\n--- first\n%s\n--- second\n%s",
				seed, a.Fingerprint(), b.Fingerprint())
		}
	}
}
