package simtest

import (
	"testing"
)

// TestShardedSweepMatchesSerial is cksim's oracle for the parallel
// engine: for a fixed seed range the sharded run must reproduce the
// serial fingerprint byte for byte — same failures, same dispatch
// hash, same step count, same final clock, same fault statistics.
func TestShardedSweepMatchesSerial(t *testing.T) {
	last := uint64(50)
	if testing.Short() {
		last = 12
	}
	for seed := uint64(1); seed <= last; seed++ {
		sc := Generate(seed)
		serial := Run(sc, nil)
		sharded := RunSharded(sc, nil, 4)
		if serial.Fingerprint() != sharded.Fingerprint() {
			t.Fatalf("seed %d: sharded fingerprint diverged from serial\n--- serial ---\n%s--- shards=4 ---\n%s",
				seed, serial.Fingerprint(), sharded.Fingerprint())
		}
	}
}

// TestShardedTraceMatchesSerial compares the full merged dispatch
// schedule, not just its hash, on a multi-MPM scenario that actually
// crosses shards.
func TestShardedTraceMatchesSerial(t *testing.T) {
	type ev struct {
		name string
		at   uint64
	}
	for _, seed := range []uint64{17, 29, 44} {
		sc := Generate(seed)
		var serial, sharded []ev
		rs := Run(sc, func(name string, at uint64) { serial = append(serial, ev{name, at}) })
		rp := RunSharded(sc, func(name string, at uint64) { sharded = append(sharded, ev{name, at}) }, 3)
		if rs.Hash != rp.Hash || len(serial) != len(sharded) {
			t.Fatalf("seed %d: schedule diverged: %d/%016x serial vs %d/%016x sharded",
				seed, len(serial), rs.Hash, len(sharded), rp.Hash)
		}
		for i := range serial {
			if serial[i] != sharded[i] {
				t.Fatalf("seed %d: dispatch %d: serial %v vs sharded %v", seed, i, serial[i], sharded[i])
			}
		}
	}
}
