package simtest

import (
	"bytes"
	"fmt"
	"math"
	//ckvet:allow shardsafe forkImages is a host-side image cache shared across scenario runs, not simulated cross-node state
	"sync"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/sim"
	"vpp/internal/snap"
)

// The fork scenario family exercises the structural snapshot/fork tier
// (internal/snap): boot once per (topology, page-window) class, snapshot
// the quiescent machine, then explore each seed's divergent
// continuations by forking the image instead of rebooting. Its oracles
// are the subsystem's contract:
//
//   - fork-vs-fresh: a forked continuation's dispatch trace, final
//     clock and memory contents are byte-identical to the same
//     continuation injected into a freshly booted machine;
//   - COW isolation: forks share the image's page frames copy-on-write
//     — the copied/fault counts match the dirtied page set exactly, and
//     the parent image's bytes never change, no matter how many forks
//     scribble on it;
//   - snapshot determinism: booting the class again — serially or on a
//     sharded engine — encodes to identical snapshot bytes.
//
// The family is bare-ck (no SRM services): the op-stream family's
// service threads are immortal within a run, so its machines are never
// quiescent and fork through the replay tier (ForkCheck) instead.

// ForkScenario is one generated fork-exploration case.
type ForkScenario struct {
	Seed uint64

	MPMs       int
	CPUsPerMPM int
	// Pages is the per-MPM mapped page window the boot dirties and the
	// continuations scribble on.
	Pages int
	// Conts is how many divergent continuations to explore off the one
	// snapshot.
	Conts int
}

// ForkClass is the boot-image cache key: scenarios of one class share a
// single boot — the whole point of fork-powered exploration.
type ForkClass struct {
	MPMs       int
	CPUsPerMPM int
	Pages      int
}

// Class returns the scenario's boot-image class.
func (sc ForkScenario) Class() ForkClass {
	return ForkClass{MPMs: sc.MPMs, CPUsPerMPM: sc.CPUsPerMPM, Pages: sc.Pages}
}

// GenerateFork expands one seed into a fork scenario. The parameter
// ranges are deliberately narrow so seeds hash into few classes and the
// boot cache pays off.
func GenerateFork(seed uint64) ForkScenario {
	r := sim.NewRand(seed ^ 0x464f524b) // decorrelate from Generate's stream
	return ForkScenario{
		Seed:       seed,
		MPMs:       1 + r.Intn(3),
		CPUsPerMPM: 2,
		Pages:      []int{4, 8, 12}[r.Intn(3)],
		Conts:      2 + r.Intn(4),
	}
}

// ForkResult is the outcome of one fork scenario.
type ForkResult struct {
	Scenario ForkScenario
	Failures []Failure

	// Forks counts continuations explored; SnapshotBytes is the encoded
	// image size; CowCopied totals copy-on-write page copies across the
	// forks; Hash fingerprints the continuation dispatch schedules.
	Forks         int
	SnapshotBytes int
	CowCopied     uint64
	Hash          uint64
}

// Failed reports whether any oracle fired.
func (r *ForkResult) Failed() bool { return len(r.Failures) > 0 }

// Fingerprint renders the deterministic run summary.
func (r *ForkResult) Fingerprint() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "fork_seed %d\n", r.Scenario.Seed)
	fmt.Fprintf(&b, "class mpms=%d cpus=%d pages=%d conts=%d\n",
		r.Scenario.MPMs, r.Scenario.CPUsPerMPM, r.Scenario.Pages, r.Scenario.Conts)
	fmt.Fprintf(&b, "fnv64a %016x\n", r.Hash)
	fmt.Fprintf(&b, "forks %d snapshot_bytes %d cow_copied %d\n", r.Forks, r.SnapshotBytes, r.CowCopied)
	fmt.Fprintf(&b, "failures %d\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %s: %s\n", f.Oracle, f.Detail)
	}
	return b.String()
}

func forkWinBase(mpm int) uint32 { return 0x4000_0000 + uint32(mpm)<<24 }
func forkPFN(mpm, p int) uint32  { return 2048 + uint32(mpm)*64 + uint32(p) }
func forkBootVal(mpm, p int) uint32 {
	return 0xB007_0000 ^ uint32(mpm)*131 ^ uint32(p)*7
}

// bootForkClass builds and boots one machine of the class: per MPM a
// Cache Kernel whose boot thread maps the page window into the boot
// space, dirties every page, and exits — leaving the machine quiescent
// (no live thread descriptors, no parked calls), i.e. snapshottable.
func bootForkClass(cl ForkClass, shards int) (*hw.Machine, []*ck.Kernel, error) {
	cfg := hw.DefaultConfig()
	cfg.MPMs = cl.MPMs
	cfg.CPUsPerMPM = cl.CPUsPerMPM
	cfg.Shards = shards
	m := hw.NewMachine(cfg)
	var ks []*ck.Kernel
	errs := make([]error, cl.MPMs)
	for i, mpm := range m.MPMs {
		k, err := ck.New(mpm, ck.Config{})
		if err != nil {
			return nil, nil, err
		}
		i := i
		var info ck.BootInfo
		body := func(e *hw.Exec) { errs[i] = bootForkBody(k, e, i, cl, info.Space) }
		attrs := ck.KernelAttrs{Name: fmt.Sprintf("fk%d", i), LockQuota: [4]int{4, 8, 16, 256}}
		info, err = k.Boot(attrs, 40, body)
		if err != nil {
			return nil, nil, err
		}
		ks = append(ks, k)
	}
	m.SetMaxSteps(50_000_000)
	if err := m.Run(math.MaxUint64); err != nil {
		return nil, nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, nil, e
		}
	}
	return m, ks, nil
}

func bootForkBody(k *ck.Kernel, e *hw.Exec, idx int, cl ForkClass, sid ck.ObjID) error {
	base := forkWinBase(idx)
	for p := 0; p < cl.Pages; p++ {
		va := base + uint32(p)*hw.PageSize
		err := k.LoadMapping(e, sid, ck.MappingSpec{
			VA: va, PFN: forkPFN(idx, p), Writable: true, Cachable: true,
		})
		if err != nil {
			return fmt.Errorf("fork boot mpm %d: map %#x: %w", idx, va, err)
		}
		e.Store32(va, forkBootVal(idx, p))
	}
	e.Charge(5_000)
	return nil
}

// classImage is one cached boot snapshot.
type classImage struct {
	im  *snap.Image
	enc []byte
}

var forkImages struct {
	mu sync.Mutex
	m  map[ForkClass]*classImage
}

// classSnapshot returns the class's boot image, booting and snapshotting
// on first use. The first build also runs the snapshot-determinism
// oracle: a second serial boot and a four-shard boot must encode to the
// identical bytes.
func classSnapshot(cl ForkClass) (*classImage, error) {
	forkImages.mu.Lock()
	defer forkImages.mu.Unlock()
	if ci, ok := forkImages.m[cl]; ok {
		return ci, nil
	}
	take := func(shards int) (*snap.Image, []byte, error) {
		m, ks, err := bootForkClass(cl, shards)
		if err != nil {
			return nil, nil, fmt.Errorf("boot (shards=%d): %w", shards, err)
		}
		im, err := snap.Take(m, ks)
		if err != nil {
			return nil, nil, fmt.Errorf("take (shards=%d): %w", shards, err)
		}
		enc, err := im.Encode()
		if err != nil {
			return nil, nil, fmt.Errorf("encode (shards=%d): %w", shards, err)
		}
		return im, enc, nil
	}
	im, enc, err := take(1)
	if err != nil {
		return nil, err
	}
	for _, shards := range []int{1, 4} {
		_, enc2, err := take(shards)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(enc, enc2) {
			return nil, fmt.Errorf("snapshot of class %+v not deterministic: re-boot at shards=%d encoded %d bytes vs %d, contents differ",
				cl, shards, len(enc2), len(enc))
		}
	}
	if forkImages.m == nil {
		forkImages.m = make(map[ForkClass]*classImage)
	}
	ci := &classImage{im: im, enc: enc}
	forkImages.m[cl] = ci
	return ci, nil
}

// contPlan is one MPM's slice of a continuation: which pages to
// scribble, how often, and with what values. Drawn deterministically
// from (seed, continuation index) so the forked and the fresh machine
// inject byte-identical work.
type contPlan struct {
	laps, count, start int
	salt               uint32
}

func contPlans(sc ForkScenario, cont int) []contPlan {
	r := sim.NewRand(sc.Seed ^ 0x636f6e74 ^ uint64(cont)*0x9e3779b97f4a7c15)
	plans := make([]contPlan, sc.MPMs)
	for i := range plans {
		plans[i] = contPlan{
			laps:  1 + r.Intn(3),
			count: 1 + r.Intn(sc.Pages),
			start: r.Intn(sc.Pages),
			salt:  uint32(r.Uint64()),
		}
	}
	return plans
}

// expectedDirty is the number of distinct page frames a continuation
// writes: per MPM, count consecutive window pages (count <= Pages, so
// all distinct).
func expectedDirty(sc ForkScenario, cont int) uint64 {
	var n uint64
	for _, p := range contPlans(sc, cont) {
		n += uint64(p.count)
	}
	return n
}

// contOutcome fingerprints one continuation run: the dispatch schedule,
// the final clock, and a checksum over every value the continuation
// read from its pages (loads before and after each store, so leaked
// sibling or parent state shows up as a checksum mismatch).
type contOutcome struct {
	hash       uint64
	dispatches uint64
	clock      uint64
	sum        uint64
	err        error
}

func runForkContinuation(m *hw.Machine, ks []*ck.Kernel, sc ForkScenario, cont int) contOutcome {
	out := contOutcome{hash: fnvOffset}
	m.SetTraceDispatch(func(name string, at uint64) {
		out.dispatches++
		out.hash = fnvAdd(out.hash, name, at)
	})
	plans := contPlans(sc, cont)
	sums := make([]uint64, len(ks))
	for i, k := range ks {
		i, pl := i, plans[i]
		body := func(e *hw.Exec) {
			var s uint64
			base := forkWinBase(i)
			for lap := 0; lap < pl.laps; lap++ {
				for q := 0; q < pl.count; q++ {
					p := (pl.start + q) % sc.Pages
					va := base + uint32(p)*hw.PageSize
					s = s*31 + uint64(e.Load32(va))
					e.Store32(va, pl.salt^uint32(lap*131+p*7))
					s = s*31 + uint64(e.Load32(va))
				}
				e.Charge(2_000)
			}
			sums[i] = s
		}
		if _, err := k.Resume(fmt.Sprintf("cont%d.%d", cont, i), 30, body); err != nil {
			out.err = fmt.Errorf("resume mpm %d: %w", i, err)
			return out
		}
	}
	if err := m.Run(math.MaxUint64); err != nil {
		out.err = fmt.Errorf("run: %w", err)
		return out
	}
	out.clock = m.Now()
	for _, s := range sums {
		out.sum = out.sum*1099511628211 + s
	}
	return out
}

// RunForkScenario explores one fork scenario at the given shard count:
// fork the class image once per continuation and check every oracle
// against a freshly booted machine running the identical continuation.
func RunForkScenario(sc ForkScenario, shards int) *ForkResult {
	res := &ForkResult{Scenario: sc, Hash: fnvOffset}
	fail := func(oracle, format string, args ...any) {
		res.Failures = append(res.Failures, Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}
	ci, err := classSnapshot(sc.Class())
	if err != nil {
		fail("snapshot", "%v", err)
		return res
	}
	res.SnapshotBytes = len(ci.enc)
	d0, err := ci.im.Digest()
	if err != nil {
		fail("snapshot", "digest: %v", err)
		return res
	}
	for c := 0; c < sc.Conts; c++ {
		fm, fks, err := ci.im.Fork(shards, nil)
		if err != nil {
			fail("fork", "cont %d: %v", c, err)
			continue
		}
		fOut := runForkContinuation(fm, fks, sc, c)
		if fOut.err != nil {
			fail("fork", "cont %d: %v", c, fOut.err)
			continue
		}
		nm, nks, err := bootForkClass(sc.Class(), shards)
		if err != nil {
			fail("fork", "cont %d fresh boot: %v", c, err)
			continue
		}
		// The fork warped every engine to the snapshot's global clock;
		// align the fresh machine's engines the same way so the two
		// timelines are comparable cycle for cycle.
		if err := nm.WarpClocks(nm.CaptureClocks()); err != nil {
			fail("fork", "cont %d fresh warp: %v", c, err)
			continue
		}
		nOut := runForkContinuation(nm, nks, sc, c)
		if nOut.err != nil {
			fail("fork", "cont %d fresh: %v", c, nOut.err)
			continue
		}
		if fOut.hash != nOut.hash || fOut.dispatches != nOut.dispatches {
			fail("fork-vs-fresh", "cont %d: forked schedule %016x/%d dispatches vs fresh %016x/%d",
				c, fOut.hash, fOut.dispatches, nOut.hash, nOut.dispatches)
		}
		if fOut.clock != nOut.clock {
			fail("fork-vs-fresh", "cont %d: forked final clock %d vs fresh %d", c, fOut.clock, nOut.clock)
		}
		if fOut.sum != nOut.sum {
			fail("fork-vs-fresh", "cont %d: forked memory checksum %016x vs fresh %016x (leaked parent or sibling state)",
				c, fOut.sum, nOut.sum)
		}
		stats := fm.Phys.CowStats()
		if want := expectedDirty(sc, c); stats.CopiedPages != want || stats.Faults != want {
			fail("cow", "cont %d: %d pages copied, %d faults; continuation dirtied %d distinct pages",
				c, stats.CopiedPages, stats.Faults, want)
		}
		res.Forks++
		res.CowCopied += fm.Phys.CowStats().CopiedPages
		res.Hash = fnvAdd(res.Hash, "cont", fOut.hash)
	}
	if d1, err := ci.im.Digest(); err != nil {
		fail("cow", "post-fork digest: %v", err)
	} else if d1 != d0 {
		fail("cow", "parent image mutated by forks: digest %016x, was %016x", d1, d0)
	}
	return res
}

// RunForkSeed generates and runs one fork-family seed serially.
func RunForkSeed(seed uint64) *ForkResult {
	return RunForkScenario(GenerateFork(seed), 1)
}

// ForkCheck runs one op-stream seed through the replay fork tier and
// verifies the forked mode changes no verdict: the run paused at a
// mid-trace cut must report the identical failures, schedule hash,
// dispatch count and final clock as the unpaused run, and the machine
// state digest at the cut must reproduce across runs.
func ForkCheck(seed uint64, shards int) error {
	sc := Generate(seed)
	base := RunSharded(sc, nil, shards)
	cut := base.FinalClock / 2
	var d1, d2 uint64
	paused := RunCut(sc, nil, shards, cut, func(m *hw.Machine) { d1 = m.StateDigest() })
	forked := RunCut(sc, nil, shards, cut, func(m *hw.Machine) { d2 = m.StateDigest() })
	if d1 != d2 {
		return fmt.Errorf("seed %d: state digest at cut %d not reproducible: %016x vs %016x", seed, cut, d1, d2)
	}
	if err := verdictEqual(base, paused); err != nil {
		return fmt.Errorf("seed %d: fork-mode run (cut %d) diverged from plain run: %w", seed, cut, err)
	}
	if err := verdictEqual(base, forked); err != nil {
		return fmt.Errorf("seed %d: second fork-mode run (cut %d) diverged from plain run: %w", seed, cut, err)
	}
	return nil
}

// verdictEqual compares every deterministic verdict of two runs of the
// same scenario.
func verdictEqual(a, b *Result) error {
	if a.Hash != b.Hash {
		return fmt.Errorf("schedule hash %016x vs %016x", a.Hash, b.Hash)
	}
	if a.Dispatches != b.Dispatches {
		return fmt.Errorf("%d vs %d dispatches", a.Dispatches, b.Dispatches)
	}
	if a.FinalClock != b.FinalClock {
		return fmt.Errorf("final clock %d vs %d", a.FinalClock, b.FinalClock)
	}
	if a.Steps != b.Steps {
		return fmt.Errorf("%d vs %d steps", a.Steps, b.Steps)
	}
	if len(a.Failures) != len(b.Failures) {
		return fmt.Errorf("%d vs %d failures", len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			return fmt.Errorf("failure %d: %q vs %q", i, a.Failures[i].Detail, b.Failures[i].Detail)
		}
	}
	return nil
}
