// Package simtest is a deterministic property-based simulation-testing
// harness for the whole Cache Kernel stack (FoundationDB-style): one
// uint64 seed expands into a multi-MPM topology, an application-kernel
// mix, an operation stream and a chaos fault plan, all under the
// virtual clock, so every run is bit-reproducible. Oracles check the
// caching model's core claims at quiescent points — descriptor state is
// a cache of the application kernels' master copies, nothing is lost or
// duplicated, and virtual time never runs backwards — and failures
// shrink to a minimal scenario that replays from a JSON file.
package simtest

import (
	"encoding/json"
	"fmt"
	"strings"

	"vpp/internal/chaos"
)

// OpKind enumerates the generated operation stream's vocabulary.
type OpKind int

const (
	// OpPause charges idle time on the driver.
	OpPause OpKind = iota
	// OpWorker spawns a thread that demand-faults a small page window
	// and exits through a trap to its kernel.
	OpWorker
	// OpStorm is OpWorker with a window sized to thrash the mapping
	// cache (page-fault storm: eviction, writeback, reload).
	OpStorm
	// OpMapFlip loads and immediately unloads mappings, checking the
	// unloaded state round-trips.
	OpMapFlip
	// OpEcho runs client/server IPC rounds over a message-mode page
	// pair with an address-valued signal registration.
	OpEcho
	// OpPulse signals a long-lived service thread; with a delay it also
	// forces a self-unload/reload cycle of that thread's descriptor.
	OpPulse
	// OpSwap asks the SRM to swap a whole scratch kernel out and back
	// in (descriptor writeback/eviction at kernel granularity).
	OpSwap
	// OpAlarm sets absolute-time alarms on a listener thread.
	OpAlarm

	numOpKinds
)

// String names an operation kind.
func (k OpKind) String() string {
	switch k {
	case OpPause:
		return "pause"
	case OpWorker:
		return "worker"
	case OpStorm:
		return "storm"
	case OpMapFlip:
		return "mapflip"
	case OpEcho:
		return "echo"
	case OpPulse:
		return "pulse"
	case OpSwap:
		return "swap"
	case OpAlarm:
		return "alarm"
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// Op is one generated operation. Fields are interpreted per kind; the
// zero value of an unused field is meaningful (and kept stable so
// replay files stay valid across versions).
type Op struct {
	Kind OpKind
	// MPM selects the node whose driver executes the op.
	MPM int

	Pages   int `json:",omitempty"`
	Laps    int `json:",omitempty"`
	Rounds  int `json:",omitempty"`
	DelayUS int `json:",omitempty"`
	Prio    int `json:",omitempty"`
}

// Mix selects which application-kernel stacks the scenario boots
// alongside the per-node driver kernel.
type Mix struct {
	Unix    bool // unixemu timesharing a process tree on node 0
	RTK     bool // rtk periodic hard-real-time task on the last node
	DSM     bool // dsm sharers ping-ponging a page across nodes 0 and 1
	Netboot bool // TFTP image fetch over a simulated wire on node 0
}

// Scenario is one fully-expanded test case: everything Run needs, all
// derived deterministically from Seed by Generate (or shrunk from such
// a scenario, or decoded from a replay file).
type Scenario struct {
	Seed uint64

	MPMs         int
	CPUsPerMPM   int
	ThreadSlots  int
	MappingSlots int
	HorizonUS    int

	Mix Mix

	// Crash marks the crash-recovery family: a scripted Cache Kernel
	// crash at CrashAtUS with an SRM guardian recovering it.
	Crash     bool `json:",omitempty"`
	CrashAtUS int  `json:",omitempty"`

	// FaultSeed seeds the chaos injector's own stream; Faults is the
	// armed plan.
	FaultSeed uint64
	Faults    []chaos.Fault `json:",omitempty"`

	// Orch marks the orchestration family: instead of driver op streams,
	// the scenario boots the ckctl plane over every MPM and drives a
	// rolling upgrade of a pod fleet (live cross-MPM migration) under the
	// fault plan. Ops is empty for this family.
	Orch *OrchSpec `json:",omitempty"`

	Ops []Op
}

// OrchSpec parameterizes one orchestration scenario. The fault plan
// still lives in Scenario.Faults so shard co-location and the injector
// work unchanged.
type OrchSpec struct {
	// Pods is the fleet size (sum over both restart-policy groups).
	Pods int
	// BeatUS is the virtual time one pod heartbeat charges.
	BeatUS int
	// UpgradeAtUS schedules the rolling upgrade (live migration of every
	// instance, serially, in name order).
	UpgradeAtUS int
	// Chaotic relaxes the upgrade oracles: under kill/crash faults,
	// individual migrations may legitimately fail over to a relaunch.
	Chaotic bool `json:",omitempty"`
}

// Failure is one oracle violation.
type Failure struct {
	Oracle string
	Detail string
}

// Result is the outcome of running one scenario.
type Result struct {
	Scenario Scenario
	Failures []Failure
	// FailuresTruncated reports that more violations occurred than the
	// harness records.
	FailuresTruncated bool

	// FinalClock/Steps/Dispatches/Hash fingerprint the run: Hash is
	// FNV-1a over the full dispatch schedule (name and virtual time of
	// every dispatch).
	FinalClock uint64
	Steps      uint64
	Dispatches uint64
	Hash       uint64

	FaultStats chaos.Stats

	// Orch summarizes the orchestration family's run (nil otherwise).
	Orch *OrchStats `json:",omitempty"`

	// Shrink instrumentation, filled only by recorded runs
	// (runOpts.record) and deliberately outside Fingerprint: OpStarts[i]
	// is the virtual time op i's driver began executing it (MaxUint64 =
	// it had not started when the run ended), FirstFailAt is the virtual
	// time the first oracle failure was recorded (MaxUint64 = none), and
	// JudgeSkipped counts per-op invariant checks skipped below a shrink
	// probe's judge-from point.
	OpStarts     []uint64 `json:"-"`
	FirstFailAt  uint64   `json:"-"`
	JudgeSkipped int      `json:"-"`
}

// OrchStats is the deterministic cluster summary of an orchestration
// scenario: controller phase census, migration and recovery counts, and
// the upgrade's virtual-time cost.
type OrchStats struct {
	Instances  int
	Completed  int
	Running    int
	Failed     int
	Restarts   int
	Migrated   int
	MigFailed  int
	Skipped    int
	Recoveries int
	Revived    int
	// Makespan is the rolling upgrade's span in cycles; BlackoutMax the
	// worst per-pod migration blackout observed.
	Makespan    uint64
	BlackoutMax uint64
}

// Failed reports whether any oracle fired.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// Fingerprint renders the deterministic run summary: identical for
// identical seeds, byte for byte.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	sc := &r.Scenario
	fmt.Fprintf(&b, "seed %d\n", sc.Seed)
	fmt.Fprintf(&b, "fnv64a %016x\n", r.Hash)
	fmt.Fprintf(&b, "dispatches %d\n", r.Dispatches)
	fmt.Fprintf(&b, "steps %d\n", r.Steps)
	fmt.Fprintf(&b, "final_clock %d\n", r.FinalClock)
	fmt.Fprintf(&b, "topology mpms=%d cpus=%d threads=%d mappings=%d horizon_us=%d\n",
		sc.MPMs, sc.CPUsPerMPM, sc.ThreadSlots, sc.MappingSlots, sc.HorizonUS)
	fmt.Fprintf(&b, "mix unix=%t rtk=%t dsm=%t netboot=%t crash=%t\n",
		sc.Mix.Unix, sc.Mix.RTK, sc.Mix.DSM, sc.Mix.Netboot, sc.Crash)
	if sc.Orch != nil {
		fmt.Fprintf(&b, "orch pods=%d beat_us=%d upgrade_at_us=%d chaotic=%t\n",
			sc.Orch.Pods, sc.Orch.BeatUS, sc.Orch.UpgradeAtUS, sc.Orch.Chaotic)
	}
	fmt.Fprintf(&b, "ops %d faults %d\n", len(sc.Ops), len(sc.Faults))
	fmt.Fprintf(&b, "fault_stats crashes=%d sigdrop=%d sigdup=%d wbcorrupt=%d framedrop=%d walkerr=%d\n",
		r.FaultStats.Crashes, r.FaultStats.SignalsDropped, r.FaultStats.SignalsDuplicated,
		r.FaultStats.WritebacksCorrupted, r.FaultStats.FramesDropped, r.FaultStats.WalkErrors)
	if o := r.Orch; o != nil {
		fmt.Fprintf(&b, "orch_stats inst=%d done=%d run=%d fail=%d rst=%d mig=%d migfail=%d skip=%d recov=%d revive=%d makespan=%d blackout_max=%d\n",
			o.Instances, o.Completed, o.Running, o.Failed, o.Restarts, o.Migrated,
			o.MigFailed, o.Skipped, o.Recoveries, o.Revived, o.Makespan, o.BlackoutMax)
	}
	fmt.Fprintf(&b, "failures %d\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %s: %s\n", f.Oracle, f.Detail)
	}
	if r.FailuresTruncated {
		fmt.Fprintf(&b, "  ... (truncated)\n")
	}
	return b.String()
}

// replayVersion guards replay-file compatibility.
const replayVersion = 1

// Replay is the serialized failure reproduction: the exact scenario
// (seed plus any shrinking already applied) and the failures it
// produced when recorded.
type Replay struct {
	Version  int
	Scenario Scenario
	Failures []Failure
}

// EncodeReplay serializes a replay file for a failed result.
func EncodeReplay(r *Result) ([]byte, error) {
	rep := Replay{Version: replayVersion, Scenario: r.Scenario, Failures: r.Failures}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReplay parses a replay file.
func DecodeReplay(b []byte) (*Replay, error) {
	var rep Replay
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("simtest: bad replay file: %w", err)
	}
	if rep.Version != replayVersion {
		return nil, fmt.Errorf("simtest: replay version %d, want %d", rep.Version, replayVersion)
	}
	return &rep, nil
}
