package simtest

import (
	"testing"
)

// fixedSeeds spans the generator's scenario families: plain unixemu
// boots, multi-MPM topologies with signal faults, crash-recovery runs,
// real-time mixes, distributed shared memory on three modules, netboot,
// and the swap/echo combination that once exposed the cross-module
// frame-grant collision. Every seed must pass every oracle.
var fixedSeeds = []uint64{3, 17, 29, 43, 44, 47, 48, 52, 58, 61}

func TestFixedSeeds(t *testing.T) {
	for _, seed := range fixedSeeds {
		r := RunSeed(seed)
		if r.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, r.Fingerprint())
		}
	}
}

// TestCksimShortSeed is the per-PR continuous-integration entry point:
// one short scenario, also run under the race detector and with the
// ckinvariants build tag (which re-checks the structural invariants on
// every Cache Kernel call exit).
func TestCksimShortSeed(t *testing.T) {
	r := RunSeed(52)
	if r.Failed() {
		t.Fatalf("seed 52 failed:\n%s", r.Fingerprint())
	}
	if r.Dispatches == 0 || r.Steps == 0 {
		t.Fatalf("seed 52 ran nothing: dispatches=%d steps=%d", r.Dispatches, r.Steps)
	}
}

// TestRunDeterminism asserts bit-reproducibility: the same seed run
// twice produces byte-identical fingerprints (schedule hash, step and
// dispatch counts, final virtual clock, failures).
func TestRunDeterminism(t *testing.T) {
	for _, seed := range []uint64{3, 29, 48, 61} {
		a, b := RunSeed(seed), RunSeed(seed)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("seed %d diverged:\n--- first\n%s\n--- second\n%s",
				seed, a.Fingerprint(), b.Fingerprint())
		}
	}
}

// failingScenario returns a scenario that deterministically fails: seed
// 3's workload with the horizon cut to 2 ms, long before the unixemu
// services can finish, so the conservation and op oracles fire.
func failingScenario() Scenario {
	sc := Generate(3)
	sc.HorizonUS = 2000
	return sc
}

func TestReplayRoundTrip(t *testing.T) {
	res := Run(failingScenario(), nil)
	if !res.Failed() {
		t.Fatal("truncated scenario unexpectedly passed")
	}
	b, err := EncodeReplay(res)
	if err != nil {
		t.Fatalf("EncodeReplay: %v", err)
	}
	rp, err := DecodeReplay(b)
	if err != nil {
		t.Fatalf("DecodeReplay: %v", err)
	}
	again := Run(rp.Scenario, nil)
	if !again.Failed() {
		t.Fatal("replayed scenario did not reproduce the failure")
	}
	if again.Hash != res.Hash {
		t.Fatalf("replay schedule hash %016x != original %016x", again.Hash, res.Hash)
	}
	if len(again.Failures) != len(res.Failures) {
		t.Fatalf("replay failures %d != original %d", len(again.Failures), len(res.Failures))
	}
}

func TestShrinkKeepsFailing(t *testing.T) {
	sc := failingScenario()
	min, res := Shrink(sc, 40)
	if res == nil || !res.Failed() {
		t.Fatal("shrink lost the failure")
	}
	if len(min.Ops) > len(sc.Ops) {
		t.Fatalf("shrink grew the op stream: %d > %d", len(min.Ops), len(sc.Ops))
	}
	// The minimized scenario must re-fail when run from scratch — a
	// shrunk reproduction that only failed during shrinking is useless.
	again := Run(min, nil)
	if !again.Failed() {
		t.Fatal("minimized scenario passed on rerun")
	}
	if again.Hash != res.Hash {
		t.Fatalf("minimized rerun hash %016x != shrink result %016x", again.Hash, res.Hash)
	}
}

// Recording is host-side bookkeeping: an instrumented run must produce
// the very same schedule as a plain one, and its instrumentation must
// be internally consistent — that is what makes the shrink prober's
// prefix-determinism skips sound.
func TestRecordedRunScheduleNeutral(t *testing.T) {
	sc := failingScenario()
	plain := Run(sc, nil)
	rec := runWithOpts(sc, nil, 1, runOpts{record: true})
	if rec.Hash != plain.Hash {
		t.Fatalf("recorded run hash %016x != plain %016x", rec.Hash, plain.Hash)
	}
	if !rec.Failed() {
		t.Fatal("recorded run lost the failure")
	}
	if rec.FirstFailAt > rec.FinalClock {
		t.Fatalf("first failure at %d past the final clock %d", rec.FirstFailAt, rec.FinalClock)
	}
	if len(rec.OpStarts) != len(sc.Ops) {
		t.Fatalf("recorded %d op starts for %d ops", len(rec.OpStarts), len(sc.Ops))
	}
	started := 0
	for i, at := range rec.OpStarts {
		if at == ^uint64(0) {
			continue
		}
		started++
		if at > rec.FinalClock {
			t.Fatalf("op %d started at %d past the final clock %d", i, at, rec.FinalClock)
		}
	}
	if started == 0 {
		t.Fatal("no op ever started; the instrumentation recorded nothing")
	}
}

func TestShrinkStats(t *testing.T) {
	sc := failingScenario()
	const maxRuns = 40
	min, res, st := ShrinkWithStats(sc, maxRuns)
	if res == nil || !res.Failed() {
		t.Fatal("shrink lost the failure")
	}
	if st.ProbesRun > maxRuns {
		t.Fatalf("%d probes run, budget was %d", st.ProbesRun, maxRuns)
	}
	if st.ProbesSkipped > 0 && st.PrefixCyclesSaved == 0 {
		t.Fatalf("%d probes skipped but no prefix cycles accounted", st.ProbesSkipped)
	}
	if again := Run(min, nil); !again.Failed() {
		t.Fatal("minimized scenario passed on rerun")
	}
	t.Logf("shrink: %d run, %d skipped, %d checks skipped, %d prefix cycles saved",
		st.ProbesRun, st.ProbesSkipped, st.ChecksSkipped, st.PrefixCyclesSaved)
}
