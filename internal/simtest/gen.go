package simtest

import (
	"vpp/internal/chaos"
	"vpp/internal/hw"
	"vpp/internal/sim"
)

// Generate expands one seed into a complete scenario through sim.Rand
// (SplitMix64), the repo's only sanctioned randomness. The same seed
// always yields the same scenario, so a seed alone is a reproduction.
//
// Two families: roughly a fifth of seeds are crash-recovery scenarios
// (one MPM, a scripted Cache Kernel crash under a UNIX process tree,
// an SRM guardian recovering it); the rest are multi-MPM scenarios
// mixing application kernels, driver op streams and a fault plan.
func Generate(seed uint64) Scenario {
	r := sim.NewRand(seed)
	sc := Scenario{Seed: seed}
	if r.Intn(5) == 0 {
		return generateCrash(r, sc)
	}

	sc.MPMs = 1 + r.Intn(3)
	sc.CPUsPerMPM = 2 + 2*r.Intn(2)
	sc.ThreadSlots = 128 << r.Intn(2)
	sc.MappingSlots = []int{256, 512, 4096}[r.Intn(3)]
	sc.HorizonUS = 150_000 + r.Intn(100_000)

	// Application-kernel mixes. The UNIX emulator wants four CPUs and
	// headroom in the mapping cache; DSM needs a second node for the
	// fiber.
	sc.Mix.Unix = r.Intn(3) == 0
	if sc.Mix.Unix {
		sc.CPUsPerMPM = 4
		if sc.MappingSlots < 512 {
			sc.MappingSlots = 512
		}
	}
	sc.Mix.RTK = r.Intn(3) == 0
	sc.Mix.DSM = sc.MPMs >= 2 && r.Intn(3) == 0
	sc.Mix.Netboot = r.Intn(3) == 0

	sc.FaultSeed = r.Uint64()
	sigFaults := genFaults(r, &sc)

	nops := sc.MPMs * (3 + r.Intn(6))
	kinds := []OpKind{OpPause, OpWorker, OpStorm, OpMapFlip, OpAlarm, OpPulse}
	if !sigFaults {
		kinds = append(kinds, OpEcho, OpSwap)
	}
	for i := 0; i < nops; i++ {
		sc.Ops = append(sc.Ops, genOp(r, kinds, sc.MPMs, sigFaults))
	}
	return sc
}

// GenerateOrch expands one seed into an orchestration scenario: the
// ckctl plane over 2-4 MPMs, a 50-74 pod fleet, a rolling upgrade
// (serial live migration of every instance), and one of four chaos
// variants. It is a separate family with its own seed space — Generate's
// draw sequence is untouched, so every existing seed reproduces.
//
// Horizons are generous by design: the fleet oversubscribes the CPUs
// several-fold, so a migrated pod queues behind a dozen time-sliced
// peers before its first target-side dispatch — blackouts run to
// megacycles and the serial upgrade to tens of megacycles.
func GenerateOrch(seed uint64) Scenario {
	r := sim.NewRand(seed)
	sc := Scenario{Seed: seed}
	o := &OrchSpec{}
	sc.Orch = o

	sc.MPMs = 2 + r.Intn(3)
	sc.CPUsPerMPM = 2
	sc.ThreadSlots = 256
	sc.MappingSlots = 4096
	o.Pods = 50 + r.Intn(25)
	o.BeatUS = 100 + r.Intn(150)
	o.UpgradeAtUS = 8_000 + r.Intn(12_000)
	// Per-migration cost is dominated by run-queue delay on the saturated
	// target (the moved pod waits ~runqueue x TimeSlice for its first
	// dispatch), so the serial upgrade's makespan scales with
	// Pods^2/MPMs; the horizon budgets that with a wide margin.
	sc.HorizonUS = o.UpgradeAtUS + o.Pods*15_000 + 2_000*o.Pods*o.Pods/sc.MPMs + 400_000
	sc.FaultSeed = r.Uint64()

	upgrade := uint64(o.UpgradeAtUS) * hw.CyclesPerMicrosecond
	switch r.Intn(4) {
	case 0: // clean
	case 1: // crash the first module while the upgrade drains it
		o.Chaotic = true
		sc.Faults = append(sc.Faults, chaos.Fault{
			Kind: chaos.CrashKernel,
			At:   upgrade + uint64(300+r.Intn(3_000))*hw.CyclesPerMicrosecond,
			MPM:  0,
		})
	case 2: // kill whatever is running, a few times, anywhere
		o.Chaotic = true
		for i, n := 0, 2+r.Intn(3); i < n; i++ {
			sc.Faults = append(sc.Faults, chaos.Fault{
				Kind: chaos.KillRunning,
				At:   upgrade + uint64(r.Intn(o.Pods*20_000))*hw.CyclesPerMicrosecond,
				MPM:  r.Intn(sc.MPMs),
				CPU:  r.Intn(sc.CPUsPerMPM),
			})
		}
	case 3: // low-rate page-table walk errors (transparently retried)
		sc.Faults = append(sc.Faults, chaos.Fault{
			Kind: chaos.WalkError, Prob: 0.0005 + 0.002*r.Float64(),
		})
	}
	return sc
}

// genFaults draws the scenario's chaos plan and reports whether it
// injects signal faults. Signal-fault plans drop every library mix:
// unixemu's sleep, rtk's periodic activation and dsm's wakeups all
// block on a single signal by design, so a dropped one is a designed
// hang, not a bug — the harness's own services are the ones built to
// survive it (bounded windows, re-posted signals, drop/dup-aware
// conservation accounting).
func genFaults(r *sim.Rand, sc *Scenario) (sigFaults bool) {
	horizon := uint64(sc.HorizonUS) * hw.CyclesPerMicrosecond
	switch r.Intn(5) {
	case 0: // clean
	case 1: // drop or duplicate signals inside a bounded window
		sigFaults = true
		kind := chaos.DropSignal
		if r.Intn(2) == 1 {
			kind = chaos.DupSignal
		}
		at := horizon / 4
		sc.Faults = append(sc.Faults, chaos.Fault{
			Kind: kind, At: at, Until: at + horizon/3,
			Prob: 0.05 + 0.25*r.Float64(),
		})
		sc.Mix = Mix{}
	case 2: // corrupt eviction writebacks inside a bounded window
		at := horizon / 4
		sc.Faults = append(sc.Faults, chaos.Fault{
			Kind: chaos.CorruptWriteback, At: at, Until: at + horizon/2,
			Prob: 0.1 + 0.4*r.Float64(),
		})
	case 3: // frame loss on the boot wire, else page-table walk errors
		if sc.Mix.Netboot {
			sc.Faults = append(sc.Faults, chaos.Fault{
				Kind: chaos.DropFrame, Prob: 0.03 + 0.1*r.Float64(),
			})
		} else {
			sc.Faults = append(sc.Faults, chaos.Fault{
				Kind: chaos.WalkError, Prob: 0.001 + 0.009*r.Float64(),
			})
		}
	case 4: // low-rate walk errors (transparently retried everywhere)
		sc.Faults = append(sc.Faults, chaos.Fault{
			Kind: chaos.WalkError, Prob: 0.001 + 0.004*r.Float64(),
		})
	}
	return sigFaults
}

// generateCrash draws the crash-recovery family: the recovery
// experiment's shape (UNIX process tree, guardian, scripted crash)
// with a randomized crash instant and op stream.
func generateCrash(r *sim.Rand, sc Scenario) Scenario {
	sc.Crash = true
	sc.MPMs = 1
	sc.CPUsPerMPM = 4
	sc.ThreadSlots = 256
	sc.MappingSlots = 4096
	sc.HorizonUS = 120_000
	sc.Mix.Unix = true
	sc.CrashAtUS = 8_000 + r.Intn(20_000)
	sc.FaultSeed = r.Uint64()
	sc.Faults = []chaos.Fault{{
		Kind: chaos.CrashKernel,
		At:   uint64(sc.CrashAtUS) * hw.CyclesPerMicrosecond,
		MPM:  0,
	}}
	// Ops that survive having their service threads killed mid-flight:
	// no IPC echo, no kernel swap, no service-thread nap.
	kinds := []OpKind{OpPause, OpWorker, OpStorm, OpMapFlip, OpAlarm}
	nops := 3 + r.Intn(5)
	for i := 0; i < nops; i++ {
		sc.Ops = append(sc.Ops, genOp(r, kinds, 1, true))
	}
	return sc
}

// genOp draws one operation from the allowed kinds.
func genOp(r *sim.Rand, kinds []OpKind, mpms int, sigFaults bool) Op {
	op := Op{Kind: kinds[r.Intn(len(kinds))], MPM: r.Intn(mpms)}
	switch op.Kind {
	case OpPause:
		op.DelayUS = 50 + r.Intn(1500)
	case OpWorker:
		op.Pages = 2 + r.Intn(6)
		op.Laps = 2 + r.Intn(6)
		op.Prio = 15 + r.Intn(11)
	case OpStorm:
		op.Pages = 8 + r.Intn(25)
		op.Laps = 1 + r.Intn(4)
		op.Prio = 15 + r.Intn(11)
	case OpMapFlip:
		op.Pages = 4 + r.Intn(12)
	case OpEcho:
		op.Rounds = 2 + r.Intn(6)
	case OpPulse:
		op.Rounds = 1 + r.Intn(4)
		// The nap (self-unload/reload of the service thread) needs its
		// reload handshake signals intact.
		if !sigFaults && r.Intn(2) == 0 {
			op.DelayUS = 100 + r.Intn(400)
		}
	case OpSwap:
		op.Rounds = 1 + r.Intn(3)
	case OpAlarm:
		op.Rounds = 1 + r.Intn(4)
		op.DelayUS = 100 + r.Intn(500)
	}
	return op
}
