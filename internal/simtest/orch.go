package simtest

import (
	"strings"

	"vpp/internal/chaos"
	"vpp/internal/ck"
	"vpp/internal/ckctl"
	"vpp/internal/hw"
)

// runOrch executes one orchestration-family scenario: the ckctl plane
// over every MPM, a two-group pod fleet, a rolling upgrade live-migrating
// every instance, and the scenario's fault plan. The oracles are the
// op-stream family's (monotonicity, schedule hash) plus ckctl.Verify's
// conservation/coherence/liveness/invariants sweep and the orchestration
// properties below. Byte-identical at any shard count, like everything
// else under the virtual clock.
func runOrch(sc Scenario, trace func(name string, at uint64), shards int, opts runOpts) *Result {
	res := &Result{Scenario: sc}
	o := sc.Orch
	h := &harness{sc: sc, horizon: hw.CyclesFromMicros(float64(sc.HorizonUS))}

	mcfg := hw.DefaultConfig()
	mcfg.MPMs = sc.MPMs
	mcfg.CPUsPerMPM = sc.CPUsPerMPM
	mcfg.PhysMemBytes = 256 << 20
	mcfg.Shards = shards
	mcfg.ShardMap = shardPlan(&sc, shards)
	h.m = hw.NewMachine(mcfg)
	h.installTrace(trace)

	// The fleet: a long-running on-failure group (the migration
	// workload) plus a bounded batch group with no restart policy, so
	// kill chaos exercises both reconcile outcomes.
	batch := o.Pods / 5
	spec := ckctl.Spec{Kernels: []ckctl.KernelSpec{
		{Name: "fleet", Count: o.Pods - batch, MPM: -1,
			Restart: ckctl.RestartOnFailure, BeatUS: float64(o.BeatUS)},
		{Name: "batch", Count: batch, MPM: -1,
			Restart: ckctl.RestartNever, Beats: 200, BeatUS: float64(o.BeatUS)},
	}}
	cfg := ckctl.DefaultConfig()
	cfg.Horizon = h.horizon
	// The default control timeouts assume an unloaded cluster; here the
	// launch wave is fleet-sized and a migration's first target dispatch
	// waits out a saturated run queue, so both are scaled up to keep the
	// convergence fallbacks (reissue, relaunch-at-sighting) for actual
	// faults rather than ordinary queueing.
	cfg.LaunchTimeout = hw.CyclesFromMicros(float64(5_000 + 500*o.Pods))
	cfg.MigrateTimeout = hw.CyclesFromMicros(float64(100_000 + 2_000*o.Pods))
	// Provision each module's descriptor caches for the whole fleet: the
	// paper's default 16 kernel slots would swap-thrash dozens of pod
	// kernels into a restart storm (descriptor-cache pressure at kernel
	// granularity — interesting, but a different scenario than an
	// upgrade that must converge).
	cfg.CK = ck.Config{
		KernelSlots:  o.Pods + 8,
		SpaceSlots:   o.Pods + 16,
		ThreadSlots:  sc.ThreadSlots,
		MappingSlots: sc.MappingSlots,
	}
	c, err := ckctl.New(h.m, cfg, spec)
	if err != nil {
		h.failf("op", "ckctl.New: %v", err)
		res.Failures = h.failures
		return res
	}

	h.inj = chaos.New(chaos.Plan{Seed: sc.FaultSeed, Faults: sc.Faults})
	h.inj.Arm(h.m, c.Kernels()...)
	c.ScheduleRollingUpgrade(hw.CyclesFromMicros(float64(o.UpgradeAtUS)))

	h.m.SetMaxSteps(2_000_000_000)
	if runErr := h.runMachine(opts); runErr != nil {
		h.failf("op", "machine run: %v", runErr)
	}

	for _, p := range c.Verify() {
		oracle, detail := splitOracle(p)
		h.failf(oracle, "%s", detail)
	}
	st := c.Status()
	stats := &OrchStats{Instances: len(st.Instances)}
	for _, in := range st.Instances {
		stats.Restarts += in.Restarts
		switch in.Phase {
		case "completed":
			stats.Completed++
		case "running":
			stats.Running++
		case "failed":
			stats.Failed++
		}
		// Convergence: the controller reconciles until the horizon, and
		// every fault instant is well before it, so a restartable pod
		// still pending/launching at the end is a stuck reconcile loop.
		switch {
		case in.Policy == "no":
			if in.Phase != "running" && in.Phase != "completed" && in.Phase != "failed" {
				h.failf("orch", "pod %s (policy no): phase %s at horizon", in.Name, in.Phase)
			}
		case in.Phase != "running" && in.Phase != "completed":
			h.failf("orch", "pod %s (policy %s): phase %s at horizon, want running/completed",
				in.Name, in.Policy, in.Phase)
		}
		if in.Phase == "failed" && !o.Chaotic {
			h.failf("orch", "pod %s failed without kill/crash chaos", in.Name)
		}
	}
	for _, n := range st.Nodes {
		stats.Recoveries += n.Recoveries
		stats.Revived += n.Revived
	}
	// The watchdogs only regenerate services killed out from under the
	// plane; a revival without kill/crash chaos means one misfired (e.g.
	// on a service that retired cleanly at the horizon).
	if stats.Revived > 0 && !o.Chaotic {
		h.failf("orch", "%d service revivals without kill/crash chaos", stats.Revived)
	}
	for _, m := range st.Migrations {
		if m.Failed {
			stats.MigFailed++
			if !o.Chaotic {
				h.failf("orch", "migration %s failed without chaos: %s", m.Name, m.Err)
			}
			continue
		}
		stats.Migrated++
		if m.From == m.To {
			h.failf("orch", "migration %s: from == to == %d", m.Name, m.From)
		}
		// A successful live migration always has a positive virtual-time
		// blackout: the target's first dispatch strictly follows the
		// source's last.
		if m.Blackout == 0 {
			h.failf("orch", "migration %s: zero blackout", m.Name)
		}
		stats.BlackoutMax = max(stats.BlackoutMax, m.Blackout)
	}
	switch {
	case st.Upgrade == nil:
		h.failf("orch", "rolling upgrade never started")
	case st.Upgrade.DoneAt == 0:
		h.failf("orch", "rolling upgrade did not finish by the horizon")
	default:
		stats.Makespan = st.Upgrade.Makespan
		stats.Skipped = st.Upgrade.Skipped
		// Upgrade.Migrated counts issued migrations; the records split
		// them into completed and failed-over.
		if st.Upgrade.Migrated != stats.Migrated+stats.MigFailed {
			h.failf("orch", "upgrade issued %d migrations, records show %d ok + %d failed",
				st.Upgrade.Migrated, stats.Migrated, stats.MigFailed)
		}
		if !o.Chaotic && stats.Migrated == 0 {
			h.failf("orch", "clean upgrade migrated nothing (%d skipped)", stats.Skipped)
		}
	}

	res.Failures = h.failures
	res.FailuresTruncated = h.trunc
	res.FinalClock = h.m.Now()
	res.Steps = h.m.Steps()
	res.Dispatches = h.dispatches
	res.Hash = h.hash
	res.FaultStats = h.inj.Stats
	res.Orch = stats
	return res
}

// splitOracle maps a ckctl.Verify violation ("conservation: ...",
// "coherence: ...") onto the harness's oracle/detail split.
func splitOracle(s string) (oracle, detail string) {
	if i := strings.Index(s, ": "); i > 0 && !strings.Contains(s[:i], " ") {
		return s[:i], s[i+2:]
	}
	return "verify", s
}
