package netboot

import (
	"encoding/binary"
	"fmt"

	"vpp/internal/hw"
)

// TFTP (RFC 1350) over the boot stack: the PROM monitor fetches kernel
// images with it, and the boot server serves them.

// TFTP opcodes.
const (
	tftpRRQ   = 1
	tftpWRQ   = 2
	tftpDATA  = 3
	tftpACK   = 4
	tftpERROR = 5

	tftpPort      = 69
	tftpBlockSize = 512
)

// marshalRRQ builds a read request.
func marshalRRQ(file string) []byte {
	out := make([]byte, 0, 2+len(file)+1+6)
	out = binary.BigEndian.AppendUint16(out, tftpRRQ)
	out = append(out, file...)
	out = append(out, 0)
	out = append(out, "octet"...)
	out = append(out, 0)
	return out
}

// marshalDATA builds a data block.
func marshalDATA(block uint16, data []byte) []byte {
	out := make([]byte, 0, 4+len(data))
	out = binary.BigEndian.AppendUint16(out, tftpDATA)
	out = binary.BigEndian.AppendUint16(out, block)
	return append(out, data...)
}

// marshalACK builds an acknowledgment.
func marshalACK(block uint16) []byte {
	out := make([]byte, 0, 4)
	out = binary.BigEndian.AppendUint16(out, tftpACK)
	return binary.BigEndian.AppendUint16(out, block)
}

// marshalERROR builds an error packet.
func marshalERROR(code uint16, msg string) []byte {
	out := make([]byte, 0, 4+len(msg)+1)
	out = binary.BigEndian.AppendUint16(out, tftpERROR)
	out = binary.BigEndian.AppendUint16(out, code)
	out = append(out, msg...)
	return append(out, 0)
}

// TFTPServer serves files from a name->bytes map on port 69.
type TFTPServer struct {
	Stack *Stack
	Files map[string][]byte
	// Served counts completed transfers.
	Served uint64
	stop   bool
}

// NewTFTPServer creates a server on the stack.
func NewTFTPServer(s *Stack, files map[string][]byte) *TFTPServer {
	return &TFTPServer{Stack: s, Files: files}
}

// Serve runs the server loop (call on a device execution). It handles
// one transfer at a time, which is all a boot server needs.
func (srv *TFTPServer) Serve(e *hw.Exec) error {
	conn, err := srv.Stack.Bind(tftpPort)
	if err != nil {
		return err
	}
	for !srv.stop {
		req, ok := conn.Recv(e, hw.CyclesFromMicros(100_000))
		if !ok {
			continue
		}
		if len(req.Payload) < 2 || binary.BigEndian.Uint16(req.Payload) != tftpRRQ {
			continue
		}
		name, ok := cstring(req.Payload[2:])
		if !ok {
			continue
		}
		data, exists := srv.Files[name]
		if !exists {
			_ = conn.SendTo(e, req.Src, req.SrcPort, marshalERROR(1, "file not found"))
			continue
		}
		if err := srv.transfer(e, conn, req.Src, req.SrcPort, data); err == nil {
			srv.Served++
		}
	}
	return nil
}

// Stop halts the serve loop after the current exchange.
func (srv *TFTPServer) Stop() { srv.stop = true }

func (srv *TFTPServer) transfer(e *hw.Exec, conn *UDPConn, dst IP, dstPort uint16, data []byte) error {
	block := uint16(1)
	off := 0
	for {
		end := off + tftpBlockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		for retry := 0; ; retry++ {
			if err := conn.SendTo(e, dst, dstPort, marshalDATA(block, chunk)); err != nil {
				return err
			}
			ack, ok := conn.Recv(e, hw.CyclesFromMicros(200_000))
			if ok && len(ack.Payload) >= 4 &&
				binary.BigEndian.Uint16(ack.Payload) == tftpACK &&
				binary.BigEndian.Uint16(ack.Payload[2:]) == block {
				break
			}
			if retry >= 4 {
				return fmt.Errorf("netboot: transfer stalled at block %d", block)
			}
		}
		off = end
		block++
		if len(chunk) < tftpBlockSize {
			return nil
		}
	}
}

// TFTPGet fetches a file from a server (the client side of the PROM
// monitor's boot fetch).
func TFTPGet(e *hw.Exec, s *Stack, server IP, name string, clientPort uint16) ([]byte, error) {
	conn, err := s.Bind(clientPort)
	if err != nil {
		return nil, err
	}
	var out []byte
	expect := uint16(1)
	for retry := 0; ; {
		if expect == 1 {
			if err := conn.SendTo(e, server, tftpPort, marshalRRQ(name)); err != nil {
				return nil, err
			}
		}
		d, ok := conn.Recv(e, hw.CyclesFromMicros(200_000))
		if !ok {
			retry++
			if retry > 4 {
				return nil, fmt.Errorf("netboot: RRQ timed out")
			}
			continue
		}
		if len(d.Payload) < 4 {
			continue
		}
		switch binary.BigEndian.Uint16(d.Payload) {
		case tftpERROR:
			msg, _ := cstring(d.Payload[4:])
			return nil, fmt.Errorf("netboot: server error: %s", msg)
		case tftpDATA:
			block := binary.BigEndian.Uint16(d.Payload[2:])
			if block != expect {
				// Duplicate: re-ACK.
				_ = conn.SendTo(e, d.Src, d.SrcPort, marshalACK(block))
				continue
			}
			chunk := d.Payload[4:]
			out = append(out, chunk...)
			_ = conn.SendTo(e, d.Src, d.SrcPort, marshalACK(block))
			if len(chunk) < tftpBlockSize {
				return out, nil
			}
			expect++
		}
	}
}

// cstring extracts a NUL-terminated string.
func cstring(b []byte) (string, bool) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), true
		}
	}
	return "", false
}
