package netboot

import (
	"fmt"

	"vpp/internal/hw"
	"vpp/internal/hw/dev"
)

// BootROM is the PROM monitor's network boot sequence: broadcast RARP to
// learn this node's address, then TFTP the named image from the boot
// server and place it in physical memory at loadPA. The Cache Kernel
// proper is burned into PROM; what the monitor fetches over the network
// is the initial system image (the SRM and application kernels).
type BootROM struct {
	Stack  *Stack
	Image  string
	Server IP
	LoadPA uint32

	// Booted is set after a successful fetch; ImageLen is its size.
	Booted   bool
	ImageLen uint32
}

// Boot runs the sequence on a device execution: RARP (with retry), then
// TFTP fetch, then copy into physical memory.
func (b *BootROM) Boot(e *hw.Exec) error {
	s := b.Stack
	// RARP for our own address.
	req := ARPPacket{Op: RARPRequest, SenderHW: s.NIC.Addr, TargetHW: s.NIC.Addr}
	for attempt := 0; !s.rarpGot; attempt++ {
		if attempt >= 5 {
			return fmt.Errorf("netboot: RARP timed out")
		}
		s.sendFrame(e, dev.Broadcast, EtherTypeRARP, MarshalARP(req))
		deadline := e.Now() + hw.CyclesFromMicros(100_000)
		for !s.rarpGot && e.Now() < deadline {
			e.Charge(500)
		}
	}
	img, err := TFTPGet(e, s, b.Server, b.Image, 2001)
	if err != nil {
		return err
	}
	// Copy the image into physical memory, as the monitor loads the
	// system before jumping to it.
	phys := e.MPM.Machine.Phys
	for i, v := range img {
		phys.Write8(b.LoadPA+uint32(i), v)
	}
	e.Charge(uint64(len(img)/4) * hw.CostMemHit)
	b.Booted = true
	b.ImageLen = uint32(len(img))
	return nil
}
