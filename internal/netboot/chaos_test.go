package netboot

import (
	"bytes"
	"math"
	"testing"

	"vpp/internal/chaos"
	"vpp/internal/hw"
	"vpp/internal/sim"
)

// TestARPRetryUnderFrameLoss drops the client's first ARP broadcast on
// the wire and checks that the resolver's periodic rebroadcast repairs
// it: the exchange still completes and the retry counter records the
// loss.
func TestARPRetryUnderFrameLoss(t *testing.T) {
	m, a, b := twoNodeNet(t)
	// Every frame the client transmits inside the first 10 ms is lost —
	// exactly long enough to eat the initial ARP request; the rebroadcast
	// (~20 ms in) falls outside the window.
	in := chaos.New(chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.DropFrame, Until: hw.CyclesFromMicros(10_000)},
	}})
	in.ArmNIC(a.NIC)

	var echoed []byte
	m.MPMs[0].NewDeviceExec("server", func(e *hw.Exec) {
		conn, err := b.Bind(7)
		if err != nil {
			t.Error(err)
			return
		}
		d, ok := conn.Recv(e, 1<<34)
		if !ok {
			t.Error("server recv timeout")
			return
		}
		_ = conn.SendTo(e, d.Src, d.SrcPort, append([]byte("echo:"), d.Payload...))
	})
	m.MPMs[0].NewDeviceExec("client", func(e *hw.Exec) {
		e.Charge(1000)
		conn, err := a.Bind(1234)
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.SendTo(e, IP{10, 0, 0, 2}, 7, []byte("ping")); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		d, ok := conn.Recv(e, 1<<34)
		if !ok {
			t.Error("client recv timeout")
			return
		}
		echoed = d.Payload
		a.Stop()
		b.Stop()
	})
	m.Eng.MaxSteps = 100_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if string(echoed) != "echo:ping" {
		t.Fatalf("echoed %q", echoed)
	}
	if a.ARPRetries == 0 {
		t.Fatal("no ARP rebroadcast despite the dropped request")
	}
	if in.Stats.FramesDropped == 0 {
		t.Fatal("fault plan dropped nothing")
	}
}

// TestTFTPTransferUnderFrameLoss fetches a multi-block image over a
// wire that randomly loses frames in both directions. Lost DATA blocks
// and lost ACKs must both be repaired by the server's block
// retransmission (and the client's duplicate re-ACK), yielding the
// exact image.
func TestTFTPTransferUnderFrameLoss(t *testing.T) {
	m, a, b := twoNodeNet(t)
	in := chaos.New(chaos.Plan{Seed: 21, Faults: []chaos.Fault{
		{Kind: chaos.DropFrame, Prob: 0.12},
	}})
	in.ArmNIC(a.NIC)
	in.ArmNIC(b.NIC)

	image := make([]byte, 4000) // 7 full blocks + remainder
	r := sim.NewRand(9)
	for i := range image {
		image[i] = byte(r.Uint64())
	}
	srv := NewTFTPServer(b, map[string][]byte{"vmunix": image})
	m.MPMs[0].NewDeviceExec("tftpd", func(e *hw.Exec) { _ = srv.Serve(e) })
	var fetched []byte
	var fetchErr error
	m.MPMs[0].NewDeviceExec("client", func(e *hw.Exec) {
		e.Charge(2000)
		fetched, fetchErr = TFTPGet(e, a, IP{10, 0, 0, 2}, "vmunix", 2000)
		srv.Stop()
		a.Stop()
		b.Stop()
	})
	m.Eng.MaxSteps = 200_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if fetchErr != nil {
		t.Fatalf("fetch under loss: %v", fetchErr)
	}
	if !bytes.Equal(fetched, image) {
		t.Fatalf("image mismatch: %d vs %d bytes", len(fetched), len(image))
	}
	if in.Stats.FramesDropped == 0 {
		t.Fatal("fault plan dropped nothing; the test exercised no retransmission")
	}
	// A lossless 8-block transfer is 8 DATA frames; any more from the
	// server means blocks were resent.
	if b.NIC.TxFrames <= 8 {
		t.Fatalf("server sent only %d frames; no block retransmissions", b.NIC.TxFrames)
	}
}
