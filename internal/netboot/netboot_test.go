package netboot

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Dst: dev.MAC{1, 2, 3, 4, 5, 6}, Src: dev.MAC{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4, Payload: []byte("payload"),
	}
	got, err := ParseFrame(MarshalFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.EtherType != f.EtherType ||
		string(got.Payload) != "payload" {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := ParseFrame(make([]byte, 5)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := ARPPacket{
		Op: RARPReply, SenderHW: dev.MAC{1}, TargetHW: dev.MAC{2},
		SenderIP: IP{10, 0, 0, 1}, TargetIP: IP{10, 0, 0, 2},
	}
	got, err := ParseARP(MarshalARP(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	h := IPv4Header{Protocol: IPProtoUDP, Src: IP{1, 2, 3, 4}, Dst: IP{5, 6, 7, 8}, Payload: []byte("x")}
	raw := MarshalIPv4(h)
	if _, err := ParseIPv4(raw); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	raw[13] ^= 0xff // corrupt source address
	if _, err := ParseIPv4(raw); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4UDPRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := sim.NewRand(seed)
		payload := make([]byte, int(n)%1024)
		for i := range payload {
			payload[i] = byte(r.Uint64())
		}
		u := UDPHeader{SrcPort: uint16(r.Uint64()), DstPort: uint16(r.Uint64()), Payload: payload}
		h := IPv4Header{Protocol: IPProtoUDP, Src: IP{10, 0, 0, 1}, Dst: IP{10, 0, 0, 2}, Payload: MarshalUDP(u)}
		h2, err := ParseIPv4(MarshalIPv4(h))
		if err != nil || h2.Src != h.Src || h2.Dst != h.Dst {
			return false
		}
		u2, err := ParseUDP(h2.Payload)
		if err != nil || u2.SrcPort != u.SrcPort || u2.DstPort != u.DstPort {
			return false
		}
		return bytes.Equal(u2.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// twoNodeNet builds a machine with two NICs and stacks on one wire.
func twoNodeNet(t *testing.T) (*hw.Machine, *Stack, *Stack) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	wire := dev.NewWire()
	nicA := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{0xaa, 0, 0, 0, 0, 1})
	nicB := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{0xaa, 0, 0, 0, 0, 2})
	a := NewStack("a", nicA, IP{10, 0, 0, 1})
	b := NewStack("b", nicB, IP{10, 0, 0, 2})
	a.Start(m.MPMs[0])
	b.Start(m.MPMs[0])
	return m, a, b
}

func TestUDPExchangeWithARP(t *testing.T) {
	m, a, b := twoNodeNet(t)
	var got []byte
	var echoed []byte
	srvExec := m.MPMs[0].NewDeviceExec("server", func(e *hw.Exec) {
		conn, err := b.Bind(7)
		if err != nil {
			t.Error(err)
			return
		}
		d, ok := conn.Recv(e, 1<<32)
		if !ok {
			t.Error("server recv timeout")
			return
		}
		got = d.Payload
		_ = conn.SendTo(e, d.Src, d.SrcPort, append([]byte("echo:"), d.Payload...))
	})
	_ = srvExec
	m.MPMs[0].NewDeviceExec("client", func(e *hw.Exec) {
		e.Charge(1000)
		conn, err := a.Bind(1234)
		if err != nil {
			t.Error(err)
			return
		}
		if err := conn.SendTo(e, IP{10, 0, 0, 2}, 7, []byte("ping")); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		d, ok := conn.Recv(e, 1<<32)
		if !ok {
			t.Error("client recv timeout")
			return
		}
		echoed = d.Payload
		a.Stop()
		b.Stop()
	})
	m.Eng.MaxSteps = 20_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" || string(echoed) != "echo:ping" {
		t.Fatalf("got %q, echoed %q", got, echoed)
	}
	if a.RxARP == 0 {
		t.Fatal("no ARP traffic recorded")
	}
}

func TestTFTPTransferMultiBlock(t *testing.T) {
	m, a, b := twoNodeNet(t)
	image := make([]byte, 3000) // 5 full blocks + remainder
	r := sim.NewRand(7)
	for i := range image {
		image[i] = byte(r.Uint64())
	}
	srv := NewTFTPServer(b, map[string][]byte{"vmunix": image})
	m.MPMs[0].NewDeviceExec("tftpd", func(e *hw.Exec) {
		_ = srv.Serve(e)
	})
	var fetched []byte
	var fetchErr error
	m.MPMs[0].NewDeviceExec("client", func(e *hw.Exec) {
		e.Charge(2000)
		fetched, fetchErr = TFTPGet(e, a, IP{10, 0, 0, 2}, "vmunix", 2000)
		srv.Stop()
		a.Stop()
		b.Stop()
	})
	m.Eng.MaxSteps = 50_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if fetchErr != nil {
		t.Fatalf("fetch: %v", fetchErr)
	}
	if !bytes.Equal(fetched, image) {
		t.Fatalf("image mismatch: %d vs %d bytes", len(fetched), len(image))
	}
}

func TestTFTPMissingFile(t *testing.T) {
	m, a, b := twoNodeNet(t)
	srv := NewTFTPServer(b, map[string][]byte{})
	m.MPMs[0].NewDeviceExec("tftpd", func(e *hw.Exec) { _ = srv.Serve(e) })
	var fetchErr error
	m.MPMs[0].NewDeviceExec("client", func(e *hw.Exec) {
		e.Charge(2000)
		_, fetchErr = TFTPGet(e, a, IP{10, 0, 0, 2}, "nope", 2000)
		srv.Stop()
		a.Stop()
		b.Stop()
	})
	m.Eng.MaxSteps = 50_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if fetchErr == nil {
		t.Fatal("missing file fetch succeeded")
	}
}

func TestBootROMSequence(t *testing.T) {
	m, a, b := twoNodeNet(t)
	image := []byte("cache kernel system image contents")
	b.RARPTable[a.NIC.Addr] = IP{10, 0, 0, 42}
	srv := NewTFTPServer(b, map[string][]byte{"vmunix": image})
	m.MPMs[0].NewDeviceExec("tftpd", func(e *hw.Exec) { _ = srv.Serve(e) })
	// The booting node starts with no IP.
	a.IP = IP{}
	rom := &BootROM{Stack: a, Image: "vmunix", Server: IP{10, 0, 0, 2}, LoadPA: 0x8000}
	var bootErr error
	m.MPMs[0].NewDeviceExec("bootrom", func(e *hw.Exec) {
		e.Charge(1000)
		bootErr = rom.Boot(e)
		srv.Stop()
		a.Stop()
		b.Stop()
	})
	m.Eng.MaxSteps = 50_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if bootErr != nil {
		t.Fatalf("boot: %v", bootErr)
	}
	if a.IP != (IP{10, 0, 0, 42}) {
		t.Fatalf("RARP assigned %v", a.IP)
	}
	got := m.Phys.ReadBytes(0x8000, uint32(len(image)))
	if !bytes.Equal(got, image) {
		t.Fatalf("image in memory = %q", got)
	}
}

func TestFiberPortRoundTrip(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	pa, pb := dev.ConnectFiber(m.MPMs[0], m.MPMs[0], "f0")
	var got []byte
	rxe := m.MPMs[0].NewDeviceExec("rx", func(e *hw.Exec) {
		for {
			if msg, ok := pb.Recv(e); ok {
				got = msg
				return
			}
			e.Park()
		}
	})
	pb.OnRx = func() { rxe.Wake() }
	m.MPMs[0].NewDeviceExec("tx", func(e *hw.Exec) {
		if err := pa.Send(e, []byte("over the fiber")); err != nil {
			t.Error(err)
		}
	})
	m.Eng.MaxSteps = 1_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if string(got) != "over the fiber" {
		t.Fatalf("got %q", got)
	}
}
