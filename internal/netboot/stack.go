package netboot

import (
	"fmt"

	"vpp/internal/hw"
	"vpp/internal/hw/dev"
)

// Stack is a minimal UDP/IP endpoint over one NIC, driven by a device
// execution: the PROM monitor's protocol engine. It answers ARP for its
// own address, resolves peers, optionally serves RARP from a table, and
// delivers UDP datagrams to bound ports.
type Stack struct {
	Name string
	NIC  *dev.NIC
	IP   IP

	arp map[IP]dev.MAC
	// RARPTable maps hardware addresses to IPs this stack will answer
	// RARP requests for (the boot server role).
	RARPTable map[dev.MAC]IP

	ports map[uint16]*UDPConn
	exec  *hw.Exec
	stop  bool

	// rarpGot is set when a RARP reply assigns our address.
	rarpGot bool

	// Stats.
	RxFrames, RxUDP, RxARP, BadFrames uint64
	// ARPRetries counts ARP request rebroadcasts after a resolution
	// stall (zero unless the wire loses frames).
	ARPRetries uint64
}

// UDPConn is a bound UDP port with a datagram queue.
type UDPConn struct {
	stack *Stack
	Port  uint16
	queue []Datagram
	onRx  func() // arrival callback, engine/coroutine context
}

// Datagram is a received UDP payload with its source.
type Datagram struct {
	Src     IP
	SrcPort uint16
	Payload []byte
}

// NewStack binds a stack to a NIC. Run must be started on a device
// execution for traffic to flow.
func NewStack(name string, nic *dev.NIC, ip IP) *Stack {
	s := &Stack{
		Name:      name,
		NIC:       nic,
		IP:        ip,
		arp:       make(map[IP]dev.MAC),
		RARPTable: make(map[dev.MAC]IP),
		ports:     make(map[uint16]*UDPConn),
	}
	return s
}

// Start spawns the stack's device execution and wires NIC arrival
// notifications to it.
func (s *Stack) Start(mpm *hw.MPM) {
	s.exec = mpm.NewDeviceExec("netboot/"+s.Name, s.run)
	s.NIC.OnRx = func() { s.exec.Wake() }
}

// Stop halts the protocol engine at its next wakeup.
func (s *Stack) Stop() {
	s.stop = true
	if s.exec != nil {
		s.exec.Wake()
	}
}

// run is the protocol engine loop.
func (s *Stack) run(e *hw.Exec) {
	for !s.stop {
		frame, ok := s.NIC.Recv(e)
		if !ok {
			e.Park()
			continue
		}
		s.handleFrame(e, frame)
	}
}

func (s *Stack) handleFrame(e *hw.Exec, raw []byte) {
	s.RxFrames++
	e.Instr(20) // demultiplexing
	f, err := ParseFrame(raw)
	if err != nil {
		s.BadFrames++
		return
	}
	switch f.EtherType {
	case EtherTypeARP, EtherTypeRARP:
		s.handleARP(e, f)
	case EtherTypeIPv4:
		s.handleIP(e, f)
	}
}

func (s *Stack) handleARP(e *hw.Exec, f Frame) {
	p, err := ParseARP(f.Payload)
	if err != nil {
		s.BadFrames++
		return
	}
	s.RxARP++
	e.Instr(12)
	switch p.Op {
	case ARPRequest:
		if p.TargetIP != s.IP {
			return
		}
		s.arp[p.SenderIP] = p.SenderHW
		reply := ARPPacket{
			Op: ARPReply, SenderHW: s.NIC.Addr, SenderIP: s.IP,
			TargetHW: p.SenderHW, TargetIP: p.SenderIP,
		}
		s.sendFrame(e, p.SenderHW, EtherTypeARP, MarshalARP(reply))
	case ARPReply:
		s.arp[p.SenderIP] = p.SenderHW
	case RARPRequest:
		ip, ok := s.RARPTable[p.TargetHW]
		if !ok {
			return
		}
		reply := ARPPacket{
			Op: RARPReply, SenderHW: s.NIC.Addr, SenderIP: s.IP,
			TargetHW: p.TargetHW, TargetIP: ip,
		}
		s.sendFrame(e, p.TargetHW, EtherTypeRARP, MarshalARP(reply))
	case RARPReply:
		if p.TargetHW == s.NIC.Addr {
			s.IP = p.TargetIP
			s.arp[p.SenderIP] = p.SenderHW
			s.rarpGot = true
		}
	}
}

func (s *Stack) handleIP(e *hw.Exec, f Frame) {
	h, err := ParseIPv4(f.Payload)
	if err != nil {
		s.BadFrames++
		return
	}
	if h.Dst != s.IP || h.Protocol != IPProtoUDP {
		return
	}
	u, err := ParseUDP(h.Payload)
	if err != nil {
		s.BadFrames++
		return
	}
	s.RxUDP++
	e.Instr(16)
	conn := s.ports[u.DstPort]
	if conn == nil {
		return
	}
	conn.queue = append(conn.queue, Datagram{
		Src: h.Src, SrcPort: u.SrcPort,
		Payload: append([]byte(nil), u.Payload...),
	})
	if conn.onRx != nil {
		conn.onRx()
	}
}

func (s *Stack) sendFrame(e *hw.Exec, dst dev.MAC, etype uint16, payload []byte) {
	_ = s.NIC.Transmit(e, MarshalFrame(Frame{
		Dst: dst, Src: s.NIC.Addr, EtherType: etype, Payload: payload,
	}))
}

// Bind claims a UDP port.
func (s *Stack) Bind(port uint16) (*UDPConn, error) {
	if _, busy := s.ports[port]; busy {
		return nil, fmt.Errorf("netboot: port %d in use", port)
	}
	c := &UDPConn{stack: s, Port: port}
	s.ports[port] = c
	return c, nil
}

// SendTo transmits a UDP datagram, ARP-resolving the destination if
// needed (broadcasting the request and spinning briefly for the reply).
func (c *UDPConn) SendTo(e *hw.Exec, dst IP, dstPort uint16, payload []byte) error {
	s := c.stack
	mac, ok := s.arp[dst]
	if !ok {
		req := ARPPacket{Op: ARPRequest, SenderHW: s.NIC.Addr, SenderIP: s.IP, TargetIP: dst}
		s.sendFrame(e, dev.Broadcast, EtherTypeARP, MarshalARP(req))
		for spins := 0; ; spins++ {
			if mac, ok = s.arp[dst]; ok {
				break
			}
			if spins > 10000 {
				return fmt.Errorf("netboot: ARP for %v timed out", dst)
			}
			// Rebroadcast periodically: a healthy wire answers within a
			// handful of spins, so only a lost request or reply reaches a
			// retransmission.
			if spins > 0 && spins%1000 == 0 {
				s.ARPRetries++
				s.sendFrame(e, dev.Broadcast, EtherTypeARP, MarshalARP(req))
			}
			e.Charge(500)
		}
	}
	udp := MarshalUDP(UDPHeader{SrcPort: c.Port, DstPort: dstPort, Payload: payload})
	ip := MarshalIPv4(IPv4Header{Protocol: IPProtoUDP, Src: s.IP, Dst: dst, Payload: udp})
	s.sendFrame(e, mac, EtherTypeIPv4, ip)
	return nil
}

// Recv waits (spinning in virtual time) for the next datagram, up to
// timeout cycles; ok=false on timeout.
func (c *UDPConn) Recv(e *hw.Exec, timeout uint64) (Datagram, bool) {
	deadline := e.Now() + timeout
	for len(c.queue) == 0 {
		if e.Now() >= deadline {
			return Datagram{}, false
		}
		e.Charge(500)
	}
	d := c.queue[0]
	copy(c.queue, c.queue[1:])
	c.queue = c.queue[:len(c.queue)-1]
	return d, true
}

// SetOnRx installs an arrival callback for event-driven receivers.
func (c *UDPConn) SetOnRx(fn func()) { c.onRx = fn }
