// Package netboot implements the PROM monitor's network boot support:
// Ethernet framing, ARP and RARP, IPv4, UDP and TFTP, plus the boot ROM
// sequence that RARPs for an address and fetches a kernel image. In the
// paper's accounting this support is roughly 40 percent of the Cache
// Kernel's code (Section 5.1); reproducing it keeps the code-size
// comparison honest.
package netboot

import (
	"encoding/binary"
	"fmt"

	"vpp/internal/hw/dev"
)

// EtherType values used by the boot stack.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeRARP = 0x8035
)

// IP is an IPv4 address.
type IP [4]byte

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Frame is a parsed Ethernet frame.
type Frame struct {
	Dst, Src  dev.MAC
	EtherType uint16
	Payload   []byte
}

// MarshalFrame renders an Ethernet frame.
func MarshalFrame(f Frame) []byte {
	out := make([]byte, 14+len(f.Payload))
	copy(out[0:6], f.Dst[:])
	copy(out[6:12], f.Src[:])
	binary.BigEndian.PutUint16(out[12:14], f.EtherType)
	copy(out[14:], f.Payload)
	return out
}

// ParseFrame decodes an Ethernet frame.
func ParseFrame(b []byte) (Frame, error) {
	if len(b) < 14 {
		return Frame{}, fmt.Errorf("netboot: short frame (%d bytes)", len(b))
	}
	var f Frame
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.EtherType = binary.BigEndian.Uint16(b[12:14])
	f.Payload = b[14:]
	return f, nil
}

// ARP opcodes (shared by ARP and RARP).
const (
	ARPRequest  = 1
	ARPReply    = 2
	RARPRequest = 3
	RARPReply   = 4
)

// ARPPacket is an Ethernet/IPv4 ARP or RARP packet.
type ARPPacket struct {
	Op                 uint16
	SenderHW, TargetHW dev.MAC
	SenderIP, TargetIP IP
}

// MarshalARP renders the 28-byte packet.
func MarshalARP(p ARPPacket) []byte {
	out := make([]byte, 28)
	binary.BigEndian.PutUint16(out[0:2], 1)      // hardware: Ethernet
	binary.BigEndian.PutUint16(out[2:4], 0x0800) // protocol: IPv4
	out[4], out[5] = 6, 4
	binary.BigEndian.PutUint16(out[6:8], p.Op)
	copy(out[8:14], p.SenderHW[:])
	copy(out[14:18], p.SenderIP[:])
	copy(out[18:24], p.TargetHW[:])
	copy(out[24:28], p.TargetIP[:])
	return out
}

// ParseARP decodes an ARP/RARP packet.
func ParseARP(b []byte) (ARPPacket, error) {
	if len(b) < 28 {
		return ARPPacket{}, fmt.Errorf("netboot: short ARP packet")
	}
	var p ARPPacket
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 {
		return p, fmt.Errorf("netboot: unsupported ARP hardware/protocol")
	}
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderHW[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetHW[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// IPv4Header is the subset of IPv4 the boot stack uses (no options, no
// fragmentation).
type IPv4Header struct {
	Protocol uint8
	Src, Dst IP
	Payload  []byte
}

// IPProtoUDP is the UDP protocol number.
const IPProtoUDP = 17

// checksum16 computes the Internet checksum.
func checksum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// MarshalIPv4 renders a 20-byte header plus payload.
func MarshalIPv4(h IPv4Header) []byte {
	out := make([]byte, 20+len(h.Payload))
	out[0] = 0x45 // v4, 5 words
	binary.BigEndian.PutUint16(out[2:4], uint16(20+len(h.Payload)))
	out[8] = 32 // TTL
	out[9] = h.Protocol
	copy(out[12:16], h.Src[:])
	copy(out[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(out[10:12], checksum16(out[:20]))
	copy(out[20:], h.Payload)
	return out
}

// ParseIPv4 decodes and validates a header.
func ParseIPv4(b []byte) (IPv4Header, error) {
	if len(b) < 20 || b[0]>>4 != 4 {
		return IPv4Header{}, fmt.Errorf("netboot: bad IPv4 header")
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < 20 || len(b) < ihl {
		return IPv4Header{}, fmt.Errorf("netboot: bad IHL")
	}
	if checksum16(b[:ihl]) != 0 {
		return IPv4Header{}, fmt.Errorf("netboot: IPv4 checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return IPv4Header{}, fmt.Errorf("netboot: bad total length")
	}
	var h IPv4Header
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	h.Payload = b[ihl:total]
	return h, nil
}

// UDPHeader is a UDP datagram.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// MarshalUDP renders a datagram (checksum omitted: legal in IPv4, and
// the PROM monitor did the same).
func MarshalUDP(u UDPHeader) []byte {
	out := make([]byte, 8+len(u.Payload))
	binary.BigEndian.PutUint16(out[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], u.DstPort)
	binary.BigEndian.PutUint16(out[4:6], uint16(8+len(u.Payload)))
	copy(out[8:], u.Payload)
	return out
}

// ParseUDP decodes a datagram.
func ParseUDP(b []byte) (UDPHeader, error) {
	if len(b) < 8 {
		return UDPHeader{}, fmt.Errorf("netboot: short UDP datagram")
	}
	var u UDPHeader
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	n := int(binary.BigEndian.Uint16(b[4:6]))
	if n < 8 || n > len(b) {
		return UDPHeader{}, fmt.Errorf("netboot: bad UDP length")
	}
	u.Payload = b[8:n]
	return u, nil
}
