package exp

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/ckctl"
	"vpp/internal/hw"
)

// OrchestrationResult measures the ckctl plane's live cross-MPM kernel
// migration (DESIGN §12): a pod fleet on a three-module machine, a
// rolling upgrade live-migrating every running instance, and the
// per-pod virtual-time blackout — last source-side dispatch to first
// target-side dispatch of the moved kernel's threads. Migration is a
// records handoff (quiesce, expel writeback, cross-module message,
// adopt), so the blackout is dominated by descriptor writeback plus the
// run-queue delay on the saturated target, not by state copying.
type OrchestrationResult struct {
	MPMs int
	Pods int

	// Upgrade outcome: issued migrations, pods skipped (batch pods that
	// completed before their turn), and the serial upgrade's span.
	Migrated int
	Skipped  int
	Makespan uint64

	// Blackout distribution over the completed migrations, in cycles.
	BlackoutMin  uint64
	BlackoutMean float64
	BlackoutMax  uint64

	// Census at the horizon.
	Completed int
	Running   int
	Restarts  int

	// FinalClock/Steps fingerprint the run for the determinism golden.
	FinalClock uint64
	Steps      uint64
}

func (r OrchestrationResult) String() string {
	s := fmt.Sprintf("fleet: %d pods over %d modules; rolling upgrade migrated %d (%d skipped)\n",
		r.Pods, r.MPMs, r.Migrated, r.Skipped)
	s += fmt.Sprintf("upgrade makespan: %.1f ms of virtual time\n", us(r.Makespan)/1000)
	s += fmt.Sprintf("%-24s %12s\n", "migration blackout", "virtual µs")
	s += fmt.Sprintf("%-24s %12.1f\n", "  min", us(r.BlackoutMin))
	s += fmt.Sprintf("%-24s %12.1f\n", "  mean", r.BlackoutMean/hw.CyclesPerMicrosecond)
	s += fmt.Sprintf("%-24s %12.1f\n", "  max", us(r.BlackoutMax))
	s += fmt.Sprintf("at horizon: %d running, %d completed, %d restarts\n",
		r.Running, r.Completed, r.Restarts)
	s += fmt.Sprintf("final virtual clock %.1f ms\n", us(r.FinalClock)/1000)
	return s
}

// RunOrchestrationWorkload boots the ckctl plane over a three-module
// machine, launches a 24-pod fleet (20 restart-on-failure heartbeat
// pods plus 4 bounded batch pods), schedules a rolling upgrade at a
// fixed virtual time, and reports the migration blackout distribution.
// No chaos: every migration must complete and every oracle-style check
// here is fatal. Fully deterministic; the orchestration golden hashes
// its dispatch schedule.
func RunOrchestrationWorkload(trace func(name string, at uint64), shards int) (OrchestrationResult, error) {
	return RunOrchestrationWorkloadCut(trace, shards, 0, nil)
}

// RunOrchestrationWorkloadCut is the replay-fork form of the
// orchestration workload: it pauses at virtual time cut for the pause
// hook before running to completion.
func RunOrchestrationWorkloadCut(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (OrchestrationResult, error) {
	const (
		mpms      = 3
		pods      = 24
		batch     = 4
		beatUS    = 150
		upgradeUS = 10_000
	)
	var res OrchestrationResult
	res.MPMs = mpms
	res.Pods = pods

	cfg := hw.DefaultConfig()
	cfg.MPMs = mpms
	cfg.CPUsPerMPM = 2
	cfg.PhysMemBytes = 256 << 20
	cfg.Shards = shards
	m := hw.NewMachine(cfg)
	m.SetTraceDispatch(trace)

	ccfg := ckctl.DefaultConfig()
	// The same scaling the simulation harness uses: the launch wave is
	// fleet-sized and a migrated pod queues behind time-sliced peers on
	// the saturated target, so the stock timeouts would misfire.
	ccfg.Horizon = hw.CyclesFromMicros(upgradeUS + pods*15_000 + 2_000*pods*pods/mpms + 400_000)
	ccfg.LaunchTimeout = hw.CyclesFromMicros(5_000 + 500*pods)
	ccfg.MigrateTimeout = hw.CyclesFromMicros(100_000 + 2_000*pods)
	ccfg.CK = ck.Config{KernelSlots: pods + 8, SpaceSlots: pods + 16}

	spec := ckctl.Spec{Kernels: []ckctl.KernelSpec{
		{Name: "fleet", Count: pods - batch, MPM: -1,
			Restart: ckctl.RestartOnFailure, BeatUS: beatUS},
		{Name: "batch", Count: batch, MPM: -1,
			Restart: ckctl.RestartNever, Beats: 200, BeatUS: beatUS},
	}}
	c, err := ckctl.New(m, ccfg, spec)
	if err != nil {
		return res, err
	}
	c.ScheduleRollingUpgrade(hw.CyclesFromMicros(upgradeUS))

	m.SetMaxSteps(2_000_000_000)
	if err := runCut(m, cut, pause); err != nil {
		return res, err
	}
	if bad := c.Verify(); len(bad) > 0 {
		return res, fmt.Errorf("exp: cluster verify: %s (+%d more)", bad[0], len(bad)-1)
	}

	st := c.Status()
	if st.Upgrade == nil || st.Upgrade.DoneAt == 0 {
		return res, fmt.Errorf("exp: rolling upgrade did not finish by the horizon")
	}
	res.Migrated = st.Upgrade.Migrated
	res.Skipped = st.Upgrade.Skipped
	res.Makespan = st.Upgrade.Makespan
	var sum uint64
	for _, mg := range st.Migrations {
		if mg.Failed {
			return res, fmt.Errorf("exp: migration %s failed without chaos: %s", mg.Name, mg.Err)
		}
		if res.BlackoutMin == 0 || mg.Blackout < res.BlackoutMin {
			res.BlackoutMin = mg.Blackout
		}
		if mg.Blackout > res.BlackoutMax {
			res.BlackoutMax = mg.Blackout
		}
		sum += mg.Blackout
	}
	if len(st.Migrations) > 0 {
		res.BlackoutMean = float64(sum) / float64(len(st.Migrations))
	}
	for _, in := range st.Instances {
		switch in.Phase {
		case "completed":
			res.Completed++
		case "running":
			res.Running++
		default:
			return res, fmt.Errorf("exp: pod %s: phase %s at horizon", in.Name, in.Phase)
		}
		res.Restarts += in.Restarts
	}
	res.FinalClock = m.Now()
	res.Steps = m.Steps()
	return res, nil
}

// RunOrchestrationTrace adapts RunOrchestrationWorkload to the
// schedule-golden harness.
func RunOrchestrationTrace(trace func(name string, at uint64), shards int) (uint64, uint64, error) {
	res, err := RunOrchestrationWorkload(trace, shards)
	return res.FinalClock, res.Steps, err
}

// RunOrchestrationTraceCut adapts RunOrchestrationWorkloadCut to
// snap.CutFunc.
func RunOrchestrationTraceCut(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (uint64, uint64, error) {
	res, err := RunOrchestrationWorkloadCut(trace, shards, cut, pause)
	return res.FinalClock, res.Steps, err
}
