package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/pagetable"
	"vpp/internal/sim"
)

// HostperfReport records host-side simulator throughput: how fast the
// host executes simulated work, independent of the (unchanged) virtual
// cycle charges. cmd/ckbench -hostperf emits it as BENCH_hostperf.json
// so the performance trajectory is tracked across PRs; EXPERIMENTS.md
// explains how to compare runs.
type HostperfReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Engine-step microbenchmark: 256 runnable coroutines, each
	// scheduling decision a heap/scan pick plus one coroutine handoff.
	// The allocation profile is measured over the steady state (after a
	// warmup run that fills the pools): the no-trace step path must be
	// allocation-free, and CI enforces AllocsPerOp == 0 here.
	EngineStepCoros       int     `json:"engine_step_coros"`
	EngineSteps           uint64  `json:"engine_steps"`
	EngineStepHostMs      float64 `json:"engine_step_host_ms"`
	EngineStepsPerSec     float64 `json:"engine_steps_per_sec"`
	EngineStepAllocsPerOp float64 `json:"engine_step_allocs_per_op"`
	EngineStepBytesPerOp  float64 `json:"engine_step_bytes_per_op"`

	// Translate hit path: repeated MMU translations of one hot resident
	// page — the case the per-Exec micro-cache serves. Rotating working
	// sets are covered by BenchmarkTLBLookup in internal/hw.
	TranslateOps     uint64  `json:"translate_ops"`
	TranslateHostMs  float64 `json:"translate_host_ms"`
	TranslateNsPerOp float64 `json:"translate_ns_per_op"`

	// Full boot + workload: a Cache Kernel boot running a getpid loop
	// alongside waves of short-lived threads (the ckos-style shape that
	// accumulates finished contexts).
	BootGetpidLoops     int     `json:"boot_getpid_loops"`
	BootWorkerWaves     int     `json:"boot_worker_waves"`
	BootSimCycles       uint64  `json:"boot_sim_cycles"`
	BootSimMicros       float64 `json:"boot_sim_micros"`
	BootSchedSteps      uint64  `json:"boot_sched_steps"`
	BootHostMs          float64 `json:"boot_host_ms"`
	BootSimCyclesPerSec float64 `json:"boot_sim_cycles_per_sec"`
	// HostNsPerSimMicro is host nanoseconds spent per simulated
	// microsecond of the boot workload — the headline "how much slower
	// than the hardware are we" number.
	HostNsPerSimMicro float64 `json:"boot_host_ns_per_sim_micro"`

	// Sharded engine scaling: a 16-MPM topology of independent
	// engine-step workloads spread over 1/2/4/8 shards, each shard a
	// goroutine (so host parallelism caps at HostCPUs — speedup cannot
	// exceed min(shards, host_cpus) and is ~1.0 on a single-core host).
	// No cross-shard channel exists, so the cluster takes its scaling
	// fast path: one unbounded epoch, no barrier logging.
	HostCPUs       int                  `json:"host_cpus"`
	ShardedMPMs    int                  `json:"sharded_mpms"`
	ShardedScaling []HostperfShardPoint `json:"sharded_engine_scaling"`

	// Big64: the many-core topology — 64 MPMs, Big64Coros coroutines in
	// total — with a cross-shard latency bound registered, so the
	// cluster runs real epochs through the logged path: per-epoch
	// action logs, pooled event records, and barrier resets all on the
	// hot path, plus idle-shard epochs from the staggered park phases.
	// Allocation columns are steady-state (post-warmup) and show that
	// the pooled epoch machinery stops allocating once its high-water
	// marks are reached. Speedup columns are honest about HostCPUs: on
	// a single-core host they sit near 1.0 and the ≥4x scaling claim
	// stays deferred (EXPERIMENTS.md).
	Big64MPMs        int                  `json:"big64_mpms"`
	Big64Coros       int                  `json:"big64_coros"`
	Big64EpochCycles uint64               `json:"big64_epoch_bound_cycles"`
	Big64Scaling     []HostperfShardPoint `json:"big64_engine_scaling"`

	// Cksan records the runtime ownership sanitizer's overhead: a
	// -tags cksan ckbench run re-measures the microbenchmarks and
	// stores them with their ratios against the clean numbers above.
	// Absent when no sanitizer run has been merged into the report.
	Cksan *HostperfCksan `json:"cksan,omitempty"`
}

// HostperfCksan is the sanitized build's throughput next to the clean
// build's, as overhead ratios (sanitized cost / clean cost; 1.0 = free).
type HostperfCksan struct {
	EngineStepsPerSec  float64 `json:"engine_steps_per_sec"`
	TranslateNsPerOp   float64 `json:"translate_ns_per_op"`
	HostNsPerSimMicro  float64 `json:"boot_host_ns_per_sim_micro"`
	EngineStepOverhead float64 `json:"engine_step_overhead"`
	TranslateOverhead  float64 `json:"translate_overhead"`
	BootOverhead       float64 `json:"boot_overhead"`
}

// HostperfShardPoint is one shard count's aggregate engine throughput
// and steady-state host allocation profile (per scheduling decision,
// measured after a pool-filling warmup run).
type HostperfShardPoint struct {
	Shards      int     `json:"shards"`
	Steps       uint64  `json:"steps"`
	HostMs      float64 `json:"host_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	Speedup     float64 `json:"speedup_vs_serial"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func (r HostperfReport) String() string {
	s := fmt.Sprintf(
		"engine step (%d coros): %.0f steps/sec (%d steps in %.1f ms, %.2f allocs/op, %.1f B/op)\n"+
			"translate hit path:       %.1f ns/op (%d ops in %.1f ms)\n"+
			"boot+getpid workload:     %.0f sim-cycles/sec, %.0f host-ns per sim-µs\n"+
			"                          (%d sim-cycles = %.0f sim-µs in %.1f ms, %d sched steps)\n",
		r.EngineStepCoros, r.EngineStepsPerSec, r.EngineSteps, r.EngineStepHostMs,
		r.EngineStepAllocsPerOp, r.EngineStepBytesPerOp,
		r.TranslateNsPerOp, r.TranslateOps, r.TranslateHostMs,
		r.BootSimCyclesPerSec, r.HostNsPerSimMicro,
		r.BootSimCycles, r.BootSimMicros, r.BootHostMs, r.BootSchedSteps)
	for _, p := range r.ShardedScaling {
		s += fmt.Sprintf("sharded %2d-MPM engine, %d shard(s) on %d host cpu(s): %.0f steps/sec (%.2fx vs serial, %.2f allocs/op, %.1f B/op)\n",
			r.ShardedMPMs, p.Shards, r.HostCPUs, p.StepsPerSec, p.Speedup, p.AllocsPerOp, p.BytesPerOp)
	}
	for _, p := range r.Big64Scaling {
		s += fmt.Sprintf("big64 %2d-MPM epoch engine (%d coros, %d-cycle epochs), %d shard(s): %.0f steps/sec (%.2fx vs serial, %.2f allocs/op, %.1f B/op)\n",
			r.Big64MPMs, r.Big64Coros, r.Big64EpochCycles, p.Shards, p.StepsPerSec, p.Speedup, p.AllocsPerOp, p.BytesPerOp)
	}
	return s
}

// clusterRunProfile is the measured window of one cluster workload:
// scheduling decisions made, host wall time, and the host allocation
// profile per decision.
type clusterRunProfile struct {
	ops         uint64
	hostMs      float64
	allocsPerOp float64
	bytesPerOp  float64
}

// measureClusterRun runs c for warm scheduling decisions to reach
// steady state (pool high-water marks hit, worker goroutines and
// coroutine stacks grown), then measures steps further decisions.
// Allocation deltas come from runtime.MemStats: safe to read here
// because between Run calls every shard worker is parked, so no other
// goroutine is allocating.
func measureClusterRun(c *sim.Cluster, warm, steps uint64) clusterRunProfile {
	decisions := func() uint64 {
		var t uint64
		for i := 0; i < c.Shards(); i++ {
			t += c.Engine(i).Decisions()
		}
		return t
	}
	c.MaxSteps = warm
	_ = c.Run(math.MaxUint64)
	// The guard is a runaway bound, not an exact count: in one epoch
	// every shard may consume the whole remainder, so the warm run can
	// overshoot MaxSteps by a shard-count factor. Arm the measured run
	// relative to the decisions actually made.
	base := decisions()
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	t0 := time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	c.MaxSteps = base + steps
	_ = c.Run(math.MaxUint64)
	d := time.Since(t0) //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	runtime.ReadMemStats(&m2)
	p := clusterRunProfile{
		ops:    decisions() - base,
		hostMs: float64(d.Nanoseconds()) / 1e6,
	}
	if p.ops > 0 {
		p.allocsPerOp = float64(m2.Mallocs-m1.Mallocs) / float64(p.ops)
		p.bytesPerOp = float64(m2.TotalAlloc-m1.TotalAlloc) / float64(p.ops)
	}
	return p
}

// hostperfShardedStep spreads mpms independent engine-step workloads
// (4 runnable coroutines each) over shards cluster shards and measures
// steps scheduling decisions after a warmup quarter. With no
// cross-shard channel the epoch spans the whole run — the measurement
// isolates raw parallel engine throughput, not barrier cost.
func hostperfShardedStep(mpms, shards int, steps uint64) clusterRunProfile {
	c := sim.NewCluster(shards)
	for i := 0; i < mpms; i++ {
		e := c.Engine(i % shards)
		for j := 0; j < 4; j++ {
			clk := sim.NewClock("c")
			co := e.NewCoro("w", func(ctx *sim.Ctx) {
				for {
					ctx.Advance(10)
					ctx.Reschedule()
				}
			})
			e.UnparkOn(co, clk)
		}
	}
	return measureClusterRun(c, steps/4, steps)
}

// big64EpochCycles is the registered cross-shard latency bound of the
// Big64 topology: small enough that a run crosses thousands of epoch
// barriers, so the per-epoch pooled machinery (action logs, event
// records, barrier resets) is the thing being measured.
const big64EpochCycles = 512

// hostperfBig64 builds the many-core topology — mpms MPM workloads of
// corosPerMPM coroutines each, spread over shards — with a real
// latency bound registered, so the cluster runs bounded epochs through
// the logged path. Each coroutine alternates bursts of scheduling
// decisions with parked stretches, re-arming its own wakeup event
// through the pooled event records; the park phases are staggered per
// MPM so some epochs find whole shards idle (the inline idle-shard
// fast path). The wake closure is built once per coroutine: the steady
// state must not allocate, and it does not — which the allocation
// columns of BENCH_hostperf.json demonstrate.
func hostperfBig64(mpms, corosPerMPM, shards int, steps uint64) clusterRunProfile {
	c := sim.NewCluster(shards)
	c.Bound(big64EpochCycles)
	for i := 0; i < mpms; i++ {
		e := c.Engine(i % shards)
		// Stagger park lengths by MPM so shard idleness varies by epoch.
		park := uint64(2*big64EpochCycles + i%7*big64EpochCycles/2)
		for j := 0; j < corosPerMPM; j++ {
			clk := sim.NewClock("c")
			var co *sim.Coro
			wake := func() { e.UnparkOn(co, clk) }
			co = e.NewCoro("w", func(ctx *sim.Ctx) {
				for {
					for b := 0; b < 48; b++ {
						ctx.Advance(10)
						ctx.Reschedule()
					}
					e.ScheduleAfter(park, wake)
					ctx.Park()
				}
			})
			e.UnparkOn(co, clk)
		}
	}
	// A full-length warmup: the staggered park phases beat against the
	// epoch grid, so the action log's high-water mark takes many epochs
	// to stabilize — measure only after it has.
	return measureClusterRun(c, steps, steps)
}

// hostperfEngineStep measures steps scheduling decisions over coros
// runnable coroutines after a warmup quarter, reporting the wall time
// and host allocation profile of the steady state. The serial no-trace
// step path's profile must be zero allocations per op — the headline
// zero-allocation claim CI enforces.
func hostperfEngineStep(coros int, steps uint64) clusterRunProfile {
	e := sim.NewEngine()
	for i := 0; i < coros; i++ {
		clk := sim.NewClock("c")
		co := e.NewCoro("w", func(ctx *sim.Ctx) {
			for {
				ctx.Advance(10)
				ctx.Reschedule()
			}
		})
		e.UnparkOn(co, clk)
	}
	e.MaxSteps = steps / 4
	_ = e.Run(math.MaxUint64)
	base := e.Decisions()
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	t0 := time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	e.MaxSteps = base + steps
	_ = e.Run(math.MaxUint64)
	d := time.Since(t0) //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	runtime.ReadMemStats(&m2)
	p := clusterRunProfile{
		ops:    e.Decisions() - base,
		hostMs: float64(d.Nanoseconds()) / 1e6,
	}
	if p.ops > 0 {
		p.allocsPerOp = float64(m2.Mallocs-m1.Mallocs) / float64(p.ops)
		p.bytesPerOp = float64(m2.TotalAlloc-m1.TotalAlloc) / float64(p.ops)
	}
	return p
}

// hostperfTranslate runs ops hot-path translations and reports the wall
// time.
func hostperfTranslate(ops uint64) (time.Duration, error) {
	m := hw.NewMachine(hw.DefaultConfig())
	mpm := m.MPMs[0]
	tbl, err := pagetable.New(nil)
	if err != nil {
		return 0, err
	}
	tbl.Insert(0x100_0000, pagetable.MakePTE(512, pagetable.PTEValid|pagetable.PTEWrite))
	sp := &hw.Space{Table: tbl, ASID: 1}
	e := mpm.NewExec("xlate", func(e *hw.Exec) {
		e.Space = sp
		for i := uint64(0); i < ops; i++ {
			e.Translate(0x100_0000, false)
		}
	})
	mpm.CPUs[0].Dispatch(e)
	t0 := time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	if err := m.Run(math.MaxUint64); err != nil {
		return 0, err
	}
	return time.Since(t0), nil //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
}

// RunHostperfBoot boots a Cache Kernel and runs the hostperf workload:
// a user thread looping trap(getpid) + page touches for loops
// iterations, while the boot thread launches waves of short-lived
// worker threads that fault pages in, trap, and exit. It returns the
// final virtual time and the engine's scheduling-step count. The
// workload is deterministic; only its host-side wall time varies.
func RunHostperfBoot(loops, waves int) (simCycles, steps uint64, err error) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		return 0, 0, err
	}
	const sysGetpid = 20
	attrs := ck.KernelAttrs{
		Name: "hostperf",
		Trap: func(e *hw.Exec, th ck.ObjID, no uint32, args []uint32) (uint32, uint32) {
			if no == sysGetpid {
				e.Instr(6)
				return 77, 0
			}
			return ^uint32(0), 0
		},
		LockQuota: [4]int{4, 8, 16, 256},
	}
	const winBase = uint32(0x2000_0000)
	const winPages = 192
	attrs.Fault = func(fe *hw.Exec, th, space ck.ObjID, va uint32, write bool, kind hw.Fault) bool {
		if va < winBase || va >= winBase+winPages*hw.PageSize {
			return false
		}
		err := k.LoadMappingAndResume(fe, space, ck.MappingSpec{
			VA:       va &^ (hw.PageSize - 1),
			PFN:      2048 + (va>>hw.PageShift)%1024,
			Writable: true, Cachable: true,
		})
		return err == nil
	}

	var bodyErr error
	body := func(e *hw.Exec) {
		sid, err := k.LoadSpace(e, false)
		if err != nil {
			bodyErr = err
			return
		}
		loopDone := false
		loopExec := k.MPM.NewExec("getpid-loop", func(ue *hw.Exec) {
			for i := 0; i < loops; i++ {
				ue.Trap(sysGetpid)
				ue.Touch(winBase+uint32(i%64)*hw.PageSize, false)
			}
			loopDone = true
		})
		if _, err := k.LoadThread(e, sid, ck.ThreadState{Priority: 30, Exec: loopExec}, false); err != nil {
			bodyErr = err
			return
		}
		// Waves of short-lived workers: each faults a few pages, traps,
		// and exits, leaving a finished context behind.
		for w := 0; w < waves; w++ {
			for j := 0; j < 8; j++ {
				base := winBase + uint32(64+(w*8+j)%128)*hw.PageSize
				we := k.MPM.NewExec(fmt.Sprintf("worker-%d-%d", w, j), func(ue *hw.Exec) {
					for p := uint32(0); p < 4; p++ {
						ue.Touch(base+p*hw.PageSize, true)
					}
					ue.Trap(sysGetpid)
				})
				if _, err := k.LoadThread(e, sid, ck.ThreadState{Priority: 28, Exec: we}, false); err != nil {
					bodyErr = err
					return
				}
			}
			e.Charge(hw.CyclesFromMicros(300))
		}
		for i := 0; i < loops*8 && !loopDone; i++ {
			e.Charge(2000)
		}
		if !loopDone {
			bodyErr = fmt.Errorf("hostperf: getpid loop did not finish")
		}
	}
	if _, err := k.Boot(attrs, 40, body); err != nil {
		return 0, 0, err
	}
	m.Eng.MaxSteps = 2_000_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		return 0, 0, err
	}
	return m.Eng.Now(), m.Eng.Steps(), bodyErr
}

// MeasureHostperf runs the three host-performance benchmarks at fixed
// sizes and assembles the report.
func MeasureHostperf() (HostperfReport, error) {
	r := HostperfReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	r.EngineStepCoros = 256
	ep := hostperfEngineStep(r.EngineStepCoros, 1<<19)
	r.EngineSteps = ep.ops
	r.EngineStepHostMs = ep.hostMs
	r.EngineStepsPerSec = float64(ep.ops) / (ep.hostMs / 1e3)
	r.EngineStepAllocsPerOp = ep.allocsPerOp
	r.EngineStepBytesPerOp = ep.bytesPerOp

	r.TranslateOps = 1 << 21
	d, err := hostperfTranslate(r.TranslateOps)
	if err != nil {
		return r, err
	}
	r.TranslateHostMs = float64(d.Nanoseconds()) / 1e6
	r.TranslateNsPerOp = float64(d.Nanoseconds()) / float64(r.TranslateOps)

	r.BootGetpidLoops = 4000
	r.BootWorkerWaves = 96
	t0 := time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	cycles, steps, err := RunHostperfBoot(r.BootGetpidLoops, r.BootWorkerWaves)
	d = time.Since(t0) //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	if err != nil {
		return r, err
	}
	r.BootSimCycles = cycles
	r.BootSimMicros = hw.MicrosFromCycles(cycles)
	r.BootSchedSteps = steps
	r.BootHostMs = float64(d.Nanoseconds()) / 1e6
	r.BootSimCyclesPerSec = float64(cycles) / d.Seconds()
	r.HostNsPerSimMicro = float64(d.Nanoseconds()) / r.BootSimMicros

	r.HostCPUs = runtime.NumCPU()
	r.ShardedMPMs = 16
	var serialRate float64
	for _, shards := range []int{1, 2, 4, 8} {
		pr := hostperfShardedStep(r.ShardedMPMs, shards, 1<<19)
		p := shardPoint(shards, pr, &serialRate)
		r.ShardedScaling = append(r.ShardedScaling, p)
	}

	r.Big64MPMs = 64
	r.Big64Coros = r.Big64MPMs * 32
	r.Big64EpochCycles = big64EpochCycles
	serialRate = 0
	for _, shards := range []int{1, 2, 4, 8} {
		pr := hostperfBig64(r.Big64MPMs, 32, shards, 1<<20)
		p := shardPoint(shards, pr, &serialRate)
		r.Big64Scaling = append(r.Big64Scaling, p)
	}
	return r, nil
}

// shardPoint converts one measured run into a report row, tracking the
// one-shard rate so later rows can report speedup against it.
func shardPoint(shards int, pr clusterRunProfile, serialRate *float64) HostperfShardPoint {
	p := HostperfShardPoint{
		Shards:      shards,
		Steps:       pr.ops,
		HostMs:      pr.hostMs,
		StepsPerSec: float64(pr.ops) / (pr.hostMs / 1e3),
		AllocsPerOp: pr.allocsPerOp,
		BytesPerOp:  pr.bytesPerOp,
	}
	if shards == 1 {
		*serialRate = p.StepsPerSec
	}
	if *serialRate > 0 {
		p.Speedup = p.StepsPerSec / *serialRate
	}
	return p
}
