package exp

import (
	"fmt"
	"math"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/rtk"
	"vpp/internal/srm"
)

// RTResult is ablation A5: periodic-task activation latency with locked
// objects, idle vs under mapping-churn pressure.
type RTResult struct {
	Quiet, Loaded rtk.TaskStats
}

func (r RTResult) String() string {
	return fmt.Sprintf(
		"rt task (locked objects): idle mean %.1f µs max %.1f µs, "+
			"under churn mean %.1f µs max %.1f µs, missed %d/%d\n",
		r.Quiet.MeanLatencyUS(), r.Quiet.MaxLatencyUS,
		r.Loaded.MeanLatencyUS(), r.Loaded.MaxLatencyUS,
		r.Quiet.MissedPeriods, r.Loaded.MissedPeriods)
}

// MeasureRT runs the periodic task twice.
func MeasureRT() (RTResult, error) {
	var out RTResult
	q, err := rtRun(false)
	if err != nil {
		return out, err
	}
	l, err := rtRun(true)
	if err != nil {
		return out, err
	}
	out.Quiet, out.Loaded = q, l
	return out, nil
}

func rtRun(pressure bool) (rtk.TaskStats, error) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{MappingSlots: 64, PMapBuckets: 64})
	if err != nil {
		return rtk.TaskStats{}, err
	}
	var stats rtk.TaskStats
	var runErr error
	stop := false
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		if pressure {
			_, err := s.Launch(e, "churn", srm.LaunchOpts{Groups: 8, MainPrio: 20, MaxPrio: 22},
				func(ak *aklib.AppKernel, me *hw.Exec) {
					va := uint32(0x5000_0000)
					for i := 0; !stop; i++ {
						pfn, ok := ak.Frames.Alloc()
						if !ok {
							break
						}
						_ = ak.CK.LoadMapping(me, ak.SpaceID, ck.MappingSpec{
							VA: va + uint32(i%512)*hw.PageSize, PFN: pfn, Writable: true,
						})
						ak.Frames.Free(pfn)
						me.Charge(2000)
					}
				})
			if err != nil {
				runErr = err
				return
			}
		}
		_, err := s.Launch(e, "rt", srm.LaunchOpts{Groups: 2, MainPrio: 30, Locked: true},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				rt, err := rtk.New(me, ak, 2)
				if err != nil {
					runErr = err
					return
				}
				stats, runErr = rt.RunTask(me, rtk.TaskConfig{
					Name: "control", PeriodUS: 2000, BudgetCycles: 5000,
					Activations: 20, Priority: 45,
				})
				stop = true
			})
		if err != nil {
			runErr = err
		}
	})
	if err != nil {
		return stats, err
	}
	m.Eng.MaxSteps = 400_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		return stats, err
	}
	return stats, runErr
}
