package exp

import "testing"

// TestHostperfBootDeterministic checks that the hostperf boot workload
// is virtually deterministic: wall time may vary run to run, but the
// simulated cycle count and the engine's scheduling-step count must
// not. A scaled-down instance keeps the test fast.
func TestHostperfBootDeterministic(t *testing.T) {
	c1, s1, err := RunHostperfBoot(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	c2, s2, err := RunHostperfBoot(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || s1 != s2 {
		t.Fatalf("runs diverge: (%d cycles, %d steps) vs (%d cycles, %d steps)", c1, s1, c2, s2)
	}
	if c1 == 0 || s1 == 0 {
		t.Fatalf("empty run: %d cycles, %d steps", c1, s1)
	}
}

// BenchmarkHostperfBoot times the full boot + getpid-loop workload at
// the sizes MeasureHostperf reports, for profiling and for quick
// before/after comparisons without the full -hostperf run.
func BenchmarkHostperfBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := RunHostperfBoot(4000, 96); err != nil {
			b.Fatal(err)
		}
	}
}
