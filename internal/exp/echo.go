package exp

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// RunBootEchoWorkload boots a single Cache Kernel and runs a
// memory-based-messaging echo between two threads of one user space: a
// client writes a message page mapped with a signal record naming the
// server, the server echoes through a second page signalling the
// client, for a fixed number of round trips (paper §2.2). It reports
// the final virtual clock and scheduling step count; trace (optional)
// observes every coroutine dispatch. Together with the mixed workload
// in RunDeterminismWorkload it pins the boot path and the
// signal-delivery fast path under the determinism goldens. The machine
// has one MPM, so shards above one clamp to the serial engine; the
// parameter keeps the workload signature uniform across the goldens.
func RunBootEchoWorkload(trace func(name string, at uint64), shards int) (finalClock, steps uint64, err error) {
	return RunBootEchoWorkloadCut(trace, shards, 0, nil)
}

// RunBootEchoWorkloadCut is the replay-fork form of the boot/echo
// workload (snap.CutFunc): it pauses at virtual time cut for the pause
// hook before running to completion.
func RunBootEchoWorkloadCut(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (finalClock, steps uint64, err error) {
	cfg := hw.DefaultConfig()
	cfg.Shards = shards
	m := hw.NewMachine(cfg)
	m.SetTraceDispatch(trace)

	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		return 0, 0, err
	}
	attrs := ck.KernelAttrs{
		Name:      "echo",
		LockQuota: [4]int{4, 8, 16, 256},
	}
	var bodyErr error
	body := func(e *hw.Exec) { bodyErr = runBootEchoBody(k, e) }
	if _, err := k.Boot(attrs, 40, body); err != nil {
		return 0, 0, err
	}
	m.SetMaxSteps(50_000_000)
	if err := runCut(m, cut, pause); err != nil {
		return 0, 0, err
	}
	if bodyErr != nil {
		return 0, 0, bodyErr
	}
	return m.Now(), m.Steps(), nil
}

// Echo channel layout: each direction is one physical frame mapped
// twice in the user space — a read-only message mapping carrying the
// signal record that names the receiver, and a writable message alias
// the sender stores through.
const (
	echoRounds = 16

	echoRecvA = 0x5000_0000 // client -> server, signal record
	echoSendA = 0x5010_0000 // client -> server, writable alias
	echoRecvB = 0x5020_0000 // server -> client, signal record
	echoSendB = 0x5030_0000 // server -> client, writable alias

	echoPFNA = 700
	echoPFNB = 701
)

func runBootEchoBody(k *ck.Kernel, e *hw.Exec) error {
	sid, err := k.LoadSpace(e, false)
	if err != nil {
		return fmt.Errorf("echo: user space: %w", err)
	}

	// Server: echo every request through the reply page.
	serverDone := false
	server := k.MPM.NewExec("echo-server", func(se *hw.Exec) {
		for i := 0; i < echoRounds; i++ {
			v, err := k.WaitSignal(se)
			if err != nil {
				return
			}
			se.Instr(10)
			se.Store32(echoSendB, v+1)
			k.SignalReturn(se)
		}
		serverDone = true
	})
	stid, err := k.LoadThread(e, sid, ck.ThreadState{Priority: 35, Exec: server}, false)
	if err != nil {
		return fmt.Errorf("echo: server thread: %w", err)
	}

	// Client: wait for the go signal (sent after all mappings are
	// loaded), then ping and wait for each echo.
	clientDone := false
	client := k.MPM.NewExec("echo-client", func(ce *hw.Exec) {
		if _, err := k.WaitSignal(ce); err != nil {
			return
		}
		k.SignalReturn(ce)
		for i := 0; i < echoRounds; i++ {
			ce.Store32(echoSendA, uint32(i))
			if _, err := k.WaitSignal(ce); err != nil {
				return
			}
			ce.Instr(4)
			k.SignalReturn(ce)
		}
		clientDone = true
	})
	ctid, err := k.LoadThread(e, sid, ck.ThreadState{Priority: 30, Exec: client}, false)
	if err != nil {
		return fmt.Errorf("echo: client thread: %w", err)
	}

	maps := []ck.MappingSpec{
		{VA: echoRecvA, PFN: echoPFNA, Message: true, SignalThread: stid},
		{VA: echoSendA, PFN: echoPFNA, Writable: true, Message: true},
		{VA: echoRecvB, PFN: echoPFNB, Message: true, SignalThread: ctid},
		{VA: echoSendB, PFN: echoPFNB, Writable: true, Message: true},
	}
	for _, spec := range maps {
		if err := k.LoadMapping(e, sid, spec); err != nil {
			return fmt.Errorf("echo: mapping va %#x: %w", spec.VA, err)
		}
	}

	// Everything is wired: release the client.
	if err := k.PostSignal(e, ctid, 1); err != nil {
		return fmt.Errorf("echo: go signal: %w", err)
	}

	for i := 0; i < 4000 && !(serverDone && clientDone); i++ {
		e.Charge(2000)
	}
	if !serverDone || !clientDone {
		return fmt.Errorf("echo: incomplete: server=%v client=%v", serverDone, clientDone)
	}
	return nil
}
