// Package exp is the evaluation harness: one function per table, figure
// and ablation of the paper, each returning a structured result whose
// String() renders the same rows the paper reports next to the measured
// values. cmd/ckbench prints them; the repository-root benchmarks wrap
// them with testing.B metrics. See DESIGN.md §3 for the experiment
// index.
package exp

import (
	"fmt"
	"math"
	"unsafe"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
)

// Table1 reproduces paper Table 1: Cache Kernel object sizes and cache
// geometry. Accounted sizes are the paper's (used for local-RAM
// budgeting); the Go struct sizes of this reproduction are reported
// alongside for honesty.
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one object class.
type Table1Row struct {
	Object        string
	PaperBytes    int
	GoStructBytes int
	CacheSize     int
}

// MeasureTable1 reads the live configuration.
func MeasureTable1() Table1 {
	cfg := ck.DefaultConfig()
	return Table1{Rows: []Table1Row{
		{"Kernel", ck.KernelObjBytes, int(unsafe.Sizeof(ck.KernelObj{})), cfg.KernelSlots},
		{"AddrSpace", ck.SpaceObjBytes, int(unsafe.Sizeof(ck.SpaceObj{})), cfg.SpaceSlots},
		{"Thread", ck.ThreadObjBytes, int(unsafe.Sizeof(ck.ThreadObj{})), cfg.ThreadSlots},
		{"MemMapEntry", ck.MappingObjBytes, 16, cfg.MappingSlots},
	}}
}

func (t Table1) String() string {
	s := fmt.Sprintf("%-12s %12s %12s %10s\n", "object", "paper bytes", "struct bytes", "cache size")
	for _, r := range t.Rows {
		s += fmt.Sprintf("%-12s %12d %12d %10d\n", r.Object, r.PaperBytes, r.GoStructBytes, r.CacheSize)
	}
	return s
}

// MeasureTable2 re-exports the Cache Kernel's calibrated measurement.
func MeasureTable2() (ck.Table2, error) { return ck.MeasureTable2(ck.Config{}) }

// MemBudget reproduces the Section 5.2 space arithmetic from the live
// configuration: descriptor memory against the 2 MB local RAM, and the
// mapping-descriptor overhead on mapped space.
type MemBudget struct {
	ThreadBytes int
	// ObjectPct is thread+space+kernel descriptors as a share of local
	// RAM (paper: "these descriptors constitute about 10 percent").
	ObjectPct      float64
	MappingBytes   int
	MappingPct     float64 // (paper: ~50 %)
	TotalDescBytes int
	LocalRAMBytes  int
	MapOverheadPct float64 // descriptor bytes per mapped byte (paper: 0.4 %)
	TablesPerSpace int     // page-table bytes for a reasonably clustered space (paper: ~5 KB)
}

// MeasureMemBudget computes the arithmetic.
func MeasureMemBudget() MemBudget {
	cfg := ck.DefaultConfig()
	hwCfg := hw.DefaultConfig()
	threadBytes := cfg.ThreadSlots * ck.ThreadObjBytes
	mappingBytes := cfg.MappingSlots * ck.MappingObjBytes
	total := threadBytes + mappingBytes +
		cfg.KernelSlots*ck.KernelObjBytes + cfg.SpaceSlots*ck.SpaceObjBytes
	objectBytes := threadBytes +
		cfg.KernelSlots*ck.KernelObjBytes + cfg.SpaceSlots*ck.SpaceObjBytes
	return MemBudget{
		ThreadBytes:    threadBytes,
		ObjectPct:      100 * float64(objectBytes) / float64(hwCfg.LocalRAMBytes),
		MappingBytes:   mappingBytes,
		MappingPct:     100 * float64(mappingBytes) / float64(hwCfg.LocalRAMBytes),
		TotalDescBytes: total,
		LocalRAMBytes:  hwCfg.LocalRAMBytes,
		// 16 bytes per 4096-byte page.
		MapOverheadPct: 100 * 16.0 / 4096.0,
		// Root (512) + two second-level tables (512 each) + fourteen
		// third-level tables (256 each) for a clustered space: about
		// 5 KB, as the paper argues.
		TablesPerSpace: 512 + 2*512 + 14*256,
	}
}

func (m MemBudget) String() string {
	return fmt.Sprintf(
		"thread descriptors: %d KB; object descriptors = %.1f%% of local RAM (paper ~10%%)\n"+
			"mapping descriptors: %d KB = %.1f%% of local RAM (paper ~50%%)\n"+
			"all descriptors: %d KB of %d KB local RAM\n"+
			"mapping overhead on mapped space: %.2f%% (paper 0.4%%)\n"+
			"page tables per clustered space: ~%d bytes (paper ~5 KB)\n",
		m.ThreadBytes/1024, m.ObjectPct, m.MappingBytes/1024, m.MappingPct,
		m.TotalDescBytes/1024, m.LocalRAMBytes/1024,
		m.MapOverheadPct, m.TablesPerSpace)
}

// ThrashPoint is one working-set size in the mapping-cache sweep.
type ThrashPoint struct {
	WorkingSetPages int
	CyclesPerTouch  float64
	Faults          uint64
	Writebacks      uint64
}

// ThrashResult is the S5.2b sweep: per-access overhead stays flat while
// the touched working set fits the mapping-descriptor cache and cliffs
// once it exceeds it — the paper's claim that programs with reasonable
// locality see minimal replacement interference.
type ThrashResult struct {
	MappingSlots int
	Points       []ThrashPoint
}

func (t ThrashResult) String() string {
	s := fmt.Sprintf("mapping slots: %d\n%-18s %16s %10s %10s\n",
		t.MappingSlots, "working set (pages)", "cycles/touch", "faults", "writebacks")
	for _, p := range t.Points {
		s += fmt.Sprintf("%-18d %16.1f %10d %10d\n",
			p.WorkingSetPages, p.CyclesPerTouch, p.Faults, p.Writebacks)
	}
	return s
}

// MeasureThrash sweeps touched-page working sets against a mapping cache
// of the given size (0 = a scaled-down 4096 so the sweep runs quickly;
// the paper's pool is 65536).
func MeasureThrash(mappingSlots int, workingSets []int, laps int) (ThrashResult, error) {
	if mappingSlots == 0 {
		mappingSlots = 4096
	}
	if laps == 0 {
		laps = 3
	}
	if workingSets == nil {
		workingSets = []int{
			mappingSlots / 4, mappingSlots / 2, mappingSlots * 3 / 4,
			mappingSlots * 15 / 16, mappingSlots * 9 / 8, mappingSlots * 3 / 2,
		}
	}
	res := ThrashResult{MappingSlots: mappingSlots}
	for _, ws := range workingSets {
		pt, err := thrashOne(mappingSlots, ws, laps)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func thrashOne(slots, pages, laps int) (ThrashPoint, error) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{MappingSlots: slots, PMapBuckets: slots / 4})
	if err != nil {
		return ThrashPoint{}, err
	}
	var pt ThrashPoint
	var runErr error
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		base := uint32(0x2000_0000)
		// Demand-map on fault with frames recycled modulo a small pool:
		// the experiment measures mapping-descriptor replacement, not
		// data, so many virtual pages may share physical frames.
		s.OnFault = func(fe *hw.Exec, th, space ck.ObjID, va uint32, write bool, kind hw.Fault) (bool, bool) {
			if va < base || va >= base+uint32(pages)*hw.PageSize {
				return false, false
			}
			err := k.LoadMappingAndResume(fe, space, ck.MappingSpec{
				VA:       va &^ (hw.PageSize - 1),
				PFN:      2048 + (va>>hw.PageShift)%1024,
				Writable: true, Cachable: true,
			})
			return true, err == nil
		}
		// Warm lap, then measured laps.
		for p := 0; p < pages; p++ {
			e.Touch(base+uint32(p)*hw.PageSize, false)
		}
		f0 := k.Stats.Faults
		w0 := k.Stats.MappingWritebacks
		t0 := e.Now()
		for lap := 0; lap < laps; lap++ {
			for p := 0; p < pages; p++ {
				e.Touch(base+uint32(p)*hw.PageSize, false)
			}
		}
		pt.WorkingSetPages = pages
		pt.CyclesPerTouch = float64(e.Now()-t0) / float64(laps*pages)
		pt.Faults = k.Stats.Faults - f0
		pt.Writebacks = k.Stats.MappingWritebacks - w0
	})
	if err != nil {
		return pt, err
	}
	m.Eng.MaxSteps = 2_000_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		return pt, err
	}
	return pt, runErr
}
