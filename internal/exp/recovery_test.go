package exp

import (
	"strings"
	"testing"
)

// TestRecoveryTraceGolden pins the crash-and-recover schedule: a
// scripted Cache Kernel crash at a fixed virtual time, guardian
// detection, SRM re-boot, kernel reload and workload completion must
// dispatch identically on every run. Any change to the crash, reload or
// revival paths that perturbs virtual time fails this golden.
func TestRecoveryTraceGolden(t *testing.T) {
	checkScheduleGolden(t, "recovery_trace.golden", RunRecoveryTrace)
}

// TestRecoveryWorkload checks the semantic outcome of the scripted
// crash: every emulated process finishes, the latency milestones are
// ordered, and the breakdown is attributed correctly.
func TestRecoveryWorkload(t *testing.T) {
	res, err := RunRecoveryWorkload(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hello from pid 2",
		"napper pid 3 rested",
		"crunch pid 4 done",
		"init: all children reaped",
	} {
		if !strings.Contains(res.Console, want) {
			t.Errorf("console missing %q:\n%s", want, res.Console)
		}
	}
	if res.DetectAt <= res.CrashAt {
		t.Errorf("detection at %d not after crash at %d", res.DetectAt, res.CrashAt)
	}
	if res.RebootAt < res.DetectAt || res.ReloadAt < res.RebootAt {
		t.Errorf("milestones out of order: detect %d reboot %d reload %d",
			res.DetectAt, res.RebootAt, res.ReloadAt)
	}
	if res.FirstResume <= res.RebootAt {
		t.Errorf("first resume %d not after reboot %d", res.FirstResume, res.RebootAt)
	}
	if res.KernelsReloaded != 1 {
		t.Errorf("kernels reloaded = %d, want 1", res.KernelsReloaded)
	}
	if res.CrashEpoch != 1 {
		t.Errorf("crash epoch = %d, want 1", res.CrashEpoch)
	}
	if res.ProcRestarts == 0 {
		t.Errorf("expected at least one process restart (crunch was on-CPU)")
	}
}
