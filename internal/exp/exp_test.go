package exp

import "testing"

func TestTable1Geometry(t *testing.T) {
	t1 := MeasureTable1()
	if len(t1.Rows) != 4 {
		t.Fatal("rows")
	}
	if t1.Rows[3].CacheSize != 65536 || t1.Rows[3].PaperBytes != 16 {
		t.Fatalf("MemMapEntry row: %+v", t1.Rows[3])
	}
	t.Logf("\n%s", t1)
}

func TestMemBudgetArithmetic(t *testing.T) {
	m := MeasureMemBudget()
	if m.ObjectPct < 5 || m.ObjectPct > 15 {
		t.Fatalf("object descriptor pct = %.1f, paper says ~10", m.ObjectPct)
	}
	if m.MappingPct < 40 || m.MappingPct > 60 {
		t.Fatalf("mapping pct = %.1f, paper says ~50", m.MappingPct)
	}
	if m.MapOverheadPct < 0.3 || m.MapOverheadPct > 0.5 {
		t.Fatalf("overhead = %.2f, paper says 0.4", m.MapOverheadPct)
	}
	t.Logf("\n%s", m)
}

func TestThrashCliffAtMappingCapacity(t *testing.T) {
	res, err := MeasureThrash(512, []int{128, 256, 448, 640, 1024}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	inCache := res.Points[0].CyclesPerTouch
	over := res.Points[len(res.Points)-1].CyclesPerTouch
	if res.Points[0].Faults != 0 {
		t.Fatalf("faults with working set inside the cache: %d", res.Points[0].Faults)
	}
	if over < inCache*10 {
		t.Fatalf("no thrash cliff: %.1f -> %.1f cycles/touch", inCache, over)
	}
}

func TestSignalAblationShape(t *testing.T) {
	a, err := MeasureSignalAblation()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", a)
	if a.TwoStageMicros <= a.RTLBMicros {
		t.Fatalf("two-stage (%.1f) should cost more than reverse-TLB (%.1f)",
			a.TwoStageMicros, a.RTLBMicros)
	}
}
