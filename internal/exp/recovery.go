package exp

import (
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/chaos"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
	"vpp/internal/unixemu"
)

// RecoveryResult is the virtual-time breakdown of a scripted Cache
// Kernel crash and recovery (the fault-tolerance claim of paper §3: all
// Cache Kernel state is regenerable from the application kernels, so a
// crash costs latency, not correctness).
type RecoveryResult struct {
	// CrashAt is the scripted crash instant (cycles of virtual time).
	CrashAt uint64
	// DetectAt/RebootAt/ReloadAt/FirstResume are the recovery
	// milestones reported by the SRM guardian.
	DetectAt    uint64
	RebootAt    uint64
	ReloadAt    uint64
	FirstResume uint64
	// KernelsReloaded counts launched kernels brought back via the
	// Unswap path; MainsRevived counts main threads whose execution
	// context died with the crash; ProcRestarts counts emulated UNIX
	// processes rerun from their program start.
	KernelsReloaded int
	MainsRevived    int
	ProcRestarts    uint64
	// CrashEpoch is the Cache Kernel epoch established by the crash.
	CrashEpoch uint64
	// Console is the UNIX console after the run: every process finished
	// correctly despite the crash.
	Console string
	// FinalClock/Steps fingerprint the run for the determinism golden.
	FinalClock uint64
	Steps      uint64
}

func us(cycles uint64) float64 { return float64(cycles) / hw.CyclesPerMicrosecond }

func (r RecoveryResult) String() string {
	s := fmt.Sprintf("crash injected at %.1f µs (epoch %d)\n", us(r.CrashAt), r.CrashEpoch)
	s += fmt.Sprintf("%-22s %12s %14s\n", "milestone", "at (µs)", "after crash")
	row := func(name string, at uint64) string {
		return fmt.Sprintf("%-22s %12.1f %+13.1fµs\n", name, us(at), us(at)-us(r.CrashAt))
	}
	s += row("detected", r.DetectAt)
	s += row("rebooted", r.RebootAt)
	s += row("kernels reloaded", r.ReloadAt)
	s += row("first app resume", r.FirstResume)
	s += fmt.Sprintf("reloaded %d kernel(s); revived %d main thread(s); restarted %d process(es)\n",
		r.KernelsReloaded, r.MainsRevived, r.ProcRestarts)
	s += fmt.Sprintf("final virtual clock %.1f ms\n", us(r.FinalClock)/1000)
	s += "--- UNIX console (post-recovery) ---\n" + r.Console
	return s
}

// RunRecoveryWorkload boots a one-MPM system — SRM plus a UNIX emulator
// timesharing an init with three children (a quick hello, a sleeper
// whose nap spans the crash, and a compute process that is running when
// the crash hits) — arms a chaos plan that crash-reboots the Cache
// Kernel at a fixed virtual time, and lets the SRM guardian detect the
// failure and recover. It verifies that every process still finishes
// (the sleeper resumes from its backing record, the killed compute
// process is rerun from its program start) and returns the recovery
// latency breakdown. Fully deterministic; the recovery golden hashes
// its dispatch schedule.
func RunRecoveryWorkload(trace func(name string, at uint64), shards int) (RecoveryResult, error) {
	return RunRecoveryWorkloadCut(trace, shards, 0, nil)
}

// RunRecoveryWorkloadCut is the replay-fork form of the recovery
// workload: it pauses at virtual time cut for the pause hook before
// running to completion.
func RunRecoveryWorkloadCut(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (RecoveryResult, error) {
	var res RecoveryResult
	res.CrashAt = hw.CyclesFromMicros(18_000)
	horizon := hw.CyclesFromMicros(120_000)

	cfg := hw.DefaultConfig()
	cfg.MPMs = 1
	cfg.Shards = shards
	m := hw.NewMachine(cfg)
	m.SetTraceDispatch(trace)
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		return res, err
	}

	inj := chaos.New(chaos.Plan{Seed: 0x52454356, Faults: []chaos.Fault{
		{Kind: chaos.CrashKernel, At: res.CrashAt, MPM: 0},
	}})
	inj.Arm(m, k)

	var (
		u        *unixemu.Unix
		initPID  int
		unixDone bool
		bodyErr  error
		reports  []*srm.RecoveryReport
	)
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, lerr := s.Launch(e, "unix", srm.LaunchOpts{Groups: 16, MainPrio: 31, MaxPrio: 34},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				// A crash can kill this thread while it waits below; the
				// revived context reruns the closure, so setup happens
				// only on the first pass.
				if u == nil {
					u = unixemu.New(ak, unixemu.DefaultConfig())
					if err := u.StartScheduler(me); err != nil {
						bodyErr = err
						return
					}
					u.RegisterProgram("hello", func(env *unixemu.ProcEnv) {
						env.WriteString(1, fmt.Sprintf("hello from pid %d\n", env.Getpid()))
					})
					u.RegisterProgram("napper", func(env *unixemu.ProcEnv) {
						env.Sleep(40)
						env.WriteString(1, fmt.Sprintf("napper pid %d rested\n", env.Getpid()))
					})
					u.RegisterProgram("crunch", func(env *unixemu.ProcEnv) {
						env.Sbrk(4 * hw.PageSize)
						for lap := uint32(0); lap < 80; lap++ {
							env.Store32(env.HeapBase()+lap%4*hw.PageSize, lap)
							env.Exec().Charge(hw.CyclesFromMicros(500))
						}
						env.WriteString(1, fmt.Sprintf("crunch pid %d done\n", env.Getpid()))
					})
					u.RegisterProgram("init", func(env *unixemu.ProcEnv) {
						env.Spawn("hello")
						env.Spawn("napper")
						env.Spawn("crunch")
						for i := 0; i < 3; i++ {
							env.Wait()
						}
						env.WriteString(1, "init: all children reaped\n")
					})
					p, perr := u.Spawn(me, "init", nil)
					if perr != nil {
						bodyErr = perr
						return
					}
					initPID = p.PID()
				}
				for q := u.Proc(initPID); q != nil && !q.Exited(); q = u.Proc(initPID) {
					me.Charge(hw.CyclesFromMicros(2000))
				}
				u.StopScheduler()
				unixDone = true
			})
		if lerr != nil {
			bodyErr = lerr
			return
		}
		s.Guard(srm.GuardConfig{
			Interval: hw.CyclesFromMicros(250),
			Until:    horizon,
			OnRecovered: func(r *srm.RecoveryReport) {
				reports = append(reports, r)
			},
		})
		// Return: the boot thread exits after setup, so the crash finds
		// nothing of the SRM to strand. The guardian — a device
		// execution, outside the Cache Kernel — is what survives.
	})
	if err != nil {
		return res, err
	}
	m.SetMaxSteps(2_000_000_000)
	if err := runCut(m, cut, pause); err != nil {
		return res, err
	}
	if bodyErr != nil {
		return res, bodyErr
	}
	if len(reports) != 1 {
		return res, fmt.Errorf("exp: expected exactly one recovery, got %d", len(reports))
	}
	r := reports[0]
	if r.Err != nil {
		return res, fmt.Errorf("exp: recovery failed: %w", r.Err)
	}
	if !unixDone {
		return res, fmt.Errorf("exp: unix workload did not complete after recovery; console:\n%s", u.Console)
	}
	res.DetectAt = r.DetectAt
	res.RebootAt = r.RebootAt
	res.ReloadAt = r.ReloadAt
	res.FirstResume = r.FirstResume
	res.KernelsReloaded = r.Kernels
	res.MainsRevived = r.Revived
	res.CrashEpoch = k.Epoch
	res.ProcRestarts = u.Restarts
	res.Console = string(u.Console)
	res.FinalClock = m.Now()
	res.Steps = m.Steps()
	return res, nil
}

// RunRecoveryTrace adapts RunRecoveryWorkload to the schedule-golden
// harness.
func RunRecoveryTrace(trace func(name string, at uint64), shards int) (uint64, uint64, error) {
	res, err := RunRecoveryWorkload(trace, shards)
	return res.FinalClock, res.Steps, err
}

// RunRecoveryTraceCut adapts RunRecoveryWorkloadCut to snap.CutFunc.
func RunRecoveryTraceCut(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (uint64, uint64, error) {
	res, err := RunRecoveryWorkloadCut(trace, shards, cut, pause)
	return res.FinalClock, res.Steps, err
}
