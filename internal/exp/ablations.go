package exp

import (
	"fmt"
	"math"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/dbk"
	"vpp/internal/hw"
	"vpp/internal/sim"
	"vpp/internal/simk"
	"vpp/internal/srm"
)

// SignalAblation compares reverse-TLB signal delivery with the two-stage
// dependency-record lookup (ablation A1, paper §4.1).
type SignalAblation struct {
	RTLBMicros     float64
	TwoStageMicros float64
	FastDeliveries uint64
}

func (a SignalAblation) String() string {
	return fmt.Sprintf("signal delivery: reverse-TLB %.1f µs, two-stage %.1f µs (%.0f%% slower)\n",
		a.RTLBMicros, a.TwoStageMicros, 100*(a.TwoStageMicros/a.RTLBMicros-1))
}

// MeasureSignalAblation runs the cross-processor signal benchmark twice.
func MeasureSignalAblation() (SignalAblation, error) {
	var out SignalAblation
	with, err := signalLatency(ck.Config{})
	if err != nil {
		return out, err
	}
	without, err := signalLatency(ck.Config{RTLBEntries: -1})
	if err != nil {
		return out, err
	}
	out.RTLBMicros = with
	out.TwoStageMicros = without
	return out, nil
}

// signalLatency measures steady-state delivery time for one receiver.
func signalLatency(cfg ck.Config) (float64, error) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], cfg)
	if err != nil {
		return 0, err
	}
	var total float64
	var n int
	var runErr error
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		const rounds = 8
		pfn, _ := s.Frames.Alloc()
		var sendAt uint64
		recvDone := 0
		rth := s.NewThread("recv", s.SpaceID, 35, func(re *hw.Exec) {
			for i := 0; i < rounds; i++ {
				if _, err := k.WaitSignal(re); err != nil {
					return
				}
				if i >= 2 { // skip warmup
					total += hw.MicrosFromCycles(re.Now() - sendAt)
					n++
				}
				k.SignalReturn(re)
				recvDone++
			}
		})
		if err := rth.Load(e, false); err != nil {
			runErr = err
			return
		}
		if err := k.LoadMapping(e, s.SpaceID, ck.MappingSpec{
			VA: 0x5000_0000, PFN: pfn, Message: true, SignalThread: rth.TID,
		}); err != nil {
			runErr = err
			return
		}
		if err := k.LoadMapping(e, s.SpaceID, ck.MappingSpec{
			VA: 0x5100_0000, PFN: pfn, Writable: true, Message: true,
		}); err != nil {
			runErr = err
			return
		}
		for i := 0; i < rounds; i++ {
			e.Charge(hw.CyclesFromMicros(400))
			sendAt = e.Now()
			e.Store32(0x5100_0000, uint32(i))
			for recvDone <= i {
				e.Charge(500)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	m.Eng.MaxSteps = 100_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		return 0, err
	}
	if runErr != nil {
		return 0, runErr
	}
	return total / float64(n), nil
}

// MP3DComparison is the S5.2c locality experiment.
type MP3DComparison struct {
	Locality  simk.MP3DResult
	Scattered simk.MP3DResult
}

// Slowdown reports the particle-phase degradation factor.
func (c MP3DComparison) Slowdown() float64 {
	return c.Scattered.MoveMicrosPerStep / c.Locality.MoveMicrosPerStep
}

func (c MP3DComparison) String() string {
	return fmt.Sprintf(
		"mp3d locality:  %8.0f µs/step particle phase, TLB miss %.4f\n"+
			"mp3d scattered: %8.0f µs/step particle phase, TLB miss %.4f\n"+
			"degradation: %.0f%% (paper: up to 25%%)\n",
		c.Locality.MoveMicrosPerStep, c.Locality.TLBMissRate,
		c.Scattered.MoveMicrosPerStep, c.Scattered.TLBMissRate,
		100*(c.Slowdown()-1))
}

// MeasureMP3D runs the wind tunnel with and without particle locality.
func MeasureMP3D(cfg simk.MP3DConfig) (MP3DComparison, error) {
	if cfg.CellsX == 0 {
		cfg = simk.MP3DConfig{
			CellsX: 64, CellsY: 16, ParticlesPerCell: 16,
			Workers: 4, Steps: 3, Seed: 3, ComputePerParticle: 24,
		}
	}
	var out MP3DComparison
	cfg.Locality = true
	r1, err := runMP3DOnce(cfg)
	if err != nil {
		return out, err
	}
	cfg.Locality = false
	r2, err := runMP3DOnce(cfg)
	if err != nil {
		return out, err
	}
	out.Locality, out.Scattered = r1, r2
	return out, nil
}

func runMP3DOnce(cfg simk.MP3DConfig) (simk.MP3DResult, error) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		return simk.MP3DResult{}, err
	}
	var res simk.MP3DResult
	var runErr error
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "simk", srm.LaunchOpts{Groups: 24, MainPrio: 28},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				mp, err := simk.NewMP3D(me, ak, cfg)
				if err != nil {
					runErr = err
					return
				}
				res, runErr = mp.Run(me)
			})
		if err != nil {
			runErr = err
		}
	})
	if err != nil {
		return res, err
	}
	m.Eng.MaxSteps = 1_000_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		return res, err
	}
	return res, runErr
}

// DBComparison is ablation A7: fixed LRU vs application-controlled
// replacement on the intro's mixed workload.
type DBComparison struct {
	LRUMicros, QAMicros float64
	LRUReads, QAReads   uint64
}

func (c DBComparison) String() string {
	return fmt.Sprintf(
		"db LRU:         %8.0f µs, %4d disk reads\n"+
			"db query-aware: %8.0f µs, %4d disk reads (%.1fx fewer reads)\n",
		c.LRUMicros, c.LRUReads, c.QAMicros, c.QAReads,
		float64(c.LRUReads)/float64(c.QAReads))
}

// MeasureDB runs the mixed workload under both policies.
func MeasureDB() (DBComparison, error) {
	var out DBComparison
	lt, lr, err := dbWorkload(dbk.PolicyLRU)
	if err != nil {
		return out, err
	}
	qt, qr, err := dbWorkload(dbk.PolicyQueryAware)
	if err != nil {
		return out, err
	}
	out.LRUMicros, out.LRUReads = lt, lr
	out.QAMicros, out.QAReads = qt, qr
	return out, nil
}

func dbWorkload(policy dbk.Policy) (float64, uint64, error) {
	const tablePages = 64
	const poolFrames = 16
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		return 0, 0, err
	}
	var micros float64
	var reads uint64
	var runErr error
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "db", srm.LaunchOpts{Groups: 8, MainPrio: 26},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				store := dbk.NewTableStore(tablePages, 2*1000*hw.CyclesPerMicrosecond)
				db, err := dbk.New(me, ak, store, poolFrames, policy)
				if err != nil {
					runErr = err
					return
				}
				r := sim.NewRand(11)
				hot := make([]uint32, 8)
				for i := range hot {
					hot[i] = uint32(i) * (tablePages / 8)
				}
				t0 := me.Now()
				for round := 0; round < 4; round++ {
					for i := 0; i < 64; i++ {
						if _, err := db.Lookup(me, hot[r.Intn(len(hot))]); err != nil {
							runErr = err
							return
						}
					}
					if _, err := db.SeqScan(me); err != nil {
						runErr = err
						return
					}
				}
				micros = hw.MicrosFromCycles(me.Now() - t0)
				reads = store.Reads
			})
		if err != nil {
			runErr = err
		}
	})
	if err != nil {
		return 0, 0, err
	}
	m.Eng.MaxSteps = 400_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		return 0, 0, err
	}
	return micros, reads, runErr
}
