package exp

import "testing"

// TestOrchestrationTraceGolden pins the live-migration schedule: the
// canned fleet, the rolling upgrade's serial drain and every blackout
// window must dispatch identically on every run, serial and sharded.
// Any change to the quiesce/expel/adopt path or the control plane's
// messaging that perturbs virtual time fails this golden.
func TestOrchestrationTraceGolden(t *testing.T) {
	checkScheduleGolden(t, "orchestration_trace.golden", RunOrchestrationTrace)
}

// TestOrchestrationWorkload checks the semantic outcome: a clean run
// migrates every long-running pod exactly once, with a positive
// blackout and an ordered distribution, and nothing restarts.
func TestOrchestrationWorkload(t *testing.T) {
	res, err := RunOrchestrationWorkload(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated == 0 {
		t.Fatal("upgrade migrated nothing")
	}
	if res.Migrated+res.Skipped != res.Pods {
		t.Errorf("migrated %d + skipped %d != %d pods", res.Migrated, res.Skipped, res.Pods)
	}
	if res.BlackoutMin == 0 || res.BlackoutMin > res.BlackoutMax {
		t.Errorf("degenerate blackout range [%d, %d]", res.BlackoutMin, res.BlackoutMax)
	}
	if res.BlackoutMean < float64(res.BlackoutMin) || res.BlackoutMean > float64(res.BlackoutMax) {
		t.Errorf("blackout mean %.1f outside [%d, %d]", res.BlackoutMean, res.BlackoutMin, res.BlackoutMax)
	}
	if res.Makespan == 0 {
		t.Error("zero upgrade makespan")
	}
	if res.Restarts != 0 {
		t.Errorf("%d restarts without chaos", res.Restarts)
	}
}
