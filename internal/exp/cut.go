package exp

import (
	"math"

	"vpp/internal/hw"
)

// runCut drives a built machine to its horizon, pausing once at
// virtual time cut when a pause hook is supplied. The pause point is
// the replay fork tier's snapshot instant (internal/snap): the hook
// typically captures or verifies the machine's state digest and swaps
// trace sinks. Engine runs are re-enterable, so a paused run completes
// byte-identically to an unpaused one.
func runCut(m *hw.Machine, cut uint64, pause func(*hw.Machine)) error {
	if pause != nil {
		if err := m.Run(cut); err != nil {
			return err
		}
		pause(m)
	}
	return m.Run(math.MaxUint64)
}
