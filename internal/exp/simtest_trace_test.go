package exp

import (
	"testing"

	"vpp/internal/simtest"
)

// TestSimtestTraceGolden pins a third schedule shape: a generated
// simulation scenario (seed 17 — two MPMs, a mixed op stream and an
// injected signal fault) run through the property-testing harness. The
// other goldens exercise hand-written workloads; this one covers the
// generator-driven path, so a nondeterminism bug confined to the
// scenario generator, the chaos injector or the cross-module harness
// fails here even when the hand-written traces still match.
func TestSimtestTraceGolden(t *testing.T) {
	checkScheduleGolden(t, "simtest_trace.golden", simtest.SeedWorkload(17))
}
