package exp

import (
	"testing"

	"vpp/internal/ck"
	"vpp/internal/simtest"
	"vpp/internal/snap"
)

// TestForkEquivalenceMatrix is the replay-tier fork oracle over every
// golden workload: run from boot recording the full dispatch trace,
// then "fork" — rebuild, re-run silently to a mid-trace cut, verify the
// machine state digest matches the parent's at the cut — and check the
// forked continuation's trace is byte-identical to the golden run's
// tail. Serial and four-shard, for each of the five golden families.
func TestForkEquivalenceMatrix(t *testing.T) {
	cases := []struct {
		name string
		w    snap.CutFunc
	}{
		{"determinism", RunDeterminismWorkloadCut},
		{"boot_echo", RunBootEchoWorkloadCut},
		{"recovery", RunRecoveryTraceCut},
		{"orchestration", RunOrchestrationTraceCut},
		{"simtest_seed11", simtest.SeedWorkloadCut(11)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// One plain run records the dispatch times; the cut goes
			// strictly between two mid-trace dispatches so both halves
			// are non-empty.
			var ats []uint64
			if _, _, err := tc.w(func(name string, at uint64) { ats = append(ats, at) }, 1, 0, nil); err != nil {
				t.Fatalf("plain run: %v", err)
			}
			cut := midCut(ats)
			if cut == 0 {
				t.Fatalf("no mid-trace cut in %d dispatches", len(ats))
			}
			for _, shards := range []int{1, 4} {
				r := snap.Replay{Workload: tc.w, Shards: shards, Cut: cut}
				full, err := r.RunFull()
				if err != nil {
					t.Fatalf("shards=%d: full run: %v", shards, err)
				}
				if full.CutIndex == 0 || full.CutIndex == len(full.Trace) {
					t.Fatalf("shards=%d: cut %d not mid-trace (index %d of %d dispatches)",
						shards, r.Cut, full.CutIndex, len(full.Trace))
				}
				tail, err := r.RunFork(full.Digest)
				if err != nil {
					t.Fatalf("shards=%d: forked run: %v", shards, err)
				}
				if err := snap.TailEqual(full.Trace[full.CutIndex:], tail); err != nil {
					t.Fatalf("shards=%d: forked tail differs from golden tail: %v", shards, err)
				}
			}
		})
	}
}

// midCut picks a virtual time strictly between two dispatches near the
// middle of a trace, or 0 if every dispatch shares one instant.
func midCut(ats []uint64) uint64 {
	for off := 0; off < len(ats); off++ {
		for _, i := range []int{len(ats)/2 - off, len(ats)/2 + off} {
			if i >= 0 && i+1 < len(ats) && ats[i]+1 < ats[i+1] {
				return (ats[i] + ats[i+1]) / 2
			}
		}
	}
	return 0
}

// TestMeasureFork smoke-tests the snapshot/fork benchmark and asserts
// the structural invariants that must hold regardless of host speed:
// the fork dirtied exactly the shared frames it wrote, and a fork costs
// less than the boot it replaces. The headline fork-to-boot ratio is
// recorded by `ckbench -exp fork` in BENCH_fork.json.
func TestMeasureFork(t *testing.T) {
	if testing.Short() {
		t.Skip("fork benchmark boots a 16-MPM machine")
	}
	r, err := MeasureFork()
	if err != nil {
		t.Fatal(err)
	}
	if r.CowPages == 0 || r.CowCopiedByDirty != r.CowPages {
		t.Fatalf("dirtying every image frame copied %d of %d pages", r.CowCopiedByDirty, r.CowPages)
	}
	if r.SnapshotBytes == 0 {
		t.Fatal("empty snapshot encoding")
	}
	if r.ForkToBootRatio >= 1 {
		t.Fatalf("fork (%.2f ms) not cheaper than boot (%.2f ms)", r.ForkHostMs, r.BootHostMs)
	}
}

// TestPooledForkEquivalence: a fork that adopts deliberately dirtied,
// recycled kernel state from an InstancePool must be byte-identical to
// an unpooled fork of the same image. The recycled pmaps carry a full
// restored workload's mapping state when they are reclaimed, so any
// reset shortfall shows up in the re-snapshot digest.
func TestPooledForkEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a multi-MPM machine")
	}
	m, ks, err := bootForkBench(4, 2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	im, err := snap.Take(m, ks)
	if err != nil {
		t.Fatal(err)
	}

	fm1, fks1, err := im.Fork(1, nil)
	if err != nil {
		t.Fatalf("unpooled fork: %v", err)
	}
	im1, err := snap.Take(fm1, fks1)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := im1.Digest()
	if err != nil {
		t.Fatal(err)
	}

	// Recycle the unpooled fork's kernels — their pmaps hold the whole
	// restored mapping workload — and fork again through the pool.
	pool := ck.NewInstancePool()
	for _, k := range fks1 {
		pool.Recycle(k)
	}
	im.Pool = pool
	fm2, fks2, err := im.Fork(1, nil)
	if err != nil {
		t.Fatalf("pooled fork: %v", err)
	}
	im2, err := snap.Take(fm2, fks2)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := im2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("pooled fork digest %016x != unpooled %016x", d2, d1)
	}
	ps := pool.Stats()
	if ps.Recycled != len(fks1) || ps.Adopted != len(fks2) {
		t.Fatalf("pool did not serve the fork: stats %+v", ps)
	}
}
