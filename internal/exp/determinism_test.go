package exp

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestScheduleTraceGolden is the determinism regression for the engine
// and MMU fast paths: it boots two Cache Kernels on a two-MPM machine,
// runs a mixed workload (demand faults, traps, signals, alarms,
// short-lived threads), and asserts that the FNV-1a hash of the
// (coroutine-name, dispatch-time) schedule trace, the dispatch count,
// the scheduling-step count and the final virtual clock all match the
// committed golden file — which was generated on the unoptimized
// linear-scan scheduler. Any host-side data-structure change that
// perturbs virtual time or scheduling order fails this test.
func TestScheduleTraceGolden(t *testing.T) {
	first, err := runDeterminismWorkload()
	if err != nil {
		t.Fatal(err)
	}
	second, err := runDeterminismWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("back-to-back runs diverge:\n%s\nvs\n%s", first, second)
	}

	golden := filepath.Join("testdata", "schedule_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if string(want) != first {
		t.Fatalf("schedule trace diverged from golden:\ngot:\n%s\nwant:\n%s", first, string(want))
	}
}

// runDeterminismWorkload executes the mixed two-MPM workload and
// renders its schedule fingerprint.
func runDeterminismWorkload() (string, error) {
	h := fnv.New64a()
	var dispatches uint64
	trace := func(name string, at uint64) {
		dispatches++
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(at >> (8 * i))
		}
		h.Write([]byte(name))
		h.Write(buf[:])
	}
	cycles, steps, err := RunDeterminismWorkload(trace)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("fnv64a %016x\ndispatches %d\nsteps %d\nfinal_clock %d\n",
		h.Sum64(), dispatches, steps, cycles), nil
}
