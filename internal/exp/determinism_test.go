package exp

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestScheduleTraceGolden is the determinism regression for the engine
// and MMU fast paths: it boots two Cache Kernels on a two-MPM machine,
// runs a mixed workload (demand faults, traps, signals, alarms,
// short-lived threads), and asserts that the FNV-1a hash of the
// (coroutine-name, dispatch-time) schedule trace, the dispatch count,
// the scheduling-step count and the final virtual clock all match the
// committed golden file — which was generated on the unoptimized
// linear-scan scheduler. Any host-side data-structure change that
// perturbs virtual time or scheduling order fails this test.
func TestScheduleTraceGolden(t *testing.T) {
	checkScheduleGolden(t, "schedule_trace.golden", RunDeterminismWorkload)
}

// TestBootEchoTraceGolden pins a second, differently shaped schedule:
// a single-MPM boot followed by a two-thread memory-based-messaging
// echo. The mixed workload stresses faults and eviction; this one
// stresses the boot sequence and the signal-delivery fast path
// (WaitSignal queue drain, reverse-TLB delivery, SignalReturn), so a
// regression confined to either path fails at least one golden.
func TestBootEchoTraceGolden(t *testing.T) {
	checkScheduleGolden(t, "boot_echo_trace.golden", RunBootEchoWorkload)
}

// shardedWorkload is the shape every golden workload exports: it runs
// the scenario with the requested shard count (1 = serial engine) and
// reports the final clock and scheduling step count.
type shardedWorkload func(trace func(string, uint64), shards int) (uint64, uint64, error)

// checkScheduleGolden runs the workload serially twice and sharded
// once, asserts all three runs are byte-identical, and compares their
// fingerprint against the golden file. One golden therefore pins both
// determinism (same inputs, same schedule) and shard invariance (the
// parallel engine replays the serial schedule exactly).
func checkScheduleGolden(t *testing.T, name string, workload shardedWorkload) {
	t.Helper()
	first, err := scheduleFingerprint(workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := scheduleFingerprint(workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("back-to-back runs diverge:\n%s\nvs\n%s", first, second)
	}
	sharded, err := scheduleFingerprint(workload, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sharded != first {
		t.Fatalf("sharded run diverges from serial:\nserial:\n%s\nsharded:\n%s", first, sharded)
	}

	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if string(want) != first {
		t.Fatalf("schedule trace diverged from golden:\ngot:\n%s\nwant:\n%s", first, string(want))
	}
}

// scheduleFingerprint executes a workload and renders its schedule
// fingerprint: the FNV-1a hash over every (coroutine-name,
// dispatch-time) pair plus the dispatch, step and final-clock counts.
func scheduleFingerprint(workload shardedWorkload, shards int) (string, error) {
	h := fnv.New64a()
	var dispatches uint64
	trace := func(name string, at uint64) {
		dispatches++
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(at >> (8 * i))
		}
		h.Write([]byte(name))
		h.Write(buf[:])
	}
	cycles, steps, err := workload(trace, shards)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("fnv64a %016x\ndispatches %d\nsteps %d\nfinal_clock %d\n",
		h.Sum64(), dispatches, steps, cycles), nil
}

// TestShardInvarianceAcrossGOMAXPROCS re-runs the mixed workload under
// deliberately skewed host parallelism: Shards=1 vs Shards=4, each with
// GOMAXPROCS forced to 1 and then 8. Virtual time must be fully
// insulated from the host scheduler — every combination must produce
// the same fingerprint. This is the test that catches any accidental
// dependence of the epoch barrier or the inbox merge on goroutine
// wall-clock interleaving.
func TestShardInvarianceAcrossGOMAXPROCS(t *testing.T) {
	var want string
	for _, procs := range []int{1, 8} {
		for _, shards := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			got, err := scheduleFingerprint(RunDeterminismWorkload, shards)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d shards=%d: %v", procs, shards, err)
			}
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("GOMAXPROCS=%d shards=%d diverges:\n%s\nwant:\n%s", procs, shards, got, want)
			}
		}
	}
}
