package exp

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestScheduleTraceGolden is the determinism regression for the engine
// and MMU fast paths: it boots two Cache Kernels on a two-MPM machine,
// runs a mixed workload (demand faults, traps, signals, alarms,
// short-lived threads), and asserts that the FNV-1a hash of the
// (coroutine-name, dispatch-time) schedule trace, the dispatch count,
// the scheduling-step count and the final virtual clock all match the
// committed golden file — which was generated on the unoptimized
// linear-scan scheduler. Any host-side data-structure change that
// perturbs virtual time or scheduling order fails this test.
func TestScheduleTraceGolden(t *testing.T) {
	checkScheduleGolden(t, "schedule_trace.golden", RunDeterminismWorkload)
}

// TestBootEchoTraceGolden pins a second, differently shaped schedule:
// a single-MPM boot followed by a two-thread memory-based-messaging
// echo. The mixed workload stresses faults and eviction; this one
// stresses the boot sequence and the signal-delivery fast path
// (WaitSignal queue drain, reverse-TLB delivery, SignalReturn), so a
// regression confined to either path fails at least one golden.
func TestBootEchoTraceGolden(t *testing.T) {
	checkScheduleGolden(t, "boot_echo_trace.golden", RunBootEchoWorkload)
}

// checkScheduleGolden runs the workload twice, asserts the runs are
// identical, and compares their fingerprint against the golden file.
func checkScheduleGolden(t *testing.T, name string, workload func(func(string, uint64)) (uint64, uint64, error)) {
	t.Helper()
	first, err := scheduleFingerprint(workload)
	if err != nil {
		t.Fatal(err)
	}
	second, err := scheduleFingerprint(workload)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("back-to-back runs diverge:\n%s\nvs\n%s", first, second)
	}

	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if string(want) != first {
		t.Fatalf("schedule trace diverged from golden:\ngot:\n%s\nwant:\n%s", first, string(want))
	}
}

// scheduleFingerprint executes a workload and renders its schedule
// fingerprint: the FNV-1a hash over every (coroutine-name,
// dispatch-time) pair plus the dispatch, step and final-clock counts.
func scheduleFingerprint(workload func(func(string, uint64)) (uint64, uint64, error)) (string, error) {
	h := fnv.New64a()
	var dispatches uint64
	trace := func(name string, at uint64) {
		dispatches++
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(at >> (8 * i))
		}
		h.Write([]byte(name))
		h.Write(buf[:])
	}
	cycles, steps, err := workload(trace)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("fnv64a %016x\ndispatches %d\nsteps %d\nfinal_clock %d\n",
		h.Sum64(), dispatches, steps, cycles), nil
}
