package exp

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// RunDeterminismWorkload boots one Cache Kernel per MPM of a two-MPM
// machine and runs a mixed workload on each: demand-paged touches,
// getpid traps, memory-based signal delivery, an alarm, and short-lived
// worker threads. It reports the final virtual clock and scheduling
// step count; trace (optional) observes every coroutine dispatch. The
// run is fully deterministic — the determinism regression test hashes
// its schedule trace against a golden generated before the engine
// optimization, and asserts the sharded engine (shards > 1 spreads the
// two MPMs over per-shard goroutines) reproduces it byte-identically.
func RunDeterminismWorkload(trace func(name string, at uint64), shards int) (finalClock, steps uint64, err error) {
	return RunDeterminismWorkloadCut(trace, shards, 0, nil)
}

// RunDeterminismWorkloadCut is the replay-fork form of the determinism
// workload (snap.CutFunc): it pauses at virtual time cut for the pause
// hook before running to completion.
func RunDeterminismWorkloadCut(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (finalClock, steps uint64, err error) {
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	cfg.Shards = shards
	m := hw.NewMachine(cfg)
	m.SetTraceDispatch(trace)

	errs := make([]error, cfg.MPMs)
	for i, mpm := range m.MPMs {
		if err := bootDeterminismKernel(i, mpm, &errs[i]); err != nil {
			return 0, 0, err
		}
	}
	m.SetMaxSteps(50_000_000)
	if err := runCut(m, cut, pause); err != nil {
		return 0, 0, err
	}
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	return m.Now(), m.Steps(), nil
}

func bootDeterminismKernel(idx int, mpm *hw.MPM, bodyErr *error) error {
	k, err := ck.New(mpm, ck.Config{})
	if err != nil {
		return err
	}
	const sysGetpid = 20
	attrs := ck.KernelAttrs{
		Name: fmt.Sprintf("det%d", idx),
		Trap: func(e *hw.Exec, th ck.ObjID, no uint32, args []uint32) (uint32, uint32) {
			if no == sysGetpid {
				e.Instr(6)
				return uint32(100 + idx), 0
			}
			return ^uint32(0), 0
		},
		LockQuota: [4]int{4, 8, 16, 256},
	}
	winBase := uint32(0x2000_0000 + uint32(idx)<<24)
	const winPages = 96
	attrs.Fault = func(fe *hw.Exec, th, space ck.ObjID, va uint32, write bool, kind hw.Fault) bool {
		if va < winBase || va >= winBase+winPages*hw.PageSize {
			return false
		}
		err := k.LoadMappingAndResume(fe, space, ck.MappingSpec{
			VA:       va &^ (hw.PageSize - 1),
			PFN:      1024 + (va>>hw.PageShift)%512,
			Writable: true, Cachable: true,
		})
		return err == nil
	}

	var info ck.BootInfo
	body := func(e *hw.Exec) { *bodyErr = runDeterminismBody(k, e, idx, winBase, sysGetpid, info.Space) }
	info, err = k.Boot(attrs, 40, body)
	return err
}

func runDeterminismBody(k *ck.Kernel, e *hw.Exec, idx int, winBase uint32, sysGetpid uint32, bootSid ck.ObjID) error {
	userSid, err := k.LoadSpace(e, false)
	if err != nil {
		return fmt.Errorf("mpm%d: user space: %w", idx, err)
	}

	// Receiver: two message-write signals plus one alarm signal.
	recvDone := false
	recv := k.MPM.NewExec(fmt.Sprintf("recv%d", idx), func(re *hw.Exec) {
		for i := 0; i < 3; i++ {
			if _, err := k.WaitSignal(re); err != nil {
				return
			}
			re.Instr(20)
			k.SignalReturn(re)
		}
		recvDone = true
	})
	rtid, err := k.LoadThread(e, userSid, ck.ThreadState{Priority: 35, Exec: recv}, false)
	if err != nil {
		return fmt.Errorf("mpm%d: recv thread: %w", idx, err)
	}

	// Toucher: demand-faults a page window twice (cold then warm) with
	// a few traps mixed in.
	touchDone := false
	toucher := k.MPM.NewExec(fmt.Sprintf("touch%d", idx), func(te *hw.Exec) {
		for lap := 0; lap < 2; lap++ {
			for p := uint32(0); p < 48; p++ {
				te.Touch(winBase+p*hw.PageSize, lap == 1)
				if p%16 == 7 {
					te.Trap(sysGetpid)
				}
			}
		}
		touchDone = true
	})
	if _, err := k.LoadThread(e, userSid, ck.ThreadState{Priority: 30, Exec: toucher}, false); err != nil {
		return fmt.Errorf("mpm%d: toucher: %w", idx, err)
	}

	// Short-lived workers: fault a couple of pages, trap, exit.
	for w := 0; w < 6; w++ {
		base := winBase + uint32(48+w*4)*hw.PageSize
		worker := k.MPM.NewExec(fmt.Sprintf("worker%d.%d", idx, w), func(we *hw.Exec) {
			we.Touch(base, true)
			we.Touch(base+hw.PageSize, false)
			we.Trap(sysGetpid)
		})
		if _, err := k.LoadThread(e, userSid, ck.ThreadState{Priority: 28, Exec: worker}, false); err != nil {
			return fmt.Errorf("mpm%d: worker: %w", idx, err)
		}
	}

	// Message channel: receiver side signal mapping plus sender window
	// in the boot space; a shared low frame that is actually written.
	sharedPFN := uint32(600 + idx)
	if err := k.LoadMapping(e, userSid, ck.MappingSpec{VA: 0x5000_0000, PFN: sharedPFN, Message: true, SignalThread: rtid}); err != nil {
		return fmt.Errorf("mpm%d: recv mapping: %w", idx, err)
	}
	if err := k.LoadMapping(e, bootSid, ck.MappingSpec{VA: 0x6000_0000, PFN: sharedPFN, Writable: true, Message: true}); err != nil {
		return fmt.Errorf("mpm%d: send mapping: %w", idx, err)
	}
	e.Charge(hw.CyclesFromMicros(200))
	e.Store32(0x6000_0000, 1)
	e.Charge(hw.CyclesFromMicros(150))
	e.Store32(0x6000_0000, 2)

	// Alarm: the third signal arrives from the timer.
	if err := k.SetAlarm(e, rtid, e.Now()+hw.CyclesFromMicros(800), 7); err != nil {
		return fmt.Errorf("mpm%d: alarm: %w", idx, err)
	}

	for i := 0; i < 4000 && !(recvDone && touchDone); i++ {
		e.Charge(2000)
	}
	if !recvDone || !touchDone {
		return fmt.Errorf("mpm%d: workload incomplete: recv=%v touch=%v", idx, recvDone, touchDone)
	}
	return nil
}
