package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/snap"
)

// ForkReport records the cost of the structural snapshot/fork path
// (internal/snap) against a full boot of the same machine: how long the
// 16-MPM fork-benchmark topology takes to boot from scratch, how long
// one snapshot and one fork cost, the encoded snapshot size, and the
// copy-on-write page-fault cost a fork pays on first write. cmd/ckbench
// -exp fork emits it as BENCH_fork.json (see EXPERIMENTS.md).
type ForkReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// The benchmark topology: MPMs Cache Kernels, each mapping and
	// dirtying PagesPerMPM pages and retiring WorkersPerMPM short-lived
	// threads before reaching the quiescent snapshot point.
	MPMs          int `json:"mpms"`
	CPUsPerMPM    int `json:"cpus_per_mpm"`
	PagesPerMPM   int `json:"pages_per_mpm"`
	WorkersPerMPM int `json:"workers_per_mpm"`

	// Boot-from-scratch cost (the thing a fork avoids).
	BootHostMs    float64 `json:"boot_host_ms"`
	BootSimCycles uint64  `json:"boot_sim_cycles"`

	// Snapshot: one structural capture plus its deterministic encoding.
	SnapshotHostMs float64 `json:"snapshot_host_ms"`
	SnapshotBytes  int     `json:"snapshot_bytes"`

	// Fork: mean over Forks rebuilds from the image. ForkToBootRatio is
	// the headline number — a fork must be a small fraction of a boot
	// for boot-once/fork-many exploration to pay off. The headline
	// forks run with a warmed ck.InstancePool (steady-state
	// boot-once/fork-many: each fork adopts the pmap its predecessor
	// recycled); ForkUnpooledHostMs is the same loop with the pool
	// disabled, so the pool's win is visible in the report.
	Forks              int     `json:"forks"`
	ForkHostMs         float64 `json:"fork_host_ms"`
	ForkUnpooledHostMs float64 `json:"fork_unpooled_host_ms"`
	ForkToBootRatio    float64 `json:"fork_to_boot_ratio"`
	PoolAdopted        int     `json:"pool_adopted"`
	PoolRecycled       int     `json:"pool_recycled"`

	// Copy-on-write: the cost of privatizing a shared frame on first
	// write, measured by dirtying every image frame of one fork.
	CowPages         uint64  `json:"cow_pages"`
	CowFaultNsPerPg  float64 `json:"cow_fault_ns_per_page"`
	CowSharedBefore  uint64  `json:"cow_shared_before"`
	CowCopiedByDirty uint64  `json:"cow_copied_by_dirty"`
}

func (r ForkReport) String() string {
	return fmt.Sprintf(
		"topology: %d MPMs x %d CPUs, %d pages + %d workers per MPM\n"+
			"boot from scratch:  %8.2f ms host (%d sim-cycles)\n"+
			"snapshot + encode:  %8.2f ms host, %d bytes\n"+
			"fork from image:    %8.3f ms host (mean of %d, pooled; %.3f ms unpooled) = %.1f%% of boot\n"+
			"cow first-write:    %8.1f ns/page (%d of %d shared frames dirtied)\n",
		r.MPMs, r.CPUsPerMPM, r.PagesPerMPM, r.WorkersPerMPM,
		r.BootHostMs, r.BootSimCycles,
		r.SnapshotHostMs, r.SnapshotBytes,
		r.ForkHostMs, r.Forks, r.ForkUnpooledHostMs, 100*r.ForkToBootRatio,
		r.CowFaultNsPerPg, r.CowCopiedByDirty, r.CowSharedBefore)
}

// Fork-benchmark page-frame layout: a per-MPM window of writable pages
// well clear of the boot images.
func forkBenchWinBase(mpm int) uint32 { return 0x5000_0000 + uint32(mpm)<<24 }
func forkBenchPFN(mpm, p int) uint32  { return 4096 + uint32(mpm)*256 + uint32(p) }

// bootForkBench boots the fork-benchmark machine: mpms Cache Kernels
// whose boot threads map and dirty a page window, then launch workers
// short-lived threads that each rewrite the window and exit. Every
// thread (workers and boot) has exited by the time the machine drains,
// so the result is quiescent — structurally snapshottable.
func bootForkBench(mpms, cpus, pages, workers int) (*hw.Machine, []*ck.Kernel, error) {
	cfg := hw.DefaultConfig()
	cfg.MPMs = mpms
	cfg.CPUsPerMPM = cpus
	m := hw.NewMachine(cfg)
	var ks []*ck.Kernel
	errs := make([]error, mpms)
	for i, mpm := range m.MPMs {
		k, err := ck.New(mpm, ck.Config{})
		if err != nil {
			return nil, nil, err
		}
		i := i
		var info ck.BootInfo
		body := func(e *hw.Exec) { errs[i] = forkBenchBoot(k, e, i, pages, workers, info.Space) }
		info, err = k.Boot(ck.KernelAttrs{
			Name:      fmt.Sprintf("fb%d", i),
			LockQuota: [4]int{4, 8, 16, 256},
		}, 40, body)
		if err != nil {
			return nil, nil, err
		}
		ks = append(ks, k)
	}
	m.SetMaxSteps(500_000_000)
	if err := m.Run(math.MaxUint64); err != nil {
		return nil, nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, nil, e
		}
	}
	return m, ks, nil
}

// forkBenchLaps is how many passes over the page window each worker
// makes: the boot must represent a real exploration workload's setup
// cost — the very thing boot-once/fork-many amortizes away.
const forkBenchLaps = 256

func forkBenchBoot(k *ck.Kernel, e *hw.Exec, idx, pages, workers int, sid ck.ObjID) error {
	base := forkBenchWinBase(idx)
	for p := 0; p < pages; p++ {
		va := base + uint32(p)*hw.PageSize
		err := k.LoadMapping(e, sid, ck.MappingSpec{
			VA: va, PFN: forkBenchPFN(idx, p), Writable: true, Cachable: true,
		})
		if err != nil {
			return fmt.Errorf("fork bench mpm %d: map %#x: %w", idx, va, err)
		}
		e.Store32(va, 0xF0B0_0000^uint32(idx)<<8^uint32(p))
	}
	for w := 0; w < workers; w++ {
		w := w
		we := k.MPM.NewExec(fmt.Sprintf("fbw%d.%d", idx, w), func(ue *hw.Exec) {
			for lap := 0; lap < forkBenchLaps; lap++ {
				for p := 0; p < pages; p++ {
					va := base + uint32(p)*hw.PageSize
					ue.Store32(va, ue.Load32(va)+uint32(w+1))
				}
			}
			ue.Charge(2_000)
		})
		if _, err := k.LoadThread(e, sid, ck.ThreadState{Priority: 28, Exec: we}, false); err != nil {
			return fmt.Errorf("fork bench mpm %d: worker %d: %w", idx, w, err)
		}
		e.Charge(1_000)
	}
	e.Charge(5_000)
	return nil
}

// MeasureFork runs the snapshot/fork cost benchmark: boot the 16-MPM
// topology from scratch, snapshot it, fork it repeatedly, and dirty one
// fork end to end to price the copy-on-write faults.
func MeasureFork() (ForkReport, error) {
	r := ForkReport{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		MPMs:          16,
		CPUsPerMPM:    2,
		PagesPerMPM:   32,
		WorkersPerMPM: 32,
		Forks:         16,
	}

	t0 := time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	m, ks, err := bootForkBench(r.MPMs, r.CPUsPerMPM, r.PagesPerMPM, r.WorkersPerMPM)
	if err != nil {
		return r, err
	}
	r.BootHostMs = float64(time.Since(t0).Nanoseconds()) / 1e6 //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	r.BootSimCycles = m.Now()

	t0 = time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	im, err := snap.Take(m, ks)
	if err != nil {
		return r, err
	}
	enc, err := im.Encode()
	if err != nil {
		return r, err
	}
	r.SnapshotHostMs = float64(time.Since(t0).Nanoseconds()) / 1e6 //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	r.SnapshotBytes = len(enc)

	// Unpooled baseline: every fork rebuilds its kernels from scratch.
	t0 = time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	for i := 0; i < r.Forks; i++ {
		if _, _, err := im.Fork(1, nil); err != nil {
			return r, err
		}
	}
	r.ForkUnpooledHostMs = float64(time.Since(t0).Nanoseconds()) / 1e6 / float64(r.Forks) //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose

	// Headline: steady-state pooled forks. The pool starts with one
	// fork's worth of pre-built pmaps; each iteration recycles the
	// previous fork's kernels, so every fork adopts rather than builds —
	// the boot-once/fork-many regime the pool exists for.
	pool := ck.NewInstancePool()
	pool.Fill(ck.Config{}, r.MPMs)
	im.Pool = pool
	var last *hw.Machine
	var prev []*ck.Kernel
	t0 = time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	for i := 0; i < r.Forks; i++ {
		fm, fks, err := im.Fork(1, nil)
		if err != nil {
			return r, err
		}
		for _, k := range prev {
			pool.Recycle(k)
		}
		last, prev = fm, fks
	}
	r.ForkHostMs = float64(time.Since(t0).Nanoseconds()) / 1e6 / float64(r.Forks) //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	ps := pool.Stats()
	r.PoolAdopted = ps.Adopted
	r.PoolRecycled = ps.Recycled
	if r.BootHostMs > 0 {
		r.ForkToBootRatio = r.ForkHostMs / r.BootHostMs
	}

	// Dirty every frame the image carries on the last fork: each first
	// write privatizes one shared frame — the whole COW bill at once.
	var frames []uint32
	for pfn := uint32(0); pfn < im.Frames.Frames(); pfn++ {
		if im.Frames.PageBytes(pfn) != nil {
			frames = append(frames, pfn)
		}
	}
	r.CowPages = uint64(len(frames))
	r.CowSharedBefore = last.Phys.CowStats().SharedPages
	t0 = time.Now() //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	for _, pfn := range frames {
		last.Phys.Write32(pfn*hw.PageSize, 0xD1D1_D1D1)
	}
	d := time.Since(t0) //ckvet:allow detmap host-side wall-clock measurement is this experiment's purpose
	if len(frames) > 0 {
		r.CowFaultNsPerPg = float64(d.Nanoseconds()) / float64(len(frames))
	}
	r.CowCopiedByDirty = last.Phys.CowStats().CopiedPages
	return r, nil
}
