//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation assertions skip under it: the detector instruments
// the very paths they measure.
const raceEnabled = true
