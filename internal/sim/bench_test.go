package sim

import (
	"math"
	"testing"
)

// BenchmarkEngineSchedulingDecision measures raw engine throughput: how
// many coroutine scheduling decisions the host executes per second.
func BenchmarkEngineSchedulingDecision(b *testing.B) {
	e := NewEngine()
	clks := [4]*Clock{}
	for i := range clks {
		clks[i] = NewClock("c")
		co := e.NewCoro("w", func(ctx *Ctx) {
			for {
				ctx.Advance(10)
				ctx.Reschedule()
			}
		})
		e.UnparkOn(co, clks[i])
	}
	e.MaxSteps = uint64(b.N) + 16
	b.ResetTimer()
	_ = e.Run(math.MaxUint64)
}

// BenchmarkEventHeap measures timer scheduling throughput.
func BenchmarkEventHeap(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.ScheduleAt(uint64(i%1024), func() {})
		if i%1024 == 1023 {
			_ = e.Run(uint64(i))
		}
	}
}

// BenchmarkRand measures the workload PRNG.
func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
