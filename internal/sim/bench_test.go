package sim

import (
	"math"
	"testing"
)

// benchEngineStep measures raw engine throughput with n concurrent
// runnable coroutines: how many scheduling decisions the host executes
// per second. The per-decision cost of the ready-structure dominates as
// n grows.
func benchEngineStep(b *testing.B, n int) {
	b.Helper()
	e := NewEngine()
	for i := 0; i < n; i++ {
		clk := NewClock("c")
		co := e.NewCoro("w", func(ctx *Ctx) {
			for {
				ctx.Advance(10)
				ctx.Reschedule()
			}
		})
		e.UnparkOn(co, clk)
	}
	e.MaxSteps = uint64(b.N) + uint64(n)*4
	b.ResetTimer()
	_ = e.Run(math.MaxUint64)
}

// BenchmarkEngineSchedulingDecision measures raw engine throughput: how
// many coroutine scheduling decisions the host executes per second.
func BenchmarkEngineSchedulingDecision(b *testing.B) { benchEngineStep(b, 4) }

// BenchmarkEngineStep64 exercises the ready structure at one simulated
// MPM's worth of active contexts.
func BenchmarkEngineStep64(b *testing.B) { benchEngineStep(b, 64) }

// BenchmarkEngineStep256 is the ISSUE 1 acceptance microbenchmark: a
// large multiprogrammed machine's worth of runnable contexts.
func BenchmarkEngineStep256(b *testing.B) { benchEngineStep(b, 256) }

// BenchmarkEventHeap measures timer scheduling throughput.
func BenchmarkEventHeap(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.ScheduleAt(uint64(i%1024), func() {})
		if i%1024 == 1023 {
			_ = e.Run(uint64(i))
		}
	}
}

// BenchmarkEpochBarrier measures the sharded logged path end to end:
// two shards each firing one self-rescheduling event per epoch, so
// every b.N steps crosses action logging, the barrier merge and the
// pooled-buffer resets. With warm pools the steady state is
// allocation-free; CI asserts the allocs/op budget on this benchmark
// and the engine-step ones with -benchmem.
func BenchmarkEpochBarrier(b *testing.B) {
	c := NewCluster(2)
	c.Bound(512)
	for s := 0; s < 2; s++ {
		e := c.Engine(s)
		at := uint64(s + 1)
		var tick func()
		tick = func() {
			at += 512
			e.ScheduleAt(at, tick)
		}
		e.ScheduleAt(at, tick)
	}
	c.MaxSteps = uint64(b.N) + 64
	b.ResetTimer()
	_ = c.Run(math.MaxUint64)
}

// BenchmarkRand measures the workload PRNG.
func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
