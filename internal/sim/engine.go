// Package sim provides a deterministic discrete-virtual-time execution
// engine for the V++ Cache Kernel reproduction.
//
// The engine multiplexes many simulated execution contexts (Coros) over a
// single OS thread of control: exactly one coroutine runs at any instant,
// and the engine always resumes the runnable coroutine whose processor
// clock is furthest behind. This yields a deterministic, serializable
// interleaving of the simulated multiprocessor without any locking in the
// simulated kernel code, mirroring how the real Cache Kernel limited
// parallelism to one MPM.
//
// Time is measured in processor cycles. Clocks belong to simulated CPUs;
// a coroutine advances whichever clock it is currently dispatched on, so a
// thread migrating between CPUs naturally accumulates time on each.
//
// Host-side scheduling is O(log n) in the number of runnable coroutines:
// the ready set is a min-heap keyed by (clock, id), finished coroutines
// are dropped from the engine entirely, and a yielding coroutine whose
// scheduling decision resumes another coroutine hands control to it
// directly instead of round-tripping through the engine goroutine. All
// of this changes only host data structures; the scheduling decisions
// themselves — which coroutine runs at which virtual time — are
// bit-identical to the original linear-scan engine (the determinism
// golden in internal/exp pins this).
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Clock is a processor-local virtual clock measured in cycles.
// The hardware layer creates one Clock per simulated CPU.
type Clock struct {
	name string
	now  uint64
}

// NewClock returns a clock starting at cycle 0.
func NewClock(name string) *Clock { return &Clock{name: name} }

// Now reports the clock's current cycle count.
func (c *Clock) Now() uint64 { return c.now }

// AdvanceTo moves the clock forward to cycle t; it never moves backward.
func (c *Clock) AdvanceTo(t uint64) {
	if t > c.now {
		c.now = t
	}
}

// Name reports the clock's name (its CPU's name, conventionally).
func (c *Clock) Name() string { return c.name }

// Coro is a simulated execution context: a thread of control that runs on
// whichever Clock it is dispatched to. Coros are created parked; the kernel
// layer unparks a coro on a CPU clock to "dispatch" it.
type Coro struct {
	name     string
	id       uint64
	eng      *Engine
	fn       func(*Ctx)
	ctx      *Ctx
	resume   chan uint64 // horizon values; closed never
	clock    *Clock
	runnable bool
	started  bool
	done     bool
}

// Name reports the coro's name.
func (co *Coro) Name() string { return co.name }

// Done reports whether the coro's body has returned.
func (co *Coro) Done() bool { return co.done }

// Runnable reports whether the coro is currently eligible to run.
func (co *Coro) Runnable() bool { return co.runnable && !co.done }

// Clock returns the clock the coro is (or was last) dispatched on.
func (co *Coro) Clock() *Clock { return co.clock }

// Ctx is the handle a running coroutine uses to interact with the engine.
// A Ctx is only valid inside its own coroutine.
type Ctx struct {
	co      *Coro
	horizon uint64
}

// event is a scheduled callback. Events run in the engine's own context
// (never inside a coroutine); they typically raise interrupts or unpark
// coros.
type event struct {
	at  uint64
	seq uint64
	fn  func()
}

// Engine owns all coroutines, clocks and pending events of one simulation.
type Engine struct {
	coros   []*Coro  // live (not finished) coroutines, creation order
	runq    coroHeap // runnable coroutines keyed by (clock, id)
	events  eventHeap
	seq     uint64
	yieldCh chan *Coro
	current *Coro
	now     uint64 // time of the most recently scheduled entity
	until   uint64 // bound of the Run call in progress
	steps   uint64
	// MaxSteps bounds engine scheduling decisions as a runaway guard.
	// Zero means no limit.
	MaxSteps uint64

	// TraceDispatch, when non-nil, is called with the coroutine name and
	// virtual dispatch time on every scheduling decision that resumes a
	// coroutine. It observes the schedule without perturbing it; the
	// determinism regression harness hashes the resulting trace.
	TraceDispatch func(name string, at uint64)
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{yieldCh: make(chan *Coro)}
}

// Now reports the virtual time of the most recently scheduled entity.
// It is a global lower bound: no future activity occurs before it.
func (e *Engine) Now() uint64 { return e.now }

// Steps reports the number of scheduling decisions made so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Live reports the number of coroutines the engine still tracks
// (finished coroutines are removed).
func (e *Engine) Live() int { return len(e.coros) }

// NewCoro creates a parked coroutine that will execute fn when first
// dispatched. The body must only interact with the engine through ctx.
func (e *Engine) NewCoro(name string, fn func(*Ctx)) *Coro {
	e.seq++
	co := &Coro{
		name:   name,
		id:     e.seq,
		eng:    e,
		fn:     fn,
		resume: make(chan uint64),
	}
	co.ctx = &Ctx{co: co}
	e.coros = append(e.coros, co)
	return co
}

// UnparkOn makes co runnable on the given clock. It is the dispatch
// primitive: the kernel layer calls it when placing a thread on a CPU.
// Calling it for an already-runnable or finished coro panics, as that
// indicates a kernel scheduling bug.
func (e *Engine) UnparkOn(co *Coro, clock *Clock) {
	if co.done {
		panic(fmt.Sprintf("sim: unpark of finished coro %q", co.name))
	}
	if co.runnable {
		panic(fmt.Sprintf("sim: unpark of runnable coro %q", co.name))
	}
	if clock == nil {
		panic("sim: unpark with nil clock")
	}
	co.clock = clock
	co.runnable = true
	e.runq.push(coroEntry{at: clock.now, co: co})
	// A newly runnable coroutine may be more urgent than the currently
	// executing one: shrink the current horizon so it yields at its next
	// charge point.
	if cur := e.current; cur != nil && cur != co && clock.now < cur.ctx.horizon {
		cur.ctx.horizon = clock.now
	}
}

// ScheduleAt registers fn to run at virtual time t in engine context.
// Events at equal times run in registration order.
func (e *Engine) ScheduleAt(t uint64, fn func()) {
	e.seq++
	e.events.push(&event{at: t, seq: e.seq, fn: fn})
	// The new event may precede the running coroutine's current horizon.
	if cur := e.current; cur != nil && t < cur.ctx.horizon {
		cur.ctx.horizon = t
	}
}

// ScheduleAfter registers fn to run d cycles after the engine's current
// global time.
func (e *Engine) ScheduleAfter(d uint64, fn func()) {
	e.ScheduleAt(e.now+d, fn)
}

// ErrMaxSteps reports that Run stopped because the step guard tripped.
var ErrMaxSteps = errors.New("sim: exceeded MaxSteps scheduling decisions")

// maxQuantum bounds how far a coroutine may run past its scheduling
// point before yielding, keeping the engine responsive to MaxSteps.
const maxQuantum = 1 << 22

// Run executes the simulation until no coroutine is runnable and no event
// is pending, or until the next entity's time exceeds until (pass
// math.MaxUint64 for no bound). It returns ErrMaxSteps if the step guard
// trips.
func (e *Engine) Run(until uint64) error {
	e.until = until
	for {
		if e.MaxSteps != 0 && e.steps >= e.MaxSteps {
			return ErrMaxSteps
		}
		e.steps++

		co, coTime := e.peekRunnable()
		evTime := uint64(math.MaxUint64)
		if len(e.events) > 0 {
			evTime = e.events[0].at
		}

		switch {
		case co == nil && evTime == math.MaxUint64:
			return nil
		case evTime <= coTime:
			if evTime > until {
				return nil
			}
			ev := e.events.pop()
			e.now = ev.at
			ev.fn()
		default:
			if coTime > until {
				return nil
			}
			e.runq.pop()
			horizon := e.horizonFor(coTime)
			e.now = coTime
			if e.TraceDispatch != nil {
				e.TraceDispatch(co.name, coTime)
			}
			e.resumeCoro(co, horizon)
		}
	}
}

// peekRunnable returns the runnable coroutine with the smallest
// (clock, id) key without removing it, or (nil, MaxUint64) if none.
// Stale heap keys — a queued coroutine whose clock moved because it
// shares the clock with another — are repaired lazily here, so the
// reported minimum is always computed over live clock values, exactly
// as the original linear scan did.
func (e *Engine) peekRunnable() (*Coro, uint64) {
	for len(e.runq) > 0 {
		ent := e.runq[0]
		co := ent.co
		if co.done || !co.runnable {
			// Defensive: the engine never leaves such entries behind,
			// but discarding keeps the heap an over-approximation.
			e.runq.pop()
			continue
		}
		if now := co.clock.now; now != ent.at {
			// Clocks only move forward; re-key at the live value.
			e.runq.pop()
			e.runq.push(coroEntry{at: now, co: co})
			continue
		}
		return co, ent.at
	}
	return nil, math.MaxUint64
}

// horizonFor computes how far a coroutine dispatched at coTime may run
// before yielding: the time of the next-most-urgent entity, capped by
// the run bound and a maximum quantum so the engine periodically
// regains control from non-yielding loops. The dispatched coroutine
// must already be popped from the run queue.
func (e *Engine) horizonFor(coTime uint64) uint64 {
	_, horizon := e.peekRunnable()
	if len(e.events) > 0 && e.events[0].at < horizon {
		horizon = e.events[0].at
	}
	if e.until < horizon {
		horizon = e.until
	}
	if q := coTime + maxQuantum; q < horizon {
		horizon = q
	}
	return horizon
}

// pickDirect evaluates the next scheduling decision from inside a
// yielding coroutine. If that decision resumes a coroutine it performs
// the dispatch bookkeeping (step count, queue pop, virtual time, trace)
// and returns it with its horizon; for anything the engine goroutine
// must handle — a due event, quiescence, the run bound, the step guard —
// it mutates nothing and reports !ok so the yielder bounces control
// back to Run, which re-evaluates identically.
func (e *Engine) pickDirect() (next *Coro, horizon uint64, ok bool) {
	if e.MaxSteps != 0 && e.steps >= e.MaxSteps {
		return nil, 0, false
	}
	co, coTime := e.peekRunnable()
	if co == nil || coTime > e.until {
		return nil, 0, false
	}
	if len(e.events) > 0 && e.events[0].at <= coTime {
		return nil, 0, false
	}
	e.steps++
	e.runq.pop()
	horizon = e.horizonFor(coTime)
	e.now = coTime
	if e.TraceDispatch != nil {
		e.TraceDispatch(co.name, coTime)
	}
	return co, horizon, true
}

// resumeCoro transfers control to co until control bounces back to the
// engine goroutine. With direct handoff, any number of coroutine-to-
// coroutine switches may happen before that; exactly one goroutine is
// ever active, so engine state needs no locking.
func (e *Engine) resumeCoro(co *Coro, horizon uint64) {
	e.current = co
	if !co.started {
		e.startCoro(co)
	}
	co.resume <- horizon
	<-e.yieldCh
	e.current = nil
}

// startCoro launches the coroutine's goroutine. When the body returns,
// the coroutine is removed from the engine's tracked set entirely —
// long-running simulations do not accumulate finished contexts — and
// control bounces to the engine goroutine.
func (e *Engine) startCoro(co *Coro) {
	co.started = true
	//ckvet:allow detmap coroutine goroutines hand off through unbuffered channels; exactly one is ever runnable
	go func() {
		h := <-co.resume
		co.ctx.horizon = h
		co.fn(co.ctx)
		co.done = true
		co.runnable = false
		e.removeCoro(co)
		e.yieldCh <- co
	}()
}

// removeCoro drops a finished coroutine from the live set, preserving
// creation order. Called from the finishing coroutine's goroutine while
// every other goroutine is parked, so no synchronization is needed.
func (e *Engine) removeCoro(co *Coro) {
	for i, c := range e.coros {
		if c == co {
			copy(e.coros[i:], e.coros[i+1:])
			e.coros[len(e.coros)-1] = nil
			e.coros = e.coros[:len(e.coros)-1]
			return
		}
	}
}

// yield suspends the calling coroutine and returns control to the
// scheduler; the coroutine resumes (with a fresh horizon) when next
// scheduled. If the next scheduling decision resumes a coroutine, the
// yielder hands control to it directly — or simply keeps running when
// that coroutine is itself — avoiding the round trip through the engine
// goroutine. Decisions the engine must make (events, bounds, guards)
// bounce back to Run.
func (ctx *Ctx) yield() {
	co := ctx.co
	e := co.eng
	if co.runnable {
		e.runq.push(coroEntry{at: co.clock.now, co: co})
	}
	if next, horizon, ok := e.pickDirect(); ok {
		e.current = next
		if next == co {
			ctx.horizon = horizon
			return
		}
		if !next.started {
			e.startCoro(next)
		}
		next.resume <- horizon
		ctx.horizon = <-co.resume
		return
	}
	e.yieldCh <- co
	ctx.horizon = <-co.resume
}

// Advance charges cycles cycles to the coroutine's current clock, yielding
// to the engine if another entity is now more urgent. This is the
// fundamental cost-charging primitive: every simulated action calls it.
func (ctx *Ctx) Advance(cycles uint64) {
	c := ctx.co.clock
	c.now += cycles
	if c.now > ctx.horizon {
		ctx.yield()
	}
}

// Now reports the coroutine's current clock time.
func (ctx *Ctx) Now() uint64 { return ctx.co.clock.now }

// Coro returns the coroutine the context belongs to.
func (ctx *Ctx) Coro() *Coro { return ctx.co }

// Engine returns the owning engine.
func (ctx *Ctx) Engine() *Engine { return ctx.co.eng }

// Park suspends the calling coroutine until another entity unparks it.
// On resume, the coroutine's clock (which may have been rebound by the
// unparker) is advanced to at least the engine's global time, modeling a
// CPU that was idle until the wakeup.
func (ctx *Ctx) Park() {
	co := ctx.co
	co.runnable = false
	ctx.yield()
	co.clock.AdvanceTo(co.eng.now)
}

// Reschedule forces a yield without charging time, letting equally urgent
// entities interleave at a known point.
func (ctx *Ctx) Reschedule() { ctx.yield() }

// coroEntry is a run-queue element; at is the coroutine's clock value
// when queued (repaired lazily if the clock moves while queued).
type coroEntry struct {
	at uint64
	co *Coro
}

// coroHeap is a min-heap of runnable coroutines ordered by (at, id) —
// the same "smallest clock, creation order breaks ties" rule the
// original linear scan implemented.
type coroHeap []coroEntry

func coroLess(a, b coroEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.co.id < b.co.id
}

func (h *coroHeap) push(ent coroEntry) {
	*h = append(*h, ent)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if coroLess((*h)[i], (*h)[p]) {
			(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
			i = p
		} else {
			break
		}
	}
}

func (h *coroHeap) pop() coroEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = coroEntry{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && coroLess(old[l], old[m]) {
			m = l
		}
		if r < n && coroLess(old[r], old[m]) {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if less((*h)[i], (*h)[p]) {
			(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
			i = p
		} else {
			break
		}
	}
}

func (h *eventHeap) pop() *event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && less(old[l], old[m]) {
			m = l
		}
		if r < n && less(old[r], old[m]) {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// DebugState renders the engine's coroutine states for diagnostics.
// Finished coroutines are removed from the engine, so only parked and
// runnable ones appear.
func DebugState(e *Engine) string {
	s := ""
	for _, co := range e.coros {
		state := "parked"
		if co.done {
			state = "done"
		} else if co.runnable {
			state = "runnable"
		}
		clk := uint64(0)
		if co.clock != nil {
			clk = co.clock.now
		}
		s += co.name + "=" + state + "@" + u64str(clk) + " "
	}
	if e.current != nil {
		s += "| current=" + e.current.name
	}
	s += "| events=" + u64str(uint64(len(e.events)))
	return s
}

func u64str(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
