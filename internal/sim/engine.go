// Package sim provides a deterministic discrete-virtual-time execution
// engine for the V++ Cache Kernel reproduction.
//
// The engine multiplexes many simulated execution contexts (Coros) over a
// single OS thread of control: exactly one coroutine runs at any instant,
// and the engine always resumes the runnable coroutine whose processor
// clock is furthest behind. This yields a deterministic, serializable
// interleaving of the simulated multiprocessor without any locking in the
// simulated kernel code, mirroring how the real Cache Kernel limited
// parallelism to one MPM.
//
// Time is measured in processor cycles. Clocks belong to simulated CPUs;
// a coroutine advances whichever clock it is currently dispatched on, so a
// thread migrating between CPUs naturally accumulates time on each.
//
// Host-side scheduling is O(log n) in the number of runnable coroutines:
// the ready set is a min-heap keyed by (clock, id), finished coroutines
// are dropped from the engine entirely, and a yielding coroutine whose
// scheduling decision resumes another coroutine hands control to it
// directly instead of round-tripping through the engine goroutine. All
// of this changes only host data structures; the scheduling decisions
// themselves — which coroutine runs at which virtual time — are
// bit-identical to the original linear-scan engine (the determinism
// golden in internal/exp pins this).
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Clock is a processor-local virtual clock measured in cycles.
// The hardware layer creates one Clock per simulated CPU.
type Clock struct {
	name string
	now  uint64
	san  sanClockState // shard-ownership tag; empty unless built with -tags cksan
}

// NewClock returns a clock starting at cycle 0.
func NewClock(name string) *Clock { return &Clock{name: name} }

// Now reports the clock's current cycle count.
func (c *Clock) Now() uint64 { return c.now }

// AdvanceTo moves the clock forward to cycle t; it never moves backward.
func (c *Clock) AdvanceTo(t uint64) {
	if t > c.now {
		c.now = t
	}
}

// Name reports the clock's name (its CPU's name, conventionally).
func (c *Clock) Name() string { return c.name }

// Coro is a simulated execution context: a thread of control that runs on
// whichever Clock it is dispatched to. Coros are created parked; the kernel
// layer unparks a coro on a CPU clock to "dispatch" it.
type Coro struct {
	name     string
	id       uint64
	eng      *Engine
	fn       func(*Ctx)
	ctx      *Ctx
	resume   chan uint64 // horizon values; closed never
	clock    *Clock
	runnable bool
	started  bool
	done     bool
	// fresh marks an activation: the coroutine was unparked and has not
	// been dispatched since. Only activation dispatches are traced and
	// counted in Steps — later re-slices of the same run (grid-boundary
	// yields) are engine pacing, invisible to the simulated kernel.
	fresh bool

	// band/gid order this coro's dispatches against entities on other
	// shards at equal virtual times (see event.band): band 0 carries
	// the construction-time id, band 1 a barrier-assigned global rank.
	// Serial engines only use band 0 with gid == id.
	band uint8
	gid  uint64
}

// Name reports the coro's name.
func (co *Coro) Name() string { return co.name }

// Done reports whether the coro's body has returned.
func (co *Coro) Done() bool { return co.done }

// Runnable reports whether the coro is currently eligible to run.
func (co *Coro) Runnable() bool { return co.runnable && !co.done }

// Clock returns the clock the coro is (or was last) dispatched on.
func (co *Coro) Clock() *Clock { return co.clock }

// Ctx is the handle a running coroutine uses to interact with the engine.
// A Ctx is only valid inside its own coroutine.
type Ctx struct {
	co      *Coro
	horizon uint64
}

// event is a scheduled callback. Events run in the engine's own context
// (never inside a coroutine); they typically raise interrupts or unpark
// coros.
//
// band orders events across shard timelines at equal virtual times
// without a shared runtime counter (see cluster.go): band 0 is
// construction time (ids from the cluster-wide constructor counter, or
// the engine counter when standalone — today's serial order, byte for
// byte), band 1 is runtime registrations that have been assigned a
// global rank at an epoch barrier, band 2 is this-epoch shard-local
// registrations not yet ranked. Serial engines only ever use band 0.
type event struct {
	at   uint64
	seq  uint64
	band uint8
	fn   func()
}

// Engine owns all coroutines, clocks and pending events of one simulation.
type Engine struct {
	coros   []*Coro  // live (not finished) coroutines, creation order
	runq    coroHeap // runnable coroutines keyed by (clock, id)
	events  eventHeap
	seq     uint64
	yieldCh chan *Coro
	current *Coro
	now     uint64 // time of the most recently scheduled entity
	until   uint64 // bound of the Run call in progress
	steps   uint64 // raw scheduling decisions (MaxSteps guard)
	sched   uint64 // schedule points: event executions + activations
	schedAt uint64 // latest schedule-point time seen so far (monotone)
	// MaxSteps bounds engine scheduling decisions as a runaway guard.
	// Zero means no limit.
	MaxSteps uint64

	// TraceDispatch, when non-nil, is called with the coroutine name and
	// virtual dispatch time on every activation — a dispatch of a
	// coroutine that was unparked since it last ran. Preemption
	// re-slices are not traced: they depend on which other entities
	// share the engine, while activations are a property of the
	// simulated schedule itself (and are therefore identical across
	// shard counts). The determinism regression harness hashes the
	// resulting trace. In a cluster, the per-shard field stays nil and
	// the cluster emits the merged trace instead.
	TraceDispatch func(name string, at uint64)

	// Sharded-mode state (nil/zero for a standalone serial engine).
	cluster *Cluster
	shard   int
	// logging records every action (event execution, coroutine
	// dispatch) and every runtime registration so the cluster can
	// replay the exact serial global order at each epoch barrier.
	logging bool
	acts    []actRec
	subs    []subRec
	outbox  []crossMsg
	// evFree pools event records when the log does not retain them.
	evFree []*event
	// smallEpochs counts consecutive epochs whose log usage fit under
	// poolRetain; trimPools shrinks over-cap buffers once it reaches
	// poolTrimAfter.
	smallEpochs int
}

// Action and registration log records (sharded mode only).
const (
	actEvent    = 0 // an event execution
	actDispatch = 1 // an activation: first dispatch since unpark
	actReslice  = 2 // a continuation dispatch after a grid-boundary yield

	subCoro  = 0 // a NewCoro whose dispatch rank is assigned at the barrier
	subEvent = 1 // a shard-local ScheduleAt re-ranked at the barrier
	subCross = 2 // a cross-shard message injected at the barrier
)

// actRec is one logged action: an event execution or a dispatch
// decision (activation or re-slice — every decision is logged, because
// the barrier merge replays the serial engine's complete decision
// sequence; only activations are traced). sub is the index into the
// engine's subs log where this action's registrations begin (they end
// where the next action's begin).
type actRec struct {
	at   uint64
	co   *Coro
	ev   *event
	sub  int32
	kind uint8
}

// subRec is one logged runtime registration, ranked in merged global
// order at the epoch barrier.
type subRec struct {
	kind uint8
	co   *Coro
	ev   *event
	msg  int32
}

// crossMsg is a scheduled effect bound for another shard, delivered at
// the epoch barrier with its virtual time intact.
type crossMsg struct {
	at  uint64
	dst *Engine
	fn  func()
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{yieldCh: make(chan *Coro)}
}

// Now reports the engine's current virtual time. From inside a running
// coroutine this is that coroutine's own clock — the engine-level `now`
// only advances at schedule points, so the running entity's clock is
// the honest current time (and, unlike the schedule-point clock, it
// does not depend on how preemption sliced other entities' runs).
// Outside any coroutine it is the time of the most recent schedule
// point, a global lower bound: no future activity occurs before it.
func (e *Engine) Now() uint64 {
	if cur := e.current; cur != nil {
		return cur.clock.now
	}
	return e.now
}

// Steps reports the number of schedule points so far: event executions
// plus coroutine activations. Unlike the raw decision count (which
// includes horizon-preemption re-slices and is what MaxSteps guards),
// this is a property of the simulated schedule and is identical across
// shard counts.
func (e *Engine) Steps() uint64 { return e.sched }

// Decisions reports raw scheduling decisions, including preemption
// re-slices; this is the count MaxSteps bounds.
func (e *Engine) Decisions() uint64 { return e.steps }

// SchedTime reports the latest schedule-point time (event execution or
// activation) seen so far. Unlike Now, which preemption re-slices also
// advance, this is a property of the simulated schedule and therefore
// identical across shard counts; the determinism fingerprints use it as
// the final clock.
func (e *Engine) SchedTime() uint64 { return e.schedAt }

// SanEnabled reports whether this binary was built with the cksan
// runtime ownership sanitizer (-tags cksan). Tools use it to refuse
// sanitizer runs on unsanitized binaries.
func SanEnabled() bool { return sanEnabled }

// Shard reports the engine's shard index within its cluster (0 when
// standalone).
func (e *Engine) Shard() int { return e.shard }

// nextTime reports the virtual time of the engine's next pending entity
// (runnable coroutine or event), or MaxUint64 when quiescent. Only
// called between epochs, when no coroutine of the engine is executing.
func (e *Engine) nextTime() uint64 {
	_, t := e.peekRunnable()
	if len(e.events) > 0 && e.events[0].at < t {
		t = e.events[0].at
	}
	return t
}

// Live reports the number of coroutines the engine still tracks
// (finished coroutines are removed).
func (e *Engine) Live() int { return len(e.coros) }

// nextSeq draws the next construction-order id: the cluster-wide
// constructor counter while a cluster is being built (so ids across
// shards reproduce the single-engine creation order exactly), the
// engine-local counter otherwise.
func (e *Engine) nextSeq() uint64 {
	if c := e.cluster; c != nil && !c.running {
		c.ctorSeq++
		return c.ctorSeq
	}
	e.seq++
	return e.seq
}

// NewCoro creates a parked coroutine that will execute fn when first
// dispatched. The body must only interact with the engine through ctx.
func (e *Engine) NewCoro(name string, fn func(*Ctx)) *Coro {
	id := e.nextSeq()
	co := &Coro{
		name:   name,
		id:     id,
		eng:    e,
		fn:     fn,
		resume: make(chan uint64),
		gid:    id,
	}
	if c := e.cluster; c != nil && c.running {
		// Runtime creation in a cluster: the global dispatch rank is
		// assigned when the creating action is merged at the barrier.
		co.band = 1
		co.gid = 0
		if e.logging {
			//ckvet:allow poolpath sanctioned growth point of the registration log; reset by resetLogs at the epoch barrier
			e.subs = append(e.subs, subRec{kind: subCoro, co: co})
		}
	}
	co.ctx = &Ctx{co: co}
	e.coros = append(e.coros, co)
	return co
}

// UnparkOn makes co runnable on the given clock. It is the dispatch
// primitive: the kernel layer calls it when placing a thread on a CPU.
// Calling it for an already-runnable or finished coro panics, as that
// indicates a kernel scheduling bug.
func (e *Engine) UnparkOn(co *Coro, clock *Clock) {
	if co.eng != e {
		panic(fmt.Sprintf("sim: unpark of coro %q on a foreign engine (cross-shard dispatch)", co.name))
	}
	if co.done {
		panic(fmt.Sprintf("sim: unpark of finished coro %q", co.name))
	}
	if co.runnable {
		panic(fmt.Sprintf("sim: unpark of runnable coro %q", co.name))
	}
	if clock == nil {
		panic("sim: unpark with nil clock")
	}
	e.sanAdoptClock(clock)
	co.clock = clock
	co.runnable = true
	co.fresh = true
	e.runq.push(coroEntry{at: clock.now, co: co})
	// A newly runnable coroutine may be more urgent than the currently
	// executing one: shrink the current horizon so it yields at its next
	// charge point.
	if cur := e.current; cur != nil && cur != co && clock.now < cur.ctx.horizon {
		cur.ctx.horizon = clock.now
	}
}

// ScheduleAt registers fn to run at virtual time t in engine context.
// Events at equal times run in registration order.
func (e *Engine) ScheduleAt(t uint64, fn func()) {
	e.scheduleEvent(t, fn)
	// The new event may precede the running coroutine's current horizon.
	if cur := e.current; cur != nil && t < cur.ctx.horizon {
		cur.ctx.horizon = t
	}
}

// scheduleEvent registers an event without touching the running
// coroutine's horizon.
func (e *Engine) scheduleEvent(t uint64, fn func()) {
	ev := e.newEvent()
	ev.at, ev.fn = t, fn
	if c := e.cluster; c != nil && c.running {
		// Runtime registration in a cluster: shard-local order now,
		// global rank at the barrier.
		e.seq++
		ev.band, ev.seq = 2, e.seq
		if e.logging {
			//ckvet:allow poolpath sanctioned growth point of the registration log; reset by resetLogs at the epoch barrier
			e.subs = append(e.subs, subRec{kind: subEvent, ev: ev})
		}
	} else {
		ev.band, ev.seq = 0, e.nextSeq()
	}
	e.events.push(ev)
}

// ScheduleAfter registers fn to run d cycles after the engine's current
// global time.
func (e *Engine) ScheduleAfter(d uint64, fn func()) {
	e.ScheduleAt(e.now+d, fn)
}

// ScheduleCrossAt registers fn to run at virtual time t on dst, which
// may be another shard of the same cluster. Same-engine (or
// construction-time) registrations are ordinary events; a runtime
// cross-shard registration is queued in the source shard's outbox and
// injected into dst at the epoch barrier, so t must lie beyond the
// current epoch — which the cluster's latency bound (Cluster.Bound)
// guarantees for every modeled interconnect.
//
// Unlike ScheduleAt, a cross registration never shrinks the sending
// coroutine's slice horizon: the outbox path physically cannot (the
// sender keeps running while the message is in flight), so the direct
// path must not either, or the sender's yield/interrupt-poll points —
// and everything downstream of them — would depend on whether the
// destination happens to share the sender's shard.
func (e *Engine) ScheduleCrossAt(dst *Engine, t uint64, fn func()) {
	c := e.cluster
	if dst == e || c == nil || !c.running {
		dst.scheduleEvent(t, fn)
		return
	}
	if c.lookahead == math.MaxUint64 {
		panic("sim: cross-shard event with no registered latency bound")
	}
	if t <= e.until {
		panic(fmt.Sprintf("sim: cross-shard event at %d inside the current epoch (bound %d)", t, e.until))
	}
	//ckvet:allow poolpath sanctioned growth point of the cross-shard outbox; reset by resetLogs at the epoch barrier
	e.outbox = append(e.outbox, crossMsg{at: t, dst: dst, fn: fn})
	//ckvet:allow poolpath sanctioned growth point of the registration log; reset by resetLogs at the epoch barrier
	e.subs = append(e.subs, subRec{kind: subCross, msg: int32(len(e.outbox) - 1)})
}

// newEvent draws an event record from the pool (executed events are
// recycled: immediately when logging is off, at the epoch barrier once
// the action log is done with them when logging is on).
func (e *Engine) newEvent() *event {
	if n := len(e.evFree); n > 0 {
		ev := e.evFree[n-1]
		e.evFree = e.evFree[:n-1]
		return ev
	}
	return &event{}
}

// freeEvent returns an executed event to the pool: on the non-logging
// path right after it fires, on the logging path from resetLogs at the
// epoch barrier (the action log references fired events until then).
func (e *Engine) freeEvent(ev *event) {
	ev.fn = nil
	//ckvet:allow poolpath the pool's own refill point; drained by newEvent, trimmed at barriers
	e.evFree = append(e.evFree, ev)
}

// poolRetain caps the capacity a pooled per-epoch structure keeps
// across epoch barriers. logEpochQuantum bounds an epoch's length in
// virtual time but not its decision count, so one pathological epoch
// can grow the logs arbitrarily; trimming at the barrier bounds what
// such a spike pins for the rest of the run, while steady-state epochs
// (usage above the cap every epoch) keep their high-water buffers and
// never re-allocate.
const poolRetain = 1 << 15

// poolTrimAfter is how many consecutive under-cap epochs a shard must
// see before an over-cap buffer is actually trimmed. Workloads that
// alternate heavy and idle epochs (staggered park phases) would
// otherwise trim on every idle epoch and re-allocate on the next heavy
// one — steady-state allocation churn, the exact thing the pools
// exist to eliminate. A genuine phase change (the heavy epochs are
// over) still releases the memory, just a few barriers later.
const poolTrimAfter = 8

// resetLogs clears the per-epoch logs for reuse and recycles every
// event the action log retained. Only the epoch barrier may call it:
// that is the one point where nothing can still reference a fired
// event — the merge's rank writes into fired events are done, and
// cross-injected events live in destination heaps, not in any log.
func (e *Engine) resetLogs() {
	actsUsed, subsUsed, outboxUsed := len(e.acts), len(e.subs), len(e.outbox)
	for i := range e.acts {
		if e.acts[i].kind == actEvent {
			e.freeEvent(e.acts[i].ev)
		}
	}
	// Zero before truncating so the retained arrays do not pin coros,
	// events or closures beyond the epoch that logged them.
	clear(e.acts)
	e.acts = e.acts[:0]
	clear(e.subs)
	e.subs = e.subs[:0]
	clear(e.outbox)
	e.outbox = e.outbox[:0]
	e.trimPools(actsUsed, subsUsed, outboxUsed)
}

// trimPools applies poolRetain: a structure whose capacity outgrew the
// cap is shrunk once poolTrimAfter consecutive epochs have fit under
// the cap. A workload that logs more than poolRetain entries at least
// every few epochs keeps its buffers.
func (e *Engine) trimPools(actsUsed, subsUsed, outboxUsed int) {
	if actsUsed > poolRetain || subsUsed > poolRetain || outboxUsed > poolRetain {
		e.smallEpochs = 0
		return
	}
	if e.smallEpochs < poolTrimAfter {
		e.smallEpochs++
		return
	}
	if cap(e.acts) > poolRetain {
		e.acts = make([]actRec, 0, poolRetain)
	}
	if cap(e.subs) > poolRetain {
		e.subs = make([]subRec, 0, poolRetain)
	}
	if cap(e.outbox) > poolRetain {
		e.outbox = make([]crossMsg, 0, poolRetain)
	}
	if len(e.evFree) > poolRetain {
		clear(e.evFree[poolRetain:])
		e.evFree = e.evFree[:poolRetain]
	}
}

// ErrMaxSteps reports that Run stopped because the step guard tripped.
var ErrMaxSteps = errors.New("sim: exceeded MaxSteps scheduling decisions")

// gridQuantum is the slice grid: a dispatched coroutine runs until its
// clock crosses the next multiple of gridQuantum (or it parks, or its
// horizon is shrunk by an unpark or event it issued itself). Slice
// boundaries are therefore intrinsic to each coroutine's own charge
// trajectory — never derived from which other entities happen to share
// the engine — which is what makes the schedule identical under any
// sharding of the entities: the engine merely merges intrinsic slices,
// events and activations by (time, id), and that merge commutes with
// partitioning. The grid also bounds how long a non-yielding loop can
// hold the engine, keeping it responsive to MaxSteps.
const gridQuantum = 1 << 16

// Run executes the simulation until no coroutine is runnable and no event
// is pending, or until the next entity's time exceeds until (pass
// math.MaxUint64 for no bound). It returns ErrMaxSteps if the step guard
// trips.
func (e *Engine) Run(until uint64) error {
	e.until = until
	for {
		if e.MaxSteps != 0 && e.steps >= e.MaxSteps {
			return ErrMaxSteps
		}
		e.steps++

		co, coTime := e.peekRunnable()
		evTime := uint64(math.MaxUint64)
		if len(e.events) > 0 {
			evTime = e.events[0].at
		}

		switch {
		case co == nil && evTime == math.MaxUint64:
			return nil
		case evTime <= coTime:
			if evTime > until {
				return nil
			}
			e.runEvent(e.events.pop())
			// Batched drain: run consecutive due events without
			// re-entering the full scheduling decision, for as long as
			// the cheap run-queue bound proves the next event still
			// precedes every runnable coroutine. Stale heap keys only
			// under-estimate a clock (clocks move forward), so the
			// bound is conservative: a miss bounces to the full
			// decision above, never reorders.
			for len(e.events) > 0 {
				next := e.events[0]
				if next.at > until {
					break
				}
				if len(e.runq) > 0 && next.at > e.runq[0].at {
					break
				}
				if e.MaxSteps != 0 && e.steps >= e.MaxSteps {
					return ErrMaxSteps
				}
				e.steps++
				e.runEvent(e.events.pop())
			}
		default:
			if coTime > until {
				return nil
			}
			e.runq.pop()
			horizon := e.horizonFor(coTime)
			e.now = coTime
			e.logDispatch(co, coTime)
			e.resumeCoro(co, horizon)
		}
	}
}

// runEvent executes one due event, logging and recycling as the mode
// requires.
func (e *Engine) runEvent(ev *event) {
	e.now = ev.at
	e.sched++
	if ev.at > e.schedAt {
		e.schedAt = ev.at
	}
	if e.logging {
		//ckvet:allow poolpath sanctioned growth point of the action log; reset by resetLogs at the epoch barrier
		e.acts = append(e.acts, actRec{at: ev.at, ev: ev, sub: int32(len(e.subs)), kind: actEvent})
		ev.fn()
		return
	}
	ev.fn()
	e.freeEvent(ev)
}

// peekRunnable returns the runnable coroutine with the smallest
// (clock, id) key without removing it, or (nil, MaxUint64) if none.
// Stale heap keys — a queued coroutine whose clock moved because it
// shares the clock with another — are repaired lazily here, so the
// reported minimum is always computed over live clock values, exactly
// as the original linear scan did.
func (e *Engine) peekRunnable() (*Coro, uint64) {
	for len(e.runq) > 0 {
		ent := e.runq[0]
		co := ent.co
		if co.done || !co.runnable {
			// Defensive: the engine never leaves such entries behind,
			// but discarding keeps the heap an over-approximation.
			e.runq.pop()
			continue
		}
		if now := co.clock.now; now != ent.at {
			// Clocks only move forward; re-key at the live value.
			e.runq.pop()
			e.runq.push(coroEntry{at: now, co: co})
			continue
		}
		return co, ent.at
	}
	return nil, math.MaxUint64
}

// horizonFor computes how far a coroutine dispatched at coTime may run
// before yielding: the next absolute gridQuantum boundary. The horizon
// deliberately ignores other entities' clocks — capping a slice by a
// neighbour's position would make the yield point (and with it the
// interleaving of side effects at overlapping clock ranges) depend on
// which entities share the engine, breaking shard-count invariance.
// Causality does not need entity capping: any interaction the running
// coroutine initiates (an unpark, a scheduled event) shrinks its own
// horizon at the interaction point, which is intrinsic to its code.
func (e *Engine) horizonFor(coTime uint64) uint64 {
	return coTime - coTime%gridQuantum + gridQuantum
}

// pickDirect evaluates the next scheduling decision from inside a
// yielding coroutine. If that decision resumes a coroutine it performs
// the dispatch bookkeeping (step count, queue pop, virtual time, trace)
// and returns it with its horizon; for anything the engine goroutine
// must handle — a due event, quiescence, the run bound, the step guard —
// it mutates nothing and reports !ok so the yielder bounces control
// back to Run, which re-evaluates identically.
func (e *Engine) pickDirect() (next *Coro, horizon uint64, ok bool) {
	if e.MaxSteps != 0 && e.steps >= e.MaxSteps {
		return nil, 0, false
	}
	co, coTime := e.peekRunnable()
	if co == nil || coTime > e.until {
		return nil, 0, false
	}
	if len(e.events) > 0 && e.events[0].at <= coTime {
		return nil, 0, false
	}
	e.steps++
	e.runq.pop()
	horizon = e.horizonFor(coTime)
	e.now = coTime
	e.logDispatch(co, coTime)
	return co, horizon, true
}

// logDispatch records one dispatch decision. An activation (first
// dispatch since unpark) is a schedule point: it is counted, traced,
// and advances SchedTime. Re-slices are logged too when sharded — the
// barrier merge replays the complete decision sequence, and with
// intrinsic slice boundaries that sequence is identical across shard
// counts — but they are not schedule points.
func (e *Engine) logDispatch(co *Coro, coTime uint64) {
	kind := uint8(actReslice)
	if co.fresh {
		co.fresh = false
		kind = actDispatch
		e.sched++
		if coTime > e.schedAt {
			e.schedAt = coTime
		}
		if e.TraceDispatch != nil {
			e.TraceDispatch(co.name, coTime)
		}
	}
	if e.logging {
		//ckvet:allow poolpath sanctioned growth point of the action log; reset by resetLogs at the epoch barrier
		e.acts = append(e.acts, actRec{at: coTime, co: co, sub: int32(len(e.subs)), kind: kind})
	}
}

// resumeCoro transfers control to co until control bounces back to the
// engine goroutine. With direct handoff, any number of coroutine-to-
// coroutine switches may happen before that; exactly one goroutine is
// ever active, so engine state needs no locking.
func (e *Engine) resumeCoro(co *Coro, horizon uint64) {
	e.current = co
	if !co.started {
		e.startCoro(co)
	}
	co.resume <- horizon
	<-e.yieldCh
	e.current = nil
}

// startCoro launches the coroutine's goroutine. When the body returns,
// the coroutine is removed from the engine's tracked set entirely —
// long-running simulations do not accumulate finished contexts — and
// control bounces to the engine goroutine.
func (e *Engine) startCoro(co *Coro) {
	co.started = true
	//ckvet:allow detmap coroutine goroutines hand off through unbuffered channels; exactly one is ever runnable
	go func() {
		h := <-co.resume
		co.ctx.horizon = h
		co.fn(co.ctx)
		co.done = true
		co.runnable = false
		e.removeCoro(co)
		e.yieldCh <- co
	}()
}

// removeCoro drops a finished coroutine from the live set, preserving
// creation order. Called from the finishing coroutine's goroutine while
// every other goroutine is parked, so no synchronization is needed.
func (e *Engine) removeCoro(co *Coro) {
	for i, c := range e.coros {
		if c == co {
			copy(e.coros[i:], e.coros[i+1:])
			e.coros[len(e.coros)-1] = nil
			e.coros = e.coros[:len(e.coros)-1]
			return
		}
	}
}

// yield suspends the calling coroutine and returns control to the
// scheduler; the coroutine resumes (with a fresh horizon) when next
// scheduled. If the next scheduling decision resumes a coroutine, the
// yielder hands control to it directly — or simply keeps running when
// that coroutine is itself — avoiding the round trip through the engine
// goroutine. Decisions the engine must make (events, bounds, guards)
// bounce back to Run.
func (ctx *Ctx) yield() {
	co := ctx.co
	e := co.eng
	if co.runnable {
		e.runq.push(coroEntry{at: co.clock.now, co: co})
	}
	if next, horizon, ok := e.pickDirect(); ok {
		e.current = next
		if next == co {
			ctx.horizon = horizon
			return
		}
		if !next.started {
			e.startCoro(next)
		}
		next.resume <- horizon
		ctx.horizon = <-co.resume
		return
	}
	e.yieldCh <- co
	ctx.horizon = <-co.resume
}

// Advance charges cycles cycles to the coroutine's current clock, yielding
// to the engine if another entity is now more urgent. This is the
// fundamental cost-charging primitive: every simulated action calls it.
func (ctx *Ctx) Advance(cycles uint64) {
	c := ctx.co.clock
	c.now += cycles
	if c.now > ctx.horizon {
		ctx.yield()
	}
}

// Now reports the coroutine's current clock time.
func (ctx *Ctx) Now() uint64 { return ctx.co.clock.now }

// Coro returns the coroutine the context belongs to.
func (ctx *Ctx) Coro() *Coro { return ctx.co }

// Engine returns the owning engine.
func (ctx *Ctx) Engine() *Engine { return ctx.co.eng }

// Park suspends the calling coroutine until another entity unparks it.
// On resume, the coroutine's clock (which may have been rebound by the
// unparker) is advanced to at least the engine's global time, modeling a
// CPU that was idle until the wakeup.
func (ctx *Ctx) Park() {
	co := ctx.co
	co.runnable = false
	ctx.yield()
	co.clock.AdvanceTo(co.eng.now)
}

// Reschedule forces a yield without charging time, letting equally urgent
// entities interleave at a known point.
func (ctx *Ctx) Reschedule() { ctx.yield() }

// coroEntry is a run-queue element; at is the coroutine's clock value
// when queued (repaired lazily if the clock moves while queued).
type coroEntry struct {
	at uint64
	co *Coro
}

// coroHeap is a min-heap of runnable coroutines ordered by (at, id) —
// the same "smallest clock, creation order breaks ties" rule the
// original linear scan implemented.
type coroHeap []coroEntry

func coroLess(a, b coroEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.co.id < b.co.id
}

func (h *coroHeap) push(ent coroEntry) {
	*h = append(*h, ent)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if coroLess((*h)[i], (*h)[p]) {
			(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
			i = p
		} else {
			break
		}
	}
}

func (h *coroHeap) pop() coroEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = coroEntry{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && coroLess(old[l], old[m]) {
			m = l
		}
		if r < n && coroLess(old[r], old[m]) {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if less((*h)[i], (*h)[p]) {
			(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
			i = p
		} else {
			break
		}
	}
}

func (h *eventHeap) pop() *event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && less(old[l], old[m]) {
			m = l
		}
		if r < n && less(old[r], old[m]) {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

// less orders events by (at, band, seq). Bands only separate at equal
// times in sharded mode, where they reproduce the serial registration
// order: construction (0) before prior-epoch runtime ranks (1) before
// this-epoch shard-local registrations (2) — each band's counter is
// itself monotone in serial registration order. A serial engine uses
// band 0 throughout, so this is exactly the historical (at, seq) rule.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.band != b.band {
		return a.band < b.band
	}
	return a.seq < b.seq
}

// reheap restores the event heap invariant after the barrier re-ranks
// pending events in place.
func (h eventHeap) reheap() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		j := i
		for {
			l, r := 2*j+1, 2*j+2
			m := j
			if l < n && less(h[l], h[m]) {
				m = l
			}
			if r < n && less(h[r], h[m]) {
				m = r
			}
			if m == j {
				break
			}
			h[j], h[m] = h[m], h[j]
			j = m
		}
	}
}

// DebugState renders the engine's coroutine states for diagnostics.
// Finished coroutines are removed from the engine, so only parked and
// runnable ones appear.
func DebugState(e *Engine) string {
	s := ""
	for _, co := range e.coros {
		state := "parked"
		if co.done {
			state = "done"
		} else if co.runnable {
			state = "runnable"
		}
		clk := uint64(0)
		if co.clock != nil {
			clk = co.clock.now
		}
		s += co.name + "=" + state + "@" + u64str(clk) + " "
	}
	if e.current != nil {
		s += "| current=" + e.current.name
	}
	s += "| events=" + u64str(uint64(len(e.events)))
	return s
}

func u64str(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
