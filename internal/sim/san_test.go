//go:build cksan

package sim_test

import (
	"strings"
	"testing"

	"vpp/internal/sim"
)

// mustPanicCksan runs fn and fails unless it panics with a cksan report.
func mustPanicCksan(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a cksan panic, got none")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "cksan:") {
			t.Fatalf("expected a cksan report, got %v", r)
		}
	}()
	fn()
}

// A clock adopted by one shard must not be dispatched on by another:
// the clock is engine-heap state of the shard that owns its CPU.
func TestCksanClockOwnership(t *testing.T) {
	c := sim.NewCluster(2)
	clk := sim.NewClock("cpu0")
	co0 := c.Engine(0).NewCoro("a", func(*sim.Ctx) {})
	c.Engine(0).UnparkOn(co0, clk) // first dispatch binds the owner

	co1 := c.Engine(1).NewCoro("b", func(*sim.Ctx) {})
	mustPanicCksan(t, func() {
		c.Engine(1).UnparkOn(co1, clk)
	})
}

// A shard sitting out an epoch must come out of it untouched: direct
// ScheduleAt on a foreign idle shard bypasses the cross-shard outbox
// and is caught at the epoch boundary fingerprint check.
func TestCksanIdleShardMutation(t *testing.T) {
	c := sim.NewCluster(2)
	c.Engine(0).ScheduleAt(10, func() {
		c.Engine(1).ScheduleAt(1000, func() {}) // wrong: not via ScheduleCrossAt
	})
	mustPanicCksan(t, func() {
		_ = c.Run(5000)
	})
}

// The sanctioned path stays silent: cross-shard effects through
// ScheduleCrossAt under a registered latency bound raise no report.
func TestCksanCrossOutboxClean(t *testing.T) {
	c := sim.NewCluster(2)
	c.Bound(100)
	delivered := false
	e0 := c.Engine(0)
	e0.ScheduleAt(10, func() {
		e0.ScheduleCrossAt(c.Engine(1), 110, func() { delivered = true })
	})
	if err := c.Run(5000); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("cross-shard message not delivered")
	}
}
