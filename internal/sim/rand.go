package sim

// Rand is a small deterministic pseudo-random source (SplitMix64) used by
// workload generators. It exists so simulated behaviour never depends on
// global math/rand state: every workload seeds its own Rand and replays
// identically.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// State reports the generator's internal state so a snapshot can
// capture the exact position of a deterministic stream.
func (r *Rand) State() uint64 { return r.state }

// RestoreState rewinds (or advances) the generator to a previously
// captured State; the next draw continues the captured stream.
func (r *Rand) RestoreState(s uint64) { r.state = s }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
