//go:build cksan

// The cksan runtime ownership sanitizer (DESIGN.md §11). Every clock is
// tagged with the shard that first dispatches on it and every later
// dispatch is checked against the tag; cross-shard messages are checked
// at injection time against the destination's progress (a message
// landing in a shard's past means the latency bound lied); and shards
// idle during an epoch are fingerprinted before and after it, so a
// foreign goroutine scheduling directly onto an idle shard — bypassing
// the ScheduleCrossAt outbox — is caught deterministically at the
// barrier. Mutations of a shard that is itself running are the data
// races the sanitizer CI job's -race flag exists for; cksan covers the
// deterministic remainder. Violations panic with virtual-time-stamped
// provenance rather than limp on into a corrupted schedule.

package sim

import "fmt"

const sanEnabled = true

// sanClockState tags a clock with the shard that owns it: bound at the
// first UnparkOn, checked at every later one.
type sanClockState struct {
	owner *Engine
}

// sanAdoptClock binds c to e on first dispatch and panics when a clock
// owned by one shard is dispatched on by another.
func (e *Engine) sanAdoptClock(c *Clock) {
	switch {
	case c.san.owner == nil:
		c.san.owner = e
	case c.san.owner != e:
		panic(fmt.Sprintf("cksan: t=%d: clock %q owned by shard %d unparked on shard %d",
			e.now, c.name, c.san.owner.shard, e.shard))
	}
}

// sanCheckInject vets a cross-shard message as the barrier injects it
// into its destination heap.
func (c *Cluster) sanCheckInject(msg *crossMsg) {
	dst := msg.dst
	if dst.cluster != c {
		panic(fmt.Sprintf("cksan: t=%d: cross-shard message bound for an engine outside this cluster", msg.at))
	}
	if msg.at < dst.schedAt {
		panic(fmt.Sprintf("cksan: t=%d: cross-shard message injected into shard %d's past (shard already at t=%d): latency bound violated",
			msg.at, dst.shard, dst.schedAt))
	}
}

// sanShardFP fingerprints the schedulable state of one idle shard,
// including its pooled log buffers: an idle shard logs nothing, so its
// action log must stay empty and its event free list untouched for the
// whole epoch.
type sanShardFP struct {
	shard  int
	events int
	runq   int
	acts   int
	subs   int
	outbox int
	evFree int
	seq    uint64
	sched  uint64
}

// sanClusterState holds the fingerprints of the shards sitting out the
// current epoch.
type sanClusterState struct {
	fps []sanShardFP
}

func (c *Cluster) sanFP(i int) sanShardFP {
	e := c.engines[i]
	return sanShardFP{
		shard:  i,
		events: len(e.events),
		runq:   len(e.runq),
		acts:   len(e.acts),
		subs:   len(e.subs),
		outbox: len(e.outbox),
		evFree: len(e.evFree),
		seq:    e.seq,
		sched:  e.sched,
	}
}

// sanEpochBegin asserts every shard's pooled log buffers were fully
// reset by the previous barrier's resetLogs, then fingerprints every
// shard not participating in the epoch (computed after c.ran is built,
// before any worker is released).
func (c *Cluster) sanEpochBegin() {
	for i, e := range c.engines {
		if len(e.acts) != 0 || len(e.subs) != 0 || len(e.outbox) != 0 {
			panic(fmt.Sprintf("cksan: t=%d: shard %d pooled log buffers not reset at epoch begin (acts %d, subs %d, outbox %d): a barrier skipped resetLogs",
				c.Now(), i, len(e.acts), len(e.subs), len(e.outbox)))
		}
	}
	c.san.fps = c.san.fps[:0]
idle:
	for i := range c.engines {
		for _, r := range c.ran {
			if r == i {
				continue idle
			}
		}
		c.san.fps = append(c.san.fps, c.sanFP(i))
	}
}

// sanEpochEnd re-fingerprints the idle shards once the workers have
// joined, before the barrier legally injects cross-shard messages. Any
// difference means state owned by an idle shard was mutated from
// outside it during the epoch.
func (c *Cluster) sanEpochEnd() {
	for _, fp := range c.san.fps {
		if now := c.sanFP(fp.shard); now != fp {
			panic(fmt.Sprintf("cksan: t=%d: idle shard %d mutated during epoch (events %d->%d, runnable %d->%d, acts %d->%d, free events %d->%d, seq %d->%d, sched %d->%d): direct scheduling bypassed the cross-shard outbox",
				c.Now(), fp.shard, fp.events, now.events, fp.runq, now.runq, fp.acts, now.acts, fp.evFree, now.evFree, fp.seq, now.seq, fp.sched, now.sched))
		}
	}
}
