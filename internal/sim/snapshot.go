package sim

import "fmt"

// Snapshot support: the engine's contribution to a whole-machine
// snapshot/fork. Go coroutines cannot be serialized structurally (a
// parked goroutine's stack is opaque), so a structural snapshot is only
// taken when the engine is quiescent — every coroutine has finished and
// no event is pending. At that point the engine's entire state is the
// pair (now, schedAt) plus the monotone clocks hanging off it, and a
// fork restores it by warping a fresh engine forward to the captured
// times. Mid-trace snapshots are handled one level up by the replay
// tier (rebuild the recipe, re-run to the cut).

// Quiescent reports whether the engine has fully drained: no live
// coroutines (finished ones are removed from tracking) and no pending
// events. The returned error names the first live entity, for
// diagnostics when a snapshot is refused.
func (e *Engine) Quiescent() error {
	if n := len(e.coros); n != 0 {
		return fmt.Errorf("sim: engine not quiescent: %d live coroutine(s), first %q", n, e.coros[0].name)
	}
	if n := len(e.events); n != 0 {
		return fmt.Errorf("sim: engine not quiescent: %d pending event(s), next at %d", n, e.events[0].at)
	}
	return nil
}

// Warp advances the engine's idle clocks (now and the schedule-point
// clock) forward to t, as if the engine had already simulated up to
// that time. It is the restore half of a quiescent snapshot: a forked
// machine warps its fresh engines to the parent's captured times so
// continuation work dispatches at the same virtual instant on both.
// Warp never moves time backward and panics if called while a
// coroutine is executing.
func (e *Engine) Warp(t uint64) {
	if e.current != nil {
		panic("sim: Warp while a coroutine is executing")
	}
	if t > e.now {
		e.now = t
	}
	if t > e.schedAt {
		e.schedAt = t
	}
}

// Quiescent reports whether every shard of the cluster has drained; see
// Engine.Quiescent.
func (c *Cluster) Quiescent() error {
	for i, e := range c.engines {
		if err := e.Quiescent(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Warp advances every shard's idle clocks to t; see Engine.Warp.
func (c *Cluster) Warp(t uint64) {
	for _, e := range c.engines {
		e.Warp(t)
	}
}
