package sim

import (
	"math"
)

// Cluster shards one simulation across several engines, each owning a
// disjoint set of clocks and coroutines (in the hardware layer: a group
// of MPMs) and running on its own goroutine. Shards advance
// independently inside virtual-time epochs no longer than the minimum
// cross-shard interaction latency (Bound), so no shard can observe an
// effect from another shard before the epoch barrier at which it is
// delivered. The paper's machine makes this lookahead safe: every
// cross-MPM interaction — a fiber-channel message, an Ethernet frame —
// charges a fixed minimum transit cost from internal/hw/cost.go before
// it can touch another MPM.
//
// Determinism is exact, not just per-run: a cluster reproduces the
// serial engine's schedule byte for byte. Each shard logs its actions
// (event executions and coroutine dispatches) and its runtime
// registrations during the epoch; at the barrier the coordinator merges
// the per-shard logs into the unique serial order — events before
// dispatches at equal times, then band, then rank, exactly the serial
// engine's tie-break — assigns every runtime registration its global
// rank in merge order (reproducing the serial engine's single
// registration counter), injects cross-shard messages into their
// destination heaps, and emits the merged dispatch trace. Shards whose
// interconnects never cross a shard boundary need no barrier at all:
// with no registered bound the epoch spans the whole run and the log is
// skipped entirely, which is the scaling fast path.
type Cluster struct {
	engines []*Engine

	// ctorSeq is the cluster-wide construction-order counter: ids drawn
	// before Run reproduce the single-engine creation order exactly.
	ctorSeq uint64
	running bool

	// lookahead is the minimum registered cross-shard latency in
	// cycles; MaxUint64 means no cross-shard channel exists.
	lookahead uint64

	// grank is the global rank counter for runtime registrations,
	// assigned in merged serial order at each barrier.
	grank uint64

	// trace, when non-nil, receives the merged dispatch schedule — the
	// cluster equivalent of Engine.TraceDispatch.
	trace func(name string, at uint64)

	// MaxSteps bounds total scheduling decisions across all shards, as
	// the serial field does. Zero means no limit.
	MaxSteps uint64

	workers []shardWorker

	// barrier merge scratch (reused across epochs).
	ran     []int
	cursors []int
	subCur  []int
	dirty   []bool

	// Cached per-shard nextTime values: one pass per epoch computes both
	// the epoch start and the participant set, and a shard that sat an
	// epoch out untouched (no injection at the barrier) keeps its value
	// — with many idle shards most of the per-epoch scan disappears.
	next      []uint64
	nextValid []bool

	// san is the runtime ownership sanitizer's epoch state; empty
	// unless built with -tags cksan.
	san sanClusterState
}

// shardWorker drives one engine on a dedicated goroutine so a shard's
// coroutine handoffs always involve the same OS-level owner.
type shardWorker struct {
	req chan uint64
	res chan error
}

// NewCluster returns a cluster of n empty engines. Coroutines and
// events created before Run draw construction-order ids from a shared
// counter, so the serial creation order is preserved across shards.
func NewCluster(n int) *Cluster {
	if n < 1 {
		panic("sim: cluster needs at least one shard")
	}
	c := &Cluster{lookahead: math.MaxUint64}
	for i := 0; i < n; i++ {
		e := NewEngine()
		e.cluster = c
		e.shard = i
		c.engines = append(c.engines, e)
	}
	return c
}

// Engine returns shard i's engine.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// Shards reports the number of shards.
func (c *Cluster) Shards() int { return len(c.engines) }

// Running reports whether Run has started: construction-time freedoms
// (Bound, chaos arming, topology changes) are over once it has.
func (c *Cluster) Running() bool { return c.running }

// Bound registers a cross-shard interaction latency: no effect
// originating in one shard may become visible in another sooner than
// latency cycles after its cause. The epoch length is the minimum over
// all registered bounds. Must be called before Run (interconnect
// topology is construction-time state).
func (c *Cluster) Bound(latency uint64) {
	if c.running {
		panic("sim: Bound after Run")
	}
	if latency == 0 {
		panic("sim: zero cross-shard latency bound")
	}
	if latency < c.lookahead {
		c.lookahead = latency
	}
}

// SetTrace installs the merged dispatch-trace hook (the cluster
// equivalent of Engine.TraceDispatch; per-shard hooks stay nil).
func (c *Cluster) SetTrace(fn func(name string, at uint64)) { c.trace = fn }

// Now reports the cluster's global virtual time: the latest schedule
// point any shard has executed, matching the serial engine's SchedTime.
func (c *Cluster) Now() uint64 {
	var t uint64
	for _, e := range c.engines {
		if e.schedAt > t {
			t = e.schedAt
		}
	}
	return t
}

// Steps reports total schedule points (event executions plus coroutine
// activations) across all shards. Both are properties of the simulated
// schedule, not of its host-side slicing, so the sum matches the serial
// engine's count exactly.
func (c *Cluster) Steps() uint64 {
	var s uint64
	for _, e := range c.engines {
		s += e.sched
	}
	return s
}

// logEpochQuantum caps epoch length on the logged path when no
// cross-shard bound exists, so per-epoch action logs stay bounded.
const logEpochQuantum = 1 << 22

// Run executes the simulation until every shard is quiescent or the
// next entity's time exceeds until. It returns ErrMaxSteps if the
// cluster-wide step guard trips.
func (c *Cluster) Run(until uint64) error {
	if !c.running {
		c.running = true
		// Shard-local runtime counters start past every construction
		// id, as the serial counter would.
		for _, e := range c.engines {
			if e.seq < c.ctorSeq {
				e.seq = c.ctorSeq
			}
		}
	}
	logging := c.trace != nil || c.lookahead != math.MaxUint64
	for _, e := range c.engines {
		e.logging = logging
	}
	// Between Run calls the host may schedule fresh work directly, as it
	// did at construction. Those registrations must not land in the
	// pooled logs — no barrier would ever consume them, so they would
	// sit in the reset-empty buffers as stale growth (the cksan
	// epoch-begin assertion). Disarm logging on every exit; the next Run
	// re-arms it before its first epoch.
	defer func() {
		for _, e := range c.engines {
			e.logging = false
		}
	}()
	if c.next == nil {
		c.next = make([]uint64, len(c.engines))
		c.nextValid = make([]bool, len(c.engines))
	}
	// Anything may have been scheduled between Run calls.
	for i := range c.nextValid {
		c.nextValid[i] = false
	}
	for {
		t := uint64(math.MaxUint64)
		for i, e := range c.engines {
			if !c.nextValid[i] {
				c.next[i] = e.nextTime()
				c.nextValid[i] = true
			}
			if c.next[i] < t {
				t = c.next[i]
			}
		}
		if t == math.MaxUint64 || t > until {
			return nil
		}
		bound := until
		if c.lookahead != math.MaxUint64 && t+c.lookahead-1 < bound {
			bound = t + c.lookahead - 1
		}
		if logging && bound-t > logEpochQuantum {
			bound = t + logEpochQuantum
		}

		// Dispatch the epoch to every shard with work inside it, then
		// wait for all of them: the barrier. Budgets are armed for every
		// participant before the first dispatch — budget() reads all
		// shards' step counters, which must not happen while a worker is
		// already advancing its engine.
		c.ran = c.ran[:0]
		for i := range c.engines {
			if c.next[i] > bound {
				continue
			}
			//ckvet:allow poolpath sanctioned growth point of the epoch participant scratch; reset at the top of every epoch
			c.ran = append(c.ran, i)
			// A participant's position changes during the epoch.
			c.nextValid[i] = false
		}
		for _, i := range c.ran {
			c.budget(c.engines[i])
		}
		c.sanEpochBegin()
		var maxed error
		if len(c.ran) == 1 {
			// One active shard means nothing runs concurrently: drive it
			// inline on the coordinator goroutine and skip both channel
			// round-trips. With idle shards common (a quiet 64-MPM
			// topology) this is the usual epoch shape.
			maxed = c.engines[c.ran[0]].Run(bound)
		} else {
			c.startWorkers()
			for _, i := range c.ran {
				c.workers[i].req <- bound
			}
			for _, i := range c.ran {
				if err := <-c.workers[i].res; err != nil {
					maxed = err
				}
			}
		}
		c.sanEpochEnd()
		if logging {
			c.barrier()
			// Barrier injections land in idle shards' heaps.
			for i := range c.engines {
				if c.dirty[i] {
					c.nextValid[i] = false
				}
			}
		}
		if maxed != nil {
			return maxed
		}
	}
}

// budget arms a shard's step guard with the cluster-wide remainder. A
// shard may consume the whole remainder in one epoch, so the guard is a
// runaway bound within a factor of the shard count, like the serial
// guard is within one quantum.
func (c *Cluster) budget(e *Engine) {
	if c.MaxSteps == 0 {
		e.MaxSteps = 0
		return
	}
	var total uint64
	for _, s := range c.engines {
		total += s.steps
	}
	rem := uint64(0)
	if c.MaxSteps > total {
		rem = c.MaxSteps - total
	}
	e.MaxSteps = e.steps + rem
}

// startWorkers launches one persistent goroutine per shard; each
// engine is only ever driven by its own worker. Called lazily, on the
// first epoch with two or more active shards: a cluster whose epochs
// are all single-shard (or a one-shard cluster) runs entirely on the
// coordinator goroutine and never spawns a worker. Handing an engine
// between the coordinator and its worker is ordered by the req/res
// channel operations.
func (c *Cluster) startWorkers() {
	if c.workers != nil {
		return
	}
	for _, e := range c.engines {
		w := shardWorker{req: make(chan uint64), res: make(chan error)}
		c.workers = append(c.workers, w)
		e := e
		//ckvet:allow detmap shard workers advance disjoint engines inside an epoch; the barrier merge restores the serial order exactly
		go func() {
			for bound := range w.req {
				w.res <- e.Run(bound)
			}
		}()
	}
}

// actKey extracts an action's serial-order key: entity time, then
// class (events run before dispatches at equal times, the serial
// engine's evTime <= coTime rule), then band and in-band rank. Band and
// rank cells are always filled by the time the action can become a
// shard's merge head: the registration that determines them is either
// construction-time, was ranked at a previous barrier, or sits earlier
// in the same shard's log and was therefore consumed first.
//
// Keys are compared only between shard HEADS: within a shard, the log
// is consumed strictly in order, because it already is the serial order
// restricted to that shard's entities. The head-merge reproduces the
// serial engine's complete decision sequence: the serial engine's next
// decision is always some shard's log head, and no other shard's head
// can key below it — an entry that would (say a just-woken coroutine on
// a stale clock, whose raw time lies in the past) sits behind its
// waker's slice in its own shard's log and only surfaces once the
// serial order reaches it.
func actKey(a *actRec) (at uint64, cls uint8, band uint8, rank uint64) {
	if a.kind == actEvent {
		return a.at, 0, a.ev.band, a.ev.seq
	}
	return a.at, 1, a.co.band, a.co.gid
}

// lessKey is the serial engine's global tie-break over actKey tuples.
func lessKey(at1 uint64, cls1, band1 uint8, rank1 uint64,
	at2 uint64, cls2, band2 uint8, rank2 uint64) bool {
	if at1 != at2 {
		return at1 < at2
	}
	if cls1 != cls2 {
		return cls1 < cls2
	}
	if band1 != band2 {
		return band1 < band2
	}
	return rank1 < rank2
}

// barrier merges the epoch's per-shard action logs into the serial
// global order, assigning every runtime registration its global rank at
// its merge position (reproducing the serial engine's registration
// counter), injecting cross-shard messages into their destination
// heaps, and emitting the merged dispatch trace.
func (c *Cluster) barrier() {
	n := len(c.engines)
	if c.cursors == nil {
		c.cursors = make([]int, n)
		c.subCur = make([]int, n)
		c.dirty = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		c.cursors[i], c.subCur[i], c.dirty[i] = 0, 0, false
	}
	// Registrations logged before any action of the epoch come from a
	// coroutine slice continuing across the boundary (its activation was
	// logged in a prior epoch). Rank them first, in shard order.
	for s, e := range c.engines {
		end := len(e.subs)
		if len(e.acts) > 0 {
			end = int(e.acts[0].sub)
		}
		c.consumeSubs(e, s, end)
	}
	for {
		best := -1
		var bAt, bRank uint64
		var bCls, bBand uint8
		for s, e := range c.engines {
			k := c.cursors[s]
			if k >= len(e.acts) {
				continue
			}
			at, cls, band, rank := actKey(&e.acts[k])
			if best == -1 || lessKey(at, cls, band, rank, bAt, bCls, bBand, bRank) {
				best, bAt, bCls, bBand, bRank = s, at, cls, band, rank
			}
		}
		if best == -1 {
			break
		}
		c.consumeAction(best)
	}
	for s, e := range c.engines {
		// A trailing slice may also register after its epoch's last
		// logged action; rank those at the barrier, in shard order.
		c.consumeSubs(e, s, len(e.subs))
	}
	// All injections are done: now every fired event is unreferenced and
	// the logs can recycle (resetLogs), and every destination heap that
	// received ranks or injections can be restored in one pass.
	for s, e := range c.engines {
		e.resetLogs()
		if c.dirty[s] {
			e.events.reheap()
		}
	}
}

// PoolStat reports one shard's pooled hot-path buffers: the per-epoch
// logs (zero entries between epochs — resetLogs runs at every barrier)
// and the event free list. Capacities are bounded by poolRetain once an
// epoch's usage fits under it; cksan asserts the reset invariant at
// every epoch begin, and tests assert it between runs.
type PoolStat struct {
	Shard                       int
	Acts, Subs, Outbox          int
	ActsCap, SubsCap, OutboxCap int
	FreeEvents                  int
}

// PoolStats snapshots every shard's pooled-buffer state. Only valid
// between Run calls or at a barrier (no worker may be advancing).
func (c *Cluster) PoolStats() []PoolStat {
	out := make([]PoolStat, len(c.engines))
	for i, e := range c.engines {
		out[i] = PoolStat{
			Shard:   i,
			Acts:    len(e.acts),
			Subs:    len(e.subs),
			Outbox:  len(e.outbox),
			ActsCap: cap(e.acts), SubsCap: cap(e.subs), OutboxCap: cap(e.outbox),
			FreeEvents: len(e.evFree),
		}
	}
	return out
}

// consumeAction consumes shard s's next logged action: updates global
// time, emits the trace record, and ranks the registrations the action
// made.
func (c *Cluster) consumeAction(s int) {
	e := c.engines[s]
	a := &e.acts[c.cursors[s]]
	c.cursors[s]++
	if a.kind == actDispatch && c.trace != nil {
		c.trace(a.co.name, a.at)
	}
	end := len(e.subs)
	if c.cursors[s] < len(e.acts) {
		end = int(e.acts[c.cursors[s]].sub)
	}
	c.consumeSubs(e, s, end)
}

// consumeSubs ranks shard s's logged registrations up to index end at
// the current merge position: each gets the next global rank, and
// cross-shard messages are injected into their destination heaps.
func (c *Cluster) consumeSubs(e *Engine, s, end int) {
	for ; c.subCur[s] < end; c.subCur[s]++ {
		sub := &e.subs[c.subCur[s]]
		c.grank++
		switch sub.kind {
		case subCoro:
			sub.co.band, sub.co.gid = 1, c.grank
		case subEvent:
			// Harmless if the event already fired this epoch: the
			// rank cell is then only read for merge comparisons
			// already past.
			sub.ev.band, sub.ev.seq = 1, c.grank
			c.dirty[s] = true
		case subCross:
			msg := &e.outbox[sub.msg]
			c.sanCheckInject(msg)
			dst := msg.dst
			ev := dst.newEvent()
			ev.at, ev.fn, ev.band, ev.seq = msg.at, msg.fn, 1, c.grank
			dst.events = append(dst.events, ev)
			c.dirty[dst.shard] = true
			msg.fn = nil
		}
	}
}
