package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// clusterScenario builds one simulation over a variable shard count and
// renders a fingerprint of everything observable: the merged dispatch
// trace, every event firing (collected per shard, so recording is free
// of cross-goroutine writes, then merged by unique virtual time), and
// the final clock and step count. Each edge-case test asserts the
// fingerprint is byte-identical across shard counts — the cluster's
// core contract.
type clusterScenario struct {
	c     *Cluster
	trace []string
	recs  [][]string // per shard: "label@time", times unique by design
}

func newClusterScenario(shards int) *clusterScenario {
	s := &clusterScenario{c: NewCluster(shards), recs: make([][]string, shards)}
	s.c.SetTrace(func(name string, at uint64) {
		s.trace = append(s.trace, fmt.Sprintf("%s@%d", name, at))
	})
	return s
}

// rec returns a recorder confined to shard i's timeline.
func (s *clusterScenario) rec(i int, label string, at uint64) {
	s.recs[i] = append(s.recs[i], fmt.Sprintf("%s@%d", label, at))
}

func (s *clusterScenario) fingerprint(t *testing.T) string {
	t.Helper()
	if err := s.c.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, r := range s.recs {
		all = append(all, r...)
	}
	// Order by (time, label): the relative order of equal-time records
	// on different shards is not observable from inside the recorders,
	// so the fingerprint must not depend on it.
	sort.Slice(all, func(i, j int) bool {
		li, ti, _ := strings.Cut(all[i], "@")
		lj, tj, _ := strings.Cut(all[j], "@")
		if len(ti) != len(tj) {
			return len(ti) < len(tj)
		}
		if ti != tj {
			return ti < tj
		}
		return li < lj
	})
	return fmt.Sprintf("trace:%s\nrecs:%s\nnow:%d steps:%d",
		strings.Join(s.trace, " "), strings.Join(all, " "), s.c.Now(), s.c.Steps())
}

// shardOf picks the owning engine, clamping to the shard count so the
// same build code runs one-sharded and many-sharded.
func (s *clusterScenario) shardOf(i int) *Engine {
	return s.c.Engine(i % s.c.Shards())
}

// tickChain schedules a self-rescheduling event chain on shard i: n
// firings spaced step cycles apart, starting at t0. Chains are how the
// scenarios keep a shard busy across many epochs without relying on
// coroutine slice lengths.
func (s *clusterScenario) tickChain(i int, label string, t0, step uint64, n int) {
	e := s.shardOf(i)
	var tick func()
	left := n
	at := t0
	tick = func() {
		s.rec(i%s.c.Shards(), label, at)
		left--
		if left > 0 {
			at += step
			e.ScheduleAt(at, tick)
		}
	}
	e.ScheduleAt(t0, tick)
}

// TestClusterEmptyShard: a shard with no entities at all must neither
// stall the barrier nor perturb the merged order.
func TestClusterEmptyShard(t *testing.T) {
	build := func(shards int) *clusterScenario {
		s := newClusterScenario(shards)
		s.c.Bound(1000)
		// Shards 0 and 2 get work; shard 1 (when present) stays empty.
		s.tickChain(0, "a", 100, 700, 10)
		s.tickChain(2, "b", 350, 900, 8)
		return s
	}
	serial := build(1).fingerprint(t)
	sharded := build(3).fingerprint(t)
	if serial != sharded {
		t.Fatalf("empty-shard run diverges:\nserial:  %s\nsharded: %s", serial, sharded)
	}
}

// TestClusterShardFinishesMidEpoch: one shard goes quiescent partway
// through an epoch while its peer keeps running for many more epochs;
// the finished shard must simply drop out of subsequent epochs.
func TestClusterShardFinishesMidEpoch(t *testing.T) {
	build := func(shards int) *clusterScenario {
		s := newClusterScenario(shards)
		s.c.Bound(1000)
		e := s.shardOf(1)
		clk := NewClock("short")
		co := e.NewCoro("short", func(ctx *Ctx) {
			ctx.Advance(450) // parks forever mid-first-epoch
			s.rec(1%shards, "done", ctx.Now())
		})
		e.UnparkOn(co, clk)
		s.tickChain(0, "long", 10, 800, 12) // ~10 epochs of work
		return s
	}
	serial := build(1).fingerprint(t)
	sharded := build(2).fingerprint(t)
	if serial != sharded {
		t.Fatalf("mid-epoch finish diverges:\nserial:  %s\nsharded: %s", serial, sharded)
	}
}

// TestClusterZeroLatencySameShardDelivery: a coroutine scheduling an
// event at its own current instant (zero delay, same shard) must see it
// fire at exactly that virtual time, sharded or not. Same-shard traffic
// is exempt from the cross-shard latency bound.
func TestClusterZeroLatencySameShardDelivery(t *testing.T) {
	build := func(shards int) *clusterScenario {
		s := newClusterScenario(shards)
		s.c.Bound(1000)
		e := s.shardOf(1)
		clk := NewClock("zero")
		co := e.NewCoro("zero", func(ctx *Ctx) {
			ctx.Advance(300)
			at := ctx.Now()
			ctx.Engine().ScheduleAt(at, func() { s.rec(1%shards, "fire", at) })
			ctx.Advance(300)
			s.rec(1%shards, "after", ctx.Now())
		})
		e.UnparkOn(co, clk)
		s.tickChain(0, "bg", 50, 900, 6)
		return s
	}
	serial := build(1).fingerprint(t)
	sharded := build(2).fingerprint(t)
	if serial != sharded {
		t.Fatalf("zero-latency delivery diverges:\nserial:  %s\nsharded: %s", serial, sharded)
	}
	if !strings.Contains(sharded, "fire@300") {
		t.Fatalf("zero-delay event did not fire at its scheduling instant: %s", sharded)
	}
}

// TestClusterInboxOnEpochBoundary: a cross-shard message whose delivery
// time is exactly cause + bound lands on the first cycle after the
// sending epoch — the boundary case of the lookahead rule. It must be
// injected at the barrier and fire at its exact virtual time, merged in
// the same position the serial engine runs it.
func TestClusterInboxOnEpochBoundary(t *testing.T) {
	const bound = 1000
	build := func(shards int) *clusterScenario {
		s := newClusterScenario(shards)
		s.c.Bound(bound)
		src, dst := s.shardOf(0), s.shardOf(1)
		clk := NewClock("sender")
		co := src.NewCoro("sender", func(ctx *Ctx) {
			at := ctx.Now() + bound // exactly the minimum legal distance
			ctx.Engine().ScheduleCrossAt(dst, at, func() { s.rec(1%shards, "inbox", at) })
			ctx.Advance(50)
		})
		src.UnparkOn(co, clk)
		// Competing local activity around the delivery instant on both
		// shards, so a mis-merged injection changes the fingerprint.
		s.tickChain(0, "s0", 500, 250, 6)
		s.tickChain(1, "s1", 600, 200, 8)
		return s
	}
	serial := build(1).fingerprint(t)
	sharded := build(2).fingerprint(t)
	if serial != sharded {
		t.Fatalf("boundary inbox diverges:\nserial:  %s\nsharded: %s", serial, sharded)
	}
	if !strings.Contains(sharded, "inbox@1000") {
		t.Fatalf("boundary message did not fire at cause+bound: %s", sharded)
	}
}
