//go:build !cksan

package sim

// Without the cksan build tag the ownership sanitizer compiles to
// nothing: empty state structs and no-op hooks the compiler erases.
// See san_on.go for what the hooks enforce.

const sanEnabled = false

// sanClockState is the per-clock ownership tag; empty when disabled.
type sanClockState struct{}

// sanClusterState is the per-cluster epoch fingerprint store; empty
// when disabled.
type sanClusterState struct{}

func (e *Engine) sanAdoptClock(c *Clock) {}

func (c *Cluster) sanCheckInject(msg *crossMsg) {}

func (c *Cluster) sanEpochBegin() {}

func (c *Cluster) sanEpochEnd() {}
