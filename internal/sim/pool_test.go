package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// The pooled hot path recycles actRec logs, cross-shard outboxes and
// event nodes across epochs. These tests attack the one way pooling can
// go wrong — stale bytes from a previous epoch or a previous run
// leaking into the schedule — and the retention policy that keeps the
// pools bounded.

// renderObs renders only what the simulation can observe (merged
// dispatch trace plus the per-shard records), excluding now/steps so
// runs on clusters with different histories are comparable.
func renderObs(s *clusterScenario) string {
	var all []string
	for _, r := range s.recs {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool {
		li, ti, _ := strings.Cut(all[i], "@")
		lj, tj, _ := strings.Cut(all[j], "@")
		if len(ti) != len(tj) {
			return len(ti) < len(tj)
		}
		if ti != tj {
			return ti < tj
		}
		return li < lj
	})
	return fmt.Sprintf("trace:%s\nrecs:%s", strings.Join(s.trace, " "), strings.Join(all, " "))
}

const poolTestBound = 1000

// crossRing schedules a relay of cross-shard events over four shard
// slots: each hop records itself and forwards to the next slot one
// latency bound later. On fewer shards the slots fold onto the same
// engines (the direct path), so the ring exercises both delivery paths.
func crossRing(s *clusterScenario, label string, t0 uint64, hops int) {
	var hop func(slot int, at uint64, left int)
	hop = func(slot int, at uint64, left int) {
		s.rec(slot%s.c.Shards(), fmt.Sprintf("%s%d", label, slot), at)
		if left == 0 {
			return
		}
		next := (slot + 1) % 4
		s.shardOf(slot).ScheduleCrossAt(s.shardOf(next), at+poolTestBound, func() {
			hop(next, at+poolTestBound, left-1)
		})
	}
	s.shardOf(0).ScheduleAt(t0, func() { hop(0, t0, hops) })
}

// buildPoolPhase loads every pooled structure: dense local tick chains
// (action log, event free list) plus cross rings (outboxes) on all four
// shard slots.
func buildPoolPhase(s *clusterScenario, label string, t0 uint64) {
	for i := 0; i < 4; i++ {
		s.tickChain(i, fmt.Sprintf("%st%d", label, i), t0+uint64(i)*137+1, 773, 40)
	}
	crossRing(s, label+"r", t0+11, 24)
	crossRing(s, label+"q", t0+503, 24)
}

// TestPooledBuffersDirtyReuse runs a workload on a cluster whose pools
// are saturated with a previous run's recycled buffers and compares
// every observable against a pristine cluster running only that
// workload at the same virtual times. Any stale byte surviving the
// barrier resets would shift the schedule.
func TestPooledBuffersDirtyReuse(t *testing.T) {
	const phase2At = 400_000
	for _, shards := range []int{1, 4} {
		dirty := newClusterScenario(shards)
		dirty.c.Bound(poolTestBound)
		buildPoolPhase(dirty, "p1", 1)
		if err := dirty.c.Run(math.MaxUint64); err != nil {
			t.Fatalf("shards=%d poison run: %v", shards, err)
		}
		poisoned := false
		for _, st := range dirty.c.PoolStats() {
			if st.FreeEvents > 0 {
				poisoned = true
			}
		}
		if !poisoned {
			t.Fatalf("shards=%d: poison phase recycled no events; the test exercises nothing", shards)
		}
		dirty.trace = nil
		for i := range dirty.recs {
			dirty.recs[i] = nil
		}
		buildPoolPhase(dirty, "p2", phase2At)
		if err := dirty.c.Run(math.MaxUint64); err != nil {
			t.Fatalf("shards=%d dirty run: %v", shards, err)
		}

		fresh := newClusterScenario(shards)
		fresh.c.Bound(poolTestBound)
		buildPoolPhase(fresh, "p2", phase2At)
		if err := fresh.c.Run(math.MaxUint64); err != nil {
			t.Fatalf("shards=%d fresh run: %v", shards, err)
		}
		if got, want := renderObs(dirty), renderObs(fresh); got != want {
			t.Fatalf("shards=%d: dirty-pool run diverges from fresh engine:\ndirty: %s\nfresh: %s",
				shards, got, want)
		}
	}
}

// TestPoolStatsResetBetweenRuns: every per-epoch structure must be
// empty once Run returns — the same invariant cksan asserts at every
// epoch begin, visible here through the stats lens.
func TestPoolStatsResetBetweenRuns(t *testing.T) {
	s := newClusterScenario(4)
	s.c.Bound(poolTestBound)
	buildPoolPhase(s, "w", 1)
	if err := s.c.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	for _, st := range s.c.PoolStats() {
		if st.Acts != 0 || st.Subs != 0 || st.Outbox != 0 {
			t.Fatalf("shard %d: pooled buffers not reset after Run: acts=%d subs=%d outbox=%d",
				st.Shard, st.Acts, st.Subs, st.Outbox)
		}
	}
}

// TestPoolSpikeThenTrim: one epoch logging far more than poolRetain
// must not pin that capacity forever — after poolTrimAfter quiet
// epochs the logs and the event free list shrink back under the cap.
func TestPoolSpikeThenTrim(t *testing.T) {
	s := newClusterScenario(2)
	const bound = 100_000
	s.c.Bound(bound)
	e := s.c.Engine(0)
	// Spike: 3x the retention cap in events, all within the first epoch
	// window, so at least one epoch logs well past poolRetain.
	for i := 0; i < 3*poolRetain; i++ {
		e.ScheduleAt(uint64(1+i%(bound-2)), func() {})
	}
	// Quiet tail: one action per epoch for longer than the trim patience.
	s.tickChain(0, "q", 2*bound, bound, poolTrimAfter+4)
	if err := s.c.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	st := s.c.PoolStats()[0]
	if st.ActsCap > poolRetain {
		t.Fatalf("action log capacity %d still above poolRetain %d after %d quiet epochs",
			st.ActsCap, poolRetain, poolTrimAfter+4)
	}
	if st.FreeEvents > poolRetain {
		t.Fatalf("event free list holds %d nodes, above poolRetain %d", st.FreeEvents, poolRetain)
	}
	if st.Acts != 0 || st.Outbox != 0 {
		t.Fatalf("pooled buffers not reset after Run: acts=%d outbox=%d", st.Acts, st.Outbox)
	}
}

// TestStepPathZeroAlloc is the headline hot-path claim as a hard test:
// steady-state engine stepping with no trace installed performs zero
// heap allocations per scheduling decision.
func TestStepPathZeroAlloc(t *testing.T) {
	if raceEnabled || sanEnabled {
		t.Skip("allocation counts are meaningless under -race / cksan instrumentation")
	}
	e := NewEngine()
	for i := 0; i < 8; i++ {
		clk := NewClock("c")
		co := e.NewCoro("w", func(ctx *Ctx) {
			for {
				ctx.Advance(10)
				ctx.Reschedule()
			}
		})
		e.UnparkOn(co, clk)
	}
	e.MaxSteps = 1 << 12
	_ = e.Run(math.MaxUint64) // warm: runq and handoff structures reach steady state
	avg := testing.AllocsPerRun(16, func() {
		e.MaxSteps += 256
		_ = e.Run(math.MaxUint64)
	})
	if avg != 0 {
		t.Fatalf("engine step path allocates: %.2f allocs per 256-step run, want 0", avg)
	}
}

// TestEpochBarrierZeroAlloc: the sharded logged path — action logging,
// barrier merge, epoch dispatch — must also be allocation-free once the
// pools are warm.
func TestEpochBarrierZeroAlloc(t *testing.T) {
	if raceEnabled || sanEnabled {
		t.Skip("allocation counts are meaningless under -race / cksan instrumentation")
	}
	c := NewCluster(2)
	c.Bound(512)
	for s := 0; s < 2; s++ {
		e := c.Engine(s)
		at := uint64(s + 1)
		var tick func()
		tick = func() {
			at += 512
			e.ScheduleAt(at, tick)
		}
		e.ScheduleAt(at, tick)
	}
	c.MaxSteps = 1 << 12
	_ = c.Run(math.MaxUint64) // warm: pools, worker channels, next-time cache
	avg := testing.AllocsPerRun(16, func() {
		c.MaxSteps += 256
		_ = c.Run(math.MaxUint64)
	})
	if avg != 0 {
		t.Fatalf("epoch barrier path allocates: %.2f allocs per 256-step run, want 0", avg)
	}
}

// TestPoolCrossTrafficStress drives sustained cross-shard traffic over
// every shard pair concurrently — the -race job's target for the
// per-shard pools — and asserts shard-count invariance of the result.
func TestPoolCrossTrafficStress(t *testing.T) {
	build := func(shards int) *clusterScenario {
		s := newClusterScenario(shards)
		s.c.Bound(poolTestBound)
		for r := 0; r < 6; r++ {
			crossRing(s, fmt.Sprintf("r%d", r), uint64(1+r*211), 30)
		}
		for i := 0; i < 4; i++ {
			s.tickChain(i, fmt.Sprintf("t%d", i), uint64(17+i*97), 509, 60)
		}
		return s
	}
	serial := build(1).fingerprint(t)
	for _, shards := range []int{2, 4} {
		if got := build(shards).fingerprint(t); got != serial {
			t.Fatalf("cross-traffic run diverges at %d shards:\nserial: %s\nsharded: %s",
				shards, serial, got)
		}
	}
}
