package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleCoroAdvances(t *testing.T) {
	e := NewEngine()
	clk := NewClock("cpu0")
	var end uint64
	co := e.NewCoro("worker", func(ctx *Ctx) {
		for i := 0; i < 10; i++ {
			ctx.Advance(5)
		}
		end = ctx.Now()
	})
	e.UnparkOn(co, clk)
	if err := e.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if end != 50 {
		t.Fatalf("end time = %d, want 50", end)
	}
	if !co.Done() {
		t.Fatal("coro not done")
	}
}

func TestTwoClocksInterleaveByTime(t *testing.T) {
	e := NewEngine()
	fast := NewClock("fast")
	slow := NewClock("slow")
	var order []string
	mk := func(name string, cost uint64, clk *Clock) {
		co := e.NewCoro(name, func(ctx *Ctx) {
			for i := 0; i < 4; i++ {
				ctx.Advance(cost)
				order = append(order, name)
			}
		})
		e.UnparkOn(co, clk)
	}
	mk("a", 10, fast)
	mk("b", 25, slow)
	if err := e.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	// Both coros fit inside one grid slice, so each runs its slice to
	// completion in activation order: slice boundaries are intrinsic to
	// each coroutine's own trajectory, never induced by a neighbour's
	// clock (that coupling would make the interleaving depend on which
	// entities share the engine, breaking shard-count invariance).
	want := []string{"a", "a", "a", "a", "b", "b", "b", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	c0 := NewClock("cpu0")
	c1 := NewClock("cpu1")
	var got uint64
	sleeper := e.NewCoro("sleeper", func(ctx *Ctx) {
		ctx.Park()
		got = ctx.Now()
	})
	waker := e.NewCoro("waker", func(ctx *Ctx) {
		ctx.Advance(100)
		c1.AdvanceTo(ctx.Now())
		ctx.Engine().UnparkOn(sleeper, c1)
	})
	e.UnparkOn(sleeper, c1)
	e.UnparkOn(waker, c0)
	if err := e.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if got < 100 {
		t.Fatalf("sleeper woke at %d, want >= 100", got)
	}
}

func TestEventsFireInOrder(t *testing.T) {
	e := NewEngine()
	var fired []uint64
	e.ScheduleAt(30, func() { fired = append(fired, 30) })
	e.ScheduleAt(10, func() { fired = append(fired, 10) })
	e.ScheduleAt(20, func() { fired = append(fired, 20) })
	e.ScheduleAt(10, func() { fired = append(fired, 11) }) // same time, later seq
	if err := e.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 11, 20, 30}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEventInterleavesWithCoro(t *testing.T) {
	e := NewEngine()
	clk := NewClock("cpu0")
	var at uint64
	e.ScheduleAt(15, func() { at = e.Now() })
	var atDuringSlice uint64
	co := e.NewCoro("w", func(ctx *Ctx) {
		ctx.Advance(20) // crosses 15 inside one slice; no induced yield
		atDuringSlice = at
	})
	e.UnparkOn(co, clk)
	if err := e.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	// A pending event does not split a running slice: the coroutine was
	// activated at time 0, before the event's time, so the whole slice
	// orders before it. The event still fires at its own time once the
	// engine regains control.
	if atDuringSlice != 0 {
		t.Fatalf("event fired inside the slice (saw at=%d)", atDuringSlice)
	}
	if at != 15 {
		t.Fatalf("event fired at %d, want 15", at)
	}
}

// TestEventSplitsOwnSchedulersSlice pins the intrinsic-yield rule: when
// the running coroutine itself schedules an event below its horizon,
// the shrink point comes from its own code, so yielding there is
// deterministic under any sharding — and the event fires before the
// coroutine passes it.
func TestEventSplitsOwnSchedulersSlice(t *testing.T) {
	e := NewEngine()
	clk := NewClock("cpu0")
	var at uint64
	var sawEventBefore bool
	co := e.NewCoro("w", func(ctx *Ctx) {
		ctx.Advance(10)
		e.ScheduleAt(15, func() { at = e.Now() })
		ctx.Advance(10) // crosses 15; must yield so the event fires at 15
		sawEventBefore = at == 15
	})
	e.UnparkOn(co, clk)
	if err := e.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if !sawEventBefore {
		t.Fatalf("event fired at %d, want 15 before coro passed it", at)
	}
}

func TestRunUntilBound(t *testing.T) {
	e := NewEngine()
	clk := NewClock("cpu0")
	n := 0
	co := e.NewCoro("w", func(ctx *Ctx) {
		for {
			ctx.Advance(10)
			n++
		}
	})
	e.UnparkOn(co, clk)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	// The bound gates slice starts, not slice contents: the coroutine
	// activated at 0 runs its whole first grid slice, then the next
	// slice would start past 100 and Run returns.
	if n != 6553 {
		t.Fatalf("ran %d steps, want one full grid slice (6553)", n)
	}
	if e.Now() > 100 {
		t.Fatalf("Now = %d after Run(100), want a schedule point <= 100", e.Now())
	}
}

func TestMaxStepsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxSteps = 50
	clk := NewClock("cpu0")
	co := e.NewCoro("spin", func(ctx *Ctx) {
		for {
			ctx.Advance(1)
			ctx.Reschedule()
		}
	})
	e.UnparkOn(co, clk)
	if err := e.Run(math.MaxUint64); err != ErrMaxSteps {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestUnparkRunnablePanics(t *testing.T) {
	e := NewEngine()
	clk := NewClock("cpu0")
	co := e.NewCoro("w", func(ctx *Ctx) {})
	e.UnparkOn(co, clk)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.UnparkOn(co, clk)
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var trace []int
		for i := 0; i < 8; i++ {
			i := i
			clk := NewClock("cpu")
			co := e.NewCoro("w", func(ctx *Ctx) {
				for j := 0; j < 5; j++ {
					ctx.Advance(uint64(3 + i%4))
					trace = append(trace, i)
				}
			})
			e.UnparkOn(co, clk)
		}
		if err := e.Run(math.MaxUint64); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestClockNeverMovesBackward(t *testing.T) {
	c := NewClock("x")
	c.AdvanceTo(100)
	c.AdvanceTo(50)
	if c.Now() != 100 {
		t.Fatalf("clock = %d, want 100", c.Now())
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRandIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 32; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		p := NewRand(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var h eventHeap
		for i, tm := range times {
			h.push(&event{at: uint64(tm), seq: uint64(i)})
		}
		prev := uint64(0)
		for len(h) > 0 {
			ev := h.pop()
			if ev.at < prev {
				return false
			}
			prev = ev.at
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
