// Package chaos is the deterministic fault-injection engine for the
// Cache Kernel reproduction. A Plan schedules typed faults — a Cache
// Kernel crash-reboot, lost or duplicated inter-processor signals,
// corrupted descriptor writebacks, lost/duplicated/delayed wire frames,
// transient page-table walk errors — as virtual-time events through the
// narrow hooks the hardware and Cache Kernel expose. Everything is
// driven by the virtual clock and a seeded PRNG (sim.Rand), so a given
// plan and seed produce the identical fault sequence on every run: a
// crash test is as replayable as any other workload.
//
// The zero plan installs no hooks at all; an unarmed or empty injector
// leaves every simulated run byte-identical to one without the package.
package chaos

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/sim"
)

// Kind is a fault type.
type Kind int

const (
	// CrashKernel crash-reboots a Cache Kernel instance at Fault.At: the
	// MPM's caches and descriptors vanish and its running execution
	// contexts die, exercising the recovery machinery (paper §3).
	CrashKernel Kind = iota
	// DropSignal loses an inter-processor signal delivery.
	DropSignal
	// DupSignal delivers a signal twice.
	DupSignal
	// CorruptWriteback loses a descriptor writeback (the owning kernel
	// never receives the state — a corrupted transfer discarded by the
	// receiver).
	CorruptWriteback
	// DropFrame loses a transmitted Ethernet frame or fiber message.
	DropFrame
	// DupFrame delivers a frame twice.
	DupFrame
	// DelayFrame adds Fault.Delay cycles of delivery latency (a device
	// timeout from the receiver's point of view).
	DelayFrame
	// WalkError makes a hardware page-table walk fail transiently; the
	// walk is charged and retried from the root.
	WalkError
)

// String names the kind for traces and reports.
func (k Kind) String() string {
	switch k {
	case CrashKernel:
		return "crash-kernel"
	case DropSignal:
		return "drop-signal"
	case DupSignal:
		return "dup-signal"
	case CorruptWriteback:
		return "corrupt-writeback"
	case DropFrame:
		return "drop-frame"
	case DupFrame:
		return "dup-frame"
	case DelayFrame:
		return "delay-frame"
	case WalkError:
		return "walk-error"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault.
type Fault struct {
	Kind Kind
	// At is the virtual time (cycles) the fault arms. For CrashKernel it
	// is the exact crash instant; for the event-probability kinds it
	// opens the injection window.
	At uint64
	// Until closes the window (0 = never).
	Until uint64
	// MPM indexes the kernels slice passed to Arm; only CrashKernel
	// uses it.
	MPM int
	// Prob is the per-event injection probability while the window is
	// open; 0 means 1 (every event).
	Prob float64
	// Delay is the added latency for DelayFrame, in cycles.
	Delay uint64
}

// Plan is a seeded fault schedule.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// Stats counts injections performed.
type Stats struct {
	Crashes             uint64
	SignalsDropped      uint64
	SignalsDuplicated   uint64
	WritebacksCorrupted uint64
	FramesDropped       uint64
	FramesDuplicated    uint64
	FramesDelayed       uint64
	WalkErrors          uint64
}

// Injector evaluates a plan against the hooks it is armed on. All
// probability draws come from one seeded generator and happen in the
// virtual engine's serial event order, so verdicts are a pure function
// of (plan, seed, workload).
type Injector struct {
	Plan  Plan
	Stats Stats

	rng *sim.Rand
	eng *sim.Engine
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{Plan: plan, rng: sim.NewRand(plan.Seed)}
}

// hit reports whether fault f fires for an event at virtual time now,
// drawing the probability coin if the window is open.
func (in *Injector) hit(f *Fault, now uint64) bool {
	if now < f.At || (f.Until != 0 && now >= f.Until) {
		return false
	}
	if f.Prob <= 0 || f.Prob >= 1 {
		return true
	}
	return in.rng.Float64() < f.Prob
}

// has reports whether the plan contains any fault of the given kinds.
func (in *Injector) has(kinds ...Kind) bool {
	for i := range in.Plan.Faults {
		for _, k := range kinds {
			if in.Plan.Faults[i].Kind == k {
				return true
			}
		}
	}
	return false
}

// Arm installs the plan's machine- and kernel-level hooks: crash events
// are scheduled on the virtual clock, and signal/writeback/walk hooks
// are installed only for fault kinds the plan actually contains, so an
// empty plan changes nothing.
func (in *Injector) Arm(m *hw.Machine, kernels ...*ck.Kernel) {
	in.eng = m.Eng
	for i := range in.Plan.Faults {
		f := &in.Plan.Faults[i]
		if f.Kind != CrashKernel {
			continue
		}
		if f.MPM < 0 || f.MPM >= len(kernels) {
			continue
		}
		victim := kernels[f.MPM]
		m.Eng.ScheduleAt(f.At, func() {
			in.Stats.Crashes++
			victim.Crash()
		})
	}
	if in.has(WalkError) {
		for _, mpm := range m.MPMs {
			mpm.WalkFault = in.walkFault
		}
	}
	if in.has(DropSignal, DupSignal) {
		for _, k := range kernels {
			k.SignalFault = in.signalFault
		}
	}
	if in.has(CorruptWriteback) {
		for _, k := range kernels {
			k.WritebackFault = in.writebackFault
		}
	}
}

// ArmNIC installs the plan's frame faults on an Ethernet interface.
func (in *Injector) ArmNIC(n *dev.NIC) {
	if !in.has(DropFrame, DupFrame, DelayFrame) {
		return
	}
	if in.eng == nil {
		in.eng = n.MPM.Machine.Eng
	}
	n.TxFault = in.frameFault
}

// ArmFiber installs the plan's frame faults on a fiber port.
func (in *Injector) ArmFiber(p *dev.FiberPort) {
	if !in.has(DropFrame, DupFrame, DelayFrame) {
		return
	}
	if in.eng == nil {
		in.eng = p.MPM.Machine.Eng
	}
	p.TxFault = in.frameFault
}

func (in *Injector) walkFault(e *hw.Exec, _ uint32) bool {
	now := e.Now()
	for i := range in.Plan.Faults {
		f := &in.Plan.Faults[i]
		if f.Kind == WalkError && in.hit(f, now) {
			in.Stats.WalkErrors++
			return true
		}
	}
	return false
}

func (in *Injector) signalFault(_ ck.ObjID, _ uint32) ck.SignalVerdict {
	now := in.eng.Now()
	var v ck.SignalVerdict
	for i := range in.Plan.Faults {
		f := &in.Plan.Faults[i]
		switch f.Kind {
		case DropSignal:
			if !v.Drop && in.hit(f, now) {
				v.Drop = true
				in.Stats.SignalsDropped++
			}
		case DupSignal:
			if !v.Dup && in.hit(f, now) {
				v.Dup = true
				in.Stats.SignalsDuplicated++
			}
		}
	}
	return v
}

func (in *Injector) writebackFault(_ string, _ ck.ObjID) bool {
	now := in.eng.Now()
	for i := range in.Plan.Faults {
		f := &in.Plan.Faults[i]
		if f.Kind == CorruptWriteback && in.hit(f, now) {
			in.Stats.WritebacksCorrupted++
			return true
		}
	}
	return false
}

func (in *Injector) frameFault(_ []byte) dev.FrameFault {
	now := in.eng.Now()
	// A lost frame cannot also be duplicated or delayed: drop verdicts
	// short-circuit, so the stats match what the wire actually does.
	for i := range in.Plan.Faults {
		f := &in.Plan.Faults[i]
		if f.Kind == DropFrame && in.hit(f, now) {
			in.Stats.FramesDropped++
			return dev.FrameFault{Drop: true}
		}
	}
	var ff dev.FrameFault
	for i := range in.Plan.Faults {
		f := &in.Plan.Faults[i]
		switch f.Kind {
		case DupFrame:
			if !ff.Dup && in.hit(f, now) {
				ff.Dup = true
				in.Stats.FramesDuplicated++
			}
		case DelayFrame:
			if in.hit(f, now) {
				ff.Delay += f.Delay
				in.Stats.FramesDelayed++
			}
		}
	}
	return ff
}
