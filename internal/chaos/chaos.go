// Package chaos is the deterministic fault-injection engine for the
// Cache Kernel reproduction. A Plan schedules typed faults — a Cache
// Kernel crash-reboot, lost or duplicated inter-processor signals,
// corrupted descriptor writebacks, lost/duplicated/delayed wire frames,
// transient page-table walk errors — as virtual-time events through the
// narrow hooks the hardware and Cache Kernel expose. Everything is
// driven by the virtual clock and a seeded PRNG (sim.Rand), so a given
// plan and seed produce the identical fault sequence on every run: a
// crash test is as replayable as any other workload.
//
// The zero plan installs no hooks at all; an unarmed or empty injector
// leaves every simulated run byte-identical to one without the package.
package chaos

import (
	"fmt"
	//ckvet:allow shardsafe Stats counters are bumped from hooks on every shard concurrently and only read after Cluster.Run returns
	"sync/atomic"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/sim"
)

// Kind is a fault type.
type Kind int

const (
	// CrashKernel crash-reboots a Cache Kernel instance at Fault.At: the
	// MPM's caches and descriptors vanish and its running execution
	// contexts die, exercising the recovery machinery (paper §3).
	CrashKernel Kind = iota
	// DropSignal loses an inter-processor signal delivery.
	DropSignal
	// DupSignal delivers a signal twice.
	DupSignal
	// CorruptWriteback loses a descriptor writeback (the owning kernel
	// never receives the state — a corrupted transfer discarded by the
	// receiver).
	CorruptWriteback
	// DropFrame loses a transmitted Ethernet frame or fiber message.
	DropFrame
	// DupFrame delivers a frame twice.
	DupFrame
	// DelayFrame adds Fault.Delay cycles of delivery latency (a device
	// timeout from the receiver's point of view).
	DelayFrame
	// WalkError makes a hardware page-table walk fail transiently; the
	// walk is charged and retried from the root.
	WalkError
	// KillRunning kills whatever execution context is running on CPU
	// Fault.CPU of MPM Fault.MPM at Fault.At (a transient processor
	// fault): the context unwinds at its next charge point and its
	// thread descriptor is reclaimed without writeback — the involuntary
	// single-thread death that restart policies distinguish from a
	// normal exit. Idle CPUs make it a no-op.
	KillRunning
)

// String names the kind for traces and reports.
func (k Kind) String() string {
	switch k {
	case CrashKernel:
		return "crash-kernel"
	case DropSignal:
		return "drop-signal"
	case DupSignal:
		return "dup-signal"
	case CorruptWriteback:
		return "corrupt-writeback"
	case DropFrame:
		return "drop-frame"
	case DupFrame:
		return "dup-frame"
	case DelayFrame:
		return "delay-frame"
	case WalkError:
		return "walk-error"
	case KillRunning:
		return "kill-running"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault.
type Fault struct {
	Kind Kind
	// At is the virtual time (cycles) the fault arms. For CrashKernel it
	// is the exact crash instant; for the event-probability kinds it
	// opens the injection window.
	At uint64
	// Until closes the window (0 = never).
	Until uint64
	// MPM indexes the kernels slice passed to Arm; CrashKernel and
	// KillRunning use it.
	MPM int
	// CPU indexes the victim MPM's processors; only KillRunning uses it.
	CPU int `json:",omitempty"`
	// Prob is the per-event injection probability while the window is
	// open; 0 means 1 (every event).
	Prob float64
	// Delay is the added latency for DelayFrame, in cycles.
	Delay uint64
}

// Plan is a seeded fault schedule.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// Stats counts injections performed.
type Stats struct {
	Crashes             uint64
	SignalsDropped      uint64
	SignalsDuplicated   uint64
	WritebacksCorrupted uint64
	FramesDropped       uint64
	FramesDuplicated    uint64
	FramesDelayed       uint64
	WalkErrors          uint64
	ExecsKilled         uint64
}

// Injector evaluates a plan against the hooks it is armed on. Each
// engine shard draws from its own seeded generator (the serial engine
// is "shard 0", so serial draws are unchanged), and every draw happens
// in that shard's deterministic event order, so verdicts are a pure
// function of (plan, seed, workload, topology). Counters are atomic:
// hooks on different shards may fire concurrently within an epoch.
type Injector struct {
	Plan  Plan
	Stats Stats

	rngs map[*sim.Engine]*sim.Rand
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{Plan: plan, rngs: make(map[*sim.Engine]*sim.Rand)}
}

// rngFor returns the engine's fault stream, creating it on first use.
// Only called while arming (single-threaded); the map is read-only by
// the time shards run.
func (in *Injector) rngFor(eng *sim.Engine) *sim.Rand {
	if r, ok := in.rngs[eng]; ok {
		return r
	}
	seed := in.Plan.Seed
	if s := uint64(eng.Shard()); s != 0 {
		seed ^= 0x9E3779B97F4A7C15 * s
	}
	r := sim.NewRand(seed)
	in.rngs[eng] = r
	return r
}

// Cursors captures the injector's fault-stream positions, keyed by
// shard index: each entry is the internal state of that shard's seeded
// generator, i.e. how far into its deterministic coin-flip sequence the
// run has advanced. A parked plan (armed but keyed to a window that has
// not opened) captures identically to a never-consulted one — the
// generator state is the complete cursor either way.
func (in *Injector) Cursors() map[int]uint64 {
	out := make(map[int]uint64, len(in.rngs))
	//ckvet:allow detmap builds a map keyed by unique shard index; insertion order cannot affect the result
	for eng, r := range in.rngs {
		out[eng.Shard()] = r.State()
	}
	return out
}

// RestoreCursors rewinds the fault streams of an injector armed on m to
// captured positions, so a forked run draws the same remaining coin
// flips the parent would have. Shards present in the capture but
// without an armed stream on this injector are created on demand.
func (in *Injector) RestoreCursors(m *hw.Machine, cursors map[int]uint64) {
	for _, mpm := range m.MPMs {
		if s, ok := cursors[mpm.Shard.Shard()]; ok {
			in.rngFor(mpm.Shard).RestoreState(s)
		}
	}
}

// hit reports whether fault f fires for an event at virtual time now,
// drawing the probability coin from rng if the window is open.
func (in *Injector) hit(f *Fault, now uint64, rng *sim.Rand) bool {
	if now < f.At || (f.Until != 0 && now >= f.Until) {
		return false
	}
	if f.Prob <= 0 || f.Prob >= 1 {
		return true
	}
	return rng.Float64() < f.Prob
}

// has reports whether the plan contains any fault of the given kinds.
func (in *Injector) has(kinds ...Kind) bool {
	for i := range in.Plan.Faults {
		for _, k := range kinds {
			if in.Plan.Faults[i].Kind == k {
				return true
			}
		}
	}
	return false
}

// Arm installs the plan's machine- and kernel-level hooks: crash events
// are scheduled on the victim kernel's own shard timeline, and
// signal/writeback/walk hooks are installed only for fault kinds the
// plan actually contains, so an empty plan changes nothing.
func (in *Injector) Arm(m *hw.Machine, kernels ...*ck.Kernel) {
	sanCheckArm(m)
	for i := range in.Plan.Faults {
		f := &in.Plan.Faults[i]
		switch f.Kind {
		case CrashKernel:
			if f.MPM < 0 || f.MPM >= len(kernels) {
				continue
			}
			victim := kernels[f.MPM]
			victim.MPM.Shard.ScheduleAt(f.At, func() {
				atomic.AddUint64(&in.Stats.Crashes, 1)
				victim.Crash()
			})
		case KillRunning:
			if f.MPM < 0 || f.MPM >= len(m.MPMs) {
				continue
			}
			mpm := m.MPMs[f.MPM]
			if f.CPU < 0 || f.CPU >= len(mpm.CPUs) {
				continue
			}
			cpu := mpm.CPUs[f.CPU]
			mpm.Shard.ScheduleAt(f.At, func() {
				if cur := cpu.Cur; cur != nil {
					atomic.AddUint64(&in.Stats.ExecsKilled, 1)
					// The event runs on mpm's own shard and cpu is mpm's
					// processor, so whatever is dispatched on it is
					// co-sharded by construction.
					//ckvet:allow shardsafe cpu.Cur runs on cpu's own MPM, the shard this event runs on
					cur.Kill()
				}
			})
		}
	}
	if in.has(WalkError) {
		for _, mpm := range m.MPMs {
			mpm.WalkFault = in.walkFaultOn(in.rngFor(mpm.Shard))
		}
	}
	if in.has(DropSignal, DupSignal) {
		for _, k := range kernels {
			k.SignalFault = in.signalFaultOn(k.MPM.Shard, in.rngFor(k.MPM.Shard))
		}
	}
	if in.has(CorruptWriteback) {
		for _, k := range kernels {
			k.WritebackFault = in.writebackFaultOn(k.MPM.Shard, in.rngFor(k.MPM.Shard))
		}
	}
}

// ArmNIC installs the plan's frame faults on an Ethernet interface.
func (in *Injector) ArmNIC(n *dev.NIC) {
	if !in.has(DropFrame, DupFrame, DelayFrame) {
		return
	}
	sanCheckArm(n.MPM.Machine)
	n.TxFault = in.frameFaultOn(n.MPM.Shard, in.rngFor(n.MPM.Shard))
}

// ArmFiber installs the plan's frame faults on a fiber port.
func (in *Injector) ArmFiber(p *dev.FiberPort) {
	if !in.has(DropFrame, DupFrame, DelayFrame) {
		return
	}
	sanCheckArm(p.MPM.Machine)
	p.TxFault = in.frameFaultOn(p.MPM.Shard, in.rngFor(p.MPM.Shard))
}

func (in *Injector) walkFaultOn(rng *sim.Rand) func(*hw.Exec, uint32) bool {
	return func(e *hw.Exec, _ uint32) bool {
		now := e.Now()
		for i := range in.Plan.Faults {
			f := &in.Plan.Faults[i]
			if f.Kind == WalkError && in.hit(f, now, rng) {
				atomic.AddUint64(&in.Stats.WalkErrors, 1)
				return true
			}
		}
		return false
	}
}

func (in *Injector) signalFaultOn(eng *sim.Engine, rng *sim.Rand) func(ck.ObjID, uint32) ck.SignalVerdict {
	return func(_ ck.ObjID, _ uint32) ck.SignalVerdict {
		now := eng.Now()
		var v ck.SignalVerdict
		for i := range in.Plan.Faults {
			f := &in.Plan.Faults[i]
			switch f.Kind {
			case DropSignal:
				if !v.Drop && in.hit(f, now, rng) {
					v.Drop = true
					atomic.AddUint64(&in.Stats.SignalsDropped, 1)
				}
			case DupSignal:
				if !v.Dup && in.hit(f, now, rng) {
					v.Dup = true
					atomic.AddUint64(&in.Stats.SignalsDuplicated, 1)
				}
			}
		}
		return v
	}
}

func (in *Injector) writebackFaultOn(eng *sim.Engine, rng *sim.Rand) func(string, ck.ObjID) bool {
	return func(_ string, _ ck.ObjID) bool {
		now := eng.Now()
		for i := range in.Plan.Faults {
			f := &in.Plan.Faults[i]
			if f.Kind == CorruptWriteback && in.hit(f, now, rng) {
				atomic.AddUint64(&in.Stats.WritebacksCorrupted, 1)
				return true
			}
		}
		return false
	}
}

func (in *Injector) frameFaultOn(eng *sim.Engine, rng *sim.Rand) func([]byte) dev.FrameFault {
	return func(_ []byte) dev.FrameFault {
		now := eng.Now()
		// A lost frame cannot also be duplicated or delayed: drop
		// verdicts short-circuit, so the stats match what the wire
		// actually does.
		for i := range in.Plan.Faults {
			f := &in.Plan.Faults[i]
			if f.Kind == DropFrame && in.hit(f, now, rng) {
				atomic.AddUint64(&in.Stats.FramesDropped, 1)
				return dev.FrameFault{Drop: true}
			}
		}
		var ff dev.FrameFault
		for i := range in.Plan.Faults {
			f := &in.Plan.Faults[i]
			switch f.Kind {
			case DupFrame:
				if !ff.Dup && in.hit(f, now, rng) {
					ff.Dup = true
					atomic.AddUint64(&in.Stats.FramesDuplicated, 1)
				}
			case DelayFrame:
				if in.hit(f, now, rng) {
					ff.Delay += f.Delay
					atomic.AddUint64(&in.Stats.FramesDelayed, 1)
				}
			}
		}
		return ff
	}
}
