//go:build cksan

package chaos

import "vpp/internal/hw"

// sanCheckArm rejects arming a chaos plan on a machine whose cluster is
// already running: hook installation writes shard-owned fields (crash
// events, fault hooks on kernels and devices of every shard), which is
// only safe while all shards are quiescent at construction time
// (DESIGN.md §11).
func sanCheckArm(m *hw.Machine) {
	if m != nil && m.Cluster != nil && m.Cluster.Running() {
		panic("cksan: chaos plan armed while the cluster is running: fault hooks must be installed before Run")
	}
}
