//go:build !cksan

package chaos

import "vpp/internal/hw"

// No-op half of the cksan runtime ownership sanitizer; see san_on.go.

func sanCheckArm(m *hw.Machine) {}
