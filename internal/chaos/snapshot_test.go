package chaos

import (
	"reflect"
	"testing"

	"vpp/internal/hw"
)

// TestCursorsRoundTrip pins the fault-stream snapshot: after a run has
// consumed part of its deterministic coin-flip sequence, Cursors
// captures the exact positions and RestoreCursors rewinds a second
// injector so its remaining draws match the parent's draw for draw.
func TestCursorsRoundTrip(t *testing.T) {
	plan := Plan{Seed: 0xC0FFEE, Faults: []Fault{{Kind: DropSignal, Prob: 0.5}}}
	m := hw.NewMachine(hw.DefaultConfig())
	in := New(plan)
	// Consume part of the serial shard's stream, as an armed run would.
	r := in.rngFor(m.MPMs[0].Shard)
	for i := 0; i < 17; i++ {
		r.Float64()
	}
	cur := in.Cursors()
	if len(cur) != 1 {
		t.Fatalf("cursors = %v, want one shard", cur)
	}

	m2 := hw.NewMachine(hw.DefaultConfig())
	in2 := New(plan)
	in2.RestoreCursors(m2, cur)
	if got := in2.Cursors(); !reflect.DeepEqual(cur, got) {
		t.Fatalf("cursors did not survive the round trip: %v vs %v", got, cur)
	}
	// The decisive property: both streams now produce identical flips.
	r2 := in2.rngFor(m2.MPMs[0].Shard)
	for i := 0; i < 8; i++ {
		if a, b := r.Uint64(), r2.Uint64(); a != b {
			t.Fatalf("draw %d diverged after restore: %#x vs %#x", i, a, b)
		}
	}

	// A fresh injector without the restore diverges — the cursor is
	// doing real work.
	in3 := New(plan)
	r3 := in3.rngFor(hw.NewMachine(hw.DefaultConfig()).MPMs[0].Shard)
	if a, b := r.Uint64(), r3.Uint64(); a == b {
		t.Fatal("unrestored stream coincides with the advanced one")
	}
}
