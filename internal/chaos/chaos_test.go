package chaos

import (
	"math"
	"testing"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/sim"
)

// TestEmptyPlanArmsNothing pins the byte-identity contract: arming an
// empty plan must install no hooks anywhere, so a run with an unarmed
// injector is indistinguishable from one without the package.
func TestEmptyPlanArmsNothing(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := New(Plan{})
	in.Arm(m, k)
	wire := dev.NewWire()
	n := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{1})
	in.ArmNIC(n)
	pa, _ := dev.ConnectFiber(m.MPMs[0], m.MPMs[0], "t")
	in.ArmFiber(pa)
	if m.MPMs[0].WalkFault != nil {
		t.Error("empty plan installed a walk fault")
	}
	if k.SignalFault != nil || k.WritebackFault != nil {
		t.Error("empty plan installed kernel hooks")
	}
	if n.TxFault != nil || pa.TxFault != nil {
		t.Error("empty plan installed wire hooks")
	}
}

// TestFaultWindow checks the virtual-time arming window.
func TestFaultWindow(t *testing.T) {
	in := New(Plan{})
	rng := sim.NewRand(0)
	f := &Fault{Kind: DropFrame, At: 100, Until: 200}
	for _, c := range []struct {
		now  uint64
		want bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if got := in.hit(f, c.now, rng); got != c.want {
			t.Errorf("hit at %d = %v, want %v", c.now, got, c.want)
		}
	}
	open := &Fault{Kind: DropFrame, At: 50}
	if !in.hit(open, math.MaxUint64, rng) {
		t.Error("open-ended window closed")
	}
}

type lossyOutcome struct {
	rx, dropped, duped uint64
	stats              Stats
	finalClock         uint64
}

// runLossyTraffic sends 200 frames across a wire under a probabilistic
// drop/duplicate plan and reports everything observable about the run.
func runLossyTraffic(t *testing.T, seed uint64) lossyOutcome {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	wire := dev.NewWire()
	a := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{0xa})
	b := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{0xb})
	b.RxQueueLimit = 1 << 20
	in := New(Plan{Seed: seed, Faults: []Fault{
		{Kind: DropFrame, Prob: 0.3},
		{Kind: DupFrame, Prob: 0.1},
	}})
	in.ArmNIC(a)
	m.MPMs[0].NewDeviceExec("sender", func(e *hw.Exec) {
		frame := make([]byte, dev.EtherMinFrame)
		frame[0] = 0xb
		for i := 0; i < 200; i++ {
			frame[12] = byte(i)
			if err := a.Transmit(e, frame); err != nil {
				t.Error(err)
				return
			}
			e.Charge(2000)
		}
	})
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	return lossyOutcome{
		rx: b.RxFrames, dropped: a.WireDropped, duped: a.WireDuped,
		stats: in.Stats, finalClock: m.Eng.Now(),
	}
}

// TestFrameLossDeterministicAcrossSeeds runs the lossy-wire workload
// twice per seed across eight fixed seeds: same seed must reproduce the
// identical loss pattern, and the seeds must not all collapse to one
// outcome.
func TestFrameLossDeterministicAcrossSeeds(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	outcomes := make(map[lossyOutcome]bool)
	for _, seed := range seeds {
		r1 := runLossyTraffic(t, seed)
		r2 := runLossyTraffic(t, seed)
		if r1 != r2 {
			t.Fatalf("seed %d diverged:\n%+v\nvs\n%+v", seed, r1, r2)
		}
		if r1.dropped == 0 || r1.rx == 0 {
			t.Fatalf("seed %d: degenerate outcome %+v", seed, r1)
		}
		if r1.dropped != r1.stats.FramesDropped || r1.duped != r1.stats.FramesDuplicated {
			t.Fatalf("seed %d: NIC counters disagree with injector stats: %+v", seed, r1)
		}
		outcomes[r1] = true
	}
	if len(outcomes) < 2 {
		t.Fatalf("all %d seeds produced the identical loss pattern", len(seeds))
	}
}

// TestScriptedCrash schedules a Cache Kernel crash at a fixed virtual
// time and checks the crash semantics: the epoch advances, every
// pre-crash identifier stops validating, and the instance is bootable
// again.
func TestScriptedCrash(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := New(Plan{Faults: []Fault{
		{Kind: CrashKernel, At: hw.CyclesFromMicros(5_000), MPM: 0},
	}})
	in.Arm(m, k)
	progress := 0
	info, err := k.Boot(ck.KernelAttrs{Name: "victim"}, 40, func(e *hw.Exec) {
		for i := 0; i < 1000; i++ {
			e.Charge(1000) // 40 µs per step: the crash interrupts this
			progress++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if in.Stats.Crashes != 1 || k.Stats.Crashes != 1 {
		t.Fatalf("crash counts: injector %d, kernel %d", in.Stats.Crashes, k.Stats.Crashes)
	}
	if k.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", k.Epoch)
	}
	if progress >= 1000 {
		t.Fatal("boot thread ran to completion despite the crash")
	}
	for _, id := range []ck.ObjID{info.Kernel, info.Space, info.Thread} {
		if k.Loaded(id) {
			t.Errorf("pre-crash identifier %v still validates", id)
		}
	}
	if _, err := k.Boot(ck.KernelAttrs{Name: "reborn"}, 40, func(e *hw.Exec) {}); err != nil {
		t.Fatalf("re-boot after crash: %v", err)
	}
}
