//go:build cksan

package hw_test

import (
	"strings"
	"testing"

	"vpp/internal/hw"
)

// Dispatching an execution context onto a CPU of a different shard is a
// cross-shard mutation the sanitizer must reject with provenance.
func TestCksanCrossShardDispatch(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.MPMs, cfg.CPUsPerMPM, cfg.Shards = 2, 1, 2
	m := hw.NewMachine(cfg)

	e := m.MPMs[1].NewExec("stray", func(*hw.Exec) {})
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "cksan:") {
			t.Fatalf("expected a cksan report, got %v", r)
		}
	}()
	m.MPMs[0].CPUs[0].Dispatch(e)
	t.Fatal("cross-shard dispatch not caught")
}
