//go:build cksan

package hw

import "fmt"

// sanCheckDispatch verifies, on every CPU dispatch, that the execution
// context being placed on the CPU is owned by the CPU's own shard: an
// Exec's coroutine lives on its MPM's engine, so dispatching it onto a
// CPU of a different shard is a cross-shard mutation that bypassed the
// epoch machinery (DESIGN.md §11).
func sanCheckDispatch(c *CPU, e *Exec) {
	if e.MPM == nil || c.MPM == nil || e.MPM.Shard == c.MPM.Shard {
		return
	}
	panic(fmt.Sprintf("cksan: t=%d: cpu %d (MPM %d, shard %d) dispatching exec %q owned by MPM %d (shard %d)",
		c.Clock.Now(), c.ID, c.MPM.ID, c.MPM.Shard.Shard(), e.Name, e.MPM.ID, e.MPM.Shard.Shard()))
}
