package hw

import (
	"math"
	"math/rand"
	"testing"

	"vpp/internal/pagetable"
)

func pte(pfn uint32, flags pagetable.PTE) pagetable.PTE {
	return pagetable.MakePTE(pfn, flags)
}

// TestTLBRoundRobinEvictionOrder checks that victims are chosen
// strictly in insertion-slot order and that the cursor wraps.
func TestTLBRoundRobinEvictionOrder(t *testing.T) {
	tlb := NewTLB(4)
	for i := uint32(0); i < 4; i++ {
		tlb.Insert(1, i, pte(100+i, pagetable.PTEValid))
	}
	// Fifth insert evicts the first-inserted entry (slot 0), sixth the
	// second, and so on.
	for i := uint32(4); i < 8; i++ {
		tlb.Insert(1, i, pte(100+i, pagetable.PTEValid))
		if _, ok := tlb.Lookup(1, i-4); ok {
			t.Fatalf("vpn %d should have been the round-robin victim", i-4)
		}
		for j := i - 3; j <= i; j++ {
			if got, ok := tlb.Lookup(1, j); !ok || got.PFN() != 100+j {
				t.Fatalf("vpn %d lost: ok=%v pfn=%d", j, ok, got.PFN())
			}
		}
	}
	// Cursor has wrapped: the next victim is vpn 4 again.
	tlb.Insert(1, 8, pte(108, pagetable.PTEValid))
	if _, ok := tlb.Lookup(1, 4); ok {
		t.Fatal("cursor did not wrap to slot 0")
	}
}

// TestTLBInsertOverwriteKeepsCursor checks that re-inserting a resident
// page updates the entry in place — a permission upgrade takes effect
// immediately — without advancing the replacement cursor.
func TestTLBInsertOverwriteKeepsCursor(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, 10, pte(5, pagetable.PTEValid))
	// Upgrade in place. If this wrongly consumed the replacement cursor,
	// the next insert would land on slot 0 and evict vpn 10.
	tlb.Insert(1, 10, pte(5, pagetable.PTEValid|pagetable.PTEWrite))
	tlb.Insert(1, 11, pte(6, pagetable.PTEValid))
	got, ok := tlb.Lookup(1, 10)
	if !ok {
		t.Fatal("in-place overwrite advanced the replacement cursor")
	}
	if !got.Writable() {
		t.Fatal("permission upgrade not visible")
	}
	if _, ok := tlb.Lookup(1, 11); !ok {
		t.Fatal("second entry missing")
	}
}

// TestTLBASIDIsolation checks that identical virtual page numbers in
// different address spaces coexist and that InvalidateSpace drops only
// its own space's entries.
func TestTLBASIDIsolation(t *testing.T) {
	tlb := NewTLB(DefaultTLBEntries)
	for i := uint32(0); i < 8; i++ {
		tlb.Insert(1, i, pte(100+i, pagetable.PTEValid))
		tlb.Insert(2, i, pte(200+i, pagetable.PTEValid))
	}
	tlb.InvalidateSpace(1)
	for i := uint32(0); i < 8; i++ {
		if _, ok := tlb.Lookup(1, i); ok {
			t.Fatalf("asid 1 vpn %d survived InvalidateSpace", i)
		}
		if got, ok := tlb.Lookup(2, i); !ok || got.PFN() != 200+i {
			t.Fatalf("asid 2 vpn %d damaged: ok=%v pfn=%d", i, ok, got.PFN())
		}
	}
}

// TestTLBInvalidatePageAndAll checks single-page and full flushes.
func TestTLBInvalidatePageAndAll(t *testing.T) {
	tlb := NewTLB(DefaultTLBEntries)
	tlb.Insert(1, 10, pte(5, pagetable.PTEValid))
	tlb.Insert(1, 11, pte(6, pagetable.PTEValid))
	tlb.InvalidatePage(1, 10)
	if _, ok := tlb.Lookup(1, 10); ok {
		t.Fatal("invalidated page still present")
	}
	if _, ok := tlb.Lookup(1, 11); !ok {
		t.Fatal("unrelated page dropped")
	}
	tlb.InvalidatePage(1, 99) // absent: must be a no-op
	tlb.InvalidateAll()
	if _, ok := tlb.Lookup(1, 11); ok {
		t.Fatal("entry survived InvalidateAll")
	}
}

// TestTLBCounterExactness replays a scripted reference sequence and
// checks the hit/miss counters match it access for access.
func TestTLBCounterExactness(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Lookup(1, 0) // miss
	tlb.Insert(1, 0, pte(9, pagetable.PTEValid))
	tlb.Lookup(1, 0) // hit
	tlb.Lookup(1, 0) // hit
	tlb.Lookup(2, 0) // miss: other asid
	tlb.InvalidatePage(1, 0)
	tlb.Lookup(1, 0) // miss
	if h, m := tlb.Stats(); h != 2 || m != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", h, m)
	}
	tlb.ResetStats()
	if h, m := tlb.Stats(); h != 0 || m != 0 {
		t.Fatalf("ResetStats left hits=%d misses=%d", h, m)
	}
}

// refTLB is the original linear-scan implementation, kept as an
// executable specification: the hash-indexed TLB must be observably
// identical to it under any operation sequence.
type refTLB struct {
	entries []tlbEntry
	next    int
	hits    uint64
	misses  uint64
}

func (t *refTLB) Lookup(asid uint16, vpn uint32) (pagetable.PTE, bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			t.hits++
			return e.pte, true
		}
	}
	t.misses++
	return 0, false
}

func (t *refTLB) Insert(asid uint16, vpn uint32, pte pagetable.PTE) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			e.pte = pte
			return
		}
	}
	t.entries[t.next] = tlbEntry{asid: asid, valid: true, vpn: vpn, pte: pte}
	t.next = (t.next + 1) % len(t.entries)
}

func (t *refTLB) InvalidatePage(asid uint16, vpn uint32) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			e.valid = false
		}
	}
}

func (t *refTLB) InvalidateSpace(asid uint16) {
	for i := range t.entries {
		if t.entries[i].asid == asid {
			t.entries[i].valid = false
		}
	}
}

func (t *refTLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// TestTLBMatchesLinearReference drives the indexed TLB and the linear
// reference with the same pseudo-random operation stream and demands
// identical lookup results, statistics, and replacement behavior.
func TestTLBMatchesLinearReference(t *testing.T) {
	const size = 8
	tlb := NewTLB(size)
	ref := &refTLB{entries: make([]tlbEntry, size)}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20000; op++ {
		asid := uint16(rng.Intn(3) + 1)
		vpn := uint32(rng.Intn(16))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // lookup-heavy mix
			gp, gok := tlb.Lookup(asid, vpn)
			wp, wok := ref.Lookup(asid, vpn)
			if gp != wp || gok != wok {
				t.Fatalf("op %d: Lookup(%d,%d) = (%#x,%v), reference (%#x,%v)",
					op, asid, vpn, gp, gok, wp, wok)
			}
		case 4, 5, 6:
			p := pte(uint32(rng.Intn(1<<12)), pagetable.PTEValid|pagetable.PTE(rng.Intn(2))<<1)
			tlb.Insert(asid, vpn, p)
			ref.Insert(asid, vpn, p)
		case 7:
			tlb.InvalidatePage(asid, vpn)
			ref.InvalidatePage(asid, vpn)
		case 8:
			tlb.InvalidateSpace(asid)
			ref.InvalidateSpace(asid)
		default:
			tlb.InvalidateAll()
			ref.InvalidateAll()
		}
		if h, m := tlb.Stats(); h != ref.hits || m != ref.misses {
			t.Fatalf("op %d: stats (%d,%d), reference (%d,%d)", op, h, m, ref.hits, ref.misses)
		}
		if tlb.next != ref.next {
			t.Fatalf("op %d: replacement cursor %d, reference %d", op, tlb.next, ref.next)
		}
	}
}

// TestTranslateMicroCacheCoherence checks that the per-Exec translation
// micro-cache never serves a stale translation: a TLB shootdown or a
// space switch must force the next access back through the full path.
func TestTranslateMicroCacheCoherence(t *testing.T) {
	m := NewMachine(DefaultConfig())
	mpm := m.MPMs[0]
	tblA, _ := pagetable.New(nil)
	tblA.Insert(0x100_0000, pte(512, pagetable.PTEValid|pagetable.PTEWrite))
	tblB, _ := pagetable.New(nil)
	tblB.Insert(0x100_0000, pte(700, pagetable.PTEValid))
	spA := &Space{Table: tblA, ASID: 1}
	spB := &Space{Table: tblB, ASID: 2}

	e := mpm.NewExec("mc", func(e *Exec) {
		e.Space = spA
		// Fill, then hit twice: the second and third translations are
		// answered by the micro-cache but still count as TLB hits.
		e.Translate(0x100_0000, false)
		h0, _ := e.CPU.TLB.Stats()
		pa, _ := e.Translate(0x100_0000, false)
		if pa != 512<<PageShift {
			t.Errorf("hit pa = %#x", pa)
		}
		e.Translate(0x100_0000, false)
		if h1, _ := e.CPU.TLB.Stats(); h1 != h0+2 {
			t.Errorf("micro-cache hits not counted: %d -> %d", h0, h1)
		}

		// Remap the page and shoot down the TLB entry: the next access
		// must re-walk and see the new frame, not the cached one.
		tblA.Remove(0x100_0000)
		tblA.Insert(0x100_0000, pte(640, pagetable.PTEValid|pagetable.PTEWrite))
		mpm.FlushTLBPage(spA.ASID, 0x100_0000>>PageShift)
		if pa, _ := e.Translate(0x100_0000, false); pa != 640<<PageShift {
			t.Errorf("stale translation after shootdown: pa = %#x", pa)
		}

		// A space switch drops the micro-cache even though the virtual
		// address is identical.
		e.SetSpace(spB)
		if pa, _ := e.Translate(0x100_0000, false); pa != 700<<PageShift {
			t.Errorf("stale translation after space switch: pa = %#x", pa)
		}
		e.SetSpace(spA)
		if pa, _ := e.Translate(0x100_0000, false); pa != 640<<PageShift {
			t.Errorf("stale translation after switch back: pa = %#x", pa)
		}

		// First write through a clean entry takes the modified-bit
		// upgrade path, not the micro-cache, and marks the page dirty.
		if pa, wpte := e.Translate(0x100_0000, true); pa != 640<<PageShift || wpte&pagetable.PTEModified == 0 {
			t.Errorf("write upgrade: pa=%#x pte=%#x", pa, wpte)
		}
	})
	mpm.CPUs[0].Dispatch(e)
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
}
