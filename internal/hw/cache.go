package hw

// L2Cache models the MPM's software-controlled second-level cache as a
// direct-mapped tag array over 32-byte lines. It exists for two purposes:
// charging realistic hit/miss cycle costs on every memory reference, and
// reporting hit/miss statistics for the locality experiments (Section
// 5.2). Data always lives in PhysMem; the cache carries no contents.
type L2Cache struct {
	lineShift uint
	lines     uint32
	tags      []uint32 // tag+1, 0 = invalid
	hits      uint64
	misses    uint64
}

// L2LineSize is the cache line size in bytes (the paper's hardware).
const L2LineSize = 32

// NewL2Cache returns a cache of the given total size in bytes, which must
// be a positive multiple of the line size.
func NewL2Cache(size uint32) *L2Cache {
	if size == 0 || size%L2LineSize != 0 {
		panic("hw: bad L2 cache size")
	}
	lines := size / L2LineSize
	return &L2Cache{lineShift: 5, lines: lines, tags: make([]uint32, lines)}
}

// Access simulates a reference to physical address pa and returns the
// cycle charge (hit or miss).
func (c *L2Cache) Access(pa uint32) uint64 {
	line := pa >> c.lineShift
	idx := line % c.lines
	tag := line/c.lines + 1
	if c.tags[idx] == tag {
		c.hits++
		return CostMemHit
	}
	c.tags[idx] = tag
	c.misses++
	return CostMemMiss
}

// FlushAll invalidates every line (used by the second-level cache manager
// when reassigning page frames across kernels).
func (c *L2Cache) FlushAll() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// FlushPage invalidates all lines of the 4 KB page containing pa.
func (c *L2Cache) FlushPage(pa uint32) {
	base := pa &^ (PageSize - 1)
	for off := uint32(0); off < PageSize; off += L2LineSize {
		line := (base + off) >> c.lineShift
		idx := line % c.lines
		tag := line/c.lines + 1
		if c.tags[idx] == tag {
			c.tags[idx] = 0
		}
	}
}

// Stats reports accumulated hits and misses.
func (c *L2Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the counters.
func (c *L2Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// HitRate reports the fraction of accesses that hit, or 0 with no accesses.
func (c *L2Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
