package dev

import (
	"reflect"
	"testing"

	"vpp/internal/hw"
)

// TestNICStateRoundTrip queues table-selected traffic on a NIC, captures
// it, restores into a fresh NIC, and requires a deeply equal re-capture
// with no buffer aliasing against the snapshot.
func TestNICStateRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		tx   func(t *testing.T, e *hw.Exec, from *NIC)
	}{
		{"empty", func(t *testing.T, e *hw.Exec, from *NIC) {}},
		{"queued_frames", func(t *testing.T, e *hw.Exec, from *NIC) {
			for i := byte(0); i < 3; i++ {
				frame := make([]byte, 64)
				copy(frame[0:6], []byte{2, 0, 0, 0, 0, 0}) // to b
				frame[12] = i
				if err := from.Transmit(e, frame); err != nil {
					t.Error(err)
				}
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := newM(t)
			wire := NewWire()
			a := AttachNIC(m.MPMs[0], wire, MAC{1})
			b := AttachNIC(m.MPMs[0], wire, MAC{2})
			m.MPMs[0].NewDeviceExec("tx", func(e *hw.Exec) { tc.tx(t, e, a) })
			runDev(t, m)

			st := b.State()
			m2 := newM(t)
			fresh := AttachNIC(m2.MPMs[0], NewWire(), MAC{2})
			fresh.Restore(st)
			if st2 := fresh.State(); !reflect.DeepEqual(st, st2) {
				t.Fatalf("NIC state did not survive the round trip:\n first: %+v\nsecond: %+v", st, st2)
			}
			// The restored queue must not alias the capture's buffers.
			if len(st.Pending) > 0 {
				st.Pending[0][12] ^= 0xFF
				if got := fresh.State().Pending[0][12]; got == st.Pending[0][12] {
					t.Fatal("restored NIC aliases the snapshot's frame buffers")
				}
			}
		})
	}
}

// TestFiberStateRoundTrip does the same for a fiber port's queue: real
// messages cross the link, the receiving port is captured, and the
// capture restores into a fresh port byte for byte without aliasing.
func TestFiberStateRoundTrip(t *testing.T) {
	m := newM(t)
	p, far := ConnectFiber(m.MPMs[0], m.MPMs[1], "f")
	m.MPMs[1].NewDeviceExec("tx", func(e *hw.Exec) {
		for i := byte(0); i < 3; i++ {
			if err := far.Send(e, []byte{0xF0, i, i, i}); err != nil {
				t.Error(err)
			}
		}
	})
	runDev(t, m)
	if p.Pending() != 3 {
		t.Fatalf("receive queue holds %d messages, want 3", p.Pending())
	}

	st := p.State()
	m2 := newM(t)
	fresh, _ := ConnectFiber(m2.MPMs[0], m2.MPMs[1], "f")
	fresh.Restore(st)
	if st2 := fresh.State(); !reflect.DeepEqual(st, st2) {
		t.Fatalf("fiber state did not survive the round trip:\n first: %+v\nsecond: %+v", st, st2)
	}
	st.Pending[0][0] ^= 0xFF
	if fresh.State().Pending[0][0] == st.Pending[0][0] {
		t.Fatal("restored port aliases the snapshot's buffers")
	}
}
