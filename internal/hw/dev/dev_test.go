package dev

import (
	"bytes"
	"math"
	"testing"

	"vpp/internal/hw"
)

func newM(t *testing.T) *hw.Machine {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	return hw.NewMachine(cfg)
}

// runDev drives a device scenario to quiescence.
func runDev(t *testing.T, m *hw.Machine) {
	t.Helper()
	m.Eng.MaxSteps = 10_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
}

func TestNICUnicastAndBroadcast(t *testing.T) {
	m := newM(t)
	wire := NewWire()
	a := AttachNIC(m.MPMs[0], wire, MAC{1})
	b := AttachNIC(m.MPMs[0], wire, MAC{2})
	c := AttachNIC(m.MPMs[0], wire, MAC{3})
	m.MPMs[0].NewDeviceExec("tx", func(e *hw.Exec) {
		// Unicast to b.
		dst := MAC{2}
		frame := make([]byte, 60)
		copy(frame[0:6], dst[:])
		if err := a.Transmit(e, frame); err != nil {
			t.Error(err)
		}
		// Broadcast.
		copy(frame[0:6], Broadcast[:])
		if err := a.Transmit(e, frame); err != nil {
			t.Error(err)
		}
	})
	runDev(t, m)
	if b.PendingFrames() != 2 {
		t.Fatalf("b received %d frames, want 2", b.PendingFrames())
	}
	if c.PendingFrames() != 1 {
		t.Fatalf("c received %d frames, want 1 (broadcast only)", c.PendingFrames())
	}
	if a.PendingFrames() != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestNICPadsShortFrames(t *testing.T) {
	m := newM(t)
	wire := NewWire()
	a := AttachNIC(m.MPMs[0], wire, MAC{1})
	b := AttachNIC(m.MPMs[0], wire, MAC{2})
	var got []byte
	m.MPMs[0].NewDeviceExec("tx", func(e *hw.Exec) {
		dst := MAC{2}
		frame := make([]byte, 20)
		copy(frame[0:6], dst[:])
		frame[14] = 0x99
		if err := a.Transmit(e, frame); err != nil {
			t.Error(err)
		}
	})
	rx := m.MPMs[0].NewDeviceExec("rx", func(e *hw.Exec) {
		for {
			if f, ok := b.Recv(e); ok {
				got = f
				return
			}
			e.Park()
		}
	})
	b.OnRx = func() { rx.Wake() }
	runDev(t, m)
	if len(got) != EtherMinFrame {
		t.Fatalf("frame length %d, want padded to %d", len(got), EtherMinFrame)
	}
	if got[14] != 0x99 {
		t.Fatal("payload lost in padding")
	}
}

func TestNICRingOverflowDrops(t *testing.T) {
	m := newM(t)
	wire := NewWire()
	a := AttachNIC(m.MPMs[0], wire, MAC{1})
	b := AttachNIC(m.MPMs[0], wire, MAC{2})
	b.RxQueueLimit = 4
	m.MPMs[0].NewDeviceExec("tx", func(e *hw.Exec) {
		dst := MAC{2}
		frame := make([]byte, 60)
		copy(frame[0:6], dst[:])
		for i := 0; i < 10; i++ {
			if err := a.Transmit(e, frame); err != nil {
				t.Error(err)
			}
		}
	})
	runDev(t, m)
	if b.PendingFrames() != 4 {
		t.Fatalf("pending %d, want 4 (ring limit)", b.PendingFrames())
	}
	if b.Dropped != 6 {
		t.Fatalf("dropped %d, want 6", b.Dropped)
	}
}

func TestNICOversizedFrameRejected(t *testing.T) {
	m := newM(t)
	wire := NewWire()
	a := AttachNIC(m.MPMs[0], wire, MAC{1})
	m.MPMs[0].NewDeviceExec("tx", func(e *hw.Exec) {
		if err := a.Transmit(e, make([]byte, EtherMaxFrame+1)); err == nil {
			t.Error("oversized frame accepted")
		}
	})
	runDev(t, m)
}

func TestFiberPreservesOrderAndBytes(t *testing.T) {
	m := newM(t)
	pa, pb := ConnectFiber(m.MPMs[0], m.MPMs[1], "f")
	var got [][]byte
	rx := m.MPMs[1].NewDeviceExec("rx", func(e *hw.Exec) {
		for len(got) < 3 {
			if msg, ok := pb.Recv(e); ok {
				got = append(got, msg)
				continue
			}
			e.Park()
		}
	})
	pb.OnRx = func() { rx.Wake() }
	m.MPMs[0].NewDeviceExec("tx", func(e *hw.Exec) {
		for i := 0; i < 3; i++ {
			if err := pa.Send(e, []byte{byte(i), 0xAA}); err != nil {
				t.Error(err)
			}
		}
	})
	runDev(t, m)
	if len(got) != 3 {
		t.Fatalf("received %d messages", len(got))
	}
	for i, msg := range got {
		if !bytes.Equal(msg, []byte{byte(i), 0xAA}) {
			t.Fatalf("message %d = %v", i, msg)
		}
	}
	if pa.TxMsgs != 3 || pb.RxMsgs != 3 {
		t.Fatalf("tx=%d rx=%d", pa.TxMsgs, pb.RxMsgs)
	}
}

func TestFiberIsFasterPerByteThanEthernet(t *testing.T) {
	// 266 Mb/s vs 10 Mb/s: the per-byte serialization charge must show
	// the ratio (the paper's device-speed motivation).
	m := newM(t)
	pa, _ := ConnectFiber(m.MPMs[0], m.MPMs[1], "f")
	wire := NewWire()
	n := AttachNIC(m.MPMs[0], wire, MAC{1})
	const size = 1024
	var fiberCycles, etherCycles uint64
	m.MPMs[0].NewDeviceExec("x", func(e *hw.Exec) {
		t0 := e.Now()
		_ = pa.Send(e, make([]byte, size))
		fiberCycles = e.Now() - t0
		t0 = e.Now()
		frame := make([]byte, size)
		copy(frame[0:6], Broadcast[:])
		_ = n.Transmit(e, frame)
		etherCycles = e.Now() - t0
	})
	runDev(t, m)
	// Sender-side DMA charges differ; the wire-level rates differ by
	// >20x, visible in the scheduled delivery delay constants.
	if EtherCyclesPerByte*4 <= FiberCyclesPer4Bytes {
		t.Fatal("rate constants inverted")
	}
	_ = fiberCycles
	_ = etherCycles
}
