// Package dev provides the simulated I/O devices of the ParaDiGM
// machine: an Ethernet interface with a conventional DMA ring (which
// therefore needs a non-trivial Cache Kernel driver, as the paper notes)
// and a memory-mapped 266 Mb fiber-channel interconnect (which fits the
// memory-based messaging model directly and needs almost none).
package dev

import (
	"fmt"
	//ckvet:allow shardsafe Wire stats are bumped from transmit paths on every attached shard concurrently and only read after Run
	"sync/atomic"

	"vpp/internal/hw"
	"vpp/internal/sim"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet timing: 10 Mb/s is roughly 20 CPU cycles per byte at 25 MHz.
const (
	EtherCyclesPerByte = 20
	EtherLatency       = 100 // propagation + interframe gap, cycles
	EtherMaxFrame      = 1518
	EtherMinFrame      = 60
)

// FrameFault is a fault-injection verdict for one transmitted frame or
// fiber message: the wire may lose it, deliver it twice, or deliver it
// late (a device timeout from the receiver's point of view). Injection
// acts on the wire, not the sender — transmit charges and counters are
// unchanged, exactly as a real sender cannot observe a lost frame.
type FrameFault struct {
	Drop  bool
	Dup   bool
	Delay uint64 // extra delivery latency, cycles
}

// Wire is a shared Ethernet segment connecting NICs.
type Wire struct {
	nics []*NIC
	// Frames counts frames carried. Incremented atomically: senders on
	// a sharded machine may transmit concurrently within an epoch.
	Frames uint64
}

// NewWire returns an empty segment.
func NewWire() *Wire { return &Wire{} }

// NIC is a simulated Ethernet interface with a DMA engine. Received
// frames are queued and announced through OnRx in engine context; the
// driver's receive execution drains Pending.
type NIC struct {
	Addr MAC
	MPM  *hw.MPM
	wire *Wire

	pending [][]byte
	// OnRx runs in engine context when a frame is queued; typically it
	// wakes the driver execution.
	OnRx func()

	// Stats.
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	Dropped            uint64
	// WireDropped/WireDuped count injected wire faults on transmits
	// from this NIC.
	WireDropped, WireDuped uint64

	// RxQueueLimit bounds the pending queue (overflow drops, like a
	// real ring).
	RxQueueLimit int

	// TxFault, when non-nil, is consulted once per transmitted frame
	// and may drop, duplicate or delay its delivery (internal/chaos).
	// Nil costs nothing and changes nothing.
	TxFault func(frame []byte) FrameFault
}

// AttachNIC creates a NIC on the wire for an MPM. When the wire comes
// to span engine shards, the Ethernet minimum transit time becomes a
// cross-shard latency bound: no frame reaches another shard sooner.
func AttachNIC(mpm *hw.MPM, wire *Wire, addr MAC) *NIC {
	n := &NIC{Addr: addr, MPM: mpm, wire: wire, RxQueueLimit: 32}
	for _, peer := range wire.nics {
		if peer.MPM.Shard != mpm.Shard {
			mpm.Machine.BoundLookahead(EtherMinFrame*EtherCyclesPerByte + EtherLatency)
			break
		}
	}
	wire.nics = append(wire.nics, n)
	return n
}

// Transmit DMAs a frame onto the wire, charging the sender for the DMA
// and scheduling delivery after the wire latency plus serialization
// time. Frames below the Ethernet minimum are padded.
func (n *NIC) Transmit(e *hw.Exec, frame []byte) error {
	if len(frame) > EtherMaxFrame {
		return fmt.Errorf("dev: frame of %d bytes exceeds Ethernet maximum", len(frame))
	}
	if len(frame) < EtherMinFrame {
		padded := make([]byte, EtherMinFrame)
		copy(padded, frame)
		frame = padded
	}
	dup := append([]byte(nil), frame...)
	e.Charge(uint64(len(frame)/4) * hw.CostDeviceDMAWord)
	n.TxFrames++
	n.TxBytes += uint64(len(frame))
	atomic.AddUint64(&n.wire.Frames, 1)
	delay := uint64(len(frame))*EtherCyclesPerByte + EtherLatency
	var ff FrameFault
	if n.TxFault != nil {
		ff = n.TxFault(dup)
	}
	if ff.Drop {
		n.WireDropped++
		return nil
	}
	// One delivery event per destination shard, in wire order: each
	// event delivers to that shard's eligible NICs (still filtered at
	// delivery time, so wire membership stays live), and a cross-shard
	// event rides the epoch barrier with its transit time intact. On a
	// serial machine every NIC shares one engine, so this is exactly
	// one event with the historical closure semantics.
	deliverOn := func(shard *sim.Engine) func() {
		return func() {
			var dst MAC
			copy(dst[:], dup[0:6])
			for _, peer := range n.wire.nics {
				if peer == n || peer.MPM.Shard != shard {
					continue
				}
				if dst != Broadcast && dst != peer.Addr {
					continue
				}
				peer.receive(dup)
			}
		}
	}
	eng := n.MPM.Shard
	at := eng.Now() + delay + ff.Delay
	sent := false
	n.forEachPeerShard(func(shard *sim.Engine) {
		sent = true
		eng.ScheduleCrossAt(shard, at, deliverOn(shard))
	})
	if !sent {
		// Peerless wire: keep the historical one-event-per-transmit
		// schedule shape (an empty delivery) so schedules are identical.
		eng.ScheduleCrossAt(eng, at, deliverOn(eng))
	}
	if ff.Dup {
		n.WireDuped++
		sent = false
		n.forEachPeerShard(func(shard *sim.Engine) {
			sent = true
			eng.ScheduleCrossAt(shard, at+EtherLatency, deliverOn(shard))
		})
		if !sent {
			eng.ScheduleCrossAt(eng, at+EtherLatency, deliverOn(eng))
		}
	}
	return nil
}

// forEachPeerShard calls fn once per distinct shard owning at least one
// other NIC on the wire, in wire order.
func (n *NIC) forEachPeerShard(fn func(shard *sim.Engine)) {
	for i, peer := range n.wire.nics {
		if peer == n {
			continue
		}
		first := true
		for _, prev := range n.wire.nics[:i] {
			if prev != n && prev.MPM.Shard == peer.MPM.Shard {
				first = false
				break
			}
		}
		if first {
			fn(peer.MPM.Shard)
		}
	}
}

// receive queues a frame in engine context.
func (n *NIC) receive(frame []byte) {
	if len(n.pending) >= n.RxQueueLimit {
		n.Dropped++
		return
	}
	n.pending = append(n.pending, frame)
	n.RxFrames++
	n.RxBytes += uint64(len(frame))
	if n.OnRx != nil {
		n.OnRx()
	}
}

// Recv dequeues the next pending frame, charging the copy out of the
// receive ring; ok is false when the ring is empty.
func (n *NIC) Recv(e *hw.Exec) ([]byte, bool) {
	if len(n.pending) == 0 {
		return nil, false
	}
	f := n.pending[0]
	copy(n.pending, n.pending[1:])
	n.pending = n.pending[:len(n.pending)-1]
	e.Charge(uint64(len(f)/4) * hw.CostDeviceDMAWord)
	return f, true
}

// PendingFrames reports queued frames.
func (n *NIC) PendingFrames() int { return len(n.pending) }

// Fiber timing: 266 Mb/s is about 3 cycles per 4 bytes at 25 MHz.
const (
	FiberCyclesPer4Bytes = 3
	FiberLatency         = 40
	FiberMaxMsg          = 64 << 10
)

// FiberPort is one end of a point-to-point 266 Mb fiber channel. It is
// memory-mapped in spirit: the Cache Kernel driver for it is tiny
// because data moves by memory writes and arrival raises a signal; the
// port model therefore exposes only Send and an arrival callback.
type FiberPort struct {
	Name string
	MPM  *hw.MPM
	peer *FiberPort

	pending [][]byte
	// OnRx runs in engine context on message arrival.
	OnRx func()

	TxMsgs, RxMsgs uint64
	TxBytes        uint64
	// WireDropped/WireDuped count injected faults on sends from this
	// port.
	WireDropped, WireDuped uint64

	// TxFault, when non-nil, may drop, duplicate or delay each sent
	// message (internal/chaos). Nil costs nothing.
	TxFault func(msg []byte) FrameFault
}

// ConnectFiber creates a connected pair of ports. A link between MPMs
// on different engine shards registers the fiber's propagation latency
// as a cross-shard lookahead bound: no message arrives sooner.
func ConnectFiber(a, b *hw.MPM, name string) (*FiberPort, *FiberPort) {
	pa := &FiberPort{Name: name + ".a", MPM: a}
	pb := &FiberPort{Name: name + ".b", MPM: b}
	pa.peer, pb.peer = pb, pa
	if a.Shard != b.Shard {
		a.Machine.BoundLookahead(FiberLatency)
	}
	return pa, pb
}

// Send moves a message to the peer, charging serialization time and
// scheduling the arrival callback.
func (p *FiberPort) Send(e *hw.Exec, msg []byte) error {
	if len(msg) > FiberMaxMsg {
		return fmt.Errorf("dev: fiber message of %d bytes too large", len(msg))
	}
	dup := append([]byte(nil), msg...)
	cycles := uint64(len(msg)+3) / 4 * FiberCyclesPer4Bytes
	e.Charge(cycles)
	p.TxMsgs++
	p.TxBytes += uint64(len(msg))
	peer := p.peer
	var ff FrameFault
	if p.TxFault != nil {
		ff = p.TxFault(dup)
	}
	if ff.Drop {
		p.WireDropped++
		return nil
	}
	deliver := func() {
		peer.pending = append(peer.pending, dup)
		peer.RxMsgs++
		if peer.OnRx != nil {
			peer.OnRx()
		}
	}
	// Delivery runs on the receiving port's shard; a cross-shard link
	// rides the epoch barrier with its transit time intact.
	eng := p.MPM.Shard
	at := eng.Now() + cycles + FiberLatency + ff.Delay
	eng.ScheduleCrossAt(peer.MPM.Shard, at, deliver)
	if ff.Dup {
		p.WireDuped++
		eng.ScheduleCrossAt(peer.MPM.Shard, at+FiberLatency, deliver)
	}
	return nil
}

// Recv dequeues the next arrived message.
func (p *FiberPort) Recv(e *hw.Exec) ([]byte, bool) {
	if len(p.pending) == 0 {
		return nil, false
	}
	m := p.pending[0]
	copy(p.pending, p.pending[1:])
	p.pending = p.pending[:len(p.pending)-1]
	e.Charge(uint64(len(m)+3) / 4 * FiberCyclesPer4Bytes)
	return m, true
}

// Pending reports queued messages.
func (p *FiberPort) Pending() int { return len(p.pending) }
