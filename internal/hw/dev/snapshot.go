package dev

// Device snapshot state: the queued (in-flight-to-driver) frames and
// the accumulated counters of a NIC or fiber port. Frames already
// scheduled on the wire are engine events and exist only on a
// non-quiescent machine, which a structural snapshot refuses; the
// receive queues here are the complete device state at a quiescent
// point. Callbacks (OnRx, TxFault) are code, not state — a fork
// re-installs them when it rebuilds its drivers.

// NICState is a captured Ethernet interface.
type NICState struct {
	Pending  [][]byte
	TxFrames uint64
	RxFrames uint64
	TxBytes  uint64
	RxBytes  uint64
	Dropped  uint64
	// WireDropped/WireDuped mirror the injected-fault counters.
	WireDropped uint64
	WireDuped   uint64
}

// State deep-copies the NIC's queue and counters.
func (n *NIC) State() NICState {
	st := NICState{
		Pending:     make([][]byte, len(n.pending)),
		TxFrames:    n.TxFrames,
		RxFrames:    n.RxFrames,
		TxBytes:     n.TxBytes,
		RxBytes:     n.RxBytes,
		Dropped:     n.Dropped,
		WireDropped: n.WireDropped,
		WireDuped:   n.WireDuped,
	}
	for i, f := range n.pending {
		st.Pending[i] = append([]byte(nil), f...)
	}
	return st
}

// Restore overwrites the NIC's queue and counters with a captured
// state, deep-copying the frames so restored machines never alias the
// snapshot's buffers.
func (n *NIC) Restore(st NICState) {
	n.pending = make([][]byte, len(st.Pending))
	for i, f := range st.Pending {
		n.pending[i] = append([]byte(nil), f...)
	}
	n.TxFrames = st.TxFrames
	n.RxFrames = st.RxFrames
	n.TxBytes = st.TxBytes
	n.RxBytes = st.RxBytes
	n.Dropped = st.Dropped
	n.WireDropped = st.WireDropped
	n.WireDuped = st.WireDuped
}

// FiberState is a captured fiber port.
type FiberState struct {
	Pending     [][]byte
	TxMsgs      uint64
	RxMsgs      uint64
	TxBytes     uint64
	WireDropped uint64
	WireDuped   uint64
}

// State deep-copies the port's queue and counters.
func (p *FiberPort) State() FiberState {
	st := FiberState{
		Pending:     make([][]byte, len(p.pending)),
		TxMsgs:      p.TxMsgs,
		RxMsgs:      p.RxMsgs,
		TxBytes:     p.TxBytes,
		WireDropped: p.WireDropped,
		WireDuped:   p.WireDuped,
	}
	for i, m := range p.pending {
		st.Pending[i] = append([]byte(nil), m...)
	}
	return st
}

// Restore overwrites the port's queue and counters with a captured
// state.
func (p *FiberPort) Restore(st FiberState) {
	p.pending = make([][]byte, len(st.Pending))
	for i, m := range st.Pending {
		p.pending[i] = append([]byte(nil), m...)
	}
	p.TxMsgs = st.TxMsgs
	p.RxMsgs = st.RxMsgs
	p.TxBytes = st.TxBytes
	p.WireDropped = st.WireDropped
	p.WireDuped = st.WireDuped
}
