package hw

import (
	"encoding/binary"
	"fmt"
	//ckvet:allow shardsafe COW counters are bumped from write paths on every shard of a forked machine concurrently and only read at quiescence
	"sync/atomic"
)

// Page geometry shared with the page tables.
const (
	PageShift = 12
	PageSize  = 1 << PageShift

	// PageGroupPages is the resource-allocation granule for physical
	// memory: a page group is 128 contiguous, aligned 4 KB pages
	// (512 KB), as in the paper's kernel-object memory access array.
	PageGroupPages = 128
	PageGroupSize  = PageGroupPages * PageSize
)

// PhysMem is the machine's physical memory: an array of lazily allocated
// 4 KB frames addressed by a 32-bit physical address. It is shared by all
// MPMs over the simulated VMEbus.
//
// Frames can be copy-on-write shared with a snapshot (FrameImage) and
// with any machines forked from it: Freeze marks every allocated frame
// shared, and the first write to a shared frame privatizes a copy, so
// a fork's writes never reach the parent, its siblings, or the image.
type PhysMem struct {
	frames []*[PageSize]byte
	// shared[i] means frames[i] is referenced by a FrameImage (and
	// possibly other machines) and must be copied before mutation. Nil
	// until the memory first participates in a snapshot.
	shared []bool
	size   uint32
	// COW counters are atomics: in a sharded forked machine every shard
	// privatizes frames from its own module's allocator range (disjoint
	// frame slots, so the frames/shared slices never contend), but all
	// shards bump these machine-global words. They never feed back into
	// simulated behavior and are read only at quiescence.
	sharedPages atomic.Uint64
	copiedPages atomic.Uint64
	faults      atomic.Uint64
}

// CowStats counts copy-on-write activity on a physical memory.
type CowStats struct {
	// SharedPages is the number of frames currently in shared
	// (copy-before-write) state.
	SharedPages uint64
	// CopiedPages is the cumulative number of frames privatized by
	// copying (the frame had contents that a write had to preserve).
	CopiedPages uint64
	// Faults is the cumulative number of copy-on-write write faults
	// taken (every de-share event, including ones that only needed a
	// fresh zero frame).
	Faults uint64
}

// CowStats reports the memory's copy-on-write counters.
func (m *PhysMem) CowStats() CowStats {
	return CowStats{
		SharedPages: m.sharedPages.Load(),
		CopiedPages: m.copiedPages.Load(),
		Faults:      m.faults.Load(),
	}
}

// FrameImage is an immutable snapshot of a physical memory's frames.
// It shares frame storage copy-on-write with the memory it was frozen
// from and with every memory created via NewPhysMem: all of them mark
// the common frames shared and copy before writing, so the image's
// bytes never change after Freeze returns.
type FrameImage struct {
	frames []*[PageSize]byte
	size   uint32
}

// Freeze snapshots the memory's current contents as an immutable
// FrameImage and marks every allocated frame copy-on-write shared —
// including in the parent, whose next write to a captured frame will
// privatize a copy rather than mutate the image.
func (m *PhysMem) Freeze() *FrameImage {
	if m.shared == nil {
		m.shared = make([]bool, len(m.frames))
	}
	im := &FrameImage{frames: make([]*[PageSize]byte, len(m.frames)), size: m.size}
	copy(im.frames, m.frames)
	for i, f := range m.frames {
		if f != nil && !m.shared[i] {
			m.shared[i] = true
			m.sharedPages.Add(1)
		}
	}
	return im
}

// Size reports the image's memory size in bytes.
func (im *FrameImage) Size() uint32 { return im.size }

// Frames reports the image's frame count.
func (im *FrameImage) Frames() uint32 { return im.size / PageSize }

// PageBytes returns the image's frame for pfn, or nil for a
// never-touched (all-zero) frame. Callers must not mutate it.
func (im *FrameImage) PageBytes(pfn uint32) *[PageSize]byte {
	return im.frames[pfn]
}

// NewPhysMem creates a fresh physical memory whose initial contents are
// the image, sharing every allocated frame copy-on-write. This is the
// mutable restore path: a forked machine starts from the image and
// lazily copies a frame only on its first write.
func (im *FrameImage) NewPhysMem() *PhysMem {
	m := &PhysMem{
		frames: make([]*[PageSize]byte, len(im.frames)),
		shared: make([]bool, len(im.frames)),
		size:   im.size,
	}
	copy(m.frames, im.frames)
	for i, f := range m.frames {
		if f != nil {
			m.shared[i] = true
			m.sharedPages.Add(1)
		}
	}
	return m
}

// NewPhysMem returns a physical memory of the given size, which must be a
// positive multiple of the page size.
func NewPhysMem(size uint32) *PhysMem {
	if size == 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("hw: bad physical memory size %#x", size))
	}
	return &PhysMem{frames: make([]*[PageSize]byte, size/PageSize), size: size}
}

// Size reports the physical memory size in bytes.
func (m *PhysMem) Size() uint32 { return m.size }

// Frames reports the number of page frames.
func (m *PhysMem) Frames() uint32 { return m.size / PageSize }

// Page returns the frame for pfn for mutation, allocating it zeroed on
// first touch and privatizing a copy if the frame is snapshot-shared.
// Read-only internal paths use peek instead, which never allocates or
// de-shares.
func (m *PhysMem) Page(pfn uint32) *[PageSize]byte {
	if pfn >= uint32(len(m.frames)) {
		panic(fmt.Sprintf("hw: physical frame %#x out of range", pfn))
	}
	f := m.frames[pfn]
	if f == nil {
		f = new([PageSize]byte)
		m.frames[pfn] = f
		return f
	}
	if m.shared != nil && m.shared[pfn] {
		c := new([PageSize]byte)
		*c = *f
		m.frames[pfn] = c
		m.shared[pfn] = false
		m.sharedPages.Add(^uint64(0))
		m.copiedPages.Add(1)
		m.faults.Add(1)
		return c
	}
	return f
}

// peek returns the frame for pfn without allocating or privatizing it;
// nil means the frame has never been touched and reads as zeros.
func (m *PhysMem) peek(pfn uint32) *[PageSize]byte {
	if pfn >= uint32(len(m.frames)) {
		panic(fmt.Sprintf("hw: physical frame %#x out of range", pfn))
	}
	return m.frames[pfn]
}

// Read32 reads the 32-bit little-endian word at physical address pa,
// which must be 4-byte aligned.
func (m *PhysMem) Read32(pa uint32) uint32 {
	checkAlign(pa, 4)
	f := m.peek(pa >> PageShift)
	if f == nil {
		return 0
	}
	off := pa & (PageSize - 1)
	return binary.LittleEndian.Uint32(f[off : off+4])
}

// Write32 writes the 32-bit little-endian word at physical address pa.
func (m *PhysMem) Write32(pa, v uint32) {
	checkAlign(pa, 4)
	f := m.Page(pa >> PageShift)
	off := pa & (PageSize - 1)
	binary.LittleEndian.PutUint32(f[off:off+4], v)
}

// Read8 reads the byte at pa.
func (m *PhysMem) Read8(pa uint32) byte {
	f := m.peek(pa >> PageShift)
	if f == nil {
		return 0
	}
	return f[pa&(PageSize-1)]
}

// Write8 writes the byte at pa.
func (m *PhysMem) Write8(pa uint32, v byte) {
	m.Page(pa >> PageShift)[pa&(PageSize-1)] = v
}

// ReadBytes copies n bytes starting at pa into a fresh slice; the range
// may span pages.
func (m *PhysMem) ReadBytes(pa, n uint32) []byte {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		out[i] = m.Read8(pa + i)
	}
	return out
}

// WriteBytes copies b into physical memory starting at pa.
func (m *PhysMem) WriteBytes(pa uint32, b []byte) {
	for i, v := range b {
		m.Write8(pa+uint32(i), v)
	}
}

func checkAlign(pa, n uint32) {
	if pa%n != 0 {
		panic(fmt.Sprintf("hw: unaligned %d-byte access at %#x", n, pa))
	}
}

// RAMAllocator is a byte-budget accountant for an MPM's local RAM, where
// the Cache Kernel keeps all its descriptors and page tables. It tracks
// usage and peak so the Section 5.2 space arithmetic can be reproduced
// from a live system.
type RAMAllocator struct {
	name string
	size int
	used int
	peak int
}

// NewRAMAllocator returns an allocator with the given byte budget.
func NewRAMAllocator(name string, size int) *RAMAllocator {
	return &RAMAllocator{name: name, size: size}
}

// Alloc reserves n bytes, reporting whether they fit.
func (a *RAMAllocator) Alloc(n int) bool {
	if n < 0 {
		panic("hw: negative allocation")
	}
	if a.used+n > a.size {
		return false
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return true
}

// Free releases n bytes.
func (a *RAMAllocator) Free(n int) {
	if n < 0 || n > a.used {
		panic(fmt.Sprintf("hw: bad free of %d bytes (%d used) on %s", n, a.used, a.name))
	}
	a.used -= n
}

// RestoreAccounting pins the allocator's usage and high-water mark to
// snapshot-captured values. A machine restore rebuilds descriptors and
// page tables in its own order, which reproduces the same live byte
// count but not necessarily the same peak; this sets both to the
// parent's numbers so the Section 5.2 space arithmetic survives a fork.
func (a *RAMAllocator) RestoreAccounting(used, peak int) {
	if used < 0 || used > a.size || peak < used || peak > a.size {
		panic(fmt.Sprintf("hw: bad restored accounting used=%d peak=%d size=%d on %s", used, peak, a.size, a.name))
	}
	a.used = used
	a.peak = peak
}

// Used reports the bytes currently allocated.
func (a *RAMAllocator) Used() int { return a.used }

// Peak reports the high-water mark.
func (a *RAMAllocator) Peak() int { return a.peak }

// Size reports the total budget.
func (a *RAMAllocator) Size() int { return a.size }

// Name reports the allocator's name.
func (a *RAMAllocator) Name() string { return a.name }
