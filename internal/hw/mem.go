package hw

import (
	"encoding/binary"
	"fmt"
)

// Page geometry shared with the page tables.
const (
	PageShift = 12
	PageSize  = 1 << PageShift

	// PageGroupPages is the resource-allocation granule for physical
	// memory: a page group is 128 contiguous, aligned 4 KB pages
	// (512 KB), as in the paper's kernel-object memory access array.
	PageGroupPages = 128
	PageGroupSize  = PageGroupPages * PageSize
)

// PhysMem is the machine's physical memory: an array of lazily allocated
// 4 KB frames addressed by a 32-bit physical address. It is shared by all
// MPMs over the simulated VMEbus.
type PhysMem struct {
	frames []*[PageSize]byte
	size   uint32
}

// NewPhysMem returns a physical memory of the given size, which must be a
// positive multiple of the page size.
func NewPhysMem(size uint32) *PhysMem {
	if size == 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("hw: bad physical memory size %#x", size))
	}
	return &PhysMem{frames: make([]*[PageSize]byte, size/PageSize), size: size}
}

// Size reports the physical memory size in bytes.
func (m *PhysMem) Size() uint32 { return m.size }

// Frames reports the number of page frames.
func (m *PhysMem) Frames() uint32 { return m.size / PageSize }

// Page returns the frame for pfn, allocating it zeroed on first touch.
func (m *PhysMem) Page(pfn uint32) *[PageSize]byte {
	if pfn >= uint32(len(m.frames)) {
		panic(fmt.Sprintf("hw: physical frame %#x out of range", pfn))
	}
	f := m.frames[pfn]
	if f == nil {
		f = new([PageSize]byte)
		m.frames[pfn] = f
	}
	return f
}

// Read32 reads the 32-bit little-endian word at physical address pa,
// which must be 4-byte aligned.
func (m *PhysMem) Read32(pa uint32) uint32 {
	checkAlign(pa, 4)
	f := m.Page(pa >> PageShift)
	off := pa & (PageSize - 1)
	return binary.LittleEndian.Uint32(f[off : off+4])
}

// Write32 writes the 32-bit little-endian word at physical address pa.
func (m *PhysMem) Write32(pa, v uint32) {
	checkAlign(pa, 4)
	f := m.Page(pa >> PageShift)
	off := pa & (PageSize - 1)
	binary.LittleEndian.PutUint32(f[off:off+4], v)
}

// Read8 reads the byte at pa.
func (m *PhysMem) Read8(pa uint32) byte {
	return m.Page(pa >> PageShift)[pa&(PageSize-1)]
}

// Write8 writes the byte at pa.
func (m *PhysMem) Write8(pa uint32, v byte) {
	m.Page(pa >> PageShift)[pa&(PageSize-1)] = v
}

// ReadBytes copies n bytes starting at pa into a fresh slice; the range
// may span pages.
func (m *PhysMem) ReadBytes(pa, n uint32) []byte {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		out[i] = m.Read8(pa + i)
	}
	return out
}

// WriteBytes copies b into physical memory starting at pa.
func (m *PhysMem) WriteBytes(pa uint32, b []byte) {
	for i, v := range b {
		m.Write8(pa+uint32(i), v)
	}
}

func checkAlign(pa, n uint32) {
	if pa%n != 0 {
		panic(fmt.Sprintf("hw: unaligned %d-byte access at %#x", n, pa))
	}
}

// RAMAllocator is a byte-budget accountant for an MPM's local RAM, where
// the Cache Kernel keeps all its descriptors and page tables. It tracks
// usage and peak so the Section 5.2 space arithmetic can be reproduced
// from a live system.
type RAMAllocator struct {
	name string
	size int
	used int
	peak int
}

// NewRAMAllocator returns an allocator with the given byte budget.
func NewRAMAllocator(name string, size int) *RAMAllocator {
	return &RAMAllocator{name: name, size: size}
}

// Alloc reserves n bytes, reporting whether they fit.
func (a *RAMAllocator) Alloc(n int) bool {
	if n < 0 {
		panic("hw: negative allocation")
	}
	if a.used+n > a.size {
		return false
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return true
}

// Free releases n bytes.
func (a *RAMAllocator) Free(n int) {
	if n < 0 || n > a.used {
		panic(fmt.Sprintf("hw: bad free of %d bytes (%d used) on %s", n, a.used, a.name))
	}
	a.used -= n
}

// Used reports the bytes currently allocated.
func (a *RAMAllocator) Used() int { return a.used }

// Peak reports the high-water mark.
func (a *RAMAllocator) Peak() int { return a.peak }

// Size reports the total budget.
func (a *RAMAllocator) Size() int { return a.size }

// Name reports the allocator's name.
func (a *RAMAllocator) Name() string { return a.name }
