package hw

import (
	"math"
	"testing"

	"vpp/internal/pagetable"
)

// BenchmarkTLBLookup measures the 64-entry associative search.
func BenchmarkTLBLookup(b *testing.B) {
	tlb := NewTLB(DefaultTLBEntries)
	for i := uint32(0); i < DefaultTLBEntries; i++ {
		tlb.Insert(1, i, pagetable.MakePTE(i, pagetable.PTEValid))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Lookup(1, uint32(i)%DefaultTLBEntries)
	}
}

// BenchmarkL2Access measures the direct-mapped tag check.
func BenchmarkL2Access(b *testing.B) {
	c := NewL2Cache(8 << 20)
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*64) % (16 << 20))
	}
}

// BenchmarkTranslateHit measures the MMU translation hot path alone: a
// repeated translation of one resident page, which after the first fill
// is a pure TLB hit on every iteration.
func BenchmarkTranslateHit(b *testing.B) {
	m := NewMachine(DefaultConfig())
	mpm := m.MPMs[0]
	tbl, _ := pagetable.New(nil)
	tbl.Insert(0x100_0000, pagetable.MakePTE(512, pagetable.PTEValid|pagetable.PTEWrite))
	sp := &Space{Table: tbl, ASID: 1}
	n := b.N
	e := mpm.NewExec("bench", func(e *Exec) {
		e.Space = sp
		e.Translate(0x100_0000, false) // fill
		for i := 0; i < n; i++ {
			e.Translate(0x100_0000, false)
		}
	})
	mpm.CPUs[0].Dispatch(e)
	b.ResetTimer()
	if err := m.Run(math.MaxUint64); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatedMemoryAccess measures the full simulated load path
// (translate, cache model, physical read) per host second.
func BenchmarkSimulatedMemoryAccess(b *testing.B) {
	m := NewMachine(DefaultConfig())
	mpm := m.MPMs[0]
	tbl, _ := pagetable.New(nil)
	for i := uint32(0); i < 256; i++ {
		tbl.Insert(0x100_0000+i<<PageShift, pagetable.MakePTE(512+i, pagetable.PTEValid|pagetable.PTEWrite))
	}
	sp := &Space{Table: tbl, ASID: 1}
	n := b.N
	e := mpm.NewExec("bench", func(e *Exec) {
		e.Space = sp
		for i := 0; i < n; i++ {
			e.Load32(0x100_0000 + uint32(i%256)<<PageShift)
		}
	})
	mpm.CPUs[0].Dispatch(e)
	b.ResetTimer()
	if err := m.Run(math.MaxUint64); err != nil {
		b.Fatal(err)
	}
}
