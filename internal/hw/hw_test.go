package hw

import (
	"math"
	"testing"
	"testing/quick"

	"vpp/internal/pagetable"
)

func TestPhysMemReadWrite(t *testing.T) {
	m := NewPhysMem(1 << 20)
	m.Write32(0x1000, 0xdeadbeef)
	if v := m.Read32(0x1000); v != 0xdeadbeef {
		t.Fatalf("read = %#x", v)
	}
	m.Write8(0x1004, 0x7f)
	if v := m.Read8(0x1004); v != 0x7f {
		t.Fatalf("read8 = %#x", v)
	}
	b := []byte("hello across pages")
	m.WriteBytes(PageSize-4, b)
	if got := string(m.ReadBytes(PageSize-4, uint32(len(b)))); got != string(b) {
		t.Fatalf("cross-page bytes = %q", got)
	}
}

func TestPhysMemAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	NewPhysMem(1 << 20).Read32(2)
}

func TestRAMAllocator(t *testing.T) {
	a := NewRAMAllocator("t", 100)
	if !a.Alloc(60) || !a.Alloc(40) {
		t.Fatal("allocations within budget failed")
	}
	if a.Alloc(1) {
		t.Fatal("over-budget allocation succeeded")
	}
	a.Free(50)
	if a.Used() != 50 || a.Peak() != 100 {
		t.Fatalf("used=%d peak=%d", a.Used(), a.Peak())
	}
}

func TestRAMAllocatorProperty(t *testing.T) {
	f := func(ops []int16) bool {
		a := NewRAMAllocator("p", 1<<20)
		outstanding := 0
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				if a.Alloc(n) {
					outstanding += n
				}
			} else if -n <= outstanding {
				a.Free(-n)
				outstanding += n
			}
			if a.Used() != outstanding {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL2CacheHitMiss(t *testing.T) {
	c := NewL2Cache(1 << 10) // 32 lines
	if got := c.Access(0); got != CostMemMiss {
		t.Fatalf("first access cost = %d", got)
	}
	if got := c.Access(4); got != CostMemHit {
		t.Fatalf("same-line access cost = %d", got)
	}
	// Conflict: same index, different tag.
	if got := c.Access(1 << 10); got != CostMemMiss {
		t.Fatalf("conflict access cost = %d", got)
	}
	if got := c.Access(0); got != CostMemMiss {
		t.Fatalf("evicted line access cost = %d", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestL2CacheFlushPage(t *testing.T) {
	c := NewL2Cache(1 << 20)
	c.Access(0x2000)
	c.FlushPage(0x2000)
	if got := c.Access(0x2000); got != CostMemMiss {
		t.Fatal("flushed line still hit")
	}
}

func TestTLBInsertLookupInvalidate(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(1, 0x10, pagetable.MakePTE(5, pagetable.PTEValid))
	if _, ok := tlb.Lookup(1, 0x10); !ok {
		t.Fatal("miss after insert")
	}
	if _, ok := tlb.Lookup(2, 0x10); ok {
		t.Fatal("hit with wrong ASID")
	}
	tlb.InvalidatePage(1, 0x10)
	if _, ok := tlb.Lookup(1, 0x10); ok {
		t.Fatal("hit after invalidate")
	}
}

func TestTLBRoundRobinEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, 1, pagetable.MakePTE(1, pagetable.PTEValid))
	tlb.Insert(1, 2, pagetable.MakePTE(2, pagetable.PTEValid))
	tlb.Insert(1, 3, pagetable.MakePTE(3, pagetable.PTEValid)) // evicts vpn 1
	if _, ok := tlb.Lookup(1, 1); ok {
		t.Fatal("evicted entry still present")
	}
	if _, ok := tlb.Lookup(1, 3); !ok {
		t.Fatal("new entry missing")
	}
}

func TestTLBUpgradeInPlace(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(1, 7, pagetable.MakePTE(9, pagetable.PTEValid))
	tlb.Insert(1, 7, pagetable.MakePTE(9, pagetable.PTEValid|pagetable.PTEWrite))
	pte, ok := tlb.Lookup(1, 7)
	if !ok || !pte.Writable() {
		t.Fatal("in-place upgrade failed")
	}
	n := 0
	for vpn := uint32(0); vpn < 16; vpn++ {
		if _, ok := tlb.Lookup(1, vpn); ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("duplicate entries: %d", n)
	}
}

func TestMachineGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MPMs = 3
	m := NewMachine(cfg)
	if len(m.MPMs) != 3 {
		t.Fatalf("MPMs = %d", len(m.MPMs))
	}
	ids := map[int]bool{}
	for _, mpm := range m.MPMs {
		if len(mpm.CPUs) != 4 {
			t.Fatalf("CPUs = %d", len(mpm.CPUs))
		}
		for _, c := range mpm.CPUs {
			if ids[c.ID] {
				t.Fatalf("duplicate CPU id %d", c.ID)
			}
			ids[c.ID] = true
		}
	}
}

// fakeSup is a minimal supervisor that loads identity mappings on fault.
type fakeSup struct {
	m        *Machine
	space    *Space
	faults   int
	traps    int
	messages []uint32
}

func (s *fakeSup) Syscall(e *Exec, no uint32, args []uint32) (uint32, uint32) {
	s.traps++
	return no + 1, 0
}

func (s *fakeSup) AccessError(e *Exec, va uint32, write bool, f Fault) {
	s.faults++
	flags := pagetable.PTEValid | pagetable.PTEWrite
	if err := s.space.Table.Insert(va&^(PageSize-1), pagetable.MakePTE(va>>PageShift, flags)); err != nil {
		panic(err)
	}
}

func (s *fakeSup) Interrupt(e *Exec, pending uint32) {}
func (s *fakeSup) MessageWrite(e *Exec, va, pa uint32) {
	s.messages = append(s.messages, va)
}
func (s *fakeSup) TimerTick(c *CPU) {}
func (s *fakeSup) Exited(e *Exec)   {}

func newTestMachine(t *testing.T) (*Machine, *MPM, *fakeSup) {
	t.Helper()
	m := NewMachine(DefaultConfig())
	mpm := m.MPMs[0]
	tbl, err := pagetable.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	sup := &fakeSup{m: m, space: &Space{Table: tbl, ASID: 1}}
	mpm.Sup = sup
	return m, mpm, sup
}

func TestExecVirtualAccessWithDemandFault(t *testing.T) {
	m, mpm, sup := newTestMachine(t)
	var got uint32
	e := mpm.NewExec("user", func(e *Exec) {
		e.Space = sup.space
		e.Store32(0x0200_0000, 77)
		got = e.Load32(0x0200_0000)
	})
	mpm.CPUs[0].Dispatch(e)
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("got %d", got)
	}
	if sup.faults != 1 {
		t.Fatalf("faults = %d, want 1", sup.faults)
	}
	// The word must be at the identity physical address.
	if v := m.Phys.Read32(0x0200_0000); v != 77 {
		t.Fatalf("phys = %d", v)
	}
}

func TestExecTrapDispatch(t *testing.T) {
	m, mpm, sup := newTestMachine(t)
	var r uint32
	e := mpm.NewExec("user", func(e *Exec) {
		e.Space = sup.space
		r, _ = e.Trap(41)
	})
	mpm.CPUs[0].Dispatch(e)
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if r != 42 || sup.traps != 1 {
		t.Fatalf("r=%d traps=%d", r, sup.traps)
	}
}

func TestMessageModeWriteRaisesSignal(t *testing.T) {
	m, mpm, sup := newTestMachine(t)
	sup.space.Table.Insert(0x5000_0000,
		pagetable.MakePTE(0x123, pagetable.PTEValid|pagetable.PTEWrite|pagetable.PTEMessage))
	e := mpm.NewExec("sender", func(e *Exec) {
		e.Space = sup.space
		e.Store32(0x5000_0010, 1)
		e.Load32(0x5000_0010) // reads do not signal
	})
	mpm.CPUs[0].Dispatch(e)
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if len(sup.messages) != 1 || sup.messages[0] != 0x5000_0010 {
		t.Fatalf("messages = %#x", sup.messages)
	}
}

func TestExecModifiedBitSetOnWrite(t *testing.T) {
	m, mpm, sup := newTestMachine(t)
	va := uint32(0x6000_0000)
	sup.space.Table.Insert(va, pagetable.MakePTE(0x200, pagetable.PTEValid|pagetable.PTEWrite))
	e := mpm.NewExec("w", func(e *Exec) {
		e.Space = sup.space
		_ = e.Load32(va)
		pte, _ := sup.space.Table.Lookup(va)
		if pte&pagetable.PTEModified != 0 {
			t.Error("modified set by read")
		}
		e.Store32(va, 5)
	})
	mpm.CPUs[0].Dispatch(e)
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	pte, _ := sup.space.Table.Lookup(va)
	if pte&pagetable.PTEModified == 0 || pte&pagetable.PTEReferenced == 0 {
		t.Fatalf("R/M not set: %#x", pte)
	}
}

func TestExecChargesTime(t *testing.T) {
	m, mpm, sup := newTestMachine(t)
	var start, end uint64
	e := mpm.NewExec("t", func(e *Exec) {
		e.Space = sup.space
		start = e.Now()
		for i := 0; i < 100; i++ {
			e.Store32(0x100_0000+uint32(i)*4, uint32(i))
		}
		end = e.Now()
	})
	mpm.CPUs[0].Dispatch(e)
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if end <= start {
		t.Fatal("no time charged")
	}
	// 100 stores should cost at least 100 memory references.
	if end-start < 100*CostMemHit {
		t.Fatalf("charged only %d cycles", end-start)
	}
}

func TestTrapExitPanicsWithoutSupervisor(t *testing.T) {
	m := NewMachine(DefaultConfig())
	mpm := m.MPMs[0]
	e := mpm.NewExec("x", func(e *Exec) {
		defer func() {
			if recover() == nil {
				t.Error("trap without supervisor did not panic")
			}
			e.Exit()
		}()
		e.Trap(1)
	})
	mpm.CPUs[0].Dispatch(e)
	_ = m.Run(math.MaxUint64)
}

func TestFlushTLBSpaceAcrossCPUs(t *testing.T) {
	m := NewMachine(DefaultConfig())
	mpm := m.MPMs[0]
	for _, c := range mpm.CPUs {
		c.TLB.Insert(3, 9, pagetable.MakePTE(1, pagetable.PTEValid))
	}
	mpm.FlushTLBSpace(3)
	for _, c := range mpm.CPUs {
		if _, ok := c.TLB.Lookup(3, 9); ok {
			t.Fatal("entry survived space flush")
		}
	}
}

func TestCostConversions(t *testing.T) {
	if MicrosFromCycles(250) != 10 {
		t.Fatal("MicrosFromCycles")
	}
	if CyclesFromMicros(10) != 250 {
		t.Fatal("CyclesFromMicros")
	}
}
