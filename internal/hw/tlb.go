package hw

import "vpp/internal/pagetable"

// TLB models a per-CPU 64-entry fully associative address translation
// cache (the 68040 ATC), tagged by address-space identifier so a space
// switch needs no flush. Replacement is round-robin, which the real part
// approximated with a pseudo-random pointer.
//
// The host-side implementation is a hash index keyed by (asid, vpn)
// over the same entry array the hardware would search associatively:
// replacement order, eviction victims and hit/miss statistics are
// exactly those of the original linear scan, only the host cost of
// finding an entry changes. The generation counter lets per-Exec
// translation micro-caches (see Exec.Translate) validate themselves
// cheaply: any mutation that could change the outcome of a lookup
// bumps it.
type TLB struct {
	entries []tlbEntry
	index   map[uint64]int32 // (asid, vpn) -> valid entry position
	next    int
	gen     uint64
	hits    uint64
	misses  uint64
}

type tlbEntry struct {
	asid  uint16
	valid bool
	vpn   uint32
	pte   pagetable.PTE
}

// DefaultTLBEntries matches the 68040 ATC.
const DefaultTLBEntries = 64

// tlbKey packs an (asid, vpn) pair into one index key.
func tlbKey(asid uint16, vpn uint32) uint64 {
	return uint64(asid)<<32 | uint64(vpn)
}

// NewTLB returns a TLB with n entries.
func NewTLB(n int) *TLB {
	if n <= 0 {
		panic("hw: bad TLB size")
	}
	return &TLB{
		entries: make([]tlbEntry, n),
		index:   make(map[uint64]int32, n),
	}
}

// Gen reports the TLB's mutation generation. A cached lookup result is
// only valid while the generation is unchanged.
func (t *TLB) Gen() uint64 { return t.gen }

// Lookup searches for (asid, vpn); ok reports a hit.
func (t *TLB) Lookup(asid uint16, vpn uint32) (pagetable.PTE, bool) {
	if i, ok := t.index[tlbKey(asid, vpn)]; ok {
		t.hits++
		return t.entries[i].pte, true
	}
	t.misses++
	return 0, false
}

// recordHit accounts a model-level TLB hit that was answered by a
// translation micro-cache without consulting the entry array.
func (t *TLB) recordHit() { t.hits++ }

// Insert fills an entry for (asid, vpn), evicting round-robin.
func (t *TLB) Insert(asid uint16, vpn uint32, pte pagetable.PTE) {
	key := tlbKey(asid, vpn)
	// Overwrite an existing entry for the same page if present, so a
	// permission upgrade takes effect immediately.
	if i, ok := t.index[key]; ok {
		t.entries[i].pte = pte
		t.gen++
		return
	}
	victim := &t.entries[t.next]
	if victim.valid {
		delete(t.index, tlbKey(victim.asid, victim.vpn))
		t.gen++
	}
	*victim = tlbEntry{asid: asid, valid: true, vpn: vpn, pte: pte}
	t.index[key] = int32(t.next)
	t.next = (t.next + 1) % len(t.entries)
}

// InvalidatePage drops the entry for (asid, vpn) if present.
func (t *TLB) InvalidatePage(asid uint16, vpn uint32) {
	key := tlbKey(asid, vpn)
	if i, ok := t.index[key]; ok {
		t.entries[i].valid = false
		delete(t.index, key)
		t.gen++
	}
}

// InvalidateSpace drops all entries of one address space.
func (t *TLB) InvalidateSpace(asid uint16) {
	for i := range t.entries {
		if t.entries[i].asid == asid {
			if t.entries[i].valid {
				delete(t.index, tlbKey(asid, t.entries[i].vpn))
			}
			t.entries[i].valid = false
		}
	}
	t.gen++
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	clear(t.index)
	t.gen++
}

// Stats reports accumulated hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }
