package hw

import "vpp/internal/pagetable"

// TLB models a per-CPU 64-entry fully associative address translation
// cache (the 68040 ATC), tagged by address-space identifier so a space
// switch needs no flush. Replacement is round-robin, which the real part
// approximated with a pseudo-random pointer.
type TLB struct {
	entries []tlbEntry
	next    int
	hits    uint64
	misses  uint64
}

type tlbEntry struct {
	asid  uint16
	valid bool
	vpn   uint32
	pte   pagetable.PTE
}

// DefaultTLBEntries matches the 68040 ATC.
const DefaultTLBEntries = 64

// NewTLB returns a TLB with n entries.
func NewTLB(n int) *TLB {
	if n <= 0 {
		panic("hw: bad TLB size")
	}
	return &TLB{entries: make([]tlbEntry, n)}
}

// Lookup searches for (asid, vpn); ok reports a hit.
func (t *TLB) Lookup(asid uint16, vpn uint32) (pagetable.PTE, bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			t.hits++
			return e.pte, true
		}
	}
	t.misses++
	return 0, false
}

// Insert fills an entry for (asid, vpn), evicting round-robin.
func (t *TLB) Insert(asid uint16, vpn uint32, pte pagetable.PTE) {
	// Overwrite an existing entry for the same page if present, so a
	// permission upgrade takes effect immediately.
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			e.pte = pte
			return
		}
	}
	t.entries[t.next] = tlbEntry{asid: asid, valid: true, vpn: vpn, pte: pte}
	t.next = (t.next + 1) % len(t.entries)
}

// InvalidatePage drops the entry for (asid, vpn) if present.
func (t *TLB) InvalidatePage(asid uint16, vpn uint32) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			e.valid = false
		}
	}
}

// InvalidateSpace drops all entries of one address space.
func (t *TLB) InvalidateSpace(asid uint16) {
	for i := range t.entries {
		if t.entries[i].asid == asid {
			t.entries[i].valid = false
		}
	}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// Stats reports accumulated hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }
