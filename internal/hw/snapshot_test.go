package hw

import (
	"reflect"
	"testing"

	"vpp/internal/pagetable"
)

// TestTLBStateRoundTrip drives table-selected histories through a TLB,
// captures it, restores into a fresh TLB of the same geometry, and
// requires a deeply equal re-capture plus identical lookup behavior.
func TestTLBStateRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		fill func(tlb *TLB)
	}{
		{"empty", func(tlb *TLB) {}},
		{"partial", func(tlb *TLB) {
			tlb.Insert(1, 0x10, pagetable.MakePTE(0x100, pagetable.PTEValid))
			tlb.Insert(1, 0x11, pagetable.MakePTE(0x101, pagetable.PTEValid|pagetable.PTEWrite))
			tlb.Lookup(1, 0x10)
			tlb.Lookup(2, 0x99)
		}},
		{"wrapped_and_invalidated", func(tlb *TLB) {
			for i := uint32(0); i < 6; i++ { // wraps a 4-entry TLB
				tlb.Insert(2, i, pagetable.MakePTE(0x200+i, pagetable.PTEValid))
			}
			tlb.InvalidatePage(2, 4)
			tlb.Lookup(2, 5)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tlb := NewTLB(4)
			tc.fill(tlb)
			st := tlb.State()
			fresh := NewTLB(4)
			if err := fresh.Restore(st); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if st2 := fresh.State(); !reflect.DeepEqual(st, st2) {
				t.Fatalf("TLB state did not survive the round trip:\n first: %+v\nsecond: %+v", st, st2)
			}
			// Behavioral check: every slot answers identically.
			for _, e := range st.Entries {
				want, okWant := tlb.Lookup(e.ASID, e.VPN)
				got, okGot := fresh.Lookup(e.ASID, e.VPN)
				if want != got || okWant != okGot {
					t.Fatalf("lookup(%d, %#x) = %#x,%v vs %#x,%v", e.ASID, e.VPN, got, okGot, want, okWant)
				}
			}
		})
	}
	if err := NewTLB(8).Restore(NewTLB(4).State()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestL2StateRoundTrip does the same for the second-level cache's sparse
// tag capture.
func TestL2StateRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		fill func(c *L2Cache)
	}{
		{"empty", func(c *L2Cache) {}},
		{"hot_lines", func(c *L2Cache) {
			for pa := uint32(0); pa < 4*L2LineSize; pa += 4 {
				c.Access(pa)
			}
			c.Access(0) // a hit
		}},
		{"flushed", func(c *L2Cache) {
			c.Access(0)
			c.Access(0x1_0000) // conflicting tag
			c.Access(PageSize)
			c.FlushPage(PageSize)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := NewL2Cache(8 * L2LineSize)
			tc.fill(c)
			st := c.State()
			fresh := NewL2Cache(8 * L2LineSize)
			if err := fresh.Restore(st); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if st2 := fresh.State(); !reflect.DeepEqual(st, st2) {
				t.Fatalf("L2 state did not survive the round trip:\n first: %+v\nsecond: %+v", st, st2)
			}
		})
	}
	if err := NewL2Cache(4 * L2LineSize).Restore(NewL2Cache(8 * L2LineSize).State()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	bad := L2State{NTags: 4, Tags: []L2Tag{{Line: 9, Tag: 1}}}
	if err := NewL2Cache(4 * L2LineSize).Restore(bad); err == nil {
		t.Fatal("out-of-range line accepted")
	}
}

// TestCPUStateRoundTrip pins the interrupt-state capture: a pending
// cause bit left by an idle-time timer must ride the snapshot, and the
// digest must see it.
func TestCPUStateRoundTrip(t *testing.T) {
	m := NewMachine(DefaultConfig())
	c := m.MPMs[0].CPUs[0]
	before := m.StateDigest()
	c.Pending = 1
	c.IntrOff = true
	if m.StateDigest() == before {
		t.Fatal("digest blind to interrupt state")
	}
	st := c.State()
	c2 := NewMachine(DefaultConfig()).MPMs[0].CPUs[0]
	c2.RestoreIntr(st)
	if c2.Pending != 1 || !c2.IntrOff {
		t.Fatalf("restored interrupt state %+v", c2.State())
	}
}
