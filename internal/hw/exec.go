package hw

import (
	"fmt"

	"vpp/internal/pagetable"
	"vpp/internal/sim"
)

// Space is the hardware view of an address space: a translation tree plus
// the address-space identifier tagging its TLB entries.
type Space struct {
	Table *pagetable.Table
	ASID  uint16
}

// Regs is the architectural register state the Cache Kernel saves into a
// thread descriptor. The simulation only needs a few registers: the
// remaining machine state of a thread is its (parked) coroutine.
type Regs struct {
	PC uint32
	SP uint32
	A0 uint32 // argument / result register
	A1 uint32
}

// Exec is a simulated execution context: the "real" thread of control
// behind a Cache Kernel thread object, or a device engine. It persists
// across Cache Kernel load/unload of its thread descriptor (the parked
// coroutine is the register state the descriptor caches).
type Exec struct {
	Name string
	MPM  *MPM

	// Space is the current translation context. Nil contexts (devices,
	// early boot) may only use physical accesses.
	Space *Space

	// Mode is the current protection level.
	Mode Mode

	// Regs is the live register file.
	Regs Regs

	// User carries the supervisor layer's thread object.
	User any

	// CPU is the processor the context is dispatched on, nil if not
	// running.
	CPU *CPU

	coro     *sim.Coro
	ctx      *sim.Ctx
	devClock *sim.Clock // non-nil for device executions
	finished bool
	killed   bool

	// mc is a one-entry translation micro-cache: the last (asid, vpn)
	// pair this context translated through a TLB hit, valid only while
	// the owning TLB's generation is unchanged. It short-circuits the
	// host-side TLB lookup on the (dominant) repeated-page case while
	// charging the identical cycles and recording the identical hit —
	// a host data structure, not a change to the machine model.
	mc struct {
		tlb  *TLB
		gen  uint64
		asid uint16
		ok   bool
		vpn  uint32
		pte  pagetable.PTE
	}
}

type execExit struct{ e *Exec }

// NewExec creates an execution context whose coroutine runs body when
// first dispatched. The supervisor's Exited hook runs when body returns
// or the context calls Exit.
func (m *MPM) NewExec(name string, body func(*Exec)) *Exec {
	e := &Exec{Name: name, MPM: m, Mode: ModeUser}
	e.coro = m.Shard.NewCoro(name, func(ctx *sim.Ctx) {
		e.ctx = ctx
		defer func() {
			if r := recover(); r != nil {
				x, ok := r.(execExit)
				if !ok || x.e != e {
					panic(r)
				}
			}
			e.finished = true
			if e.CPU != nil && e.CPU.Cur == e {
				e.CPU.Cur = nil
			}
			if m.Sup != nil {
				m.Sup.Exited(e)
			}
		}()
		body(e)
	})
	return e
}

// NewDeviceExec creates an execution context with its own clock (a DMA or
// protocol engine rather than a thread on a CPU) and makes it runnable.
func (m *MPM) NewDeviceExec(name string, body func(*Exec)) *Exec {
	e := m.NewExec(name, body)
	e.Mode = ModeSupervisor
	e.devClock = sim.NewClock(name)
	m.Shard.UnparkOn(e.coro, e.devClock)
	return e
}

// Wake unparks a parked device execution onto its own clock, advancing
// it to at least the engine's current time. Device callbacks (frame
// arrival, timer) use it; waking an already-runnable or finished
// execution is a no-op.
func (e *Exec) Wake() {
	if e.devClock == nil || e.finished || e.coro.Runnable() {
		return
	}
	eng := e.MPM.Shard
	e.devClock.AdvanceTo(eng.Now())
	eng.UnparkOn(e.coro, e.devClock)
}

// Coro exposes the underlying coroutine for dispatch bookkeeping.
func (e *Exec) Coro() *sim.Coro { return e.coro }

// Ctx returns the live simulation context; only valid while running.
func (e *Exec) Ctx() *sim.Ctx { return e.ctx }

// Finished reports whether the context's body has returned.
func (e *Exec) Finished() bool { return e.finished }

// Now reports the context's current virtual time in cycles.
func (e *Exec) Now() uint64 { return e.ctx.Now() }

// Exit terminates the context immediately (from any call depth).
func (e *Exec) Exit() { panic(execExit{e}) }

// Kill marks a running context for destruction: at its next charge
// point it unwinds as if its body had returned. A reset wipes the
// register file, so a killed context cannot be resumed — only a fresh
// context can rerun its program. The Cache Kernel's crash path kills
// whatever was executing on the MPM's CPUs.
//
//ckvet:allow chargepath a reset line is asynchronous hardware, not an instruction; the victim is charged nothing
func (e *Exec) Kill() { e.killed = true }

// Killed reports whether the context is marked for destruction.
func (e *Exec) Killed() bool { return e.killed }

// Charge advances virtual time by cycles and then delivers any pending
// interrupts latched on the current CPU.
func (e *Exec) Charge(cycles uint64) {
	e.ctx.Advance(cycles)
	if e.killed {
		e.Exit()
	}
	e.pollInterrupts()
}

// ChargeNoIntr advances virtual time without an interrupt window (used
// inside the supervisor's critical sections).
func (e *Exec) ChargeNoIntr(cycles uint64) {
	e.ctx.Advance(cycles)
	if e.killed {
		e.Exit()
	}
}

func (e *Exec) pollInterrupts() {
	c := e.CPU
	if c == nil || c.IntrOff || c.Pending == 0 {
		return
	}
	sup := e.MPM.Sup
	if sup == nil {
		c.Pending = 0
		return
	}
	p := c.Pending
	c.Pending = 0
	sup.Interrupt(e, p)
}

// Instr charges n ordinary instructions.
func (e *Exec) Instr(n int) { e.Charge(uint64(n) * CostInstr) }

// Park suspends the context (releasing its CPU) until redispatched.
//
//ckvet:allow chargepath parking is free at the hardware layer; the supervisor charges CostContextSave/CostSchedule around it
func (e *Exec) Park() {
	if c := e.CPU; c != nil && c.Cur == e {
		c.Cur = nil
	}
	e.CPU = nil
	e.ctx.Park()
}

// --- Physical memory access (supervisor and devices) ---

// PhysRead32 reads a word at physical address pa, charging cache costs.
func (e *Exec) PhysRead32(pa uint32) uint32 {
	e.Charge(e.MPM.L2.Access(pa))
	return e.MPM.Machine.Phys.Read32(pa)
}

// PhysWrite32 writes a word at physical address pa, charging cache costs.
func (e *Exec) PhysWrite32(pa, v uint32) {
	e.Charge(e.MPM.L2.Access(pa))
	e.MPM.Machine.Phys.Write32(pa, v)
}

// --- Virtual memory access (user and application-kernel code) ---

// Load32 reads the word at virtual address va through the MMU; it may
// fault into the supervisor and retry.
func (e *Exec) Load32(va uint32) uint32 {
	pa, _ := e.Translate(va, false)
	e.Charge(e.MPM.L2.Access(pa))
	return e.MPM.Machine.Phys.Read32(pa)
}

// Store32 writes the word at virtual address va through the MMU. Writes
// to message-mode pages invoke the supervisor's signal-on-write hook
// after the data is globally visible, as the ParaDiGM cache controller
// did.
func (e *Exec) Store32(va, v uint32) {
	pa, pte := e.Translate(va, true)
	e.Charge(e.MPM.L2.Access(pa))
	e.MPM.Machine.Phys.Write32(pa, v)
	if pte.Message() && e.MPM.Sup != nil {
		e.MPM.Sup.MessageWrite(e, va, pa)
	}
}

// Load8 reads one byte at va.
func (e *Exec) Load8(va uint32) byte {
	pa, _ := e.Translate(va, false)
	e.Charge(e.MPM.L2.Access(pa))
	return e.MPM.Machine.Phys.Read8(pa)
}

// Store8 writes one byte at va.
func (e *Exec) Store8(va uint32, v byte) {
	pa, pte := e.Translate(va, true)
	e.Charge(e.MPM.L2.Access(pa))
	e.MPM.Machine.Phys.Write8(pa, v)
	if pte.Message() && e.MPM.Sup != nil {
		e.MPM.Sup.MessageWrite(e, va, pa)
	}
}

// Touch performs a read access for its translation and cache effects
// only, as workload generators do when simulating data references.
func (e *Exec) Touch(va uint32, write bool) {
	pa, pte := e.Translate(va, write)
	e.Charge(e.MPM.L2.Access(pa))
	if write && pte.Message() && e.MPM.Sup != nil {
		e.MPM.Sup.MessageWrite(e, va, pa)
	}
}

// Translate resolves va to a physical address, consulting the TLB, then
// the hardware table walker, then (on failure) the supervisor's access
// error path — which, as in the paper, forwards to the owning application
// kernel and retries when it returns.
func (e *Exec) Translate(va uint32, write bool) (uint32, pagetable.PTE) {
	if e.Space == nil {
		panic(fmt.Sprintf("hw: %s: virtual access %#x with no address space", e.Name, va))
	}
	for tries := 0; ; tries++ {
		if tries > 1<<20 {
			panic(fmt.Sprintf("hw: %s: unresolvable fault at %#x", e.Name, va))
		}
		cpu := e.CPU
		if cpu == nil {
			panic(fmt.Sprintf("hw: %s: virtual access %#x while not on a CPU", e.Name, va))
		}
		e.Charge(CostInstr)
		sp := e.Space
		vpn := va >> PageShift
		// Micro-cache fast path: same page, same TLB, no TLB mutation
		// since the entry was cached. Only the pure-hit case is taken;
		// anything needing TLB or table work (modified-bit upgrade,
		// permission mismatch) falls through to the full path so the
		// charge and statistics sequences stay identical.
		if mc := &e.mc; mc.ok && mc.vpn == vpn && mc.asid == sp.ASID &&
			mc.tlb == cpu.TLB && mc.gen == cpu.TLB.gen {
			pte := mc.pte
			if pte.Valid() && (!write || pte.Writable()) &&
				!(write && pte&pagetable.PTEModified == 0) {
				cpu.TLB.recordHit()
				return pte.PFN()<<PageShift | va&(PageSize-1), pte
			}
		}
		pte, hit := cpu.TLB.Lookup(sp.ASID, vpn)
		if hit && pte.Valid() && (!write || pte.Writable()) {
			if write && pte&pagetable.PTEModified == 0 {
				// First write through a clean entry: the 68040
				// re-walks to set the modified bit.
				sp.Table.SetRM(va, true)
				cpu.TLB.Insert(sp.ASID, vpn, pte|pagetable.PTEModified)
				e.Charge(CostMemHit + CostTLBFillPerLevel)
				pte |= pagetable.PTEModified
			}
			e.mc.tlb = cpu.TLB
			e.mc.gen = cpu.TLB.gen
			e.mc.asid = sp.ASID
			e.mc.vpn = vpn
			e.mc.pte = pte
			e.mc.ok = true
			return pte.PFN()<<PageShift | va&(PageSize-1), pte
		}
		if hit {
			// Permission mismatch: drop the stale entry and re-walk.
			cpu.TLB.InvalidatePage(sp.ASID, vpn)
		}
		// Hardware table walk.
		depth := sp.Table.WalkDepth(va)
		for i := 0; i < depth; i++ {
			e.Charge(CostMemHit + CostTLBFillPerLevel)
		}
		if f := e.MPM.WalkFault; f != nil && f(e, va) {
			// Transient walk error (a parity hit during the table
			// walk): the hardware retries the walk from the root.
			continue
		}
		wpte, ok := sp.Table.Lookup(va)
		if ok && (!write || wpte.Writable()) {
			sp.Table.SetRM(va, write)
			if write {
				wpte |= pagetable.PTEModified
			}
			cpu.TLB.Insert(sp.ASID, vpn, wpte|pagetable.PTEReferenced)
			continue
		}
		kind := FaultMapping
		if ok {
			kind = FaultProtection
		}
		if e.MPM.Sup == nil {
			panic(fmt.Sprintf("hw: %s: %v fault at %#x with no supervisor", e.Name, kind, va))
		}
		e.MPM.Sup.AccessError(e, va, write, kind)
	}
}

// Probe reports whether va currently translates (with write permission if
// write is set) without faulting or charging time.
func (e *Exec) Probe(va uint32, write bool) bool {
	if e.Space == nil {
		return false
	}
	pte, ok := e.Space.Table.Lookup(va)
	return ok && (!write || pte.Writable())
}

// SetSpace switches the context's translation root, charging the
// hardware's root-pointer reload cost. The translation micro-cache is
// dropped: address-space identifiers may be reused by a later space, so
// the cached tag cannot be trusted across a root switch.
func (e *Exec) SetSpace(s *Space) {
	e.Space = s
	e.mc.ok = false
	e.Charge(CostSpaceSwitch)
}

// Trap executes a trap instruction: enter supervisor mode, run the
// supervisor's system-call dispatcher, return to the previous mode.
func (e *Exec) Trap(no uint32, args ...uint32) (uint32, uint32) {
	if e.MPM.Sup == nil {
		panic("hw: trap with no supervisor")
	}
	prev := e.Mode
	e.Mode = ModeSupervisor
	e.Charge(CostTrapEntry)
	r0, r1 := e.MPM.Sup.Syscall(e, no, args)
	e.Charge(CostTrapExit)
	e.Mode = prev
	return r0, r1
}
