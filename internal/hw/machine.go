package hw

import (
	"fmt"

	"vpp/internal/sim"
)

// Config describes a simulated ParaDiGM machine.
type Config struct {
	MPMs          int
	CPUsPerMPM    int
	PhysMemBytes  uint32
	LocalRAMBytes int
	L2Bytes       uint32
	TLBEntries    int

	// Shards is the number of engine shards the MPMs are spread over,
	// each running on its own goroutine inside deterministic
	// virtual-time epochs (internal/sim Cluster). 0 or 1 is today's
	// serial engine; values above MPMs are clamped. Results are
	// byte-identical across shard counts.
	Shards int

	// ShardMap optionally assigns MPM i to shard ShardMap[i] (values in
	// [0, Shards)); nil means round-robin. Callers use it to co-locate
	// MPMs that share host-side state outside the interconnect model.
	ShardMap []int
}

// DefaultConfig matches the paper's prototype: MPMs of four 25 MHz CPUs,
// 2 MB of local RAM and an 8 MB second-level cache, over 64 MB of shared
// third-level memory.
func DefaultConfig() Config {
	return Config{
		MPMs:          1,
		CPUsPerMPM:    4,
		PhysMemBytes:  64 << 20,
		LocalRAMBytes: 2 << 20,
		L2Bytes:       8 << 20,
		TLBEntries:    DefaultTLBEntries,
	}
}

// Machine is a simulated multiprocessor: shared physical memory plus one
// or more MPMs. Serial (Cfg.Shards ≤ 1) machines are driven by the one
// engine Eng; sharded machines spread MPMs over Cluster's per-shard
// engines (Eng remains shard 0's). Use the Machine-level Run /
// SetTraceDispatch / SetMaxSteps / Now / Steps wrappers to stay
// agnostic.
type Machine struct {
	Eng     *sim.Engine
	Cluster *sim.Cluster // nil when serial
	Phys    *PhysMem
	MPMs    []*MPM
	Cfg     Config
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.MPMs <= 0 || cfg.CPUsPerMPM <= 0 {
		panic("hw: machine needs at least one MPM and CPU")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.MPMs {
		shards = cfg.MPMs
	}
	m := &Machine{
		Phys: NewPhysMem(cfg.PhysMemBytes),
		Cfg:  cfg,
	}
	if shards > 1 {
		m.Cluster = sim.NewCluster(shards)
		m.Eng = m.Cluster.Engine(0)
	} else {
		m.Eng = sim.NewEngine()
	}
	cpuID := 0
	for i := 0; i < cfg.MPMs; i++ {
		shard := m.Eng
		if m.Cluster != nil {
			s := i % shards
			if cfg.ShardMap != nil {
				if i >= len(cfg.ShardMap) || cfg.ShardMap[i] < 0 || cfg.ShardMap[i] >= shards {
					panic(fmt.Sprintf("hw: bad ShardMap entry for MPM %d", i))
				}
				s = cfg.ShardMap[i]
			}
			shard = m.Cluster.Engine(s)
		}
		mpm := &MPM{
			ID:       i,
			Machine:  m,
			Shard:    shard,
			LocalRAM: NewRAMAllocator(fmt.Sprintf("mpm%d-lram", i), cfg.LocalRAMBytes),
			L2:       NewL2Cache(cfg.L2Bytes),
		}
		for j := 0; j < cfg.CPUsPerMPM; j++ {
			cpu := &CPU{
				ID:    cpuID,
				Index: j,
				MPM:   mpm,
				Clock: sim.NewClock(fmt.Sprintf("cpu%d.%d", i, j)),
				TLB:   NewTLB(cfg.TLBEntries),
			}
			mpm.CPUs = append(mpm.CPUs, cpu)
			cpuID++
		}
		m.MPMs = append(m.MPMs, mpm)
	}
	return m
}

// Run drives the simulation until quiescent or until the virtual cycle
// bound is reached.
func (m *Machine) Run(until uint64) error {
	if m.Cluster != nil {
		return m.Cluster.Run(until)
	}
	return m.Eng.Run(until)
}

// SetTraceDispatch installs the dispatch-trace hook: on a serial
// machine the engine calls it directly, on a sharded machine the
// cluster emits the merged (serial-order) trace at epoch barriers.
func (m *Machine) SetTraceDispatch(fn func(name string, at uint64)) {
	if m.Cluster != nil {
		m.Cluster.SetTrace(fn)
		return
	}
	m.Eng.TraceDispatch = fn
}

// SetMaxSteps arms the machine-wide scheduling-decision guard.
func (m *Machine) SetMaxSteps(n uint64) {
	if m.Cluster != nil {
		m.Cluster.MaxSteps = n
		return
	}
	m.Eng.MaxSteps = n
}

// Now reports the machine's global virtual time: the time of the most
// recent schedule point, which is identical across shard counts.
func (m *Machine) Now() uint64 {
	if m.Cluster != nil {
		return m.Cluster.Now()
	}
	return m.Eng.SchedTime()
}

// Steps reports total scheduling decisions, shard-count invariant.
func (m *Machine) Steps() uint64 {
	if m.Cluster != nil {
		return m.Cluster.Steps()
	}
	return m.Eng.Steps()
}

// BoundLookahead registers a cross-shard interaction latency with the
// cluster; a no-op on a serial machine. Device models call it when an
// interconnect they create spans shards.
func (m *Machine) BoundLookahead(cycles uint64) {
	if m.Cluster != nil {
		m.Cluster.Bound(cycles)
	}
}

// MPM is one multiprocessor module: a small number of CPUs sharing a
// second-level cache and local RAM, running its own Cache Kernel instance
// (the Supervisor).
type MPM struct {
	ID      int
	Machine *Machine
	// Shard is the engine that owns this MPM's clocks, coroutines and
	// events (the machine's only engine when serial). All scheduling
	// for the MPM goes through it.
	Shard    *sim.Engine
	CPUs     []*CPU
	LocalRAM *RAMAllocator
	L2       *L2Cache
	Sup      Supervisor

	// WalkFault, when non-nil, is consulted once per hardware table
	// walk; returning true makes the walk fail transiently — the walk
	// cycles are charged and the hardware re-walks from the root.
	// Fault injection (internal/chaos) installs it; nil costs nothing.
	WalkFault func(e *Exec, va uint32) bool
}

// FlushTLBPage removes the (asid, vpn) translation from every CPU of the
// MPM — the shoot-down performed when the Cache Kernel unloads a mapping.
func (m *MPM) FlushTLBPage(asid uint16, vpn uint32) {
	for _, c := range m.CPUs {
		c.TLB.InvalidatePage(asid, vpn)
	}
}

// FlushTLBSpace removes all of an address space's translations from every
// CPU of the MPM.
func (m *MPM) FlushTLBSpace(asid uint16) {
	for _, c := range m.CPUs {
		c.TLB.InvalidateSpace(asid)
	}
}

// CPU is one simulated processor.
type CPU struct {
	ID    int // machine-wide
	Index int // within the MPM
	MPM   *MPM
	Clock *sim.Clock
	TLB   *TLB

	// Cur is the execution context currently dispatched on the CPU,
	// nil when idle. Maintained by the supervisor's scheduler.
	Cur *Exec

	// Pending is a bitmask of pending interrupt causes, delivered to the
	// supervisor at the running context's next charge point. The
	// supervisor defines the bit meanings.
	Pending uint32

	// IntrOff suppresses interrupt delivery while the supervisor runs
	// critical sections.
	IntrOff bool
}

// Post sets pending-interrupt bits on the CPU. Safe from engine context.
func (c *CPU) Post(bits uint32) { c.Pending |= bits }

// ArmTimerAt schedules a supervisor TimerTick for this CPU at virtual
// time t.
func (c *CPU) ArmTimerAt(t uint64) {
	c.MPM.Shard.ScheduleAt(t, func() {
		if c.MPM.Sup != nil {
			c.MPM.Sup.TimerTick(c)
		}
	})
}

// Dispatch places e on the CPU and makes it runnable. The CPU must be
// free (supervisor scheduling invariant).
//
//ckvet:allow chargepath raw dispatch bookkeeping; the supervisor's scheduler charges CostSchedule and context-restore costs
func (c *CPU) Dispatch(e *Exec) {
	sanCheckDispatch(c, e)
	if c.Cur != nil {
		panic(fmt.Sprintf("hw: dispatch %q onto busy cpu %d (running %q)", e.Name, c.ID, c.Cur.Name))
	}
	c.Cur = e
	e.CPU = c
	c.MPM.Shard.UnparkOn(e.coro, c.Clock)
}

// Fault identifies the cause of an access error.
type Fault int

// Access error causes forwarded to application kernels (paper §2.1).
const (
	FaultMapping     Fault = iota // no translation cached
	FaultProtection               // write to read-only page
	FaultPrivilege                // privileged operation in user mode
	FaultConsistency              // message/consistency trap
)

func (f Fault) String() string {
	switch f {
	case FaultMapping:
		return "mapping"
	case FaultProtection:
		return "protection"
	case FaultPrivilege:
		return "privilege"
	case FaultConsistency:
		return "consistency"
	}
	return "unknown"
}

// Mode is the protection level an execution context currently runs at.
type Mode int

// Protection levels: the paper's "vertical" structure.
const (
	ModeUser       Mode = iota // application code
	ModeKernel                 // application kernel code
	ModeSupervisor             // Cache Kernel code
)

func (m Mode) String() string {
	switch m {
	case ModeUser:
		return "user"
	case ModeKernel:
		return "kernel"
	case ModeSupervisor:
		return "supervisor"
	}
	return "invalid"
}

// Supervisor is the interface the Cache Kernel implements to receive
// hardware events. All methods except TimerTick run in the context of the
// affected execution (coroutine context); TimerTick runs in engine context
// and must only do bookkeeping and unparking.
type Supervisor interface {
	// Syscall handles a trap instruction (both Cache Kernel calls and
	// traps to be forwarded to the owning application kernel).
	Syscall(e *Exec, no uint32, args []uint32) (uint32, uint32)

	// AccessError handles a translation or protection fault at va. When
	// it returns, the faulting access retries.
	AccessError(e *Exec, va uint32, write bool, f Fault)

	// Interrupt delivers latched pending bits to the running context.
	Interrupt(e *Exec, pending uint32)

	// MessageWrite is the signal-on-write hook: e completed a write to
	// a message-mode page at (va, pa).
	MessageWrite(e *Exec, va, pa uint32)

	// TimerTick fires in engine context when an armed CPU timer expires.
	TimerTick(c *CPU)

	// Exited runs in coroutine context after an execution's body
	// returns; the supervisor should schedule other work for the CPU.
	Exited(e *Exec)
}
