package hw

import (
	"fmt"
	"sync"
	"testing"
)

// cowFill writes a recognizable per-frame pattern into nframes frames.
func cowFill(m *PhysMem, nframes uint32) {
	for pfn := uint32(0); pfn < nframes; pfn++ {
		for off := uint32(0); off < PageSize; off += 64 {
			m.Write32(pfn*PageSize+off, 0xA000_0000|pfn<<12|off)
		}
	}
}

// TestCowForkStress shares one frozen image across 32 concurrently
// mutating forks. Each fork dirties a disjoint private window plus a hot
// window every fork hits; the oracles are page-level isolation (a fork
// sees exactly its own writes and the image's bytes everywhere else),
// exact per-fork sharing counts, and a byte-identical parent afterward.
// Runs under the tier-1 -race sweep: the shared frames are only ever
// read after Freeze, every write lands in a private copy.
func TestCowForkStress(t *testing.T) {
	const (
		forks     = 32
		imgFrames = 256 // frames with parent contents
		hotPages  = 8   // dirtied by every fork
		privPages = 4   // dirtied by exactly one fork
		privBase  = 64  // private windows start here, fork i owns [privBase+4i, privBase+4i+4)
		untouched = 48  // a frame no fork writes
	)
	parent := NewPhysMem(1 << 21) // 512 frames
	cowFill(parent, imgFrames)
	im := parent.Freeze()
	if got := parent.CowStats().SharedPages; got != imgFrames {
		t.Fatalf("freeze shared %d frames, want %d", got, imgFrames)
	}
	parentBefore := make([]uint64, imgFrames)
	for pfn := uint32(0); pfn < imgFrames; pfn++ {
		parentBefore[pfn] = parent.FrameDigest(pfn)
	}

	mems := make([]*PhysMem, forks)
	for i := range mems {
		mems[i] = im.NewPhysMem()
	}

	var wg sync.WaitGroup
	errs := make([]error, forks)
	for i := 0; i < forks; i++ {
		i, m := i, mems[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = func() error {
				dirty := map[uint32]bool{}
				for p := uint32(0); p < hotPages; p++ { // overlapping window
					m.Write32(p*PageSize+uint32(i)*8, 0xF0_0000|uint32(i))
					dirty[p] = true
				}
				for p := 0; p < privPages; p++ { // disjoint window
					pfn := uint32(privBase + i*privPages + p)
					m.Write32(pfn*PageSize, 0xBEEF_0000|uint32(i)<<8|uint32(p))
					dirty[pfn] = true
				}
				st := m.CowStats()
				if want := uint64(len(dirty)); st.CopiedPages != want || st.Faults != want {
					return fmt.Errorf("fork %d: copied %d faults %d, want %d", i, st.CopiedPages, st.Faults, want)
				}
				if want := uint64(imgFrames - len(dirty)); st.SharedPages != want {
					return fmt.Errorf("fork %d: %d frames still shared, want %d", i, st.SharedPages, want)
				}
				// Own writes visible, everything else still the image's.
				for p := uint32(0); p < hotPages; p++ {
					if v := m.Read32(p*PageSize + uint32(i)*8); v != 0xF0_0000|uint32(i) {
						return fmt.Errorf("fork %d: hot page %d reads %#x", i, p, v)
					}
				}
				for p := 0; p < privPages; p++ {
					pfn := uint32(privBase + i*privPages + p)
					if v := m.Read32(pfn * PageSize); v != 0xBEEF_0000|uint32(i)<<8|uint32(p) {
						return fmt.Errorf("fork %d: private page %d reads %#x", i, pfn, v)
					}
				}
				// A sibling's private window and an untouched frame read as
				// the image wrote them — no cross-fork bleed.
				sib := uint32(privBase + ((i+1)%forks)*privPages)
				for _, pfn := range []uint32{sib, untouched} {
					if v := m.Read32(pfn*PageSize + 64); v != 0xA000_0000|pfn<<12|64 {
						return fmt.Errorf("fork %d: frame %d reads %#x, not image bytes", i, pfn, v)
					}
				}
				return nil
			}()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The parent and the image never saw any fork's writes.
	for pfn := uint32(0); pfn < imgFrames; pfn++ {
		if got := parent.FrameDigest(pfn); got != parentBefore[pfn] {
			t.Fatalf("parent frame %d changed across forks", pfn)
		}
		if got := im.FrameDigest(pfn); got != parentBefore[pfn] {
			t.Fatalf("image frame %d changed across forks", pfn)
		}
	}
	// The parent is still fully shared: its own frames were never written.
	if got := parent.CowStats(); got.SharedPages != imgFrames || got.CopiedPages != 0 {
		t.Fatalf("parent stats %+v, want %d shared and 0 copied", got, imgFrames)
	}
	// Writing the parent now privatizes its frame without touching the image.
	parent.Write32(untouched*PageSize, 0xDEAD_0001)
	if got := im.FrameDigest(untouched); got != parentBefore[untouched] {
		t.Fatal("parent write leaked into frozen image")
	}
}
