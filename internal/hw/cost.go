package hw

// Cost model for the simulated ParaDiGM hardware.
//
// All simulated time is measured in CPU cycles at 25 MHz (the paper's
// 68040 clock), so 25 cycles equal one microsecond. The constants below
// are the only tuned inputs of the reproduction: every reported duration
// is produced by charging these costs along the code paths the
// implementation actually executes (hash probes, table walks, descriptor
// copies), so orderings and ratios emerge from real work while absolute
// values are calibrated to the paper's Table 2 and Section 5.3.
// EXPERIMENTS.md records the calibration.
const (
	// CyclesPerMicrosecond converts cycles to the paper's time unit.
	CyclesPerMicrosecond = 25

	// CostInstr is the charge for an ordinary ALU instruction.
	CostInstr = 2

	// CostMemHit and CostMemMiss are the charges for a memory reference
	// that hits or misses the second-level cache (the miss goes to
	// third-level memory over the VMEbus).
	CostMemHit  = 2
	CostMemMiss = 24

	// CostTLBFillPerLevel is charged per table level touched by the
	// hardware walker on a TLB miss, in addition to the memory
	// references themselves.
	CostTLBFillPerLevel = 4

	// CostTrapEntry and CostTrapExit cover the 68040 exception stack
	// frame build/teardown and vectoring into supervisor mode.
	CostTrapEntry = 110
	CostTrapExit  = 90

	// CostContextSave and CostContextRestore move a thread's register
	// file to and from its descriptor.
	CostContextSave    = 140
	CostContextRestore = 120

	// CostSpaceSwitch reloads the translation root pointer; TLB entries
	// are tagged by ASID so no flush is charged.
	CostSpaceSwitch = 60

	// CostSchedule is the fixed-priority ready-queue manipulation cost
	// for one dispatch decision.
	CostSchedule = 90

	// CostIPI is the cost of posting an inter-processor signal across
	// the MPM's shared second-level cache.
	CostIPI = 120

	// CostDeviceDMAWord approximates per-32-bit-word DMA transfer cost
	// on the Ethernet interface.
	CostDeviceDMAWord = 1
)

// MicrosFromCycles converts a cycle count to microseconds (rounded to
// tenths by the caller when printing).
func MicrosFromCycles(c uint64) float64 {
	return float64(c) / CyclesPerMicrosecond
}

// CyclesFromMicros converts microseconds to cycles.
func CyclesFromMicros(us float64) uint64 {
	return uint64(us * CyclesPerMicrosecond)
}
