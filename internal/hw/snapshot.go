package hw

import (
	"fmt"
	"hash/fnv"

	"vpp/internal/pagetable"
)

// Hardware-level snapshot state: everything below the supervisor that a
// whole-machine fork must carry — TLB and second-level cache contents,
// local-RAM accounting, and the machine's clocks. Physical memory is
// captured separately as a copy-on-write FrameImage (see mem.go).

// TLBEntryState is one captured TLB entry.
type TLBEntryState struct {
	ASID  uint16
	Valid bool
	VPN   uint32
	PTE   pagetable.PTE
}

// TLBState is the complete state of one CPU's TLB: the entry array in
// slot order, the round-robin replacement cursor, the mutation
// generation and the accumulated statistics.
type TLBState struct {
	Entries []TLBEntryState
	Next    int
	Gen     uint64
	Hits    uint64
	Misses  uint64
}

// State captures the TLB.
func (t *TLB) State() TLBState {
	st := TLBState{
		Entries: make([]TLBEntryState, len(t.entries)),
		Next:    t.next,
		Gen:     t.gen,
		Hits:    t.hits,
		Misses:  t.misses,
	}
	for i, e := range t.entries {
		st.Entries[i] = TLBEntryState{ASID: e.asid, Valid: e.valid, VPN: e.vpn, PTE: e.pte}
	}
	return st
}

// Restore overwrites the TLB with a captured state. The entry count
// must match the TLB's geometry.
func (t *TLB) Restore(st TLBState) error {
	if len(st.Entries) != len(t.entries) {
		return fmt.Errorf("hw: TLB restore size mismatch: %d entries into %d", len(st.Entries), len(t.entries))
	}
	clear(t.index)
	for i, e := range st.Entries {
		t.entries[i] = tlbEntry{asid: e.ASID, valid: e.Valid, vpn: e.VPN, pte: e.PTE}
		if e.Valid {
			t.index[tlbKey(e.ASID, e.VPN)] = int32(i)
		}
	}
	t.next = st.Next
	t.gen = st.Gen
	t.hits = st.Hits
	t.misses = st.Misses
	return nil
}

// L2Tag is one non-zero second-level cache tag: line index and value.
type L2Tag struct {
	Line int32
	Tag  uint32
}

// L2State is the complete state of an MPM's second-level cache: the
// non-zero tags (the array is sparse on any machine that has not
// churned its whole cache) and the accumulated statistics.
type L2State struct {
	NTags  int32 // tag-array length (geometry check)
	Tags   []L2Tag
	Hits   uint64
	Misses uint64
}

// State captures the cache.
func (c *L2Cache) State() L2State {
	st := L2State{NTags: int32(len(c.tags)), Hits: c.hits, Misses: c.misses}
	for i, t := range c.tags {
		if t != 0 {
			st.Tags = append(st.Tags, L2Tag{Line: int32(i), Tag: t})
		}
	}
	return st
}

// Restore overwrites the cache with a captured state.
func (c *L2Cache) Restore(st L2State) error {
	if int(st.NTags) != len(c.tags) {
		return fmt.Errorf("hw: L2 restore size mismatch: %d tags into %d", st.NTags, len(c.tags))
	}
	clear(c.tags)
	for _, t := range st.Tags {
		if t.Line < 0 || int(t.Line) >= len(c.tags) {
			return fmt.Errorf("hw: L2 restore line %d out of range", t.Line)
		}
		c.tags[t.Line] = t.Tag
	}
	c.hits = st.Hits
	c.misses = st.Misses
	return nil
}

// CPUState is one CPU's captured interrupt state: the pending-cause
// bitmask and the interrupt-suppression flag. A slice timer that fires
// while the CPU is idle leaves a pending bit behind; the next thread
// dispatched takes that interrupt at its first charge point and
// re-arms its slice, so a fork that dropped the bit would drift in
// virtual time from its parent.
type CPUState struct {
	Pending uint32
	IntrOff bool
}

// State captures the CPU's interrupt state.
func (c *CPU) State() CPUState { return CPUState{Pending: c.Pending, IntrOff: c.IntrOff} }

// RestoreIntr overwrites the CPU's interrupt state with a captured one.
func (c *CPU) RestoreIntr(st CPUState) {
	c.Pending = st.Pending
	c.IntrOff = st.IntrOff
}

// RAMState is a local-RAM allocator's captured accounting.
type RAMState struct {
	Used int
	Peak int
}

// State captures the allocator's accounting.
func (a *RAMAllocator) State() RAMState { return RAMState{Used: a.used, Peak: a.peak} }

// Quiescent reports whether the machine has fully drained — every
// engine shard is out of live coroutines and pending events and every
// CPU is idle — which is the precondition for a structural snapshot.
// Sharded machines are only ever observed between epochs, so a drained
// cluster is automatically at an epoch barrier and the capture is
// shard-count-invariant.
func (m *Machine) Quiescent() error {
	if m.Cluster != nil {
		if err := m.Cluster.Quiescent(); err != nil {
			return err
		}
	} else if err := m.Eng.Quiescent(); err != nil {
		return err
	}
	for _, mpm := range m.MPMs {
		for _, c := range mpm.CPUs {
			if c.Cur != nil {
				return fmt.Errorf("hw: machine not quiescent: cpu %d running %q", c.ID, c.Cur.Name)
			}
		}
	}
	return nil
}

// ClockState is the machine's captured virtual-time state: the global
// schedule-point time (shard-count-invariant) plus every CPU's own
// clock, which is where dispatched work resumes counting from.
type ClockState struct {
	Time uint64
	CPUs [][]uint64 // per MPM, per CPU
}

// CaptureClocks snapshots the machine's virtual time.
func (m *Machine) CaptureClocks() ClockState {
	cs := ClockState{Time: m.Now(), CPUs: make([][]uint64, len(m.MPMs))}
	for i, mpm := range m.MPMs {
		cs.CPUs[i] = make([]uint64, len(mpm.CPUs))
		for j, c := range mpm.CPUs {
			cs.CPUs[i][j] = c.Clock.Now()
		}
	}
	return cs
}

// WarpClocks advances the machine's clocks forward to a captured state:
// every engine shard to the global snapshot time and every CPU clock to
// its captured value. The machine must have the same topology as the
// capture; clocks never move backward (warping a fresh machine is the
// intended use).
func (m *Machine) WarpClocks(cs ClockState) error {
	if len(cs.CPUs) != len(m.MPMs) {
		return fmt.Errorf("hw: clock restore topology mismatch: %d MPMs into %d", len(cs.CPUs), len(m.MPMs))
	}
	if m.Cluster != nil {
		m.Cluster.Warp(cs.Time)
	} else {
		m.Eng.Warp(cs.Time)
	}
	for i, mpm := range m.MPMs {
		if len(cs.CPUs[i]) != len(mpm.CPUs) {
			return fmt.Errorf("hw: clock restore topology mismatch: %d CPUs into %d on MPM %d", len(cs.CPUs[i]), len(mpm.CPUs), i)
		}
		for j, c := range mpm.CPUs {
			c.Clock.AdvanceTo(cs.CPUs[i][j])
		}
	}
	return nil
}

// StateDigest hashes the machine's observable hardware state — virtual
// time, schedule steps, CPU clocks and interrupt state, TLB entries,
// L2 tags and physical memory contents — into one value. The replay fork tier uses it to
// assert that a rebuilt machine driven to the same virtual-time cut
// reached a byte-identical state before its divergent continuation.
func (m *Machine) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w64(m.Now())
	w64(m.Steps())
	for _, mpm := range m.MPMs {
		for _, c := range mpm.CPUs {
			w64(c.Clock.Now())
			intr := uint64(c.Pending)
			if c.IntrOff {
				intr |= 1 << 32
			}
			w64(intr)
			for _, e := range c.TLB.entries {
				if !e.valid {
					w64(0)
					continue
				}
				w64(1)
				w64(uint64(e.asid))
				w64(uint64(e.vpn))
				w64(uint64(e.pte))
			}
		}
		for _, tag := range mpm.L2.tags {
			w64(uint64(tag))
		}
		w64(uint64(mpm.LocalRAM.Used()))
	}
	for pfn := uint32(0); pfn < m.Phys.Frames(); pfn++ {
		f := m.Phys.peek(pfn)
		if f == nil {
			continue
		}
		zero := true
		for _, b := range f {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			// An allocated-but-zero frame is indistinguishable from a
			// never-touched one to every reader; hash them identically
			// so lazy allocation order cannot perturb the digest.
			continue
		}
		w64(uint64(pfn))
		h.Write(f[:])
	}
	return h.Sum64()
}

// FrameDigest hashes one physical frame's contents (zero for a
// never-touched frame). Fork-isolation oracles use it to assert a
// parent's pages are untouched by its forks' writes.
func (m *PhysMem) FrameDigest(pfn uint32) uint64 {
	f := m.peek(pfn)
	if f == nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(f[:])
	return h.Sum64()
}

// FrameDigest hashes one captured frame's contents; see
// PhysMem.FrameDigest.
func (im *FrameImage) FrameDigest(pfn uint32) uint64 {
	f := im.frames[pfn]
	if f == nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(f[:])
	return h.Sum64()
}
