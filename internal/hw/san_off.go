//go:build !cksan

package hw

// No-op half of the cksan runtime ownership sanitizer; see san_on.go.

func sanCheckDispatch(c *CPU, e *Exec) {}
