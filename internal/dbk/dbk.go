// Package dbk is a database application kernel: it manages its own
// buffer pool of physical frames and Cache Kernel mappings so page
// replacement can exploit query knowledge — the motivating example of
// the paper's introduction, where "the standard page-replacement
// policies of UNIX-like operating systems perform poorly for
// applications with random or sequential access" (citing Kearns and
// DeFazio). A sequential scan with an LRU pool floods out the hot set a
// point-query workload depends on; the query-aware policy drops scan
// pages eagerly and keeps the hot set resident.
package dbk

import (
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
)

// Policy selects the buffer replacement strategy.
type Policy int

// Replacement policies.
const (
	// PolicyLRU is the fixed OS-style policy.
	PolicyLRU Policy = iota
	// PolicyQueryAware evicts pages brought in by sequential scans
	// first (effectively MRU for scans), preserving the point-query
	// working set.
	PolicyQueryAware
)

func (p Policy) String() string {
	if p == PolicyQueryAware {
		return "query-aware"
	}
	return "lru"
}

// TableStore is the database's disk: table pages with a charged per-page
// transfer latency.
type TableStore struct {
	Pages       uint32
	LatencyCyc  uint64
	Reads       uint64
	Writes      uint64
	pageContent map[uint32]uint32 // first word per page, for verification
}

// NewTableStore creates a store of n pages; page i's first word is
// seeded deterministically.
func NewTableStore(n uint32, latency uint64) *TableStore {
	s := &TableStore{Pages: n, LatencyCyc: latency, pageContent: make(map[uint32]uint32)}
	for i := uint32(0); i < n; i++ {
		s.pageContent[i] = i*2654435761 + 1
	}
	return s
}

// readPage charges the transfer and fills the frame's first word.
func (s *TableStore) readPage(e *hw.Exec, page, pfn uint32) {
	e.Charge(s.LatencyCyc)
	s.Reads++
	e.MPM.Machine.Phys.Write32(pfn<<hw.PageShift, s.pageContent[page])
}

// writePage charges the transfer for a dirty page.
func (s *TableStore) writePage(e *hw.Exec, page, pfn uint32) {
	e.Charge(s.LatencyCyc)
	s.Writes++
	s.pageContent[page] = e.MPM.Machine.Phys.Read32(pfn << hw.PageShift)
}

// poolSlot is one buffer-pool frame.
type poolSlot struct {
	page     uint32
	valid    bool
	dirty    bool
	lastUsed uint64
	fromScan bool
	pfn      uint32
}

// DB is one database kernel instance.
type DB struct {
	AK     *aklib.AppKernel
	Store  *TableStore
	Policy Policy

	base  uint32 // pool window VA
	slots []poolSlot
	// byPage maps a resident table page to its slot.
	byPage map[uint32]int

	// Stats.
	Hits, Misses uint64
}

// New creates a database kernel with a pool of poolFrames frames mapped
// at a fixed window in the kernel's own space.
func New(e *hw.Exec, ak *aklib.AppKernel, store *TableStore, poolFrames int, policy Policy) (*DB, error) {
	db := &DB{
		AK: ak, Store: store, Policy: policy,
		base:   0x3000_0000,
		slots:  make([]poolSlot, poolFrames),
		byPage: make(map[uint32]int),
	}
	for i := range db.slots {
		pfn, ok := ak.Frames.Alloc()
		if !ok {
			return nil, fmt.Errorf("dbk: out of frames for the buffer pool")
		}
		db.slots[i].pfn = pfn
	}
	return db, nil
}

// slotVA is the pool window address of slot i.
func (db *DB) slotVA(i int) uint32 { return db.base + uint32(i)*hw.PageSize }

// access makes a table page resident and returns its pool VA. scan
// marks the access as part of a sequential scan for the query-aware
// policy.
func (db *DB) access(e *hw.Exec, page uint32, scan bool) (uint32, error) {
	if i, ok := db.byPage[page]; ok {
		db.Hits++
		db.slots[i].lastUsed = e.Now()
		if !scan {
			db.slots[i].fromScan = false // promoted by a point access
		}
		e.Instr(6)
		return db.slotVA(i), nil
	}
	db.Misses++
	i := db.victim()
	s := &db.slots[i]
	if s.valid {
		// Unload the mapping to collect the hardware modified bit, then
		// write back if dirty.
		st, err := db.AK.CK.UnloadMapping(e, db.AK.SpaceID, db.slotVA(i))
		if err == nil {
			s.dirty = s.dirty || st.Modified
		}
		if s.dirty {
			db.Store.writePage(e, s.page, s.pfn)
		}
		delete(db.byPage, s.page)
	}
	db.Store.readPage(e, page, s.pfn)
	if err := db.AK.CK.LoadMapping(e, db.AK.SpaceID, ck.MappingSpec{
		VA: db.slotVA(i), PFN: s.pfn, Writable: true, Cachable: true,
	}); err != nil {
		return 0, err
	}
	*s = poolSlot{page: page, valid: true, lastUsed: e.Now(), fromScan: scan, pfn: s.pfn}
	db.byPage[page] = i
	return db.slotVA(i), nil
}

// victim picks a replacement slot by policy.
func (db *DB) victim() int {
	// Free slot first.
	for i := range db.slots {
		if !db.slots[i].valid {
			return i
		}
	}
	best := 0
	if db.Policy == PolicyQueryAware {
		// Prefer the oldest scan page; fall back to global LRU.
		bestScan := -1
		for i := range db.slots {
			if db.slots[i].fromScan &&
				(bestScan < 0 || db.slots[i].lastUsed < db.slots[bestScan].lastUsed) {
				bestScan = i
			}
		}
		if bestScan >= 0 {
			return bestScan
		}
	}
	for i := 1; i < len(db.slots); i++ {
		if db.slots[i].lastUsed < db.slots[best].lastUsed {
			best = i
		}
	}
	return best
}

// SeqScan reads every table page in order (aggregation-style), touching
// a few words per page.
func (db *DB) SeqScan(e *hw.Exec) (uint32, error) {
	var sum uint32
	for p := uint32(0); p < db.Store.Pages; p++ {
		va, err := db.access(e, p, true)
		if err != nil {
			return 0, err
		}
		sum += e.Load32(va)
		e.Load32(va + 256)
		e.Instr(20) // per-tuple evaluation
	}
	return sum, nil
}

// Lookup reads the page holding key (point query).
func (db *DB) Lookup(e *hw.Exec, key uint32) (uint32, error) {
	page := key % db.Store.Pages
	va, err := db.access(e, page, false)
	if err != nil {
		return 0, err
	}
	e.Instr(12) // index walk
	return e.Load32(va), nil
}

// Update writes into the page holding key, dirtying it.
func (db *DB) Update(e *hw.Exec, key, val uint32) error {
	page := key % db.Store.Pages
	va, err := db.access(e, page, false)
	if err != nil {
		return err
	}
	e.Store32(va, val)
	if i, ok := db.byPage[page]; ok {
		db.slots[i].dirty = true
	}
	return nil
}

// Resident reports how many distinct pages are buffered.
func (db *DB) Resident() int { return len(db.byPage) }
