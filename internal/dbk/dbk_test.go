package dbk

import (
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/sim"
	"vpp/internal/srm"
)

// WorkloadResult summarizes a mixed scan/lookup run.
type WorkloadResult struct {
	Micros     float64
	Reads      uint64
	Hits, Miss uint64
}

// runWorkload executes the intro's motivating mix: a hot point-query set
// interleaved with full sequential scans, under the given policy.
func runWorkload(t *testing.T, policy Policy, tablePages uint32, poolFrames int) WorkloadResult {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var res WorkloadResult
	var runErr error
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "db", srm.LaunchOpts{Groups: 8, MainPrio: 26},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				store := NewTableStore(tablePages, 2*1000*hw.CyclesPerMicrosecond)
				db, err := New(me, ak, store, poolFrames, policy)
				if err != nil {
					runErr = err
					return
				}
				r := sim.NewRand(11)
				hot := make([]uint32, 8) // hot keys on 8 distinct pages
				for i := range hot {
					hot[i] = uint32(i) * (tablePages / 8)
				}
				t0 := me.Now()
				for round := 0; round < 4; round++ {
					for i := 0; i < 64; i++ {
						if _, err := db.Lookup(me, hot[r.Intn(len(hot))]); err != nil {
							runErr = err
							return
						}
					}
					if _, err := db.SeqScan(me); err != nil {
						runErr = err
						return
					}
				}
				res.Micros = hw.MicrosFromCycles(me.Now() - t0)
				res.Reads = store.Reads
				res.Hits, res.Miss = db.Hits, db.Misses
			})
		if err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 200_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res
}

func TestPoolHitsAndCorrectContent(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, _ := ck.New(m.MPMs[0], ck.Config{})
	var runErr error
	_, err := srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		s.Launch(e, "db", srm.LaunchOpts{Groups: 4, MainPrio: 26},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				store := NewTableStore(16, 1000)
				db, err := New(me, ak, store, 4, PolicyLRU)
				if err != nil {
					runErr = err
					return
				}
				v1, _ := db.Lookup(me, 3)
				v2, _ := db.Lookup(me, 3) // hit
				var want uint32 = 3
				want = want*2654435761 + 1
				if v1 != v2 || v1 != want {
					t.Errorf("lookup values %d, %d", v1, v2)
				}
				if db.Hits != 1 || db.Misses != 1 {
					t.Errorf("hits=%d misses=%d", db.Hits, db.Misses)
				}
				// Update then force eviction; the write must reach the store.
				if err := db.Update(me, 3, 999); err != nil {
					runErr = err
					return
				}
				for p := uint32(4); p < 9; p++ { // flood the 4-slot pool
					if _, err := db.Lookup(me, p); err != nil {
						runErr = err
						return
					}
				}
				if store.Writes == 0 {
					t.Error("dirty page never written back to the store")
				}
				v3, _ := db.Lookup(me, 3)
				if v3 != 999 {
					t.Errorf("reread after writeback = %d, want 999", v3)
				}
			})
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 50_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}

func TestQueryAwareBeatsLRUOnMixedWorkload(t *testing.T) {
	const tablePages = 64
	const poolFrames = 16
	lru := runWorkload(t, PolicyLRU, tablePages, poolFrames)
	qa := runWorkload(t, PolicyQueryAware, tablePages, poolFrames)
	t.Logf("LRU: %.0f µs, %d disk reads (hit %d/miss %d); query-aware: %.0f µs, %d disk reads (hit %d/miss %d)",
		lru.Micros, lru.Reads, lru.Hits, lru.Miss, qa.Micros, qa.Reads, qa.Hits, qa.Miss)
	if qa.Reads >= lru.Reads {
		t.Fatalf("query-aware did not reduce disk reads: %d vs %d", qa.Reads, lru.Reads)
	}
	if qa.Micros >= lru.Micros {
		t.Fatalf("query-aware not faster: %.0f vs %.0f µs", qa.Micros, lru.Micros)
	}
}

func TestScanVictimPreference(t *testing.T) {
	// Unit-level check of victim(): scan pages go first under the
	// query-aware policy even when more recently used.
	db := &DB{Policy: PolicyQueryAware, byPage: map[uint32]int{}}
	db.slots = []poolSlot{
		{valid: true, page: 1, lastUsed: 100, fromScan: false},
		{valid: true, page: 2, lastUsed: 900, fromScan: true},
		{valid: true, page: 3, lastUsed: 500, fromScan: true},
	}
	if v := db.victim(); v != 2 {
		t.Fatalf("victim = %d, want oldest scan slot 2", v)
	}
	db.Policy = PolicyLRU
	if v := db.victim(); v != 0 {
		t.Fatalf("LRU victim = %d, want 0", v)
	}
}
