package ckctl

import (
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/sim"
	"vpp/internal/srm"
)

// The per-MPM agent: an SRM-space worker thread (installed through the
// SRM service registry, so it is replayed across crash recoveries) that
// polls on a self-alarm, executes controller commands against its local
// SRM, and reports its module's state back. Agents hold the kernel-call
// authority the plane needs — launch, swap, unswap, expel and adopt are
// Cache Kernel calls only a thread of the first kernel may make.

// cmdKind is a controller→agent command type.
type cmdKind int

const (
	// cmdEnsure converges one instance toward running on this module:
	// launch if absent, unswap if swapped, revive if its context died.
	// Idempotent, so the controller can reissue it on any timeout.
	cmdEnsure cmdKind = iota
	// cmdMigrateOut expels the named instance and hands its records to
	// the destination module's agent.
	cmdMigrateOut
	// cmdAdopt (agent→agent) carries an expelled instance's records.
	cmdAdopt
)

// command is one inbox entry.
type command struct {
	kind cmdKind
	name string
	spec KernelSpec
	// fresh resets the pod's beat count (restart-after-completion).
	fresh bool
	// dst is the migration target module.
	dst int
	// mig carries the records for cmdAdopt.
	mig *migMsg
}

// migMsg is the migration handoff: the expelled kernel's backing
// records plus the blackout bookkeeping. Ownership of rec and pr moves
// to the destination shard with the message (the epoch barrier is the
// synchronization point).
type migMsg struct {
	name     string
	rec      *srm.Launched
	pr       *podRec
	from, to int
	// execName is the main thread's execution-context name, the key the
	// destination's dispatch hook watches for first resume.
	execName string
	// srcLast is the last source-side dispatch of the pod's main;
	// expelAt/adoptAt/firstAt complete the protocol timeline.
	srcLast uint64
	expelAt uint64
	adoptAt uint64
	firstAt uint64
}

// podState is an agent's classification of one hosted instance.
type podState int

const (
	psRunning podState = iota
	psSwapped
	psCompleted
	psFailed
	psGone
)

func (s podState) String() string {
	switch s {
	case psRunning:
		return "running"
	case psSwapped:
		return "swapped"
	case psCompleted:
		return "completed"
	case psFailed:
		return "failed"
	case psGone:
		return "gone"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// kernelReport is one instance's line in a node report.
type kernelReport struct {
	Name  string
	State podState
	Beats uint64
	Gen   int
}

// nodeReport is an agent's periodic status message to the controller.
type nodeReport struct {
	Node       int
	At         uint64
	Load       uint64 // ck.CacheCounters().LoadScore()
	FreeGroups int
	Recoveries int
	Kernels    []kernelReport
}

// opFail tells the controller an ensure could not complete.
type opFail struct {
	name string
	node int
	err  string
}

// migFail tells the controller a migration leg failed.
type migFail struct {
	name     string
	from, to int
	stage    string // "expel" or "adopt"
	err      string
}

// event is one controller-inbox entry.
type event struct {
	report  *nodeReport
	migDone *migMsg
	migFail *migFail
	opFail  *opFail
}

// sendCmd delivers a command to a node's agent after the control
// latency; src is the sending shard's engine.
func (c *Cluster) sendCmd(src *sim.Engine, now uint64, n *Node, cmd command) {
	src.ScheduleCrossAt(n.MPM.Shard, now+c.Cfg.CtlLatency, func() {
		n.inbox = append(n.inbox, cmd)
	})
}

// sendEvent delivers an event to the controller after the control
// latency.
func (c *Cluster) sendEvent(src *sim.Engine, now uint64, ev event) {
	ctl := c.ctl
	src.ScheduleCrossAt(c.Nodes[0].MPM.Shard, now+c.Cfg.CtlLatency, func() {
		ctl.inbox = append(ctl.inbox, ev)
	})
}

// agentBody is the agent service loop (restarted from the top by the
// SRM's service replay after a crash, so everything it sets up is
// re-established here).
func (n *Node) agentBody(se *hw.Exec) {
	n.installDispatchHook()
	n.agentUp = true
	n.retired["agent"] = false
	for se.Now() < n.cl.Cfg.Horizon {
		tid := n.CK.CurrentThread(se)
		if err := n.CK.SetAlarm(se, tid, se.Now()+n.cl.Cfg.AgentTick, sigTick); err != nil {
			break
		}
		if _, err := n.CK.WaitSignal(se); err != nil {
			break
		}
		n.CK.SignalReturn(se)
		n.drain(se)
		n.report(se)
		n.reviveDead(se, "medic")
	}
	n.retired["agent"] = true
}

// medicBody is the plane's service watchdog. A kill fault can land on
// the agent or controller thread itself, and nothing else would notice
// — the SRM guardian only watches whole-kernel crashes, and a dead
// agent sends no reports to miss. The medic revives dead sibling
// services from their bodies each tick; the agent reciprocally watches
// the medic, so no single kill decapitates the plane.
func (n *Node) medicBody(se *hw.Exec) {
	n.retired["medic"] = false
	for se.Now() < n.cl.Cfg.Horizon {
		tid := n.CK.CurrentThread(se)
		if err := n.CK.SetAlarm(se, tid, se.Now()+n.cl.Cfg.AgentTick, sigTick); err != nil {
			break
		}
		if _, err := n.CK.WaitSignal(se); err != nil {
			break
		}
		n.CK.SignalReturn(se)
		n.reviveDead(se, "agent")
		if n.Idx == 0 {
			n.reviveDead(se, "ctl")
		}
	}
	n.retired["medic"] = true
}

// reviveDead regenerates a named sibling service if its execution
// context died (the body reruns from the top — services are written
// for that, like crash replay). A retired service — one whose body
// returned on its own, at the horizon or on a call error — is finished
// too, but deliberately so; only a kill fault leaves the context dead
// without the retired mark.
func (n *Node) reviveDead(se *hw.Exec, name string) {
	if n.retired[name] || !n.SRM.ServiceDead(name) {
		return
	}
	if err := n.SRM.ReviveService(se, name); err == nil {
		n.revived++
	}
}

// installDispatchHook owns the Cache Kernel's dispatch hook: it tracks
// every context's last dispatch (the migration blackout's source
// timestamp) and completes adoptions on the first dispatch of a
// migrated-in main. srm.Recover clobbers the hook during crash
// recovery; the guardian's OnRecovered callback and the replayed agent
// body both reinstall it.
func (n *Node) installDispatchHook() {
	eng := n.MPM.Shard
	n.CK.OnDispatch = func(_ ck.ObjID, name string, now uint64) {
		n.lastDispatch[name] = now
		if len(n.awaitFirst) == 0 {
			return
		}
		m, ok := n.awaitFirst[name]
		if !ok {
			return
		}
		delete(n.awaitFirst, name)
		m.firstAt = now
		// Engine context: the migrated main just resumed on a CPU of this
		// module. Close the measurement and tell the controller.
		n.cl.sendEvent(eng, eng.Now(), event{migDone: m})
	}
}

// drain executes queued controller commands.
func (n *Node) drain(se *hw.Exec) {
	for len(n.inbox) > 0 {
		cmds := n.inbox
		n.inbox = nil
		for i := range cmds {
			n.exec1(se, &cmds[i])
		}
	}
}

// exec1 runs one command.
func (n *Node) exec1(se *hw.Exec, c *command) {
	eng := n.MPM.Shard
	switch c.kind {
	case cmdEnsure:
		if err := n.ensure(se, c); err != nil {
			n.cl.sendEvent(eng, se.Now(), event{opFail: &opFail{
				name: c.name, node: n.Idx, err: err.Error(),
			}})
		}
	case cmdMigrateOut:
		n.migrateOut(se, c)
	case cmdAdopt:
		n.adopt(se, c.mig)
	}
}

// ensure converges one instance toward running on this module.
func (n *Node) ensure(se *hw.Exec, c *command) error {
	pr := n.hosted[c.name]
	l := n.SRM.Kernel(c.name)
	if l == nil {
		// Absent: full launch.
		if pr == nil {
			pr = &podRec{spec: c.spec, pod: &Pod{Name: c.name}}
		}
		if c.fresh {
			pr.pod.Beats, pr.pod.Done, pr.pod.AtHorizon = 0, false, false
		}
		_, err := n.SRM.Launch(se, c.name, srm.LaunchOpts{
			Groups: pr.spec.Groups, MainPrio: pr.spec.MainPrio,
		}, n.beatBody(pr))
		if err != nil {
			return err
		}
		pr.gen++
		n.hosted[c.name] = pr
		return nil
	}
	if pr == nil {
		// Launched but unknown to the agent (lost host state would be a
		// bug; the record is the ground truth, so re-adopt it).
		pr = &podRec{spec: c.spec, pod: &Pod{Name: c.name}}
		n.hosted[c.name] = pr
	}
	if c.fresh {
		pr.pod.Beats, pr.pod.Done, pr.pod.AtHorizon = 0, false, false
	}
	if l.KID == 0 {
		// Swapped out by cache pressure: revive a dead context first so
		// Unswap's thread load lands on a runnable one, then reload.
		if l.Main != nil && l.Main.Exec.Finished() {
			pr.pod.Done, pr.pod.AtHorizon = false, false
			l.Main.Revive()
			pr.gen++
		}
		return n.SRM.Unswap(se, c.name)
	}
	if l.Main != nil && l.Main.Exec.Finished() {
		// Loaded kernel, dead main (a kill fault, or a completed pod
		// being restarted): regenerate the context from the body and
		// reload just the thread.
		pr.pod.Done, pr.pod.AtHorizon = false, false
		if !l.Main.Revive() {
			return fmt.Errorf("ckctl: %q main not revivable", c.name)
		}
		if err := l.Main.Load(se, false); err != nil {
			return err
		}
		n.SRM.TrackThread(l.Main)
		pr.gen++
	}
	return nil
}

// migrateOut expels the instance and hands its records to the
// destination agent.
func (n *Node) migrateOut(se *hw.Exec, c *command) {
	eng := n.MPM.Shard
	fail := func(err error) {
		n.cl.sendEvent(eng, se.Now(), event{migFail: &migFail{
			name: c.name, from: n.Idx, to: c.dst, stage: "expel", err: err.Error(),
		}})
	}
	pr := n.hosted[c.name]
	l := n.SRM.Kernel(c.name)
	if pr == nil || l == nil {
		fail(fmt.Errorf("%w: %q", srm.ErrUnknownKernel, c.name))
		return
	}
	execName := l.AK.Name + "/main"
	srcLast := n.lastDispatch[execName]
	rec, err := n.SRM.Expel(se, c.name)
	if err != nil {
		fail(err)
		return
	}
	delete(n.hosted, c.name)
	m := &migMsg{
		name: c.name, rec: rec, pr: pr,
		from: n.Idx, to: c.dst, execName: execName,
		srcLast: srcLast, expelAt: se.Now(),
	}
	dst := n.cl.Nodes[c.dst]
	n.cl.sendCmd(eng, se.Now(), dst, command{kind: cmdAdopt, name: c.name, mig: m})
}

// adopt installs migrated-in records and arms the first-dispatch watch
// that closes the blackout measurement.
func (n *Node) adopt(se *hw.Exec, m *migMsg) {
	eng := n.MPM.Shard
	// Host-side state first: if a crash lands mid-Adopt, the replayed
	// agent still knows about the pod it was taking in (Adopt itself
	// registers the records before reloading, for the same reason).
	n.hosted[m.name] = m.pr
	n.awaitFirst[m.execName] = m
	if err := n.SRM.Adopt(se, m.rec); err != nil {
		delete(n.hosted, m.name)
		delete(n.awaitFirst, m.execName)
		n.cl.sendEvent(eng, se.Now(), event{migFail: &migFail{
			name: m.name, from: m.from, to: m.to, stage: "adopt", err: err.Error(),
		}})
		return
	}
	m.adoptAt = se.Now()
	m.pr.gen++
}

// report sends the module's status to the controller.
func (n *Node) report(se *hw.Exec) {
	rep := &nodeReport{
		Node:       n.Idx,
		At:         se.Now(),
		Load:       n.CK.CacheCounters().LoadScore(),
		FreeGroups: n.SRM.FreeGroups(),
		Recoveries: n.recoveries,
	}
	for _, name := range n.hostedNames() {
		pr := n.hosted[name]
		rep.Kernels = append(rep.Kernels, kernelReport{
			Name: name, State: n.podState(name, pr), Beats: pr.pod.Beats, Gen: pr.gen,
		})
	}
	n.cl.sendEvent(n.MPM.Shard, se.Now(), event{report: rep})
}

// podState classifies one hosted instance from the SRM's records and
// the pod's own flags.
func (n *Node) podState(name string, pr *podRec) podState {
	l := n.SRM.Kernel(name)
	switch {
	case l == nil:
		return psGone
	case l.KID == 0:
		return psSwapped
	case l.Main != nil && l.Main.Exec.Finished():
		if pr.pod.Done || pr.pod.AtHorizon {
			return psCompleted
		}
		return psFailed
	default:
		return psRunning
	}
}

// hostedNames returns the hosted instance names in deterministic order.
func (n *Node) hostedNames() []string {
	names := make([]string, 0, len(n.hosted))
	//ckvet:allow detmap keys are collected then sorted before use
	for name := range n.hosted {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// beatBody builds the "beat" kind's workload: a deterministic compute
// loop counting heartbeats into the pod record. The closure travels
// with the thread's backing record, so a migrated or revived pod
// resumes its count — the pod's observable state lives outside the
// Cache Kernel, as the caching model prescribes.
func (n *Node) beatBody(pr *podRec) func(ak *aklib.AppKernel, e *hw.Exec) {
	p := pr.pod
	target := pr.spec.Beats
	beat := hw.CyclesFromMicros(pr.spec.BeatUS)
	horizon := n.cl.Cfg.Horizon
	return func(_ *aklib.AppKernel, me *hw.Exec) {
		for me.Now() < horizon {
			if target != 0 && p.Beats >= target {
				p.Done = true
				return
			}
			me.Charge(beat)
			p.Beats++
		}
		if target != 0 && p.Beats >= target {
			p.Done = true
			return
		}
		p.AtHorizon = true
	}
}
