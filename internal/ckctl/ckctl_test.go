package ckctl

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"vpp/internal/chaos"
	"vpp/internal/hw"
)

// buildCluster boots a machine with the plane over it. Callers arm
// chaos/upgrades and then runCluster.
func buildCluster(t *testing.T, mpms, shards int, spec Spec, horizonUS float64) *Cluster {
	t.Helper()
	mcfg := hw.DefaultConfig()
	mcfg.MPMs = mpms
	mcfg.CPUsPerMPM = 2
	mcfg.PhysMemBytes = 256 << 20
	mcfg.Shards = shards
	m := hw.NewMachine(mcfg)
	cfg := DefaultConfig()
	cfg.Horizon = hw.CyclesFromMicros(horizonUS)
	c, err := New(m, cfg, spec)
	if err != nil {
		t.Fatalf("ckctl.New: %v", err)
	}
	return c
}

func runCluster(t *testing.T, c *Cluster) {
	t.Helper()
	c.M.SetMaxSteps(2_000_000_000)
	if err := c.M.Run(math.MaxUint64); err != nil {
		t.Fatalf("machine run: %v", err)
	}
	for _, p := range c.Verify() {
		t.Errorf("verify: %s", p)
	}
}

func TestLaunchAndComplete(t *testing.T) {
	spec := Spec{Kernels: []KernelSpec{
		{Name: "web", Count: 4, MPM: -1, Restart: RestartOnFailure, Beats: 40, BeatUS: 100},
		{Name: "batch", Count: 2, MPM: 1, Restart: RestartNever, Beats: 20, BeatUS: 100},
	}}
	c := buildCluster(t, 2, 1, spec, 30_000)
	runCluster(t, c)
	st := c.Status()
	if len(st.Instances) != 6 {
		t.Fatalf("expected 6 instances, got %d", len(st.Instances))
	}
	for _, in := range st.Instances {
		if in.Phase != "completed" {
			t.Errorf("%s: phase %s, want completed (beats %d)", in.Name, in.Phase, in.Beats)
		}
		if in.Beats == 0 {
			t.Errorf("%s: no beats", in.Name)
		}
	}
	// The pinned group must land on module 1.
	for _, in := range st.Instances {
		if strings.HasPrefix(in.Name, "batch") && in.Node != 1 {
			t.Errorf("%s: pinned to MPM 1, placed on %d", in.Name, in.Node)
		}
	}
	// Auto-placement must use both modules.
	seen := map[int]bool{}
	for _, in := range st.Instances {
		if strings.HasPrefix(in.Name, "web") {
			seen[in.Node] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("auto placement used only modules %v", seen)
	}
}

func TestLiveMigration(t *testing.T) {
	spec := Spec{Kernels: []KernelSpec{
		{Name: "pod", Count: 4, MPM: -1, Restart: RestartOnFailure, BeatUS: 100},
	}}
	c := buildCluster(t, 2, 1, spec, 40_000)
	c.ScheduleRollingUpgrade(hw.CyclesFromMicros(8_000))
	runCluster(t, c)
	st := c.Status()
	if st.Upgrade == nil || st.Upgrade.DoneAt == 0 {
		t.Fatalf("rolling upgrade did not finish: %+v", st.Upgrade)
	}
	if st.Upgrade.Migrated == 0 {
		t.Fatalf("no migrations performed")
	}
	for _, m := range st.Migrations {
		if m.Failed {
			t.Errorf("migration %s failed: %s", m.Name, m.Err)
			continue
		}
		if m.From == m.To {
			t.Errorf("migration %s: from == to == %d", m.Name, m.From)
		}
		if m.FirstResume <= m.SrcLastDispatch {
			t.Errorf("migration %s: resume %d not after last source dispatch %d", m.Name, m.FirstResume, m.SrcLastDispatch)
		}
		if m.Blackout == 0 {
			t.Errorf("migration %s: zero blackout", m.Name)
		}
	}
	// Migrated pods kept beating on the new module (beat counts survive
	// the move and keep growing).
	for _, in := range st.Instances {
		if in.Phase != "completed" && in.Phase != "running" {
			t.Errorf("%s: phase %s after upgrade", in.Name, in.Phase)
		}
		if in.Beats < 50 {
			t.Errorf("%s: only %d beats — did it stall after migration?", in.Name, in.Beats)
		}
	}
}

func TestKillRunningRestartPolicy(t *testing.T) {
	spec := Spec{Kernels: []KernelSpec{
		// Pods that would complete well before the horizon if undisturbed.
		{Name: "churn", Count: 2, MPM: 0, Restart: RestartOnFailure, Beats: 100, BeatUS: 100},
		{Name: "frail", Count: 1, MPM: 0, Restart: RestartNever, Beats: 100, BeatUS: 100},
	}}
	c := buildCluster(t, 1, 1, spec, 60_000)
	// Kill whatever runs on both CPUs mid-run: some pod mains die; the
	// on-failure pods must be restarted and still finish, the no-restart
	// pod stays down if it was hit.
	inj := chaos.New(chaos.Plan{Seed: 7, Faults: []chaos.Fault{
		{Kind: chaos.KillRunning, At: hw.CyclesFromMicros(5_000), MPM: 0, CPU: 0},
		{Kind: chaos.KillRunning, At: hw.CyclesFromMicros(5_000), MPM: 0, CPU: 1},
		{Kind: chaos.KillRunning, At: hw.CyclesFromMicros(9_000), MPM: 0, CPU: 0},
	}})
	inj.Arm(c.M, c.Kernels()...)
	runCluster(t, c)
	if inj.Stats.ExecsKilled == 0 {
		t.Fatalf("chaos killed nothing; test exercises no restart path")
	}
	st := c.Status()
	restarted := 0
	for _, in := range st.Instances {
		switch {
		case strings.HasPrefix(in.Name, "churn"):
			if in.Phase != "completed" {
				t.Errorf("%s: phase %s, want completed despite kills", in.Name, in.Phase)
			}
			restarted += in.Restarts
		case strings.HasPrefix(in.Name, "frail"):
			if in.Phase != "completed" && in.Phase != "failed" {
				t.Errorf("%s: phase %s, want completed or failed", in.Name, in.Phase)
			}
			if in.Phase == "failed" && in.Restarts != 0 {
				t.Errorf("%s: restart policy no, but %d restarts", in.Name, in.Restarts)
			}
		}
	}
	if restarted == 0 {
		t.Errorf("no on-failure restarts recorded; kills hit nothing restartable")
	}
}

func TestCrashDuringMigration(t *testing.T) {
	spec := Spec{Kernels: []KernelSpec{
		{Name: "pod", Count: 6, MPM: -1, Restart: RestartOnFailure, BeatUS: 100},
	}}
	// Preemption latency under CPU saturation is bounded by the engine's
	// yield granularity (a compute-bound pod only polls interrupts when
	// its granted horizon expires), so each serial migration takes
	// 300-500k cycles; six migrations plus a crash recovery need a
	// generous horizon to converge.
	c := buildCluster(t, 2, 1, spec, 160_000)
	upgradeAt := hw.CyclesFromMicros(8_000)
	c.ScheduleRollingUpgrade(upgradeAt)
	// Crash the source module's Cache Kernel while the upgrade is
	// migrating pods off it; the guardian must recover the module and
	// the controller must converge every pod back to running.
	inj := chaos.New(chaos.Plan{Seed: 11, Faults: []chaos.Fault{
		{Kind: chaos.CrashKernel, At: upgradeAt + hw.CyclesFromMicros(300), MPM: 0},
	}})
	inj.Arm(c.M, c.Kernels()...)
	runCluster(t, c)
	if inj.Stats.Crashes != 1 {
		t.Fatalf("expected 1 crash, got %d", inj.Stats.Crashes)
	}
	st := c.Status()
	recovered := false
	for _, n := range st.Nodes {
		if n.Recoveries > 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("no guardian recovery observed after crash")
	}
	for _, in := range st.Instances {
		if in.Phase != "running" && in.Phase != "completed" {
			t.Errorf("%s: phase %s after crash+upgrade, want running/completed", in.Name, in.Phase)
		}
	}
}

// TestDeterminism reruns the migration scenario and requires the status
// JSON — timings, blackouts, placements, beat counts — to be
// byte-identical, serial and sharded.
func TestDeterminism(t *testing.T) {
	run := func(shards int) string {
		spec := Spec{Kernels: []KernelSpec{
			{Name: "pod", Count: 6, MPM: -1, Restart: RestartOnFailure, BeatUS: 100},
		}}
		c := buildCluster(t, 2, shards, spec, 40_000)
		c.ScheduleRollingUpgrade(hw.CyclesFromMicros(8_000))
		runCluster(t, c)
		b, err := json.MarshalIndent(c.Status(), "", " ")
		if err != nil {
			t.Fatalf("marshal status: %v", err)
		}
		return string(b)
	}
	serial1, serial2 := run(1), run(1)
	if serial1 != serial2 {
		t.Fatalf("serial rerun diverged:\n%s\n---\n%s", serial1, serial2)
	}
	sharded := run(2)
	if serial1 != sharded {
		t.Fatalf("sharded run diverged from serial:\n%s\n---\n%s", serial1, sharded)
	}
}
