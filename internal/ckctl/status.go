package ckctl

import (
	"fmt"
	"sort"
	"strings"
)

// The structured status API: everything is derived from virtual-time
// simulation state, so `ckctl ps` output and the status JSON are
// byte-identical for a given spec, seed and chaos plan at any shard
// count. Read after the machine has run (or from the owning shard).

// InstanceStatus is one pod's controller-view status line.
type InstanceStatus struct {
	Name     string
	Kind     string
	Policy   string
	Node     int
	Phase    string
	Gen      int
	Restarts int
	Beats    uint64
}

// NodeStatus is one module's last-reported status.
type NodeStatus struct {
	Node       int
	Load       uint64
	FreeGroups int
	Recoveries int
	// Revived counts control-plane service threads the watchdogs
	// regenerated after kill faults.
	Revived      int
	Hosted       int
	LastReportAt uint64
}

// UpgradeStatus summarizes a rolling upgrade.
type UpgradeStatus struct {
	StartAt  uint64
	DoneAt   uint64
	Makespan uint64
	Migrated int
	Skipped  int
}

// Status is the full cluster view.
type Status struct {
	At         uint64
	Instances  []InstanceStatus
	Nodes      []NodeStatus
	Migrations []MigrationRecord
	Upgrade    *UpgradeStatus `json:",omitempty"`
}

// Status snapshots the controller's view of the cluster.
func (c *Cluster) Status() Status {
	ctl := c.ctl
	st := Status{At: c.M.Now()}
	hosted := make([]int, len(c.Nodes))
	for _, name := range ctl.names {
		in := ctl.insts[name]
		st.Instances = append(st.Instances, InstanceStatus{
			Name:     in.name,
			Kind:     in.spec.Kind,
			Policy:   in.spec.Restart.String(),
			Node:     in.node,
			Phase:    in.phase.String(),
			Gen:      in.gen,
			Restarts: in.restarts,
			Beats:    in.beats,
		})
		if in.node >= 0 && in.phase != phaseFailed {
			hosted[in.node]++
		}
	}
	for i, n := range c.Nodes {
		st.Nodes = append(st.Nodes, NodeStatus{
			Node:         i,
			Load:         ctl.nodeLoad[i],
			FreeGroups:   ctl.nodeFree[i],
			Recoveries:   n.recoveries,
			Revived:      n.revived,
			Hosted:       hosted[i],
			LastReportAt: ctl.nodeSeen[i],
		})
	}
	for _, mr := range ctl.migrations {
		st.Migrations = append(st.Migrations, *mr)
	}
	if up := ctl.upgrade; up != nil {
		us := &UpgradeStatus{StartAt: up.startAt, DoneAt: up.doneAt, Migrated: up.migrated, Skipped: up.skipped}
		if up.doneAt > up.startAt {
			us.Makespan = up.doneAt - up.startAt
		}
		st.Upgrade = us
	}
	return st
}

// Table renders the status as a `ckctl ps`-style listing.
func (st Status) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-6s %-10s %4s %-10s %4s %9s %6s\n",
		"NAME", "KIND", "POLICY", "NODE", "PHASE", "GEN", "BEATS", "RST")
	for _, in := range st.Instances {
		fmt.Fprintf(&b, "%-14s %-6s %-10s %4d %-10s %4d %9d %6d\n",
			in.Name, in.Kind, in.Policy, in.Node, in.Phase, in.Gen, in.Beats, in.Restarts)
	}
	fmt.Fprintf(&b, "\n%-5s %-8s %-10s %-10s %-6s\n", "NODE", "HOSTED", "LOAD", "FREEGRP", "RECOV")
	for _, n := range st.Nodes {
		fmt.Fprintf(&b, "%-5d %-8d %-10d %-10d %-6d\n", n.Node, n.Hosted, n.Load, n.FreeGroups, n.Recoveries)
	}
	if len(st.Migrations) > 0 {
		fmt.Fprintf(&b, "\n%-14s %4s %4s %12s %12s %10s\n", "MIGRATION", "FROM", "TO", "EXPEL", "RESUME", "BLACKOUT")
		for _, m := range st.Migrations {
			if m.Failed {
				fmt.Fprintf(&b, "%-14s %4d %4d %12s %12s %10s (%s)\n", m.Name, m.From, m.To, "-", "-", "failed", m.Err)
				continue
			}
			fmt.Fprintf(&b, "%-14s %4d %4d %12d %12d %10d\n", m.Name, m.From, m.To, m.ExpelAt, m.FirstResume, m.Blackout)
		}
	}
	if st.Upgrade != nil {
		fmt.Fprintf(&b, "\nrolling upgrade: %d migrated, %d skipped, makespan %d cycles\n",
			st.Upgrade.Migrated, st.Upgrade.Skipped, st.Upgrade.Makespan)
	}
	return b.String()
}

// Verify cross-checks the controller's view against the SRMs' ground
// truth and the Cache Kernels' descriptor caches, returning one string
// per violation. Intended after the machine has quiesced. It asserts
// the migration conservation property — no instance's records exist on
// two modules, no running instance's on zero — plus placement
// coherence and pod liveness.
func (c *Cluster) Verify() []string {
	var bad []string
	ctl := c.ctl
	for _, name := range ctl.names {
		in := ctl.insts[name]
		var hosts []int
		for i, n := range c.Nodes {
			if n.SRM != nil && n.SRM.Kernel(name) != nil {
				hosts = append(hosts, i)
			}
		}
		if len(hosts) > 1 {
			bad = append(bad, fmt.Sprintf("conservation: %q launched on %d modules %v", name, len(hosts), hosts))
			continue
		}
		switch in.phase {
		case phaseRunning, phaseCompleted, phaseMigrating, phaseLaunching:
			if len(hosts) != 1 {
				bad = append(bad, fmt.Sprintf("conservation: %q is %s but launched on %d modules", name, in.phase, len(hosts)))
			} else if in.phase == phaseRunning && hosts[0] != in.node {
				bad = append(bad, fmt.Sprintf("coherence: %q placed on module %d, found on %d", name, in.node, hosts[0]))
			}
		}
		if in.phase == phaseRunning || in.phase == phaseCompleted {
			if len(hosts) == 1 {
				pr := c.Nodes[hosts[0]].hosted[name]
				if pr == nil {
					bad = append(bad, fmt.Sprintf("coherence: %q launched on module %d but not in its agent's pod set", name, hosts[0]))
				} else if pr.pod.Beats == 0 {
					bad = append(bad, fmt.Sprintf("liveness: %q never made progress (0 beats)", name))
				}
			}
		}
	}
	// Descriptor-cache conservation: no pod main is cached on two
	// modules (identifiers may legitimately be absent — written back,
	// or reclaimed after the body returned).
	count := make(map[string]int)
	for _, n := range c.Nodes {
		for _, ts := range n.CK.Snapshot().Threads {
			if strings.HasSuffix(ts.ExecName, "/main") {
				count[ts.ExecName]++
			}
		}
	}
	names := make([]string, 0, len(count))
	for en := range count {
		names = append(names, en)
	}
	sort.Strings(names)
	for _, en := range names {
		if count[en] > 1 {
			bad = append(bad, fmt.Sprintf("conservation: thread %q cached on %d modules", en, count[en]))
		}
	}
	for _, n := range c.Nodes {
		if err := n.CK.CheckInvariants(); err != nil {
			bad = append(bad, fmt.Sprintf("invariants: module %d: %v", n.Idx, err))
		}
	}
	return bad
}
