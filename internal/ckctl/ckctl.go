// Package ckctl is a container-style orchestration plane over
// application kernels: a declarative spec of desired pods (kind, count,
// placement constraint, restart policy), a reconciling controller, and
// live migration of running kernels between MPMs.
//
// Everything runs *inside* the simulation as ordinary coroutines — the
// controller and the per-MPM agents are SRM-space worker threads
// (replayed across Cache Kernel crashes by the SRM's service registry),
// and all control traffic is virtual-time messages carried between
// engine shards by the epoch outbox (sim.Engine.ScheduleCrossAt). A
// given spec, chaos plan and seed therefore produce a byte-identical
// run at any shard count: orchestration is part of the simulated world,
// not a host-side driver.
//
// The plane leans on the paper's caching model twice over. Crash
// handling is the SRM guardian's existing regenerate-from-backing-records
// recovery (paper §3); ckctl only decides *policy* — which pods to
// restart where. And live migration is a records handoff rather than a
// state copy: quiesce the source instance, force a full descriptor
// writeback (srm.Expel), carry the backing records to the target MPM in
// one cross-shard message, and reload them there (srm.Adopt). Physical
// memory is machine-wide, so the pod's frames and segment contents
// never move. The measured cost is a virtual-time blackout: last
// source-side dispatch to first target-side dispatch.
package ckctl

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
)

// Harness signal value for the agent/controller self-alarm ticks, away
// from every library's own.
const sigTick uint32 = 0x7D1

// servicePrio is the agents' and controller's thread priority: below
// the SRM boot thread (50) and recovery threads (45), above ordinary
// pods, so the control plane stays responsive without starving
// recovery.
const servicePrio = 44

// Config tunes the plane. All times are cycles of virtual time.
type Config struct {
	// Horizon stops the controller, agents and guardians; it must be
	// set, or the plane would keep the engine alive forever.
	Horizon uint64
	// AgentTick is the agents' and controller's polling period.
	AgentTick uint64
	// CtlLatency is the modeled control-message latency between modules;
	// it is registered as the cluster's cross-shard lookahead bound.
	CtlLatency uint64
	// LaunchTimeout bounds how long the controller waits for a launch or
	// restart to be reported running before reissuing it.
	LaunchTimeout uint64
	// MigrateTimeout bounds a migration before the controller falls back
	// to relaunching the pod on the target (convergence under chaos).
	MigrateTimeout uint64
	// BackoffBase/BackoffCap bound the doubling restart backoff.
	BackoffBase uint64
	BackoffCap  uint64
	// GuardInterval is the per-MPM crash guardian's probe period.
	GuardInterval uint64
	// CK configures each MPM's Cache Kernel instance.
	CK ck.Config
}

// DefaultConfig returns the standard timings (horizon still required).
func DefaultConfig() Config {
	return Config{
		AgentTick:      hw.CyclesFromMicros(100),
		CtlLatency:     hw.CyclesFromMicros(25),
		LaunchTimeout:  hw.CyclesFromMicros(5_000),
		MigrateTimeout: hw.CyclesFromMicros(30_000),
		BackoffBase:    hw.CyclesFromMicros(500),
		BackoffCap:     hw.CyclesFromMicros(8_000),
		GuardInterval:  hw.CyclesFromMicros(400),
	}
}

// Node is the plane's per-MPM half: the module's Cache Kernel and SRM
// plus the agent state. All Node fields are owned by the module's
// engine shard once the machine runs.
type Node struct {
	Idx int
	MPM *hw.MPM
	CK  *ck.Kernel
	SRM *srm.SRM

	cl *Cluster

	// hosted is this module's pod set, keyed by instance name; the
	// agent is the only writer.
	hosted map[string]*podRec
	// inbox receives controller commands (appended by message-delivery
	// closures running on this shard).
	inbox []command
	// lastDispatch tracks each execution context's most recent dispatch
	// (for the migration blackout's source timestamp); awaitFirst holds
	// in-progress adoptions keyed by the main exec's name.
	lastDispatch map[string]uint64
	agentUp      bool
	awaitFirst   map[string]*migMsg

	// retired marks plane services whose bodies returned deliberately
	// (horizon reached), so the watchdogs don't "revive" a service that
	// finished on purpose.
	retired map[string]bool

	// recoveries counts guardian recoveries on this module; revived
	// counts service threads the medic/agent watchdogs regenerated after
	// a kill fault landed on one.
	recoveries int
	revived    int
	guardian   *srm.Guardian
}

// podRec is the agent's record of one hosted pod.
type podRec struct {
	spec KernelSpec // per-instance (Count folded out)
	pod  *Pod
	gen  int
}

// Cluster is one orchestrated machine: a controller on node 0 plus an
// agent per MPM.
type Cluster struct {
	M     *hw.Machine
	Cfg   Config
	Nodes []*Node

	ctl *Controller
}

// New boots the orchestration plane over every MPM of the machine: a
// Cache Kernel and SRM per module, an agent service on each, the
// controller service and its guardian-backed reconcile loop on node 0.
// Call before m.Run; read Status after.
func New(m *hw.Machine, cfg Config, spec Spec) (*Cluster, error) {
	if cfg.Horizon == 0 {
		return nil, fmt.Errorf("ckctl: Config.Horizon must be set")
	}
	d := DefaultConfig()
	if cfg.AgentTick == 0 {
		cfg.AgentTick = d.AgentTick
	}
	if cfg.CtlLatency == 0 {
		cfg.CtlLatency = d.CtlLatency
	}
	if cfg.LaunchTimeout == 0 {
		cfg.LaunchTimeout = d.LaunchTimeout
	}
	if cfg.MigrateTimeout == 0 {
		cfg.MigrateTimeout = d.MigrateTimeout
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = d.BackoffBase
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = d.BackoffCap
	}
	if cfg.GuardInterval == 0 {
		cfg.GuardInterval = d.GuardInterval
	}
	if _, err := spec.normalize(); err != nil {
		return nil, err
	}
	// Control messages may cross engine shards; their modeled latency is
	// the interconnect's lookahead bound.
	m.BoundLookahead(cfg.CtlLatency)

	c := &Cluster{M: m, Cfg: cfg}
	for i, mpm := range m.MPMs {
		k, err := ck.New(mpm, cfg.CK)
		if err != nil {
			return nil, fmt.Errorf("ckctl: ck.New mpm %d: %w", i, err)
		}
		n := &Node{
			Idx: i, MPM: mpm, CK: k, cl: c,
			hosted:       make(map[string]*podRec),
			lastDispatch: make(map[string]uint64),
			awaitFirst:   make(map[string]*migMsg),
			retired:      make(map[string]bool),
		}
		c.Nodes = append(c.Nodes, n)
	}
	c.ctl = newController(c, spec)
	for _, n := range c.Nodes {
		n := n
		_, err := srm.Start(n.CK, n.MPM, func(s *srm.SRM, e *hw.Exec) {
			n.SRM = s
			if _, err := s.AddService(e, "agent", servicePrio, n.agentBody); err != nil {
				panic(fmt.Sprintf("ckctl: install agent on mpm %d: %v", n.Idx, err))
			}
			if n.Idx == 0 {
				if _, err := s.AddService(e, "ctl", servicePrio, c.ctl.body); err != nil {
					panic(fmt.Sprintf("ckctl: install controller: %v", err))
				}
			}
			if _, err := s.AddService(e, "medic", servicePrio, n.medicBody); err != nil {
				panic(fmt.Sprintf("ckctl: install medic on mpm %d: %v", n.Idx, err))
			}
			n.guardian = s.Guard(srm.GuardConfig{
				Interval: c.Cfg.GuardInterval,
				Until:    c.Cfg.Horizon,
				OnRecovered: func(r *srm.RecoveryReport) {
					n.recoveries++
					// srm.Recover clobbered the dispatch hook for its
					// first-resume probe; the agent owns it again.
					n.installDispatchHook()
				},
			})
			// Return: the boot thread exits after setup, so a crash finds
			// nothing of the SRM to strand. The guardian and the service
			// registry are what survive.
		})
		if err != nil {
			return nil, fmt.Errorf("ckctl: srm.Start mpm %d: %w", n.Idx, err)
		}
	}
	return c, nil
}

// Kernels returns every module's Cache Kernel, in MPM order (for chaos
// arming and invariant checks).
func (c *Cluster) Kernels() []*ck.Kernel {
	ks := make([]*ck.Kernel, len(c.Nodes))
	for i, n := range c.Nodes {
		ks[i] = n.CK
	}
	return ks
}

// ScheduleRollingUpgrade arranges (before the machine runs) for the
// controller to begin a rolling upgrade at virtual time at: every
// instance is live-migrated off its module, one at a time, in name
// order — the drain-and-move pattern of a cluster upgrade. The makespan
// and per-pod blackouts appear in Status.
func (c *Cluster) ScheduleRollingUpgrade(at uint64) {
	ctlShard := c.Nodes[0].MPM.Shard
	ctlShard.ScheduleAt(at, func() {
		c.ctl.beginUpgrade(at)
	})
}
