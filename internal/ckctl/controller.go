package ckctl

import (
	"fmt"

	"vpp/internal/hw"
)

// The controller: an SRM-space worker thread on node 0 that owns the
// desired-state spec and reconciles the cluster toward it from agent
// reports. All controller state is owned by node 0's engine shard;
// agents talk to it only through the epoch outbox, so reconciliation is
// deterministic at any shard count.

// phase is the controller's view of one instance.
type phase int

const (
	phasePending phase = iota
	phaseLaunching
	phaseRunning
	phaseRestarting
	phaseMigrating
	phaseCompleted
	phaseFailed
)

func (p phase) String() string {
	switch p {
	case phasePending:
		return "pending"
	case phaseLaunching:
		return "launching"
	case phaseRunning:
		return "running"
	case phaseRestarting:
		return "restarting"
	case phaseMigrating:
		return "migrating"
	case phaseCompleted:
		return "completed"
	case phaseFailed:
		return "failed"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// assignedWeight is the placement score added per instance already
// assigned to a module, so a launch wave spreads before the first load
// reports arrive. Comparable to one pod's descriptor-cache footprint in
// LoadScore units.
const assignedWeight = 400

// instance is the controller's record of one desired pod.
type instance struct {
	name string
	spec KernelSpec

	node  int // current home module (-1 before first placement)
	phase phase
	gen   int
	beats uint64

	lastSeen uint64
	backoff  uint64
	retryAt  uint64
	deadline uint64
	fresh    bool
	avoid    int // module of the last launch failure (-1 none)

	// sightNode/sightAt record the last module whose agent reported
	// holding this instance's records — the convergence anchor when a
	// migration times out and the controller must guess where the pod
	// ended up without risking a duplicate launch.
	sightNode int
	sightAt   uint64

	restarts int
	mig      *MigrationRecord
}

// MigrationRecord is the measured timeline of one live migration.
type MigrationRecord struct {
	Name     string
	From, To int
	// StartAt is when the controller issued the migration;
	// SrcLastDispatch is the pod's last source-side resume; ExpelAt the
	// completed writeback; AdoptAt the completed target reload;
	// FirstResume the first target-side dispatch.
	StartAt         uint64
	SrcLastDispatch uint64
	ExpelAt         uint64
	AdoptAt         uint64
	FirstResume     uint64
	// Blackout is FirstResume − SrcLastDispatch: the virtual time the
	// pod made no progress anywhere.
	Blackout uint64
	Failed   bool
	Err      string `json:",omitempty"`
}

// upgradeState tracks one rolling upgrade.
type upgradeState struct {
	startAt  uint64
	doneAt   uint64
	queue    []string
	current  string
	migrated int
	skipped  int
	// waitUntil bounds how long the drive loop waits for the pod at the
	// head of the queue to finish launching before skipping it.
	waitUntil uint64
}

// Controller is the reconcile loop's state.
type Controller struct {
	cl *Cluster

	names []string
	insts map[string]*instance

	// inbox receives agent events (appended by message-delivery closures
	// on this shard).
	inbox []event

	nodeLoad       []uint64
	nodeFree       []int
	nodeSeen       []uint64
	nodeRecoveries []int

	migrations []*MigrationRecord
	upgrade    *upgradeState
	done       bool
}

func newController(cl *Cluster, spec Spec) *Controller {
	ctl := &Controller{
		cl:             cl,
		insts:          make(map[string]*instance),
		nodeLoad:       make([]uint64, len(cl.Nodes)),
		nodeFree:       make([]int, len(cl.Nodes)),
		nodeSeen:       make([]uint64, len(cl.Nodes)),
		nodeRecoveries: make([]int, len(cl.Nodes)),
	}
	for _, ks := range spec.Kernels {
		for i := 0; i < ks.Count; i++ {
			one := ks
			one.Count = 1
			name := fmt.Sprintf("%s-%d", ks.Name, i)
			if _, dup := ctl.insts[name]; dup {
				continue
			}
			ctl.insts[name] = &instance{name: name, spec: one, node: -1, avoid: -1, sightNode: -1}
			ctl.names = append(ctl.names, name)
		}
	}
	return ctl
}

// body is the controller service loop (replayed after a node-0 crash;
// all reconcile state survives on the host side).
func (ctl *Controller) body(ce *hw.Exec) {
	cl := ctl.cl
	node0 := cl.Nodes[0]
	k := node0.CK
	node0.retired["ctl"] = false
	for ce.Now() < cl.Cfg.Horizon {
		tid := k.CurrentThread(ce)
		if err := k.SetAlarm(ce, tid, ce.Now()+cl.Cfg.AgentTick, sigTick); err != nil {
			break
		}
		if _, err := k.WaitSignal(ce); err != nil {
			break
		}
		k.SignalReturn(ce)
		ctl.drain(ce)
		ctl.reconcile(ce)
	}
	node0.retired["ctl"] = true
	ctl.done = true
}

// drain processes queued agent events in arrival order.
func (ctl *Controller) drain(ce *hw.Exec) {
	for len(ctl.inbox) > 0 {
		evs := ctl.inbox
		ctl.inbox = nil
		for i := range evs {
			ev := &evs[i]
			switch {
			case ev.report != nil:
				ctl.handleReport(ce, ev.report)
			case ev.migDone != nil:
				ctl.handleMigDone(ce, ev.migDone)
			case ev.migFail != nil:
				ctl.handleMigFail(ce, ev.migFail)
			case ev.opFail != nil:
				ctl.handleOpFail(ce, ev.opFail)
			}
		}
	}
}

func (ctl *Controller) handleReport(ce *hw.Exec, rep *nodeReport) {
	i := rep.Node
	ctl.nodeLoad[i] = rep.Load
	ctl.nodeFree[i] = rep.FreeGroups
	ctl.nodeSeen[i] = rep.At
	ctl.nodeRecoveries[i] = rep.Recoveries
	for _, kr := range rep.Kernels {
		in := ctl.insts[kr.Name]
		if in == nil {
			continue
		}
		if kr.State != psGone {
			in.sightNode, in.sightAt = i, rep.At
		}
		if i != in.node {
			// A report from a module we no longer consider the home —
			// usually the migration target before the done event lands.
			// Only the sighting matters; the done event (or the migrate
			// deadline) moves the instance.
			continue
		}
		in.beats = kr.Beats
		in.lastSeen = rep.At
		switch kr.State {
		case psRunning:
			if in.phase == phaseLaunching {
				in.phase = phaseRunning
			}
			if in.phase == phaseRunning {
				in.backoff = 0
			}
		case psSwapped:
			// Cache pressure swapped it out; bring it back promptly.
			if in.phase == phaseRunning {
				ctl.scheduleRestart(ce, in, false, 0)
			}
		case psCompleted:
			if in.phase == phaseRunning || in.phase == phaseLaunching {
				if in.spec.Restart == RestartAlways {
					ctl.scheduleRestart(ce, in, true, ctl.bumpBackoff(in))
				} else {
					in.phase = phaseCompleted
				}
			}
		case psFailed:
			if in.phase == phaseRunning || in.phase == phaseLaunching {
				if in.spec.Restart == RestartNever {
					in.phase = phaseFailed
				} else {
					ctl.scheduleRestart(ce, in, false, ctl.bumpBackoff(in))
				}
			}
		case psGone:
			// The module lost the record (it was expelled, or never took).
			// Involuntary from the instance's point of view.
			if in.phase == phaseRunning || in.phase == phaseLaunching {
				if in.spec.Restart == RestartNever {
					in.phase = phaseFailed
				} else {
					in.node = -1
					in.phase = phasePending
					in.retryAt = ce.Now() + ctl.bumpBackoff(in)
				}
			}
		}
	}
}

// bumpBackoff doubles (bounded) and returns the instance's backoff.
func (ctl *Controller) bumpBackoff(in *instance) uint64 {
	cfg := ctl.cl.Cfg
	if in.backoff == 0 {
		in.backoff = cfg.BackoffBase
	} else {
		in.backoff *= 2
		if in.backoff > cfg.BackoffCap {
			in.backoff = cfg.BackoffCap
		}
	}
	return in.backoff
}

// scheduleRestart arms a restart on the instance's current module after
// the given virtual-time delay.
func (ctl *Controller) scheduleRestart(ce *hw.Exec, in *instance, fresh bool, delay uint64) {
	in.phase = phaseRestarting
	in.fresh = fresh
	in.retryAt = ce.Now() + delay
	in.restarts++
}

func (ctl *Controller) handleMigDone(ce *hw.Exec, m *migMsg) {
	in := ctl.insts[m.name]
	if in == nil || in.phase != phaseMigrating || in.mig == nil {
		return // late duplicate; the reconcile already converged
	}
	in.mig.SrcLastDispatch = m.srcLast
	in.mig.ExpelAt = m.expelAt
	in.mig.AdoptAt = m.adoptAt
	in.mig.FirstResume = m.firstAt
	base := m.srcLast
	if base == 0 || base > m.firstAt {
		base = m.expelAt
	}
	in.mig.Blackout = m.firstAt - base
	ctl.finishMigration(in, in.mig)
}

// finishMigration records the migration and returns the instance to
// running on its new home.
func (ctl *Controller) finishMigration(in *instance, mr *MigrationRecord) {
	ctl.migrations = append(ctl.migrations, mr)
	in.node = mr.To
	in.phase = phaseRunning
	in.gen++
	in.backoff = 0
	in.mig = nil
	ctl.upgradeStep(in.name)
}

func (ctl *Controller) handleMigFail(ce *hw.Exec, mf *migFail) {
	in := ctl.insts[mf.name]
	if in == nil || in.phase != phaseMigrating || in.mig == nil {
		return
	}
	in.mig.Failed = true
	in.mig.Err = mf.stage + ": " + mf.err
	ctl.migrations = append(ctl.migrations, in.mig)
	// An expel failure leaves the pod on the source; an adopt failure
	// leaves its records at the target (Adopt inserts before reloading,
	// exactly so the target guardian and this relaunch can converge).
	if mf.stage == "expel" {
		in.node = mf.from
	} else {
		in.node = mf.to
	}
	in.mig = nil
	ctl.scheduleRestart(ce, in, false, ctl.bumpBackoff(in))
	ctl.upgradeStep(in.name)
}

func (ctl *Controller) handleOpFail(ce *hw.Exec, of *opFail) {
	in := ctl.insts[of.name]
	if in == nil || (in.phase != phaseLaunching && in.phase != phasePending) {
		return
	}
	in.avoid = of.node
	in.node = -1
	in.phase = phasePending
	in.retryAt = ce.Now() + ctl.bumpBackoff(in)
}

// reconcile advances every instance toward its desired state, then
// drives the rolling upgrade.
func (ctl *Controller) reconcile(ce *hw.Exec) {
	now := ce.Now()
	cfg := ctl.cl.Cfg
	for _, name := range ctl.names {
		in := ctl.insts[name]
		switch in.phase {
		case phasePending:
			if now < in.retryAt {
				break
			}
			in.node = ctl.place(in, -1)
			in.phase = phaseLaunching
			in.deadline = now + cfg.LaunchTimeout
			ctl.send(ce, in.node, command{kind: cmdEnsure, name: name, spec: in.spec, fresh: in.fresh})
			in.fresh = false
		case phaseRestarting:
			if now < in.retryAt {
				break
			}
			in.phase = phaseLaunching
			in.deadline = now + cfg.LaunchTimeout
			ctl.send(ce, in.node, command{kind: cmdEnsure, name: name, spec: in.spec, fresh: in.fresh})
			in.fresh = false
		case phaseLaunching:
			if now >= in.deadline {
				ctl.scheduleRestart(ce, in, in.fresh, ctl.bumpBackoff(in))
			}
		case phaseMigrating:
			if now >= in.deadline && in.mig != nil {
				// Convergence fallback: the done event never arrived.
				// Relaunch wherever an agent last reported the records —
				// ensure is a no-op against live records, and launching on
				// the sighted module (rather than guessing) is what keeps a
				// half-finished migration from ending in two copies.
				in.mig.Failed = true
				in.mig.Err = "timeout"
				ctl.migrations = append(ctl.migrations, in.mig)
				if in.sightAt > in.mig.StartAt {
					in.node = in.sightNode
				} else {
					in.node = in.mig.To
				}
				in.mig = nil
				ctl.scheduleRestart(ce, in, false, 0)
				ctl.upgradeStep(name)
			}
		}
	}
	ctl.driveUpgrade(ce, now)
}

// send issues a command to a node's agent.
func (ctl *Controller) send(ce *hw.Exec, node int, cmd command) {
	cl := ctl.cl
	cl.sendCmd(cl.Nodes[0].MPM.Shard, ce.Now(), cl.Nodes[node], cmd)
}

// place picks a module for the instance: its pin if set, else the
// lowest effective load score (last reported score plus a weight per
// instance already assigned), skipping the module its last launch
// failed on and modules known to lack page-group capacity.
func (ctl *Controller) place(in *instance, exclude int) int {
	nn := len(ctl.cl.Nodes)
	if in.spec.MPM >= 0 {
		return in.spec.MPM % nn
	}
	assigned := make([]int, nn)
	for _, name := range ctl.names {
		o := ctl.insts[name]
		if o.node >= 0 && o.phase != phaseCompleted && o.phase != phaseFailed {
			assigned[o.node]++
		}
	}
	best, bestScore := -1, ^uint64(0)
	for i := 0; i < nn; i++ {
		if i == exclude || (i == in.avoid && nn > 1) {
			continue
		}
		if ctl.nodeSeen[i] != 0 && ctl.nodeFree[i] < in.spec.Groups {
			continue
		}
		score := ctl.nodeLoad[i] + uint64(assigned[i])*assignedWeight
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		// Everything excluded: fall back to round-robin off the exclusion.
		best = (exclude + 1) % nn
		if best < 0 {
			best = 0
		}
	}
	return best
}

// beginUpgrade starts a rolling upgrade over every instance, in
// declaration order (engine context; installed by
// Cluster.ScheduleRollingUpgrade).
func (ctl *Controller) beginUpgrade(at uint64) {
	if ctl.upgrade != nil {
		return
	}
	ctl.upgrade = &upgradeState{
		startAt: at,
		queue:   append([]string(nil), ctl.names...),
	}
}

// upgradeStep clears the in-flight slot when the named migration ends.
func (ctl *Controller) upgradeStep(name string) {
	if ctl.upgrade != nil && ctl.upgrade.current == name {
		ctl.upgrade.current = ""
	}
}

// driveUpgrade serializes the upgrade: one migration in flight at a
// time, each instance moved to the least-loaded other module.
func (ctl *Controller) driveUpgrade(ce *hw.Exec, now uint64) {
	up := ctl.upgrade
	if up == nil || up.doneAt != 0 || up.current != "" {
		return
	}
	for len(up.queue) > 0 {
		name := up.queue[0]
		in := ctl.insts[name]
		if in != nil && in.phase != phaseRunning &&
			in.phase != phaseCompleted && in.phase != phaseFailed {
			// Still pending or launching (an upgrade scheduled early can
			// overtake the initial launch wave): hold the queue head until
			// it comes up rather than skipping a pod that is about to run,
			// but bound the wait so a pod stuck relaunching under chaos
			// cannot stall the whole upgrade.
			if up.waitUntil == 0 {
				up.waitUntil = now + ctl.cl.Cfg.LaunchTimeout
			}
			if now < up.waitUntil {
				return
			}
		}
		up.queue = up.queue[1:]
		up.waitUntil = 0
		if in == nil || in.phase != phaseRunning {
			up.skipped++
			continue
		}
		dst := ctl.place(in, in.node)
		if dst == in.node {
			up.skipped++
			continue
		}
		in.phase = phaseMigrating
		in.deadline = now + ctl.cl.Cfg.MigrateTimeout
		in.mig = &MigrationRecord{Name: name, From: in.node, To: dst, StartAt: now}
		ctl.send(ce, in.node, command{kind: cmdMigrateOut, name: name, dst: dst})
		up.current = name
		up.migrated++
		return
	}
	up.doneAt = now
}
