package ckctl

import "fmt"

// RestartPolicy says what the controller does when a pod's main thread
// stops.
type RestartPolicy int

const (
	// RestartNever leaves the pod down however it stopped.
	RestartNever RestartPolicy = iota
	// RestartOnFailure restarts pods whose context died without the body
	// completing (a crash kill or a transient processor fault), but not
	// pods that ran to completion.
	RestartOnFailure
	// RestartAlways restarts completed pods too, from a fresh beat count.
	RestartAlways
)

// String names the policy for status output.
func (p RestartPolicy) String() string {
	switch p {
	case RestartNever:
		return "no"
	case RestartOnFailure:
		return "on-failure"
	case RestartAlways:
		return "always"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// KernelSpec declares a group of identical pods: Count application
// kernels named "<Name>-<i>", each running the named kind's workload
// under the given restart policy. It is the declarative unit of the
// orchestration plane — the controller owns making the cluster match.
type KernelSpec struct {
	// Kind selects the workload body; "beat" (a deterministic compute
	// loop counting heartbeats) is built in.
	Kind string
	// Name prefixes the instance names.
	Name string
	// Count is the desired number of instances.
	Count int
	// MPM pins every instance to one module; -1 places each instance on
	// the module with the lowest descriptor-cache load score at launch
	// time.
	MPM int
	// Restart is the per-instance restart policy.
	Restart RestartPolicy
	// Groups is the physical page-group grant per instance (default 1).
	Groups int
	// MainPrio is the main thread's priority (default 20).
	MainPrio int
	// Beats bounds the workload: the pod completes after this many
	// heartbeats (0 = run until the horizon).
	Beats uint64
	// BeatUS is the virtual time charged per heartbeat in microseconds
	// (default 200).
	BeatUS float64
}

// Spec is the cluster's desired state.
type Spec struct {
	Kernels []KernelSpec
}

// normalize applies defaults and validates; instances counts the total.
func (sp *Spec) normalize() (instances int, err error) {
	for i := range sp.Kernels {
		ks := &sp.Kernels[i]
		if ks.Kind == "" {
			ks.Kind = "beat"
		}
		if ks.Kind != "beat" {
			return 0, fmt.Errorf("ckctl: unknown pod kind %q", ks.Kind)
		}
		if ks.Name == "" {
			return 0, fmt.Errorf("ckctl: kernel spec %d has no name", i)
		}
		if ks.Count <= 0 {
			ks.Count = 1
		}
		if ks.Groups <= 0 {
			ks.Groups = 1
		}
		if ks.MainPrio <= 0 {
			ks.MainPrio = 20
		}
		if ks.BeatUS <= 0 {
			ks.BeatUS = 200
		}
		instances += ks.Count
	}
	return instances, nil
}

// Pod is the host-side workload state of one instance. It is owned by
// the engine shard the pod currently runs on: the body mutates it, the
// local agent reads it, and a migration hands it to the target shard
// inside the same epoch-barrier message that carries the kernel's
// backing records.
type Pod struct {
	Name string
	// Beats counts completed heartbeats. It survives migration and
	// crash revival — the backing state of the caching model — so a
	// moved or revived pod resumes its count rather than restarting it.
	Beats uint64
	// Done marks a bounded pod that reached its beat target.
	Done bool
	// AtHorizon marks an unbounded pod that ran out the scenario clock
	// (a normal end, not a failure).
	AtHorizon bool
}
