package ck

import (
	"vpp/internal/hw"
)

// newThreadObj allocates and initializes a thread descriptor.
func (k *Kernel) newThreadObj(e *hw.Exec, owner *KernelObj, so *SpaceObj, st ThreadState) (*ThreadObj, error) {
	if st.Exec == nil || st.Exec.Finished() {
		return nil, ErrBadArgument
	}
	slot, gen, ok := k.threads.alloc()
	if !ok {
		if err := k.evictThread(e); err != nil {
			return nil, err
		}
		slot, gen, ok = k.threads.alloc()
		if !ok {
			return nil, ErrAllLocked
		}
	}
	to := &ThreadObj{
		id:         makeID(ObjThread, gen, int(slot)),
		slot:       slot,
		owner:      owner,
		space:      so,
		exec:       st.Exec,
		prio:       st.Priority,
		state:      threadSuspended,
		sigRecords: make(map[int32]struct{}),
	}
	to.exec.Regs = st.Regs
	to.exec.User = to
	k.threads.set(slot, to)
	so.threads[slot] = to
	owner.threads[slot] = to
	k.Stats.ThreadLoads++
	return to, nil
}

// LoadThread loads a thread with the given register state into the given
// address space, making it a candidate for execution (paper §2.3). The
// space identifier must be valid; if the space was written back
// concurrently, the load fails with ErrInvalidID and the application
// kernel reloads the space and retries.
func (k *Kernel) LoadThread(e *hw.Exec, sid ObjID, st ThreadState, locked bool) (ObjID, error) {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return 0, err
	}
	so, ok := k.lookupSpace(sid)
	if !ok {
		return 0, ErrInvalidID
	}
	if so.owner != caller && so != caller.space {
		return 0, ErrNotOwner
	}
	if st.Priority < 0 || st.Priority >= k.Cfg.NumPriorities {
		return 0, ErrBadPriority
	}
	if caller.attrs.MaxPrio > 0 && st.Priority > caller.attrs.MaxPrio {
		return 0, ErrBadPriority
	}
	e.ChargeNoIntr(costThreadLoad)
	if locked && !k.chargeLock(caller, lockQuotaThread) {
		return 0, ErrLockQuota
	}
	to, err := k.newThreadObj(e, caller, so, st)
	if err != nil {
		if locked {
			k.releaseLock(caller, lockQuotaThread)
		}
		return 0, err
	}
	if locked {
		k.threads.setLocked(to.slot, true)
	}
	k.sched.makeReady(to, e.Now())
	return to.id, nil
}

// UnloadThread explicitly unloads a thread, returning its saved state so
// the application kernel can store it and reload later (for example when
// the thread sleeps on a long-term event, is swapped out, or hits a
// debugger breakpoint — paper §2.3). Unloading the calling thread
// succeeds, and the call returns only after the thread is reloaded and
// redispatched.
func (k *Kernel) UnloadThread(e *hw.Exec, id ObjID) (ThreadState, error) {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return ThreadState{}, err
	}
	to, ok := k.lookupThread(id)
	if !ok {
		return ThreadState{}, ErrInvalidID
	}
	if to.owner != caller && caller != k.first {
		return ThreadState{}, ErrNotOwner
	}
	e.ChargeNoIntr(costThreadUnload)
	st := ThreadState{Regs: to.exec.Regs, Priority: to.prio, Exec: to.exec}
	self := to.exec == e
	if !k.reclaimThread(e, to, false, false) {
		// The thread exited while being forced off its processor; its
		// descriptor was reclaimed without writeback, so the identifier
		// has failed — same as unloading after the exit.
		return ThreadState{}, ErrInvalidID
	}
	if self {
		// The calling thread no longer exists in the Cache Kernel:
		// release the processor and wait to be reloaded.
		k.sched.blockUnloaded(e)
	}
	return st, nil
}

// evictThread writes back the least recently loaded reclaimable thread.
// A locked thread is protected only while its space and owning kernel
// are locked too. The calling thread itself is never the victim.
func (k *Kernel) evictThread(e *hw.Exec) error {
	self := k.threadOf(e)
	slot, ok := k.threads.victim(func(idx int32) bool {
		to := k.threads.at(idx)
		if to == self {
			return false
		}
		if !k.threads.lockedSlot(idx) {
			return true
		}
		return !(k.spaces.lockedSlot(to.space.slot) && k.kernels.lockedSlot(to.owner.slot))
	})
	if !ok {
		return ErrAllLocked
	}
	to := k.threads.at(slot)
	k.reclaimThread(e, to, true, false)
	return nil
}

// reclaimThread unloads a thread descriptor: forces it off its processor
// if running, removes it from scheduler queues, unloads the signal
// mappings that depend on it (Figure 6), and optionally writes its state
// back to the owning kernel. It reports whether it reclaimed the
// descriptor: reclamation paths yield (forcing a victim off its
// processor charges cycles), and during a yield the victim's body can
// return — its Exited cleanup reclaims the descriptor first, and this
// call must not release the slot a second time.
func (k *Kernel) reclaimThread(e *hw.Exec, to *ThreadObj, writeback, dying bool) bool {
	if !k.threads.valid(to.slot, to.id.gen()) {
		// Gone already: the thread exited (or went through a dependency
		// reclaim) during a yield between the caller's lookup and now.
		return false
	}
	switch to.state {
	case threadRunning:
		if to.exec == e || dying {
			// Unloading self (or cleanup of a finished body): record
			// accounting only; the caller parks or exits afterwards.
			k.sched.undispatch(to)
			to.state = threadSuspended
		} else if e != nil {
			k.sched.forceOffCPU(e, to)
			if !k.threads.valid(to.slot, to.id.gen()) {
				return false
			}
		}
	case threadReady:
		k.sched.removeReady(to)
		to.state = threadSuspended
	}
	// Unload signal mappings naming this thread; each flush enforces
	// multi-mapping consistency on its message page.
	for len(to.sigRecords) > 0 {
		var sigIdx int32 = -1
		//ckvet:allow detmap min-reduction over the keys is iteration-order independent
		for idx := range to.sigRecords {
			if sigIdx < 0 || idx < sigIdx {
				sigIdx = idx
			}
		}
		pvIdx := int32(k.pm.rec(sigIdx).key)
		k.unloadMappingRecord(e, pvIdx, true, false)
	}
	// The mapping flushes charge consistency work — more yield points; a
	// concurrent reclaim (eviction racing an unload) may have released
	// the slot while this one waited.
	if !k.threads.valid(to.slot, to.id.gen()) {
		return false
	}
	if k.threads.lockedSlot(to.slot) {
		k.releaseLock(to.owner, lockQuotaThread)
	}
	delete(to.space.threads, to.slot)
	delete(to.owner.threads, to.slot)
	id := to.id
	owner := to.owner
	st := ThreadState{Regs: to.exec.Regs, Priority: to.prio, Exec: to.exec}
	k.threads.release(to.slot)
	k.Stats.ThreadUnloads++
	if writeback {
		k.Stats.ThreadWritebacks++
		if e != nil {
			e.ChargeNoIntr(costThreadWriteback)
		}
		if owner.attrs.Wb != nil && !k.corruptWriteback(e, "thread", id) {
			owner.attrs.Wb.ThreadWriteback(id, st)
		}
	}
	return true
}

// SetThreadPriority is the specialized modify operation allowing a
// scheduler thread to re-prioritize a loaded thread without the
// unload/modify/reload cycle (paper §2.3).
func (k *Kernel) SetThreadPriority(e *hw.Exec, id ObjID, prio int) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	to, ok := k.lookupThread(id)
	if !ok {
		return ErrInvalidID
	}
	if to.owner != caller && caller != k.first {
		return ErrNotOwner
	}
	if prio < 0 || prio >= k.Cfg.NumPriorities {
		return ErrBadPriority
	}
	if caller.attrs.MaxPrio > 0 && prio > caller.attrs.MaxPrio {
		return ErrBadPriority
	}
	e.ChargeNoIntr(costDescInit)
	if to.state == threadReady {
		k.sched.removeReady(to)
		to.prio = prio
		to.state = threadSuspended
		k.sched.makeReady(to, e.Now())
		return nil
	}
	to.prio = prio
	if to.state == threadRunning && to.cpu != nil && to.exec != e {
		// Its CPU re-evaluates against the ready queues.
		to.cpu.Post(pendingResched)
	}
	return nil
}

// BlockThread forces a loaded thread to stop executing until
// ResumeThread (the paper's "force the thread to block" control).
func (k *Kernel) BlockThread(e *hw.Exec, id ObjID) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	to, ok := k.lookupThread(id)
	if !ok {
		return ErrInvalidID
	}
	if to.owner != caller && caller != k.first {
		return ErrNotOwner
	}
	if to.exec == e {
		return ErrBadArgument // use WaitSignal to block voluntarily
	}
	switch to.state {
	case threadRunning:
		k.sched.forceOffCPU(e, to)
	case threadReady:
		k.sched.removeReady(to)
		to.state = threadSuspended
	case threadWaiting:
		to.waitingSignal = false
		to.state = threadSuspended
	}
	return nil
}

// ResumeThread makes a blocked thread runnable again.
func (k *Kernel) ResumeThread(e *hw.Exec, id ObjID) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	to, ok := k.lookupThread(id)
	if !ok {
		return ErrInvalidID
	}
	if to.owner != caller && caller != k.first {
		return ErrNotOwner
	}
	if to.state == threadSuspended {
		k.sched.makeReady(to, e.Now())
	}
	return nil
}

// WaitSignal blocks the calling thread until an address-valued signal
// arrives, returning the signalled address (paper §2.2). Queued signals
// are drained before blocking.
func (k *Kernel) WaitSignal(e *hw.Exec) (uint32, error) {
	prev := k.enter(e)
	defer k.exit(e, prev)
	to := k.threadOf(e)
	if to == nil {
		return 0, ErrBadArgument
	}
	if _, ok := k.threads.get(to.slot, to.id.gen()); !ok {
		return 0, ErrInvalidID
	}
	// Charge the block path up front: after the queue re-check below
	// there must be no yield points until the thread parks, or a
	// concurrent delivery could dispatch it before it sleeps.
	e.ChargeNoIntr(hw.CostContextSave + hw.CostSchedule)
	if len(to.sigQueue) > 0 {
		v := to.sigQueue[0]
		copy(to.sigQueue, to.sigQueue[1:])
		to.sigQueue = to.sigQueue[:len(to.sigQueue)-1]
		return v, nil
	}
	to.waitingSignal = true
	to.state = threadWaiting
	k.sched.block(e, to)
	// Resumed by signal delivery.
	to.sigPending = false
	return to.sigValue, nil
}

// SetAlarm arranges for the clock device to deliver an address-valued
// signal with the given value to the thread at virtual time at. The
// clock fits the memory-based messaging model (paper §2.2): an alarm is
// a signal from the clock's device region. If the thread is unloaded by
// the time the alarm fires, the signal is dropped (its mappings went
// with it).
func (k *Kernel) SetAlarm(e *hw.Exec, id ObjID, at uint64, value uint32) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	to, ok := k.lookupThread(id)
	if !ok {
		return ErrInvalidID
	}
	if to.owner != caller && caller != k.first {
		return ErrNotOwner
	}
	slot, gen := to.slot, to.id.gen()
	e.ChargeNoIntr(costDescInit)
	k.MPM.Shard.ScheduleAt(at, func() {
		if to2, ok := k.threads.get(slot, gen); ok {
			k.deliverSignal(to2, value, at, nil)
		}
	})
	return nil
}

// PostSignal delivers an address-valued signal directly to a thread —
// used by application kernels to redirect signals to reloaded threads
// (paper §2.3).
func (k *Kernel) PostSignal(e *hw.Exec, id ObjID, value uint32) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	to, ok := k.lookupThread(id)
	if !ok {
		return ErrInvalidID
	}
	// A thread may be signalled by its owning kernel, the first kernel,
	// or any thread of the same kernel community (sharing the kernel's
	// space or a space that kernel owns) — the same visibility LoadThread
	// grants.
	if to.owner != caller && caller != k.first &&
		to.space != caller.space && to.space.owner != caller {
		return ErrNotOwner
	}
	k.deliverSignal(to, value, e.Now(), e)
	return nil
}
