package ck

import (
	"errors"
	"reflect"
	"testing"

	"vpp/internal/hw"
)

// captureQuiescent runs the env's machine to quiescence and captures the
// kernel's structural state.
func captureQuiescent(t *testing.T, env *testEnv) *State {
	t.Helper()
	env.run()
	st, err := env.k.CaptureState()
	if err != nil {
		t.Fatalf("CaptureState: %v", err)
	}
	return st
}

// TestStateRoundTrip drives table-selected workloads to a quiescent
// point, captures the structural state, restores it into a fresh
// instance on a fresh machine, and requires the restored instance to
// (a) pass the full invariant check and (b) re-capture to a deeply
// equal State — slot generations, LRU order, free-list order, lock
// bits, pmap records, reverse TLBs, statistics, everything.
func TestStateRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		body func(env *testEnv, e *hw.Exec)
	}{
		{"boot_only", func(env *testEnv, e *hw.Exec) {}},
		{"spaces_and_mappings", func(env *testEnv, e *hw.Exec) {
			sid := env.mustLoadSpace(e, false)
			for i := 0; i < 6; i++ {
				env.mustMap(e, sid, MappingSpec{
					VA: 0x4000_0000 + uint32(i)*hw.PageSize, PFN: env.frame(),
					Writable: i%2 == 0, Cachable: true,
				})
			}
			// Unload from the middle so the pmap free stack leaves its
			// canonical order — the FreeTail path of the capture.
			if _, err := env.k.UnloadMapping(e, sid, 0x4000_0000+2*hw.PageSize); err != nil {
				env.t.Fatalf("UnloadMapping: %v", err)
			}
		}},
		{"locked_descriptors", func(env *testEnv, e *hw.Exec) {
			locked := env.mustLoadSpace(e, true)
			env.mustMap(e, locked, MappingSpec{
				VA: 0x5000_0000, PFN: env.frame(),
				Writable: true, Cachable: true, Locked: true,
			})
			env.mustLoadSpace(e, false)
		}},
		{"retired_threads", func(env *testEnv, e *hw.Exec) {
			sid := env.mustLoadSpace(e, false)
			env.mustMap(e, sid, MappingSpec{VA: 0x6000_0000, PFN: env.frame(), Writable: true, Cachable: true})
			// Threads that run and exit: gone from the caches by
			// quiescence, but their slot generations (which mint every
			// future thread identifier) must survive the round trip.
			for i := 0; i < 4; i++ {
				env.spawnThread(e, sid, "w", 20, func(ue *hw.Exec) {
					ue.Store32(0x6000_0000, ue.Load32(0x6000_0000)+1)
					ue.Charge(500)
				})
			}
			e.Charge(2_000)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := newEnv(t, Config{}, tc.body)
			st := captureQuiescent(t, env)

			m2 := hw.NewMachine(hw.DefaultConfig())
			k2, err := New(m2.MPMs[0], st.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			bind := func(name string) KernelAttrs {
				return KernelAttrs{Wb: env.wb, Fault: env.identityFault(k2)}
			}
			if err := k2.RestoreState(st, bind); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			// Re-capture before the invariant walk: CheckInvariants does
			// descriptor lookups of its own, which count as cache hits.
			st2, err := k2.CaptureState()
			if err != nil {
				t.Fatalf("re-capture: %v", err)
			}
			if err := k2.CheckInvariants(); err != nil {
				t.Fatalf("restored instance violates invariants: %v", err)
			}
			if !reflect.DeepEqual(st, st2) {
				t.Fatalf("state did not survive the round trip:\n first: %+v\nsecond: %+v", st, st2)
			}
			// The descriptor-level view agrees too (lock bits included).
			if s1, s2 := env.k.Snapshot(), k2.Snapshot(); !reflect.DeepEqual(s1, s2) {
				t.Fatalf("descriptor snapshots differ:\n first: %+v\nsecond: %+v", s1, s2)
			}
		})
	}
}

// TestRestoreStateRejectsNonFresh pins the restore precondition: only a
// never-booted instance may be overwritten.
func TestRestoreStateRejectsNonFresh(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {})
	st := captureQuiescent(t, env)
	if err := env.k.RestoreState(st, nil); err == nil {
		t.Fatal("RestoreState on a booted instance succeeded")
	}
}

// TestCaptureStateBusy pins the ErrSnapshotBusy refusals: a structural
// capture must be impossible while any call is parked mid-mutation or
// any thread descriptor (i.e. live coroutine) is loaded.
func TestCaptureStateBusy(t *testing.T) {
	var fromBody error
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		// The boot thread itself is a loaded descriptor here.
		_, fromBody = env.k.CaptureState()
	})
	env.run()
	if !errors.Is(fromBody, ErrSnapshotBusy) {
		t.Fatalf("capture with a loaded thread returned %v, want ErrSnapshotBusy", fromBody)
	}

	// In-flight call refusal, checked at the quiescent point where only
	// the counter distinguishes it.
	env.k.inCalls = 1
	if _, err := env.k.CaptureState(); !errors.Is(err, ErrSnapshotBusy) {
		t.Fatalf("capture with an in-flight call returned %v, want ErrSnapshotBusy", err)
	}
	env.k.inCalls = 0
	if _, err := env.k.CaptureState(); err != nil {
		t.Fatalf("capture at quiescence: %v", err)
	}
}
