package ck

import "vpp/internal/hw"

// Cache Kernel operation cost constants, in cycles (25 cycles = 1 µs).
//
// Each constant covers the fixed-path work of an operation (argument
// validation, descriptor initialization, queue manipulation) that the
// simulation does not charge structurally; variable work — page-table
// walks, hash probes, dependent-object writebacks — is charged where it
// happens, so operation times degrade realistically under load. The
// values are calibrated so that the unloaded-system times land on the
// paper's Table 2 and Section 5.3 (see EXPERIMENTS.md).
const (
	// Object load fixed costs (Table 2 "load, no writeback" column).
	costMappingLoad = 840
	costThreadLoad  = 2630
	costSpaceLoad   = 2330
	costKernelLoad  = 5900

	// Explicit unload fixed costs (Table 2 "unload" column).
	costMappingUnload = 3775
	costThreadUnload  = 4950
	costSpaceUnload   = 3400
	costKernelUnload  = 1800

	// Writeback transfer to the owning application kernel over the
	// writeback channel (adds to a load when the cache is full; Table 2
	// "load, writeback" column). Thread writeback moves the largest
	// descriptor plus the saved register context.
	costMappingWriteback = 2350
	costThreadWriteback  = 9400
	costSpaceWriteback   = 3200
	costKernelWriteback  = 1175

	// Fault and trap forwarding (Section 5.3).
	costFaultTransfer       = 785 // steps 1-2 of Figure 2: into the app kernel handler
	costFaultResume         = 420 // separate resume-from-exception call
	costMappingLoadOptExtra = 550 // load-and-resume beyond the plain load
	costTrapForward         = 430 // forward trap to app kernel (getpid path, one way)
	costTrapReturn          = 282

	// Memory-based messaging (Section 5.3: 44 µs deliver + 27 µs return).
	costSignalGenerate = 260 // signal-on-write detection and setup
	costSignalFast     = 420 // reverse-TLB hit delivery to active thread
	costSignalTwoStage = 560 // per-receiver two-stage pmap lookup path
	costSignalReturn   = 675 // return from signal handler
	costSignalEnqueue  = 120 // queueing while receiver is in its handler

	// Structural unit charges.
	costHashProbe   = 12 // one dependency-record chain step
	costDescInit    = 40 // descriptor field initialization
	costAccessCheck = 30 // memory access array check per mapping load
	costScanStep    = 2  // replacement clock-hand step
)

// µs helper for tests and reports.
func cyclesToMicros(c uint64) float64 { return hw.MicrosFromCycles(c) }
