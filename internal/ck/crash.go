package ck

import (
	"fmt"

	"vpp/internal/hw"
)

// Crash models a Cache Kernel failure followed by an immediate reboot
// of the MPM — the fault-containment event the caching model is built
// around (paper §3: each MPM runs its own Cache Kernel instance, and
// everything the instance held is a cache of state the application
// kernels can regenerate). It runs in engine context; internal/chaos
// schedules it at a fixed virtual time. The reboot is instantaneous in
// virtual time — detection and reload latency, which the recovery
// experiment measures, dominate a real reset by orders of magnitude.
//
// After Crash the instance is as freshly initialized as New left it,
// with two deliberate exceptions: descriptor-slot generations and the
// pmap version are preserved (monotonic), so no identifier or cached
// reverse-TLB entry handed out before the crash can ever validate
// against an object loaded after it.
func (k *Kernel) Crash() {
	k.Stats.Crashes++
	k.Epoch++
	if k.Trace != nil {
		k.Trace("crash", k.MPM.Shard.Now(), fmt.Sprintf("epoch %d", k.Epoch))
	}
	// The reset kills whatever is executing on the MPM's CPUs: the
	// register files are gone, so those contexts unwind at their next
	// charge point and can only be recreated, never resumed. Parked
	// contexts (blocked or ready threads) keep their machine state —
	// their descriptors were the cache, and reloading a descriptor
	// resumes them, exactly like the swap/sleep reload paths.
	for _, cpu := range k.MPM.CPUs {
		if cpu.Cur != nil {
			cpu.Cur.Kill()
		}
		cpu.Pending = 0
	}
	// Release every loaded space's translation tree back to local RAM
	// and flush its TLB footprint; the descriptor caches themselves are
	// reused in place.
	k.spaces.forEach(func(_ int32, so *SpaceObj) bool {
		so.hw.Table.Release()
		k.MPM.FlushTLBSpace(so.hw.ASID)
		return true
	})
	k.kernels.wipe()
	k.spaces.wipe()
	k.threads.wipe()
	k.pm = newPMap(k.Cfg.MappingSlots, k.Cfg.PMapBuckets)
	k.spaceByHW = make(map[*hw.Space]*SpaceObj)
	k.kernelBySpace = make(map[*SpaceObj]*KernelObj)
	k.first = nil
	k.sched = newScheduler(k)
	for i := range k.rtlbs {
		k.rtlbs[i] = newRTLB(k.Cfg.RTLBEntries)
	}
	k.bumpVersion()
}

// corruptWriteback asks the installed fault injector whether this
// writeback's transfer to the owning kernel is corrupted. Returning
// true means the state is lost in flight: the descriptor reclaim has
// already completed in full — no dependency record survives it — but
// the owner keeps a stale record of the object and recovers through
// the ordinary ErrInvalidID-and-reload protocol.
func (k *Kernel) corruptWriteback(e *hw.Exec, kind string, id ObjID) bool {
	if k.WritebackFault == nil || !k.WritebackFault(kind, id) {
		return false
	}
	k.Stats.WritebacksCorrupted++
	k.trace(e, "chaos-corrupt-writeback", fmt.Sprintf("%s %v", kind, id))
	return true
}
