//go:build cksan

package ck

import (
	"fmt"

	"vpp/internal/hw"
)

// sanCheckAccess verifies, on every entry into the Cache Kernel's
// object-cache funnel, that the trapping execution context is co-sharded
// with the kernel whose descriptor caches it is about to mutate. A
// Cache Kernel serves exactly its own MPM group; an execution from a
// foreign shard reaching a kernel's caches means shard-owned state is
// being mutated from outside the shard's engine (DESIGN.md §11).
func (k *Kernel) sanCheckAccess(e *hw.Exec, op string) {
	if e == nil || e.MPM == nil || k.MPM == nil || e.MPM.Shard == k.MPM.Shard {
		return
	}
	panic(fmt.Sprintf("cksan: t=%d: %s by exec %q (MPM %d, shard %d) against the cache kernel of MPM %d (shard %d)",
		k.MPM.Shard.Now(), op, e.Name, e.MPM.ID, e.MPM.Shard.Shard(), k.MPM.ID, k.MPM.Shard.Shard()))
}
