package ck

import (
	"fmt"

	"vpp/internal/hw"
	"vpp/internal/pagetable"
)

// Page mapping operations (paper §2.1-2.2, §4.1). A loaded mapping is
// the virtual-to-physical entry in the space's page tables plus a
// 16-byte physical-to-virtual dependency record in the physical memory
// map, with optional signal and copy-on-write records attached. Mappings
// are identified by (address space, virtual address) — not by object
// identifiers — to keep the dominant descriptor small.

// LoadMapping loads a page mapping into an address space. The caller's
// memory access array must grant the physical page; a write mapping
// requires write rights. Loading may displace another mapping (written
// back to its owner) when the descriptor pool is full.
func (k *Kernel) LoadMapping(e *hw.Exec, sid ObjID, spec MappingSpec) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	return k.loadMapping(e, sid, spec)
}

func (k *Kernel) loadMapping(e *hw.Exec, sid ObjID, spec MappingSpec) error {
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	so, ok := k.lookupSpace(sid)
	if !ok {
		return ErrInvalidID
	}
	if so.owner != caller && so != caller.space && caller != k.first {
		return ErrNotOwner
	}
	if spec.VA%hw.PageSize != 0 {
		return ErrBadArgument
	}
	if !k.checkMappingAccess(e, caller, spec.PFN, spec.Writable) {
		return ErrAccessDenied
	}
	var sigThread *ThreadObj
	if spec.SignalThread != 0 {
		sigThread, ok = k.lookupThread(spec.SignalThread)
		if !ok {
			return ErrInvalidID
		}
	}
	e.ChargeNoIntr(costMappingLoad)
	if spec.Locked && !k.chargeLock(caller, lockQuotaMapping) {
		return ErrLockQuota
	}

	// Replace any existing mapping at this virtual address.
	if _, exists := so.hw.Table.Lookup(spec.VA); exists {
		k.unloadMappingVA(e, so, spec.VA, false)
	}

	// Reserve dependency records, reclaiming victims while short. An
	// evicted victim's slot is handed directly to this reservation —
	// never through the free pool — so concurrent loads on other
	// processors cannot starve this one (the non-blocking reservation
	// discipline of paper §4.2).
	need := 1
	if sigThread != nil {
		need++
	}
	if spec.CopyOnWriteFrom != 0 {
		need++
	}
	var reserved []int32
	releaseReserved := func() {
		for _, idx := range reserved {
			k.pm.releaseSlot(idx)
		}
		if spec.Locked {
			k.releaseLock(caller, lockQuotaMapping)
		}
	}
	for len(reserved) < need {
		if idx, ok := k.pm.takeFree(); ok {
			reserved = append(reserved, idx)
			continue
		}
		idx, err := k.evictMapping(e, true)
		if err != nil {
			releaseReserved()
			return err
		}
		reserved = append(reserved, idx)
	}

	// Build the page table entry; local RAM pressure from page tables is
	// also relieved by evicting mappings.
	flags := pagetable.PTEValid
	if spec.Writable {
		flags |= pagetable.PTEWrite
	}
	if spec.Cachable {
		flags |= pagetable.PTECachable
	}
	if spec.Message {
		flags |= pagetable.PTEMessage
	}
	pte := pagetable.MakePTE(spec.PFN, flags)
	for {
		err := so.hw.Table.Insert(spec.VA, pte)
		if err == nil {
			break
		}
		if err == pagetable.ErrNoMem {
			if _, evictErr := k.evictMapping(e, false); evictErr != nil {
				releaseReserved()
				return ErrNoMemory
			}
			continue
		}
		releaseReserved()
		return ErrBadArgument
	}
	e.ChargeNoIntr(uint64(so.hw.Table.WalkDepth(spec.VA)) * hw.CostMemHit)

	pvIdx := reserved[0]
	reserved = reserved[1:]
	k.pm.insertAt(pvIdx, depPhysVirt, spec.PFN, spec.VA, so.slot)
	e.ChargeNoIntr(costHashProbe + costDescInit)
	if spec.Locked {
		k.pm.rec(pvIdx).setLocked(true)
	}
	if sigThread != nil {
		sigIdx := reserved[0]
		reserved = reserved[1:]
		k.pm.insertAt(sigIdx, depSignal, uint32(pvIdx), uint32(sigThread.slot), so.slot)
		sigThread.sigRecords[sigIdx] = struct{}{}
		e.ChargeNoIntr(costHashProbe + costDescInit)
	}
	if spec.CopyOnWriteFrom != 0 {
		cowIdx := reserved[0]
		reserved = reserved[1:]
		k.pm.insertAt(cowIdx, depCopyOnWrite, uint32(pvIdx), spec.CopyOnWriteFrom, so.slot)
		e.ChargeNoIntr(costHashProbe + costDescInit)
	}
	so.mappings++
	k.bumpVersion()
	k.Stats.MappingLoads++
	return nil
}

// UnloadMapping explicitly unloads the mapping at (space, va), returning
// its current state including the hardware referenced and modified bits —
// how an application kernel reclaims a page frame (paper §2.1).
func (k *Kernel) UnloadMapping(e *hw.Exec, sid ObjID, va uint32) (MappingState, error) {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return MappingState{}, err
	}
	so, ok := k.lookupSpace(sid)
	if !ok {
		return MappingState{}, ErrInvalidID
	}
	if so.owner != caller && so != caller.space {
		return MappingState{}, ErrNotOwner
	}
	if _, mapped := so.hw.Table.Lookup(va); !mapped {
		return MappingState{}, ErrInvalidID
	}
	e.ChargeNoIntr(costMappingUnload)
	st := k.unloadMappingVA(e, so, va, false)
	return st, nil
}

// UnloadMappingRange unloads every mapping in [va, va+len), returning
// the states. Used when unmapping regions.
func (k *Kernel) UnloadMappingRange(e *hw.Exec, sid ObjID, va, length uint32) ([]MappingState, error) {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return nil, err
	}
	so, ok := k.lookupSpace(sid)
	if !ok {
		return nil, ErrInvalidID
	}
	if so.owner != caller && so != caller.space {
		return nil, ErrNotOwner
	}
	var out []MappingState
	for off := uint32(0); off < length; off += hw.PageSize {
		if _, mapped := so.hw.Table.Lookup(va + off); !mapped {
			continue
		}
		e.ChargeNoIntr(costMappingUnload / 4)
		out = append(out, k.unloadMappingVA(e, so, va+off, false))
	}
	return out, nil
}

// unloadMappingVA removes the mapping at (so, va). With writeback set the
// state is pushed to the owner's writeback channel; otherwise it is only
// returned.
func (k *Kernel) unloadMappingVA(e *hw.Exec, so *SpaceObj, va uint32, writeback bool) MappingState {
	pte, ok := so.hw.Table.Lookup(va)
	if !ok {
		return MappingState{}
	}
	pvIdx := int32(-1)
	probes := k.pm.findEach(depPhysVirt, pte.PFN(), func(idx int32, r *depRecord) bool {
		if r.dep == va && r.owner() == so.slot {
			pvIdx = idx
			return false
		}
		return true
	})
	if e != nil {
		e.ChargeNoIntr(uint64(probes) * costHashProbe)
	}
	if pvIdx < 0 {
		panic(fmt.Sprintf("ck: mapping (%v, %#x) has no dependency record", so.id, va))
	}
	return k.unloadMappingRecord(e, pvIdx, writeback, false)
}

// unloadMappingRecord removes the physical-to-virtual record pvIdx, its
// signal and copy-on-write records, the page table entry and TLB
// entries. Removing a signal mapping triggers multi-mapping consistency:
// all writable mappings of the page are flushed too (paper §4.2).
// With keepSlot the victim's record slot is kept reserved for the caller
// instead of returning to the free pool.
func (k *Kernel) unloadMappingRecord(e *hw.Exec, pvIdx int32, writeback, keepSlot bool) MappingState {
	r := k.pm.rec(pvIdx)
	so := k.spaceBySlot(r.owner())
	va := r.dep
	pfn := r.key

	pte, _ := so.hw.Table.Remove(va)
	k.MPM.FlushTLBPage(so.hw.ASID, va>>hw.PageShift)
	if e != nil {
		e.ChargeNoIntr(hw.CostMemHit * 3)
	}

	st := MappingState{
		Space:      so.id,
		VA:         va,
		PFN:        pfn,
		Referenced: pte&pagetable.PTEReferenced != 0,
		Modified:   pte&pagetable.PTEModified != 0,
		Writable:   pte.Writable(),
		Message:    pte.Message(),
	}

	// Detach dependent records.
	hadSignal := false
	var sigIdxs []int32
	probes := k.pm.findEach(depSignal, uint32(pvIdx), func(idx int32, rec *depRecord) bool {
		sigIdxs = append(sigIdxs, idx)
		return true
	})
	for _, idx := range sigIdxs {
		rec := k.pm.rec(idx)
		if to, ok := k.threads.peek(int32(rec.dep)); ok {
			delete(to.sigRecords, idx)
			st.SignalThread = to.id
		}
		probes += k.pm.remove(idx)
		hadSignal = true
	}
	var cowIdxs []int32
	probes += k.pm.findEach(depCopyOnWrite, uint32(pvIdx), func(idx int32, rec *depRecord) bool {
		cowIdxs = append(cowIdxs, idx)
		return true
	})
	for _, idx := range cowIdxs {
		st.CopyOnWriteFrom = k.pm.rec(idx).dep
		probes += k.pm.remove(idx)
	}
	if keepSlot {
		probes += k.pm.removeKeep(pvIdx)
	} else {
		probes += k.pm.remove(pvIdx)
	}
	if e != nil {
		e.ChargeNoIntr(uint64(probes) * costHashProbe)
	}
	so.mappings--
	k.bumpVersion()
	k.Stats.MappingUnloads++

	if writeback {
		k.Stats.MappingWritebacks++
		if e != nil {
			e.ChargeNoIntr(costMappingWriteback)
		}
		if so.owner.attrs.Wb != nil && !k.corruptWriteback(e, "mapping", so.id) {
			so.owner.attrs.Wb.MappingWriteback(st)
		}
	}

	// Multi-mapping consistency: flushing any signal mapping for a page
	// flushes all writable mappings of that page, so a sender can never
	// signal without its receivers' mappings being loaded.
	if hadSignal {
		var flush []int32
		k.pm.findEach(depPhysVirt, pfn, func(idx int32, rec *depRecord) bool {
			oso := k.spaceBySlot(rec.owner())
			if p, ok := oso.hw.Table.Lookup(rec.dep); ok && p.Writable() {
				flush = append(flush, idx)
			}
			return true
		})
		for _, idx := range flush {
			if k.pm.rec(idx).kind() == depPhysVirt { // still live
				k.unloadMappingRecord(e, idx, true, false)
			}
		}
	}
	return st
}

// evictMapping reclaims one mapping by clock scan, writing it back to
// its owner. A locked mapping is protected only while its space, kernel
// and signal thread (if any) are all locked (paper §4.2). With keepSlot
// the victim's descriptor slot is returned, reserved for the caller.
func (k *Kernel) evictMapping(e *hw.Exec, keepSlot bool) (int32, error) {
	idx, scanned := k.pm.victim(func(i int32, r *depRecord) bool {
		if !r.locked() {
			return true
		}
		so := k.spaceBySlot(r.owner())
		if !k.spaces.lockedSlot(so.slot) || !k.kernels.lockedSlot(so.owner.slot) {
			return true
		}
		sigLocked := true
		k.pm.findEach(depSignal, uint32(i), func(_ int32, rec *depRecord) bool {
			if !k.threads.lockedSlot(int32(rec.dep)) {
				sigLocked = false
			}
			return true
		})
		return !sigLocked
	})
	if e != nil {
		e.ChargeNoIntr(uint64(scanned) * costScanStep)
	}
	if idx < 0 {
		return -1, ErrAllLocked
	}
	k.unloadMappingRecord(e, idx, true, keepSlot)
	return idx, nil
}

// MappingInfo reports the current state of a loaded mapping without
// unloading it (diagnostic aid; the paper's Cache Kernel omits most
// query operations, so tests and tools use this rather than kernels).
func (k *Kernel) MappingInfo(sid ObjID, va uint32) (MappingState, bool) {
	so, ok := k.lookupSpace(sid)
	if !ok {
		return MappingState{}, false
	}
	pte, ok := so.hw.Table.Lookup(va)
	if !ok {
		return MappingState{}, false
	}
	return MappingState{
		Space:      sid,
		VA:         va,
		PFN:        pte.PFN(),
		Referenced: pte&pagetable.PTEReferenced != 0,
		Modified:   pte&pagetable.PTEModified != 0,
		Writable:   pte.Writable(),
		Message:    pte.Message(),
	}, true
}
