package ck

import (
	"fmt"
	"testing"

	"vpp/internal/hw"
	"vpp/internal/sim"
)

// checkInvariants verifies the structural invariants the dependency
// model (Figure 6) promises, over the whole Cache Kernel state. The
// checks themselves live in CheckInvariants (invariants.go) so that
// ckinvariants-tagged builds run them on every call exit.
func checkInvariants(t *testing.T, k *Kernel) {
	t.Helper()
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomOpSequencesPreserveInvariants drives the Cache Kernel with
// deterministic random operation mixes under a deliberately tiny cache
// geometry (constant eviction pressure) and verifies the dependency
// invariants after every operation.
func TestRandomOpSequencesPreserveInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzOnce(t, seed, 300)
		})
	}
}

func fuzzOnce(t *testing.T, seed uint64, ops int) {
	cfg := Config{
		KernelSlots: 4, SpaceSlots: 6, ThreadSlots: 10,
		MappingSlots: 48, PMapBuckets: 16,
	}
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		k := env.k
		r := sim.NewRand(seed)
		var spaces []ObjID
		var threads []ObjID
		nextVA := func() uint32 {
			return 0x2000_0000 + uint32(r.Intn(64))*hw.PageSize
		}
		for i := 0; i < ops; i++ {
			switch r.Intn(10) {
			case 0: // load space
				if sid, err := k.LoadSpace(e, r.Intn(8) == 0); err == nil {
					spaces = append(spaces, sid)
				}
			case 1: // unload a random space
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					_ = k.UnloadSpace(e, sid)
				}
			case 2, 3: // load thread into a random space
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					exec := env.m.MPMs[0].NewExec("fuzz", func(we *hw.Exec) {
						for {
							if _, err := k.WaitSignal(we); err != nil {
								return
							}
						}
					})
					if tid, err := k.LoadThread(e, sid, ThreadState{Priority: 5 + r.Intn(20), Exec: exec}, false); err == nil {
						threads = append(threads, tid)
					}
				}
			case 4: // unload a random thread
				if len(threads) > 0 {
					tid := threads[r.Intn(len(threads))]
					_, _ = k.UnloadThread(e, tid)
				}
			case 5, 6, 7: // load a mapping, sometimes with a signal thread
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					spec := MappingSpec{
						VA: nextVA(), PFN: uint32(300 + r.Intn(256)),
						Writable: r.Intn(2) == 0, Cachable: true,
						Message: r.Intn(4) == 0,
						Locked:  r.Intn(16) == 0,
					}
					if len(threads) > 0 && r.Intn(3) == 0 {
						spec.SignalThread = threads[r.Intn(len(threads))]
					}
					if r.Intn(8) == 0 {
						spec.CopyOnWriteFrom = uint32(300 + r.Intn(256))
					}
					_ = k.LoadMapping(e, sid, spec)
				}
			case 8: // unload a mapping
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					_, _ = k.UnloadMapping(e, sid, nextVA())
				}
			case 9: // signal or re-prioritize a thread
				if len(threads) > 0 {
					tid := threads[r.Intn(len(threads))]
					if r.Intn(2) == 0 {
						_ = k.PostSignal(e, tid, uint32(i))
					} else {
						_ = k.SetThreadPriority(e, tid, 1+r.Intn(30))
					}
				}
			}
			e.Charge(uint64(100 + r.Intn(2000)))
			checkInvariants(t, k)
		}
	})
	env.run()
	checkInvariants(t, env.k)
}
