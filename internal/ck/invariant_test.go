package ck

import (
	"fmt"
	"testing"

	"vpp/internal/hw"
	"vpp/internal/pagetable"
	"vpp/internal/sim"
)

// checkInvariants verifies the structural invariants the dependency
// model (Figure 6) promises, over the whole Cache Kernel state.
func checkInvariants(t *testing.T, k *Kernel) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("invariant: "+format, args...)
	}

	// Threads reference loaded spaces; containment maps agree.
	k.threads.forEach(func(idx int32, to *ThreadObj) bool {
		if to.space == nil {
			fail("thread %v has nil space", to.id)
		}
		if got, ok := k.spaces.get(to.space.slot, to.space.id.gen()); !ok || got != to.space {
			fail("thread %v references unloaded space %v", to.id, to.space.id)
		}
		if to.space.threads[to.slot] != to {
			fail("space %v does not contain its thread %v", to.space.id, to.id)
		}
		if to.owner.threads[to.slot] != to {
			fail("kernel %q does not own its thread %v", to.owner.attrs.Name, to.id)
		}
		return true
	})

	// Spaces: containment and page-table/pmap agreement.
	totalPV := 0
	k.spaces.forEach(func(idx int32, so *SpaceObj) bool {
		if _, ok := k.kernels.get(so.owner.slot, so.owner.id.gen()); !ok {
			fail("space %v owned by unloaded kernel", so.id)
		}
		n := 0
		so.hw.Table.Walk(func(va uint32, pte pagetable.PTE) bool {
			n++
			// Each PTE must have exactly one physical-to-virtual record.
			found := 0
			k.pm.findEach(depPhysVirt, pte.PFN(), func(_ int32, r *depRecord) bool {
				if r.dep == va && r.owner() == so.slot {
					found++
				}
				return true
			})
			if found != 1 {
				fail("mapping (%v, %#x) has %d dependency records", so.id, va, found)
			}
			return true
		})
		if n != so.mappings {
			fail("space %v mapping count %d != table pages %d", so.id, so.mappings, n)
		}
		totalPV += n
		return true
	})

	// Every live pmap record is consistent; totals match.
	live := 0
	for i := range k.pm.recs {
		r := &k.pm.recs[i]
		switch r.kind() {
		case depFree:
			continue
		case depPhysVirt:
			live++
			so := k.spaces.at(r.owner())
			pte, ok := so.hw.Table.Lookup(r.dep)
			if !ok || pte.PFN() != r.key {
				fail("pv record %d (va %#x) disagrees with page table", i, r.dep)
			}
		case depSignal:
			live++
			pv := k.pm.rec(int32(r.key))
			if pv.kind() != depPhysVirt {
				fail("signal record %d references non-pv record %d", i, r.key)
			}
			to := k.threads.at(int32(r.dep))
			if _, tracked := to.sigRecords[int32(i)]; !tracked {
				fail("signal record %d not tracked by its thread", i)
			}
		case depCopyOnWrite:
			live++
			if k.pm.rec(int32(r.key)).kind() != depPhysVirt {
				fail("cow record %d references non-pv record", i)
			}
		}
	}
	if live != k.pm.Live() {
		fail("pmap live count %d != scanned %d", k.pm.Live(), live)
	}
	if free := len(k.pm.free); free+live != k.pm.Capacity() {
		fail("pmap free %d + live %d != capacity %d", free, live, k.pm.Capacity())
	}

	// Ready queues hold only loaded, ready, unique threads.
	seen := map[*ThreadObj]bool{}
	for p := range k.sched.ready {
		for _, to := range k.sched.ready[p] {
			if seen[to] {
				fail("thread %v queued twice", to.id)
			}
			seen[to] = true
			if to.state != threadReady {
				fail("queued thread %v in state %d", to.id, to.state)
			}
			if got, ok := k.threads.get(to.slot, to.id.gen()); !ok || got != to {
				fail("queued thread %v is unloaded", to.id)
			}
		}
	}
}

// TestRandomOpSequencesPreserveInvariants drives the Cache Kernel with
// deterministic random operation mixes under a deliberately tiny cache
// geometry (constant eviction pressure) and verifies the dependency
// invariants after every operation.
func TestRandomOpSequencesPreserveInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzOnce(t, seed, 300)
		})
	}
}

func fuzzOnce(t *testing.T, seed uint64, ops int) {
	cfg := Config{
		KernelSlots: 4, SpaceSlots: 6, ThreadSlots: 10,
		MappingSlots: 48, PMapBuckets: 16,
	}
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		k := env.k
		r := sim.NewRand(seed)
		var spaces []ObjID
		var threads []ObjID
		nextVA := func() uint32 {
			return 0x2000_0000 + uint32(r.Intn(64))*hw.PageSize
		}
		for i := 0; i < ops; i++ {
			switch r.Intn(10) {
			case 0: // load space
				if sid, err := k.LoadSpace(e, r.Intn(8) == 0); err == nil {
					spaces = append(spaces, sid)
				}
			case 1: // unload a random space
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					_ = k.UnloadSpace(e, sid)
				}
			case 2, 3: // load thread into a random space
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					exec := env.m.MPMs[0].NewExec("fuzz", func(we *hw.Exec) {
						for {
							if _, err := k.WaitSignal(we); err != nil {
								return
							}
						}
					})
					if tid, err := k.LoadThread(e, sid, ThreadState{Priority: 5 + r.Intn(20), Exec: exec}, false); err == nil {
						threads = append(threads, tid)
					}
				}
			case 4: // unload a random thread
				if len(threads) > 0 {
					tid := threads[r.Intn(len(threads))]
					_, _ = k.UnloadThread(e, tid)
				}
			case 5, 6, 7: // load a mapping, sometimes with a signal thread
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					spec := MappingSpec{
						VA: nextVA(), PFN: uint32(300 + r.Intn(256)),
						Writable: r.Intn(2) == 0, Cachable: true,
						Message: r.Intn(4) == 0,
						Locked:  r.Intn(16) == 0,
					}
					if len(threads) > 0 && r.Intn(3) == 0 {
						spec.SignalThread = threads[r.Intn(len(threads))]
					}
					if r.Intn(8) == 0 {
						spec.CopyOnWriteFrom = uint32(300 + r.Intn(256))
					}
					_ = k.LoadMapping(e, sid, spec)
				}
			case 8: // unload a mapping
				if len(spaces) > 0 {
					sid := spaces[r.Intn(len(spaces))]
					_, _ = k.UnloadMapping(e, sid, nextVA())
				}
			case 9: // signal or re-prioritize a thread
				if len(threads) > 0 {
					tid := threads[r.Intn(len(threads))]
					if r.Intn(2) == 0 {
						_ = k.PostSignal(e, tid, uint32(i))
					} else {
						_ = k.SetThreadPriority(e, tid, 1+r.Intn(30))
					}
				}
			}
			e.Charge(uint64(100 + r.Intn(2000)))
			checkInvariants(t, k)
		}
	})
	env.run()
	checkInvariants(t, env.k)
}
