//go:build ckinvariants

package ck

// invariantsEnabled turns on full-state invariant checking at every
// Cache Kernel call exit. Build with -tags ckinvariants to enable.
const invariantsEnabled = true
