package ck

// The fork instance pool. BENCH_fork.json attributes most of a fork's
// host cost to ck.New, and inside ck.New almost all of it is newPMap:
// the mapping cache's record array is by far the largest single
// allocation a Cache Kernel makes (65536 records × 16 bytes with the
// default Config). A forked instance does not care whether its pmap was
// freshly allocated or recycled, as long as the recycled one is
// byte-identical to a fresh one — which pmap.reset guarantees. The pool
// holds pre-built (or recycled-and-reset) pmaps keyed by their
// dimensions and hands them to newKernel.
//
// The pool is host-side plumbing shared across forks that may be built
// from different goroutines, hence the mutex; nothing inside a running
// simulation ever touches it, so it cannot perturb virtual time.

import (
	//ckvet:allow shardsafe host-side fork pool shared across simulations, never touched from inside a shard
	"sync"

	"vpp/internal/hw"
)

// pmapKey identifies a pmap shape: pools only hand out maps whose
// dimensions match the requesting configuration exactly.
type pmapKey struct {
	slots, buckets int
}

// PoolStats reports what an InstancePool has done, for the fork
// experiment's report and for tests.
type PoolStats struct {
	Built    int // pmaps constructed by Fill
	Adopted  int // newKernel requests served from the pool
	Missed   int // newKernel requests that fell back to newPMap
	Recycled int // kernels whose pmap was reclaimed by Recycle
	Idle     int // pmaps currently sitting in the pool
}

// InstancePool recycles the expensive parts of a Cache Kernel instance
// across forks. It is safe for concurrent use.
type InstancePool struct {
	mu    sync.Mutex
	pmaps map[pmapKey][]*pmap
	stats PoolStats
}

// NewInstancePool returns an empty pool.
func NewInstancePool() *InstancePool {
	return &InstancePool{pmaps: make(map[pmapKey][]*pmap)}
}

// Fill pre-builds n fresh pmaps for the given configuration, paying the
// construction cost now so later forks do not.
func (p *InstancePool) Fill(cfg Config, n int) {
	cfg = cfg.withDefaults()
	key := pmapKey{cfg.MappingSlots, cfg.PMapBuckets}
	p.mu.Lock()
	defer p.mu.Unlock()
	for range n {
		p.pmaps[key] = append(p.pmaps[key], newPMap(key.slots, key.buckets))
		p.stats.Built++
	}
}

// take pops a pooled pmap with the requested dimensions, or nil when
// none is available (or the receiver itself is nil, the unpooled path).
func (p *InstancePool) take(slots, buckets int) *pmap {
	if p == nil {
		return nil
	}
	key := pmapKey{slots, buckets}
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.pmaps[key]
	if len(free) == 0 {
		p.stats.Missed++
		return nil
	}
	pm := free[len(free)-1]
	free[len(free)-1] = nil
	p.pmaps[key] = free[:len(free)-1]
	p.stats.Adopted++
	return pm
}

// Recycle reclaims a retired kernel's pmap: it is reset to the
// freshly-constructed state and returned to the pool for the next fork.
// The kernel must no longer be in use; its mapping cache is gone after
// this call.
func (p *InstancePool) Recycle(k *Kernel) {
	pm := k.pm
	if pm == nil {
		return
	}
	k.pm = nil
	pm.reset()
	key := pmapKey{len(pm.recs), len(pm.buckets)}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pmaps[key] = append(p.pmaps[key], pm)
	p.stats.Recycled++
}

// New creates a Cache Kernel as ck.New does, adopting pooled state when
// available.
func (p *InstancePool) New(mpm *hw.MPM, cfg Config) (*Kernel, error) {
	return newKernel(mpm, cfg, p)
}

// Stats returns a snapshot of the pool's counters.
func (p *InstancePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Idle = 0
	for _, free := range p.pmaps {
		s.Idle += len(free)
	}
	return s
}
