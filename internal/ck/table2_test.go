package ck

import "testing"

// TestTable2MatchesPaperShape verifies the calibrated simulation against
// the paper's Table 2 and Section 5.3 within a tolerance band, and — more
// importantly — that the orderings the paper reports hold (mapping loads
// are the cheapest, kernel loads the most expensive, writeback adds
// substantial cost, the optimized fault path beats transfer+load+resume).
func TestTable2MatchesPaperShape(t *testing.T) {
	got, err := MeasureTable2(Config{})
	if err != nil {
		t.Fatalf("measure: %v\n%s", err, got)
	}
	t.Logf("\n%s", got)
	p := PaperTable2()

	within := func(name string, got, want, tol float64) {
		t.Helper()
		if got < want*(1-tol) || got > want*(1+tol) {
			t.Errorf("%s = %.1f µs, want %.0f ±%.0f%%", name, got, want, tol*100)
		}
	}
	within("mapping load", got.MappingLoad, p.MappingLoad, 0.25)
	within("mapping load opt", got.MappingLoadOpt, p.MappingLoadOpt, 0.25)
	within("mapping load wb", got.MappingLoadWB, p.MappingLoadWB, 0.25)
	within("mapping load opt wb", got.MappingLoadOptWB, p.MappingLoadOptWB, 0.25)
	within("mapping unload", got.MappingUnload, p.MappingUnload, 0.25)
	within("thread load", got.ThreadLoad, p.ThreadLoad, 0.25)
	within("thread load wb", got.ThreadLoadWB, p.ThreadLoadWB, 0.25)
	within("thread unload", got.ThreadUnload, p.ThreadUnload, 0.25)
	within("space load", got.SpaceLoad, p.SpaceLoad, 0.25)
	within("space load wb", got.SpaceLoadWB, p.SpaceLoadWB, 0.25)
	within("space unload", got.SpaceUnload, p.SpaceUnload, 0.25)
	within("kernel load", got.KernelLoad, p.KernelLoad, 0.25)
	within("kernel load wb", got.KernelLoadWB, p.KernelLoadWB, 0.25)
	within("kernel unload", got.KernelUnload, p.KernelUnload, 0.25)
	within("trap getpid", got.TrapGetpid, p.TrapGetpid, 0.3)
	within("signal deliver", got.SignalDeliver, p.SignalDeliver, 0.3)
	within("signal return", got.SignalReturn, p.SignalReturn, 0.3)
	within("page fault", got.PageFaultTotal, p.PageFaultTotal, 0.3)
	within("fault transfer", got.FaultTransfer, p.FaultTransfer, 0.3)

	// Shape assertions (robust to recalibration).
	if !(got.MappingLoad < got.SpaceLoad && got.SpaceLoad < got.ThreadLoad && got.ThreadLoad < got.KernelLoad) {
		t.Error("load-cost ordering violated: want mapping < space < thread < kernel")
	}
	if got.MappingLoadWB <= got.MappingLoad {
		t.Error("writeback should add cost to mapping load")
	}
	if got.ThreadLoadWB <= 2*got.ThreadLoad {
		t.Error("thread writeback should dominate thread load")
	}
	if got.MappingLoadOpt >= got.MappingLoad+got.FaultTransfer {
		t.Error("optimized load should beat separate load + resume")
	}
}
