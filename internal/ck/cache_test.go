package ck

import (
	"testing"
	"testing/quick"

	"vpp/internal/sim"
)

func TestObjCacheLRUOrder(t *testing.T) {
	c := newObjCache[int]("t", 3)
	a, _, _ := c.alloc()
	b, _, _ := c.alloc()
	d, _, _ := c.alloc()
	c.set(a, 1)
	c.set(b, 2)
	c.set(d, 3)
	if _, _, ok := c.alloc(); ok {
		t.Fatal("alloc from full cache succeeded")
	}
	// LRU victim is the first allocated.
	v, ok := c.victim(func(int32) bool { return true })
	if !ok || v != a {
		t.Fatalf("victim = %d, want %d", v, a)
	}
	// Touch promotes: a becomes most recent, b the victim.
	c.touch(a)
	v, _ = c.victim(func(int32) bool { return true })
	if v != b {
		t.Fatalf("victim after touch = %d, want %d", v, b)
	}
	// Locked slots are skipped by the predicate convention.
	c.setLocked(b, true)
	v, _ = c.victim(func(idx int32) bool { return !c.lockedSlot(idx) })
	if v != d {
		t.Fatalf("victim skipping locked = %d, want %d", v, d)
	}
}

func TestObjCacheGenerationInvalidation(t *testing.T) {
	c := newObjCache[string]("t", 2)
	idx, gen, _ := c.alloc()
	c.set(idx, "first")
	c.release(idx)
	idx2, gen2, _ := c.alloc()
	if idx2 != idx {
		t.Fatalf("slot not recycled: %d vs %d", idx2, idx)
	}
	if gen2 == gen {
		t.Fatal("generation not bumped on reuse")
	}
	if _, ok := c.get(idx, gen); ok {
		t.Fatal("stale generation resolved")
	}
	if v, ok := c.get(idx2, gen2); !ok || v != "" {
		t.Fatalf("fresh slot get = %q, %v", v, ok)
	}
}

func TestObjCachePropertyAllocReleaseBalance(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		r := sim.NewRand(seed)
		const cap = 8
		c := newObjCache[int]("p", cap)
		var live []int32
		for i := 0; i < int(nOps); i++ {
			if r.Intn(2) == 0 {
				if idx, _, ok := c.alloc(); ok {
					live = append(live, idx)
				} else if len(live) != cap {
					return false
				}
			} else if len(live) > 0 {
				j := r.Intn(len(live))
				c.release(live[j])
				live = append(live[:j], live[j+1:]...)
			}
			if c.Loaded() != len(live) {
				return false
			}
		}
		// LRU walk visits exactly the live slots.
		n := 0
		c.forEach(func(int32, int) bool { n++; return true })
		return n == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPMapChainsProperty(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		r := sim.NewRand(seed)
		p := newPMap(32, 8)
		type rec struct {
			idx  int32
			key  uint32
			dep  uint32
			kind depKind
		}
		var live []rec
		for i := 0; i < int(nOps); i++ {
			if r.Intn(2) == 0 {
				kind := depKind(1 + r.Intn(3))
				key := uint32(r.Intn(12))
				dep := uint32(r.Intn(1000))
				if idx, ok := p.insert(kind, key, dep, int32(r.Intn(4))); ok {
					live = append(live, rec{idx, key, dep, kind})
				} else if len(live) != 32 {
					return false
				}
			} else if len(live) > 0 {
				j := r.Intn(len(live))
				p.remove(live[j].idx)
				live = append(live[:j], live[j+1:]...)
			}
			if p.Live() != len(live) {
				return false
			}
		}
		// Every live record is findable through its chain.
		for _, rc := range live {
			found := false
			p.findEach(rc.kind, rc.key, func(idx int32, r *depRecord) bool {
				if idx == rc.idx && r.dep == rc.dep {
					found = true
					return false
				}
				return true
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPMapReservationHandoff(t *testing.T) {
	p := newPMap(4, 4)
	var idxs []int32
	for i := 0; i < 4; i++ {
		idx, ok := p.insert(depPhysVirt, uint32(i), uint32(i), 0)
		if !ok {
			t.Fatal("insert failed")
		}
		idxs = append(idxs, idx)
	}
	if _, ok := p.takeFree(); ok {
		t.Fatal("takeFree from full pool succeeded")
	}
	// removeKeep does not return the slot to the free pool...
	p.removeKeep(idxs[0])
	if _, ok := p.takeFree(); ok {
		t.Fatal("kept slot leaked into the free pool")
	}
	// ...but insertAt can fill it directly.
	p.insertAt(idxs[0], depSignal, 9, 9, 1)
	if p.Live() != 4 {
		t.Fatalf("live = %d", p.Live())
	}
	// releaseSlot returns an unused reservation.
	p.remove(idxs[1])
	idx, ok := p.takeFree()
	if !ok {
		t.Fatal("takeFree after remove failed")
	}
	p.releaseSlot(idx)
	if idx2, ok := p.takeFree(); !ok || idx2 != idx {
		t.Fatal("releaseSlot round trip failed")
	}
}

func TestObjIDEncoding(t *testing.T) {
	f := func(gen uint32, slot uint16) bool {
		for _, typ := range []ObjType{ObjKernel, ObjSpace, ObjThread} {
			id := makeID(typ, gen, int(slot))
			if id.Type() != typ || id.gen() != gen || id.slot() != int(slot) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if ObjID(0).Type() != ObjInvalid {
		t.Fatal("zero id has a valid type")
	}
}

func TestRTLBVersioning(t *testing.T) {
	r := newRTLB(2)
	r.fill(5, 1, []rtlbReceiver{{threadSlot: 1, gen: 1, va: 0x1000}})
	if recv, ok := r.lookup(5, 1); !ok || len(recv) != 1 {
		t.Fatal("current-version lookup missed")
	}
	if _, ok := r.lookup(5, 2); ok {
		t.Fatal("stale-version lookup hit")
	}
	// The stale entry self-invalidated; refill works.
	r.fill(5, 2, nil)
	if recv, ok := r.lookup(5, 2); !ok || len(recv) != 0 {
		t.Fatalf("refill lookup: %v %v", recv, ok)
	}
	// Disabled RTLB never hits.
	d := newRTLB(0)
	d.fill(1, 1, nil)
	if _, ok := d.lookup(1, 1); ok {
		t.Fatal("disabled rtlb hit")
	}
}
