package ck

import (
	"fmt"
	"math"

	"vpp/internal/hw"
)

// Table2 holds the measured costs of the basic Cache Kernel operations,
// in microseconds of simulated time — the reproduction of the paper's
// Table 2 plus the Section 5.3 micro-benchmarks. MeasureTable2 produces
// it on a freshly booted machine.
type Table2 struct {
	MappingLoad      float64 // 45 in the paper
	MappingLoadWB    float64 // 145
	MappingLoadOpt   float64 // 67
	MappingLoadOptWB float64 // 167
	MappingUnload    float64 // 160

	ThreadLoad   float64 // 113
	ThreadLoadWB float64 // 489
	ThreadUnload float64 // 206

	SpaceLoad   float64 // 101
	SpaceLoadWB float64 // 229
	SpaceUnload float64 // 152

	KernelLoad   float64 // 244
	KernelLoadWB float64 // 291
	KernelUnload float64 // 80

	TrapGetpid     float64 // 37 (§5.3)
	SignalDeliver  float64 // 44
	SignalReturn   float64 // 27
	PageFaultTotal float64 // 99
	FaultTransfer  float64 // 32

	// Host-observability counters for the run that produced the table:
	// engine scheduling steps and the MPM's TLB and L2 hit/miss totals.
	// They are not part of the paper's table (String leaves them out; see
	// Counters) but make cost-model regressions visible in the same run
	// that measures operation times — any host-side data-structure change
	// that perturbs the simulation shows up here first.
	SchedSteps         uint64
	TLBHits, TLBMisses uint64
	L2Hits, L2Misses   uint64

	// Per-descriptor-cache counters for the same run (Counters stanza,
	// not part of the paper table).
	Caches CacheCounters
}

// PaperTable2 is the published Table 2 / Section 5.3 data for
// comparison.
func PaperTable2() Table2 {
	return Table2{
		MappingLoad: 45, MappingLoadWB: 145, MappingLoadOpt: 67, MappingLoadOptWB: 167,
		MappingUnload: 160,
		ThreadLoad:    113, ThreadLoadWB: 489, ThreadUnload: 206,
		SpaceLoad: 101, SpaceLoadWB: 229, SpaceUnload: 152,
		KernelLoad: 244, KernelLoadWB: 291, KernelUnload: 80,
		TrapGetpid: 37, SignalDeliver: 44, SignalReturn: 27,
		PageFaultTotal: 99, FaultTransfer: 32,
	}
}

// table2Writeback absorbs writebacks silently during measurement.
type table2Writeback struct{ lastThread ThreadState }

func (w *table2Writeback) MappingWriteback(MappingState) {}
func (w *table2Writeback) ThreadWriteback(_ ObjID, st ThreadState) {
	w.lastThread = st
}
func (w *table2Writeback) SpaceWriteback(ObjID)  {}
func (w *table2Writeback) KernelWriteback(ObjID) {}

// MeasureTable2 boots a dedicated machine with the given cache geometry
// (zero-value cfg for the paper's) and measures every basic operation.
// The hw configuration uses a single MPM; the signal-delivery experiment
// uses two processors.
func MeasureTable2(cfg Config) (Table2, error) {
	var out Table2
	var measureErr error

	hwCfg := hw.DefaultConfig()
	m := hw.NewMachine(hwCfg)
	k, err := New(m.MPMs[0], cfg)
	if err != nil {
		return out, err
	}
	wb := &table2Writeback{}

	const sysGetpid = 20
	attrs := KernelAttrs{
		Name: "bench",
		Wb:   wb,
		Trap: func(e *hw.Exec, th ObjID, no uint32, args []uint32) (uint32, uint32) {
			if no == sysGetpid {
				e.Instr(6) // pid table lookup in the emulator
				return 77, 0
			}
			return ^uint32(0), 0
		},
		LockQuota: [4]int{4, 8, 16, 256},
	}
	var handler func(e *hw.Exec, th, space ObjID, va uint32, write bool, kind hw.Fault) bool
	attrs.Fault = func(e *hw.Exec, th, space ObjID, va uint32, write bool, kind hw.Fault) bool {
		return handler(e, th, space, va, write, kind)
	}

	body := func(e *hw.Exec) {
		measureErr = runTable2(k, e, &out, sysGetpid, &handler)
	}
	if _, err := k.Boot(attrs, 40, body); err != nil {
		return out, err
	}
	m.Eng.MaxSteps = 100_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		return out, err
	}
	out.SchedSteps = m.Eng.Steps()
	for _, c := range m.MPMs[0].CPUs {
		h, mi := c.TLB.Stats()
		out.TLBHits += h
		out.TLBMisses += mi
	}
	out.L2Hits, out.L2Misses = m.MPMs[0].L2.Stats()
	out.Caches = k.CacheCounters()
	return out, measureErr
}

func runTable2(k *Kernel, e *hw.Exec, out *Table2, sysGetpid uint32, handler *func(*hw.Exec, ObjID, ObjID, uint32, bool, hw.Fault) bool) error {
	us := func(c0, c1 uint64) float64 { return hw.MicrosFromCycles(c1 - c0) }
	boot := k.threadOf(e)
	sid := boot.space.id
	frame := uint32(1024)
	newFrame := func() uint32 { frame++; return frame }

	// Default fault handler: identity map with the optimized call,
	// recording the measured interval for the page-fault experiment.
	var faultStart uint64
	var optDur float64
	*handler = func(he *hw.Exec, th, space ObjID, va uint32, write bool, kind hw.Fault) bool {
		out.FaultTransfer = us(faultStart, he.Now())
		t0 := he.Now()
		err := k.LoadMappingAndResume(he, space, MappingSpec{
			VA: va &^ (hw.PageSize - 1), PFN: va >> hw.PageShift, Writable: true, Cachable: true,
		})
		optDur = us(t0, he.Now())
		return err == nil
	}

	// --- Mapping operations ---
	va := uint32(0x1000_0000)
	t0 := e.Now()
	if err := k.LoadMapping(e, sid, MappingSpec{VA: va, PFN: newFrame(), Writable: true, Cachable: true}); err != nil {
		return fmt.Errorf("mapping load: %w", err)
	}
	out.MappingLoad = us(t0, e.Now())

	t0 = e.Now()
	if _, err := k.UnloadMapping(e, sid, va); err != nil {
		return fmt.Errorf("mapping unload: %w", err)
	}
	out.MappingUnload = us(t0, e.Now())

	// Page fault (Figure 2 path) with the optimized load-and-resume.
	faultVA := uint32(0x0100_0000)
	faultStart = e.Now()
	e.Store32(faultVA, 1)
	out.PageFaultTotal = us(faultStart, e.Now())
	out.MappingLoadOpt = optDur

	// Mapping load with writeback: fill the descriptor pool.
	for len(k.pm.free) > 0 {
		if err := k.LoadMapping(e, sid, MappingSpec{VA: 0x2000_0000 + uint32(k.pm.live)*hw.PageSize, PFN: newFrame()}); err != nil {
			return fmt.Errorf("pool fill: %w", err)
		}
	}
	t0 = e.Now()
	if err := k.LoadMapping(e, sid, MappingSpec{VA: 0x3000_0000, PFN: newFrame()}); err != nil {
		return fmt.Errorf("mapping load wb: %w", err)
	}
	out.MappingLoadWB = us(t0, e.Now())

	// Optimized load with writeback: fault with a full pool.
	faultVA2 := uint32(0x0140_0000)
	faultStart = e.Now()
	e.Store32(faultVA2, 1)
	_ = us(faultStart, e.Now())
	out.MappingLoadOptWB = optDur

	// Drain the pool back to mostly free for the rest.
	for k.pm.live > 64 {
		if _, err := k.evictMapping(e, false); err != nil {
			break
		}
	}

	// --- Thread operations ---
	mkExec := func(name string) *hw.Exec {
		return k.MPM.NewExec(name, func(we *hw.Exec) {
			_, _ = k.WaitSignal(we) // block immediately, forever
		})
	}
	t0 = e.Now()
	tid, err := k.LoadThread(e, sid, ThreadState{Priority: 10, Exec: mkExec("t2a")}, false)
	if err != nil {
		return fmt.Errorf("thread load: %w", err)
	}
	out.ThreadLoad = us(t0, e.Now())
	e.Charge(hw.CyclesFromMicros(400)) // let it block
	t0 = e.Now()
	if _, err := k.UnloadThread(e, tid); err != nil {
		return fmt.Errorf("thread unload: %w", err)
	}
	out.ThreadUnload = us(t0, e.Now())

	// Thread load with writeback: fill the thread cache with blocked
	// threads (they park immediately and stay loaded).
	for k.threads.Loaded() < k.threads.Capacity() {
		if _, err := k.LoadThread(e, sid, ThreadState{Priority: 10, Exec: mkExec("filler")}, false); err != nil {
			return fmt.Errorf("thread fill: %w", err)
		}
	}
	e.Charge(hw.CyclesFromMicros(5000)) // let the fillers block
	t0 = e.Now()
	if _, err := k.LoadThread(e, sid, ThreadState{Priority: 10, Exec: mkExec("t2b")}, false); err != nil {
		return fmt.Errorf("thread load wb: %w", err)
	}
	out.ThreadLoadWB = us(t0, e.Now())

	// --- Space operations ---
	t0 = e.Now()
	sid2, err := k.LoadSpace(e, false)
	if err != nil {
		return fmt.Errorf("space load: %w", err)
	}
	out.SpaceLoad = us(t0, e.Now())
	t0 = e.Now()
	if err := k.UnloadSpace(e, sid2); err != nil {
		return fmt.Errorf("space unload: %w", err)
	}
	out.SpaceUnload = us(t0, e.Now())

	for k.spaces.Loaded() < k.spaces.Capacity() {
		if _, err := k.LoadSpace(e, false); err != nil {
			return fmt.Errorf("space fill: %w", err)
		}
	}
	t0 = e.Now()
	if _, err := k.LoadSpace(e, false); err != nil {
		return fmt.Errorf("space load wb: %w", err)
	}
	out.SpaceLoadWB = us(t0, e.Now())

	// --- Kernel operations ---
	t0 = e.Now()
	kid, err := k.LoadKernel(e, KernelAttrs{Name: "k2", Wb: &table2Writeback{}})
	if err != nil {
		return fmt.Errorf("kernel load: %w", err)
	}
	out.KernelLoad = us(t0, e.Now())
	t0 = e.Now()
	if err := k.UnloadKernel(e, kid); err != nil {
		return fmt.Errorf("kernel unload: %w", err)
	}
	out.KernelUnload = us(t0, e.Now())

	for k.kernels.Loaded() < k.kernels.Capacity() {
		if _, err := k.LoadKernel(e, KernelAttrs{Name: "fill", Wb: &table2Writeback{}}); err != nil {
			return fmt.Errorf("kernel fill: %w", err)
		}
	}
	t0 = e.Now()
	if _, err := k.LoadKernel(e, KernelAttrs{Name: "k3", Wb: &table2Writeback{}}); err != nil {
		return fmt.Errorf("kernel load wb: %w", err)
	}
	out.KernelLoadWB = us(t0, e.Now())

	// --- §5.3: trap time (getpid through the emulator) ---
	userSid, err := k.LoadSpace(e, false)
	if err != nil {
		return fmt.Errorf("user space: %w", err)
	}
	var trapUS float64
	userDone := false
	uexec := k.MPM.NewExec("user", func(ue *hw.Exec) {
		// Warm the path once, then measure.
		ue.Trap(sysGetpid)
		t0 := ue.Now()
		r, _ := ue.Trap(sysGetpid)
		trapUS = us(t0, ue.Now())
		if r != 77 {
			measureFail(&trapUS)
		}
		userDone = true
	})
	if _, err := k.LoadThread(e, userSid, ThreadState{Priority: 30, Exec: uexec}, false); err != nil {
		return fmt.Errorf("user thread: %w", err)
	}
	for !userDone {
		e.Charge(2000)
	}
	out.TrapGetpid = trapUS

	// --- §5.3: cross-processor signal delivery ---
	// A fixed low frame: it is actually written, so it must lie within
	// physical memory (the fill frames above are never accessed).
	sharedPFN := uint32(512)
	recvSid, err := k.LoadSpace(e, false)
	if err != nil {
		return fmt.Errorf("recv space: %w", err)
	}
	var sendAt uint64
	var deliverUS float64
	recvDone := false
	rexec := k.MPM.NewExec("recv", func(re *hw.Exec) {
		for i := 0; i < 2; i++ {
			_, err := k.WaitSignal(re)
			if err != nil {
				return
			}
			if i == 1 {
				deliverUS = us(sendAt, re.Now())
			}
			t0 := re.Now()
			k.SignalReturn(re)
			out.SignalReturn = us(t0, re.Now())
		}
		recvDone = true
	})
	rtid, err := k.LoadThread(e, recvSid, ThreadState{Priority: 35, Exec: rexec}, false)
	if err != nil {
		return fmt.Errorf("recv thread: %w", err)
	}
	if err := k.LoadMapping(e, recvSid, MappingSpec{VA: 0x5000_0000, PFN: sharedPFN, Message: true, SignalThread: rtid}); err != nil {
		return fmt.Errorf("recv mapping: %w", err)
	}
	if err := k.LoadMapping(e, sid, MappingSpec{VA: 0x6000_0000, PFN: sharedPFN, Writable: true, Message: true}); err != nil {
		return fmt.Errorf("send mapping: %w", err)
	}
	e.Charge(hw.CyclesFromMicros(500))
	e.Store32(0x6000_0000, 1) // warm (two-stage lookup, fills the reverse TLB)
	e.Charge(hw.CyclesFromMicros(500))
	sendAt = e.Now()
	e.Store32(0x6000_0000, 2) // measured (fast path)
	for !recvDone {
		e.Charge(2000)
	}
	out.SignalDeliver = deliverUS
	return nil
}

func measureFail(v *float64) { *v = -1 }

// String renders the table next to the paper's numbers.
func (t Table2) String() string {
	p := PaperTable2()
	row := func(name string, got, want float64) string {
		return fmt.Sprintf("%-28s %8.1f %8.0f\n", name, got, want)
	}
	s := fmt.Sprintf("%-28s %8s %8s\n", "operation (µs)", "measured", "paper")
	s += row("mapping load", t.MappingLoad, p.MappingLoad)
	s += row("mapping load (optimized)", t.MappingLoadOpt, p.MappingLoadOpt)
	s += row("mapping load + writeback", t.MappingLoadWB, p.MappingLoadWB)
	s += row("mapping load opt + wb", t.MappingLoadOptWB, p.MappingLoadOptWB)
	s += row("mapping unload", t.MappingUnload, p.MappingUnload)
	s += row("thread load", t.ThreadLoad, p.ThreadLoad)
	s += row("thread load + writeback", t.ThreadLoadWB, p.ThreadLoadWB)
	s += row("thread unload", t.ThreadUnload, p.ThreadUnload)
	s += row("space load", t.SpaceLoad, p.SpaceLoad)
	s += row("space load + writeback", t.SpaceLoadWB, p.SpaceLoadWB)
	s += row("space unload", t.SpaceUnload, p.SpaceUnload)
	s += row("kernel load", t.KernelLoad, p.KernelLoad)
	s += row("kernel load + writeback", t.KernelLoadWB, p.KernelLoadWB)
	s += row("kernel unload", t.KernelUnload, p.KernelUnload)
	s += row("trap (getpid)", t.TrapGetpid, p.TrapGetpid)
	s += row("signal delivery", t.SignalDeliver, p.SignalDeliver)
	s += row("signal return", t.SignalReturn, p.SignalReturn)
	s += row("page fault total", t.PageFaultTotal, p.PageFaultTotal)
	s += row("fault transfer", t.FaultTransfer, p.FaultTransfer)
	return s
}

// Counters renders the run's scheduling and memory-system counters as a
// stanza separate from the paper table, so the table itself stays
// comparable across revisions byte for byte.
func (t Table2) Counters() string {
	s := fmt.Sprintf(
		"simulation counters: sched steps %d, TLB %d hits / %d misses, L2 %d hits / %d misses",
		t.SchedSteps, t.TLBHits, t.TLBMisses, t.L2Hits, t.L2Misses)
	for _, c := range []CacheStat{t.Caches.Kernels, t.Caches.Spaces, t.Caches.Threads, t.Caches.Mappings} {
		s += "\ncache " + c.String()
	}
	return s
}
