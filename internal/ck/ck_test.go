package ck

import (
	"testing"

	"vpp/internal/hw"
)

func TestBootRunsFirstKernelThread(t *testing.T) {
	ran := false
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		ran = true
		if env.k.FirstKernel() == 0 {
			t.Error("no first kernel")
		}
	})
	env.run()
	if !ran {
		t.Fatal("boot body did not run")
	}
}

func TestDemandPagingThroughFaultHandler(t *testing.T) {
	var got uint32
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		// The SRM space starts with no mappings: the first store faults,
		// the fault handler loads an identity mapping, the store retries.
		e.Store32(0x0040_0000, 0xdeadbeef)
		got = e.Load32(0x0040_0000)
	})
	env.run()
	if got != 0xdeadbeef {
		t.Fatalf("read back %#x", got)
	}
	if env.k.Stats.Faults == 0 {
		t.Fatal("no faults recorded")
	}
	if env.k.Stats.MappingLoads == 0 {
		t.Fatal("no mapping loads recorded")
	}
}

func TestMappingLoadUnloadReturnsRMBits(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		sid := env.boot.Space
		pfn := env.frame()
		va := uint32(0x1000_0000)
		env.mustMap(e, sid, MappingSpec{VA: va, PFN: pfn, Writable: true, Cachable: true})
		e.Store32(va+4, 42)
		st, err := k.UnloadMapping(e, sid, va)
		if err != nil {
			t.Fatalf("UnloadMapping: %v", err)
		}
		if !st.Referenced || !st.Modified {
			t.Errorf("R/M bits = %v/%v, want true/true", st.Referenced, st.Modified)
		}
		if st.PFN != pfn {
			t.Errorf("PFN = %d, want %d", st.PFN, pfn)
		}
		// Read-only touch sets only the referenced bit.
		env.mustMap(e, sid, MappingSpec{VA: va, PFN: pfn, Writable: true, Cachable: true})
		_ = e.Load32(va)
		st, err = k.UnloadMapping(e, sid, va)
		if err != nil {
			t.Fatalf("UnloadMapping 2: %v", err)
		}
		if !st.Referenced || st.Modified {
			t.Errorf("after read R/M = %v/%v, want true/false", st.Referenced, st.Modified)
		}
	})
	env.run()
}

func TestMappingReplacementWritesBack(t *testing.T) {
	cfg := Config{MappingSlots: 8, PMapBuckets: 8}
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		sid := env.mustLoadSpace(e, false)
		for i := uint32(0); i < 12; i++ {
			env.mustMap(e, sid, MappingSpec{
				VA: 0x2000_0000 + i*hw.PageSize, PFN: env.frame(), Writable: true,
			})
		}
	})
	env.run()
	if len(env.wb.mappings) < 4 {
		t.Fatalf("writebacks = %d, want >= 4", len(env.wb.mappings))
	}
	if env.k.pm.Live() > 8 {
		t.Fatalf("live records = %d exceeds capacity", env.k.pm.Live())
	}
}

func TestStaleIdentifierFailsAfterUnload(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		sid := env.mustLoadSpace(e, false)
		if err := k.UnloadSpace(e, sid); err != nil {
			t.Fatalf("UnloadSpace: %v", err)
		}
		if _, err := k.LoadThread(e, sid, ThreadState{Priority: 10, Exec: e}, false); err != ErrInvalidID {
			t.Fatalf("LoadThread on stale space: %v, want ErrInvalidID", err)
		}
		if err := k.LoadMapping(e, sid, MappingSpec{VA: 0x1000, PFN: 1}); err != ErrInvalidID {
			t.Fatalf("LoadMapping on stale space: %v, want ErrInvalidID", err)
		}
	})
	env.run()
}

func TestGenerationChangesAcrossReload(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		a := env.mustLoadSpace(e, false)
		if err := k.UnloadSpace(e, a); err != nil {
			t.Fatal(err)
		}
		b := env.mustLoadSpace(e, false)
		if a == b {
			t.Error("identifier reused across reload")
		}
	})
	env.run()
}

func TestSecondThreadRunsAndSignals(t *testing.T) {
	var woke uint32
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		done := false
		tid := env.spawnThread(e, env.boot.Space, "waiter", 30, func(we *hw.Exec) {
			v, err := k.WaitSignal(we)
			if err != nil {
				t.Errorf("WaitSignal: %v", err)
			}
			woke = v
			done = true
		})
		// Give the waiter time to block, then post.
		e.Charge(hw.CyclesFromMicros(500))
		if err := k.PostSignal(e, tid, 0xabc0); err != nil {
			t.Fatalf("PostSignal: %v", err)
		}
		for !done {
			e.Charge(1000)
		}
	})
	env.run()
	if woke != 0xabc0 {
		t.Fatalf("signal value = %#x, want 0xabc0", woke)
	}
}

func TestMemoryBasedMessagingDeliversTranslatedAddress(t *testing.T) {
	var got uint32
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		pfn := env.frame()
		// Receiver space maps the shared frame at 0x5000_0000 in message
		// mode with a signal thread; sender (boot thread's space) maps it
		// at 0x6000_0000 writable in message mode.
		recvSpace := env.mustLoadSpace(e, false)
		var done bool
		rtid := env.spawnThread(e, recvSpace, "receiver", 35, func(re *hw.Exec) {
			v, err := k.WaitSignal(re)
			if err != nil {
				t.Errorf("receiver WaitSignal: %v", err)
			}
			got = v
			done = true
		})
		env.mustMap(e, recvSpace, MappingSpec{
			VA: 0x5000_0000, PFN: pfn, Message: true, SignalThread: rtid,
		})
		env.mustMap(e, env.boot.Space, MappingSpec{
			VA: 0x6000_0000, PFN: pfn, Writable: true, Message: true,
		})
		e.Store32(0x6000_0000+0x24, 7)
		for !done {
			e.Charge(1000)
		}
	})
	env.run()
	if got != 0x5000_0024 {
		t.Fatalf("signal value = %#x, want receiver VA 0x50000024", got)
	}
	if env.k.Stats.SignalsGenerated != 1 {
		t.Fatalf("signals generated = %d, want 1", env.k.Stats.SignalsGenerated)
	}
}

func TestReverseTLBFastPathOnRepeatedSignals(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		pfn := env.frame()
		recvSpace := env.mustLoadSpace(e, false)
		count := 0
		rtid := env.spawnThread(e, recvSpace, "receiver", 35, func(re *hw.Exec) {
			for i := 0; i < 4; i++ {
				if _, err := k.WaitSignal(re); err != nil {
					t.Errorf("WaitSignal: %v", err)
				}
				count++
			}
		})
		env.mustMap(e, recvSpace, MappingSpec{VA: 0x5000_0000, PFN: pfn, Message: true, SignalThread: rtid})
		env.mustMap(e, env.boot.Space, MappingSpec{VA: 0x6000_0000, PFN: pfn, Writable: true, Message: true})
		for i := 0; i < 4; i++ {
			e.Store32(0x6000_0000, uint32(i))
			e.Charge(hw.CyclesFromMicros(300))
		}
		for count < 4 {
			e.Charge(1000)
		}
	})
	env.run()
	if env.k.Stats.SignalsTwoStage == 0 {
		t.Fatal("expected at least one two-stage delivery (first signal)")
	}
	if env.k.Stats.SignalsFast == 0 {
		t.Fatal("expected reverse-TLB fast deliveries on repeats")
	}
	if env.k.Stats.SignalsFast+env.k.Stats.SignalsTwoStage+env.k.Stats.SignalsQueued < 4 {
		t.Fatalf("deliveries: fast=%d twoStage=%d queued=%d",
			env.k.Stats.SignalsFast, env.k.Stats.SignalsTwoStage, env.k.Stats.SignalsQueued)
	}
}

func TestRTLBDisabledForcesTwoStage(t *testing.T) {
	cfg := Config{RTLBEntries: -1} // withDefaults keeps negative as "no entries"
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		k := env.k
		pfn := env.frame()
		recvSpace := env.mustLoadSpace(e, false)
		n := 0
		rtid := env.spawnThread(e, recvSpace, "receiver", 35, func(re *hw.Exec) {
			for i := 0; i < 3; i++ {
				if _, err := k.WaitSignal(re); err != nil {
					return
				}
				n++
			}
		})
		env.mustMap(e, recvSpace, MappingSpec{VA: 0x5000_0000, PFN: pfn, Message: true, SignalThread: rtid})
		env.mustMap(e, env.boot.Space, MappingSpec{VA: 0x6000_0000, PFN: pfn, Writable: true, Message: true})
		for i := 0; i < 3; i++ {
			e.Store32(0x6000_0000, uint32(i))
			e.Charge(hw.CyclesFromMicros(300))
		}
		for n < 3 {
			e.Charge(1000)
		}
	})
	env.run()
	if env.k.Stats.SignalsFast != 0 {
		t.Fatalf("fast deliveries = %d with RTLB disabled", env.k.Stats.SignalsFast)
	}
	if env.k.Stats.SignalsTwoStage == 0 {
		t.Fatal("no two-stage deliveries recorded")
	}
}

func TestUnloadSpaceUnloadsDependentsFirst(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		sid := env.mustLoadSpace(e, false)
		env.spawnThread(e, sid, "child", 20, func(ce *hw.Exec) {
			if _, err := k.WaitSignal(ce); err != nil {
				return
			}
		})
		for i := uint32(0); i < 3; i++ {
			env.mustMap(e, sid, MappingSpec{VA: 0x3000_0000 + i*hw.PageSize, PFN: env.frame()})
		}
		e.Charge(hw.CyclesFromMicros(500)) // let the child block
		if err := k.UnloadSpace(e, sid); err != nil {
			t.Fatalf("UnloadSpace: %v", err)
		}
	})
	env.run()
	// Explicit unload: dependents go to the writeback channel (the
	// space's own state is returned to the caller, not written back).
	var threads, mappings, spaces int
	for _, kind := range env.wb.order {
		switch kind {
		case "thread":
			threads++
		case "mapping":
			mappings++
		case "space":
			spaces++
		}
	}
	if threads != 1 || mappings != 3 || spaces != 0 {
		t.Fatalf("writebacks: %d threads, %d mappings, %d spaces (order %v)",
			threads, mappings, spaces, env.wb.order)
	}
}

func TestSpaceEvictionWritesBackDependentsFirst(t *testing.T) {
	cfg := Config{SpaceSlots: 3}
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		// Slot 0 is the (locked) SRM space. Fill the remaining slots,
		// give the LRU one a mapping and thread, then overflow.
		victim := env.mustLoadSpace(e, false)
		env.spawnThread(e, victim, "vthread", 20, func(ce *hw.Exec) {
			_, _ = env.k.WaitSignal(ce)
		})
		env.mustMap(e, victim, MappingSpec{VA: 0x3000_0000, PFN: env.frame()})
		e.Charge(hw.CyclesFromMicros(500))
		env.mustLoadSpace(e, false)
		env.mustLoadSpace(e, false) // forces eviction of victim
	})
	env.run()
	spaceAt := -1
	for i, kind := range env.wb.order {
		if kind == "space" {
			spaceAt = i
			break
		}
	}
	if spaceAt == -1 {
		t.Fatalf("no space writeback (order %v)", env.wb.order)
	}
	var threads, mappings int
	for _, kind := range env.wb.order[:spaceAt] {
		switch kind {
		case "thread":
			threads++
		case "mapping":
			mappings++
		}
	}
	if threads != 1 || mappings != 1 {
		t.Fatalf("before space writeback: %d threads, %d mappings (order %v)",
			threads, mappings, env.wb.order)
	}
}

func TestTrapForwardingToOwningKernel(t *testing.T) {
	const sysGetpid = 20
	var result uint32
	env := newEnvOpts(t, hw.DefaultConfig(), Config{}, func(a *KernelAttrs) {
		a.Trap = func(e *hw.Exec, th ObjID, no uint32, args []uint32) (uint32, uint32) {
			if no == sysGetpid {
				e.Instr(10) // emulator's pid table lookup
				return 1234, 0
			}
			return ^uint32(0), 0
		}
	}, func(env *testEnv, e *hw.Exec) {
		// A user thread in a separate space owned by the SRM: its traps
		// forward to the SRM's trap handler.
		userSpace := env.mustLoadSpace(e, false)
		done := false
		env.spawnThread(e, userSpace, "user", 20, func(ue *hw.Exec) {
			r0, _ := ue.Trap(sysGetpid)
			result = r0
			done = true
		})
		for !done {
			e.Charge(1000)
		}
	})
	env.run()
	if result != 1234 {
		t.Fatalf("getpid = %d, want 1234", result)
	}
	if env.k.Stats.TrapsForwarded != 1 {
		t.Fatalf("traps forwarded = %d, want 1", env.k.Stats.TrapsForwarded)
	}
}

func TestSelfUnloadParksThread(t *testing.T) {
	var phase []string
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		var tid ObjID
		tid = env.spawnThread(e, env.boot.Space, "worker", 20, func(we *hw.Exec) {
			phase = append(phase, "start")
			// Unload self: returns only after reload + redispatch.
			if _, err := k.UnloadThread(we, tid); err != nil {
				t.Errorf("self unload: %v", err)
				return
			}
			phase = append(phase, "resumed")
		})
		e.Charge(hw.CyclesFromMicros(2000)) // let the worker unload itself
		if env.k.threads.Loaded() != 1 {    // only the boot thread remains
			t.Errorf("loaded threads = %d, want 1", env.k.threads.Loaded())
		}
	})
	env.run()
	if len(phase) != 1 || phase[0] != "start" {
		t.Fatalf("phase = %v, want [start] (worker parked)", phase)
	}
}

func TestThreadReloadRoundTrip(t *testing.T) {
	var phase []string
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		exec := env.m.MPMs[0].NewExec("worker", func(we *hw.Exec) {
			phase = append(phase, "start")
			to := k.threadOf(we)
			if _, err := k.UnloadThread(we, to.id); err != nil {
				t.Errorf("self unload: %v", err)
				return
			}
			phase = append(phase, "resumed")
		})
		if _, err := k.LoadThread(e, env.boot.Space, ThreadState{Priority: 20, Exec: exec}, false); err != nil {
			t.Fatalf("LoadThread: %v", err)
		}
		e.Charge(hw.CyclesFromMicros(2000))
		if len(phase) != 1 {
			t.Fatalf("worker should have parked after unload; phase=%v", phase)
		}
		// Reload with the same execution context: the worker resumes
		// inside its UnloadThread call.
		if _, err := k.LoadThread(e, env.boot.Space, ThreadState{Priority: 20, Exec: exec}, false); err != nil {
			t.Fatalf("reload: %v", err)
		}
		e.Charge(hw.CyclesFromMicros(2000))
	})
	env.run()
	if len(phase) != 2 || phase[1] != "resumed" {
		t.Fatalf("phase = %v, want [start resumed]", phase)
	}
}

func TestAccessArrayEnforcement(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		// Load a second kernel with no memory rights.
		kid, err := k.LoadKernel(e, KernelAttrs{Name: "app", Wb: env.wb})
		if err != nil {
			t.Fatalf("LoadKernel: %v", err)
		}
		appSpace := env.mustLoadSpace(e, false)
		if err := k.SetKernelSpace(e, kid, appSpace); err != nil {
			t.Fatalf("SetKernelSpace: %v", err)
		}
		// An app-kernel thread trying to map an unauthorized frame fails.
		done := false
		env.spawnThread(e, appSpace, "appmain", 25, func(ae *hw.Exec) {
			// Note: this thread is owned by the SRM (loaded by it), so
			// to test the app kernel's rights we must check via a thread
			// whose owner is the app kernel. The SRM has full rights, so
			// here we only verify the array arithmetic via direct access
			// checks.
			done = true
		})
		ko, _ := k.lookupKernel(kid)
		if k.checkMappingAccess(e, ko, 0x100, false) {
			t.Error("kernel with empty access array passed read check")
		}
		if err := k.SetKernelMemoryAccess(e, kid, 0x100/hw.PageGroupPages, 1, true, false); err != nil {
			t.Fatalf("SetKernelMemoryAccess: %v", err)
		}
		if !k.checkMappingAccess(e, ko, 0x100, false) {
			t.Error("read denied after grant")
		}
		if k.checkMappingAccess(e, ko, 0x100, true) {
			t.Error("write allowed with read-only grant")
		}
		for !done {
			e.Charge(1000)
		}
	})
	env.run()
}

func TestTimeSliceRoundRobin(t *testing.T) {
	hwCfg := hw.DefaultConfig()
	hwCfg.CPUsPerMPM = 1
	var aRuns, bRuns int
	env := newEnvOpts(t, hwCfg, Config{TimeSlice: 5000}, nil, func(env *testEnv, e *hw.Exec) {
		mk := func(name string, counter *int) func(*hw.Exec) {
			return func(we *hw.Exec) {
				for i := 0; i < 40; i++ {
					we.Charge(1000)
					*counter++
				}
			}
		}
		env.spawnThread(e, env.boot.Space, "a", 20, mk("a", &aRuns))
		env.spawnThread(e, env.boot.Space, "b", 20, mk("b", &bRuns))
		// Boot thread sleeps at high priority by blocking.
		if _, err := env.k.WaitSignal(e); err == nil {
			t.Log("boot woke unexpectedly")
		}
	})
	// The boot thread blocks forever; run drains everything else.
	env.run()
	if aRuns != 40 || bRuns != 40 {
		t.Fatalf("runs: a=%d b=%d, want 40/40", aRuns, bRuns)
	}
	if env.k.Stats.ContextSwitches < 4 {
		t.Fatalf("context switches = %d, want >= 4 (time slicing)", env.k.Stats.ContextSwitches)
	}
}

func TestPriorityPreemption(t *testing.T) {
	hwCfg := hw.DefaultConfig()
	hwCfg.CPUsPerMPM = 1
	var order []string
	env := newEnvOpts(t, hwCfg, Config{}, nil, func(env *testEnv, e *hw.Exec) {
		k := env.k
		env.spawnThread(e, env.boot.Space, "low", 10, func(we *hw.Exec) {
			// After some work, spawn a higher-priority thread; it must
			// preempt this one and finish first.
			we.Charge(5000)
			env.spawnThread(we, env.boot.Space, "high", 30, func(he *hw.Exec) {
				he.Charge(2000)
				order = append(order, "high-done")
			})
			for i := 0; i < 50; i++ {
				we.Charge(2000)
			}
			order = append(order, "low-done")
		})
		// The boot thread blocks forever, freeing the only CPU.
		_, _ = k.WaitSignal(e)
	})
	env.run()
	if len(order) != 2 || order[0] != "high-done" {
		t.Fatalf("order = %v, want high-done first", order)
	}
	if env.k.Stats.Preemptions == 0 {
		t.Fatal("no preemptions recorded")
	}
}

func TestQuotaDemotionUnderLoad(t *testing.T) {
	hwCfg := hw.DefaultConfig()
	hwCfg.CPUsPerMPM = 1
	cfg := Config{AccountingWindow: 100_000}
	env := newEnvOpts(t, hwCfg, cfg, nil, func(env *testEnv, e *hw.Exec) {
		k := env.k
		kid, err := k.LoadKernel(e, KernelAttrs{Name: "greedy", Wb: env.wb})
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetKernelCPUShare(e, kid, []int{10}); err != nil {
			t.Fatal(err)
		}
		gSpace := env.mustLoadSpace(e, false)
		if err := k.SetKernelSpace(e, kid, gSpace); err != nil {
			t.Fatal(err)
		}
		// Hand ownership bookkeeping: spawn a compute-bound thread and
		// reassign it to the greedy kernel by loading through it.
		ko, _ := k.lookupKernel(kid)
		exec := env.m.MPMs[0].NewExec("burner", func(we *hw.Exec) {
			for i := 0; i < 3000; i++ {
				we.Charge(1000)
			}
		})
		to, err := k.newThreadObj(e, ko, k.spaces.at(int32(gSpace.slot())), ThreadState{Priority: 30, Exec: exec})
		if err != nil {
			t.Fatal(err)
		}
		k.sched.makeReady(to, e.Now())
		// Boot thread periodically wakes so the burner cannot monopolize
		// without accounting.
		for i := 0; i < 40; i++ {
			e.Charge(50_000)
		}
	})
	env.run()
	if env.k.Stats.QuotaDemotions == 0 {
		t.Fatal("greedy kernel was never demoted")
	}
}

func TestLockedObjectsSurviveEviction(t *testing.T) {
	cfg := Config{MappingSlots: 6, PMapBuckets: 8}
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		k := env.k
		sid := env.boot.Space // SRM space: kernel and space are locked
		env.mustMap(e, sid, MappingSpec{VA: 0x7000_0000, PFN: env.frame(), Locked: true, Writable: true})
		// Fill and overflow the pool; the locked mapping must survive.
		for i := uint32(0); i < 10; i++ {
			env.mustMap(e, sid, MappingSpec{VA: 0x7100_0000 + i*hw.PageSize, PFN: env.frame()})
		}
		if _, ok := k.MappingInfo(sid, 0x7000_0000); !ok {
			t.Error("locked mapping was evicted")
		}
	})
	env.run()
	for _, st := range env.wb.mappings {
		if st.VA == 0x7000_0000 {
			t.Fatal("locked mapping written back")
		}
	}
}

func TestLockQuotaEnforced(t *testing.T) {
	env := newEnvOpts(t, hw.DefaultConfig(), Config{}, func(a *KernelAttrs) {
		a.LockQuota = [4]int{0, 1, 0, 2}
	}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		if _, err := k.LoadSpace(e, true); err != nil {
			t.Fatalf("first locked space: %v", err)
		}
		if _, err := k.LoadSpace(e, true); err != ErrLockQuota {
			t.Fatalf("second locked space: %v, want ErrLockQuota", err)
		}
		sid := env.mustLoadSpace(e, false)
		for i := uint32(0); i < 2; i++ {
			env.mustMap(e, sid, MappingSpec{VA: 0x100_0000 + i*hw.PageSize, PFN: env.frame(), Locked: true})
		}
		err := k.LoadMapping(e, sid, MappingSpec{VA: 0x200_0000, PFN: env.frame(), Locked: true})
		if err != ErrLockQuota {
			t.Fatalf("third locked mapping: %v, want ErrLockQuota", err)
		}
	})
	env.run()
}

func TestMultiMappingConsistency(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		pfn := env.frame()
		recvSpace := env.mustLoadSpace(e, false)
		rtid := env.spawnThread(e, recvSpace, "receiver", 35, func(re *hw.Exec) {
			_, _ = k.WaitSignal(re)
		})
		env.mustMap(e, recvSpace, MappingSpec{VA: 0x5000_0000, PFN: pfn, Message: true, SignalThread: rtid})
		env.mustMap(e, env.boot.Space, MappingSpec{VA: 0x6000_0000, PFN: pfn, Writable: true, Message: true})
		e.Charge(hw.CyclesFromMicros(300))
		// Unloading the receiver's signal mapping must flush the sender's
		// writable mapping of the same page.
		if _, err := k.UnloadMapping(e, recvSpace, 0x5000_0000); err != nil {
			t.Fatalf("UnloadMapping: %v", err)
		}
		if _, ok := k.MappingInfo(env.boot.Space, 0x6000_0000); ok {
			t.Error("sender's writable mapping survived the signal mapping flush")
		}
	})
	env.run()
}

func TestKernelCacheEviction(t *testing.T) {
	cfg := Config{KernelSlots: 3}
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		k := env.k
		// Slot 1 is the SRM (locked). Load kernels until eviction.
		var ids []ObjID
		for i := 0; i < 4; i++ {
			kid, err := k.LoadKernel(e, KernelAttrs{Name: "app", Wb: env.wb})
			if err != nil {
				t.Fatalf("LoadKernel %d: %v", i, err)
			}
			ids = append(ids, kid)
		}
		// The first loaded app kernel must have been written back.
		if _, ok := k.lookupKernel(ids[0]); ok {
			t.Error("LRU kernel still loaded after overflow")
		}
		if _, ok := k.lookupKernel(ids[3]); !ok {
			t.Error("most recent kernel missing")
		}
	})
	env.run()
	if len(env.wb.kernels) != 2 {
		t.Fatalf("kernel writebacks = %d, want 2", len(env.wb.kernels))
	}
}

func TestSetThreadPriorityRequeues(t *testing.T) {
	hwCfg := hw.DefaultConfig()
	hwCfg.CPUsPerMPM = 1
	var order []string
	env := newEnvOpts(t, hwCfg, Config{}, nil, func(env *testEnv, e *hw.Exec) {
		k := env.k
		a := env.spawnThread(e, env.boot.Space, "a", 10, func(we *hw.Exec) {
			we.Charge(3000)
			order = append(order, "a")
		})
		env.spawnThread(e, env.boot.Space, "b", 20, func(we *hw.Exec) {
			we.Charge(3000)
			order = append(order, "b")
		})
		// Raise a above b before either runs (boot thread holds the CPU).
		if err := k.SetThreadPriority(e, a, 30); err != nil {
			t.Fatalf("SetThreadPriority: %v", err)
		}
		_, _ = k.WaitSignal(e) // release the CPU forever
	})
	env.run()
	if len(order) != 2 || order[0] != "a" {
		t.Fatalf("order = %v, want a first", order)
	}
}

func TestBlockResumeThread(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		n := 0
		// The worker must outlive several engine slice quanta so that
		// BlockThread catches it mid-run rather than already exited.
		tid := env.spawnThread(e, env.boot.Space, "w", 20, func(we *hw.Exec) {
			for i := 0; i < 10; i++ {
				we.Charge(50_000)
				n++
			}
		})
		e.Charge(3000)
		if err := k.BlockThread(e, tid); err != nil {
			t.Fatalf("BlockThread: %v", err)
		}
		blocked := n
		e.Charge(50_000)
		if n != blocked {
			t.Errorf("thread advanced while blocked: %d -> %d", blocked, n)
		}
		if err := k.ResumeThread(e, tid); err != nil {
			t.Fatalf("ResumeThread: %v", err)
		}
		for n < 10 {
			e.Charge(1000)
		}
	})
	env.run()
}

func TestUnloadMappingRangeAndInfo(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		sid := env.mustLoadSpace(e, false)
		base := uint32(0x4400_0000)
		for i := uint32(0); i < 6; i++ {
			env.mustMap(e, sid, MappingSpec{VA: base + i*hw.PageSize, PFN: env.frame(), Writable: true})
		}
		if st, ok := k.MappingInfo(sid, base); !ok || !st.Writable {
			t.Fatalf("MappingInfo = %+v, %v", st, ok)
		}
		// Unload the middle four (one hole is fine).
		if _, err := k.UnloadMapping(e, sid, base+2*hw.PageSize); err != nil {
			t.Fatal(err)
		}
		states, err := k.UnloadMappingRange(e, sid, base+hw.PageSize, 4*hw.PageSize)
		if err != nil {
			t.Fatalf("range unload: %v", err)
		}
		if len(states) != 3 { // pages 1, 3, 4 (2 already gone)
			t.Fatalf("range unloaded %d mappings", len(states))
		}
		if _, ok := k.MappingInfo(sid, base); !ok {
			t.Fatal("page 0 should survive")
		}
		if _, ok := k.MappingInfo(sid, base+5*hw.PageSize); !ok {
			t.Fatal("page 5 should survive")
		}
		for i := uint32(1); i < 5; i++ {
			if _, ok := k.MappingInfo(sid, base+i*hw.PageSize); ok {
				t.Fatalf("page %d still mapped", i)
			}
		}
	})
	env.run()
}

func TestMaxPriorityCeilingEnforced(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		kid, err := k.LoadKernel(e, KernelAttrs{Name: "capped", Wb: env.wb, MaxPrio: 12})
		if err != nil {
			t.Fatal(err)
		}
		sid := env.mustLoadSpace(e, false)
		if err := k.SetKernelSpace(e, kid, sid); err != nil {
			t.Fatal(err)
		}
		// A thread loaded by the capped kernel itself may not exceed 12.
		done := false
		env.spawnThread(e, sid, "capmain", 10, func(me *hw.Exec) {
			exec2 := env.m.MPMs[0].NewExec("hi", func(*hw.Exec) {})
			_, err := k.LoadThread(me, sid, ThreadState{Priority: 30, Exec: exec2}, false)
			if err != ErrBadPriority {
				t.Errorf("over-ceiling load: %v, want ErrBadPriority", err)
			}
			if _, err := k.LoadThread(me, sid, ThreadState{Priority: 12, Exec: exec2}, false); err != nil {
				t.Errorf("at-ceiling load: %v", err)
			}
			done = true
		})
		for !done {
			e.Charge(2000)
		}
		// Raising the ceiling via the modify call then succeeds.
		if err := k.SetKernelMaxPriority(e, kid, 40); err != nil {
			t.Fatal(err)
		}
	})
	env.run()
}

func TestSignalQueueOverflowDrops(t *testing.T) {
	cfg := Config{SignalQueueLimit: 3}
	env := newEnv(t, cfg, func(env *testEnv, e *hw.Exec) {
		k := env.k
		tid := env.spawnThread(e, env.boot.Space, "busy", 20, func(we *hw.Exec) {
			we.Charge(hw.CyclesFromMicros(50_000)) // never waiting
		})
		e.Charge(hw.CyclesFromMicros(200))
		for i := 0; i < 6; i++ {
			_ = k.PostSignal(e, tid, uint32(i))
		}
		if k.Stats.SignalsQueued != 3 {
			t.Errorf("queued = %d, want 3", k.Stats.SignalsQueued)
		}
		if k.Stats.SignalsDropped != 3 {
			t.Errorf("dropped = %d, want 3", k.Stats.SignalsDropped)
		}
	})
	env.run()
}

func TestDeviceSignalToUnloadedThreadIsDropped(t *testing.T) {
	env := newEnv(t, Config{}, func(env *testEnv, e *hw.Exec) {
		k := env.k
		tid := env.spawnThread(e, env.boot.Space, "w", 20, func(we *hw.Exec) {
			_, _ = k.WaitSignal(we)
		})
		e.Charge(hw.CyclesFromMicros(500))
		if _, err := k.UnloadThread(e, tid); err != nil {
			t.Fatal(err)
		}
		if k.RaiseDeviceSignal(tid, 1) {
			t.Fatal("device signal to unloaded thread delivered")
		}
	})
	env.run()
}
