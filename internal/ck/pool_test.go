package ck

import (
	"reflect"
	"testing"

	"vpp/internal/hw"
)

// TestPMapResetMatchesFresh: the whole fork-pool argument rests on one
// claim — a recycled pmap is indistinguishable from a freshly built
// one. Dirty a map thoroughly (inserts across buckets, removals on both
// the scrubbing and keeping paths, clock-hand motion) and require deep
// equality with newPMap afterwards, free-slot order included.
func TestPMapResetMatchesFresh(t *testing.T) {
	const slots, buckets = 64, 16
	p := newPMap(slots, buckets)
	var idxs []int32
	for i := 0; i < 48; i++ {
		idx, ok := p.insert(depKind(1+i%3), uint32(i*31), uint32(i), int32(i%7))
		if !ok {
			t.Fatalf("insert %d failed with %d slots", i, slots)
		}
		idxs = append(idxs, idx)
	}
	for i, idx := range idxs {
		switch i % 3 {
		case 0:
			p.remove(idx)
		case 1:
			p.removeKeep(idx)
		}
	}
	p.victim(func(int32, *depRecord) bool { return false }) // move the clock hand
	p.reset()
	if want := newPMap(slots, buckets); !reflect.DeepEqual(p, want) {
		t.Fatalf("reset pmap differs from a fresh one:\ngot  %+v\nwant %+v", p, want)
	}
}

// TestInstancePoolAdoptRecycle exercises the pool's bookkeeping through
// a take-miss, a fill, an adoption and a recycle.
func TestInstancePoolAdoptRecycle(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.MPMs = 3
	m := hw.NewMachine(cfg)

	pool := NewInstancePool()
	k0, err := pool.New(m.MPMs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Missed != 1 || s.Adopted != 0 {
		t.Fatalf("empty-pool New: stats %+v, want one miss", s)
	}

	pool.Fill(Config{}, 2)
	if s := pool.Stats(); s.Built != 2 || s.Idle != 2 {
		t.Fatalf("after Fill(2): stats %+v", s)
	}
	k1, err := pool.New(m.MPMs[1], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Adopted != 1 || s.Idle != 1 {
		t.Fatalf("pooled New: stats %+v, want one adoption", s)
	}
	adopted := k1.pm

	pool.Recycle(k0)
	if k0.pm != nil {
		t.Fatal("Recycle left the kernel holding its pmap")
	}
	if s := pool.Stats(); s.Recycled != 1 || s.Idle != 2 {
		t.Fatalf("after Recycle: stats %+v", s)
	}

	// A recycled pmap must come back out; dimensions must still match.
	k2, err := pool.New(m.MPMs[2], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if k2.pm == adopted {
		t.Fatal("adopted pmap handed out twice")
	}
	cfg2 := Config{}.withDefaults()
	if k2.pm.Capacity() != cfg2.MappingSlots {
		t.Fatalf("adopted pmap has %d slots, config wants %d", k2.pm.Capacity(), cfg2.MappingSlots)
	}
}

// TestPoolMismatchedShapeMisses: a pool holding only one shape must not
// hand its maps to a differently-sized configuration.
func TestPoolMismatchedShapeMisses(t *testing.T) {
	cfg := hw.DefaultConfig()
	m := hw.NewMachine(cfg)
	pool := NewInstancePool()
	pool.Fill(Config{}, 1)
	small := Config{MappingSlots: 128, PMapBuckets: 64}
	if _, err := pool.New(m.MPMs[0], small); err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Adopted != 0 || s.Missed != 1 || s.Idle != 1 {
		t.Fatalf("mismatched shape: stats %+v, want a miss with the pooled map untouched", s)
	}
}
