package ck

import (
	"fmt"

	"vpp/internal/hw"
)

// Stats counts Cache Kernel events for the evaluation harness.
type Stats struct {
	KernelLoads, KernelUnloads, KernelWritebacks uint64
	SpaceLoads, SpaceUnloads, SpaceWritebacks    uint64
	ThreadLoads, ThreadUnloads, ThreadWritebacks uint64
	MappingLoads, MappingUnloads                 uint64
	MappingWritebacks                            uint64

	Faults         uint64
	TrapsForwarded uint64
	CKCalls        uint64

	SignalsGenerated uint64
	SignalsFast      uint64 // delivered via reverse-TLB hit
	SignalsTwoStage  uint64 // delivered via pmap double lookup
	SignalsQueued    uint64
	SignalsDropped   uint64

	ContextSwitches uint64
	Preemptions     uint64
	QuotaDemotions  uint64

	// Fault-injection counters (internal/chaos).
	Crashes              uint64
	SignalsInjDropped    uint64
	SignalsInjDuplicated uint64
	WritebacksCorrupted  uint64
}

// SignalVerdict is a fault injector's decision about one signal
// delivery: lose the inter-processor notification, or deliver it twice.
type SignalVerdict struct {
	Drop bool
	Dup  bool
}

// Kernel is one Cache Kernel instance: the supervisor-mode object cache
// serving all application kernels of one MPM.
type Kernel struct {
	MPM *hw.MPM
	Cfg Config

	kernels *objCache[*KernelObj]
	spaces  *objCache[*SpaceObj]
	threads *objCache[*ThreadObj]
	pm      *pmap

	// pmVersion supports the non-blocking-synchronization style version
	// checks the reverse-TLB relies on (paper §4.1-4.2).
	pmVersion uint64

	spaceByHW map[*hw.Space]*SpaceObj
	// kernelBySpace maps a kernel's designated address space back to the
	// kernel, so code executing in that space acts with that kernel's
	// authority (trap handlers, fault handlers).
	kernelBySpace map[*SpaceObj]*KernelObj
	first         *KernelObj
	sched         *scheduler
	rtlbs         []*rtlb

	// inCalls counts Cache Kernel operations currently in flight on any
	// processor. Kernel calls yield at every cycle charge, so another
	// execution (or an external observer such as the simulation harness)
	// can run while a call is parked mid-mutation; the structural
	// invariants only hold between calls, and CheckInvariants uses this
	// counter to refuse to judge intermediate states.
	inCalls int

	// syscalls maps user-visible Cache Kernel call numbers (used by
	// code that is not linked against the Go API) to handlers.
	syscalls map[uint32]func(e *hw.Exec, args []uint32) (uint32, uint32)

	// Trace, when non-nil, receives coarse event notifications with the
	// current virtual time — used by cmd/cktrace to narrate the paper's
	// Figure 2 and Figure 3 scenarios.
	Trace func(event string, now uint64, detail string)

	// Epoch counts crash-reboots of this Cache Kernel instance. It is
	// never reset: together with the preserved slot generations it keeps
	// every pre-crash identifier invalid after recovery.
	Epoch uint64

	// SignalFault, when non-nil, may drop or duplicate each signal
	// delivery (internal/chaos). Nil costs nothing.
	SignalFault func(to ObjID, value uint32) SignalVerdict

	// WritebackFault, when non-nil, is consulted before each writeback
	// delivery to an application kernel; returning true corrupts the
	// writeback — the descriptor is reclaimed but its state never
	// reaches the owner (internal/chaos). Nil costs nothing.
	WritebackFault func(kind string, id ObjID) bool

	// OnDispatch, when non-nil, observes every thread dispatch (the
	// recovery experiment uses it to timestamp the first application
	// resume after a reboot). Nil costs nothing.
	OnDispatch func(id ObjID, execName string, now uint64)

	Stats Stats
}

// descriptor RAM accounted at boot, per Table 1 sizes.
func descriptorBytes(cfg Config) int {
	return cfg.KernelSlots*KernelObjBytes +
		cfg.SpaceSlots*SpaceObjBytes +
		cfg.ThreadSlots*ThreadObjBytes +
		cfg.MappingSlots*MappingObjBytes +
		cfg.PMapBuckets*4
}

// New creates a Cache Kernel for mpm, allocating its descriptor caches
// from the MPM's local RAM and installing itself as the supervisor.
func New(mpm *hw.MPM, cfg Config) (*Kernel, error) {
	return newKernel(mpm, cfg, nil)
}

// newKernel builds a Cache Kernel, adopting a pre-built pmap from pool
// when one matching the configuration is available. A pooled pmap is
// reset to the freshly-constructed state before it is handed out, so
// the two paths are indistinguishable to the kernel.
func newKernel(mpm *hw.MPM, cfg Config, pool *InstancePool) (*Kernel, error) {
	cfg = cfg.withDefaults()
	if !mpm.LocalRAM.Alloc(descriptorBytes(cfg)) {
		return nil, fmt.Errorf("ck: descriptor caches (%d bytes) exceed local RAM", descriptorBytes(cfg))
	}
	pm := pool.take(cfg.MappingSlots, cfg.PMapBuckets)
	if pm == nil {
		pm = newPMap(cfg.MappingSlots, cfg.PMapBuckets)
	}
	k := &Kernel{
		MPM:           mpm,
		Cfg:           cfg,
		kernels:       newObjCache[*KernelObj]("kernels", cfg.KernelSlots),
		spaces:        newObjCache[*SpaceObj]("spaces", cfg.SpaceSlots),
		threads:       newObjCache[*ThreadObj]("threads", cfg.ThreadSlots),
		pm:            pm,
		spaceByHW:     make(map[*hw.Space]*SpaceObj),
		kernelBySpace: make(map[*SpaceObj]*KernelObj),
		syscalls:      make(map[uint32]func(*hw.Exec, []uint32) (uint32, uint32)),
	}
	k.sched = newScheduler(k)
	for range mpm.CPUs {
		k.rtlbs = append(k.rtlbs, newRTLB(cfg.RTLBEntries))
	}
	mpm.Sup = k
	return k, nil
}

// enter charges the trap into the Cache Kernel for a directly invoked
// operation and returns the previous mode.
func (k *Kernel) enter(e *hw.Exec) hw.Mode {
	k.sanCheckAccess(e, "cache-kernel call")
	prev := e.Mode
	e.Mode = hw.ModeSupervisor
	k.inCalls++
	e.ChargeNoIntr(hw.CostTrapEntry)
	return prev
}

// exit charges the return from the Cache Kernel and restores mode.
// Every Cache Kernel operation funnels through here, so builds tagged
// ckinvariants verify the full dependency-model state on each return.
func (k *Kernel) exit(e *hw.Exec, prev hw.Mode) {
	// Leave the call before checking: a solo call still self-validates,
	// while calls parked mid-mutation on other processors suppress the
	// check (their intermediate states are legitimate — see CheckInvariants).
	k.inCalls--
	if invariantsEnabled {
		if err := k.CheckInvariants(); err != nil {
			panic("ckinvariants: " + err.Error())
		}
	}
	e.Mode = prev
	e.Charge(hw.CostTrapExit)
}

// callerKernel resolves the application kernel on whose behalf e runs:
// code executing in a kernel's designated address space acts as that
// kernel (the forwarded-handler case); otherwise the thread's owner.
func (k *Kernel) callerKernel(e *hw.Exec) (*KernelObj, error) {
	if so := k.spaceByHW[e.Space]; so != nil {
		if ko := k.kernelBySpace[so]; ko != nil {
			return ko, nil
		}
	}
	th, _ := e.User.(*ThreadObj)
	if th == nil || th.owner == nil {
		return nil, fmt.Errorf("ck: execution %q has no owning kernel", e.Name)
	}
	return th.owner, nil
}

// threadOf returns e's thread object, or nil for non-thread executions.
func (k *Kernel) threadOf(e *hw.Exec) *ThreadObj {
	th, _ := e.User.(*ThreadObj)
	return th
}

// lookupKernel validates a kernel object identifier.
func (k *Kernel) lookupKernel(id ObjID) (*KernelObj, bool) {
	if id.Type() != ObjKernel {
		return nil, false
	}
	ko, ok := k.kernels.get(int32(id.slot()), id.gen())
	return ko, ok
}

// lookupSpace validates an address-space identifier.
func (k *Kernel) lookupSpace(id ObjID) (*SpaceObj, bool) {
	if id.Type() != ObjSpace {
		return nil, false
	}
	so, ok := k.spaces.get(int32(id.slot()), id.gen())
	return so, ok
}

// lookupThread validates a thread identifier.
func (k *Kernel) lookupThread(id ObjID) (*ThreadObj, bool) {
	if id.Type() != ObjThread {
		return nil, false
	}
	to, ok := k.threads.get(int32(id.slot()), id.gen())
	return to, ok
}

// Loaded reports whether an identifier currently names a loaded object.
// Identifier failure is an ordinary caching-model event, so this query
// exists for observers (debuggers, tools) rather than kernels, which
// just retry.
func (k *Kernel) Loaded(id ObjID) bool {
	switch id.Type() {
	case ObjKernel:
		_, ok := k.lookupKernel(id)
		return ok
	case ObjSpace:
		_, ok := k.lookupSpace(id)
		return ok
	case ObjThread:
		_, ok := k.lookupThread(id)
		return ok
	}
	return false
}

// InFlight reports the number of Cache Kernel operations currently in
// flight on this instance's processors (calls parked mid-mutation at a
// charge point). Migration quiesces on it: a swap that starts while
// InFlight is zero observes every descriptor at rest. Blocked calls
// release the count while parked, so the gate cannot deadlock against
// threads waiting on signals.
func (k *Kernel) InFlight() int { return k.inCalls }

// CurrentThread reports the calling execution's loaded thread
// identifier, or zero for non-thread executions.
func (k *Kernel) CurrentThread(e *hw.Exec) ObjID {
	th := k.threadOf(e)
	if th == nil {
		return 0
	}
	if _, ok := k.threads.get(th.slot, th.id.gen()); !ok {
		return 0
	}
	return th.id
}

// FirstKernel reports the first (system resource manager) kernel object.
func (k *Kernel) FirstKernel() ObjID {
	if k.first == nil {
		return 0
	}
	return k.first.id
}

// trace emits an event to the Trace hook if installed.
func (k *Kernel) trace(e *hw.Exec, event, detail string) {
	if k.Trace != nil {
		var now uint64
		if e != nil {
			now = e.Now()
		}
		k.Trace(event, now, detail)
	}
}

// bumpVersion records a physical-memory-map mutation, invalidating
// reverse-TLB entries that cached derived state.
func (k *Kernel) bumpVersion() { k.pmVersion++ }

// RegisterSyscall installs a handler for a numbered Cache Kernel call
// reachable from raw trap instructions.
func (k *Kernel) RegisterSyscall(no uint32, fn func(e *hw.Exec, args []uint32) (uint32, uint32)) {
	k.syscalls[no] = fn
}

// --- hw.Supervisor implementation ---

// Syscall implements trap dispatch: a trap from a thread executing inside
// its application kernel's own address space is a Cache Kernel call;
// any other trap is forwarded to the kernel owning the current space
// (paper §2.3).
func (k *Kernel) Syscall(e *hw.Exec, no uint32, args []uint32) (uint32, uint32) {
	so := k.spaceByHW[e.Space]
	if so == nil {
		panic(fmt.Sprintf("ck: trap from %q in unknown space", e.Name))
	}
	owner := so.owner
	th := k.threadOf(e)
	if k.kernelBySpace[so] != nil {
		// Executing inside an application kernel's own address space:
		// the trap is a Cache Kernel call.
		k.Stats.CKCalls++
		if fn := k.syscalls[no]; fn != nil {
			return fn(e, args)
		}
		return ^uint32(0), 0
	}
	// Forward to the owning application kernel.
	k.Stats.TrapsForwarded++
	if owner.attrs.Trap == nil {
		return ^uint32(0), 0
	}
	var tid ObjID
	if th != nil {
		tid = th.id
	}
	e.ChargeNoIntr(costTrapForward)
	prevSpace, prevMode := e.Space, e.Mode
	e.Space = owner.space.hw
	e.Mode = hw.ModeKernel
	r0, r1 := owner.attrs.Trap(e, tid, no, args)
	e.ChargeNoIntr(costTrapReturn)
	e.Space = k.currentSpaceFor(e, prevSpace)
	e.Mode = prevMode
	return r0, r1
}

// currentSpaceFor resolves the space an execution should return to after
// kernel-mode processing. Normally that is the saved space, but the
// thread may have been unloaded and reloaded while blocked inside the
// handler (sleep, swap): then its descriptor — and possibly its address
// space object — are new, and the hardware context is rebuilt from the
// current thread descriptor, exactly as a real resume would reload the
// translation root from the (new) descriptor.
func (k *Kernel) currentSpaceFor(e *hw.Exec, saved *hw.Space) *hw.Space {
	th := k.threadOf(e)
	if th == nil {
		return saved
	}
	if _, ok := k.threads.get(th.slot, th.id.gen()); !ok {
		return saved
	}
	return th.space.hw
}

// Interrupt handles latched CPU interrupt causes.
func (k *Kernel) Interrupt(e *hw.Exec, pending uint32) {
	if pending&pendingResched != 0 {
		k.sched.onResched(e)
	}
}

// TimerTick fires in engine context when a CPU's slice timer expires.
func (k *Kernel) TimerTick(c *hw.CPU) {
	c.Post(pendingResched)
}

// Exited handles an execution whose body returned: its thread descriptor
// is released and the CPU rescheduled.
//
//ckvet:allow chargepath the exiting context is gone; reclaim charges on the reclaim path and dispatchNext charges the next thread
func (k *Kernel) Exited(e *hw.Exec) {
	k.sanCheckAccess(e, "thread exit reclaim")
	// Not a trapped call, but the reclaim below mutates across charge
	// points all the same: count it in flight.
	k.inCalls++
	defer func() { k.inCalls-- }()
	cpu := e.CPU
	if th := k.threadOf(e); th != nil {
		if _, ok := k.threads.get(th.slot, th.id.gen()); ok {
			k.reclaimThread(e, th, false, true)
		}
	}
	e.CPU = nil
	// The hardware freed the CPU before calling this hook, and the
	// reclaim above charges cycles (signal-mapping flushes) — yield
	// points at which another processor's scheduler may dispatch onto
	// the freed CPU. Only fill it if it is still idle.
	if cpu != nil && cpu.Cur == nil {
		k.sched.dispatchNext(cpu)
	}
}
