package ck

import (
	"fmt"

	"vpp/internal/hw"
	"vpp/internal/pagetable"
)

// Snapshot support, two tiers.
//
// The read-only tier (Snap, below) is the charge-free inspection view
// the external correctness oracles use.
//
// The structural tier (State / CaptureState / RestoreState / Resume)
// is the mutable half of whole-machine snapshot/fork: it captures the
// complete pure-data state of a Cache Kernel instance — every cache's
// exact slot generations, lock bits, LRU and free-list order, every
// loaded descriptor's fields, the dependency-record map, the reverse
// TLBs, statistics, epoch and map version — such that a fresh instance
// restored from it is indistinguishable from the original: it mints
// the same future identifiers, evicts the same victims, and reports
// the same counters. What it deliberately cannot capture is execution:
// a parked coroutine's stack is opaque to the host, so capture refuses
// (ErrSnapshotBusy) while any call is in flight or any thread
// descriptor is loaded; mid-execution cuts belong to the replay fork
// tier (internal/snap), which rebuilds and re-runs to the cut instead.

// String names a thread scheduling state for snapshots and diagnostics.
func (s threadState) String() string {
	switch s {
	case threadReady:
		return "ready"
	case threadRunning:
		return "running"
	case threadWaiting:
		return "waiting"
	case threadSuspended:
		return "suspended"
	}
	return "invalid"
}

// KernelSnap is the snapshot of one loaded kernel descriptor.
type KernelSnap struct {
	ID     ObjID
	Name   string
	Locked bool
	// Spaces and Threads count this kernel's loaded dependents.
	Spaces  int
	Threads int
}

// SpaceSnap is the snapshot of one loaded space descriptor.
type SpaceSnap struct {
	ID       ObjID
	Owner    ObjID
	Mappings int
	Threads  int
	Locked   bool
}

// ThreadSnap is the snapshot of one loaded thread descriptor.
type ThreadSnap struct {
	ID       ObjID
	Owner    ObjID
	Space    ObjID
	Priority int
	State    string
	// ExecName and ExecFinished describe the machine execution context
	// bound to the descriptor (the persistent coroutine).
	ExecName     string
	ExecFinished bool
	// SigRecords counts signal-delivery dependency records naming this
	// thread; SigQueued counts queued address-valued signals.
	SigRecords int
	SigQueued  int
	Locked     bool
}

// Snap is a consistent view of one Cache Kernel instance's descriptor
// caches at a quiescent point.
type Snap struct {
	Epoch   uint64
	Kernels []KernelSnap
	Spaces  []SpaceSnap
	Threads []ThreadSnap
	// MappingsLoaded totals loaded physical-to-virtual records across
	// all loaded spaces (signal registrations and deferred-copy records
	// are not mappings and are excluded).
	MappingsLoaded int
}

// Snapshot captures every loaded descriptor. The caller must ensure the
// instance is quiescent enough for the answer to be meaningful (no
// descriptor operation mid-flight on another CPU); the capture itself
// performs no simulated work and is safe at any host point.
func (k *Kernel) Snapshot() Snap {
	var s Snap
	s.Epoch = k.Epoch
	k.kernels.forEach(func(idx int32, ko *KernelObj) bool {
		s.Kernels = append(s.Kernels, KernelSnap{
			ID:      ko.id,
			Name:    ko.attrs.Name,
			Locked:  k.kernels.lockedSlot(idx),
			Spaces:  len(ko.spaces),
			Threads: len(ko.threads),
		})
		return true
	})
	k.spaces.forEach(func(idx int32, so *SpaceObj) bool {
		s.Spaces = append(s.Spaces, SpaceSnap{
			ID:       so.id,
			Owner:    so.owner.id,
			Mappings: so.mappings,
			Threads:  len(so.threads),
			Locked:   k.spaces.lockedSlot(idx),
		})
		s.MappingsLoaded += so.mappings
		return true
	})
	k.threads.forEach(func(idx int32, to *ThreadObj) bool {
		ts := ThreadSnap{
			ID:         to.id,
			Owner:      to.owner.id,
			Space:      to.space.id,
			Priority:   to.prio,
			State:      to.state.String(),
			SigRecords: len(to.sigRecords),
			SigQueued:  len(to.sigQueue),
			Locked:     k.threads.lockedSlot(idx),
		}
		if to.exec != nil {
			ts.ExecName = to.exec.Name
			ts.ExecFinished = to.exec.Finished()
		}
		s.Threads = append(s.Threads, ts)
		return true
	})
	return s
}

// ErrSnapshotBusy is returned by CaptureState while the instance has
// execution state a structural snapshot cannot carry: a Cache Kernel
// call parked mid-mutation at a charge point, or a loaded thread
// descriptor (whose coroutine stack the host cannot serialize). The
// caller either drains the machine first or uses the replay fork tier.
var ErrSnapshotBusy = fmt.Errorf("ck: snapshot refused: execution state in flight")

func errShape(cache, what string, got, want int) error {
	return fmt.Errorf("ck: %s cache restore: %s mismatch (%d vs %d)", cache, what, got, want)
}

// KernelRec is one loaded kernel descriptor's captured state. Handler
// closures (Trap/Fault/Wb) are code bound to the capturing process and
// are re-supplied at restore time via the bind callback.
type KernelRec struct {
	Slot        int32
	Name        string
	MaxPrio     int
	CPUShare    []int
	LockQuota   [4]int
	AttrsLocked bool
	OwnerSlot   int32 // kernel-cache slot of the owning kernel (self for the first)
	SpaceSlot   int32 // space-cache slot of the designated space, -1 if none
	Access      [pageGroups / 4]byte
	Usage       []uint64
	WindowStart uint64
	OverQuota   []bool
	LockedCount [4]int
}

// PTERec is one captured page-table entry (referenced/modified bits
// included in the PTE value).
type PTERec struct {
	VA  uint32
	PTE pagetable.PTE
}

// SpaceRec is one loaded space descriptor's captured state, including
// its full translation tree.
type SpaceRec struct {
	Slot      int32
	OwnerSlot int32
	Mappings  int
	PTEs      []PTERec
}

// DepRec mirrors one used dependency record of the physical memory
// map, tagged with its pool slot.
type DepRec struct {
	Slot int32
	Key  uint32
	Dep  uint32
	Ctx  uint32
	Next int32
}

// BucketHead is one non-empty hash chain: bucket index and the slot of
// its first record.
type BucketHead struct {
	Bucket int32
	Head   int32
}

// PMapState is the captured physical memory map. The pool is sparse at
// any quiescent point, so only used records and non-empty hash chains
// are stored; the free stack — whose exact order decides every future
// allocation — is canonical-prefix compressed: a fresh pool's stack is
// [n-1, n-2, ..., 0], and a run leaves that sequence truncated to
// FreeCanon entries plus an explicitly recorded reclaimed tail.
type PMapState struct {
	NRecs     int32 // record-pool capacity (geometry check)
	NBuckets  int32 // hash-bucket count (geometry check)
	Recs      []DepRec
	FreeCanon int32
	FreeTail  []int32
	Heads     []BucketHead
	Live      int
	Hand      int32
	Reloads   uint64
}

// RTLBReceiverState is one cached signal-delivery target.
type RTLBReceiverState struct {
	ThreadSlot int32
	Gen        uint32
	VA         uint32
}

// RTLBEntryState is one captured reverse-TLB entry.
type RTLBEntryState struct {
	Valid     bool
	PFN       uint32
	Version   uint64
	Receivers []RTLBReceiverState
}

// RTLBState is one processor's captured reverse TLB.
type RTLBState struct {
	Entries []RTLBEntryState
	Next    int
	Hits    uint64
	Misses  uint64
}

// State is the complete structural state of one Cache Kernel instance
// at a quiescent point. It is pure data: restoring it into a fresh
// instance (RestoreState) reproduces every future allocation,
// eviction and identifier the original would have produced.
type State struct {
	// Cfg is the instance's (defaults-applied) configuration; a fork
	// builds its fresh instance from it before restoring.
	Cfg       Config
	Epoch     uint64
	PMVersion uint64
	Stats     Stats
	FirstSlot int32 // -1 when not booted

	Kernels    CacheShape
	KernelRecs []KernelRec // loaded kernels, LRU order
	Spaces     CacheShape
	SpaceRecs  []SpaceRec // loaded spaces, LRU order
	// Threads carries shape only (generations, free-list order): a
	// quiescent instance has no loaded thread descriptors, but the
	// per-slot generations decide every future thread identifier.
	Threads CacheShape

	PMap  PMapState
	RTLBs []RTLBState
}

// CaptureState captures the instance's structural state. It refuses
// with ErrSnapshotBusy while any Cache Kernel call is in flight or any
// thread descriptor is loaded — both imply live coroutines whose
// stacks cannot be serialized; see the package comment for the replay
// alternative.
func (k *Kernel) CaptureState() (*State, error) {
	if k.inCalls != 0 {
		return nil, fmt.Errorf("%w: %d call(s) parked mid-mutation", ErrSnapshotBusy, k.inCalls)
	}
	if n := k.threads.Loaded(); n != 0 {
		return nil, fmt.Errorf("%w: %d loaded thread descriptor(s)", ErrSnapshotBusy, n)
	}
	st := &State{
		Cfg:       k.Cfg,
		Epoch:     k.Epoch,
		PMVersion: k.pmVersion,
		Stats:     k.Stats,
		FirstSlot: -1,
		Kernels:   k.kernels.shape(),
		Spaces:    k.spaces.shape(),
		Threads:   k.threads.shape(),
	}
	if k.first != nil {
		st.FirstSlot = k.first.slot
	}
	k.kernels.forEach(func(idx int32, ko *KernelObj) bool {
		rec := KernelRec{
			Slot:        idx,
			Name:        ko.attrs.Name,
			MaxPrio:     ko.attrs.MaxPrio,
			CPUShare:    append([]int(nil), ko.attrs.CPUShare...),
			LockQuota:   ko.attrs.LockQuota,
			AttrsLocked: ko.attrs.Locked,
			OwnerSlot:   ko.owner.slot,
			SpaceSlot:   -1,
			Access:      ko.access,
			Usage:       append([]uint64(nil), ko.usage...),
			WindowStart: ko.windowStart,
			OverQuota:   append([]bool(nil), ko.overQuota...),
			LockedCount: ko.lockedCount,
		}
		if ko.space != nil {
			rec.SpaceSlot = ko.space.slot
		}
		st.KernelRecs = append(st.KernelRecs, rec)
		return true
	})
	k.spaces.forEach(func(idx int32, so *SpaceObj) bool {
		rec := SpaceRec{Slot: idx, OwnerSlot: so.owner.slot, Mappings: so.mappings}
		so.hw.Table.Walk(func(va uint32, pte pagetable.PTE) bool {
			rec.PTEs = append(rec.PTEs, PTERec{VA: va, PTE: pte})
			return true
		})
		st.SpaceRecs = append(st.SpaceRecs, rec)
		return true
	})
	st.PMap = PMapState{
		NRecs:    int32(len(k.pm.recs)),
		NBuckets: int32(len(k.pm.buckets)),
		Live:     k.pm.live,
		Hand:     k.pm.hand,
		Reloads:  k.pm.reloads,
	}
	for i, used := range k.pm.used {
		if !used {
			continue
		}
		r := k.pm.recs[i]
		st.PMap.Recs = append(st.PMap.Recs,
			DepRec{Slot: int32(i), Key: r.key, Dep: r.dep, Ctx: r.ctx, Next: r.next})
	}
	n := len(k.pm.recs)
	canon := 0
	for canon < len(k.pm.free) && k.pm.free[canon] == int32(n-1-canon) {
		canon++
	}
	st.PMap.FreeCanon = int32(canon)
	st.PMap.FreeTail = append([]int32(nil), k.pm.free[canon:]...)
	for b, head := range k.pm.buckets {
		if head >= 0 {
			st.PMap.Heads = append(st.PMap.Heads, BucketHead{Bucket: int32(b), Head: head})
		}
	}
	for _, r := range k.rtlbs {
		rs := RTLBState{Entries: make([]RTLBEntryState, len(r.entries)), Next: r.next, Hits: r.hits, Misses: r.misses}
		for i, e := range r.entries {
			es := RTLBEntryState{Valid: e.valid, PFN: e.pfn, Version: e.version}
			for _, rcv := range e.receivers {
				es.Receivers = append(es.Receivers, RTLBReceiverState{ThreadSlot: rcv.threadSlot, Gen: rcv.gen, VA: rcv.va})
			}
			rs.Entries[i] = es
		}
		st.RTLBs = append(st.RTLBs, rs)
	}
	return st, nil
}

// RestoreState overwrites a freshly created (never-booted) instance
// with a captured state. bind re-supplies each kernel's handler
// closures by name — handlers are code referencing the restoring
// process's own objects and cannot ride in the State; the structural
// attrs fields (MaxPrio, CPUShare, LockQuota, Locked) are taken from
// the capture regardless of what bind returns.
func (k *Kernel) RestoreState(st *State, bind func(name string) KernelAttrs) error {
	if k.first != nil || k.kernels.Loaded() != 0 || k.spaces.Loaded() != 0 || k.threads.Loaded() != 0 {
		return fmt.Errorf("ck: RestoreState on a non-fresh instance")
	}
	kernelBySlot := make(map[int32]*KernelRec, len(st.KernelRecs))
	for i := range st.KernelRecs {
		kernelBySlot[st.KernelRecs[i].Slot] = &st.KernelRecs[i]
	}
	spaceBySlot := make(map[int32]*SpaceRec, len(st.SpaceRecs))
	for i := range st.SpaceRecs {
		spaceBySlot[st.SpaceRecs[i].Slot] = &st.SpaceRecs[i]
	}
	// Pass 1: rebuild the kernel cache; owner/space links need every
	// object to exist first and are wired in pass 3.
	err := k.kernels.restoreShape(st.Kernels, func(slot int32) (*KernelObj, error) {
		rec := kernelBySlot[slot]
		if rec == nil {
			return nil, fmt.Errorf("ck: restore: loaded kernel slot %d has no record", slot)
		}
		attrs := KernelAttrs{}
		if bind != nil {
			attrs = bind(rec.Name)
		}
		attrs.Name = rec.Name
		attrs.MaxPrio = rec.MaxPrio
		attrs.CPUShare = append([]int(nil), rec.CPUShare...)
		attrs.LockQuota = rec.LockQuota
		attrs.Locked = rec.AttrsLocked
		ko := &KernelObj{
			id:          makeID(ObjKernel, st.Kernels.Gens[slot], int(slot)),
			slot:        slot,
			attrs:       attrs,
			access:      rec.Access,
			usage:       append([]uint64(nil), rec.Usage...),
			windowStart: rec.WindowStart,
			overQuota:   append([]bool(nil), rec.OverQuota...),
			lockedCount: rec.LockedCount,
			spaces:      make(map[int32]*SpaceObj),
			threads:     make(map[int32]*ThreadObj),
		}
		return ko, nil
	})
	if err != nil {
		return err
	}
	// Pass 2: rebuild the space cache, including each space's
	// translation tree (page tables re-allocate from local RAM; the
	// machine-level restore pins the allocator's accounting afterward).
	err = k.spaces.restoreShape(st.Spaces, func(slot int32) (*SpaceObj, error) {
		rec := spaceBySlot[slot]
		if rec == nil {
			return nil, fmt.Errorf("ck: restore: loaded space slot %d has no record", slot)
		}
		owner, ok := k.kernels.peek(rec.OwnerSlot)
		if !ok {
			return nil, fmt.Errorf("ck: restore: space slot %d names unloaded owner slot %d", slot, rec.OwnerSlot)
		}
		tbl, terr := pagetable.New(k.MPM.LocalRAM)
		if terr != nil {
			return nil, ErrNoMemory
		}
		for _, pe := range rec.PTEs {
			if terr := tbl.Insert(pe.VA, pe.PTE); terr != nil {
				return nil, fmt.Errorf("ck: restore: space slot %d: %w", slot, terr)
			}
		}
		so := &SpaceObj{
			id:       makeID(ObjSpace, st.Spaces.Gens[slot], int(slot)),
			slot:     slot,
			owner:    owner,
			hw:       &hw.Space{Table: tbl, ASID: uint16(slot) + 1},
			mappings: rec.Mappings,
			threads:  make(map[int32]*ThreadObj),
		}
		k.spaceByHW[so.hw] = so
		owner.spaces[slot] = so
		return so, nil
	})
	if err != nil {
		return err
	}
	// Pass 3: kernel owner and designated-space links.
	for i := range st.KernelRecs {
		rec := &st.KernelRecs[i]
		ko, ok := k.kernels.peek(rec.Slot)
		if !ok {
			return fmt.Errorf("ck: restore: kernel record for free slot %d", rec.Slot)
		}
		owner, ok := k.kernels.peek(rec.OwnerSlot)
		if !ok {
			return fmt.Errorf("ck: restore: kernel slot %d names unloaded owner slot %d", rec.Slot, rec.OwnerSlot)
		}
		ko.owner = owner
		if rec.SpaceSlot >= 0 {
			so, ok := k.spaces.peek(rec.SpaceSlot)
			if !ok {
				return fmt.Errorf("ck: restore: kernel slot %d names unloaded space slot %d", rec.Slot, rec.SpaceSlot)
			}
			ko.space = so
			k.kernelBySpace[so] = ko
		}
	}
	// Threads: shape only — the capture precondition guarantees no
	// loaded slots, but the generations decide future identifiers.
	err = k.threads.restoreShape(st.Threads, func(slot int32) (*ThreadObj, error) {
		return nil, fmt.Errorf("ck: restore: captured state has a loaded thread slot %d", slot)
	})
	if err != nil {
		return err
	}
	if int(st.PMap.NRecs) != len(k.pm.recs) || int(st.PMap.NBuckets) != len(k.pm.buckets) {
		return fmt.Errorf("ck: restore: pmap geometry mismatch (%d/%d recs, %d/%d buckets)",
			st.PMap.NRecs, len(k.pm.recs), st.PMap.NBuckets, len(k.pm.buckets))
	}
	// The instance is fresh: every record zero, every bucket empty, the
	// free stack full-canonical. Only the capture's deviations apply.
	for _, r := range st.PMap.Recs {
		if r.Slot < 0 || int(r.Slot) >= len(k.pm.recs) {
			return fmt.Errorf("ck: restore: pmap record slot %d out of range", r.Slot)
		}
		k.pm.recs[r.Slot] = depRecord{key: r.Key, dep: r.Dep, ctx: r.Ctx, next: r.Next}
		k.pm.used[r.Slot] = true
	}
	if int(st.PMap.FreeCanon) > len(k.pm.free) {
		return fmt.Errorf("ck: restore: pmap free-stack prefix %d exceeds pool %d", st.PMap.FreeCanon, len(k.pm.free))
	}
	k.pm.free = append(k.pm.free[:st.PMap.FreeCanon], st.PMap.FreeTail...)
	for _, h := range st.PMap.Heads {
		if h.Bucket < 0 || int(h.Bucket) >= len(k.pm.buckets) {
			return fmt.Errorf("ck: restore: pmap bucket %d out of range", h.Bucket)
		}
		k.pm.buckets[h.Bucket] = h.Head
	}
	k.pm.live = st.PMap.Live
	k.pm.hand = st.PMap.Hand
	k.pm.reloads = st.PMap.Reloads
	if len(st.RTLBs) != len(k.rtlbs) {
		return fmt.Errorf("ck: restore: %d reverse TLBs into %d processors", len(st.RTLBs), len(k.rtlbs))
	}
	for i, rs := range st.RTLBs {
		r := k.rtlbs[i]
		if len(rs.Entries) != len(r.entries) {
			return fmt.Errorf("ck: restore: reverse TLB %d geometry mismatch", i)
		}
		for j, es := range rs.Entries {
			e := rtlbEntry{valid: es.Valid, pfn: es.PFN, version: es.Version}
			for _, rcv := range es.Receivers {
				e.receivers = append(e.receivers, rtlbReceiver{threadSlot: rcv.ThreadSlot, gen: rcv.Gen, va: rcv.VA})
			}
			r.entries[j] = e
		}
		r.next = rs.Next
		r.hits = rs.Hits
		r.misses = rs.Misses
	}
	if st.FirstSlot >= 0 {
		first, ok := k.kernels.peek(st.FirstSlot)
		if !ok {
			return fmt.Errorf("ck: restore: first-kernel slot %d not loaded", st.FirstSlot)
		}
		k.first = first
	}
	k.Epoch = st.Epoch
	k.pmVersion = st.PMVersion
	k.Stats = st.Stats
	return nil
}

// Resume creates and dispatches a new thread of the first kernel,
// running body in the first kernel's designated address space. It is
// how continuation work enters a machine at a quiescent point — both a
// freshly booted parent and a fork restored from its snapshot inject
// the identical continuation this way, which is what makes the two
// runs comparable instruction for instruction.
func (k *Kernel) Resume(name string, prio int, body func(*hw.Exec)) (ObjID, error) {
	if k.first == nil {
		return 0, fmt.Errorf("ck: Resume before boot/restore")
	}
	ko := k.first
	if ko.space == nil {
		return 0, ErrNoKernelSpace
	}
	exec := k.MPM.NewExec(name, body)
	to, err := k.newThreadObj(nil, ko, ko.space, ThreadState{Priority: prio, Exec: exec})
	if err != nil {
		return 0, err
	}
	k.sched.dispatch(k.MPM.CPUs[0], to)
	return to.id, nil
}
