package ck

// Snapshot support for external correctness oracles (internal/simtest):
// a charge-free, read-only view of every loaded descriptor, in
// deterministic LRU order. Like CheckInvariants it models the
// inspection port a development Cache Kernel would expose over the
// debugger channel, so it takes no Exec and charges nothing.

// String names a thread scheduling state for snapshots and diagnostics.
func (s threadState) String() string {
	switch s {
	case threadReady:
		return "ready"
	case threadRunning:
		return "running"
	case threadWaiting:
		return "waiting"
	case threadSuspended:
		return "suspended"
	}
	return "invalid"
}

// KernelSnap is the snapshot of one loaded kernel descriptor.
type KernelSnap struct {
	ID     ObjID
	Name   string
	Locked bool
	// Spaces and Threads count this kernel's loaded dependents.
	Spaces  int
	Threads int
}

// SpaceSnap is the snapshot of one loaded space descriptor.
type SpaceSnap struct {
	ID       ObjID
	Owner    ObjID
	Mappings int
	Threads  int
	Locked   bool
}

// ThreadSnap is the snapshot of one loaded thread descriptor.
type ThreadSnap struct {
	ID       ObjID
	Owner    ObjID
	Space    ObjID
	Priority int
	State    string
	// ExecName and ExecFinished describe the machine execution context
	// bound to the descriptor (the persistent coroutine).
	ExecName     string
	ExecFinished bool
	// SigRecords counts signal-delivery dependency records naming this
	// thread; SigQueued counts queued address-valued signals.
	SigRecords int
	SigQueued  int
	Locked     bool
}

// Snap is a consistent view of one Cache Kernel instance's descriptor
// caches at a quiescent point.
type Snap struct {
	Epoch   uint64
	Kernels []KernelSnap
	Spaces  []SpaceSnap
	Threads []ThreadSnap
	// MappingsLoaded totals loaded physical-to-virtual records across
	// all loaded spaces (signal registrations and deferred-copy records
	// are not mappings and are excluded).
	MappingsLoaded int
}

// Snapshot captures every loaded descriptor. The caller must ensure the
// instance is quiescent enough for the answer to be meaningful (no
// descriptor operation mid-flight on another CPU); the capture itself
// performs no simulated work and is safe at any host point.
func (k *Kernel) Snapshot() Snap {
	var s Snap
	s.Epoch = k.Epoch
	k.kernels.forEach(func(idx int32, ko *KernelObj) bool {
		s.Kernels = append(s.Kernels, KernelSnap{
			ID:      ko.id,
			Name:    ko.attrs.Name,
			Locked:  k.kernels.lockedSlot(idx),
			Spaces:  len(ko.spaces),
			Threads: len(ko.threads),
		})
		return true
	})
	k.spaces.forEach(func(idx int32, so *SpaceObj) bool {
		s.Spaces = append(s.Spaces, SpaceSnap{
			ID:       so.id,
			Owner:    so.owner.id,
			Mappings: so.mappings,
			Threads:  len(so.threads),
			Locked:   k.spaces.lockedSlot(idx),
		})
		s.MappingsLoaded += so.mappings
		return true
	})
	k.threads.forEach(func(idx int32, to *ThreadObj) bool {
		ts := ThreadSnap{
			ID:         to.id,
			Owner:      to.owner.id,
			Space:      to.space.id,
			Priority:   to.prio,
			State:      to.state.String(),
			SigRecords: len(to.sigRecords),
			SigQueued:  len(to.sigQueue),
			Locked:     k.threads.lockedSlot(idx),
		}
		if to.exec != nil {
			ts.ExecName = to.exec.Name
			ts.ExecFinished = to.exec.Finished()
		}
		s.Threads = append(s.Threads, ts)
		return true
	})
	return s
}
