package ck

// rtlb is the per-processor reverse TLB: it caches, per physical frame,
// the receiver set computed by the two-stage dependency-record lookup so
// the common-case signal delivery avoids it (paper §4.1). Entries carry
// the physical-memory-map version at fill time; any map mutation bumps
// the version and implicitly invalidates them — the same version-based
// validation the paper's non-blocking synchronization provides.
type rtlb struct {
	entries []rtlbEntry
	next    int
	hits    uint64
	misses  uint64
}

type rtlbEntry struct {
	valid     bool
	pfn       uint32
	version   uint64
	receivers []rtlbReceiver
}

// rtlbReceiver is one cached delivery target.
type rtlbReceiver struct {
	threadSlot int32
	gen        uint32
	va         uint32 // receiver's virtual page address for the frame
}

func newRTLB(n int) *rtlb {
	if n <= 0 {
		return &rtlb{} // disabled: every lookup misses
	}
	return &rtlb{entries: make([]rtlbEntry, n)}
}

// lookup returns the cached receiver set for pfn if present and current.
func (r *rtlb) lookup(pfn uint32, version uint64) ([]rtlbReceiver, bool) {
	for i := range r.entries {
		e := &r.entries[i]
		if e.valid && e.pfn == pfn {
			if e.version == version {
				r.hits++
				return e.receivers, true
			}
			e.valid = false
		}
	}
	r.misses++
	return nil, false
}

// fill caches a computed receiver set, round-robin replacing.
func (r *rtlb) fill(pfn uint32, version uint64, recv []rtlbReceiver) {
	if len(r.entries) == 0 {
		return
	}
	r.entries[r.next] = rtlbEntry{valid: true, pfn: pfn, version: version, receivers: recv}
	r.next = (r.next + 1) % len(r.entries)
}

// stats reports hit/miss counts.
func (r *rtlb) stats() (hits, misses uint64) { return r.hits, r.misses }
