package ck

// Table-driven eviction/writeback/reload tests: one case per descriptor
// kind (kernel, space, thread, mapping). Each case fills a deliberately
// small cache until the Cache Kernel must evict, asserts the victim's
// state reached the owning kernel's writeback channel, reloads the
// descriptor from exactly that written-back state, and checks the
// round trip — new identifier, same behavior (the caching model's
// load/writeback contract, paper §2.3).

import (
	"testing"

	"vpp/internal/hw"
)

func TestDescriptorEvictionWritebackReload(t *testing.T) {
	cases := []struct {
		kind string
		cfg  Config
		hw   func(*hw.Config)
		body func(t *testing.T, env *testEnv, e *hw.Exec)
	}{
		{
			kind: "kernel",
			cfg:  Config{KernelSlots: 2}, // srm + one app kernel
			body: func(t *testing.T, env *testEnv, e *hw.Exec) {
				k := env.k
				attrs := KernelAttrs{Name: "alpha", Wb: env.wb}
				a, err := k.LoadKernel(e, attrs)
				if err != nil {
					t.Fatalf("LoadKernel alpha: %v", err)
				}
				// A second kernel overflows the cache and evicts alpha.
				if _, err := k.LoadKernel(e, KernelAttrs{Name: "beta", Wb: env.wb}); err != nil {
					t.Fatalf("LoadKernel beta: %v", err)
				}
				if len(env.wb.kernels) != 1 || env.wb.kernels[0] != a {
					t.Fatalf("kernel writebacks = %v, want [%v]", env.wb.kernels, a)
				}
				if _, ok := k.lookupKernel(a); ok {
					t.Fatal("evicted kernel still loaded")
				}
				// Reload from the written-back attrs: a fresh identifier
				// (identities never survive reload), but a live, usable
				// descriptor.
				a2, err := k.LoadKernel(e, attrs)
				if err != nil {
					t.Fatalf("reload alpha: %v", err)
				}
				if a2 == a {
					t.Fatal("reloaded kernel reused its old identifier")
				}
				if err := k.SetKernelMaxPriority(e, a2, 15); err != nil {
					t.Fatalf("SetKernelMaxPriority on reloaded kernel: %v", err)
				}
			},
		},
		{
			kind: "space",
			cfg:  Config{SpaceSlots: 2}, // boot space + one
			body: func(t *testing.T, env *testEnv, e *hw.Exec) {
				k := env.k
				s1 := env.mustLoadSpace(e, false)
				specs := []MappingSpec{
					{VA: 0x4000_0000, PFN: env.frame(), Writable: true, Cachable: true},
					{VA: 0x4000_1000, PFN: env.frame(), Cachable: true},
					{VA: 0x4000_2000, PFN: env.frame(), Writable: true},
				}
				for _, sp := range specs {
					env.mustMap(e, s1, sp)
				}
				// The eviction victim cannot be the caller's space, so
				// loading a second space deterministically evicts s1 —
				// mappings written back first, then the space (§4.2).
				s2 := env.mustLoadSpace(e, false)
				if got := env.wb.spaces; len(got) != 1 || got[0] != s1 {
					t.Fatalf("space writebacks = %v, want [%v]", got, s1)
				}
				if len(env.wb.mappings) != len(specs) {
					t.Fatalf("mapping writebacks = %d, want %d", len(env.wb.mappings), len(specs))
				}
				for _, ev := range env.wb.order {
					if ev == "space" {
						break
					}
					if ev != "mapping" {
						t.Fatalf("writeback order %v: %q before the space", env.wb.order, ev)
					}
				}
				// Reload: new space, repopulated from the written-back
				// mapping states.
				if err := k.UnloadSpace(e, s2); err != nil {
					t.Fatalf("UnloadSpace s2: %v", err)
				}
				s3 := env.mustLoadSpace(e, false)
				if s3 == s1 {
					t.Fatal("reloaded space reused its old identifier")
				}
				for _, st := range env.wb.mappings {
					env.mustMap(e, s3, MappingSpec{
						VA: st.VA, PFN: st.PFN,
						Writable: st.Writable, Cachable: true,
					})
				}
				for _, sp := range specs {
					got, ok := k.MappingInfo(s3, sp.VA)
					if !ok {
						t.Fatalf("mapping %#x missing after reload", sp.VA)
					}
					if got.PFN != sp.PFN || got.Writable != sp.Writable {
						t.Fatalf("mapping %#x reloaded as %+v, want pfn %#x writable %v",
							sp.VA, got, sp.PFN, sp.Writable)
					}
				}
			},
		},
		{
			kind: "thread",
			cfg:  Config{ThreadSlots: 2}, // boot thread + one
			body: func(t *testing.T, env *testEnv, e *hw.Exec) {
				k := env.k
				var phase []string
				t1 := env.spawnThread(e, env.boot.Space, "worker", 30, func(we *hw.Exec) {
					phase = append(phase, "started")
					if _, err := k.WaitSignal(we); err != nil {
						t.Errorf("WaitSignal: %v", err)
						return
					}
					phase = append(phase, "woke")
				})
				// Let the worker run until it blocks in WaitSignal.
				e.Charge(hw.CyclesFromMicros(2000))
				if len(phase) != 1 {
					t.Fatalf("worker did not block; phase=%v", phase)
				}
				// Cache pressure: the victim search skips the caller, so
				// loading one more thread evicts the blocked worker.
				done := false
				env.spawnThread(e, env.boot.Space, "filler", 10, func(we *hw.Exec) {
					we.Charge(hw.CostInstr)
					done = true
				})
				if got := env.wb.threads; len(got) != 1 || got[0] != t1 {
					t.Fatalf("thread writebacks = %v, want [%v]", got, t1)
				}
				st := env.wb.thStates[0]
				if st.Priority != 30 || st.Exec == nil {
					t.Fatalf("written-back state = %+v, want priority 30 with exec", st)
				}
				e.Charge(hw.CyclesFromMicros(2000))
				if !done {
					t.Fatal("filler thread did not run")
				}
				// Reload from the written-back state: the execution
				// context resumes where it parked, under a new identity.
				t2, err := k.LoadThread(e, env.boot.Space, st, false)
				if err != nil {
					t.Fatalf("reload thread: %v", err)
				}
				if t2 == t1 {
					t.Fatal("reloaded thread reused its old identifier")
				}
				if err := k.PostSignal(e, t2, 0x1000); err != nil {
					t.Fatalf("PostSignal: %v", err)
				}
				e.Charge(hw.CyclesFromMicros(2000))
				if len(phase) != 2 || phase[1] != "woke" {
					t.Fatalf("phase = %v, want [started woke]", phase)
				}
			},
		},
		{
			kind: "mapping",
			cfg:  Config{MappingSlots: 4, PMapBuckets: 8},
			body: func(t *testing.T, env *testEnv, e *hw.Exec) {
				k := env.k
				sid := env.mustLoadSpace(e, false)
				specs := make([]MappingSpec, 5)
				for i := range specs {
					specs[i] = MappingSpec{
						VA:       0x5000_0000 + uint32(i)*hw.PageSize,
						PFN:      env.frame(),
						Writable: i%2 == 0,
						Cachable: true,
					}
					env.mustMap(e, sid, specs[i])
				}
				// Five loads into four slots: at least one writeback.
				if len(env.wb.mappings) == 0 {
					t.Fatal("no mapping writeback under cache pressure")
				}
				st := env.wb.mappings[0]
				if _, ok := k.MappingInfo(sid, st.VA); ok {
					t.Fatalf("evicted mapping %#x still present", st.VA)
				}
				// Reload the evicted mapping from its written-back state
				// (evicting another — the cache stays at capacity).
				env.mustMap(e, sid, MappingSpec{
					VA: st.VA, PFN: st.PFN,
					Writable: st.Writable, Cachable: true,
				})
				got, ok := k.MappingInfo(sid, st.VA)
				if !ok {
					t.Fatalf("mapping %#x missing after reload", st.VA)
				}
				if got.PFN != st.PFN || got.Writable != st.Writable {
					t.Fatalf("mapping %#x reloaded as %+v, want %+v", st.VA, got, st)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			hwCfg := hw.DefaultConfig()
			if tc.hw != nil {
				tc.hw(&hwCfg)
			}
			env := newEnvOpts(t, hwCfg, tc.cfg, nil, func(env *testEnv, e *hw.Exec) {
				tc.body(t, env, e)
				if err := env.k.CheckInvariants(); err != nil {
					t.Errorf("invariants after %s cycle: %v", tc.kind, err)
				}
			})
			env.run()
		})
	}
}
