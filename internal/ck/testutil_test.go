package ck

import (
	"math"
	"testing"

	"vpp/internal/hw"
)

// wbRecorder records writeback traffic for assertions.
type wbRecorder struct {
	mappings []MappingState
	threads  []ObjID
	thStates []ThreadState
	spaces   []ObjID
	kernels  []ObjID
	order    []string // interleaved event kinds, for dependency-order checks
}

func (w *wbRecorder) MappingWriteback(st MappingState) {
	w.mappings = append(w.mappings, st)
	w.order = append(w.order, "mapping")
}

func (w *wbRecorder) ThreadWriteback(id ObjID, st ThreadState) {
	w.threads = append(w.threads, id)
	w.thStates = append(w.thStates, st)
	w.order = append(w.order, "thread")
}

func (w *wbRecorder) SpaceWriteback(id ObjID) {
	w.spaces = append(w.spaces, id)
	w.order = append(w.order, "space")
}

func (w *wbRecorder) KernelWriteback(id ObjID) {
	w.kernels = append(w.kernels, id)
	w.order = append(w.order, "kernel")
}

// testEnv bundles a machine with a booted Cache Kernel.
type testEnv struct {
	t    *testing.T
	m    *hw.Machine
	k    *Kernel
	wb   *wbRecorder
	boot BootInfo

	nextFrame uint32
}

// identityFault loads an identity mapping (va -> pfn va>>12) on any
// fault; the default test fault policy.
func (env *testEnv) identityFault(k *Kernel) FaultHandler {
	return func(e *hw.Exec, th, space ObjID, va uint32, write bool, f hw.Fault) bool {
		err := k.LoadMappingAndResume(e, space, MappingSpec{
			VA:       va &^ (hw.PageSize - 1),
			PFN:      va >> hw.PageShift,
			Writable: true,
			Cachable: true,
		})
		return err == nil
	}
}

// newEnvOpts builds a machine/kernel and boots an SRM-like first kernel
// whose body is fn. Extra kernel attrs can be adjusted via mutate.
func newEnvOpts(t *testing.T, hwCfg hw.Config, cfg Config, mutate func(*KernelAttrs), fn func(env *testEnv, e *hw.Exec)) *testEnv {
	t.Helper()
	env := &testEnv{t: t, wb: &wbRecorder{}, nextFrame: 256}
	env.m = hw.NewMachine(hwCfg)
	k, err := New(env.m.MPMs[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.k = k
	attrs := KernelAttrs{
		Name:      "srm",
		Wb:        env.wb,
		MaxPrio:   0, // unrestricted
		LockQuota: [4]int{8, 16, 32, 1024},
		Fault:     env.identityFault(k),
	}
	if mutate != nil {
		mutate(&attrs)
	}
	boot, err := k.Boot(attrs, 40, func(e *hw.Exec) { fn(env, e) })
	if err != nil {
		t.Fatal(err)
	}
	env.boot = boot
	return env
}

func newEnv(t *testing.T, cfg Config, fn func(env *testEnv, e *hw.Exec)) *testEnv {
	return newEnvOpts(t, hw.DefaultConfig(), cfg, nil, fn)
}

// run drives the machine to quiescence.
func (env *testEnv) run() {
	env.t.Helper()
	env.m.Eng.MaxSteps = 50_000_000
	if err := env.m.Run(math.MaxUint64); err != nil {
		env.t.Fatalf("machine run: %v", err)
	}
}

// frame hands out fresh physical frames for test workloads.
func (env *testEnv) frame() uint32 {
	f := env.nextFrame
	env.nextFrame++
	return f
}

// mustLoadSpace wraps LoadSpace with a fatal on error.
func (env *testEnv) mustLoadSpace(e *hw.Exec, locked bool) ObjID {
	env.t.Helper()
	id, err := env.k.LoadSpace(e, locked)
	if err != nil {
		env.t.Fatalf("LoadSpace: %v", err)
	}
	return id
}

// mustMap wraps LoadMapping with a fatal on error.
func (env *testEnv) mustMap(e *hw.Exec, sid ObjID, spec MappingSpec) {
	env.t.Helper()
	if err := env.k.LoadMapping(e, sid, spec); err != nil {
		env.t.Fatalf("LoadMapping(%v, va %#x): %v", sid, spec.VA, err)
	}
}

// spawnThread creates an exec+thread in the given space at priority.
func (env *testEnv) spawnThread(e *hw.Exec, sid ObjID, name string, prio int, body func(*hw.Exec)) ObjID {
	env.t.Helper()
	exec := env.m.MPMs[0].NewExec(name, body)
	tid, err := env.k.LoadThread(e, sid, ThreadState{Priority: prio, Exec: exec}, false)
	if err != nil {
		env.t.Fatalf("LoadThread(%s): %v", name, err)
	}
	return tid
}
