package ck

import (
	"fmt"

	"vpp/internal/pagetable"
)

// CheckInvariants verifies the structural invariants the dependency
// model (Figure 6) promises, over the whole Cache Kernel state: loaded
// threads reference loaded spaces and appear in their containment maps,
// page tables and the physical memory map agree record-for-record,
// dependency records reference live targets, and the ready queues hold
// only loaded, ready, unique threads.
//
// It returns the first violation found, or nil. The invariant fuzz test
// calls it after every operation; builds tagged ckinvariants
// (`go build -tags ckinvariants ./cmd/ckos`) additionally run it on
// every Cache Kernel call exit, turning any workload — ckos boots,
// ckbench runs — into an invariant checker at the cost of simulation
// speed (virtual time is unaffected: checking charges no cycles).
func (k *Kernel) CheckInvariants() error {
	// The invariants hold only between Cache Kernel calls. Calls yield at
	// every cycle charge, so a checker running while another processor's
	// call is parked mid-mutation (a mapping load between page-table
	// insert and counter update, say) would report a violation that is
	// really a legitimate intermediate state. Refuse to judge those.
	if k.inCalls > 0 {
		return nil
	}
	var err error
	fail := func(format string, args ...any) {
		if err == nil {
			err = fmt.Errorf("invariant: "+format, args...)
		}
	}

	// Threads reference loaded spaces; containment maps agree.
	k.threads.forEach(func(idx int32, to *ThreadObj) bool {
		if to.space == nil {
			fail("thread %v has nil space", to.id)
			return false
		}
		if got, ok := k.spaces.get(to.space.slot, to.space.id.gen()); !ok || got != to.space {
			fail("thread %v references unloaded space %v", to.id, to.space.id)
		}
		if to.space.threads[to.slot] != to {
			fail("space %v does not contain its thread %v", to.space.id, to.id)
		}
		if to.owner.threads[to.slot] != to {
			fail("kernel %q does not own its thread %v", to.owner.attrs.Name, to.id)
		}
		// Reverse of the signal-record check below: everything the
		// thread believes depends on it must be a live signal record
		// naming it — a corrupted writeback or partial reclaim must
		// never leave a tracked index pointing at a freed or recycled
		// record.
		//ckvet:allow detmap validation scan; any violation fails the run regardless of which is reported
		for idx := range to.sigRecords {
			if int(idx) < 0 || int(idx) >= len(k.pm.recs) {
				fail("thread %v tracks out-of-range record %d", to.id, idx)
				continue
			}
			r := k.pm.rec(idx)
			if r.kind() != depSignal {
				fail("thread %v tracks record %d of kind %d", to.id, idx, r.kind())
			} else if int32(r.dep) != to.slot {
				fail("thread %v tracks signal record %d naming slot %d", to.id, idx, r.dep)
			}
		}
		return err == nil
	})
	if err != nil {
		return err
	}

	// Spaces: containment and page-table/pmap agreement.
	liveSpaces := 0
	k.spaces.forEach(func(idx int32, so *SpaceObj) bool {
		liveSpaces++
		if _, ok := k.kernels.get(so.owner.slot, so.owner.id.gen()); !ok {
			fail("space %v owned by unloaded kernel", so.id)
		}
		if k.spaceByHW[so.hw] != so {
			fail("space %v missing from the hardware-space index", so.id)
		}
		n := 0
		so.hw.Table.Walk(func(va uint32, pte pagetable.PTE) bool {
			n++
			// Each PTE must have exactly one physical-to-virtual record.
			found := 0
			k.pm.findEach(depPhysVirt, pte.PFN(), func(_ int32, r *depRecord) bool {
				if r.dep == va && r.owner() == so.slot {
					found++
				}
				return true
			})
			if found != 1 {
				fail("mapping (%v, %#x) has %d dependency records", so.id, va, found)
			}
			return err == nil
		})
		if n != so.mappings {
			fail("space %v mapping count %d != table pages %d", so.id, so.mappings, n)
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	// The derived indexes hold exactly the live objects: a stale entry
	// would let a reclaimed descriptor act with a dead kernel's
	// authority (callerKernel resolves through these maps).
	if len(k.spaceByHW) != liveSpaces {
		return fmt.Errorf("invariant: spaceByHW has %d entries for %d loaded spaces", len(k.spaceByHW), liveSpaces)
	}
	designated := 0
	k.kernels.forEach(func(_ int32, ko *KernelObj) bool {
		if ko.space == nil {
			return true
		}
		if got, ok := k.spaces.get(ko.space.slot, ko.space.id.gen()); !ok || got != ko.space {
			fail("kernel %q designates unloaded space %v", ko.attrs.Name, ko.space.id)
			return false
		}
		if k.kernelBySpace[ko.space] != ko {
			fail("kernel %q missing from the designated-space index", ko.attrs.Name)
			return false
		}
		designated++
		return true
	})
	if err != nil {
		return err
	}
	if len(k.kernelBySpace) != designated {
		return fmt.Errorf("invariant: kernelBySpace has %d entries for %d designated spaces", len(k.kernelBySpace), designated)
	}

	// Every live pmap record is consistent; totals match.
	live := 0
	for i := range k.pm.recs {
		r := &k.pm.recs[i]
		switch r.kind() {
		case depFree:
			continue
		case depPhysVirt:
			live++
			so, ok := k.spaces.peek(r.owner())
			if !ok {
				return fmt.Errorf("invariant: pv record %d owned by empty space slot %d", i, r.owner())
			}
			pte, ok := so.hw.Table.Lookup(r.dep)
			if !ok || pte.PFN() != r.key {
				return fmt.Errorf("invariant: pv record %d (va %#x) disagrees with page table", i, r.dep)
			}
		case depSignal:
			live++
			pv := k.pm.rec(int32(r.key))
			if pv.kind() != depPhysVirt {
				return fmt.Errorf("invariant: signal record %d references non-pv record %d", i, r.key)
			}
			to, tok := k.threads.peek(int32(r.dep))
			if !tok {
				return fmt.Errorf("invariant: signal record %d names empty thread slot %d", i, r.dep)
			}
			if _, tracked := to.sigRecords[int32(i)]; !tracked {
				return fmt.Errorf("invariant: signal record %d not tracked by its thread", i)
			}
		case depCopyOnWrite:
			live++
			if k.pm.rec(int32(r.key)).kind() != depPhysVirt {
				return fmt.Errorf("invariant: cow record %d references non-pv record", i)
			}
		}
	}
	if live != k.pm.Live() {
		return fmt.Errorf("invariant: pmap live count %d != scanned %d", k.pm.Live(), live)
	}
	if free := len(k.pm.free); free+live != k.pm.Capacity() {
		return fmt.Errorf("invariant: pmap free %d + live %d != capacity %d", free, live, k.pm.Capacity())
	}

	// Ready queues hold only loaded, ready, unique threads.
	seen := map[*ThreadObj]bool{}
	for p := range k.sched.ready {
		for _, to := range k.sched.ready[p] {
			if seen[to] {
				return fmt.Errorf("invariant: thread %v queued twice", to.id)
			}
			seen[to] = true
			if to.state != threadReady {
				return fmt.Errorf("invariant: queued thread %v in state %d", to.id, to.state)
			}
			if got, ok := k.threads.get(to.slot, to.id.gen()); !ok || got != to {
				return fmt.Errorf("invariant: queued thread %v is unloaded", to.id)
			}
		}
	}
	return err
}
