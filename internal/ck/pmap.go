package ck

// The physical memory map stores 16-byte dependency records, one per
// loaded page mapping plus one per signal or copy-on-write specification
// (paper §4.1). A record is (key, dependent, context):
//
//   - physical-to-virtual: key = physical frame, dependent = virtual
//     address, context = owning address-space slot. This is the dominant
//     case and the unit of mapping replacement.
//   - signal: key = handle of the physical-to-virtual record, dependent =
//     signal thread slot, context = the signal marker.
//   - copy-on-write: key = handle of the record, dependent = source
//     frame.
//
// Signal delivery looks up the physical-to-virtual records for the
// signalled frame, then the signal records keyed by each record's handle
// — the two-stage lookup whose cost the per-processor reverse-TLB
// (rtlb.go) avoids in the common case.

// depKind tags the record's role, stored in the context word.
type depKind uint32

const (
	depFree depKind = iota
	depPhysVirt
	depSignal
	depCopyOnWrite
)

// depRecord is the 16-byte descriptor. The Go struct is exactly four
// 32-bit words, matching the paper's MemMapEntry size (Table 1).
type depRecord struct {
	key  uint32
	dep  uint32
	ctx  uint32 // kind (4 bits) | locked (1 bit) | owner slot (16 bits << 8)
	next int32  // hash chain, -1 ends
}

// depRecordBytes is the accounted size of one record.
const depRecordBytes = 16

const (
	ctxKindMask   = 0xf
	ctxLockedBit  = 1 << 4
	ctxOwnerShift = 8
)

func makeCtx(kind depKind, owner int32) uint32 {
	return uint32(kind) | uint32(owner)<<ctxOwnerShift
}

func (r *depRecord) kind() depKind { return depKind(r.ctx & ctxKindMask) }
func (r *depRecord) locked() bool  { return r.ctx&ctxLockedBit != 0 }
func (r *depRecord) owner() int32  { return int32(r.ctx >> ctxOwnerShift) }

func (r *depRecord) setLocked(v bool) {
	if v {
		r.ctx |= ctxLockedBit
	} else {
		r.ctx &^= ctxLockedBit
	}
}

// pmap is the fixed-pool hash table of dependency records.
type pmap struct {
	recs    []depRecord
	free    []int32
	buckets []int32
	live    int
	hand    int32 // clock hand for replacement scans

	// used marks slots that have ever held a record; reloads counts
	// insertions into such slots — the mapping cache's analog of the
	// objCache reload counter (observability only, not accounted RAM).
	used    []bool
	reloads uint64
}

func newPMap(capacity, buckets int) *pmap {
	p := &pmap{
		recs:    make([]depRecord, capacity),
		buckets: make([]int32, buckets),
		used:    make([]bool, capacity),
		free:    make([]int32, 0, capacity),
	}
	for i := range p.buckets {
		p.buckets[i] = -1
	}
	for i := capacity - 1; i >= 0; i-- {
		p.free = append(p.free, int32(i))
	}
	return p
}

// reset returns the pmap to its freshly-constructed state in place:
// indistinguishable from newPMap(len(recs), len(buckets)) to every
// reader, including the descending free-slot order and the cleared
// used/reloads observability state, so a recycled pmap adopted by a
// fork behaves byte-for-byte like a rebuilt one.
func (p *pmap) reset() {
	clear(p.recs)
	clear(p.used)
	for i := range p.buckets {
		p.buckets[i] = -1
	}
	p.free = p.free[:0]
	for i := len(p.recs) - 1; i >= 0; i-- {
		p.free = append(p.free, int32(i))
	}
	p.live, p.hand, p.reloads = 0, 0, 0
}

func (p *pmap) bucket(key uint32) int32 {
	return int32(key * 2654435761 % uint32(len(p.buckets)))
}

// insert allocates a record; full=false means the pool is exhausted and
// the caller must reclaim a victim first. probes counts hash work for
// cycle charging.
func (p *pmap) insert(kind depKind, key, dep uint32, owner int32) (idx int32, ok bool) {
	idx, ok = p.takeFree()
	if !ok {
		return -1, false
	}
	p.insertAt(idx, kind, key, dep, owner)
	return idx, true
}

// takeFree pops a free record slot, reserving it for the caller.
// Reservation and eviction hand-off must not be separated by a charge
// point, or another processor's load can steal the slot (the
// non-blocking-synchronization discipline of paper §4.2).
func (p *pmap) takeFree() (int32, bool) {
	if len(p.free) == 0 {
		return -1, false
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return idx, true
}

// releaseSlot returns a reserved (unused) slot to the free pool.
func (p *pmap) releaseSlot(idx int32) { p.free = append(p.free, idx) }

// insertAt fills a reserved slot with a live record.
func (p *pmap) insertAt(idx int32, kind depKind, key, dep uint32, owner int32) {
	if p.used[idx] {
		p.reloads++
	} else {
		p.used[idx] = true
	}
	b := p.bucket(key)
	p.recs[idx] = depRecord{key: key, dep: dep, ctx: makeCtx(kind, owner), next: p.buckets[b]}
	p.buckets[b] = idx
	p.live++
}

// remove frees record idx, unlinking it from its chain. probes reports
// chain positions walked (for cycle charging).
func (p *pmap) remove(idx int32) (probes int) {
	probes = p.removeKeep(idx)
	p.free = append(p.free, idx)
	return probes
}

// removeKeep unlinks record idx but keeps the slot reserved for the
// caller instead of freeing it (the eviction hand-off).
func (p *pmap) removeKeep(idx int32) (probes int) {
	r := &p.recs[idx]
	if r.kind() == depFree {
		panic("ck: pmap remove of free record")
	}
	b := p.bucket(r.key)
	cur := p.buckets[b]
	if cur == idx {
		p.buckets[b] = r.next
		probes = 1
	} else {
		probes = 1
		for cur != -1 {
			probes++
			if p.recs[cur].next == idx {
				p.recs[cur].next = r.next
				break
			}
			cur = p.recs[cur].next
		}
		if cur == -1 {
			panic("ck: pmap record not on its chain")
		}
	}
	*r = depRecord{next: -1}
	p.live--
	return probes
}

// findEach calls fn for every live record with the given kind and key, in
// reverse insertion order (chain order). fn may remove the current
// record. It returns the number of chain probes for cycle charging.
func (p *pmap) findEach(kind depKind, key uint32, fn func(idx int32, r *depRecord) bool) (probes int) {
	cur := p.buckets[p.bucket(key)]
	for cur != -1 {
		probes++
		next := p.recs[cur].next
		r := &p.recs[cur]
		if r.kind() == kind && r.key == key {
			if !fn(cur, r) {
				return probes
			}
		}
		cur = next
	}
	return probes
}

// findOne returns the first live record matching (kind, key, dep), or -1.
func (p *pmap) findOne(kind depKind, key, dep uint32) (idx int32, probes int) {
	idx = -1
	probes = p.findEach(kind, key, func(i int32, r *depRecord) bool {
		if r.dep == dep {
			idx = i
			return false
		}
		return true
	})
	return idx, probes
}

// rec returns the record at idx.
func (p *pmap) rec(idx int32) *depRecord { return &p.recs[idx] }

// victim advances the clock hand to the next physical-to-virtual record
// accepted by reclaimable, returning its index, or -1 if none is
// reclaimable. scanned reports slots visited for cycle charging.
func (p *pmap) victim(reclaimable func(idx int32, r *depRecord) bool) (idx int32, scanned int) {
	n := int32(len(p.recs))
	for i := int32(0); i < n; i++ {
		p.hand = (p.hand + 1) % n
		r := &p.recs[p.hand]
		scanned++
		if r.kind() == depPhysVirt && reclaimable(p.hand, r) {
			return p.hand, scanned
		}
	}
	return -1, scanned
}

// Live reports the number of allocated records.
func (p *pmap) Live() int { return p.live }

// Capacity reports the record pool size.
func (p *pmap) Capacity() int { return len(p.recs) }
