package ck

import (
	"vpp/internal/hw"
)

// Paper Table 1: descriptor sizes in bytes and default cache geometry.
// Descriptor arrays are accounted against local RAM with these sizes so
// the Section 5.2 space arithmetic reproduces exactly.
const (
	KernelObjBytes  = 2160
	SpaceObjBytes   = 60
	ThreadObjBytes  = 532
	MappingObjBytes = depRecordBytes // 16

	DefaultKernelSlots  = 16
	DefaultSpaceSlots   = 64
	DefaultThreadSlots  = 256
	DefaultMappingSlots = 65536
)

// Config tunes one Cache Kernel instance. The zero value is completed to
// the paper's prototype configuration by DefaultConfig.
type Config struct {
	KernelSlots  int
	SpaceSlots   int
	ThreadSlots  int
	MappingSlots int
	PMapBuckets  int

	// NumPriorities is the fixed-priority range [0, NumPriorities);
	// larger is more urgent.
	NumPriorities int

	// TimeSlice is the per-priority round-robin quantum in cycles.
	TimeSlice uint64

	// AccountingWindow is the processor-quota evaluation period in
	// cycles (the paper allocates percentages over extended periods).
	AccountingWindow uint64

	// RTLBEntries sizes the per-processor reverse TLB; 0 selects the
	// default and a negative value disables it, forcing the two-stage
	// pmap lookup on every signal (ablation A1).
	RTLBEntries int

	// SignalQueueLimit bounds per-thread queued address-valued signals.
	SignalQueueLimit int
}

// DefaultConfig returns the paper's prototype configuration.
func DefaultConfig() Config {
	return Config{
		KernelSlots:      DefaultKernelSlots,
		SpaceSlots:       DefaultSpaceSlots,
		ThreadSlots:      DefaultThreadSlots,
		MappingSlots:     DefaultMappingSlots,
		PMapBuckets:      16384,
		NumPriorities:    64,
		TimeSlice:        10 * 1000 * hw.CyclesPerMicrosecond, // 10 ms
		AccountingWindow: 100 * 1000 * hw.CyclesPerMicrosecond,
		RTLBEntries:      16,
		SignalQueueLimit: 16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.KernelSlots == 0 {
		c.KernelSlots = d.KernelSlots
	}
	if c.SpaceSlots == 0 {
		c.SpaceSlots = d.SpaceSlots
	}
	if c.ThreadSlots == 0 {
		c.ThreadSlots = d.ThreadSlots
	}
	if c.MappingSlots == 0 {
		c.MappingSlots = d.MappingSlots
	}
	if c.PMapBuckets == 0 {
		c.PMapBuckets = d.PMapBuckets
	}
	if c.NumPriorities == 0 {
		c.NumPriorities = d.NumPriorities
	}
	if c.TimeSlice == 0 {
		c.TimeSlice = d.TimeSlice
	}
	if c.AccountingWindow == 0 {
		c.AccountingWindow = d.AccountingWindow
	}
	if c.RTLBEntries == 0 {
		c.RTLBEntries = d.RTLBEntries
	}
	if c.SignalQueueLimit == 0 {
		c.SignalQueueLimit = d.SignalQueueLimit
	}
	return c
}

// TrapHandler is an application kernel's trap entry point, run (in the
// trapping thread's context, switched to the kernel's address space) when
// one of its threads executes a trap instruction outside the kernel's own
// space. It returns the two result registers.
type TrapHandler func(e *hw.Exec, thread ObjID, no uint32, args []uint32) (uint32, uint32)

// FaultHandler is an application kernel's access-error entry point
// (paper Figure 2, step 2-5). space identifies the faulting thread's
// address space. When the handler returns true the faulting access
// retries; returning false abandons the access and terminates the
// thread (the SEGV-kill path).
type FaultHandler func(e *hw.Exec, thread, space ObjID, va uint32, write bool, kind hw.Fault) bool

// Writeback receives object state displaced from the Cache Kernel. Every
// application kernel provides one; calls are charged to the execution
// that caused the displacement, modeling the writeback RPC channel.
type Writeback interface {
	MappingWriteback(st MappingState)
	ThreadWriteback(id ObjID, st ThreadState)
	SpaceWriteback(id ObjID)
	KernelWriteback(id ObjID)
}

// KernelAttrs is the loadable state of a kernel object.
type KernelAttrs struct {
	Name     string
	Trap     TrapHandler
	Fault    FaultHandler
	Wb       Writeback
	MaxPrio  int
	CPUShare []int // percent per CPU of the MPM; nil = 100 each
	// LockQuota bounds locked objects: [kernel, space, thread, mapping].
	LockQuota [4]int
	Locked    bool
}

// KernelObj is the cached descriptor of one application kernel.
type KernelObj struct {
	id    ObjID
	slot  int32
	owner *KernelObj // the SRM, or self for the first kernel
	attrs KernelAttrs

	// space is the application kernel's own address space, in which its
	// traps count as Cache Kernel calls.
	space *SpaceObj

	// access is the memory access array: two bits per 512 KB page group
	// across the 4 GB physical space (2 KB total, dominated by it the
	// descriptor is 2160 bytes).
	access [pageGroups / 4]byte

	// usage is consumed processor time (cycles, rate-adjusted) in the
	// current accounting window, per CPU of the MPM.
	usage       []uint64
	windowStart uint64
	overQuota   []bool

	lockedCount [4]int

	// Owned loaded objects, for dependency-ordered unload.
	spaces  map[int32]*SpaceObj
	threads map[int32]*ThreadObj
}

const pageGroups = 1 << 13 // 4 GB / 512 KB

// ID reports the kernel object's current identifier.
func (ko *KernelObj) ID() ObjID { return ko.id }

// Name reports the kernel's name.
func (ko *KernelObj) Name() string { return ko.attrs.Name }

// groupAccess returns the two access bits for page group g.
type groupRights byte

const (
	rightRead  groupRights = 1
	rightWrite groupRights = 2
)

func (ko *KernelObj) groupAccess(g uint32) groupRights {
	return groupRights(ko.access[g/4]>>((g%4)*2)) & 3
}

func (ko *KernelObj) setGroupAccess(g uint32, r groupRights) {
	shift := (g % 4) * 2
	ko.access[g/4] = ko.access[g/4]&^(3<<shift) | byte(r)<<shift
}

// SpaceObj is the cached descriptor of one address space.
type SpaceObj struct {
	id    ObjID
	slot  int32
	owner *KernelObj
	hw    *hw.Space

	mappings int // loaded physical-to-virtual records
	threads  map[int32]*ThreadObj
}

// ID reports the space object's current identifier.
func (so *SpaceObj) ID() ObjID { return so.id }

// HW exposes the hardware translation context for dispatching threads.
func (so *SpaceObj) HW() *hw.Space { return so.hw }

// threadState enumerates a loaded thread's scheduling state.
type threadState uint8

const (
	threadReady threadState = iota
	threadRunning
	threadWaiting   // blocked in WaitSignal
	threadSuspended // forced off-CPU, not ready (being unloaded/examined)
)

// ThreadState is the loadable/written-back state of a thread.
type ThreadState struct {
	Regs     hw.Regs
	Priority int
	// Exec is the machine execution context (register file plus kernel
	// stack in the paper; here the persistent coroutine). It survives
	// across Cache Kernel load/unload cycles.
	Exec *hw.Exec
}

// ThreadObj is the cached descriptor of one thread.
type ThreadObj struct {
	id    ObjID
	slot  int32
	owner *KernelObj
	space *SpaceObj
	exec  *hw.Exec

	prio  int
	state threadState
	cpu   *hw.CPU // valid while running

	dispatchedAt uint64
	forceOff     bool
	queued       bool

	waitingSignal bool
	sigPending    bool
	sigValue      uint32
	sigQueue      []uint32
	sigDropped    uint64

	// sigRecords are dependency-record handles of signal registrations
	// naming this thread, unloaded with it (Figure 6).
	sigRecords map[int32]struct{}

	// faultDepth and optResumed track the access-error protocol: a
	// handler that used the combined load-and-resume call sets
	// optResumed so the separate resume charge is skipped.
	faultDepth int
	optResumed bool
}

// ID reports the thread object's current identifier.
func (to *ThreadObj) ID() ObjID { return to.id }

// Priority reports the thread's loaded priority.
func (to *ThreadObj) Priority() int { return to.prio }

// MappingSpec describes a page mapping to load (paper §2.1-2.2).
type MappingSpec struct {
	VA  uint32 // virtual page address (page aligned)
	PFN uint32 // physical frame number

	Writable bool
	Cachable bool
	Message  bool // page is in message mode
	Locked   bool

	// SignalThread, when non-zero, registers an address-valued signal
	// delivery to that thread for writes to this page.
	SignalThread ObjID

	// CopyOnWriteFrom, when non-zero, records a deferred-copy source
	// frame for this mapping.
	CopyOnWriteFrom uint32
}

// MappingState is the written-back state of a page mapping.
type MappingState struct {
	Space ObjID
	VA    uint32
	PFN   uint32

	Referenced bool
	Modified   bool
	Writable   bool
	Message    bool

	SignalThread    ObjID
	CopyOnWriteFrom uint32
}
