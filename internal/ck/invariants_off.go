//go:build !ckinvariants

package ck

// invariantsEnabled is off in normal builds; the checks run only in
// the invariant fuzz test. Build with -tags ckinvariants to enable.
const invariantsEnabled = false
