//go:build cksan

package ck

import (
	"strings"
	"testing"

	"vpp/internal/hw"
)

// A Cache Kernel call by an execution context on a different shard is a
// cross-shard mutation of the kernel's descriptor caches; sanCheckAccess
// must reject it at the funnel before any state is touched.
func TestCksanCrossShardKernelCall(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.MPMs, cfg.CPUsPerMPM, cfg.Shards = 2, 1, 2
	m := hw.NewMachine(cfg)
	k, err := New(m.MPMs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}

	stray := m.MPMs[1].NewExec("stray", func(*hw.Exec) {})
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "cksan:") {
			t.Fatalf("expected a cksan report, got %v", r)
		}
	}()
	_, _ = k.LoadKernel(stray, KernelAttrs{Name: "foreign"})
	t.Fatal("cross-shard cache-kernel call not caught")
}
