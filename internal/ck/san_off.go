//go:build !cksan

package ck

import "vpp/internal/hw"

// No-op half of the cksan runtime ownership sanitizer; see san_on.go.

func (k *Kernel) sanCheckAccess(e *hw.Exec, op string) {}
