// Package ck implements the V++ Cache Kernel: the supervisor-mode
// component that caches operating system objects — kernels, address
// spaces, threads and page mappings — on behalf of user-mode application
// kernels, which implement all management policy (paper Sections 2 and 4).
//
// One Kernel instance runs per MPM of the simulated ParaDiGM machine
// (internal/hw). Application kernels interact with it through the loaded
// object operations (LoadThread, LoadSpace, LoadMapping, LoadKernel and
// their unloads), fault and trap forwarding, and writeback callbacks, all
// charged in virtual cycles so the paper's Table 2 and Section 5.3
// measurements can be regenerated.
package ck

import "fmt"

// ObjType distinguishes the three cached object kinds with identifiers.
// (Page mappings are identified by address space and virtual address
// instead, to keep their descriptors at 16 bytes — paper §2.1.)
type ObjType uint8

// Cached object kinds.
const (
	ObjInvalid ObjType = iota
	ObjKernel
	ObjSpace
	ObjThread
)

func (t ObjType) String() string {
	switch t {
	case ObjKernel:
		return "kernel"
	case ObjSpace:
		return "space"
	case ObjThread:
		return "thread"
	}
	return "invalid"
}

// ObjID names a loaded object. A fresh identifier is assigned on every
// load (generation counting), so an identifier held across a writeback
// dangles harmlessly: lookups fail and the application kernel reloads, as
// the paper prescribes. The zero ObjID is never valid.
type ObjID uint64

// makeID packs type, generation and slot.
func makeID(t ObjType, gen uint32, slot int) ObjID {
	return ObjID(uint64(t)<<48 | uint64(gen)<<16 | uint64(uint16(slot)))
}

// Type reports the object kind encoded in the identifier.
func (id ObjID) Type() ObjType { return ObjType(id >> 48) }

func (id ObjID) gen() uint32 { return uint32(id>>16) & 0xffffffff }
func (id ObjID) slot() int   { return int(uint16(id)) }

// String formats the identifier for diagnostics.
func (id ObjID) String() string {
	if id == 0 {
		return "obj<nil>"
	}
	return fmt.Sprintf("%s#%d.g%d", id.Type(), id.slot(), id.gen())
}
