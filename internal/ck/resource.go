package ck

import "vpp/internal/hw"

// Processor-time accounting (paper §4.3): the Cache Kernel monitors each
// thread's consumption, charges it to the owning kernel at a rate
// graduated by priority — a premium for high-priority execution, a
// discount below the midpoint — and demotes a kernel's threads to the
// lowest priority for the remainder of an accounting window once the
// kernel exceeds its allocation, so they only run on otherwise-idle
// processors.

// chargeRate returns the rate numerator for a priority (denominator 16):
// 16 at the midpoint, up to 24 at the top, down to 12 at priority 0.
func (k *Kernel) chargeRate(prio int) uint64 {
	mid := k.Cfg.NumPriorities / 2
	if prio >= mid {
		return uint64(16 + 8*(prio-mid)/mid)
	}
	return uint64(16 - 4*(mid-prio)/mid)
}

// accountUsage charges delta consumed cycles by t to its owning kernel.
func (k *Kernel) accountUsage(t *ThreadObj, delta uint64) {
	ko := t.owner
	if ko == nil || len(ko.usage) == 0 {
		return
	}
	cpu := 0
	if t.cpu != nil {
		cpu = t.cpu.Index
	}
	k.rollWindow(ko)
	add := delta * k.chargeRate(t.prio) / 16
	// A dispatch interval can span window boundaries (accounting is
	// lazy); cap the contribution so a single interval cannot inflate
	// one window beyond full utilization at its charge rate.
	if maxAdd := k.Cfg.AccountingWindow * k.chargeRate(t.prio) / 16; add > maxAdd {
		add = maxAdd
	}
	ko.usage[cpu] += add
}

// rollWindow lazily closes an expired accounting window, computing
// per-CPU consumption percentages against the kernel's allocation.
func (k *Kernel) rollWindow(ko *KernelObj) {
	now := k.MPM.Shard.Now()
	w := k.Cfg.AccountingWindow
	if now-ko.windowStart < w {
		return
	}
	share := ko.attrs.CPUShare
	wasOver := anyOver(ko)
	for i := range ko.usage {
		pct := ko.usage[i] * 100 / w
		limit := uint64(100)
		if i < len(share) {
			limit = uint64(share[i])
		}
		ko.overQuota[i] = pct > limit
		ko.usage[i] = 0
	}
	ko.windowStart = now
	if !wasOver && anyOver(ko) {
		k.Stats.QuotaDemotions++
	}
}

func anyOver(ko *KernelObj) bool {
	for _, v := range ko.overQuota {
		if v {
			return true
		}
	}
	return false
}

// overQuota reports whether the kernel is currently demoted on any CPU.
// (The paper demotes per processor; with the MPM-global ready queue this
// reproduction demotes the kernel's threads uniformly, which preserves
// the observable behaviour — over-quota kernels only consume otherwise
// idle cycles.)
func (k *Kernel) overQuota(ko *KernelObj) bool {
	k.rollWindow(ko)
	return anyOver(ko)
}

// checkMappingAccess verifies that the loading kernel's memory access
// array grants the required rights to the physical page (paper §4.3).
func (k *Kernel) checkMappingAccess(e *hw.Exec, ko *KernelObj, pfn uint32, write bool) bool {
	e.ChargeNoIntr(costAccessCheck)
	g := pfn / hw.PageGroupPages
	r := ko.groupAccess(g)
	if write {
		return r&rightWrite != 0
	}
	return r&rightRead != 0
}

// lockQuotaIndex maps object kinds to KernelAttrs.LockQuota indices.
const (
	lockQuotaKernel = iota
	lockQuotaSpace
	lockQuotaThread
	lockQuotaMapping
)

// chargeLock consumes one unit of the kernel's locked-object quota,
// reporting whether the lock is permitted.
func (k *Kernel) chargeLock(ko *KernelObj, kind int) bool {
	if ko.lockedCount[kind] >= ko.attrs.LockQuota[kind] {
		return false
	}
	ko.lockedCount[kind]++
	return true
}

// releaseLock returns one unit of locked-object quota.
func (k *Kernel) releaseLock(ko *KernelObj, kind int) {
	if ko.lockedCount[kind] > 0 {
		ko.lockedCount[kind]--
	}
}
