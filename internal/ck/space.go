package ck

import (
	"vpp/internal/hw"
	"vpp/internal/pagetable"
)

// newSpaceObj allocates and initializes an address-space descriptor,
// evicting if the cache is full. The translation tree's root table is
// allocated from local RAM immediately (it is logically part of the
// descriptor).
func (k *Kernel) newSpaceObj(e *hw.Exec, owner *KernelObj) (*SpaceObj, error) {
	slot, gen, ok := k.spaces.alloc()
	if !ok {
		if err := k.evictSpace(e); err != nil {
			return nil, err
		}
		slot, gen, ok = k.spaces.alloc()
		if !ok {
			return nil, ErrAllLocked
		}
	}
	tbl, err := pagetable.New(k.MPM.LocalRAM)
	if err != nil {
		k.spaces.release(slot)
		return nil, ErrNoMemory
	}
	so := &SpaceObj{
		id:      makeID(ObjSpace, gen, int(slot)),
		slot:    slot,
		owner:   owner,
		hw:      &hw.Space{Table: tbl, ASID: uint16(slot) + 1},
		threads: make(map[int32]*ThreadObj),
	}
	k.spaces.set(slot, so)
	k.spaceByHW[so.hw] = so
	owner.spaces[slot] = so
	k.Stats.SpaceLoads++
	return so, nil
}

// LoadSpace loads a new address-space object with minimal state (just
// the lock bit), owned by the calling kernel, returning its identifier
// (paper §2.1).
func (k *Kernel) LoadSpace(e *hw.Exec, locked bool) (ObjID, error) {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return 0, err
	}
	e.ChargeNoIntr(costSpaceLoad)
	if locked && !k.chargeLock(caller, lockQuotaSpace) {
		return 0, ErrLockQuota
	}
	so, err := k.newSpaceObj(e, caller)
	if err != nil {
		if locked {
			k.releaseLock(caller, lockQuotaSpace)
		}
		return 0, err
	}
	if locked {
		k.spaces.setLocked(so.slot, true)
	}
	return so.id, nil
}

// UnloadSpace explicitly unloads an address space: all contained threads
// and page mappings are written back to the owning kernel first, then
// the space descriptor is released (paper §2.1).
func (k *Kernel) UnloadSpace(e *hw.Exec, id ObjID) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	so, ok := k.lookupSpace(id)
	if !ok {
		return ErrInvalidID
	}
	if so.owner != caller && caller != k.first {
		return ErrNotOwner
	}
	if caller.space == so {
		return ErrBadArgument // a kernel cannot unload the space it runs in
	}
	e.ChargeNoIntr(costSpaceUnload)
	k.reclaimSpace(e, so, true, false)
	return nil
}

// evictSpace writes back the least recently loaded reclaimable space.
// A locked space is still reclaimable unless its owning kernel is also
// locked (the dependency locking rule). The space the caller currently
// executes in — and the faulting thread's own space — are never victims:
// reclaiming the ground the reclaimer stands on cannot be made atomic.
func (k *Kernel) evictSpace(e *hw.Exec) error {
	var exclude [2]*SpaceObj
	if e != nil {
		exclude[0] = k.spaceByHW[e.Space]
		if th := k.threadOf(e); th != nil {
			exclude[1] = th.space
		}
	}
	slot, ok := k.spaces.victim(func(idx int32) bool {
		so := k.spaces.at(idx)
		if so == exclude[0] || so == exclude[1] {
			return false
		}
		if !k.spaces.lockedSlot(idx) {
			return true
		}
		return !k.kernels.lockedSlot(so.owner.slot)
	})
	if !ok {
		return ErrAllLocked
	}
	k.reclaimSpace(e, k.spaces.at(slot), true, true)
	return nil
}

// reclaimSpace unloads a space and its dependents: threads contained in
// the space, then every page mapping, then the descriptor itself
// (paper §4.2: "before an address space object is written back, all the
// page mappings in the address space and all the associated threads are
// written back"). wbDeps pushes dependents to the writeback channel;
// wbSelf additionally writes the space object itself back (eviction) —
// an explicit unload returns the state to the caller instead.
func (k *Kernel) reclaimSpace(e *hw.Exec, so *SpaceObj, wbDeps, wbSelf bool) {
	for _, t := range sortedThreads(so.threads) {
		k.reclaimThread(e, t, wbDeps, false)
	}
	// Unload every mapping. Collect virtual addresses first: unloading
	// mutates the tree, and message-page consistency flushes may remove
	// additional mappings of this same space.
	var vas []uint32
	so.hw.Table.Walk(func(va uint32, _ pagetable.PTE) bool {
		vas = append(vas, va)
		return true
	})
	for _, va := range vas {
		if _, mapped := so.hw.Table.Lookup(va); !mapped {
			continue // already flushed by multi-mapping consistency
		}
		k.unloadMappingVA(e, so, va, wbDeps)
	}
	k.MPM.FlushTLBSpace(so.hw.ASID)
	if k.spaces.lockedSlot(so.slot) && so != k.first.space {
		k.releaseLock(so.owner, lockQuotaSpace)
	}
	delete(k.spaceByHW, so.hw)
	delete(k.kernelBySpace, so)
	delete(so.owner.spaces, so.slot)
	so.hw.Table.Release()
	id := so.id
	owner := so.owner
	k.spaces.release(so.slot)
	k.Stats.SpaceUnloads++
	if wbSelf {
		k.Stats.SpaceWritebacks++
		if e != nil {
			e.ChargeNoIntr(costSpaceWriteback)
		}
		if owner.attrs.Wb != nil && !k.corruptWriteback(e, "space", id) {
			owner.attrs.Wb.SpaceWriteback(id)
		}
	}
}

// spaceBySlot returns the space currently in a descriptor slot (used by
// dependency records, which store slot numbers; the invariant that
// mappings are unloaded before their space's slot is recycled makes this
// safe).
func (k *Kernel) spaceBySlot(slot int32) *SpaceObj { return k.spaces.at(slot) }
