package ck

import (
	"fmt"

	"vpp/internal/hw"
)

// pendingResched is the CPU interrupt bit requesting a scheduling pass.
const pendingResched uint32 = 1 << 0

// scheduler implements the Cache Kernel's fixed-priority scheduling with
// time-sliced round-robin within each priority (paper §4.3). Application
// kernels express policy purely by loading, unloading and re-prioritizing
// threads; the scheduler only dispatches what is loaded.
type scheduler struct {
	k     *Kernel
	ready [][]*ThreadObj // index = effective priority; FIFO queues
}

func newScheduler(k *Kernel) *scheduler {
	return &scheduler{k: k, ready: make([][]*ThreadObj, k.Cfg.NumPriorities)}
}

// effPrio computes a thread's effective priority: its loaded priority,
// demoted to the lowest level while its kernel is over its processor
// quota so it only runs on otherwise-idle processors (paper §4.3).
func (s *scheduler) effPrio(t *ThreadObj) int {
	if t.owner != nil && s.k.overQuota(t.owner) {
		return 0
	}
	return t.prio
}

// enqueue appends t to its effective-priority ready queue.
func (s *scheduler) enqueue(t *ThreadObj) {
	for p := range s.ready {
		for _, x := range s.ready[p] {
			if x == t {
				panic(fmt.Sprintf("ck: double enqueue of %v (state=%d)", t.id, t.state))
			}
		}
	}
	p := s.effPrio(t)
	s.ready[p] = append(s.ready[p], t)
	t.state = threadReady
	t.queued = true
}

// promoteCleared re-queues quota-demoted threads whose kernel's
// accounting window has since rolled over clean. Demotion lasts only for
// the remainder of the window (paper §4.3), but effective priority is
// evaluated at enqueue time: without this pass, a thread parked at the
// bottom level of a saturated module would keep its demoted position
// indefinitely, because nothing else rolls a kernel's window once all of
// its threads are off-CPU. (The overQuota check below performs that lazy
// roll.)
func (s *scheduler) promoteCleared() {
	q := s.ready[0]
	if len(q) == 0 {
		return
	}
	kept := q[:0]
	var moved []*ThreadObj
	for _, t := range q {
		if t.prio > 0 && t.owner != nil && !s.k.overQuota(t.owner) {
			moved = append(moved, t)
			continue
		}
		kept = append(kept, t)
	}
	s.ready[0] = kept
	for _, t := range moved {
		s.ready[t.prio] = append(s.ready[t.prio], t)
	}
}

// dequeueBest pops the highest-priority ready thread, or nil.
func (s *scheduler) dequeueBest() *ThreadObj {
	s.promoteCleared()
	for p := len(s.ready) - 1; p >= 0; p-- {
		q := s.ready[p]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		copy(q, q[1:])
		s.ready[p] = q[:len(q)-1]
		t.queued = false
		return t
	}
	return nil
}

// bestReadyPrio reports the highest non-empty ready priority, or -1.
func (s *scheduler) bestReadyPrio() int {
	s.promoteCleared()
	for p := len(s.ready) - 1; p >= 0; p-- {
		if len(s.ready[p]) > 0 {
			return p
		}
	}
	return -1
}

// removeReady deletes t from its ready queue (for unload of a ready
// thread).
func (s *scheduler) removeReady(t *ThreadObj) {
	for p := range s.ready {
		q := s.ready[p]
		for i, x := range q {
			if x == t {
				s.ready[p] = append(q[:i:i], q[i+1:]...)
				t.queued = false
				return
			}
		}
	}
}

// makeReady makes a loaded thread runnable: dispatching it directly onto
// an idle CPU, preempting a lower-priority CPU, or queueing it.
// nowHint is the virtual time of the causing event (the waker's clock or
// the engine's time); it lower-bounds the target CPU's clock.
func (s *scheduler) makeReady(t *ThreadObj, nowHint uint64) {
	if t.state == threadRunning || t.state == threadReady {
		return
	}
	// Idle CPU: dispatch immediately (charging the IPI and context
	// restore to the target CPU's clock).
	for _, cpu := range s.k.MPM.CPUs {
		if cpu.Cur == nil {
			cpu.Clock.AdvanceTo(nowHint + hw.CostIPI + hw.CostContextRestore + hw.CostSchedule)
			s.dispatch(cpu, t)
			return
		}
	}
	s.enqueue(t)
	// Preempt the lowest-priority running thread if strictly below t.
	victim := s.lowestRunning()
	if victim != nil && s.effPrio(victim) < s.effPrio(t) && victim.cpu != nil {
		victim.cpu.Post(pendingResched)
		s.k.Stats.Preemptions++
	}
}

// lowestRunning returns the running thread with the lowest effective
// priority (deterministic tie-break by CPU index), or nil.
func (s *scheduler) lowestRunning() *ThreadObj {
	var victim *ThreadObj
	for _, cpu := range s.k.MPM.CPUs {
		if cpu.Cur == nil {
			continue
		}
		t := s.k.threadOf(cpu.Cur)
		if t == nil || t.state != threadRunning {
			continue
		}
		if victim == nil || s.effPrio(t) < s.effPrio(victim) {
			victim = t
		}
	}
	return victim
}

// dispatch places t on cpu and arms a slice timer if contention exists at
// its priority level.
func (s *scheduler) dispatch(cpu *hw.CPU, t *ThreadObj) {
	t.state = threadRunning
	t.cpu = cpu
	t.dispatchedAt = cpu.Clock.Now()
	t.exec.Space = t.space.hw
	t.exec.User = t
	s.k.Stats.ContextSwitches++
	if t.queued {
		panic(fmt.Sprintf("ck: dispatching queued thread %v (state=%d)", t.id, t.state))
	}
	if t.exec.Coro().Runnable() {
		panic(fmt.Sprintf("ck: dispatch of running thread %v (state=%d)", t.id, t.state))
	}
	cpu.Dispatch(t.exec)
	// The slice timer fires unconditionally so long-running threads are
	// periodically accounted against their kernel's quota even without
	// same-priority contention.
	cpu.ArmTimerAt(cpu.Clock.Now() + s.k.Cfg.TimeSlice)
	if s.k.OnDispatch != nil {
		s.k.OnDispatch(t.id, t.exec.Name, cpu.Clock.Now())
	}
}

// dispatchNext fills a free CPU with the best ready thread, if any. It
// may be called from any context (the CPU must have Cur == nil).
func (s *scheduler) dispatchNext(cpu *hw.CPU) {
	if next := s.dequeueBest(); next != nil {
		s.dispatch(cpu, next)
	}
}

// undispatch records accounting for a thread leaving its CPU.
func (s *scheduler) undispatch(t *ThreadObj) {
	if t.cpu == nil {
		return
	}
	delta := t.cpu.Clock.Now() - t.dispatchedAt
	s.k.accountUsage(t, delta)
	t.cpu = nil
}

// onResched runs in the current thread's context when its CPU takes a
// rescheduling interrupt: rotate the thread to the back of its priority
// level (or suspend it if a forced unload is pending) and run the best
// ready thread.
func (s *scheduler) onResched(e *hw.Exec) {
	cur := s.k.threadOf(e)
	if cur == nil || cur.state != threadRunning {
		return
	}
	cpu := e.CPU
	// Account the elapsed slice against the owning kernel's quota.
	if cpu != nil {
		now := cpu.Clock.Now()
		s.k.accountUsage(cur, now-cur.dispatchedAt)
		cur.dispatchedAt = now
	}
	best := s.bestReadyPrio()
	keep := !cur.forceOff && (best < 0 || best < s.effPrio(cur))
	if keep {
		if cpu != nil {
			cpu.ArmTimerAt(cpu.Clock.Now() + s.k.Cfg.TimeSlice)
		}
		return
	}
	// Charge the whole switch (save, schedule, and the incoming thread's
	// restore, which this CPU performs) before publishing any state
	// change: every charge is a yield point, and once the thread is
	// visible in the ready queue another processor may dispatch it.
	e.ChargeNoIntr(hw.CostContextSave + hw.CostSchedule +
		hw.CostContextRestore + hw.CostSpaceSwitch)
	s.undispatch(cur)
	if cur.forceOff {
		cur.state = threadSuspended
		cur.forceOff = false
	} else {
		s.enqueue(cur)
	}
	next := s.dequeueBest()
	if next == cur {
		// The other ready threads were dispatched elsewhere while this
		// switch was being charged: the rotation is vacuous; keep the
		// CPU.
		cur.state = threadRunning
		cur.cpu = cpu
		cur.dispatchedAt = cpu.Clock.Now()
		cpu.ArmTimerAt(cpu.Clock.Now() + s.k.Cfg.TimeSlice)
		return
	}
	if cpu.Cur == e {
		cpu.Cur = nil
	}
	e.CPU = nil
	if next != nil {
		s.dispatch(cpu, next)
	}
	e.Ctx().Park()
	// Resumed: some CPU has dispatched this thread again.
}

// block parks the current thread. The caller must have charged the
// context-switch cost and set the thread's blocking state with no
// charge points in between: a charge is a yield point at which another
// processor could observe the blocking state and dispatch the thread
// before it has parked.
func (s *scheduler) block(e *hw.Exec, t *ThreadObj) {
	cpu := e.CPU
	s.undispatch(t)
	if cpu != nil && cpu.Cur == e {
		cpu.Cur = nil
	}
	e.CPU = nil
	if cpu != nil {
		s.dispatchNext(cpu)
	}
	// A blocked call rests at a consistent point: leave it (for the
	// in-flight accounting CheckInvariants keys on) while parked, or a
	// thread sleeping in wait-signal would suppress checking forever.
	s.k.inCalls--
	e.Ctx().Park()
	s.k.inCalls++
}

// blockUnloaded releases the CPU of an execution whose thread descriptor
// was just unloaded and parks it until an application kernel reloads a
// thread descriptor for it and the scheduler redispatches.
func (s *scheduler) blockUnloaded(e *hw.Exec) {
	cpu := e.CPU
	if cpu != nil && cpu.Cur == e {
		cpu.Cur = nil
	}
	e.CPU = nil
	if cpu != nil {
		s.dispatchNext(cpu)
	}
	// See block: the unloaded thread's call is consistent while parked.
	s.k.inCalls--
	e.Ctx().Park()
	s.k.inCalls++
}

// forceOffCPU removes a running thread from its CPU from another
// execution's context, spinning in virtual time until it has parked.
func (s *scheduler) forceOffCPU(e *hw.Exec, t *ThreadObj) {
	for t.state == threadRunning {
		if t.cpu != nil {
			t.forceOff = true
			t.cpu.Post(pendingResched)
			e.Charge(hw.CostIPI)
		}
		e.Charge(hw.CostInstr * 8)
	}
}
