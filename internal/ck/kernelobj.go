package ck

import (
	"fmt"

	"vpp/internal/hw"
)

// Errors returned across the Cache Kernel interface. Identifier failures
// are ordinary events in the caching model: the application kernel
// responds by reloading the missing object and retrying (paper §2).
var (
	ErrInvalidID     = fmt.Errorf("ck: identifier does not name a loaded object")
	ErrNotFirst      = fmt.Errorf("ck: operation reserved to the first kernel")
	ErrNotOwner      = fmt.Errorf("ck: caller does not own the object")
	ErrAccessDenied  = fmt.Errorf("ck: memory access array denies the physical page")
	ErrLockQuota     = fmt.Errorf("ck: locked-object quota exhausted")
	ErrBadPriority   = fmt.Errorf("ck: priority exceeds the kernel's maximum")
	ErrAllLocked     = fmt.Errorf("ck: cache full and every entry protected by locks")
	ErrNoMemory      = fmt.Errorf("ck: local RAM exhausted")
	ErrBadArgument   = fmt.Errorf("ck: malformed argument")
	ErrNoKernelSpace = fmt.Errorf("ck: kernel has no designated address space")
)

// BootInfo describes the objects created for the first kernel.
type BootInfo struct {
	Kernel ObjID
	Space  ObjID
	Thread ObjID
	Exec   *hw.Exec
}

// Boot creates the first application kernel — the system resource manager
// — granting it full permission on all physical resources, locks it in
// the cache, and dispatches its initial thread on CPU 0 (paper §3). It
// must be called once, before the engine runs.
func (k *Kernel) Boot(attrs KernelAttrs, prio int, body func(*hw.Exec)) (BootInfo, error) {
	if k.first != nil {
		return BootInfo{}, fmt.Errorf("ck: already booted")
	}
	ko, err := k.newKernelObj(nil, attrs)
	if err != nil {
		return BootInfo{}, err
	}
	ko.owner = ko
	k.first = ko
	k.kernels.setLocked(ko.slot, true)
	// Full rights on all physical memory.
	for g := uint32(0); g < pageGroups; g++ {
		ko.setGroupAccess(g, rightRead|rightWrite)
	}

	so, err := k.newSpaceObj(nil, ko)
	if err != nil {
		return BootInfo{}, err
	}
	ko.space = so
	k.kernelBySpace[so] = ko
	k.spaces.setLocked(so.slot, true)

	exec := k.MPM.NewExec(attrs.Name+"/boot", body)
	to, err := k.newThreadObj(nil, ko, so, ThreadState{Priority: prio, Exec: exec})
	if err != nil {
		return BootInfo{}, err
	}
	k.threads.setLocked(to.slot, true)
	k.sched.dispatch(k.MPM.CPUs[0], to)
	return BootInfo{Kernel: ko.id, Space: so.id, Thread: to.id, Exec: exec}, nil
}

// newKernelObj allocates and initializes a kernel descriptor, evicting
// the least recently loaded unprotected kernel if the cache is full.
func (k *Kernel) newKernelObj(e *hw.Exec, attrs KernelAttrs) (*KernelObj, error) {
	slot, gen, ok := k.kernels.alloc()
	if !ok {
		if err := k.evictKernel(e); err != nil {
			return nil, err
		}
		slot, gen, ok = k.kernels.alloc()
		if !ok {
			return nil, ErrAllLocked
		}
	}
	ncpu := len(k.MPM.CPUs)
	ko := &KernelObj{
		id:        makeID(ObjKernel, gen, int(slot)),
		slot:      slot,
		attrs:     attrs,
		usage:     make([]uint64, ncpu),
		overQuota: make([]bool, ncpu),
		spaces:    make(map[int32]*SpaceObj),
		threads:   make(map[int32]*ThreadObj),
	}
	if k.MPM.Machine != nil {
		ko.windowStart = k.MPM.Shard.Now()
	}
	k.kernels.set(slot, ko)
	k.Stats.KernelLoads++
	return ko, nil
}

// LoadKernel loads a new application kernel object. Only the first
// kernel may call it; the new kernel is owned by (and written back to)
// the first kernel.
func (k *Kernel) LoadKernel(e *hw.Exec, attrs KernelAttrs) (ObjID, error) {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return 0, err
	}
	if caller != k.first {
		return 0, ErrNotFirst
	}
	e.ChargeNoIntr(costKernelLoad)
	ko, err := k.newKernelObj(e, attrs)
	if err != nil {
		return 0, err
	}
	ko.owner = k.first
	if attrs.Locked {
		if !k.chargeLock(caller, lockQuotaKernel) {
			// The first kernel's quota covers kernels it locks.
			k.reclaimKernel(e, ko, false, false)
			return 0, ErrLockQuota
		}
		k.kernels.setLocked(ko.slot, true)
	}
	return ko.id, nil
}

// UnloadKernel explicitly unloads a kernel object, first unloading every
// address space, thread and mapping it owns (an expensive operation the
// paper expects to be infrequent).
func (k *Kernel) UnloadKernel(e *hw.Exec, id ObjID) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	if caller != k.first {
		return ErrNotFirst
	}
	ko, ok := k.lookupKernel(id)
	if !ok {
		return ErrInvalidID
	}
	if ko == k.first {
		return ErrBadArgument
	}
	e.ChargeNoIntr(costKernelUnload)
	k.reclaimKernel(e, ko, true, false)
	return nil
}

// evictKernel writes back the least recently loaded unprotected kernel,
// never the caller's own.
func (k *Kernel) evictKernel(e *hw.Exec) error {
	var self *KernelObj
	if e != nil {
		self, _ = k.callerKernel(e)
	}
	slot, ok := k.kernels.victim(func(idx int32) bool {
		if k.kernels.lockedSlot(idx) {
			return false
		}
		return self == nil || k.kernels.at(idx) != self
	})
	if !ok {
		return ErrAllLocked
	}
	k.reclaimKernel(e, k.kernels.at(slot), true, true)
	return nil
}

// reclaimKernel unloads a kernel object and everything it owns,
// dependency-first (Figure 6). wbDeps pushes owned objects to their
// writeback channels; wbSelf writes the kernel object itself back to the
// first kernel (eviction).
func (k *Kernel) reclaimKernel(e *hw.Exec, ko *KernelObj, wbDeps, wbSelf bool) {
	// Threads owned by the kernel go first (they reference spaces).
	for _, t := range sortedThreads(ko.threads) {
		k.reclaimThread(e, t, wbDeps, false)
	}
	// Then the spaces it owns, which unload their mappings and any
	// remaining threads contained in them.
	for _, so := range sortedSpaces(ko.spaces) {
		k.reclaimSpace(e, so, wbDeps, wbSelf)
	}
	// Finally the kernel's own address space (owned by the first kernel
	// but associated with this one): unloading a kernel "requires
	// unloading the associated address spaces, threads, and memory
	// mappings" (paper §2.4). Its threads — including a running main —
	// go with it.
	if ko.space != nil && ko.space.owner != ko {
		if _, ok := k.spaces.get(ko.space.slot, ko.space.id.gen()); ok {
			k.reclaimSpace(e, ko.space, wbDeps, wbSelf)
		}
	}
	if k.kernels.lockedSlot(ko.slot) && ko.owner != nil && ko != k.first {
		k.releaseLock(ko.owner, lockQuotaKernel)
	}
	if ko.space != nil {
		delete(k.kernelBySpace, ko.space)
	}
	id := ko.id
	k.kernels.release(ko.slot)
	k.Stats.KernelUnloads++
	if wbSelf {
		k.Stats.KernelWritebacks++
		if e != nil {
			e.ChargeNoIntr(costKernelWriteback)
		}
		if ko.owner != nil && ko.owner.attrs.Wb != nil && !k.corruptWriteback(e, "kernel", id) {
			ko.owner.attrs.Wb.KernelWriteback(id)
		}
	}
}

// SetKernelSpace designates a kernel object's own address space: the
// space in which its threads' traps are Cache Kernel calls and whose
// handlers receive forwarded traps and faults. First kernel only.
func (k *Kernel) SetKernelSpace(e *hw.Exec, kid, sid ObjID) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	if caller != k.first {
		return ErrNotFirst
	}
	ko, ok := k.lookupKernel(kid)
	if !ok {
		return ErrInvalidID
	}
	so, ok := k.lookupSpace(sid)
	if !ok {
		return ErrInvalidID
	}
	e.ChargeNoIntr(costDescInit)
	if ko.space != nil {
		delete(k.kernelBySpace, ko.space)
	}
	ko.space = so
	k.kernelBySpace[so] = ko
	return nil
}

// SetKernelMemoryAccess grants or revokes rights on a range of page
// groups — one of the paper's three specialized kernel-object modify
// operations, provided so the SRM need not unload/reload a kernel to
// adjust its allocation (paper §2.4, §4.3).
func (k *Kernel) SetKernelMemoryAccess(e *hw.Exec, kid ObjID, firstGroup, nGroups uint32, read, write bool) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	if caller != k.first {
		return ErrNotFirst
	}
	ko, ok := k.lookupKernel(kid)
	if !ok {
		return ErrInvalidID
	}
	if firstGroup+nGroups > pageGroups {
		return ErrBadArgument
	}
	var r groupRights
	if read {
		r |= rightRead
	}
	if write {
		r |= rightWrite
	}
	e.ChargeNoIntr(uint64(nGroups) * 2)
	for g := firstGroup; g < firstGroup+nGroups; g++ {
		ko.setGroupAccess(g, r)
	}
	return nil
}

// SetKernelCPUShare adjusts a kernel's processor percentage allocation —
// the second specialized modify operation.
func (k *Kernel) SetKernelCPUShare(e *hw.Exec, kid ObjID, share []int) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	if caller != k.first {
		return ErrNotFirst
	}
	ko, ok := k.lookupKernel(kid)
	if !ok {
		return ErrInvalidID
	}
	e.ChargeNoIntr(costDescInit)
	ko.attrs.CPUShare = append([]int(nil), share...)
	return nil
}

// SetKernelMaxPriority adjusts the ceiling on priorities the kernel may
// assign its threads — the third specialized modify operation.
func (k *Kernel) SetKernelMaxPriority(e *hw.Exec, kid ObjID, maxPrio int) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	caller, err := k.callerKernel(e)
	if err != nil {
		return err
	}
	if caller != k.first {
		return ErrNotFirst
	}
	ko, ok := k.lookupKernel(kid)
	if !ok {
		return ErrInvalidID
	}
	if maxPrio < 0 || maxPrio >= k.Cfg.NumPriorities {
		return ErrBadArgument
	}
	e.ChargeNoIntr(costDescInit)
	ko.attrs.MaxPrio = maxPrio
	return nil
}

// sortedThreads returns map values in deterministic slot order.
func sortedThreads(m map[int32]*ThreadObj) []*ThreadObj {
	out := make([]*ThreadObj, 0, len(m))
	for i := int32(0); len(out) < len(m); i++ {
		if t, ok := m[i]; ok {
			out = append(out, t)
		}
	}
	return out
}

// sortedSpaces returns map values in deterministic slot order.
func sortedSpaces(m map[int32]*SpaceObj) []*SpaceObj {
	out := make([]*SpaceObj, 0, len(m))
	for i := int32(0); len(out) < len(m); i++ {
		if s, ok := m[i]; ok {
			out = append(out, s)
		}
	}
	return out
}
