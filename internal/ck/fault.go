package ck

import (
	"fmt"

	"vpp/internal/hw"
)

// Access-error forwarding (paper §2.1, Figure 2). On a fault the Cache
// Kernel saves the thread state, switches the thread to its owning
// application kernel's address space and exception stack, and starts it
// in the kernel's fault handler. The handler loads whatever mapping its
// policy selects (possibly evicting another), then resumes the thread —
// either with the separate resume call or the combined
// load-mapping-and-resume optimization.

// AccessError implements hw.Supervisor. It runs in the faulting thread's
// context; when it returns, the hardware retries the access.
func (k *Kernel) AccessError(e *hw.Exec, va uint32, write bool, f hw.Fault) {
	k.Stats.Faults++
	so := k.spaceByHW[e.Space]
	if so == nil {
		panic(fmt.Sprintf("ck: fault in unknown space (exec %q, va %#x)", e.Name, va))
	}
	owner := so.owner
	th := k.threadOf(e)
	if owner.attrs.Fault == nil {
		panic(fmt.Sprintf("ck: kernel %q has no fault handler (exec %q, va %#x, %v)",
			owner.attrs.Name, e.Name, va, f))
	}
	if owner.space == nil {
		panic(fmt.Sprintf("ck: kernel %q has no designated space for fault handling", owner.attrs.Name))
	}

	k.trace(e, "fault", fmt.Sprintf("%v access at %#x in %v (%v)", f, va, so.id, e.Name))
	// Steps 1-2: save state, switch to the application kernel's space
	// and exception stack, start the handler.
	e.ChargeNoIntr(costFaultTransfer)
	k.trace(e, "forward", fmt.Sprintf("state saved; switched to kernel %q handler", owner.attrs.Name))
	prevSpace, prevMode := e.Space, e.Mode
	e.Space = owner.space.hw
	e.Mode = hw.ModeKernel
	var tid ObjID
	if th != nil {
		tid = th.id
		th.faultDepth++
		th.optResumed = false
	}

	resume := owner.attrs.Fault(e, tid, so.id, va, write, f)
	k.trace(e, "handled", fmt.Sprintf("handler returned resume=%v", resume))

	if th != nil {
		th.faultDepth--
	}
	e.Space = k.currentSpaceFor(e, prevSpace)
	e.Mode = prevMode
	if !resume {
		// The handler abandoned the thread (for example after posting
		// a SEGV-style signal that terminated the process): unload its
		// descriptor and end the execution.
		if th != nil {
			if _, ok := k.threads.get(th.slot, th.id.gen()); ok {
				func() {
					// Mutates across charge points outside the trap
					// bracket: count the reclaim in flight.
					k.inCalls++
					defer func() { k.inCalls-- }()
					k.reclaimThread(e, th, false, true)
				}()
			}
		}
		e.Exit()
	}
	// Step 5-6: resume. The combined call already charged the return
	// path; a plain handler pays the separate resume-from-exception
	// trap.
	if th == nil || !th.optResumed {
		e.ChargeNoIntr(hw.CostTrapEntry + costFaultResume + hw.CostTrapExit)
	}
}

// RunAsUser executes fn with e switched into the given loaded space in
// user mode — how an application kernel resumes a faulting thread at a
// user-specified signal handler instead of loading a mapping (paper
// §2.1: the emulator "resumes the thread at the address corresponding
// to the user-specified UNIX signal handler"). Traps issued by fn are
// forwarded like any other user-mode traps.
func (k *Kernel) RunAsUser(e *hw.Exec, sid ObjID, fn func()) error {
	so, ok := k.lookupSpace(sid)
	if !ok {
		return ErrInvalidID
	}
	prevSpace, prevMode := e.Space, e.Mode
	e.Space = so.hw
	e.Mode = hw.ModeUser
	e.ChargeNoIntr(costFaultResume)
	fn()
	e.Space = k.currentSpaceFor(e, prevSpace)
	e.Mode = prevMode
	return nil
}

// LoadMappingAndResume is the combined call that loads a new mapping and
// returns from the exception handler in one trap — the optimized
// mapping-load path of Table 2. The handler must return true
// immediately after calling it.
func (k *Kernel) LoadMappingAndResume(e *hw.Exec, sid ObjID, spec MappingSpec) error {
	prev := k.enter(e)
	defer k.exit(e, prev)
	if err := k.loadMapping(e, sid, spec); err != nil {
		return err
	}
	k.trace(e, "load+resume", fmt.Sprintf("mapping va=%#x pfn=%#x loaded; exception completed", spec.VA, spec.PFN))
	e.ChargeNoIntr(costMappingLoadOptExtra)
	if th := k.threadOf(e); th != nil && th.faultDepth > 0 {
		th.optResumed = true
	}
	return nil
}
