package ck

import "fmt"

// CacheStat is one descriptor cache's observability counters: occupancy
// plus the caching model's four protocol events. Hits and misses count
// generation-validated identifier lookups (a miss is the model's
// "identifier failure"); loads/unloads/writebacks come from the kernel
// call accounting; reloads count allocations into previously-used slots
// — descriptor state regenerated into the cache after an earlier
// eviction or crash. All values derive only from simulation events, so
// they are byte-reproducible for a given seed at any shard count.
type CacheStat struct {
	Name     string
	Capacity int
	Loaded   int
	Hits     uint64
	Misses   uint64
	Loads    uint64
	Unloads  uint64
	Wbacks   uint64
	Reloads  uint64
}

// Occupancy is Loaded/Capacity in [0,1].
func (s CacheStat) Occupancy() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.Loaded) / float64(s.Capacity)
}

// String renders one cache's counters on a single line.
func (s CacheStat) String() string {
	return fmt.Sprintf("%s %d/%d loaded, %d hits / %d misses, %d loads / %d unloads / %d wb / %d reloads",
		s.Name, s.Loaded, s.Capacity, s.Hits, s.Misses, s.Loads, s.Unloads, s.Wbacks, s.Reloads)
}

// CacheCounters is the per-descriptor-cache view of one Cache Kernel
// instance — the first slice of the cache-observability roadmap item.
// The orchestration plane's placement score reads it, and `ckbench -exp
// t2` prints it alongside the paper table.
type CacheCounters struct {
	Kernels  CacheStat
	Spaces   CacheStat
	Threads  CacheStat
	Mappings CacheStat
}

// CacheCounters snapshots the per-cache counters. Mapping-cache hits
// are hardware translations (TLB hits summed over the MPM's
// processors): by the paper's design the loaded mapping cache *is* the
// translation hardware's backing store, so a TLB hit is the mapping
// cache's fast path and a page fault is its miss.
func (k *Kernel) CacheCounters() CacheCounters {
	var c CacheCounters
	c.Kernels = CacheStat{
		Name: "kernels", Capacity: k.kernels.Capacity(), Loaded: k.kernels.Loaded(),
		Hits: k.kernels.hits, Misses: k.kernels.misses, Reloads: k.kernels.reloads,
		Loads: k.Stats.KernelLoads, Unloads: k.Stats.KernelUnloads, Wbacks: k.Stats.KernelWritebacks,
	}
	c.Spaces = CacheStat{
		Name: "spaces", Capacity: k.spaces.Capacity(), Loaded: k.spaces.Loaded(),
		Hits: k.spaces.hits, Misses: k.spaces.misses, Reloads: k.spaces.reloads,
		Loads: k.Stats.SpaceLoads, Unloads: k.Stats.SpaceUnloads, Wbacks: k.Stats.SpaceWritebacks,
	}
	c.Threads = CacheStat{
		Name: "threads", Capacity: k.threads.Capacity(), Loaded: k.threads.Loaded(),
		Hits: k.threads.hits, Misses: k.threads.misses, Reloads: k.threads.reloads,
		Loads: k.Stats.ThreadLoads, Unloads: k.Stats.ThreadUnloads, Wbacks: k.Stats.ThreadWritebacks,
	}
	var tlbHits uint64
	for _, cpu := range k.MPM.CPUs {
		h, _ := cpu.TLB.Stats()
		tlbHits += h
	}
	c.Mappings = CacheStat{
		Name: "mappings", Capacity: k.pm.Capacity(), Loaded: k.pm.Live(),
		Hits: tlbHits, Misses: k.Stats.Faults, Reloads: k.pm.reloads,
		Loads: k.Stats.MappingLoads, Unloads: k.Stats.MappingUnloads, Wbacks: k.Stats.MappingWritebacks,
	}
	return c
}

// LoadScore is the orchestration plane's placement metric for this
// Cache Kernel: descriptor-cache pressure expressed as scaled occupancy
// plus accumulated miss traffic. Lower means a better placement target.
// Integer arithmetic only, so scores compare identically on every host.
func (c CacheCounters) LoadScore() uint64 {
	occ := func(s CacheStat) uint64 {
		if s.Capacity == 0 {
			return 0
		}
		return uint64(s.Loaded) * 1000 / uint64(s.Capacity)
	}
	// Occupancy dominates (a full thread cache means eviction churn for
	// every newcomer); misses break ties between similarly-full MPMs.
	return 4*(occ(c.Kernels)+occ(c.Spaces)+occ(c.Threads)+occ(c.Mappings)) +
		(c.Kernels.Misses + c.Spaces.Misses + c.Threads.Misses + c.Mappings.Misses)
}
