package ck

// objCache is the fixed-capacity descriptor cache underlying each object
// type. Slots are recycled in least-recently-loaded order when the cache
// is full; locked slots are skipped by reclamation (but see the
// dependency rules in unload: a locked object with an unlocked
// dependency is still reclaimable through that dependency).
//
// The descriptor array is allocated once at boot and accounted against
// the MPM's local RAM with the paper's descriptor byte sizes, so the
// Section 5.2 memory arithmetic reproduces.
type objCache[T any] struct {
	name  string
	slots []cacheSlot[T]
	free  []int32
	// Intrusive LRU of loaded slots: head is least recently used.
	lruHead, lruTail int32
	loaded           int

	// Cache-observability counters (derived purely from simulation
	// events, so they are as deterministic as the virtual clock). A hit
	// is a generation-valid identifier lookup; a miss is a lookup whose
	// identifier no longer names a loaded object — the caching model's
	// "identifier failure" event; a reload is an allocation into a slot
	// that has held an object before (the reload half of the
	// writeback/reload protocol, at slot granularity).
	hits, misses, reloads uint64
}

type cacheSlot[T any] struct {
	obj        T
	gen        uint32
	inUse      bool
	locked     bool
	prev, next int32
}

func newObjCache[T any](name string, capacity int) *objCache[T] {
	c := &objCache[T]{
		name:    name,
		slots:   make([]cacheSlot[T], capacity),
		lruHead: -1,
		lruTail: -1,
	}
	// Push free slots so that slot 0 is allocated first.
	for i := capacity - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	return c
}

// alloc takes a free slot, returning its index and new generation, or
// ok=false if the cache is full (caller must evict first).
func (c *objCache[T]) alloc() (idx int32, gen uint32, ok bool) {
	if len(c.free) == 0 {
		return 0, 0, false
	}
	idx = c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	s := &c.slots[idx]
	s.gen++
	if s.gen > 1 {
		c.reloads++
	}
	s.inUse = true
	s.locked = false
	s.prev, s.next = -1, -1
	c.lruAppend(idx)
	c.loaded++
	return idx, s.gen, true
}

// get returns the object in slot idx if the generation matches.
func (c *objCache[T]) get(idx int32, gen uint32) (T, bool) {
	var zero T
	if idx < 0 || int(idx) >= len(c.slots) {
		c.misses++
		return zero, false
	}
	s := &c.slots[idx]
	if !s.inUse || s.gen != gen {
		c.misses++
		return zero, false
	}
	c.hits++
	return s.obj, true
}

// valid reports whether slot idx currently holds generation gen. It
// does not touch the hit/miss accounting: the counters model identifier
// lookups by kernel operations, and this is internal revalidation
// across a yield point.
func (c *objCache[T]) valid(idx int32, gen uint32) bool {
	return idx >= 0 && int(idx) < len(c.slots) && c.slots[idx].inUse && c.slots[idx].gen == gen
}

// set stores the object value in an allocated slot.
func (c *objCache[T]) set(idx int32, obj T) { c.slots[idx].obj = obj }

// at returns the object in slot idx regardless of generation; the slot
// must be in use.
func (c *objCache[T]) at(idx int32) T {
	if !c.slots[idx].inUse {
		panic(c.name + ": at() on free slot")
	}
	return c.slots[idx].obj
}

// peek returns the object in slot idx if the slot is in use, without a
// generation check. Unlike at it tolerates free (and out-of-range)
// slots, for callers chasing dependency records that may outlive the
// object they name.
func (c *objCache[T]) peek(idx int32) (T, bool) {
	var zero T
	if idx < 0 || int(idx) >= len(c.slots) || !c.slots[idx].inUse {
		return zero, false
	}
	return c.slots[idx].obj, true
}

// release frees slot idx for reuse.
func (c *objCache[T]) release(idx int32) {
	s := &c.slots[idx]
	if !s.inUse {
		panic(c.name + ": release of free slot")
	}
	var zero T
	c.lruRemove(idx)
	s.inUse = false
	s.locked = false
	s.obj = zero
	c.free = append(c.free, idx)
	c.loaded--
}

// wipe releases every slot at once without running any reclaim or
// writeback protocol — the crash path. Per-slot generation counters
// are preserved (alloc bumps them), so no identifier handed out before
// the wipe can ever validate against an object loaded after it. The
// free list is rebuilt in boot order so a post-crash reboot allocates
// slots in exactly the sequence a fresh cache would.
func (c *objCache[T]) wipe() {
	var zero T
	for i := range c.slots {
		s := &c.slots[i]
		s.inUse = false
		s.locked = false
		s.obj = zero
		s.prev, s.next = -1, -1
	}
	c.free = c.free[:0]
	for i := len(c.slots) - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	c.lruHead, c.lruTail = -1, -1
	c.loaded = 0
}

// touch marks slot idx most recently used.
func (c *objCache[T]) touch(idx int32) {
	c.lruRemove(idx)
	c.lruAppend(idx)
}

// setLocked marks or clears the slot's lock bit.
func (c *objCache[T]) setLocked(idx int32, locked bool) { c.slots[idx].locked = locked }

// lockedSlot reports the slot's lock bit.
func (c *objCache[T]) lockedSlot(idx int32) bool { return c.slots[idx].locked }

// victim returns the least recently used reclaimable slot. reclaimable
// lets the caller apply the dependency-aware locking rule (an object is
// protected only when it and everything it depends on are locked).
// ok=false means every loaded slot is protected.
func (c *objCache[T]) victim(reclaimable func(idx int32) bool) (int32, bool) {
	for idx := c.lruHead; idx != -1; idx = c.slots[idx].next {
		if reclaimable(idx) {
			return idx, true
		}
	}
	return -1, false
}

// forEach visits every loaded slot in LRU order.
func (c *objCache[T]) forEach(fn func(idx int32, obj T) bool) {
	for idx := c.lruHead; idx != -1; {
		next := c.slots[idx].next // fn may release idx
		if !fn(idx, c.slots[idx].obj) {
			return
		}
		idx = next
	}
}

// Loaded reports the number of slots in use.
func (c *objCache[T]) Loaded() int { return c.loaded }

// Capacity reports the total slot count.
func (c *objCache[T]) Capacity() int { return len(c.slots) }

// CacheShape is the structural skeleton of a descriptor cache: every
// slot's generation and lock bit, the loaded set in exact LRU order,
// the free list in exact stack order, and the observability counters.
// Together with the per-slot objects it is a complete capture — a cache
// restored from a shape allocates future slots in the identical order
// and mints identical (generation-bearing) identifiers.
type CacheShape struct {
	Gens                  []uint32
	Locked                []bool
	LRU                   []int32 // loaded slots, least recently used first
	Free                  []int32
	Hits, Misses, Reloads uint64
}

// shape captures the cache's structural skeleton.
func (c *objCache[T]) shape() CacheShape {
	sh := CacheShape{
		Gens:    make([]uint32, len(c.slots)),
		Locked:  make([]bool, len(c.slots)),
		Free:    append([]int32(nil), c.free...),
		Hits:    c.hits,
		Misses:  c.misses,
		Reloads: c.reloads,
	}
	for i := range c.slots {
		sh.Gens[i] = c.slots[i].gen
		sh.Locked[i] = c.slots[i].locked
	}
	for idx := c.lruHead; idx != -1; idx = c.slots[idx].next {
		sh.LRU = append(sh.LRU, idx)
	}
	return sh
}

// restoreShape overwrites the cache's skeleton with a captured shape;
// obj supplies the object for each loaded slot (called in LRU order).
// The cache must have the captured capacity and be freshly built or
// wiped (no loaded slots).
func (c *objCache[T]) restoreShape(sh CacheShape, obj func(slot int32) (T, error)) error {
	if len(sh.Gens) != len(c.slots) {
		return errShape(c.name, "capacity", len(sh.Gens), len(c.slots))
	}
	if c.loaded != 0 {
		return errShape(c.name, "loaded slots at restore", c.loaded, 0)
	}
	if len(sh.Free)+len(sh.LRU) != len(c.slots) {
		return errShape(c.name, "free+loaded", len(sh.Free)+len(sh.LRU), len(c.slots))
	}
	for i := range c.slots {
		c.slots[i] = cacheSlot[T]{gen: sh.Gens[i], prev: -1, next: -1}
	}
	c.free = append(c.free[:0], sh.Free...)
	c.lruHead, c.lruTail = -1, -1
	c.loaded = 0
	for _, idx := range sh.LRU {
		if idx < 0 || int(idx) >= len(c.slots) || c.slots[idx].inUse {
			return errShape(c.name, "LRU slot", int(idx), len(c.slots))
		}
		o, err := obj(idx)
		if err != nil {
			return err
		}
		s := &c.slots[idx]
		s.obj = o
		s.inUse = true
		s.locked = sh.Locked[idx]
		c.lruAppend(idx)
		c.loaded++
	}
	c.hits = sh.Hits
	c.misses = sh.Misses
	c.reloads = sh.Reloads
	return nil
}

func (c *objCache[T]) lruAppend(idx int32) {
	s := &c.slots[idx]
	s.prev = c.lruTail
	s.next = -1
	if c.lruTail != -1 {
		c.slots[c.lruTail].next = idx
	} else {
		c.lruHead = idx
	}
	c.lruTail = idx
}

func (c *objCache[T]) lruRemove(idx int32) {
	s := &c.slots[idx]
	if s.prev != -1 {
		c.slots[s.prev].next = s.next
	} else if c.lruHead == idx {
		c.lruHead = s.next
	}
	if s.next != -1 {
		c.slots[s.next].prev = s.prev
	} else if c.lruTail == idx {
		c.lruTail = s.prev
	}
	s.prev, s.next = -1, -1
}
