package ck

import (
	"fmt"

	"vpp/internal/hw"
)

// Memory-based messaging (paper §2.2, §4.1). Threads communicate by
// writing into pages mapped in message mode; the hardware's
// signal-on-write raises MessageWrite here, and the Cache Kernel
// delivers the written address — translated into each receiver's virtual
// address — to the signal threads registered in the page's mappings.

// MessageWrite implements hw.Supervisor: e completed a write to a
// message-mode page at (va, pa).
func (k *Kernel) MessageWrite(e *hw.Exec, va, pa uint32) {
	k.Stats.SignalsGenerated++
	k.trace(e, "signal-generate", fmt.Sprintf("write to message page va=%#x pa=%#x", va, pa))
	e.ChargeNoIntr(costSignalGenerate)
	pfn := pa >> hw.PageShift
	offset := pa & (hw.PageSize - 1)
	sender := k.threadOf(e)

	// Fast path: the sending processor's reverse TLB has a current
	// receiver set for this frame.
	var rt *rtlb
	if cpu := e.CPU; cpu != nil && cpu.Index < len(k.rtlbs) {
		rt = k.rtlbs[cpu.Index]
	}
	if rt != nil {
		if recv, ok := rt.lookup(pfn, k.pmVersion); ok {
			for _, rc := range recv {
				to, ok := k.threads.get(rc.threadSlot, rc.gen)
				if !ok {
					continue
				}
				if sender != nil && to == sender {
					continue
				}
				e.ChargeNoIntr(costSignalFast)
				k.Stats.SignalsFast++
				k.deliverSignal(to, rc.va|offset, e.Now(), e)
			}
			return
		}
	}

	// Two-stage lookup: physical-to-virtual records for the frame, then
	// signal records keyed by each record's handle.
	var recv []rtlbReceiver
	probes := k.pm.findEach(depPhysVirt, pfn, func(pvIdx int32, r *depRecord) bool {
		rva := r.dep
		probes2 := k.pm.findEach(depSignal, uint32(pvIdx), func(_ int32, sr *depRecord) bool {
			to := k.threads.at(int32(sr.dep))
			recv = append(recv, rtlbReceiver{threadSlot: to.slot, gen: to.id.gen(), va: rva})
			return true
		})
		e.ChargeNoIntr(uint64(probes2) * costHashProbe)
		return true
	})
	e.ChargeNoIntr(uint64(probes) * costHashProbe)
	for _, rc := range recv {
		to, ok := k.threads.get(rc.threadSlot, rc.gen)
		if !ok {
			continue
		}
		if sender != nil && to == sender {
			continue
		}
		e.ChargeNoIntr(costSignalTwoStage)
		k.Stats.SignalsTwoStage++
		k.deliverSignal(to, rc.va|offset, e.Now(), e)
	}
	if rt != nil {
		rt.fill(pfn, k.pmVersion, recv)
	}
}

// deliverSignal hands an address-valued signal to a thread, first
// letting an installed fault injector lose or duplicate it (the
// inter-processor interrupt behind the delivery is the lossy part;
// queue state inside the Cache Kernel is not).
func (k *Kernel) deliverSignal(to *ThreadObj, value uint32, nowHint uint64, e *hw.Exec) {
	if f := k.SignalFault; f != nil {
		v := f(to.id, value)
		if v.Drop {
			k.Stats.SignalsInjDropped++
			k.trace(e, "chaos-drop-signal", fmt.Sprintf("to %v value=%#x", to.id, value))
			return
		}
		if v.Dup {
			k.Stats.SignalsInjDuplicated++
			k.trace(e, "chaos-dup-signal", fmt.Sprintf("to %v value=%#x", to.id, value))
			k.deliverSignalOnce(to, value, nowHint, e)
		}
	}
	k.deliverSignalOnce(to, value, nowHint, e)
}

// deliverSignalOnce wakes the thread if it blocked in WaitSignal and
// queues otherwise ("while the thread is running in its signal
// function, additional signals are queued within the Cache Kernel").
func (k *Kernel) deliverSignalOnce(to *ThreadObj, value uint32, nowHint uint64, e *hw.Exec) {
	k.trace(e, "signal-deliver", fmt.Sprintf("to %v value=%#x", to.id, value))
	if to.waitingSignal {
		to.waitingSignal = false
		to.sigPending = true
		to.sigValue = value
		if e != nil {
			e.ChargeNoIntr(hw.CostIPI)
		}
		k.sched.makeReady(to, nowHint)
		return
	}
	if len(to.sigQueue) < k.Cfg.SignalQueueLimit {
		to.sigQueue = append(to.sigQueue, value)
		k.Stats.SignalsQueued++
		if e != nil {
			e.ChargeNoIntr(costSignalEnqueue)
		}
		return
	}
	to.sigDropped++
	k.Stats.SignalsDropped++
}

// RaiseDeviceSignal delivers an address-valued signal from a device
// (engine or device-execution context): the path by which the clock,
// network interfaces and the fiber channel notify threads. Devices are
// hardware — no kernel permission check applies. It reports whether the
// thread was still loaded.
func (k *Kernel) RaiseDeviceSignal(id ObjID, value uint32) bool {
	to, ok := k.lookupThread(id)
	if !ok {
		return false
	}
	k.deliverSignal(to, value, k.MPM.Shard.Now(), nil)
	return true
}

// SignalReturn charges the return-from-signal-handler path; the
// communication library calls it when a receiver finishes processing a
// signal (Section 5.3 measures delivery and return separately).
func (k *Kernel) SignalReturn(e *hw.Exec) {
	e.ChargeNoIntr(costSignalReturn)
}

// RTLBStats reports per-CPU reverse-TLB hits and misses.
func (k *Kernel) RTLBStats() (hits, misses uint64) {
	for _, r := range k.rtlbs {
		h, m := r.stats()
		hits += h
		misses += m
	}
	return hits, misses
}
