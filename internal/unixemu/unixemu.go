// Package unixemu is a UNIX emulator application kernel for the V++
// Cache Kernel reproduction (paper Section 2's running example). It
// provides processes with stable pids on top of Cache-Kernel address
// spaces and threads whose identifiers change across reload, demand
// paging from a RAM-disk backing store, a priority-adjusting scheduler
// thread, sleeping via thread unload/reload, swapping of idle
// processes, and a UNIX-like system call interface reached through the
// trap-forwarding path.
//
// One deliberate substitution: programs are Go closures registered in a
// program table, so process creation is spawn/exec-style rather than
// fork() — a parked Go closure cannot be duplicated the way a page-table
// copy can. Copy-on-write address-space copying is still exercised by
// the deferred-copy mapping tests; see DESIGN.md.
package unixemu

import (
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
)

// System call numbers (V7-flavoured where it matters).
const (
	SysExit   = 1
	SysRead   = 3
	SysWrite  = 4
	SysOpen   = 5
	SysClose  = 6
	SysWait   = 7
	SysCreat  = 8
	SysSbrk   = 17
	SysGetpid = 20
	SysSleep  = 35
	SysKill   = 37
	SysSpawn  = 59 // exec-flavoured: start a registered program
	SysYield  = 158
)

// Errno values returned in r1 when r0 is ^uint32(0).
const (
	EOK    = 0
	EPERM  = 1
	ENOENT = 2
	ESRCH  = 3
	EBADF  = 9
	ECHILD = 10
	ENOMEM = 12
	EFAULT = 14
	EINVAL = 22
	ENFILE = 23
	EMFILE = 24
	ENOSPC = 28
)

// Program is the body of a user process. Its only interface to the
// system is the ProcEnv, whose methods issue real trap instructions.
type Program func(env *ProcEnv)

// Config tunes the emulator.
type Config struct {
	MaxProcs int
	// SchedInterval is the scheduler thread's rescheduling interval in
	// cycles.
	SchedInterval uint64
	// SwapAfter is the number of scheduler intervals a process must
	// stay asleep before the swapper unloads its address space.
	SwapAfter int
	// UserPrio / MaxUserPrio bound user process priorities.
	UserPrio    int
	MaxUserPrio int
}

// DefaultConfig returns the standard emulator tuning.
func DefaultConfig() Config {
	return Config{
		MaxProcs:      64,
		SchedInterval: hw.CyclesFromMicros(20_000), // 20 ms
		SwapAfter:     4,
		UserPrio:      16,
		MaxUserPrio:   30,
	}
}

// Unix is one UNIX emulator instance running as an application kernel.
type Unix struct {
	AK  *aklib.AppKernel
	K   *ck.Kernel
	Cfg Config

	FS *RamFS

	procs   map[int]*Proc
	nextPID int

	programs map[string]Program

	schedThread *aklib.Thread
	schedExec   *hw.Exec
	sleepQ      []*sleeper
	stopSched   bool
	deadSpaces  []ck.ObjID

	// Console accumulates writes to file descriptors 1 and 2.
	Console []byte

	// Stats for the evaluation harness.
	Syscalls    uint64
	Wakeups     uint64
	SwapsOut    uint64
	SwapsIn     uint64
	Segvs       uint64
	Reschedules uint64
	// Restarts counts processes rerun from their program start after a
	// Cache Kernel crash destroyed their running execution context.
	Restarts uint64
}

type sleeper struct {
	deadline uint64
	proc     *Proc
}

// New creates an emulator bound to a launched application kernel. Call
// it inside the kernel's main thread, then Run.
func New(ak *aklib.AppKernel, cfg Config) *Unix {
	if cfg.MaxProcs == 0 {
		cfg = DefaultConfig()
	}
	u := &Unix{
		AK:       ak,
		K:        ak.CK,
		Cfg:      cfg,
		FS:       NewRamFS(),
		procs:    make(map[int]*Proc),
		nextPID:  1,
		programs: make(map[string]Program),
	}
	ak.OnTrap = u.syscall
	ak.OnFault = u.fault
	ak.OnRecover = u.Recover
	return u
}

// Recover rebuilds the emulator's Cache Kernel state after a
// crash-reboot of the MPM's instance. The SRM runs it (via the
// application kernel's OnRecover hook) on a fresh thread in the
// emulator's own space once the kernel object and space are reloaded.
//
// The emulator is the backing store of the caching model: pids, program
// closures, segment contents and the RAM disk all survived in emulator
// memory. Only the cached descriptors died, so recovery is re-loading:
// a fresh address space per live process, thread reloads for processes
// that were parked at the crash, and a rerun from the program start for
// processes whose execution context was running on a CPU when the crash
// hit (register state is unrecoverable; the program is not).
func (u *Unix) Recover(e *hw.Exec) {
	// Deferred space unloads refer to identifiers that died with the
	// crash; dropping the queue is the unload.
	u.deadSpaces = nil
	// The scheduler thread was parked in WaitSignal (reloading resumes
	// it spuriously and its loop re-arms the alarm under the fresh
	// identifier) or was killed on a CPU (revive reruns the loop).
	if u.schedThread != nil {
		u.schedThread.MarkUnloaded()
		u.schedThread.Revive()
		u.schedThread.SpaceID = u.AK.SpaceID
		_ = u.schedThread.Load(e, false)
	}
	for _, p := range u.sortedProcs() {
		if p.state == procZombie {
			continue
		}
		p.thread.MarkUnloaded()
		if p.state == procSleeping {
			// A sleeper stays unloaded until its deadline; marking it
			// swapped routes its wakeup through swapIn, which loads the
			// fresh space its reload needs.
			p.swapped = true
			continue
		}
		if p.thread.Exec.Finished() && p.thread.Revive() {
			u.Restarts++
		}
		if err := u.swapIn(e, p); err != nil {
			continue
		}
		if err := p.thread.Load(e, false); err != nil {
			continue
		}
	}
}

// RegisterProgram installs a named program (the emulator's "file system
// binding of virtual addresses to code": here a program table, since
// code is native Go).
func (u *Unix) RegisterProgram(name string, p Program) { u.programs[name] = p }

// StartScheduler launches the emulator's scheduler thread: it wakes on
// each rescheduling interval via a clock alarm, adjusts priorities,
// reloads due sleepers and swaps out long-idle processes (paper §2.3,
// §4.3). It must run from the emulator's main thread.
func (u *Unix) StartScheduler(e *hw.Exec) error {
	u.schedThread = u.AK.NewThread("sched", u.AK.SpaceID, u.Cfg.MaxUserPrio+4, u.schedulerLoop)
	return u.schedThread.Load(e, false)
}

// StopScheduler asks the scheduler thread to exit at its next interval.
func (u *Unix) StopScheduler() { u.stopSched = true }

func (u *Unix) schedulerLoop(e *hw.Exec) {
	u.schedExec = e
	k := u.K
	for !u.stopSched {
		me := u.schedThread.TID
		if err := k.SetAlarm(e, me, e.Now()+u.Cfg.SchedInterval, 0); err != nil {
			return
		}
		if _, err := k.WaitSignal(e); err != nil {
			return
		}
		u.Reschedules++
		u.reapSpaces(e)
		u.wakeSleepers(e)
		u.adjustPriorities(e)
		u.swapIdle(e)
	}
}

// wakeSleepers reloads threads whose sleep deadline passed — the
// on-demand thread reloading of paper §2.3.
func (u *Unix) wakeSleepers(e *hw.Exec) {
	now := e.Now()
	var rest []*sleeper
	for _, s := range u.sleepQ {
		if s.deadline <= now && s.proc.state == procSleeping {
			if err := u.wakeup(e, s.proc); err != nil {
				rest = append(rest, s)
			}
		} else if s.proc.state == procSleeping {
			rest = append(rest, s)
		}
	}
	u.sleepQ = rest
}

// wakeup makes a sleeping process runnable again, swapping it in first
// if needed.
func (u *Unix) wakeup(e *hw.Exec, p *Proc) error {
	if p.swapped {
		if err := u.swapIn(e, p); err != nil {
			return err
		}
	}
	if err := p.thread.Load(e, false); err != nil {
		if err == ck.ErrInvalidID {
			// Space written back concurrently: reload it and retry —
			// the paper's retry protocol.
			if err := u.swapIn(e, p); err != nil {
				return err
			}
			if err := p.thread.Load(e, false); err != nil {
				return err
			}
		} else {
			return err
		}
	}
	p.state = procRunning
	p.idleIntervals = 0
	u.Wakeups++
	return nil
}

// adjustPriorities implements the UNIX-style policy: processes that ran
// compute-bound through the whole interval degrade toward the bottom of
// the user range (reducing the drain on the kernel's quota); processes
// that slept recover (paper §2.3, §4.3).
func (u *Unix) adjustPriorities(e *hw.Exec) {
	for _, p := range u.sortedProcs() {
		if p.state != procRunning || !p.thread.Loaded {
			continue
		}
		if p.sleptRecently {
			p.dynPrio = u.Cfg.UserPrio + 4
			p.sleptRecently = false
		} else if p.dynPrio > 2 {
			p.dynPrio--
		}
		if p.dynPrio > u.Cfg.MaxUserPrio {
			p.dynPrio = u.Cfg.MaxUserPrio
		}
		_ = p.thread.SetPriority(e, p.dynPrio)
	}
}

// swapIdle unloads the address spaces of long-sleeping processes so they
// consume no Cache Kernel descriptors (paper §2.3).
func (u *Unix) swapIdle(e *hw.Exec) {
	for _, p := range u.sortedProcs() {
		if p.state != procSleeping || p.swapped {
			continue
		}
		p.idleIntervals++
		if p.idleIntervals >= u.Cfg.SwapAfter {
			u.swapOut(e, p)
		}
	}
}

// swapOut unloads a process's address space (and with it any mappings);
// the thread is already unloaded because the process sleeps.
func (u *Unix) swapOut(e *hw.Exec, p *Proc) {
	if err := u.K.UnloadSpace(e, p.sid); err != nil && err != ck.ErrInvalidID {
		return
	}
	u.AK.DetachSpace(p.sid)
	p.swapped = true
	u.SwapsOut++
}

// swapIn reloads a swapped process's address space under a fresh
// identifier; pages refault on demand from the retained frames.
func (u *Unix) swapIn(e *hw.Exec, p *Proc) error {
	sid, err := u.K.LoadSpace(e, false)
	if err != nil {
		return err
	}
	p.sid = sid
	p.sm.SID = sid
	u.AK.AttachSpace(sid, p.sm)
	p.thread.SpaceID = sid
	p.swapped = false
	u.SwapsIn++
	return nil
}

func (u *Unix) sortedProcs() []*Proc {
	out := make([]*Proc, 0, len(u.procs))
	for pid := 1; pid < u.nextPID; pid++ {
		if p, ok := u.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// procByThread resolves the process of a trapping thread.
func (u *Unix) procByThread(tid ck.ObjID) *Proc {
	for _, p := range u.sortedProcs() {
		if p.thread != nil && p.thread.Loaded && p.thread.TID == tid {
			return p
		}
	}
	return nil
}

// fault handles access errors in process spaces that the segment
// managers cannot satisfy: the SEGV path. With a handler registered the
// process runs it; otherwise the process dies (paper §2.1).
func (u *Unix) fault(e *hw.Exec, thread, space ck.ObjID, va uint32, write bool, kind hw.Fault) (bool, bool) {
	sm := u.AK.SpaceManager(space)
	if sm != nil && sm.HandleFault(e, va, write) {
		return true, true
	}
	p := u.procByThread(thread)
	if p == nil {
		return true, false // not one of ours: kill
	}
	u.Segvs++
	if p.segvHandler != nil {
		// Resume the thread at the user's signal handler, in user mode
		// in its own space (paper §2.1).
		h := p.segvHandler
		p.segvHandler = nil // one-shot, like entry-time SIG_DFL reset
		_ = u.K.RunAsUser(e, space, func() { h(p.env, va) })
		return true, !p.dead
	}
	u.exitProc(e, p, 0xff, true)
	return true, false
}

// errno packs an error return.
func errno(code uint32) (uint32, uint32) { return ^uint32(0), code }

// syscall dispatches a forwarded trap (paper §2.3's trap forwarding).
func (u *Unix) syscall(e *hw.Exec, thread ck.ObjID, no uint32, args []uint32) (uint32, uint32) {
	u.Syscalls++
	p := u.procByThread(thread)
	if p == nil {
		return errno(ESRCH)
	}
	arg := func(i int) uint32 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch no {
	case SysGetpid:
		e.Instr(4) // pid table lookup
		return uint32(p.pid), 0
	case SysExit:
		u.exitProc(e, p, arg(0), false)
		return 0, 0 // not reached by the caller; thread unloaded
	case SysSbrk:
		return u.sbrk(e, p, int32(arg(0)))
	case SysOpen, SysCreat:
		return u.open(e, p, arg(0), no == SysCreat)
	case SysClose:
		return u.close(p, int(arg(0)))
	case SysRead:
		return u.readWrite(e, p, int(arg(0)), arg(1), arg(2), false)
	case SysWrite:
		return u.readWrite(e, p, int(arg(0)), arg(1), arg(2), true)
	case SysSleep:
		return u.sleep(e, p, uint64(arg(0)))
	case SysWait:
		return u.wait(e, p)
	case SysKill:
		return u.kill(e, p, int(arg(0)))
	case SysSpawn:
		return u.spawnSyscall(e, p, arg(0), arg(1))
	case SysYield:
		e.Instr(2)
		return 0, 0
	}
	return errno(EINVAL)
}

func (u *Unix) String() string {
	return fmt.Sprintf("unixemu(%d procs)", len(u.procs))
}
