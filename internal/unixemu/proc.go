package unixemu

import (
	"fmt"
	"sort"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
)

// Process address-space layout.
const (
	TextBase     = 0x0040_0000 // program "text" (unused by native code, mapped for realism)
	DataBase     = 0x1000_0000 // heap, grows with sbrk
	StackBase    = 0x7000_0000
	StackPages   = 16
	HeapMaxPages = 4096
)

type procState int

const (
	procRunning procState = iota
	procSleeping
	procWaiting
	procZombie
)

// Proc is the emulator's per-process record: the stable structure behind
// the changing Cache Kernel identifiers (paper §2: "the UNIX emulator
// provides a stable UNIX-like process identifier that is independent of
// the Cache Kernel address space and thread identifiers").
type Proc struct {
	pid    int
	parent *Proc
	u      *Unix

	sid    ck.ObjID
	sm     *aklib.SegmentManager
	thread *aklib.Thread
	env    *ProcEnv

	heap     *aklib.Segment
	stack    *aklib.Segment
	brkPages uint32

	fds      []*FD
	state    procState
	swapped  bool
	dead     bool
	exitCode uint32

	dynPrio       int
	sleptRecently bool
	idleIntervals int

	segvHandler func(env *ProcEnv, va uint32)

	waiters []ck.ObjID // threads blocked in wait() on this process
}

// PID reports the stable process identifier.
func (p *Proc) PID() int { return p.pid }

// ExitCode reports the exit status of a zombie.
func (p *Proc) ExitCode() uint32 { return p.exitCode }

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool { return p.state == procZombie }

// State strings for diagnostics.
func (p *Proc) stateName() string {
	switch p.state {
	case procRunning:
		return "run"
	case procSleeping:
		return "sleep"
	case procWaiting:
		return "wait"
	case procZombie:
		return "zombie"
	}
	return "?"
}

// Spawn creates a new process running the named registered program —
// the emulator "executes a new process by loading an address space
// object into the Cache Kernel for the new process to run in and a new
// thread descriptor to execute this program" (paper §2.1).
func (u *Unix) Spawn(e *hw.Exec, name string, parent *Proc) (*Proc, error) {
	prog := u.programs[name]
	if prog == nil {
		return nil, fmt.Errorf("unixemu: no program %q", name)
	}
	if len(u.procs) >= u.Cfg.MaxProcs {
		return nil, fmt.Errorf("unixemu: process table full")
	}
	sid, err := u.K.LoadSpace(e, false)
	if err != nil {
		return nil, err
	}
	p := &Proc{
		pid:     u.nextPID,
		parent:  parent,
		u:       u,
		sid:     sid,
		dynPrio: u.Cfg.UserPrio,
	}
	u.nextPID++
	p.sm = aklib.NewSegmentManager(u.AK, sid)
	// Heap and stack are demand-paged anonymous segments backed by the
	// RAM disk's swap area so page-out works.
	swap := u.FS.SwapBacking(fmt.Sprintf("swap/%d", p.pid))
	p.heap, err = p.sm.Map(e, "heap", DataBase, HeapMaxPages, aklib.SegFlags{Writable: true}, swap)
	if err != nil {
		// Best-effort cleanup of the just-loaded space; the Map error
		// is what the caller needs to see.
		_ = u.K.UnloadSpace(e, sid)
		return nil, err
	}
	p.brkPages = 0
	p.stack, err = p.sm.Map(e, "stack", StackBase, StackPages, aklib.SegFlags{Writable: true}, swap)
	if err != nil {
		_ = u.K.UnloadSpace(e, sid) // best-effort cleanup, keep the Map error
		return nil, err
	}
	p.fds = make([]*FD, 3) // stdin/stdout/stderr slots (console-less)
	p.env = &ProcEnv{u: u, p: p}
	p.thread = u.AK.NewThread(fmt.Sprintf("pid%d", p.pid), sid, p.dynPrio, func(te *hw.Exec) {
		p.env.e = te
		prog(p.env)
		// Falling off main is exit(0).
		if !p.dead {
			p.env.Exit(0)
		}
	})
	if err := p.thread.Load(e, false); err != nil {
		_ = u.K.UnloadSpace(e, sid) // best-effort cleanup, keep the Load error
		return nil, err
	}
	u.procs[p.pid] = p
	return p, nil
}

// exitProc tears a process down: unload its thread and space, free its
// frames, mark it zombie and wake any waiters. selfExit distinguishes a
// voluntary exit (the calling thread is the process) from a kill by the
// fault path.
func (u *Unix) exitProc(e *hw.Exec, p *Proc, code uint32, killed bool) {
	if p.dead {
		return
	}
	p.dead = true
	p.exitCode = code
	p.state = procZombie

	// Free segment frames (retained data is gone: the process is over).
	if p.sm != nil {
		for _, seg := range p.sm.Segments() {
			for i := uint32(0); i < seg.Pages; i++ {
				if pfn, ok := seg.PFN(i); ok {
					u.AK.Frames.Free(pfn)
				}
			}
		}
	}
	// Wake waiters before unloading ourselves.
	for _, w := range p.waiters {
		_ = u.K.PostSignal(e, w, uint32(p.pid))
	}
	p.waiters = nil

	self := p.thread != nil && p.thread.Loaded && p.thread.Exec == e
	if !p.swapped {
		// Unloading the space also unloads the thread and mappings,
		// dependency-first. We must not unload the calling thread's
		// space out from under the running trap handler, so the thread
		// goes first when exiting voluntarily.
		if self {
			// Self-unload parks this execution permanently; the space
			// unload is deferred to the scheduler thread's next pass
			// (the space cannot be torn down under a live trap frame).
			tid := p.thread.TID
			u.AK.DetachSpace(p.sid)
			p.thread.MarkUnloaded()
			u.deferSpaceUnload(p.sid)
			_, _ = u.K.UnloadThread(e, tid) // never returns for self
			return
		}
		if p.thread.Loaded {
			_ = p.thread.Unload(e)
		}
		_ = u.K.UnloadSpace(e, p.sid)
		u.AK.DetachSpace(p.sid)
	}
}

// deferSpaceUnload queues a space for teardown by the scheduler thread
// (used on voluntary exit, where the exiting thread cannot survive its
// own space unload).
func (u *Unix) deferSpaceUnload(sid ck.ObjID) {
	u.deadSpaces = append(u.deadSpaces, sid)
}

// reapSpaces unloads queued dead spaces.
func (u *Unix) reapSpaces(e *hw.Exec) {
	for _, sid := range u.deadSpaces {
		if err := u.K.UnloadSpace(e, sid); err != nil && err != ck.ErrInvalidID {
			continue
		}
		u.AK.DetachSpace(sid)
	}
	u.deadSpaces = nil
}

// sbrk grows (or shrinks) the heap by delta bytes, page-rounded,
// returning the old break.
func (u *Unix) sbrk(e *hw.Exec, p *Proc, delta int32) (uint32, uint32) {
	oldBrk := DataBase + p.brkPages*hw.PageSize
	pages := (delta + hw.PageSize - 1) / hw.PageSize
	newPages := int32(p.brkPages) + pages
	if newPages < 0 || newPages > HeapMaxPages {
		return errno(ENOMEM)
	}
	p.brkPages = uint32(newPages)
	e.Instr(8)
	return oldBrk, 0
}

// sleep blocks the process for ms milliseconds by unloading its thread;
// the scheduler thread reloads it when the deadline passes (paper §2.3:
// "a thread is unloaded when it begins to sleep ... reloaded when a
// wakeup call is issued").
func (u *Unix) sleep(e *hw.Exec, p *Proc, ms uint64) (uint32, uint32) {
	deadline := e.Now() + ms*1000*hw.CyclesPerMicrosecond
	p.state = procSleeping
	p.sleptRecently = true
	u.sleepQ = append(u.sleepQ, &sleeper{deadline: deadline, proc: p})
	tid := p.thread.TID
	p.thread.MarkUnloaded() // unloading self: record it ourselves
	if _, err := u.K.UnloadThread(e, tid); err != nil {
		p.state = procRunning
		return errno(EINVAL)
	}
	// Reloaded: we resume here.
	p.state = procRunning
	return 0, 0
}

// wait blocks until some child exits, returning its pid and status.
func (u *Unix) wait(e *hw.Exec, p *Proc) (uint32, uint32) {
	for {
		var children int
		for _, c := range u.sortedProcs() {
			if c.parent != p {
				continue
			}
			children++
			if c.state == procZombie {
				code := c.exitCode
				pid := c.pid
				delete(u.procs, c.pid)
				return uint32(pid), code
			}
		}
		if children == 0 {
			return errno(ECHILD)
		}
		p.state = procWaiting
		for _, c := range u.sortedProcs() {
			if c.parent == p && c.state != procZombie {
				c.waiters = append(c.waiters, p.thread.TID)
			}
		}
		if _, err := u.K.WaitSignal(e); err != nil {
			return errno(EINVAL)
		}
		p.state = procRunning
	}
}

// kill terminates another process.
func (u *Unix) kill(e *hw.Exec, p *Proc, pid int) (uint32, uint32) {
	victim := u.procs[pid]
	if victim == nil {
		return errno(ESRCH)
	}
	if victim == p {
		u.exitProc(e, p, 0xff, false)
		return 0, 0
	}
	u.exitProc(e, victim, 0xff, true)
	return 0, 0
}

// spawnSyscall starts a registered program by index in the program name
// table (names are passed by table position; a real emulator would read
// the path from user memory).
func (u *Unix) spawnSyscall(e *hw.Exec, p *Proc, nameIdx, _ uint32) (uint32, uint32) {
	names := u.programNames()
	if int(nameIdx) >= len(names) {
		return errno(ENOENT)
	}
	child, err := u.Spawn(e, names[nameIdx], p)
	if err != nil {
		return errno(ENOMEM)
	}
	return uint32(child.pid), 0
}

// programNames lists registered programs in sorted order so indices are
// stable.
func (u *Unix) programNames() []string {
	var names []string
	for n := range u.programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProgramIndex reports the spawn index for a registered program name.
func (u *Unix) ProgramIndex(name string) (uint32, bool) {
	for i, n := range u.programNames() {
		if n == name {
			return uint32(i), true
		}
	}
	return 0, false
}

// Proc looks up a process by pid.
func (u *Unix) Proc(pid int) *Proc { return u.procs[pid] }

// NumProcs reports the live process count.
func (u *Unix) NumProcs() int { return len(u.procs) }
