package unixemu

import (
	"vpp/internal/hw"
)

// RamFS is the emulator's RAM-disk file system: the backing store for
// demand paging and the target of read/write system calls. The paper's
// system paged to disk or over the network; a RAM disk with a charged
// per-page transfer latency preserves the property the evaluation relies
// on — that page I/O dominates Cache Kernel mapping costs (§5.2).
type RamFS struct {
	files map[string]*File

	// PageIOCycles is the simulated latency charged per page of backing
	// store transfer (default 2 ms: a fast 1994 disk with some cache).
	PageIOCycles uint64

	// PageReads / PageWrites count backing transfers.
	PageReads, PageWrites uint64
}

// File is one RAM-disk file.
type File struct {
	Name string
	Data []byte
}

// NewRamFS returns an empty file system.
func NewRamFS() *RamFS {
	return &RamFS{
		files:        make(map[string]*File),
		PageIOCycles: 2 * 1000 * hw.CyclesPerMicrosecond,
	}
}

// Create makes (or truncates) a file.
func (fs *RamFS) Create(name string) *File {
	f := &File{Name: name}
	fs.files[name] = f
	return f
}

// Open looks up a file.
func (fs *RamFS) Open(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// WriteAt writes b at offset off, growing the file.
func (f *File) WriteAt(off uint32, b []byte) {
	end := int(off) + len(b)
	for len(f.Data) < end {
		f.Data = append(f.Data, 0)
	}
	copy(f.Data[off:end], b)
}

// ReadAt reads up to n bytes at off.
func (f *File) ReadAt(off, n uint32) []byte {
	if off >= uint32(len(f.Data)) {
		return nil
	}
	end := off + n
	if end > uint32(len(f.Data)) {
		end = uint32(len(f.Data))
	}
	out := make([]byte, end-off)
	copy(out, f.Data[off:end])
	return out
}

// Size reports the file length.
func (f *File) Size() uint32 { return uint32(len(f.Data)) }

// FD is an open file descriptor.
type FD struct {
	file *File
	off  uint32
}

// swapBacking adapts a RAM-disk file to aklib.BackingStore for demand
// paging: page idx of the segment lives at byte offset idx*PageSize.
type swapBacking struct {
	fs   *RamFS
	file *File
}

// SwapBacking returns (creating if needed) a backing store over the
// named file.
func (fs *RamFS) SwapBacking(name string) *swapBacking {
	f, ok := fs.files[name]
	if !ok {
		f = fs.Create(name)
	}
	return &swapBacking{fs: fs, file: f}
}

// ReadPage implements aklib.BackingStore: fill the frame from the file
// (zero-fill beyond EOF), charging the page transfer latency.
func (b *swapBacking) ReadPage(e *hw.Exec, pageIdx uint32, pfn uint32) {
	e.Charge(b.fs.PageIOCycles)
	b.fs.PageReads++
	frame := e.MPM.Machine.Phys.Page(pfn)
	data := b.file.ReadAt(pageIdx*hw.PageSize, hw.PageSize)
	copy(frame[:], data)
	for i := len(data); i < hw.PageSize; i++ {
		frame[i] = 0
	}
}

// WritePage implements aklib.BackingStore: save the frame to the file.
func (b *swapBacking) WritePage(e *hw.Exec, pageIdx uint32, pfn uint32) {
	e.Charge(b.fs.PageIOCycles)
	b.fs.PageWrites++
	frame := e.MPM.Machine.Phys.Page(pfn)
	b.file.WriteAt(pageIdx*hw.PageSize, frame[:])
}

// --- user-memory access from the emulator ---

// copyIn reads n bytes of a process's memory starting at va, paging in
// as needed. It runs in the emulator's context (the handler's space is
// the emulator's, so access goes through physical addresses).
func (u *Unix) copyIn(e *hw.Exec, p *Proc, va, n uint32) ([]byte, bool) {
	out := make([]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		pa, ok := p.sm.ResolvePA(e, va+i)
		if !ok {
			return nil, false
		}
		e.Charge(hw.CostMemHit)
		out = append(out, e.MPM.Machine.Phys.Read8(pa))
	}
	return out, true
}

// copyOut writes b into a process's memory at va.
func (u *Unix) copyOut(e *hw.Exec, p *Proc, va uint32, b []byte) bool {
	for i, v := range b {
		pa, ok := p.sm.ResolvePA(e, va+uint32(i))
		if !ok {
			return false
		}
		e.Charge(hw.CostMemHit)
		e.MPM.Machine.Phys.Write8(pa, v)
	}
	return true
}

// copyInString reads a NUL-terminated string (capped at 256 bytes).
func (u *Unix) copyInString(e *hw.Exec, p *Proc, va uint32) (string, bool) {
	var out []byte
	for i := uint32(0); i < 256; i++ {
		pa, ok := p.sm.ResolvePA(e, va+i)
		if !ok {
			return "", false
		}
		e.Charge(hw.CostMemHit)
		c := e.MPM.Machine.Phys.Read8(pa)
		if c == 0 {
			return string(out), true
		}
		out = append(out, c)
	}
	return "", false
}

// open implements open(2)/creat(2): the path is a NUL-terminated string
// in user memory.
func (u *Unix) open(e *hw.Exec, p *Proc, pathVA uint32, creat bool) (uint32, uint32) {
	path, ok := u.copyInString(e, p, pathVA)
	if !ok {
		return errno(EFAULT)
	}
	f, exists := u.FS.Open(path)
	if !exists {
		if !creat {
			return errno(ENOENT)
		}
		f = u.FS.Create(path)
	}
	for i, fd := range p.fds {
		if fd == nil && i >= 3 {
			p.fds[i] = &FD{file: f}
			return uint32(i), 0
		}
	}
	if len(p.fds) >= 64 {
		return errno(EMFILE)
	}
	p.fds = append(p.fds, &FD{file: f})
	return uint32(len(p.fds) - 1), 0
}

// close implements close(2).
func (u *Unix) close(p *Proc, fd int) (uint32, uint32) {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		return errno(EBADF)
	}
	p.fds[fd] = nil
	return 0, 0
}

// Console accumulates writes to fds 1 and 2.
type consoleBuf struct{ data []byte }

// readWrite implements read(2)/write(2) on the RAM disk and console.
func (u *Unix) readWrite(e *hw.Exec, p *Proc, fd int, va, n uint32, write bool) (uint32, uint32) {
	if fd == 1 || fd == 2 {
		if !write {
			return 0, 0 // EOF on reading the console
		}
		b, ok := u.copyIn(e, p, va, n)
		if !ok {
			return errno(EFAULT)
		}
		u.Console = append(u.Console, b...)
		return n, 0
	}
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		return errno(EBADF)
	}
	d := p.fds[fd]
	if write {
		b, ok := u.copyIn(e, p, va, n)
		if !ok {
			return errno(EFAULT)
		}
		// Charge a transfer cost proportional to size.
		e.Charge(uint64(n) / 4 * hw.CostMemHit)
		d.file.WriteAt(d.off, b)
		d.off += n
		return n, 0
	}
	b := d.file.ReadAt(d.off, n)
	e.Charge(uint64(len(b)) / 4 * hw.CostMemHit)
	if !u.copyOut(e, p, va, b) {
		return errno(EFAULT)
	}
	d.off += uint32(len(b))
	return uint32(len(b)), 0
}
