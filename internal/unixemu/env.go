package unixemu

import "vpp/internal/hw"

// ProcEnv is a user program's view of the system: every method (except
// the host-side conveniences noted) issues a real trap instruction that
// the Cache Kernel forwards to the emulator (paper §2.3).
type ProcEnv struct {
	u *Unix
	p *Proc
	e *hw.Exec
}

// Exec exposes the underlying execution context for direct memory
// access (the program's loads and stores).
func (env *ProcEnv) Exec() *hw.Exec { return env.e }

// Getpid returns the stable process identifier via a forwarded trap —
// the 37 µs operation of Section 5.3.
func (env *ProcEnv) Getpid() int {
	r0, _ := env.e.Trap(SysGetpid)
	return int(r0)
}

// Exit terminates the process. It does not return.
func (env *ProcEnv) Exit(code uint32) {
	env.e.Trap(SysExit, code)
	// The trap never returns (the thread was unloaded); if the machinery
	// is torn down early, stop the body.
	env.e.Exit()
}

// Sbrk grows the heap by n bytes, returning the old break (like
// sbrk(2)).
func (env *ProcEnv) Sbrk(n uint32) uint32 {
	r0, _ := env.e.Trap(SysSbrk, n)
	return r0
}

// Sleep suspends the process for ms milliseconds; the emulator unloads
// the thread and reloads it at the deadline.
func (env *ProcEnv) Sleep(ms uint32) {
	env.e.Trap(SysSleep, ms)
}

// Yield charges a scheduling hint trap.
func (env *ProcEnv) Yield() { env.e.Trap(SysYield) }

// Open opens (creat=false) or creates a file by path; the path string
// is written into process memory first, as a real libc would.
func (env *ProcEnv) Open(path string, creat bool) (int, uint32) {
	va := env.pushString(path)
	no := uint32(SysOpen)
	if creat {
		no = SysCreat
	}
	r0, r1 := env.e.Trap(no, va)
	if r0 == ^uint32(0) {
		return -1, r1
	}
	return int(r0), 0
}

// Close closes a descriptor.
func (env *ProcEnv) Close(fd int) uint32 {
	_, r1 := env.e.Trap(SysClose, uint32(fd))
	return r1
}

// Write writes n bytes from process memory at va to fd.
func (env *ProcEnv) Write(fd int, va, n uint32) (int, uint32) {
	r0, r1 := env.e.Trap(SysWrite, uint32(fd), va, n)
	if r0 == ^uint32(0) {
		return -1, r1
	}
	return int(r0), 0
}

// Read reads up to n bytes from fd into process memory at va.
func (env *ProcEnv) Read(fd int, va, n uint32) (int, uint32) {
	r0, r1 := env.e.Trap(SysRead, uint32(fd), va, n)
	if r0 == ^uint32(0) {
		return -1, r1
	}
	return int(r0), 0
}

// WriteString stores s into the heap and writes it to fd.
func (env *ProcEnv) WriteString(fd int, s string) (int, uint32) {
	va := env.pushString(s)
	return env.Write(fd, va, uint32(len(s)))
}

// Spawn starts a registered program as a child process, returning its
// pid.
func (env *ProcEnv) Spawn(name string) (int, uint32) {
	idx, ok := env.u.ProgramIndex(name)
	if !ok {
		return -1, ENOENT
	}
	r0, r1 := env.e.Trap(SysSpawn, idx, 0)
	if r0 == ^uint32(0) {
		return -1, r1
	}
	return int(r0), 0
}

// Wait blocks until a child exits, returning its pid and exit status.
func (env *ProcEnv) Wait() (int, uint32, bool) {
	r0, r1 := env.e.Trap(SysWait)
	if r0 == ^uint32(0) {
		return 0, 0, false
	}
	return int(r0), r1, true
}

// Kill terminates a process by pid.
func (env *ProcEnv) Kill(pid int) uint32 {
	_, r1 := env.e.Trap(SysKill, uint32(pid))
	return r1
}

// OnSegv registers a one-shot handler run (in this process) on an
// unresolvable access error, standing in for signal(SIGSEGV, ...). The
// registration itself is a host-side convenience.
func (env *ProcEnv) OnSegv(fn func(env *ProcEnv, va uint32)) {
	env.p.segvHandler = fn
}

// Load32 and Store32 access process memory directly (ordinary user
// instructions, faulting and demand-paging as needed).
func (env *ProcEnv) Load32(va uint32) uint32 { return env.e.Load32(va) }
func (env *ProcEnv) Store32(va, v uint32)    { env.e.Store32(va, v) }
func (env *ProcEnv) Touch(va uint32, w bool) { env.e.Touch(va, w) }

// HeapBase reports the bottom of the heap segment.
func (env *ProcEnv) HeapBase() uint32 { return DataBase }

// StackTop reports the top of the stack segment.
func (env *ProcEnv) StackTop() uint32 { return StackBase + StackPages*hw.PageSize }

// pushString stores s (NUL-terminated) at a scratch position near the
// bottom of the stack segment and returns its address.
func (env *ProcEnv) pushString(s string) uint32 {
	va := uint32(StackBase)
	for i := 0; i < len(s); i++ {
		env.e.Store8(va+uint32(i), s[i])
	}
	env.e.Store8(va+uint32(len(s)), 0)
	return va
}
