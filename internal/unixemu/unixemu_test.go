package unixemu

import (
	"math"
	"strings"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
)

// startUnix boots a machine, an SRM, and a UNIX emulator kernel, runs
// body in the emulator's main thread (scheduler already started), stops
// the scheduler afterwards, and drives the machine to quiescence.
func startUnix(t *testing.T, cfg Config, body func(u *Unix, e *hw.Exec)) *Unix {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var u *Unix
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "unix", srm.LaunchOpts{Groups: 16, MainPrio: 31, MaxPrio: 40},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				u = New(ak, cfg)
				if err := u.StartScheduler(me); err != nil {
					t.Errorf("scheduler: %v", err)
					return
				}
				body(u, me)
				u.StopScheduler()
			})
		if err != nil {
			t.Errorf("launch unix: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 200_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if u == nil {
		t.Fatal("emulator never constructed")
	}
	return u
}

// waitZombieOrGone spins in virtual time until pid has exited.
func waitProcDone(u *Unix, e *hw.Exec, pid int) {
	for {
		p := u.Proc(pid)
		if p == nil || p.state == procZombie {
			return
		}
		e.Charge(20_000)
	}
}

func TestSpawnGetpidConsoleExit(t *testing.T) {
	u := startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("hello", func(env *ProcEnv) {
			pid := env.Getpid()
			if pid <= 0 {
				t.Errorf("getpid = %d", pid)
			}
			env.WriteString(1, "hello from user\n")
			env.Exit(3)
		})
		p, err := u.Spawn(e, "hello", nil)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		waitProcDone(u, e, p.PID())
		if p.ExitCode() != 3 {
			t.Errorf("exit code = %d, want 3", p.ExitCode())
		}
	})
	if !strings.Contains(string(u.Console), "hello from user") {
		t.Fatalf("console = %q", u.Console)
	}
}

func TestInitSpawnsChildAndWaits(t *testing.T) {
	var waitedPid int
	var waitedCode uint32
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("child", func(env *ProcEnv) {
			env.Exit(7)
		})
		u.RegisterProgram("init", func(env *ProcEnv) {
			pid, _ := env.Spawn("child")
			if pid <= 0 {
				t.Error("spawn from user failed")
				return
			}
			wpid, code, ok := env.Wait()
			if !ok {
				t.Error("wait failed")
				return
			}
			waitedPid, waitedCode = wpid, code
		})
		p, err := u.Spawn(e, "init", nil)
		if err != nil {
			t.Fatalf("spawn init: %v", err)
		}
		waitProcDone(u, e, p.PID())
	})
	if waitedCode != 7 || waitedPid <= 0 {
		t.Fatalf("wait -> pid=%d code=%d", waitedPid, waitedCode)
	}
}

func TestHeapSbrkAndMemory(t *testing.T) {
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("heap", func(env *ProcEnv) {
			brk := env.Sbrk(3 * hw.PageSize)
			if brk != DataBase {
				t.Errorf("initial brk = %#x", brk)
			}
			for i := uint32(0); i < 3*hw.PageSize; i += hw.PageSize {
				env.Store32(DataBase+i, i^0x5a5a)
			}
			for i := uint32(0); i < 3*hw.PageSize; i += hw.PageSize {
				if v := env.Load32(DataBase + i); v != i^0x5a5a {
					t.Errorf("heap[%#x] = %#x", i, v)
				}
			}
		})
		p, _ := u.Spawn(e, "heap", nil)
		waitProcDone(u, e, p.PID())
	})
}

func TestFileWriteReadBack(t *testing.T) {
	u := startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("files", func(env *ProcEnv) {
			fd, errn := env.Open("/tmp/data", true)
			if fd < 0 {
				t.Errorf("creat: errno %d", errn)
				return
			}
			msg := "persistent bytes"
			va := env.HeapBase()
			env.Sbrk(hw.PageSize)
			for i := 0; i < len(msg); i++ {
				env.Exec().Store8(va+uint32(i), msg[i])
			}
			if n, _ := env.Write(fd, va, uint32(len(msg))); n != len(msg) {
				t.Errorf("write = %d", n)
			}
			env.Close(fd)

			fd2, _ := env.Open("/tmp/data", false)
			dst := va + hw.PageSize/2
			n, _ := env.Read(fd2, dst, uint32(len(msg)))
			if n != len(msg) {
				t.Errorf("read = %d", n)
			}
			for i := 0; i < n; i++ {
				if env.Exec().Load8(dst+uint32(i)) != msg[i] {
					t.Errorf("byte %d mismatch", i)
				}
			}
		})
		p, _ := u.Spawn(e, "files", nil)
		waitProcDone(u, e, p.PID())
	})
	f, ok := u.FS.Open("/tmp/data")
	if !ok || string(f.Data) != "persistent bytes" {
		t.Fatalf("file content = %q", f)
	}
}

func TestSleepWakeupReloadsThread(t *testing.T) {
	resumed := false
	u := startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("sleeper", func(env *ProcEnv) {
			env.Sleep(50)
			resumed = true
		})
		p, _ := u.Spawn(e, "sleeper", nil)
		waitProcDone(u, e, p.PID())
	})
	if !resumed {
		t.Fatal("sleeper did not resume")
	}
	if u.Wakeups == 0 {
		t.Fatal("no wakeups recorded")
	}
	// Sleeping unloads the thread; waking reloads it: at least two
	// thread loads for the process (initial + reload).
	if u.K.Stats.ThreadLoads < 3 { // sched + proc + reload
		t.Fatalf("thread loads = %d", u.K.Stats.ThreadLoads)
	}
}

func TestLongSleepSwapsProcessOut(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SwapAfter = 2
	u := startUnix(t, cfg, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("idler", func(env *ProcEnv) {
			env.Store32(DataBase, 1234) // sbrk-less heap touch (page 0 is mapped lazily)
			env.Sleep(200)
			if env.Load32(DataBase) != 1234 {
				t.Error("heap lost across swap")
			}
		})
		p, err := u.Spawn(e, "idler", nil)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		waitProcDone(u, e, p.PID())
	})
	if u.SwapsOut == 0 || u.SwapsIn == 0 {
		t.Fatalf("swaps out/in = %d/%d", u.SwapsOut, u.SwapsIn)
	}
}

func TestSegvKillsProcess(t *testing.T) {
	u := startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("bad", func(env *ProcEnv) {
			env.Load32(0x0050_0000) // no segment there
			t.Error("survived wild access")
		})
		p, _ := u.Spawn(e, "bad", nil)
		waitProcDone(u, e, p.PID())
		if p.ExitCode() != 0xff {
			t.Errorf("exit code = %#x, want 0xff", p.ExitCode())
		}
	})
	if u.Segvs == 0 {
		t.Fatal("no SEGV recorded")
	}
}

func TestSegvHandlerRuns(t *testing.T) {
	var faultVA uint32
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("catcher", func(env *ProcEnv) {
			env.OnSegv(func(env *ProcEnv, va uint32) {
				faultVA = va
				env.Exit(9)
			})
			env.Load32(0x0060_0000)
		})
		p, _ := u.Spawn(e, "catcher", nil)
		waitProcDone(u, e, p.PID())
		if p.ExitCode() != 9 {
			t.Errorf("exit = %d, want 9 (handler exit)", p.ExitCode())
		}
	})
	if faultVA != 0x0060_0000 {
		t.Fatalf("handler saw va %#x", faultVA)
	}
}

func TestManyProcessesTimeshare(t *testing.T) {
	const n = 12
	counts := make([]int, n)
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("worker", func(env *ProcEnv) {
			me := env.Getpid()
			for i := 0; i < 40; i++ {
				env.Exec().Charge(5000)
				counts[(me-1)%n]++
			}
		})
		var pids []int
		for i := 0; i < n; i++ {
			p, err := u.Spawn(e, "worker", nil)
			if err != nil {
				t.Fatalf("spawn %d: %v", i, err)
			}
			pids = append(pids, p.PID())
		}
		for _, pid := range pids {
			waitProcDone(u, e, pid)
		}
	})
	for i, c := range counts {
		if c != 40 {
			t.Fatalf("worker %d ran %d iterations", i, c)
		}
	}
}

func TestComputeBoundPriorityDegrades(t *testing.T) {
	var sawPrio int
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("burner", func(env *ProcEnv) {
			for i := 0; i < 200; i++ {
				env.Exec().Charge(50_000)
			}
		})
		p, _ := u.Spawn(e, "burner", nil)
		start := p.dynPrio
		waitProcDone(u, e, p.PID())
		sawPrio = p.dynPrio
		if sawPrio >= start {
			t.Errorf("priority did not degrade: %d -> %d", start, sawPrio)
		}
	})
}

func TestKillOtherProcess(t *testing.T) {
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("victim", func(env *ProcEnv) {
			for {
				env.Exec().Charge(10_000)
			}
		})
		u.RegisterProgram("killer", func(env *ProcEnv) {
			pid, _ := env.Spawn("victim")
			env.Sleep(30)
			if errn := env.Kill(pid); errn != 0 {
				t.Errorf("kill: errno %d", errn)
			}
		})
		p, _ := u.Spawn(e, "killer", nil)
		waitProcDone(u, e, p.PID())
		// The victim must be gone (zombie) too.
		for _, q := range u.sortedProcs() {
			if q.state != procZombie && q.PID() != p.PID() {
				// allow the killer itself
				if q.parent != nil {
					t.Errorf("pid %d still %s", q.PID(), q.stateName())
				}
			}
		}
	})
}
