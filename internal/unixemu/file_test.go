package unixemu

import (
	"testing"
	"testing/quick"

	"vpp/internal/hw"
	"vpp/internal/sim"
)

func TestRamFSReadWriteAt(t *testing.T) {
	fs := NewRamFS()
	f := fs.Create("/a")
	f.WriteAt(10, []byte("hello"))
	if f.Size() != 15 {
		t.Fatalf("size = %d", f.Size())
	}
	if got := string(f.ReadAt(10, 5)); got != "hello" {
		t.Fatalf("read = %q", got)
	}
	// Hole before the write reads as zeros.
	for _, b := range f.ReadAt(0, 10) {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Reads past EOF truncate; reads at EOF are empty.
	if got := f.ReadAt(12, 100); len(got) != 3 {
		t.Fatalf("tail read = %d bytes", len(got))
	}
	if got := f.ReadAt(15, 1); got != nil {
		t.Fatalf("EOF read = %v", got)
	}
	if _, ok := fs.Open("/missing"); ok {
		t.Fatal("opened a missing file")
	}
}

func TestRamFSProperty(t *testing.T) {
	fn := func(seed uint64, nOps uint8) bool {
		r := sim.NewRand(seed)
		fs := NewRamFS()
		f := fs.Create("/p")
		ref := map[uint32]byte{}
		var max uint32
		for i := 0; i < int(nOps); i++ {
			off := uint32(r.Intn(2000))
			b := []byte{byte(r.Uint64()), byte(r.Uint64())}
			f.WriteAt(off, b)
			ref[off] = b[0]
			ref[off+1] = b[1]
			if off+2 > max {
				max = off + 2
			}
		}
		if f.Size() != max && nOps > 0 {
			return false
		}
		for off, want := range ref {
			got := f.ReadAt(off, 1)
			if len(got) != 1 || got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallErrnoPaths(t *testing.T) {
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("errs", func(env *ProcEnv) {
			// Bad descriptor.
			if n, errn := env.Write(17, env.HeapBase(), 4); n != -1 || errn != EBADF {
				t.Errorf("write bad fd: %d/%d", n, errn)
			}
			if errn := env.Close(17); errn != EBADF {
				t.Errorf("close bad fd: %d", errn)
			}
			// Open without create on a missing file.
			if fd, errn := env.Open("/nope", false); fd != -1 || errn != ENOENT {
				t.Errorf("open missing: %d/%d", fd, errn)
			}
			// Wait with no children.
			if _, _, ok := env.Wait(); ok {
				t.Error("wait with no children succeeded")
			}
			// Kill a nonexistent pid.
			if errn := env.Kill(999); errn != ESRCH {
				t.Errorf("kill 999: %d", errn)
			}
			// Spawn of an unregistered name (host-side lookup).
			if _, errn := env.Spawn("ghost"); errn != ENOENT {
				t.Errorf("spawn ghost: %d", errn)
			}
			// Reading the console is EOF.
			if n, _ := env.Read(1, env.HeapBase(), 8); n != 0 {
				t.Errorf("console read = %d", n)
			}
			// Unknown syscall number.
			if r0, r1 := env.Exec().Trap(250); r0 != ^uint32(0) || r1 != EINVAL {
				t.Errorf("unknown syscall: %#x/%d", r0, r1)
			}
		})
		p, err := u.Spawn(e, "errs", nil)
		if err != nil {
			t.Fatal(err)
		}
		waitProcDone(u, e, p.PID())
	})
}

func TestSbrkBounds(t *testing.T) {
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("brk", func(env *ProcEnv) {
			// Growing past the heap ceiling fails.
			r0, r1 := env.Exec().Trap(SysSbrk, uint32(HeapMaxPages+1)*hw.PageSize)
			if r0 != ^uint32(0) || r1 != ENOMEM {
				t.Errorf("oversized sbrk: %#x/%d", r0, r1)
			}
			// Normal growth returns the old break and is contiguous.
			b1 := env.Sbrk(hw.PageSize)
			b2 := env.Sbrk(hw.PageSize)
			if b2 != b1+hw.PageSize {
				t.Errorf("brk sequence %#x -> %#x", b1, b2)
			}
		})
		p, _ := u.Spawn(e, "brk", nil)
		waitProcDone(u, e, p.PID())
	})
}

func TestFDTableGrowsPastThree(t *testing.T) {
	startUnix(t, Config{}, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("fds", func(env *ProcEnv) {
			var fds []int
			for i := 0; i < 6; i++ {
				fd, errn := env.Open("/f", true)
				if fd < 0 {
					t.Errorf("open %d: errno %d", i, errn)
					return
				}
				fds = append(fds, fd)
			}
			// All descriptors distinct and >= 3 (0-2 reserved).
			seen := map[int]bool{}
			for _, fd := range fds {
				if fd < 3 || seen[fd] {
					t.Errorf("bad fd %d in %v", fd, fds)
				}
				seen[fd] = true
			}
			// Close one and reuse its slot.
			env.Close(fds[2])
			fd, _ := env.Open("/f", false)
			if fd != fds[2] {
				t.Errorf("slot not reused: got %d want %d", fd, fds[2])
			}
		})
		p, _ := u.Spawn(e, "fds", nil)
		waitProcDone(u, e, p.PID())
	})
}

func TestProcessTableLimitIsSoft(t *testing.T) {
	// Contrast with the monolithic baseline's hard error: the emulator's
	// own MaxProcs is policy, but the Cache Kernel itself keeps loading
	// thread descriptors by writing others back.
	cfg := DefaultConfig()
	cfg.MaxProcs = 4
	startUnix(t, cfg, func(u *Unix, e *hw.Exec) {
		u.RegisterProgram("sleeper", func(env *ProcEnv) { env.Sleep(30) })
		for i := 0; i < 3; i++ {
			if _, err := u.Spawn(e, "sleeper", nil); err != nil {
				t.Fatalf("spawn %d: %v", i, err)
			}
		}
		if u.NumProcs() != 3 {
			t.Fatalf("procs = %d", u.NumProcs())
		}
		// The 5th spawn exceeds emulator policy.
		if _, err := u.Spawn(e, "sleeper", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Spawn(e, "sleeper", nil); err == nil {
			t.Fatal("spawn beyond MaxProcs succeeded")
		}
		for u.NumProcs() > 0 {
			alive := false
			for _, p := range u.sortedProcs() {
				if p.state != procZombie {
					alive = true
				}
			}
			if !alive {
				break
			}
			e.Charge(hw.CyclesFromMicros(5000))
		}
	})
}
