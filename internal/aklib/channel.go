package aklib

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// The communication library: channels over memory-based messaging (paper
// §2.2, §3). A channel is a ring of message slots in ordinary shared
// pages plus a doorbell page in message mode. The sender writes the
// payload into the next slot and then stores the sequence number into
// the slot's doorbell word; that single store raises the address-valued
// signal the Cache Kernel delivers to the receiving thread. All data
// transfer happens through the memory system — the Cache Kernel is only
// involved in signal delivery, which is the paper's central
// communication claim.

// ChannelConfig sizes a channel.
type ChannelConfig struct {
	Slots     int // ring slots (default 8)
	SlotBytes int // bytes per slot including the 8-byte header (default 256)
}

func (c ChannelConfig) withDefaults() ChannelConfig {
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.SlotBytes == 0 {
		c.SlotBytes = 256
	}
	return c
}

// payloadPages computes the shared pages a config needs (payload ring
// plus one doorbell page).
func (c ChannelConfig) payloadPages() uint32 {
	bytes := uint32(c.Slots * c.SlotBytes)
	return (bytes + hw.PageSize - 1) / hw.PageSize
}

// TotalFrames reports how many shared frames Connect requires.
func (c ChannelConfig) TotalFrames() int {
	return int(c.withDefaults().payloadPages()) + 1
}

// Channel is one direction of communication between two address spaces.
type Channel struct {
	cfg ChannelConfig

	sendBase uint32 // payload base VA in the sender's space
	recvBase uint32 // payload base VA in the receiver's space
	sendBell uint32 // doorbell page VA in the sender's space
	recvBell uint32 // doorbell page VA in the receiver's space

	seq  uint32
	rseq uint32

	// Sends and Recvs count completed transfers.
	Sends, Recvs uint64
}

// Slot header layout within the payload ring.
const (
	slotLenOff = 0
	slotAckOff = 4
	slotHdr    = 8
)

// MaxMessage reports the largest payload the channel carries.
func (c *Channel) MaxMessage() int { return c.cfg.SlotBytes - slotHdr }

// Connect wires a channel from a sender space to a receiver space. The
// supplied frames (ChannelConfig.TotalFrames of them) must be accessible
// to both kernels' memory access arrays. Both sides' mappings are loaded
// eagerly: message pages require all mappings loaded together for
// multi-mapping consistency (paper §4.2). recvThread is the loaded
// thread that receives the doorbell signals.
func Connect(e *hw.Exec, sender *SegmentManager, senderVA uint32,
	recv *SegmentManager, recvVA uint32, recvThread ck.ObjID,
	frames []uint32, cfg ChannelConfig) (*Channel, error) {

	cfg = cfg.withDefaults()
	if len(frames) != cfg.TotalFrames() {
		return nil, fmt.Errorf("aklib: channel needs %d frames, got %d", cfg.TotalFrames(), len(frames))
	}
	np := cfg.payloadPages()
	payload, bell := frames[:np], frames[np:]

	// Payload: writable on both sides (the receiver writes ack words).
	if _, err := sender.MapShared(e, "chan-payload-tx", senderVA, payload,
		SegFlags{Writable: true, Eager: true}); err != nil {
		return nil, err
	}
	if _, err := recv.MapShared(e, "chan-payload-rx", recvVA, payload,
		SegFlags{Writable: true, Eager: true}); err != nil {
		return nil, err
	}
	// Doorbell: message mode; the receiver side registers the signal
	// thread, the sender side is the writable signalling mapping.
	bellTxVA := senderVA + np*hw.PageSize
	bellRxVA := recvVA + np*hw.PageSize
	if _, err := recv.MapShared(e, "chan-bell-rx", bellRxVA, bell,
		SegFlags{Message: true, SignalThread: recvThread, Eager: true}); err != nil {
		return nil, err
	}
	if _, err := sender.MapShared(e, "chan-bell-tx", bellTxVA, bell,
		SegFlags{Writable: true, Message: true, Eager: true}); err != nil {
		return nil, err
	}
	return &Channel{
		cfg:      cfg,
		sendBase: senderVA,
		recvBase: recvVA,
		sendBell: bellTxVA,
		recvBell: bellRxVA,
	}, nil
}

func (c *Channel) slotVA(base uint32, slot int) uint32 {
	return base + uint32(slot*c.cfg.SlotBytes)
}

// Send marshals msg into the next ring slot and rings the doorbell. It
// runs in the sending thread's context (its address space must hold the
// sender-side mappings). If the ring is full it spins in virtual time
// until the receiver acknowledges the slot.
func (c *Channel) Send(e *hw.Exec, msg []byte) error {
	if len(msg) > c.MaxMessage() {
		return fmt.Errorf("aklib: message %d bytes exceeds slot payload %d", len(msg), c.MaxMessage())
	}
	slot := int(c.seq) % c.cfg.Slots
	va := c.slotVA(c.sendBase, slot)
	// Wait until the receiver has consumed the previous lap of this slot.
	if c.seq >= uint32(c.cfg.Slots) {
		want := c.seq - uint32(c.cfg.Slots) + 1
		for spins := 0; e.Load32(va+slotAckOff) < want; spins++ {
			e.Charge(200)
			if spins > 1<<20 {
				return fmt.Errorf("aklib: channel receiver stalled")
			}
		}
	}
	storeBytes(e, va+slotHdr, msg)
	e.Store32(va+slotLenOff, uint32(len(msg)))
	c.seq++
	// The doorbell store is the signalling write.
	e.Store32(c.sendBell+uint32(slot*4), c.seq)
	c.Sends++
	return nil
}

// Recv blocks the calling thread (which must be the channel's signal
// thread) until a message arrives and returns a copy of it.
func (c *Channel) Recv(e *hw.Exec, k *ck.Kernel) ([]byte, error) {
	for {
		sig, err := k.WaitSignal(e)
		if err != nil {
			return nil, err
		}
		if sig < c.recvBell || sig >= c.recvBell+uint32(c.cfg.Slots*4) {
			continue // a signal for some other object; not ours
		}
		slot := int(sig-c.recvBell) / 4
		va := c.slotVA(c.recvBase, slot)
		n := e.Load32(va + slotLenOff)
		if n > uint32(c.MaxMessage()) {
			return nil, fmt.Errorf("aklib: corrupt slot length %d", n)
		}
		msg := loadBytes(e, va+slotHdr, n)
		c.rseq++
		e.Store32(va+slotAckOff, c.rseq)
		k.SignalReturn(e)
		c.Recvs++
		return msg, nil
	}
}

// TryRecvQueued drains one already-queued message without blocking
// semantics beyond WaitSignal's (used by servers multiplexing work).
// It is identical to Recv today but exists so callers express intent.
func (c *Channel) TryRecvQueued(e *hw.Exec, k *ck.Kernel) ([]byte, error) {
	return c.Recv(e, k)
}

// storeBytes writes b at va word-at-a-time (tail bytes singly), charging
// through the memory system like any other data transfer.
func storeBytes(e *hw.Exec, va uint32, b []byte) {
	i := 0
	for ; i+4 <= len(b); i += 4 {
		e.Store32(va+uint32(i), uint32(b[i])|uint32(b[i+1])<<8|uint32(b[i+2])<<16|uint32(b[i+3])<<24)
	}
	for ; i < len(b); i++ {
		e.Store8(va+uint32(i), b[i])
	}
}

// loadBytes reads n bytes at va.
func loadBytes(e *hw.Exec, va, n uint32) []byte {
	out := make([]byte, n)
	i := uint32(0)
	for ; i+4 <= n; i += 4 {
		w := e.Load32(va + i)
		out[i] = byte(w)
		out[i+1] = byte(w >> 8)
		out[i+2] = byte(w >> 16)
		out[i+3] = byte(w >> 24)
	}
	for ; i < n; i++ {
		out[i] = e.Load8(va + i)
	}
	return out
}
