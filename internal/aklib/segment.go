package aklib

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// The memory management library: physical segments mapped into virtual
// memory regions, managed by a segment manager that assigns virtual
// addresses to physical memory and loads mapping descriptors on page
// faults (paper Section 3). Application kernels override the replacement
// policy by providing a Replacer.

// BackingStore pages segment data in and out; the UNIX emulator's RAM
// disk and the database kernel's table store implement it.
type BackingStore interface {
	// ReadPage fills the physical frame with page pageIdx of the
	// backing object.
	ReadPage(e *hw.Exec, pageIdx uint32, pfn uint32)
	// WritePage saves the frame's contents as page pageIdx.
	WritePage(e *hw.Exec, pageIdx uint32, pfn uint32)
}

// SegFlags configure a segment.
type SegFlags struct {
	Writable bool
	Message  bool
	Locked   bool
	// SignalThread receives address-valued signals for writes into the
	// segment's pages (message mode).
	SignalThread ck.ObjID
	// Eager maps every page at creation instead of on demand.
	Eager bool
}

// pageState tracks one page of a segment.
type pageState struct {
	pfn      uint32
	resident bool // frame allocated (data exists in memory)
	mapped   bool // mapping currently loaded in the Cache Kernel
	refd     bool // referenced, per last writeback
	dirty    bool // modified since last backing-store write
	shared   bool // still sharing a copy-on-write source frame
}

// Segment is a contiguous virtual region backed by physical frames.
type Segment struct {
	Name    string
	VA      uint32
	Pages   uint32
	Flags   SegFlags
	Backing BackingStore
	state   []pageState
	sm      *SegmentManager
	cowSrc  *Segment // non-nil for deferred-copy segments
}

// EndVA reports the first address past the segment.
func (s *Segment) EndVA() uint32 { return s.VA + s.Pages*hw.PageSize }

// Resident reports how many pages currently hold frames.
func (s *Segment) Resident() int {
	n := 0
	for i := range s.state {
		if s.state[i].resident {
			n++
		}
	}
	return n
}

// PFN reports the frame backing page idx, if resident.
func (s *Segment) PFN(idx uint32) (uint32, bool) {
	ps := &s.state[idx]
	return ps.pfn, ps.resident
}

// FaultHook intercepts an address space's faults before segment lookup;
// handled reports whether the hook consumed the fault, resolved whether
// the faulting access may retry. Coherence layers (internal/dsm) use
// hooks to claim regions without a backing segment.
type FaultHook func(e *hw.Exec, va uint32, write bool) (handled, resolved bool)

// SegmentManager manages the segments of one address space.
type SegmentManager struct {
	AK  *AppKernel
	SID ck.ObjID

	// Hooks run before segment lookup on every fault.
	Hooks []FaultHook

	segs     []*Segment
	unloaded bool

	// Faults counts demand-paging faults resolved by this manager.
	Faults uint64
	// PageIns counts backing-store reads.
	PageIns uint64
	// PageOuts counts backing-store writes.
	PageOuts uint64
	// CowCopies counts deferred copies resolved.
	CowCopies uint64
}

// NewSegmentManager creates a manager for the given loaded space.
func NewSegmentManager(ak *AppKernel, sid ck.ObjID) *SegmentManager {
	sm := &SegmentManager{AK: ak, SID: sid}
	ak.AttachSpace(sid, sm)
	return sm
}

// Map creates a segment of n pages at va. Overlapping segments are
// rejected.
func (sm *SegmentManager) Map(e *hw.Exec, name string, va, pages uint32, flags SegFlags, backing BackingStore) (*Segment, error) {
	if va%hw.PageSize != 0 || pages == 0 {
		return nil, fmt.Errorf("aklib: bad segment geometry va=%#x pages=%d", va, pages)
	}
	for _, s := range sm.segs {
		if va < s.EndVA() && s.VA < va+pages*hw.PageSize {
			return nil, fmt.Errorf("aklib: segment %q overlaps %q", name, s.Name)
		}
	}
	seg := &Segment{
		Name: name, VA: va, Pages: pages, Flags: flags,
		Backing: backing, state: make([]pageState, pages), sm: sm,
	}
	sm.segs = append(sm.segs, seg)
	if flags.Eager {
		for i := uint32(0); i < pages; i++ {
			if err := sm.loadPage(e, seg, i, flags.Writable); err != nil {
				return nil, err
			}
		}
	}
	return seg, nil
}

// MapShared creates a segment over frames owned elsewhere (shared
// memory / message regions): the frames are supplied, not allocated.
func (sm *SegmentManager) MapShared(e *hw.Exec, name string, va uint32, frames []uint32, flags SegFlags) (*Segment, error) {
	seg, err := sm.Map(e, name, va, uint32(len(frames)), SegFlags{
		Writable: flags.Writable, Message: flags.Message,
		Locked: flags.Locked, SignalThread: flags.SignalThread,
	}, nil)
	if err != nil {
		return nil, err
	}
	for i, pfn := range frames {
		seg.state[i] = pageState{pfn: pfn, resident: true}
	}
	if flags.Eager {
		for i := range frames {
			if err := sm.loadPage(e, seg, uint32(i), flags.Writable); err != nil {
				return nil, err
			}
		}
	}
	return seg, nil
}

// Unmap destroys a segment, unloading its mappings and freeing owned
// frames (shared segments keep theirs).
func (sm *SegmentManager) Unmap(e *hw.Exec, seg *Segment, freeFrames bool) error {
	for i, s := range sm.segs {
		if s == seg {
			sm.segs = append(sm.segs[:i:i], sm.segs[i+1:]...)
			if _, err := sm.AK.CK.UnloadMappingRange(e, sm.SID, seg.VA, seg.Pages*hw.PageSize); err != nil && err != ck.ErrInvalidID {
				return err
			}
			if freeFrames {
				for j := range seg.state {
					if seg.state[j].resident {
						sm.AK.Frames.Free(seg.state[j].pfn)
					}
				}
			}
			return nil
		}
	}
	return fmt.Errorf("aklib: segment %q not mapped", seg.Name)
}

// find locates the segment containing va.
func (sm *SegmentManager) find(va uint32) *Segment {
	for _, s := range sm.segs {
		if va >= s.VA && va < s.EndVA() {
			return s
		}
	}
	return nil
}

// HandleFault demand-loads the page containing va, reading it from
// backing store if necessary, and resumes the thread with the combined
// load-and-resume call. It reports whether the fault was resolved.
func (sm *SegmentManager) HandleFault(e *hw.Exec, va uint32, write bool) bool {
	for _, hook := range sm.Hooks {
		if handled, resolved := hook(e, va, write); handled {
			return resolved
		}
	}
	seg := sm.find(va)
	if seg == nil {
		return false // unhandled: SEGV territory for the caller
	}
	if write && !seg.Flags.Writable {
		return false
	}
	sm.Faults++
	idx := (va - seg.VA) / hw.PageSize
	if seg.cowSrc != nil && seg.state[idx].shared {
		// Deferred copy: reads share the source frame read-only; the
		// first write copies the page into a private frame.
		if write {
			return sm.resolveCowWrite(e, seg, idx) == nil
		}
		return sm.loadCowRead(e, seg, idx) == nil
	}
	return sm.loadPageResume(e, seg, idx, write) == nil
}

// loadPage makes page idx resident and loads its mapping.
func (sm *SegmentManager) loadPage(e *hw.Exec, seg *Segment, idx uint32, write bool) error {
	return sm.loadPageWith(e, seg, idx, write, func(spec ck.MappingSpec) error {
		return sm.AK.CK.LoadMapping(e, sm.SID, spec)
	})
}

// loadPageResume is loadPage via the combined load-and-resume call.
func (sm *SegmentManager) loadPageResume(e *hw.Exec, seg *Segment, idx uint32, write bool) error {
	return sm.loadPageWith(e, seg, idx, write, func(spec ck.MappingSpec) error {
		return sm.AK.CK.LoadMappingAndResume(e, sm.SID, spec)
	})
}

func (sm *SegmentManager) loadPageWith(e *hw.Exec, seg *Segment, idx uint32, write bool, load func(ck.MappingSpec) error) error {
	ps := &seg.state[idx]
	if !ps.resident {
		pfn, ok := sm.AK.Frames.Alloc()
		if !ok {
			pfn, ok = sm.reclaimFrame(e)
			if !ok {
				return fmt.Errorf("aklib: %s out of frames", sm.AK.Name)
			}
		}
		ps.pfn = pfn
		ps.resident = true
		if seg.Backing != nil {
			seg.Backing.ReadPage(e, idx, pfn)
			sm.PageIns++
		}
	}
	spec := ck.MappingSpec{
		VA:           seg.VA + idx*hw.PageSize,
		PFN:          ps.pfn,
		Writable:     seg.Flags.Writable,
		Cachable:     !seg.Flags.Message,
		Message:      seg.Flags.Message,
		Locked:       seg.Flags.Locked,
		SignalThread: seg.Flags.SignalThread,
	}
	if err := load(spec); err != nil {
		return err
	}
	ps.mapped = true
	return nil
}

// ResolvePA returns the physical address backing va, paging the page in
// (and loading its mapping) if necessary. Application kernels use it to
// reach user buffers from system-call handlers, where the executing
// address space is the kernel's own.
func (sm *SegmentManager) ResolvePA(e *hw.Exec, va uint32) (uint32, bool) {
	seg := sm.find(va)
	if seg == nil {
		return 0, false
	}
	idx := (va - seg.VA) / hw.PageSize
	ps := &seg.state[idx]
	if !ps.resident {
		if err := sm.loadPage(e, seg, idx, false); err != nil {
			return 0, false
		}
	}
	return ps.pfn<<hw.PageShift | va&(hw.PageSize-1), true
}

// reclaimFrame implements the default page-replacement policy: scan
// segments for a resident, unlocked page (preferring unmapped and
// unreferenced ones), write it to backing store if dirty, and reuse its
// frame. Application kernels with better knowledge override this by
// managing frames directly — the application-controlled physical memory
// the paper motivates.
func (sm *SegmentManager) reclaimFrame(e *hw.Exec) (uint32, bool) {
	var candidate *Segment
	var candIdx uint32
	best := -1
	for _, seg := range sm.segs {
		if seg.Flags.Locked || seg.Backing == nil {
			continue
		}
		for i := range seg.state {
			ps := &seg.state[i]
			if !ps.resident {
				continue
			}
			score := 0
			if !ps.mapped {
				score += 2
			}
			if !ps.refd {
				score++
			}
			if score > best {
				best = score
				candidate, candIdx = seg, uint32(i)
			}
		}
	}
	if candidate == nil {
		return 0, false
	}
	return sm.evictPage(e, candidate, candIdx), true
}

// evictPage unloads and pages out one page, returning its frame.
func (sm *SegmentManager) evictPage(e *hw.Exec, seg *Segment, idx uint32) uint32 {
	ps := &seg.state[idx]
	if ps.mapped {
		st, err := sm.AK.CK.UnloadMapping(e, sm.SID, seg.VA+idx*hw.PageSize)
		if err == nil {
			ps.dirty = ps.dirty || st.Modified
		}
		ps.mapped = false
	}
	if ps.dirty && seg.Backing != nil {
		seg.Backing.WritePage(e, idx, ps.pfn)
		sm.PageOuts++
		ps.dirty = false
	}
	ps.resident = false
	return ps.pfn
}

// noteWriteback records mapping state pushed back by the Cache Kernel.
func (sm *SegmentManager) noteWriteback(st ck.MappingState) {
	seg := sm.find(st.VA)
	if seg == nil {
		return
	}
	ps := &seg.state[(st.VA-seg.VA)/hw.PageSize]
	ps.mapped = false
	ps.refd = st.Referenced
	ps.dirty = ps.dirty || st.Modified
}

// markUnloaded records that the whole space was written back.
func (sm *SegmentManager) markUnloaded() {
	sm.unloaded = true
	for _, seg := range sm.segs {
		for i := range seg.state {
			seg.state[i].mapped = false
		}
	}
}

// Unloaded reports whether the space was written back by the Cache
// Kernel (the kernel must reload it before running its threads).
func (sm *SegmentManager) Unloaded() bool { return sm.unloaded }

// Segments exposes the segment list (read-only use).
func (sm *SegmentManager) Segments() []*Segment { return sm.segs }
