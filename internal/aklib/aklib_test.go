package aklib

import (
	"math"
	"testing"
	"testing/quick"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

func TestFrameAllocator(t *testing.T) {
	var f FrameAllocator
	if _, ok := f.Alloc(); ok {
		t.Fatal("empty allocator produced a frame")
	}
	f.AddGroup(256)
	if f.Available() != hw.PageGroupPages {
		t.Fatalf("available = %d", f.Available())
	}
	seen := map[uint32]bool{}
	for {
		pfn, ok := f.Alloc()
		if !ok {
			break
		}
		if pfn < 256 || pfn >= 256+hw.PageGroupPages || seen[pfn] {
			t.Fatalf("bad frame %d", pfn)
		}
		seen[pfn] = true
	}
	if len(seen) != hw.PageGroupPages {
		t.Fatalf("allocated %d frames", len(seen))
	}
	f.Free(300)
	if pfn, ok := f.Alloc(); !ok || pfn != 300 {
		t.Fatalf("free/alloc round trip got %d, %v", pfn, ok)
	}
}

func TestFrameAllocatorProperty(t *testing.T) {
	fn := func(groups uint8, frees []uint8) bool {
		var f FrameAllocator
		n := int(groups%4) + 1
		for i := 0; i < n; i++ {
			f.AddGroup(uint32(i) * hw.PageGroupPages)
		}
		total := n * hw.PageGroupPages
		allocated := 0
		for range frees {
			if _, ok := f.Alloc(); ok {
				allocated++
			}
		}
		return f.Available() == total-allocated
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelConfigGeometry(t *testing.T) {
	cfg := ChannelConfig{}
	if cfg.TotalFrames() != 2 { // 8 slots * 256 B = 1 page payload + 1 bell
		t.Fatalf("default frames = %d", cfg.TotalFrames())
	}
	big := ChannelConfig{Slots: 64, SlotBytes: 512}
	if big.TotalFrames() != 9 { // 32 KB payload = 8 pages + bell
		t.Fatalf("big frames = %d", big.TotalFrames())
	}
}

// loopbackEnv boots a machine with a single first kernel for in-kernel
// library tests.
type loopbackEnv struct {
	m  *hw.Machine
	k  *ck.Kernel
	ak *AppKernel
}

func bootLoopback(t *testing.T, body func(env *loopbackEnv, e *hw.Exec)) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	env := &loopbackEnv{m: m, k: k}
	env.ak = NewAppKernel("lib", k, m.MPMs[0])
	attrs := env.ak.Attrs()
	var info ck.BootInfo
	b, err := k.Boot(attrs, 40, func(e *hw.Exec) {
		env.ak.ID = info.Kernel
		env.ak.SpaceID = info.Space
		NewSegmentManager(env.ak, info.Space)
		for g := uint32(1); g < 5; g++ {
			env.ak.Frames.AddGroup(g * hw.PageGroupPages)
		}
		env.ak.AdoptThread("boot", info.Thread, info.Space, e, 40)
		body(env, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	info = b
	m.Eng.MaxSteps = 50_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentMapFaultsInAnonymousPages(t *testing.T) {
	bootLoopback(t, func(env *loopbackEnv, e *hw.Exec) {
		sm := env.ak.Mem
		seg, err := sm.Map(e, "heap", 0x1000_0000, 8, SegFlags{Writable: true}, nil)
		if err != nil {
			t.Fatalf("map: %v", err)
		}
		e.Store32(0x1000_0000, 11)
		e.Store32(0x1000_0000+4*hw.PageSize, 22)
		if seg.Resident() != 2 {
			t.Errorf("resident = %d, want 2 (demand paging)", seg.Resident())
		}
		if sm.Faults != 2 {
			t.Errorf("faults = %d", sm.Faults)
		}
		if e.Load32(0x1000_0000) != 11 {
			t.Error("data lost")
		}
	})
}

func TestSegmentOverlapRejected(t *testing.T) {
	bootLoopback(t, func(env *loopbackEnv, e *hw.Exec) {
		sm := env.ak.Mem
		if _, err := sm.Map(e, "a", 0x1000_0000, 8, SegFlags{}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := sm.Map(e, "b", 0x1000_4000, 8, SegFlags{}, nil); err == nil {
			t.Fatal("overlap accepted")
		}
	})
}

// memBacking is an in-memory backing store recording transfers.
type memBacking struct {
	pages         map[uint32][hw.PageSize]byte
	reads, writes int
}

func (b *memBacking) ReadPage(e *hw.Exec, idx, pfn uint32) {
	b.reads++
	frame := e.MPM.Machine.Phys.Page(pfn)
	if p, ok := b.pages[idx]; ok {
		copy(frame[:], p[:])
	} else {
		for i := range frame {
			frame[i] = 0
		}
	}
}

func (b *memBacking) WritePage(e *hw.Exec, idx, pfn uint32) {
	b.writes++
	if b.pages == nil {
		b.pages = map[uint32][hw.PageSize]byte{}
	}
	var p [hw.PageSize]byte
	copy(p[:], e.MPM.Machine.Phys.Page(pfn)[:])
	b.pages[idx] = p
}

func TestSegmentReplacementPagesOutDirty(t *testing.T) {
	bootLoopback(t, func(env *loopbackEnv, e *hw.Exec) {
		// Tiny frame budget: force replacement.
		env.ak.Frames.free = nil
		for i := uint32(0); i < 4; i++ {
			env.ak.Frames.Free(512 + i)
		}
		back := &memBacking{}
		sm := env.ak.Mem
		if _, err := sm.Map(e, "data", 0x2000_0000, 16, SegFlags{Writable: true}, back); err != nil {
			t.Fatal(err)
		}
		// Touch 8 pages with distinct values: only 4 frames exist.
		for i := uint32(0); i < 8; i++ {
			e.Store32(0x2000_0000+i*hw.PageSize, 100+i)
		}
		if back.writes == 0 {
			t.Fatal("no page-outs despite frame pressure")
		}
		// All values must read back (paging in from the backing store).
		for i := uint32(0); i < 8; i++ {
			if v := e.Load32(0x2000_0000 + i*hw.PageSize); v != 100+i {
				t.Fatalf("page %d = %d", i, v)
			}
		}
		if back.reads == 0 {
			t.Fatal("no page-ins recorded")
		}
		if sm.PageOuts == 0 || sm.PageIns == 0 {
			t.Fatalf("manager stats: ins=%d outs=%d", sm.PageIns, sm.PageOuts)
		}
	})
}

func TestChannelLoopbackSendRecv(t *testing.T) {
	bootLoopback(t, func(env *loopbackEnv, e *hw.Exec) {
		k := env.k
		// Receiver thread in the same kernel space.
		var got []string
		recvReady := false
		var chn *Channel
		rx := env.ak.NewThread("rx", env.ak.SpaceID, 30, func(re *hw.Exec) {
			for !recvReady {
				re.Charge(1000)
			}
			for i := 0; i < 3; i++ {
				msg, err := chn.Recv(re, k)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				got = append(got, string(msg))
			}
		})
		if err := rx.Load(e, false); err != nil {
			t.Fatalf("rx load: %v", err)
		}
		var frames []uint32
		cfg := ChannelConfig{Slots: 4, SlotBytes: 64}
		for i := 0; i < cfg.TotalFrames(); i++ {
			pfn, ok := env.ak.Frames.Alloc()
			if !ok {
				t.Fatal("no frames")
			}
			frames = append(frames, pfn)
		}
		var err error
		chn, err = Connect(e, env.ak.Mem, 0x5000_0000, env.ak.Mem, 0x5100_0000, rx.TID, frames, cfg)
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		recvReady = true
		for _, s := range []string{"one", "two", "three"} {
			if err := chn.Send(e, []byte(s)); err != nil {
				t.Fatalf("send %q: %v", s, err)
			}
			e.Charge(hw.CyclesFromMicros(200))
		}
		for len(got) < 3 {
			e.Charge(2000)
		}
		if got[0] != "one" || got[1] != "two" || got[2] != "three" {
			t.Fatalf("got %v", got)
		}
	})
}

func TestChannelBackpressure(t *testing.T) {
	bootLoopback(t, func(env *loopbackEnv, e *hw.Exec) {
		k := env.k
		var chn *Channel
		ready := false
		received := 0
		rx := env.ak.NewThread("rx", env.ak.SpaceID, 10, func(re *hw.Exec) {
			for !ready {
				re.Charge(1000)
			}
			for i := 0; i < 8; i++ {
				re.Charge(hw.CyclesFromMicros(400)) // slow consumer
				if _, err := chn.Recv(re, k); err != nil {
					return
				}
				received++
			}
		})
		if err := rx.Load(e, false); err != nil {
			t.Fatal(err)
		}
		cfg := ChannelConfig{Slots: 2, SlotBytes: 64}
		var frames []uint32
		for i := 0; i < cfg.TotalFrames(); i++ {
			pfn, _ := env.ak.Frames.Alloc()
			frames = append(frames, pfn)
		}
		var err error
		chn, err = Connect(e, env.ak.Mem, 0x5000_0000, env.ak.Mem, 0x5100_0000, rx.TID, frames, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ready = true
		for i := 0; i < 8; i++ {
			if err := chn.Send(e, []byte{byte(i)}); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		for received < 8 {
			e.Charge(2000)
		}
		if chn.Sends != 8 || chn.Recvs != 8 {
			t.Fatalf("sends=%d recvs=%d", chn.Sends, chn.Recvs)
		}
	})
}

func TestMessageTooLargeRejected(t *testing.T) {
	c := &Channel{cfg: ChannelConfig{Slots: 2, SlotBytes: 64}}
	// Send must reject before touching memory.
	if err := c.Send(nil, make([]byte, 100)); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestCopyOnWriteSharesUntilWrite(t *testing.T) {
	bootLoopback(t, func(env *loopbackEnv, e *hw.Exec) {
		sm := env.ak.Mem
		src, err := sm.Map(e, "src", 0x1000_0000, 4, SegFlags{Writable: true, Eager: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint32(0); i < 4; i++ {
			e.Store32(0x1000_0000+i*hw.PageSize, 100+i)
		}
		cow, err := sm.MapCopyOnWrite(e, "cow", 0x2000_0000, src)
		if err != nil {
			t.Fatal(err)
		}
		// Reads see the source data through shared frames.
		for i := uint32(0); i < 4; i++ {
			if v := e.Load32(0x2000_0000 + i*hw.PageSize); v != 100+i {
				t.Fatalf("cow read page %d = %d", i, v)
			}
		}
		if cow.CopiedPages() != 0 {
			t.Fatalf("copies before any write: %d", cow.CopiedPages())
		}
		// First write to page 2 copies it; the others stay shared.
		e.Store32(0x2000_0000+2*hw.PageSize, 777)
		if cow.CopiedPages() != 1 {
			t.Fatalf("copies after one write: %d", cow.CopiedPages())
		}
		if sm.CowCopies != 1 {
			t.Fatalf("CowCopies = %d", sm.CowCopies)
		}
		// The copy holds both the new value and the rest of the page,
		// and the source is untouched.
		if v := e.Load32(0x2000_0000 + 2*hw.PageSize); v != 777 {
			t.Fatalf("cow page after write = %d", v)
		}
		if v := e.Load32(0x1000_0000 + 2*hw.PageSize); v != 102 {
			t.Fatalf("source page disturbed: %d", v)
		}
		// Writing the source does not affect already-copied pages but
		// does show through still-shared ones.
		e.Store32(0x1000_0000+1*hw.PageSize, 999)
		if v := e.Load32(0x2000_0000 + 1*hw.PageSize); v != 999 {
			t.Fatalf("shared page should see source write, got %d", v)
		}
		if v := e.Load32(0x2000_0000 + 2*hw.PageSize); v != 777 {
			t.Fatalf("copied page changed: %d", v)
		}
	})
}

func TestCopyOnWriteRecordInCacheKernel(t *testing.T) {
	bootLoopback(t, func(env *loopbackEnv, e *hw.Exec) {
		sm := env.ak.Mem
		src, err := sm.Map(e, "src", 0x1000_0000, 1, SegFlags{Writable: true, Eager: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		cow, err := sm.MapCopyOnWrite(e, "cow", 0x2000_0000, src)
		if err != nil {
			t.Fatal(err)
		}
		_ = cow
		// A read loads the read-only mapping with its CoW source; the
		// unload returns the source frame in the mapping state.
		_ = e.Load32(0x2000_0000)
		st, err := env.k.UnloadMapping(e, sm.SID, 0x2000_0000)
		if err != nil {
			t.Fatal(err)
		}
		srcPFN, _ := src.PFN(0)
		if st.CopyOnWriteFrom != srcPFN {
			t.Fatalf("CoW record = %#x, want %#x", st.CopyOnWriteFrom, srcPFN)
		}
		if st.Writable {
			t.Fatal("CoW mapping was writable")
		}
	})
}
