package aklib

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// Deferred copy (copy-on-write), the facility the paper's Cache Kernel
// carries dependency records for (§2.1, §4.1, §6: "the Cache Kernel
// includes additional support for deferred copy"). The mechanism splits
// exactly as the caching model prescribes: the Cache Kernel only stores
// the copy-on-write source in a dependency record attached to the
// read-only mapping; the policy — when to copy, where the new frame
// comes from — lives here in the application kernel, which resolves the
// protection fault by copying the page and loading a writable mapping.

// MapCopyOnWrite creates a segment at va that lazily shares src's
// resident pages: reads go to the original frames through read-only
// mappings carrying the copy-on-write source; the first write to a page
// faults, copies the page into a fresh frame and remaps it writable.
// src must belong to a space of the same kernel and have all pages
// resident (eagerly mapped segments qualify).
func (sm *SegmentManager) MapCopyOnWrite(e *hw.Exec, name string, va uint32, src *Segment) (*Segment, error) {
	for i := uint32(0); i < src.Pages; i++ {
		if !src.state[i].resident {
			return nil, fmt.Errorf("aklib: copy-on-write source page %d not resident", i)
		}
	}
	seg, err := sm.Map(e, name, va, src.Pages, SegFlags{Writable: true}, nil)
	if err != nil {
		return nil, err
	}
	seg.cowSrc = src
	for i := uint32(0); i < src.Pages; i++ {
		ps := &seg.state[i]
		ps.pfn = src.state[i].pfn
		ps.resident = true
		ps.shared = true
	}
	return seg, nil
}

// CopiedPages reports how many pages have been privately copied.
func (s *Segment) CopiedPages() int {
	n := 0
	for i := range s.state {
		if s.state[i].resident && !s.state[i].shared && s.cowSrc != nil {
			n++
		}
	}
	return n
}

// loadCowRead maps a still-shared page read-only with its copy-on-write
// source recorded in the Cache Kernel.
func (sm *SegmentManager) loadCowRead(e *hw.Exec, seg *Segment, idx uint32) error {
	ps := &seg.state[idx]
	err := sm.AK.CK.LoadMappingAndResume(e, sm.SID, ck.MappingSpec{
		VA:              seg.VA + idx*hw.PageSize,
		PFN:             ps.pfn,
		Writable:        false,
		Cachable:        true,
		CopyOnWriteFrom: ps.pfn,
	})
	if err == nil {
		ps.mapped = true
	}
	return err
}

// resolveCowWrite performs the deferred copy: allocate a private frame,
// copy the shared page's contents through the memory system, and load a
// writable mapping over the new frame.
func (sm *SegmentManager) resolveCowWrite(e *hw.Exec, seg *Segment, idx uint32) error {
	ps := &seg.state[idx]
	newPFN, ok := sm.AK.Frames.Alloc()
	if !ok {
		return fmt.Errorf("aklib: %s out of frames for copy-on-write", sm.AK.Name)
	}
	// Drop the read-only mapping (and its copy-on-write record) if
	// loaded.
	if ps.mapped {
		_, _ = sm.AK.CK.UnloadMapping(e, sm.SID, seg.VA+idx*hw.PageSize)
		ps.mapped = false
	}
	// Copy the page. The transfer is charged like any other data copy.
	phys := e.MPM.Machine.Phys
	src := phys.Page(ps.pfn)
	dst := phys.Page(newPFN)
	copy(dst[:], src[:])
	e.Charge(hw.PageSize / 4 * hw.CostMemHit * 2)
	sm.CowCopies++

	ps.pfn = newPFN
	ps.shared = false
	err := sm.AK.CK.LoadMappingAndResume(e, sm.SID, ck.MappingSpec{
		VA: seg.VA + idx*hw.PageSize, PFN: newPFN, Writable: true, Cachable: true,
	})
	if err == nil {
		ps.mapped = true
	}
	return err
}
