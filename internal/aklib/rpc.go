package aklib

import (
	"encoding/binary"
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// The object-oriented RPC facility layered on memory-based messaging
// (paper §2.2): a request channel toward the server thread and a
// response channel back to the client thread give applications a
// conventional procedural interface to services. Marshaling happens
// directly into the shared message pages — no copying through the
// kernel, no protection boundary crossing in software.

// RPCConn is a client's connection to an RPC server.
type RPCConn struct {
	K    *ck.Kernel
	Req  *Channel // client -> server
	Resp *Channel // server -> client
}

// RPCServer dispatches calls arriving on a request channel.
type RPCServer struct {
	K        *ck.Kernel
	Req      *Channel
	Resp     *Channel
	handlers map[uint32]func(e *hw.Exec, payload []byte) []byte
	// Served counts completed calls.
	Served uint64
}

// NewRPCServer wraps the server side of a channel pair.
func NewRPCServer(k *ck.Kernel, req, resp *Channel) *RPCServer {
	return &RPCServer{
		K: k, Req: req, Resp: resp,
		handlers: make(map[uint32]func(*hw.Exec, []byte) []byte),
	}
}

// Register installs the handler for an operation code (the stub table
// of the object-oriented RPC facility).
func (s *RPCServer) Register(op uint32, fn func(e *hw.Exec, payload []byte) []byte) {
	s.handlers[op] = fn
}

// ServeOne receives one request, dispatches it and sends the reply. The
// calling thread must be the request channel's signal thread.
func (s *RPCServer) ServeOne(e *hw.Exec) error {
	msg, err := s.Req.Recv(e, s.K)
	if err != nil {
		return err
	}
	if len(msg) < 4 {
		return fmt.Errorf("aklib: short RPC request (%d bytes)", len(msg))
	}
	op := binary.LittleEndian.Uint32(msg[:4])
	fn := s.handlers[op]
	var reply []byte
	if fn == nil {
		reply = nil
	} else {
		reply = fn(e, msg[4:])
	}
	out := make([]byte, 4+len(reply))
	binary.LittleEndian.PutUint32(out, op)
	copy(out[4:], reply)
	return s.Resp.Send(e, out)
}

// Serve loops forever (until a channel error).
func (s *RPCServer) Serve(e *hw.Exec) error {
	for {
		if err := s.ServeOne(e); err != nil {
			return err
		}
		s.Served++
	}
}

// Call sends a request and blocks for the matching reply. The calling
// thread must be the response channel's signal thread.
func (c *RPCConn) Call(e *hw.Exec, op uint32, payload []byte) ([]byte, error) {
	msg := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(msg, op)
	copy(msg[4:], payload)
	if err := c.Req.Send(e, msg); err != nil {
		return nil, err
	}
	reply, err := c.Resp.Recv(e, c.K)
	if err != nil {
		return nil, err
	}
	if len(reply) < 4 || binary.LittleEndian.Uint32(reply[:4]) != op {
		return nil, fmt.Errorf("aklib: mismatched RPC reply")
	}
	return reply[4:], nil
}

// PutU32 appends a 32-bit value to a marshaling buffer.
func PutU32(b []byte, v uint32) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	return append(b, w[:]...)
}

// U32 reads the 32-bit value at offset off.
func U32(b []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(b[off : off+4])
}
