package aklib

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// The processing library: a thread library that schedules threads by
// loading them into the Cache Kernel rather than running its own
// dispatcher (paper Section 3). The application kernel keeps the backing
// descriptor for every thread; the Cache Kernel caches the loaded subset.

// Thread is an application kernel's backing record for one thread.
type Thread struct {
	AK      *AppKernel
	Name    string
	SpaceID ck.ObjID
	Exec    *hw.Exec

	// TID is the Cache Kernel identifier while loaded (changes on every
	// reload, as identifiers do in the caching model).
	TID    ck.ObjID
	Loaded bool

	state ck.ThreadState
	body  func(e *hw.Exec)
}

// NewThread creates a thread record whose body runs when first loaded
// and dispatched.
func (ak *AppKernel) NewThread(name string, sid ck.ObjID, prio int, body func(e *hw.Exec)) *Thread {
	th := &Thread{
		AK:      ak,
		Name:    name,
		SpaceID: sid,
		body:    body,
	}
	th.Exec = ak.MPM.NewExec(ak.Name+"/"+name, body)
	th.state = ck.ThreadState{Priority: prio, Exec: th.Exec}
	return th
}

// Revive replaces a finished execution context with a fresh one running
// the thread's body from the start. A Cache Kernel crash kills the
// contexts that were running on the MPM's CPUs; their register state is
// unrecoverable, so the application kernel — which holds the program,
// not just the cached descriptor — reruns it. Threads adopted without a
// body (and contexts that are still resumable) are not revivable.
func (t *Thread) Revive() bool {
	if t.body == nil || t.Exec == nil || !t.Exec.Finished() {
		return false
	}
	t.Exec = t.AK.MPM.NewExec(t.AK.Name+"/"+t.Name, t.body)
	t.state = ck.ThreadState{Priority: t.state.Priority, Exec: t.Exec}
	t.Loaded = false
	t.TID = 0
	return true
}

// Retire kills the thread's execution context in place. Live migration
// calls it on the source MPM after the descriptor writeback: an
// execution context is bound to the engine shard that created it, so it
// cannot follow the backing record to another MPM — the adopting side
// regenerates a fresh context from the body with Rehome. A retired
// context that is parked never runs again (the crash path leaves killed
// parked contexts the same way).
func (t *Thread) Retire() {
	if t.Exec != nil && !t.Exec.Finished() {
		t.Exec.Kill()
	}
}

// Rehome replaces the thread's (retired or finished) execution context
// with a fresh one created on the kernel's current MPM, rerunning the
// body from the start on next load. It is Revive for migration: the
// caching model keeps every thread regenerable from its backing record,
// so moving the record between MPMs only costs rebuilding the context.
func (t *Thread) Rehome() bool {
	if t.body == nil {
		return false
	}
	t.Exec = t.AK.MPM.NewExec(t.AK.Name+"/"+t.Name, t.body)
	t.state = ck.ThreadState{Priority: t.state.Priority, Exec: t.Exec}
	t.Loaded = false
	t.TID = 0
	return true
}

// TrackThread registers another kernel's thread record for writeback
// routing. The SRM owns the main threads it loads for launched kernels,
// so the Cache Kernel writes them back to the SRM; tracking lets the
// record absorb that state.
func (ak *AppKernel) TrackThread(t *Thread) {
	if t.Loaded {
		ak.threadsByID[t.TID] = t
	}
}

// AdoptThread registers a record for a thread loaded outside the
// library (the SRM's boot thread) so writebacks and fault routing find
// it.
func (ak *AppKernel) AdoptThread(name string, tid, sid ck.ObjID, exec *hw.Exec, prio int) *Thread {
	th := &Thread{
		AK:      ak,
		Name:    name,
		SpaceID: sid,
		Exec:    exec,
		TID:     tid,
		Loaded:  true,
		state:   ck.ThreadState{Priority: prio, Exec: exec},
	}
	ak.threadsByID[tid] = th
	return th
}

// Load makes the thread a candidate for execution by loading its
// descriptor into the Cache Kernel. If the containing space was written
// back, Load fails with ck.ErrInvalidID and the caller reloads the space
// first — the retry protocol of paper §2.
func (t *Thread) Load(e *hw.Exec, locked bool) error {
	if t.Loaded {
		return fmt.Errorf("aklib: thread %q already loaded", t.Name)
	}
	tid, err := t.AK.CK.LoadThread(e, t.SpaceID, t.state, locked)
	if err != nil {
		return err
	}
	t.TID = tid
	t.Loaded = true
	t.AK.threadsByID[tid] = t
	return nil
}

// Unload removes the thread from the Cache Kernel, saving its state in
// this record (the backing store of the caching model).
func (t *Thread) Unload(e *hw.Exec) error {
	if !t.Loaded {
		return fmt.Errorf("aklib: thread %q not loaded", t.Name)
	}
	st, err := t.AK.CK.UnloadThread(e, t.TID)
	if err != nil {
		return err
	}
	delete(t.AK.threadsByID, t.TID)
	t.absorbWriteback(st)
	return nil
}

// MarkUnloaded records that the thread is being unloaded outside the
// library's Unload path (a self-unload issued from the thread itself),
// clearing the library's loaded-thread bookkeeping first.
func (t *Thread) MarkUnloaded() {
	if !t.Loaded {
		return
	}
	delete(t.AK.threadsByID, t.TID)
	t.Loaded = false
	t.TID = 0
}

// absorbWriteback saves written-back state and marks the record
// unloaded.
func (t *Thread) absorbWriteback(st ck.ThreadState) {
	t.state = st
	t.Loaded = false
	t.TID = 0
}

// SetPriority updates the backing priority and, if loaded, the cached
// descriptor via the specialized modify call.
func (t *Thread) SetPriority(e *hw.Exec, prio int) error {
	t.state.Priority = prio
	if !t.Loaded {
		return nil
	}
	return t.AK.CK.SetThreadPriority(e, t.TID, prio)
}

// Priority reports the backing priority.
func (t *Thread) Priority() int { return t.state.Priority }

// Wait blocks the calling thread (which must be this thread) until a
// signal arrives, returning the signalled address.
func (t *Thread) Wait(e *hw.Exec) (uint32, error) {
	return t.AK.CK.WaitSignal(e)
}

// Signal posts an address-valued signal to the thread.
func (t *Thread) Signal(e *hw.Exec, value uint32) error {
	if !t.Loaded {
		return fmt.Errorf("aklib: signal to unloaded thread %q", t.Name)
	}
	return t.AK.CK.PostSignal(e, t.TID, value)
}
