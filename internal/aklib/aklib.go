// Package aklib is the application-kernel class library of the V++
// reproduction: the Go counterpart of the paper's C++ libraries for
// memory management, processing and communication (Section 3).
//
// An application kernel is any program written against the Cache Kernel
// interface that manages its own memory, processing and communication:
// it loads address spaces, threads and page mappings, handles the traps
// and faults of its threads, and absorbs writebacks. AppKernel bundles
// the common machinery; kernels specialize by overriding the hook
// functions (OnFault, OnTrap, writeback hooks), exactly as the paper's
// kernels overrode virtual functions of the class library.
package aklib

import (
	"fmt"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// AppKernel is the base state of one application kernel.
type AppKernel struct {
	Name string
	CK   *ck.Kernel
	MPM  *hw.MPM

	// ID is the kernel object identifier; SpaceID the kernel's own
	// address space (owned by the SRM that launched it).
	ID      ck.ObjID
	SpaceID ck.ObjID

	// Frames allocates physical page frames from the page groups the
	// SRM granted this kernel.
	Frames *FrameAllocator

	// Mem manages the kernel's own address space.
	Mem *SegmentManager

	// OnTrap handles trap numbers the library does not recognize; the
	// UNIX emulator installs its system-call table here.
	OnTrap func(e *hw.Exec, thread ck.ObjID, no uint32, args []uint32) (uint32, uint32)

	// OnFault is consulted before the segment managers; the first
	// result reports whether the fault was consumed, the second whether
	// to resume the thread. Kernels use it for application-specific
	// recovery policies.
	OnFault func(e *hw.Exec, thread, space ck.ObjID, va uint32, write bool, kind hw.Fault) (bool, bool)

	// OnMappingWB etc. observe writebacks after the library records
	// them.
	OnMappingWB func(st ck.MappingState)
	OnThreadWB  func(id ck.ObjID, st ck.ThreadState)
	OnSpaceWB   func(id ck.ObjID)
	OnKernelWB  func(id ck.ObjID)

	// OnRecover, when set, is the kernel's crash-recovery entry point:
	// after a Cache Kernel crash-reboot the SRM reloads the kernel and
	// runs OnRecover on a fresh thread in the kernel's own space, with
	// the kernel's authority. The kernel reloads or recreates its
	// threads from its backing records there.
	OnRecover func(e *hw.Exec)

	// spaceMgrs maps loaded space IDs to their segment managers so the
	// fault handler can find the right one.
	spaceMgrs map[ck.ObjID]*SegmentManager

	// threadsByID tracks this kernel's thread records for writeback.
	threadsByID map[ck.ObjID]*Thread

	// Writeback traffic counters.
	MappingWBs, ThreadWBs, SpaceWBs uint64
}

// NewAppKernel returns an unbooted application kernel shell; the SRM (or
// test harness) completes it by loading the kernel object and space and
// setting ID/SpaceID.
func NewAppKernel(name string, k *ck.Kernel, mpm *hw.MPM) *AppKernel {
	ak := &AppKernel{
		Name:        name,
		CK:          k,
		MPM:         mpm,
		Frames:      &FrameAllocator{},
		spaceMgrs:   make(map[ck.ObjID]*SegmentManager),
		threadsByID: make(map[ck.ObjID]*Thread),
	}
	return ak
}

// Attrs builds the Cache Kernel attributes that route this kernel's
// traps, faults and writebacks through the library.
func (ak *AppKernel) Attrs() ck.KernelAttrs {
	return ck.KernelAttrs{
		Name:      ak.Name,
		Trap:      ak.handleTrap,
		Fault:     ak.handleFault,
		Wb:        ak,
		LockQuota: [4]int{2, 8, 16, 512},
	}
}

// AttachSpace registers a segment manager for a loaded space so the
// fault handler pages it on demand.
func (ak *AppKernel) AttachSpace(sid ck.ObjID, sm *SegmentManager) {
	ak.spaceMgrs[sid] = sm
	if sid == ak.SpaceID {
		ak.Mem = sm
	}
}

// DetachSpace removes a space's segment manager (when unloading it).
func (ak *AppKernel) DetachSpace(sid ck.ObjID) { delete(ak.spaceMgrs, sid) }

// InvalidateLoadedState discards the library's record of what the Cache
// Kernel holds: every space's mapping state is marked unloaded and the
// loaded-thread index is cleared. Crash recovery calls it — the cached
// descriptors are gone without any writeback, so only the backing
// records remain true.
func (ak *AppKernel) InvalidateLoadedState() {
	sids := make([]ck.ObjID, 0, len(ak.spaceMgrs))
	//ckvet:allow detmap keys are collected then sorted before use
	for sid := range ak.spaceMgrs {
		sids = append(sids, sid)
	}
	for i := 1; i < len(sids); i++ {
		for j := i; j > 0 && sids[j] < sids[j-1]; j-- {
			sids[j], sids[j-1] = sids[j-1], sids[j]
		}
	}
	for _, sid := range sids {
		ak.spaceMgrs[sid].markUnloaded()
	}
	ak.threadsByID = make(map[ck.ObjID]*Thread)
}

// SpaceManager returns the segment manager attached to a space.
func (ak *AppKernel) SpaceManager(sid ck.ObjID) *SegmentManager { return ak.spaceMgrs[sid] }

// ThreadByID resolves a loaded thread's library record from its current
// Cache Kernel identifier.
func (ak *AppKernel) ThreadByID(tid ck.ObjID) *Thread { return ak.threadsByID[tid] }

// LoadedThreads returns the kernel's master thread records currently
// registered under a Cache Kernel identifier, sorted by identifier. It
// is the application-kernel side of the cache-coherence oracle: every
// entry claims a loaded descriptor (modulo threads whose execution
// already finished, which the Cache Kernel reclaims without writeback).
func (ak *AppKernel) LoadedThreads() []*Thread {
	ths := make([]*Thread, 0, len(ak.threadsByID))
	//ckvet:allow detmap values are collected then sorted by TID before use
	for _, th := range ak.threadsByID {
		ths = append(ths, th)
	}
	for i := 1; i < len(ths); i++ {
		for j := i; j > 0 && ths[j].TID < ths[j-1].TID; j-- {
			ths[j], ths[j-1] = ths[j-1], ths[j]
		}
	}
	return ths
}

// handleTrap is installed as the Cache Kernel trap handler.
func (ak *AppKernel) handleTrap(e *hw.Exec, thread ck.ObjID, no uint32, args []uint32) (uint32, uint32) {
	if ak.OnTrap != nil {
		return ak.OnTrap(e, thread, no, args)
	}
	return ^uint32(0), 0
}

// handleFault is installed as the Cache Kernel fault handler: it finds
// the faulting space's segment manager and demand-loads the page, using
// the combined load-and-resume call (Figure 2).
func (ak *AppKernel) handleFault(e *hw.Exec, thread, space ck.ObjID, va uint32, write bool, kind hw.Fault) bool {
	if ak.OnFault != nil {
		if handled, resume := ak.OnFault(e, thread, space, va, write, kind); handled {
			return resume
		}
	}
	sm := ak.spaceMgrs[space]
	if sm == nil {
		return false
	}
	return sm.HandleFault(e, va, write)
}

// MappingWriteback implements ck.Writeback: the library updates the
// segment manager's page state (referenced/modified bits) so replacement
// policies can use it.
func (ak *AppKernel) MappingWriteback(st ck.MappingState) {
	ak.MappingWBs++
	if sm := ak.spaceMgrs[st.Space]; sm != nil {
		sm.noteWriteback(st)
	}
	if ak.OnMappingWB != nil {
		ak.OnMappingWB(st)
	}
}

// ThreadWriteback implements ck.Writeback: the thread record absorbs the
// state and marks itself unloaded, ready for a later reload.
func (ak *AppKernel) ThreadWriteback(id ck.ObjID, st ck.ThreadState) {
	ak.ThreadWBs++
	if th := ak.threadsByID[id]; th != nil {
		th.absorbWriteback(st)
		delete(ak.threadsByID, id)
	}
	if ak.OnThreadWB != nil {
		ak.OnThreadWB(id, st)
	}
}

// SpaceWriteback implements ck.Writeback.
func (ak *AppKernel) SpaceWriteback(id ck.ObjID) {
	ak.SpaceWBs++
	if sm := ak.spaceMgrs[id]; sm != nil {
		sm.markUnloaded()
	}
	if ak.OnSpaceWB != nil {
		ak.OnSpaceWB(id)
	}
}

// KernelWriteback implements ck.Writeback; only the SRM (owner of all
// kernel objects) receives these.
func (ak *AppKernel) KernelWriteback(id ck.ObjID) {
	if ak.OnKernelWB != nil {
		ak.OnKernelWB(id)
	}
}

// String identifies the kernel in diagnostics.
func (ak *AppKernel) String() string { return fmt.Sprintf("appkernel(%s)", ak.Name) }

// FrameAllocator hands out physical page frames from the page groups
// granted to the kernel by the system resource manager.
type FrameAllocator struct {
	free []uint32
}

// AddGroup contributes one page group (128 contiguous frames).
func (f *FrameAllocator) AddGroup(firstFrame uint32) {
	for i := uint32(0); i < hw.PageGroupPages; i++ {
		f.free = append(f.free, firstFrame+i)
	}
}

// Alloc takes a free frame.
func (f *FrameAllocator) Alloc() (uint32, bool) {
	if len(f.free) == 0 {
		return 0, false
	}
	pfn := f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	return pfn, true
}

// Free returns a frame.
func (f *FrameAllocator) Free(pfn uint32) { f.free = append(f.free, pfn) }

// Available reports the number of free frames.
func (f *FrameAllocator) Available() int { return len(f.free) }
