// Package monolith is a conventional monolithic kernel baseline for the
// evaluation: all services — process table, scheduler, virtual memory —
// live in supervisor mode, system calls dispatch directly (one trap
// level, like the paper's Mach 2.5 getpid comparison), and the process
// table is fixed-size, exhibiting the "hard error" behaviour the caching
// model eliminates (paper §7: an application on the Cache Kernel never
// encounters the kernel running out of thread or address space
// descriptors).
package monolith

import (
	"fmt"

	"vpp/internal/hw"
	"vpp/internal/pagetable"
)

// System call numbers (matching unixemu where shared).
const (
	SysExit   = 1
	SysGetpid = 20
	SysYield  = 158
)

// Baseline costs, calibrated so getpid lands on the paper's Mach 2.5
// figure of 25 µs (the Cache Kernel path is 12 µs longer).
const (
	costSyscall   = 405 // in-kernel dispatch + validation
	costFault     = 1960
	costSwitch    = 350
	costDescoping = 60
)

// NPROC is the fixed process table size — the classic hard limit.
const NPROC = 32

// Proc is an in-kernel process slot.
type Proc struct {
	PID   int
	used  bool
	state procState
	exec  *hw.Exec
	space *hw.Space
	prio  int

	// segments: simple in-kernel VM.
	segs []seg

	frames   []uint32
	exitCode uint32
}

type seg struct {
	va, pages uint32
	writable  bool
}

type procState int

const (
	procFree procState = iota
	procReady
	procRunning
	procZombie
)

// Kernel is the monolithic kernel instance (the machine's supervisor).
type Kernel struct {
	MPM *hw.MPM

	procs     [NPROC]Proc
	nextPID   int
	ready     []*Proc
	nextFrame uint32
	asid      uint16

	// Stats.
	Syscalls, Faults, Switches uint64
}

// ErrProcTableFull is the hard error a fixed-table kernel returns.
var ErrProcTableFull = fmt.Errorf("monolith: process table full")

// New installs a monolithic kernel as the MPM's supervisor.
func New(mpm *hw.MPM) *Kernel {
	k := &Kernel{MPM: mpm, nextPID: 1, nextFrame: 4096}
	mpm.Sup = k
	return k
}

// Spawn creates a process running body with a heap segment at the given
// base. It fails with ErrProcTableFull when the table is exhausted.
func (k *Kernel) Spawn(name string, prio int, heapBase, heapPages uint32, body func(e *hw.Exec)) (*Proc, error) {
	var p *Proc
	for i := range k.procs {
		if !k.procs[i].used {
			p = &k.procs[i]
			break
		}
	}
	if p == nil {
		return nil, ErrProcTableFull
	}
	tbl, err := pagetable.New(k.MPM.LocalRAM)
	if err != nil {
		return nil, err
	}
	k.asid++
	*p = Proc{
		PID:   k.nextPID,
		used:  true,
		state: procReady,
		space: &hw.Space{Table: tbl, ASID: k.asid},
		prio:  prio,
		segs:  []seg{{va: heapBase, pages: heapPages, writable: true}},
	}
	k.nextPID++
	p.exec = k.MPM.NewExec(name, body)
	p.exec.User = p
	p.exec.Space = p.space
	k.makeReady(p)
	return p, nil
}

func (k *Kernel) makeReady(p *Proc) {
	for _, cpu := range k.MPM.CPUs {
		if cpu.Cur == nil {
			p.state = procRunning
			cpu.Clock.AdvanceTo(k.MPM.Machine.Eng.Now() + costSwitch)
			cpu.Dispatch(p.exec)
			k.Switches++
			return
		}
	}
	p.state = procReady
	k.ready = append(k.ready, p)
}

func (k *Kernel) dispatchNext(cpu *hw.CPU) {
	if len(k.ready) == 0 {
		return
	}
	p := k.ready[0]
	copy(k.ready, k.ready[1:])
	k.ready = k.ready[:len(k.ready)-1]
	p.state = procRunning
	k.Switches++
	cpu.Dispatch(p.exec)
}

// Syscall implements hw.Supervisor: direct in-kernel dispatch.
func (k *Kernel) Syscall(e *hw.Exec, no uint32, args []uint32) (uint32, uint32) {
	k.Syscalls++
	e.ChargeNoIntr(costSyscall)
	p, _ := e.User.(*Proc)
	if p == nil {
		return ^uint32(0), 1
	}
	switch no {
	case SysGetpid:
		e.Instr(4)
		return uint32(p.PID), 0
	case SysExit:
		p.state = procZombie
		if len(args) > 0 {
			p.exitCode = args[0]
		}
		e.Exit()
	case SysYield:
		return 0, 0
	}
	return ^uint32(0), 22
}

// AccessError implements hw.Supervisor: the in-kernel page fault path.
func (k *Kernel) AccessError(e *hw.Exec, va uint32, write bool, f hw.Fault) {
	k.Faults++
	e.ChargeNoIntr(costFault)
	p, _ := e.User.(*Proc)
	if p == nil {
		panic("monolith: fault with no process")
	}
	for _, s := range p.segs {
		if va >= s.va && va < s.va+s.pages*hw.PageSize {
			pfn := k.nextFrame
			k.nextFrame++
			p.frames = append(p.frames, pfn)
			flags := pagetable.PTEValid | pagetable.PTECachable
			if s.writable {
				flags |= pagetable.PTEWrite
			}
			if err := p.space.Table.Insert(va&^(hw.PageSize-1), pagetable.MakePTE(pfn, flags)); err != nil {
				break
			}
			return
		}
	}
	// Segmentation violation: kill.
	p.state = procZombie
	p.exitCode = 0xff
	e.Exit()
}

// Interrupt implements hw.Supervisor (time-slice rotation).
func (k *Kernel) Interrupt(e *hw.Exec, pending uint32) {
	p, _ := e.User.(*Proc)
	if p == nil || len(k.ready) == 0 {
		return
	}
	cpu := e.CPU
	e.ChargeNoIntr(costSwitch)
	p.state = procReady
	k.ready = append(k.ready, p)
	if cpu.Cur == e {
		cpu.Cur = nil
	}
	e.CPU = nil
	k.dispatchNext(cpu)
	e.Ctx().Park()
}

// MessageWrite implements hw.Supervisor (unused in the baseline).
func (k *Kernel) MessageWrite(e *hw.Exec, va, pa uint32) {}

// TimerTick implements hw.Supervisor.
func (k *Kernel) TimerTick(c *hw.CPU) { c.Post(1) }

// Exited implements hw.Supervisor.
func (k *Kernel) Exited(e *hw.Exec) {
	cpu := e.CPU
	if p, _ := e.User.(*Proc); p != nil && p.state != procZombie {
		p.state = procZombie
	}
	e.CPU = nil
	if cpu != nil {
		k.dispatchNext(cpu)
	}
}

// Reap frees a zombie's slot and frames.
func (k *Kernel) Reap(pid int) bool {
	for i := range k.procs {
		p := &k.procs[i]
		if p.used && p.PID == pid && p.state == procZombie {
			p.space.Table.Release()
			p.used = false
			return true
		}
	}
	return false
}

// Proc finds a live process by pid.
func (k *Kernel) Proc(pid int) *Proc {
	for i := range k.procs {
		if k.procs[i].used && k.procs[i].PID == pid {
			return &k.procs[i]
		}
	}
	return nil
}

// Zombie reports whether pid has exited.
func (k *Kernel) Zombie(pid int) bool {
	p := k.Proc(pid)
	return p != nil && p.state == procZombie
}
