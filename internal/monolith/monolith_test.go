package monolith

import (
	"math"
	"testing"

	"vpp/internal/hw"
)

func bootMono(t *testing.T) (*hw.Machine, *Kernel) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	return m, New(m.MPMs[0])
}

func run(t *testing.T, m *hw.Machine) {
	t.Helper()
	m.Eng.MaxSteps = 20_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
}

func TestGetpidDirectDispatch(t *testing.T) {
	m, k := bootMono(t)
	var pid uint32
	var dur float64
	p, err := k.Spawn("u", 10, 0x1000_0000, 16, func(e *hw.Exec) {
		e.Trap(SysGetpid) // warm
		t0 := e.Now()
		pid, _ = e.Trap(SysGetpid)
		dur = hw.MicrosFromCycles(e.Now() - t0)
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if int(pid) != p.PID {
		t.Fatalf("pid = %d, want %d", pid, p.PID)
	}
	// Paper: Mach 2.5 getpid is about 25 µs on comparable hardware.
	if dur < 20 || dur > 30 {
		t.Fatalf("monolithic getpid = %.1f µs, want ~25", dur)
	}
}

func TestInKernelDemandPaging(t *testing.T) {
	m, k := bootMono(t)
	var got uint32
	_, err := k.Spawn("u", 10, 0x1000_0000, 16, func(e *hw.Exec) {
		e.Store32(0x1000_0000, 31337)
		got = e.Load32(0x1000_0000)
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if got != 31337 {
		t.Fatalf("got %d", got)
	}
	if k.Faults != 1 {
		t.Fatalf("faults = %d", k.Faults)
	}
}

func TestWildAccessKillsProcess(t *testing.T) {
	m, k := bootMono(t)
	p, _ := k.Spawn("bad", 10, 0x1000_0000, 16, func(e *hw.Exec) {
		e.Load32(0x7000_0000)
		t.Error("survived wild access")
	})
	run(t, m)
	if !k.Zombie(p.PID) {
		t.Fatal("process not killed")
	}
}

func TestHardProcessTableLimit(t *testing.T) {
	m, k := bootMono(t)
	for i := 0; i < NPROC; i++ {
		if _, err := k.Spawn("p", 10, 0x1000_0000, 4, func(e *hw.Exec) {
			e.Trap(SysExit, 0)
		}); err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
	}
	// The classic hard error: table full even though zombies exist.
	if _, err := k.Spawn("extra", 10, 0x1000_0000, 4, func(e *hw.Exec) {}); err != ErrProcTableFull {
		t.Fatalf("err = %v, want ErrProcTableFull", err)
	}
	run(t, m)
	// After reaping one slot, spawning works again.
	var reaped bool
	for pid := 1; pid <= NPROC; pid++ {
		if k.Reap(pid) {
			reaped = true
			break
		}
	}
	if !reaped {
		t.Fatal("nothing to reap")
	}
	done := false
	if _, err := k.Spawn("late", 10, 0x1000_0000, 4, func(e *hw.Exec) { done = true }); err != nil {
		t.Fatalf("spawn after reap: %v", err)
	}
	run(t, m)
	if !done {
		t.Fatal("late process never ran")
	}
}

func TestTimeSliceRotation(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.CPUsPerMPM = 1
	m := hw.NewMachine(cfg)
	k := New(m.MPMs[0])
	counts := [2]int{}
	mk := func(i int) func(e *hw.Exec) {
		return func(e *hw.Exec) {
			for j := 0; j < 30; j++ {
				e.Charge(2000)
				counts[i]++
				e.CPU.ArmTimerAt(e.Now() + 4000)
			}
		}
	}
	if _, err := k.Spawn("a", 10, 0x1000_0000, 4, mk(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("b", 10, 0x1000_0000, 4, mk(1)); err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if counts[0] != 30 || counts[1] != 30 {
		t.Fatalf("counts = %v", counts)
	}
	if k.Switches < 4 {
		t.Fatalf("switches = %d", k.Switches)
	}
}
