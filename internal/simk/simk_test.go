package simk

import (
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
)

// runMP3D boots a machine and runs one MP3D configuration inside a
// launched simulation kernel.
func runMP3D(t *testing.T, cfg MP3DConfig) MP3DResult {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var res MP3DResult
	var runErr error
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "simk", srm.LaunchOpts{Groups: 24, MainPrio: 28},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				mp, err := NewMP3D(me, ak, cfg)
				if err != nil {
					runErr = err
					return
				}
				res, runErr = mp.Run(me)
			})
		if err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 400_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res
}

func TestMP3DRunsAndConservesParticles(t *testing.T) {
	cfg := DefaultMP3DConfig()
	cfg.CellsX, cfg.CellsY, cfg.ParticlesPerCell = 8, 4, 8
	cfg.Steps = 4
	res := runMP3D(t, cfg)
	if res.Particles != 8*4*8 {
		t.Fatalf("particles = %d", res.Particles)
	}
	if res.CyclesPerStep <= 0 {
		t.Fatal("no time charged")
	}
	if res.Moves == 0 {
		t.Fatal("no particles crossed cells (rightward flow expected)")
	}
}

func TestMP3DLocalityRecopies(t *testing.T) {
	cfg := DefaultMP3DConfig()
	cfg.CellsX, cfg.CellsY, cfg.ParticlesPerCell = 8, 4, 8
	cfg.Steps = 4
	res := runMP3D(t, cfg)
	if res.Recopies == 0 {
		t.Fatal("locality mode never recopied a crossing particle")
	}
	cfg.Locality = false
	res2 := runMP3D(t, cfg)
	if res2.Recopies != 0 {
		t.Fatal("scattered mode recopied particles")
	}
}

func TestMP3DScatteredDegradesLocality(t *testing.T) {
	// A working set large enough to stress the 64-entry TLBs: 64x16
	// cells x 16 particles = 16384 particles over 256+ pages per lap.
	cfg := MP3DConfig{
		CellsX: 64, CellsY: 16, ParticlesPerCell: 16,
		Workers: 4, Steps: 3, Locality: true, Seed: 3,
		ComputePerParticle: 24,
	}
	good := runMP3D(t, cfg)
	cfg.Locality = false
	bad := runMP3D(t, cfg)
	slowdown := bad.MoveMicrosPerStep / good.MoveMicrosPerStep
	t.Logf("particle phase: locality %.0f µs/step (TLB miss %.4f), scattered %.0f µs/step (TLB miss %.4f), slowdown %.2fx; whole step %.0f vs %.0f µs",
		good.MoveMicrosPerStep, good.TLBMissRate, bad.MoveMicrosPerStep, bad.TLBMissRate, slowdown,
		good.MicrosPerStep, bad.MicrosPerStep)
	// Paper §5.2: up to 25 % degradation from poor page locality.
	if slowdown < 1.1 {
		t.Fatalf("scattered layout only %.2fx slower; expected noticeable degradation", slowdown)
	}
	if bad.TLBMissRate <= good.TLBMissRate {
		t.Fatal("scattered layout did not increase TLB misses")
	}
	if bad.MicrosPerStep <= good.MicrosPerStep {
		t.Fatal("scattered layout did not slow the whole step at all")
	}
}

func TestBarrierProtocol(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	order := []string{}
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "barrier", srm.LaunchOpts{Groups: 2, MainPrio: 28},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				bar := &Barrier{K: k, Coord: k.CurrentThread(me)}
				const n = 3
				for i := 0; i < n; i++ {
					i := i
					th := ak.NewThread("w", ak.SpaceID, 20, func(we *hw.Exec) {
						for round := 0; round < 2; round++ {
							we.Charge(uint64(1000 * (i + 1)))
							if err := bar.Arrive(we, i); err != nil {
								return
							}
						}
					})
					if err := th.Load(me, false); err != nil {
						t.Errorf("load: %v", err)
						return
					}
					bar.Workers = append(bar.Workers, th.TID)
				}
				for round := 0; round < 2; round++ {
					if err := bar.Gather(me); err != nil {
						t.Errorf("gather: %v", err)
						return
					}
					order = append(order, "gathered")
					if err := bar.Release(me); err != nil {
						t.Errorf("release: %v", err)
						return
					}
				}
			})
		if err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 50_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("rounds gathered = %d", len(order))
	}
}
